GO ?= go

.PHONY: build test vet race fuzz bench bench-smoke bench-baseline bench-guard bench-compare serve-smoke staticcheck ci

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Staticcheck over the whole module. Uses an installed binary when one is
# on PATH; otherwise runs it through the module cache (needs network the
# first time). Pinned so CI results are reproducible.
STATICCHECK_VERSION ?= 2025.1
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	fi

# Race-detector pass over the full module. The engine fans per-vault work
# out to a worker pool; this tier-1 step proves the parallel sections are
# data-race-free at real concurrency even on single-core CI hosts
# (explicit Parallelism > 1 is not capped by GOMAXPROCS).
race:
	$(GO) test -race ./...

# Short fuzzing sweep over the multiset-digest and operator round-trip
# properties plus the simulate.Run no-panic boundary (the seed corpora
# already run as regressions under `make test`).
fuzz:
	$(GO) test -fuzz=FuzzSameMultiset -fuzztime=10s ./internal/tuple/
	$(GO) test -fuzz=FuzzPartitionRoundTrip -fuzztime=10s ./internal/operators/
	$(GO) test -fuzz=FuzzRadixRoundTrip -fuzztime=10s ./internal/operators/
	$(GO) test -run='^$$' -fuzz=FuzzRunNoPanic -fuzztime=15s ./internal/simulate/
	$(GO) test -run='^$$' -fuzz=FuzzRunPlanNoPanic -fuzztime=15s ./internal/simulate/

# Operator benchmarks (bulk fast path vs columnar kernels vs per-tuple
# reference), the host worker-pool scaling sweep, and the fused-vs-staged
# query-plan benchmarks, converted to a benchstat-compatible JSON
# snapshot. `jq -r '.raw[]' BENCH_PR2.json` reconstructs plain
# `go test -bench` output for benchstat. The second step regenerates
# BENCH_PR5.json: one compact run manifest per System × Operator through
# the observability exporter, the structured per-run counter trajectory
# the BENCH_* files track across PRs. The third does the same for whole
# query plans — BENCH_PR8.json holds one manifest per
# System × Plan × fused/staged, so the re-shuffle elisions' exchange-byte
# savings are tracked as data.
bench:
	$(GO) test -bench='BenchmarkOp|BenchmarkEngineParallel|BenchmarkPlan' -benchtime=2x -run=^$$ . | $(GO) run ./cmd/benchjson > BENCH_PR2.json
	@echo wrote BENCH_PR2.json
	rm -f BENCH_PR5.json
	$(GO) run ./cmd/mondrian-bench -small -manifest BENCH_PR5.json
	@echo wrote BENCH_PR5.json
	rm -f BENCH_PR8.json
	$(GO) run ./cmd/mondrian-bench -small -plans -manifest BENCH_PR8.json
	@echo wrote BENCH_PR8.json
	rm -f BENCH_PR9.json
	$(GO) run ./cmd/mondrian-bench -qps BENCH_PR9.json
	@echo wrote BENCH_PR9.json
	$(GO) test -bench=BenchmarkObsWindowOverhead -benchtime=20000x -run=^$$ . | $(GO) run ./cmd/benchjson > BENCH_PR10.json
	@echo wrote BENCH_PR10.json

# One-iteration smoke pass over every benchmark (CI keeps this fast),
# plus a fresh manifest for the CI artifact upload.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
	rm -f BENCH_PR5.json
	$(GO) run ./cmd/mondrian-bench -small -manifest BENCH_PR5.json
	rm -f BENCH_PR8.json
	$(GO) run ./cmd/mondrian-bench -small -plans -manifest BENCH_PR8.json
	rm -f BENCH_PR9.json
	$(GO) run ./cmd/mondrian-bench -qps BENCH_PR9.json -qps-requests 64
	$(GO) test -bench=BenchmarkObsWindowOverhead -benchtime=2000x -run=^$$ . | $(GO) run ./cmd/benchjson > BENCH_PR10.json

# Re-record the benchmark baseline (run on the reference machine;
# benchguard skips when the CPU model differs): the disabled-metrics
# overhead benchmark, the columnar kernel microbenchmarks, the
# fused/staged query-plan end-to-end runs, and the pooled-lifecycle and
# serve-scheduler benchmarks.
bench-baseline:
	( $(GO) test -bench='BenchmarkObsOverhead|BenchmarkPlanJoinAggSort' -benchtime=5x -count=3 -run=^$$ . ; \
	  $(GO) test -bench='BenchmarkPooledRun|BenchmarkServeQPS' -benchtime=100x -count=3 -run=^$$ . ; \
	  $(GO) test -bench=BenchmarkObsWindowOverhead -benchtime=20000x -count=5 -run=^$$ . ; \
	  $(GO) test -bench=BenchmarkColumnarKernel -benchtime=20x -count=3 -run=^$$ ./internal/tuple ) \
	  | $(GO) run ./cmd/benchjson > BENCH_BASELINE.json
	@echo wrote BENCH_BASELINE.json

# Fail if the nil-registry (observability disabled) path got >5% slower,
# or any columnar kernel, query-plan run, rolling-window record, or
# serve-scheduler batch got >10% slower, than the recorded baseline. The
# pooled single-run bench gets a looser 25% bound: a pooled run is
# sub-millisecond, so host noise that washes out over a ServeQPS batch
# shows up directly there. Both sides run -count=3 and benchguard keeps
# each benchmark's fastest repetition: steal time, GC pauses and noisy
# neighbors only ever add time, so min-of-N is the stable estimate on a
# shared host. Guard output stays out of the repo.
bench-guard:
	$(GO) test -bench='BenchmarkObsOverhead$$' -benchtime=5x -count=3 -run=^$$ . | $(GO) run ./cmd/benchjson > /tmp/bench_obs_current.json
	$(GO) run ./cmd/benchguard -baseline BENCH_BASELINE.json -current /tmp/bench_obs_current.json
	$(GO) test -bench=BenchmarkObsWindowOverhead -benchtime=20000x -count=5 -run=^$$ . | $(GO) run ./cmd/benchjson > /tmp/bench_window_current.json
	$(GO) run ./cmd/benchguard -baseline BENCH_BASELINE.json -current /tmp/bench_window_current.json -match '^BenchmarkObsWindowOverhead' -threshold 0.10
	$(GO) test -bench=BenchmarkColumnarKernel -benchtime=20x -count=3 -run=^$$ ./internal/tuple | $(GO) run ./cmd/benchjson > /tmp/bench_cols_current.json
	$(GO) run ./cmd/benchguard -baseline BENCH_BASELINE.json -current /tmp/bench_cols_current.json -match '^BenchmarkColumnarKernel' -threshold 0.10
	$(GO) test -bench=BenchmarkPlanJoinAggSort -benchtime=5x -count=3 -run=^$$ . | $(GO) run ./cmd/benchjson > /tmp/bench_plan_current.json
	$(GO) run ./cmd/benchguard -baseline BENCH_BASELINE.json -current /tmp/bench_plan_current.json -match '^BenchmarkPlanJoinAggSort' -threshold 0.10
	$(GO) test -bench='BenchmarkPooledRun|BenchmarkServeQPS' -benchtime=100x -count=3 -run=^$$ . | $(GO) run ./cmd/benchjson > /tmp/bench_serve_current.json
	$(GO) run ./cmd/benchguard -baseline BENCH_BASELINE.json -current /tmp/bench_serve_current.json -match '^BenchmarkServeQPS' -threshold 0.10
	$(GO) run ./cmd/benchguard -baseline BENCH_BASELINE.json -current /tmp/bench_serve_current.json -match '^BenchmarkPooledRun' -threshold 0.25

# Print baseline-vs-current per-op ratios for every guarded benchmark
# (no failure thresholds — a human-readable drift report).
bench-compare:
	( $(GO) test -bench='BenchmarkObsOverhead$$|BenchmarkPlanJoinAggSort' -benchtime=5x -run=^$$ . ; \
	  $(GO) test -bench='BenchmarkPooledRun|BenchmarkServeQPS' -benchtime=100x -run=^$$ . ; \
	  $(GO) test -bench=BenchmarkObsWindowOverhead -benchtime=20000x -run=^$$ . ; \
	  $(GO) test -bench=BenchmarkColumnarKernel -benchtime=20x -run=^$$ ./internal/tuple ) \
	  | $(GO) run ./cmd/benchjson > /tmp/bench_compare_current.json
	$(GO) run ./cmd/benchguard -baseline BENCH_BASELINE.json -current /tmp/bench_compare_current.json \
	  -match '^Benchmark(ObsOverhead|ObsWindowOverhead|ColumnarKernel|PlanJoinAggSort|PooledRun|ServeQPS)' -report

# End-to-end daemon smoke: boot mondrian-serve on an ephemeral port,
# curl /healthz, /metrics, /tenants and /flightrecorder, require live
# (non-zero) rolling-window percentiles, then shut down via SIGTERM.
serve-smoke:
	./scripts/serve_smoke.sh

# ci mirrors .github/workflows/ci.yml: tier-1 build+vet+test, then the race pass.
ci: test vet race
