GO ?= go

.PHONY: build test race fuzz bench ci

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Race-detector pass over the full module. The engine fans per-vault work
# out to a worker pool; this tier-1 step proves the parallel sections are
# data-race-free at real concurrency even on single-core CI hosts
# (explicit Parallelism > 1 is not capped by GOMAXPROCS).
race:
	$(GO) test -race ./...

# Short fuzzing sweep over the multiset-digest and operator round-trip
# properties (the seed corpora already run as regressions under `make test`).
fuzz:
	$(GO) test -fuzz=FuzzSameMultiset -fuzztime=10s ./internal/tuple/
	$(GO) test -fuzz=FuzzPartitionRoundTrip -fuzztime=10s ./internal/operators/
	$(GO) test -fuzz=FuzzRadixRoundTrip -fuzztime=10s ./internal/operators/

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# ci mirrors .github/workflows/ci.yml: tier-1 build+test, then the race pass.
ci: test race
