// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§7), plus ablation benches for the design choices called out
// in DESIGN.md. Each benchmark regenerates its artifact and reports the
// headline quantities as custom metrics (suffix ...x = speedup factor over
// the experiment's baseline). The companion tool cmd/mondrian-bench prints
// the full tables; EXPERIMENTS.md records paper-vs-measured values.
//
//	go test -bench=. -benchmem
package mondrian

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/ecocloud-go/mondrian/internal/dram"
	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/obs"
	"github.com/ecocloud-go/mondrian/internal/operators"
	"github.com/ecocloud-go/mondrian/internal/serve"
	"github.com/ecocloud-go/mondrian/internal/simulate"
	"github.com/ecocloud-go/mondrian/internal/tuple"
	"github.com/ecocloud-go/mondrian/internal/workload"
)

// benchParams is the evaluation configuration used by the benchmark
// harness: the paper's full system shape with a dataset large enough for
// the working-set regimes of §7 (see DESIGN.md §5 on scaling).
func benchParams() simulate.Params {
	p := simulate.DefaultParams()
	p.STuples = 1 << 17
	p.RTuples = 1 << 16
	return p
}

// benchOp measures the host wall-clock of one operator simulation per
// system in three modes: the run-based bulk fast path ("bulk", the
// default), the columnar structure-of-arrays kernels ("columnar"), and
// the per-tuple reference loops ("reference"). Simulated results are
// byte-identical across all three (TestBulkDifferential and
// TestColumnarEquivalence pin that); only host time differs, so the
// mode ratios are the fast paths' speedups. Workload generation,
// engine construction, placement, and output verification run outside
// the timer — the benchmark isolates the simulation loop itself, which
// is what the fast paths accelerate.
func benchOp(b *testing.B, op simulate.Operator) {
	systems := []simulate.System{
		simulate.CPU, simulate.NMP, simulate.NMPSeq, simulate.Mondrian,
	}
	for _, mode := range []struct {
		name             string
		noBulk, columnar bool
	}{{"bulk", false, false}, {"columnar", false, true}, {"reference", true, false}} {
		for _, s := range systems {
			b.Run(mode.name+"/"+s.String(), func(b *testing.B) {
				p := benchParams()
				p.NoBulk = mode.noBulk
				p.Columnar = mode.columnar
				benchOperatorOnly(b, s, op, p)
			})
		}
	}
}

// benchOperatorOnly times just the operator call, mirroring
// simulate.Run's per-operator setup but keeping it off the clock.
func benchOperatorOnly(b *testing.B, s simulate.System, op simulate.Operator, p simulate.Params) {
	b.Helper()
	b.ReportAllocs()
	opCfg := p.OperatorConfig(s)
	// Workloads are deterministic in the seed; generate once.
	var rels []*tuple.Relation
	switch op {
	case OpScanB:
		rels = []*tuple.Relation{workload.Uniform("scan-in", workload.Config{Seed: p.Seed, Tuples: p.STuples, KeySpace: p.KeySpace})}
	case OpSortB:
		rels = []*tuple.Relation{workload.Uniform("sort-in", workload.Config{Seed: p.Seed, Tuples: p.STuples, KeySpace: p.KeySpace})}
	case OpGroupByB:
		rel, err := workload.GroupBy(workload.Config{Seed: p.Seed, Tuples: p.STuples, KeySpace: p.KeySpace}, p.GroupSize)
		if err != nil {
			b.Fatal(err)
		}
		rels = []*tuple.Relation{rel}
	case OpJoinB:
		rRel, sRel, err := workload.FKPair(workload.Config{Seed: p.Seed, Tuples: p.STuples}, p.RTuples)
		if err != nil {
			b.Fatal(err)
		}
		rels = []*tuple.Relation{rRel, sRel}
	}
	var needle tuple.Key
	if op == OpScanB {
		needle, _ = workload.ScanTarget(rels[0], p.Seed+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := engine.New(p.EngineConfig(s))
		if err != nil {
			b.Fatal(err)
		}
		regions := make([][]*engine.Region, len(rels))
		for j, rel := range rels {
			if regions[j], err = placeAll(e, rel); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		switch op {
		case OpScanB:
			_, err = operators.Scan(e, opCfg, regions[0], needle)
		case OpSortB:
			_, err = operators.Sort(e, opCfg, regions[0])
		case OpGroupByB:
			_, err = operators.GroupBy(e, opCfg, regions[0])
		case OpJoinB:
			_, err = operators.Join(e, opCfg, regions[0], regions[1])
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Local aliases keep the benchOperatorOnly switch readable.
const (
	OpScanB    = simulate.OpScan
	OpSortB    = simulate.OpSort
	OpGroupByB = simulate.OpGroupBy
	OpJoinB    = simulate.OpJoin
)

// BenchmarkOpScan times the Scan operator, bulk fast path vs per-tuple
// reference.
func BenchmarkOpScan(b *testing.B) { benchOp(b, simulate.OpScan) }

// BenchmarkOpSort times the Sort operator (partition + local sort), bulk
// fast path vs per-tuple reference.
func BenchmarkOpSort(b *testing.B) { benchOp(b, simulate.OpSort) }

// BenchmarkOpGroupBy times the GroupBy operator, bulk fast path vs
// per-tuple reference.
func BenchmarkOpGroupBy(b *testing.B) { benchOp(b, simulate.OpGroupBy) }

// BenchmarkOpJoin times the Join operator, bulk fast path vs per-tuple
// reference.
func BenchmarkOpJoin(b *testing.B) { benchOp(b, simulate.OpJoin) }

// BenchmarkTable5Partition regenerates Table 5: partition-phase speedup of
// the NMP systems over the CPU for the Join operator.
func BenchmarkTable5Partition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		su := simulate.NewSuite(benchParams())
		rows, err := su.Table5()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.SpeedupVsCPU, r.System.String()+"-x")
		}
	}
}

// BenchmarkFig6Probe regenerates Figure 6: probe-phase speedups vs CPU.
func BenchmarkFig6Probe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		su := simulate.NewSuite(benchParams())
		series, err := su.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			b.ReportMetric(s.Speedups[simulate.OpJoin], s.System.String()+"-join-x")
			b.ReportMetric(s.Speedups[simulate.OpScan], s.System.String()+"-scan-x")
		}
	}
}

// BenchmarkFig7Overall regenerates Figure 7: overall speedups vs CPU.
func BenchmarkFig7Overall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		su := simulate.NewSuite(benchParams())
		series, err := su.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		var peak float64
		for _, s := range series {
			for _, v := range s.Speedups {
				if s.System == simulate.Mondrian && v > peak {
					peak = v
				}
			}
		}
		b.ReportMetric(peak, "mondrian-peak-x") // paper: up to 49×
	}
}

// BenchmarkFig8Energy regenerates Figure 8: energy breakdowns.
func BenchmarkFig8Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		su := simulate.NewSuite(benchParams())
		entries, err := su.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range entries {
			if e.Operator == simulate.OpJoin {
				f := e.Breakdown.Fractions()
				b.ReportMetric(f[2]*100, e.System.String()+"-cores-pct")
			}
		}
	}
}

// BenchmarkFig9Efficiency regenerates Figure 9: performance-per-watt
// improvement vs CPU.
func BenchmarkFig9Efficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		su := simulate.NewSuite(benchParams())
		series, err := su.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		var peak float64
		for _, s := range series {
			for _, v := range s.Speedups {
				if s.System == simulate.Mondrian && v > peak {
					peak = v
				}
			}
		}
		b.ReportMetric(peak, "mondrian-peak-x") // paper: up to 28×
	}
}

// BenchmarkTable1Mapping exercises the Table 1 lowering: every Spark-style
// transformation class runs through its basic operator on Mondrian.
func BenchmarkTable1Mapping(b *testing.B) {
	p := benchParams()
	p.STuples = 1 << 15
	for i := 0; i < b.N; i++ {
		for _, op := range simulate.Operators() {
			r, err := simulate.Run(simulate.Mondrian, op, p)
			if err != nil {
				b.Fatal(err)
			}
			if !r.Verified {
				b.Fatalf("%v not verified", op)
			}
		}
	}
}

// --- ablation benches (DESIGN.md §6) ---------------------------------------

// BenchmarkAblationPermutability isolates the permutable-write feature at
// fixed core type: NMP vs NMP-perm partitioning, reporting the
// row-activation and runtime ratios (the mechanism behind Table 5).
func BenchmarkAblationPermutability(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		off, err := simulate.Run(simulate.NMP, simulate.OpJoin, p)
		if err != nil {
			b.Fatal(err)
		}
		on, err := simulate.Run(simulate.NMPPerm, simulate.OpJoin, p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(off.DRAM.Activations)/float64(on.DRAM.Activations), "activation-ratio")
		b.ReportMetric(off.PartitionNs/on.PartitionNs, "partition-x")
	}
}

// BenchmarkAblationSIMDWidth sweeps the Mondrian SIMD datapath width
// (§5.2 argues 1024 bits suffices to sort at full bandwidth).
func BenchmarkAblationSIMDWidth(b *testing.B) {
	for _, bits := range []int{128, 256, 512, 1024, 2048} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			p := benchParams()
			for i := 0; i < b.N; i++ {
				cfg := p.EngineConfig(simulate.Mondrian)
				cfg.Core.SIMDBits = bits
				e, err := engine.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				rel := workload.Uniform("in", workload.Config{Seed: 1, Tuples: p.STuples, KeySpace: p.KeySpace})
				inputs, err := placeAll(e, rel)
				if err != nil {
					b.Fatal(err)
				}
				opCfg := p.OperatorConfig(simulate.Mondrian)
				// Lane count scales with width; the cost model's
				// SIMD divisors follow the lane count. The merge
				// network processes `lanes` tuples per operation, so
				// per-tuple merge work is 64/lanes instructions (8 at
				// the paper's 1024-bit/8-lane design point).
				lanes := float64(cfg.Core.SIMDLanes(tuple.Size))
				opCfg.Costs.SIMDScanFactor = lanes
				opCfg.Costs.SIMDDistFactor = lanes / 2
				opCfg.Costs.SIMDMergeInsts = 64 / lanes
				opCfg.Costs.BitonicInsts = 24 / lanes
				r, err := operators.Sort(e, opCfg, inputs)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Ns()/1e3, "sort-us")
			}
		})
	}
}

// BenchmarkAblationMergeFanIn sweeps the merge width (the eight stream
// buffers enable fan-in 8; scalar cores manage 2).
func BenchmarkAblationMergeFanIn(b *testing.B) {
	for _, fan := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("fanin=%d", fan), func(b *testing.B) {
			p := benchParams()
			for i := 0; i < b.N; i++ {
				cfg := p.OperatorConfig(simulate.Mondrian)
				cfg.Costs.MergeFanIn = fan
				e, err := engine.New(p.EngineConfig(simulate.Mondrian))
				if err != nil {
					b.Fatal(err)
				}
				rel := workload.Uniform("in", workload.Config{Seed: 1, Tuples: p.STuples, KeySpace: p.KeySpace})
				inputs, err := placeAll(e, rel)
				if err != nil {
					b.Fatal(err)
				}
				r, err := operators.Sort(e, cfg, inputs)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.ProbeNs/1e3, "probe-us")
			}
		})
	}
}

// BenchmarkAblationRowBuffer sweeps the DRAM row-buffer size (§3.1: the
// activation-energy gap grows with row size — HMC 256 B is conservative
// next to HBM's 2 KB and Wide I/O 2's 4 KB).
func BenchmarkAblationRowBuffer(b *testing.B) {
	for _, rowBytes := range []int{256, 512, 1024, 2048, 4096} {
		b.Run(fmt.Sprintf("row=%dB", rowBytes), func(b *testing.B) {
			p := benchParams()
			for i := 0; i < b.N; i++ {
				act := activationsWithRow(b, p, simulate.NMP, rowBytes)
				actPerm := activationsWithRow(b, p, simulate.NMPPerm, rowBytes)
				b.ReportMetric(float64(act)/float64(actPerm), "activation-ratio")
			}
		})
	}
}

func activationsWithRow(b *testing.B, p simulate.Params, sys simulate.System, rowBytes int) uint64 {
	b.Helper()
	cfg := p.EngineConfig(sys)
	cfg.Geometry.RowBytes = rowBytes
	e, err := engine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rel := workload.Uniform("in", workload.Config{Seed: 1, Tuples: p.STuples, KeySpace: p.KeySpace})
	inputs, err := placeAll(e, rel)
	if err != nil {
		b.Fatal(err)
	}
	opCfg := p.OperatorConfig(sys)
	if _, err := operators.PartitionPhase(e, opCfg, inputs, operators.Partitioner{Buckets: e.NumVaults()}); err != nil {
		b.Fatal(err)
	}
	return e.DRAMStats().Activations
}

// BenchmarkAblationObjectSize sweeps the permutability granularity (§5.3:
// the 256 B object buffer bounds object size). Under the byte-level link
// model distribution time is insensitive to object size (the payload
// bytes are equal); what the object buffer buys is message count — the
// njpt (network messages per tuple) metric — which per-packet overheads
// in a real SerDes protocol would translate into bandwidth.
func BenchmarkAblationObjectSize(b *testing.B) {
	for _, objBytes := range []int{16, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("obj=%dB", objBytes), func(b *testing.B) {
			p := benchParams()
			for i := 0; i < b.N; i++ {
				cfg := p.EngineConfig(simulate.Mondrian)
				cfg.ObjectSize = objBytes
				e, err := engine.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				rel := workload.Uniform("in", workload.Config{Seed: 1, Tuples: p.STuples, KeySpace: p.KeySpace})
				inputs, err := placeAll(e, rel)
				if err != nil {
					b.Fatal(err)
				}
				pr, err := operators.PartitionPhase(e, p.OperatorConfig(simulate.Mondrian), inputs,
					operators.Partitioner{Buckets: e.NumVaults()})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pr.DistributeNs/1e3, "distribute-us")
				var flushes uint64
				for _, u := range e.Units() {
					flushes += u.ObjBuf.Flushes
				}
				b.ReportMetric(float64(flushes)/float64(p.STuples), "msgs-per-tuple")
			}
		})
	}
}

// BenchmarkAblationInterleaving measures how the row-hit probability of a
// conventional shuffle decays as more sources interleave at a destination
// (§4.1.2: "the probability of an access finding an open row quickly
// drops with the system size").
func BenchmarkAblationInterleaving(b *testing.B) {
	for _, cubes := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("cubes=%d", cubes), func(b *testing.B) {
			p := benchParams()
			p.Cubes = cubes
			p.STuples = 1 << 16
			for i := 0; i < b.N; i++ {
				cfg := p.EngineConfig(simulate.NMP)
				e, err := engine.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				rel := workload.Uniform("in", workload.Config{Seed: 1, Tuples: p.STuples, KeySpace: p.KeySpace})
				inputs, err := placeAll(e, rel)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := operators.PartitionPhase(e, p.OperatorConfig(simulate.NMP), inputs,
					operators.Partitioner{Buckets: e.NumVaults()}); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(e.DRAMStats().RowHitRate()*100, "row-hit-pct")
			}
		})
	}
}

// placeAll spreads a relation evenly over the engine's vaults.
func placeAll(e *engine.Engine, rel *tuple.Relation) ([]*engine.Region, error) {
	parts := rel.SplitEven(e.NumVaults())
	regions := make([]*engine.Region, len(parts))
	for v, p := range parts {
		r, err := e.Place(v, p.Tuples)
		if err != nil {
			return nil, err
		}
		regions[v] = r
	}
	return regions, nil
}

// BenchmarkAblationSortAlgorithm compares the probe-phase sort algorithms
// on the Mondrian unit: the stream-buffer mergesort the paper selects vs
// an LSD radix sort (sequential reads, 256-way scatter writes). The
// merge's ≤8 sequential input streams match the eight stream buffers; the
// radix scatter does not, and its row locality suffers accordingly.
func BenchmarkAblationSortAlgorithm(b *testing.B) {
	p := benchParams()
	rel := workload.Uniform("in", workload.Config{Seed: 1, Tuples: p.STuples, KeySpace: p.KeySpace})
	for _, alg := range []string{"mergesort", "radixsort"} {
		b.Run(alg, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := engine.New(p.EngineConfig(simulate.Mondrian))
				if err != nil {
					b.Fatal(err)
				}
				inputs, err := placeAll(e, rel)
				if err != nil {
					b.Fatal(err)
				}
				cm := operators.MondrianCosts()
				t0 := e.TotalNs()
				actsBefore := e.DRAMStats().Activations
				if alg == "mergesort" {
					if _, err := operators.SortBucketsForBench(e, cm, inputs); err != nil {
						b.Fatal(err)
					}
				} else {
					if _, err := operators.RadixSortBuckets(e, cm, inputs, p.KeySpace); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric((e.TotalNs()-t0)/1e3, "sort-us")
				b.ReportMetric(float64(e.DRAMStats().Activations-actsBefore), "activations")
			}
		})
	}
}

// BenchmarkEngineParallel measures host wall-clock scaling of the
// per-vault worker pool on the Join operator (the heaviest experiment:
// two partition phases plus a probe phase). Simulated results are
// bit-identical at every setting — see TestGoldenDeterminism — so this
// benchmark isolates the host-side cost/benefit of fanning vault work out
// to goroutines. Speedup is bounded by the host's core count
// (GOMAXPROCS): on a single-core host all settings time-share one CPU and
// the curve is flat. EXPERIMENTS.md records the measured curve.
func BenchmarkEngineParallel(b *testing.B) {
	settings := []int{1, 2, 4}
	if gmp := runtime.GOMAXPROCS(0); gmp != 1 && gmp != 2 && gmp != 4 {
		settings = append(settings, gmp)
	}
	for _, par := range settings {
		b.Run(fmt.Sprintf("workers=%d", par), func(b *testing.B) {
			p := benchParams()
			p.Parallelism = par
			for i := 0; i < b.N; i++ {
				r, err := simulate.Run(simulate.Mondrian, simulate.OpJoin, p)
				if err != nil {
					b.Fatal(err)
				}
				if !r.Verified {
					b.Fatal("join not verified")
				}
			}
		})
	}
}

// BenchmarkObsOverhead prices the observability layer on the heaviest
// experiment (Mondrian Join): "disabled" is the default nil-registry
// configuration — its entire cost is one nil-check at each phase
// boundary — and "enabled" collects every counter, span and the manifest.
// cmd/benchguard holds the disabled number to within 5% of the recorded
// BENCH_BASELINE.json, so instrumentation can never tax users who did
// not ask for it. The reduced test configuration keeps CI's 2-iteration
// guard run fast.
func BenchmarkObsOverhead(b *testing.B) {
	p := simulate.TestParams()
	b.Run("disabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := simulate.Run(simulate.Mondrian, simulate.OpJoin, p)
			if err != nil {
				b.Fatal(err)
			}
			if !r.Verified {
				b.Fatal("join not verified")
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := p
			p.Obs = obs.NewRegistry()
			r, err := simulate.Run(simulate.Mondrian, simulate.OpJoin, p)
			if err != nil {
				b.Fatal(err)
			}
			if !r.Verified {
				b.Fatal("join not verified")
			}
			if m := simulate.BuildManifest(r, p, true); m.Metrics.Counters["accesses_total"] == 0 {
				b.Fatal("manifest empty")
			}
		}
	})
}

// BenchmarkObsWindowOverhead prices one observation on the serving
// tier's live-metrics path: recording a latency sample into a rolling
// window (bucket search + slot update) versus bumping a plain registry
// counter, plus the SLO tracker's classify-and-count. The scheduler does
// all three under its mutex on every completed request, so the per-op
// cost bounds the live-observability tax on serving throughput.
// cmd/benchguard holds the window number to within 10% of the recorded
// BENCH_BASELINE.json. Each iteration records a 1000-sample batch so the
// per-op time sits at microsecond scale, where the guard's 10% bound is
// meaningful; divide ns/op by obsWindowBatch for the per-record cost.
func BenchmarkObsWindowOverhead(b *testing.B) {
	const obsWindowBatch = 1000
	bounds := []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11}
	b.Run("window", func(b *testing.B) {
		w := obs.NewWindow(12, bounds)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < obsWindowBatch; j++ {
				w.Record(float64(j) * 1e6)
			}
		}
		if w.Count() == 0 {
			b.Fatal("window empty")
		}
	})
	b.Run("counter", func(b *testing.B) {
		c := obs.NewRegistry().Counter("runs")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < obsWindowBatch; j++ {
				c.Inc()
			}
		}
	})
	b.Run("slo", func(b *testing.B) {
		tr := obs.NewSLOTracker(12, obs.SLO{TargetNs: 5e7, Objective: 0.99})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < obsWindowBatch; j++ {
				tr.Record(float64(j) * 1e6)
			}
		}
	})
}

// BenchmarkPlanJoinAggSort times the compiled three-stage query
//
//	SORT( GROUPBY( R ⋈ S ) )
//
// end to end, fused versus staged. In the fused mode the plan compiler
// notices the join already leaves its output hash-partitioned on the key
// and elides the group-by's re-shuffle; the staged mode re-buckets at
// every stage boundary (the pre-compiler pipeline behavior). The
// fused/staged ratio is therefore the compiler's whole-query win on real
// host time, the same saving TestPlanFusionSavings pins on simulated
// exchange bytes. Runs at the golden-fixture scale so the 5-iteration
// benchguard pass stays fast; cmd/benchguard holds the numbers to within
// 10% of the recorded BENCH_BASELINE.json.
func BenchmarkPlanJoinAggSort(b *testing.B) {
	for _, mode := range []struct {
		name   string
		staged bool
	}{{"fused", false}, {"staged", true}} {
		for _, s := range []simulate.System{simulate.NMP, simulate.Mondrian} {
			b.Run(mode.name+"/"+s.String(), func(b *testing.B) {
				b.ReportAllocs()
				p := simulate.TestParams()
				p.STuples = 1 << 13
				p.RTuples = 1 << 12
				p.KeySpace = 1 << 16
				p.CPUBuckets = 1 << 8
				p.NoFusion = mode.staged
				for i := 0; i < b.N; i++ {
					r, err := simulate.RunPlan(s, simulate.PlanJoinAggSort, p)
					if err != nil {
						b.Fatal(err)
					}
					if !r.Verified {
						b.Fatal("plan not verified")
					}
				}
			})
		}
	}
}

// BenchmarkAblationSchedulerWindow quantifies §4.1.2's claim that
// conventional memory-controller reordering cannot recover the shuffle's
// row locality: an FR-FCFS scheduling window of increasing depth services
// the interleaved write stream of a 64-source shuffle. Even a 64-entry
// window barely moves the row-hit rate — "the distance of accesses to
// different locations within a row is typically too long for this
// scheduling window" — while permutability (the last sub-bench) gets it
// outright.
func BenchmarkAblationSchedulerWindow(b *testing.B) {
	const sources, perSource = 64, 512
	// Build the interleaved arrival stream once: `sources` sequential
	// write runs, round-robin interleaved (Fig. 2).
	stream := make([]dram.Request, 0, sources*perSource)
	for i := 0; i < perSource; i++ {
		for s := 0; s < sources; s++ {
			addr := int64(s)*perSource*16 + int64(i)*16
			stream = append(stream, dram.Request{Addr: addr, Size: 16, Write: true})
		}
	}
	geom := dram.HMCGeometry()
	geom.CapacityBytes = 16 << 20
	for _, window := range []int{1, 8, 16, 64} {
		b.Run(fmt.Sprintf("frfcfs-window=%d", window), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dev := dram.NewDevice(geom, dram.HMCTiming())
				w := dram.NewWindow(dev, window)
				for _, r := range stream {
					w.Push(r)
				}
				w.Flush()
				b.ReportMetric(dev.Stats().RowHitRate()*100, "row-hit-pct")
			}
		})
	}
	b.Run("permutable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dev := dram.NewDevice(geom, dram.HMCTiming())
			// The vault controller appends arrivals sequentially.
			for j := range stream {
				dev.Access(int64(j)*16, 16, true)
			}
			b.ReportMetric(dev.Stats().RowHitRate()*100, "row-hit-pct")
		}
	})
}

// servingParams is the engine-as-a-service regime: the paper's full
// system shapes with many small queries, where engine construction —
// not per-query work — dominates a rebuild-per-run lifecycle (DESIGN.md
// §16).
func servingParams() simulate.Params {
	p := simulate.DefaultParams()
	p.STuples = 1 << 10
	p.RTuples = 1 << 9
	p.KeySpace = 1 << 16
	p.CPUBuckets = 1 << 8
	return p
}

// BenchmarkPooledRun measures one scan query under the two engine
// lifecycles the serving tier can use: drawing a reset engine from the
// shared pool (the default) versus constructing a fresh engine per run
// (NoPool). The gap is the amortized-construction win that BENCH_PR9
// records end to end; TestResetEquivalence pins that the simulated
// numbers are byte-identical either way.
func BenchmarkPooledRun(b *testing.B) {
	for _, mode := range []struct {
		name   string
		noPool bool
	}{{"pooled", false}, {"fresh", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p := servingParams()
			p.NoPool = mode.noPool
			// Warm the pool (and allocator) outside the timer.
			if _, err := simulate.Run(simulate.CPU, simulate.OpScan, p); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := simulate.Run(simulate.CPU, simulate.OpScan, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeQPS pushes a multi-tenant batch of scan queries through
// the serve scheduler — weighted-fair queues, admission control, pooled
// engines — and reports sustained queries per second. One iteration is
// one full batch: 8 tenants round-robining over every system shape.
func BenchmarkServeQPS(b *testing.B) {
	const requests, tenants = 64, 8
	p := servingParams()
	systems := simulate.Systems()
	b.ReportAllocs()
	b.ResetTimer()
	var qps float64
	for i := 0; i < b.N; i++ {
		s := serve.New(serve.Config{Workers: runtime.GOMAXPROCS(0), QueueDepth: requests})
		start := time.Now()
		tickets := make([]*serve.Ticket, requests)
		for j := range tickets {
			tk, err := s.Submit(fmt.Sprintf("tenant-%d", j%tenants), serve.Request{
				System:   systems[j%len(systems)],
				Operator: simulate.OpScan,
				Params:   p,
			})
			if err != nil {
				b.Fatal(err)
			}
			tickets[j] = tk
		}
		for _, tk := range tickets {
			if r := tk.Wait(); r.Err != nil {
				b.Fatal(r.Err)
			}
		}
		qps = float64(requests) / time.Since(start).Seconds()
		s.Close()
	}
	b.ReportMetric(qps, "qps")
}
