// Command benchguard compares a fresh benchjson snapshot against a
// recorded baseline and fails when any matched benchmark's ns/op
// regressed beyond the threshold. CI runs it on the disabled-metrics
// overhead benchmark: the observability layer's nil-registry path must
// stay free, and a >5% drift there fails the build.
//
// Wall-clock numbers only compare within one machine class, so the guard
// skips (exit 0, with a notice) when the baseline and current snapshots
// report different CPU models — a baseline recorded on a laptop must not
// fail CI runners, and vice versa. Re-record the baseline with
// `make bench-baseline` on the reference machine.
//
// Usage:
//
//	go test -bench=ObsOverhead -benchtime=5x -run '^$' . | go run ./cmd/benchjson > cur.json
//	go run ./cmd/benchguard -baseline BENCH_BASELINE.json -current cur.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
)

// Result mirrors cmd/benchjson's parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Snapshot mirrors cmd/benchjson's output document.
type Snapshot struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchguard: ")
	var (
		basePath  = flag.String("baseline", "BENCH_BASELINE.json", "recorded baseline snapshot (benchjson format)")
		curPath   = flag.String("current", "", "fresh snapshot to check (benchjson format)")
		match     = flag.String("match", `^BenchmarkObsOverhead/disabled`, "regexp selecting the benchmarks to guard")
		threshold = flag.Float64("threshold", 0.05, "max allowed fractional ns/op regression")
		report    = flag.Bool("report", false, "print baseline-vs-current per-op ratios for every matched benchmark and exit 0 (no guard)")
	)
	flag.Parse()
	if *curPath == "" {
		log.Fatal("missing -current snapshot")
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		log.Fatalf("-match: %v", err)
	}

	base, err := load(*basePath)
	if err != nil {
		log.Fatal(err)
	}
	cur, err := load(*curPath)
	if err != nil {
		log.Fatal(err)
	}
	if base.CPU != cur.CPU {
		fmt.Printf("benchguard: skipping — baseline CPU %q != current CPU %q (re-record with make bench-baseline)\n",
			base.CPU, cur.CPU)
		return
	}

	// Repeated entries (from `go test -count=N`) collapse to the
	// per-benchmark minimum on both sides: contention, steal time and GC
	// pauses only ever add time, so min-of-N is the noise-resistant
	// estimate of a benchmark's true cost on a shared host.
	baseNs := minNs(base.Benchmarks)
	checked, failed := 0, 0
	for _, r := range dedupe(cur.Benchmarks) {
		if !re.MatchString(r.Name) {
			continue
		}
		want, ok := baseNs[r.Name]
		if !ok {
			fmt.Printf("benchguard: %s: no baseline entry, skipping\n", r.Name)
			continue
		}
		checked++
		ratio := r.NsPerOp / want
		if *report {
			// old/new > 1 means the current run is faster than baseline.
			fmt.Printf("benchguard: %-44s baseline %12.0f ns/op -> current %12.0f ns/op (old/new %.2fx)\n",
				r.Name, want, r.NsPerOp, want/r.NsPerOp)
			continue
		}
		status := "ok"
		if ratio > 1+*threshold {
			status = "FAIL"
			failed++
		}
		fmt.Printf("benchguard: %-40s %12.0f ns/op vs baseline %12.0f (%+.1f%%) %s\n",
			r.Name, r.NsPerOp, want, (ratio-1)*100, status)
	}
	if checked == 0 {
		log.Fatalf("no benchmark in %s matched %q — guard would silently pass", *curPath, *match)
	}
	if failed > 0 {
		log.Fatalf("%d of %d guarded benchmarks regressed more than %.0f%%", failed, checked, *threshold*100)
	}
}

// minNs maps each benchmark name to its minimum recorded ns/op.
func minNs(rs []Result) map[string]float64 {
	m := make(map[string]float64, len(rs))
	for _, r := range rs {
		if v, ok := m[r.Name]; !ok || r.NsPerOp < v {
			m[r.Name] = r.NsPerOp
		}
	}
	return m
}

// dedupe keeps one Result per name — the fastest — preserving the order
// in which names first appear.
func dedupe(rs []Result) []Result {
	best := minNs(rs)
	out := rs[:0:0]
	seen := make(map[string]bool, len(best))
	for _, r := range rs {
		if seen[r.Name] {
			continue
		}
		seen[r.Name] = true
		r.NsPerOp = best[r.Name]
		out = append(out, r)
	}
	return out
}

func load(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}
