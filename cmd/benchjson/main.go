// Command benchjson converts `go test -bench` output on stdin into a
// JSON snapshot on stdout. The snapshot keeps every verbatim benchmark
// line under "raw" — piping those lines back out reconstructs a file
// benchstat accepts unchanged — and additionally parses each line into
// structured fields so downstream tooling (EXPERIMENTS.md tables, CI
// trend checks) can consume the numbers without a benchstat dependency.
//
// Usage:
//
//	go test -bench . -benchtime 2x -run '^$' . | go run ./cmd/benchjson > BENCH.json
//	jq -r '.raw[]' BENCH.json | benchstat old.txt /dev/stdin
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Snapshot is the whole converted run.
type Snapshot struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
	Raw        []string `json:"raw"`
}

func main() {
	snap := Snapshot{Benchmarks: []Result{}, Raw: []string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			snap.Raw = append(snap.Raw, line)
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			snap.Raw = append(snap.Raw, line)
		case strings.HasPrefix(line, "pkg:"):
			snap.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			snap.Raw = append(snap.Raw, line)
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			snap.Raw = append(snap.Raw, line)
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parse(line)
			if !ok {
				continue
			}
			snap.Benchmarks = append(snap.Benchmarks, r)
			snap.Raw = append(snap.Raw, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse decodes one "BenchmarkName  N  ns/op [B/op] [allocs/op]" line.
func parse(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Result{}, false
	}
	iters, err1 := strconv.ParseInt(f[1], 10, 64)
	ns, err2 := strconv.ParseFloat(f[2], 64)
	if err1 != nil || err2 != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseInt(f[i], 10, 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, true
}
