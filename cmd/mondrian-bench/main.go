// Command mondrian-bench regenerates every table and figure of the
// paper's evaluation (§7) and prints them alongside the published values.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"github.com/ecocloud-go/mondrian/internal/cliio"
	"github.com/ecocloud-go/mondrian/internal/obs"
	"github.com/ecocloud-go/mondrian/internal/report"
	"github.com/ecocloud-go/mondrian/internal/serve"
	"github.com/ecocloud-go/mondrian/internal/simulate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mondrian-bench: ")
	var (
		small  = flag.Bool("small", false, "run the reduced-size configuration (fast)")
		sTup   = flag.Int("s-tuples", 0, "override large-relation cardinality")
		rTup   = flag.Int("r-tuples", 0, "override small join relation cardinality")
		params = flag.Bool("params", false, "print Table 3/4 simulation parameters and exit")
		only   = flag.String("only", "", "run a single experiment: table5|fig6|fig7|fig8|fig9")
		asJSON = flag.Bool("json", false, "emit all artifacts as JSON instead of text")
		manOut = flag.String("manifest", "", "append one compact JSON run manifest per (system, operator) to `file` and exit (\"-\" = stdout)")
		plans  = flag.Bool("plans", false, "with -manifest: emit query-plan manifests (system × plan × fused/staged) instead of single operators")
		par    = flag.Int("parallelism", 0, "host worker pool for per-vault execution (0 = GOMAXPROCS, 1 = serial; results are identical at every setting)")
		cols   = flag.Bool("columnar", false, "run the columnar (structure-of-arrays) host kernels; results are identical either way")
		cpuOut = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to `file`")
		memOut = flag.String("memprofile", "", "write a pprof heap profile at exit to `file`")

		// Multi-tenant serving benchmark (BENCH_PR9.json).
		qpsOut     = flag.String("qps", "", "run the multi-tenant serving benchmark (pooled vs fresh engines) and append its JSON summary to `file` (\"-\" = stdout)")
		qpsReqs    = flag.Int("qps-requests", 256, "total requests per lifecycle mode in the -qps benchmark")
		qpsTenants = flag.Int("qps-tenants", 8, "concurrent tenants in the -qps benchmark")
		qpsRate    = flag.Float64("qps-rate", 0, "open-loop offered arrival rate in requests/sec for -qps (0 = saturating arrivals)")
	)
	flag.Parse()

	if *cpuOut != "" {
		f, err := os.Create(*cpuOut)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memOut != "" {
		defer func() {
			f, err := os.Create(*memOut)
			if err != nil {
				log.Fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				log.Fatalf("memprofile: %v", err)
			}
		}()
	}

	p := simulate.DefaultParams()
	if *small {
		p = simulate.TestParams()
	}
	if *sTup != 0 {
		p.STuples = *sTup
	}
	if *rTup != 0 {
		p.RTuples = *rTup
	}
	if *par != 0 {
		p.Parallelism = *par
	}
	if *cols {
		p.Columnar = true
	}
	// Reject bad overrides up front with the boundary's one-line typed
	// error instead of starting a long run (or, worse, a stack trace).
	if err := p.Validate(); err != nil {
		log.Fatal(err)
	}

	if *params {
		report.WriteParams(os.Stdout, p)
		return
	}

	if *qpsOut != "" {
		if err := runQPS(*qpsOut, *qpsReqs, *qpsTenants, *qpsRate); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *manOut != "" {
		write := writeManifests
		if *plans {
			write = writePlanManifests
		}
		if err := write(*manOut, p); err != nil {
			log.Fatal(err)
		}
		return
	}

	suite := simulate.NewSuite(p)
	if *asJSON {
		if err := report.WriteJSON(os.Stdout, suite); err != nil {
			log.Fatal(err)
		}
		return
	}
	run := func(name string, fn func() error) {
		if *only != "" && *only != name {
			return
		}
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}

	run("table5", func() error {
		rows, err := suite.Table5()
		if err != nil {
			return err
		}
		report.WriteTable5(os.Stdout, rows)
		return nil
	})
	run("fig6", func() error {
		series, err := suite.Fig6()
		if err != nil {
			return err
		}
		report.WriteFig(os.Stdout, "Figure 6: probe speedup vs CPU (log scale)", series)
		return nil
	})
	run("fig7", func() error {
		series, err := suite.Fig7()
		if err != nil {
			return err
		}
		report.WriteFig(os.Stdout, "Figure 7: overall speedup vs CPU (log scale)", series)
		return nil
	})
	run("fig8", func() error {
		entries, err := suite.Fig8()
		if err != nil {
			return err
		}
		report.WriteFig8(os.Stdout, entries)
		return nil
	})
	run("fig9", func() error {
		series, err := suite.Fig9()
		if err != nil {
			return err
		}
		report.WriteFig(os.Stdout, "Figure 9: efficiency improvement vs CPU (log scale)", series)
		return nil
	})
	fmt.Println()
}

// writeManifests runs the full system × operator matrix with metrics
// enabled and appends one compact JSON manifest per run to path — the
// machine-readable benchmark artifact (make bench emits BENCH_PR5.json
// this way). Each run gets a fresh registry so counters never bleed
// across experiments.
func writeManifests(path string, p simulate.Params) error {
	return cliio.AppendFile(path, func(w io.Writer) error {
		for _, s := range simulate.Systems() {
			for _, op := range simulate.Operators() {
				p := p
				p.Obs = obs.NewRegistry()
				start := time.Now()
				res, err := simulate.Run(s, op, p)
				wall := time.Since(start)
				if err != nil {
					return fmt.Errorf("%v/%v: %w", s, op, err)
				}
				if !res.Verified {
					return fmt.Errorf("%v/%v: output verification failed", s, op)
				}
				m := simulate.BuildManifest(res, p, false)
				m.Host.WallNs = wall.Nanoseconds()
				m.Host.Timestamp = start.UTC().Format(time.RFC3339)
				if err := m.WriteJSONLine(w); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// writePlanManifests runs the system × plan matrix — each shape in fused
// and staged mode — with metrics enabled and appends one compact JSON
// manifest per run to path (make bench emits BENCH_PR8.json this way).
// The staged runs give the baseline the fused runs' exchange-byte and
// runtime savings are measured against.
func writePlanManifests(path string, p simulate.Params) error {
	return cliio.AppendFile(path, func(w io.Writer) error {
		for _, s := range simulate.Systems() {
			for _, pl := range simulate.Plans() {
				for _, staged := range []bool{false, true} {
					p := p
					p.NoFusion = staged
					p.Obs = obs.NewRegistry()
					start := time.Now()
					res, err := simulate.RunPlan(s, pl, p)
					wall := time.Since(start)
					if err != nil {
						return fmt.Errorf("%v/%v: %w", s, pl, err)
					}
					if !res.Verified {
						return fmt.Errorf("%v/%v: output verification failed", s, pl)
					}
					m := simulate.BuildPlanManifest(res, p, false)
					m.Host.WallNs = wall.Nanoseconds()
					m.Host.Timestamp = start.UTC().Format(time.RFC3339)
					if err := m.WriteJSONLine(w); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})
}

// qpsParams is the serving benchmark's per-request setup: the paper's
// full system shapes (4 cubes × 16 vaults — the engines a serving tier
// would actually host) with a dataset small enough that per-query work
// does not drown engine construction. Many small queries against a few
// big system shapes is exactly the regime the engine pool exists for.
func qpsParams() simulate.Params {
	p := simulate.DefaultParams()
	p.STuples = 1 << 10
	p.RTuples = 1 << 9
	p.KeySpace = 1 << 16
	p.CPUBuckets = 1 << 8
	return p
}

// qpsModeResult is one lifecycle mode's outcome in the QPS summary.
type qpsModeResult struct {
	QPS              float64 `json:"qps"`
	WallMs           float64 `json:"wall_ms"`
	Completed        int     `json:"completed"`
	Errors           int     `json:"errors"`
	MeanQueueMs      float64 `json:"mean_queue_ms"`
	TenantRuns       int     `json:"tenant_runs"`
	SimulatedSecs    float64 `json:"simulated_secs"`
	AdmissionRejects uint64  `json:"admission_rejects"`
}

// qpsSummary is the BENCH_PR9.json document: the same multi-tenant mix
// served once with the pooled engine lifecycle and once constructing a
// fresh engine per run, and the throughput ratio between them.
type qpsSummary struct {
	Bench      string        `json:"bench"`
	Requests   int           `json:"requests"`
	Tenants    int           `json:"tenants"`
	Workers    int           `json:"workers"`
	RateRps    float64       `json:"offered_rate_rps"`
	Pooled     qpsModeResult `json:"pooled"`
	Fresh      qpsModeResult `json:"fresh"`
	Speedup    float64       `json:"speedup"`
	PoolHits   uint64        `json:"pool_hits"`
	PoolMisses uint64        `json:"pool_misses"`
}

// runQPS drives the serve scheduler with an open-loop multi-tenant mix
// — scan queries against every registered system shape, round-robined
// across tenants — in both engine lifecycle modes and appends the JSON
// summary to path. Scans are the serving-tier workload: short queries
// whose cost a per-request engine rebuild visibly dominates.
func runQPS(path string, requests, tenants int, rate float64) error {
	if requests <= 0 || tenants <= 0 {
		return fmt.Errorf("qps: need positive request and tenant counts, got %d/%d", requests, tenants)
	}
	workers := runtime.GOMAXPROCS(0)
	sum := qpsSummary{
		Bench: "serve-qps", Requests: requests, Tenants: tenants,
		Workers: workers, RateRps: rate,
	}
	// Fresh first so the pooled mode's numbers include its own pool
	// warm-up misses rather than inheriting a pre-warmed pool.
	var err error
	if sum.Fresh, err = qpsMode(true, requests, tenants, workers, rate); err != nil {
		return err
	}
	before := simulate.PoolStats()
	if sum.Pooled, err = qpsMode(false, requests, tenants, workers, rate); err != nil {
		return err
	}
	after := simulate.PoolStats()
	sum.PoolHits = after.Hits - before.Hits
	sum.PoolMisses = after.Misses - before.Misses
	if sum.Fresh.QPS > 0 {
		sum.Speedup = sum.Pooled.QPS / sum.Fresh.QPS
	}
	fmt.Printf("serve-qps: %d requests, %d tenants, %d workers — pooled %.1f qps, fresh %.1f qps (%.2fx)\n",
		requests, tenants, workers, sum.Pooled.QPS, sum.Fresh.QPS, sum.Speedup)
	return cliio.AppendFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		return enc.Encode(sum)
	})
}

// qpsMode serves one full request mix in one lifecycle mode and returns
// its throughput summary.
func qpsMode(noPool bool, requests, tenants, workers int, rate float64) (qpsModeResult, error) {
	var out qpsModeResult
	p := qpsParams()
	p.NoPool = noPool
	reg := obs.NewRegistry()
	sched := serve.New(serve.Config{Workers: workers, QueueDepth: requests, Obs: reg})
	defer sched.Close()

	systems := simulate.Systems()
	tickets := make([]*serve.Ticket, 0, requests)
	start := time.Now()
	for i := 0; i < requests; i++ {
		if rate > 0 {
			// Open loop: arrival i is due at i/rate seconds regardless of
			// how far the service has gotten.
			if due := start.Add(time.Duration(float64(i) / rate * float64(time.Second))); time.Now().Before(due) {
				time.Sleep(time.Until(due))
			}
		}
		req := serve.Request{
			System:   systems[i%len(systems)],
			Operator: simulate.OpScan,
			Params:   p,
		}
		tenant := fmt.Sprintf("tenant-%d", i%tenants)
		tk, err := sched.Submit(tenant, req)
		if err != nil {
			var adm *serve.ErrAdmission
			if errors.As(err, &adm) {
				out.AdmissionRejects++
				continue
			}
			return out, err
		}
		tickets = append(tickets, tk)
	}
	var queueNs int64
	for _, tk := range tickets {
		r := tk.Wait()
		if r.Err != nil {
			out.Errors++
			continue
		}
		if !r.Result.Verified {
			return out, fmt.Errorf("qps: unverified result")
		}
		out.Completed++
		out.SimulatedSecs += r.Result.TotalNs / 1e9
		queueNs += r.QueueNs
	}
	wall := time.Since(start)
	out.WallMs = float64(wall.Nanoseconds()) / 1e6
	if wall > 0 {
		out.QPS = float64(out.Completed) / wall.Seconds()
	}
	if out.Completed > 0 {
		out.MeanQueueMs = float64(queueNs) / float64(out.Completed) / 1e6
	}
	snap := reg.Snapshot()
	for i := 0; i < tenants; i++ {
		t := fmt.Sprintf("tenant-%d", i)
		out.TenantRuns += int(snap.Counters[obs.Label("tenant_runs", "tenant", t)])
	}
	return out, nil
}
