// Command mondrian-bench regenerates every table and figure of the
// paper's evaluation (§7) and prints them alongside the published values.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"github.com/ecocloud-go/mondrian/internal/cliio"
	"github.com/ecocloud-go/mondrian/internal/obs"
	"github.com/ecocloud-go/mondrian/internal/report"
	"github.com/ecocloud-go/mondrian/internal/simulate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mondrian-bench: ")
	var (
		small  = flag.Bool("small", false, "run the reduced-size configuration (fast)")
		sTup   = flag.Int("s-tuples", 0, "override large-relation cardinality")
		rTup   = flag.Int("r-tuples", 0, "override small join relation cardinality")
		params = flag.Bool("params", false, "print Table 3/4 simulation parameters and exit")
		only   = flag.String("only", "", "run a single experiment: table5|fig6|fig7|fig8|fig9")
		asJSON = flag.Bool("json", false, "emit all artifacts as JSON instead of text")
		manOut = flag.String("manifest", "", "append one compact JSON run manifest per (system, operator) to `file` and exit (\"-\" = stdout)")
		plans  = flag.Bool("plans", false, "with -manifest: emit query-plan manifests (system × plan × fused/staged) instead of single operators")
		par    = flag.Int("parallelism", 0, "host worker pool for per-vault execution (0 = GOMAXPROCS, 1 = serial; results are identical at every setting)")
		cols   = flag.Bool("columnar", false, "run the columnar (structure-of-arrays) host kernels; results are identical either way")
		cpuOut = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to `file`")
		memOut = flag.String("memprofile", "", "write a pprof heap profile at exit to `file`")
	)
	flag.Parse()

	if *cpuOut != "" {
		f, err := os.Create(*cpuOut)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memOut != "" {
		defer func() {
			f, err := os.Create(*memOut)
			if err != nil {
				log.Fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				log.Fatalf("memprofile: %v", err)
			}
		}()
	}

	p := simulate.DefaultParams()
	if *small {
		p = simulate.TestParams()
	}
	if *sTup != 0 {
		p.STuples = *sTup
	}
	if *rTup != 0 {
		p.RTuples = *rTup
	}
	if *par != 0 {
		p.Parallelism = *par
	}
	if *cols {
		p.Columnar = true
	}
	// Reject bad overrides up front with the boundary's one-line typed
	// error instead of starting a long run (or, worse, a stack trace).
	if err := p.Validate(); err != nil {
		log.Fatal(err)
	}

	if *params {
		report.WriteParams(os.Stdout, p)
		return
	}

	if *manOut != "" {
		write := writeManifests
		if *plans {
			write = writePlanManifests
		}
		if err := write(*manOut, p); err != nil {
			log.Fatal(err)
		}
		return
	}

	suite := simulate.NewSuite(p)
	if *asJSON {
		if err := report.WriteJSON(os.Stdout, suite); err != nil {
			log.Fatal(err)
		}
		return
	}
	run := func(name string, fn func() error) {
		if *only != "" && *only != name {
			return
		}
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}

	run("table5", func() error {
		rows, err := suite.Table5()
		if err != nil {
			return err
		}
		report.WriteTable5(os.Stdout, rows)
		return nil
	})
	run("fig6", func() error {
		series, err := suite.Fig6()
		if err != nil {
			return err
		}
		report.WriteFig(os.Stdout, "Figure 6: probe speedup vs CPU (log scale)", series)
		return nil
	})
	run("fig7", func() error {
		series, err := suite.Fig7()
		if err != nil {
			return err
		}
		report.WriteFig(os.Stdout, "Figure 7: overall speedup vs CPU (log scale)", series)
		return nil
	})
	run("fig8", func() error {
		entries, err := suite.Fig8()
		if err != nil {
			return err
		}
		report.WriteFig8(os.Stdout, entries)
		return nil
	})
	run("fig9", func() error {
		series, err := suite.Fig9()
		if err != nil {
			return err
		}
		report.WriteFig(os.Stdout, "Figure 9: efficiency improvement vs CPU (log scale)", series)
		return nil
	})
	fmt.Println()
}

// writeManifests runs the full system × operator matrix with metrics
// enabled and appends one compact JSON manifest per run to path — the
// machine-readable benchmark artifact (make bench emits BENCH_PR5.json
// this way). Each run gets a fresh registry so counters never bleed
// across experiments.
func writeManifests(path string, p simulate.Params) error {
	return cliio.AppendFile(path, func(w io.Writer) error {
		for _, s := range simulate.Systems() {
			for _, op := range simulate.Operators() {
				p := p
				p.Obs = obs.NewRegistry()
				start := time.Now()
				res, err := simulate.Run(s, op, p)
				wall := time.Since(start)
				if err != nil {
					return fmt.Errorf("%v/%v: %w", s, op, err)
				}
				if !res.Verified {
					return fmt.Errorf("%v/%v: output verification failed", s, op)
				}
				m := simulate.BuildManifest(res, p, false)
				m.Host.WallNs = wall.Nanoseconds()
				m.Host.Timestamp = start.UTC().Format(time.RFC3339)
				if err := m.WriteJSONLine(w); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// writePlanManifests runs the system × plan matrix — each shape in fused
// and staged mode — with metrics enabled and appends one compact JSON
// manifest per run to path (make bench emits BENCH_PR8.json this way).
// The staged runs give the baseline the fused runs' exchange-byte and
// runtime savings are measured against.
func writePlanManifests(path string, p simulate.Params) error {
	return cliio.AppendFile(path, func(w io.Writer) error {
		for _, s := range simulate.Systems() {
			for _, pl := range simulate.Plans() {
				for _, staged := range []bool{false, true} {
					p := p
					p.NoFusion = staged
					p.Obs = obs.NewRegistry()
					start := time.Now()
					res, err := simulate.RunPlan(s, pl, p)
					wall := time.Since(start)
					if err != nil {
						return fmt.Errorf("%v/%v: %w", s, pl, err)
					}
					if !res.Verified {
						return fmt.Errorf("%v/%v: output verification failed", s, pl)
					}
					m := simulate.BuildPlanManifest(res, p, false)
					m.Host.WallNs = wall.Nanoseconds()
					m.Host.Timestamp = start.UTC().Format(time.RFC3339)
					if err := m.WriteJSONLine(w); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})
}
