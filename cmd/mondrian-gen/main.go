// Command mondrian-gen generates and inspects the synthetic workloads the
// experiments run on: uniform relations, foreign-key join pairs, group-by
// datasets and Zipf-skewed relations. It can print summary statistics or
// dump tuples as CSV for external analysis.
//
// Example:
//
//	mondrian-gen -kind fk -tuples 65536 -r-tuples 8192 -stats
//	mondrian-gen -kind zipf -tuples 1000 -skew 1.5 -csv > skewed.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"github.com/ecocloud-go/mondrian/internal/tuple"
	"github.com/ecocloud-go/mondrian/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mondrian-gen: ")
	var (
		kind   = flag.String("kind", "uniform", "workload: uniform, fk, groupby, zipf, sequential")
		n      = flag.Int("tuples", 1<<16, "relation cardinality")
		rn     = flag.Int("r-tuples", 1<<13, "R cardinality (fk only)")
		seed   = flag.Int64("seed", 42, "generator seed")
		space  = flag.Uint64("keyspace", 0, "key space bound (0 = 4×tuples)")
		groups = flag.Int("group-size", 4, "average group size (groupby only)")
		skew   = flag.Float64("skew", 1.3, "Zipf exponent (zipf only)")
		stats  = flag.Bool("stats", false, "print key distribution statistics")
		csv    = flag.Bool("csv", false, "dump tuples as key,value CSV")
	)
	flag.Parse()

	// Flag values are caller input: reject them with one-line diagnostics
	// instead of letting generator internals panic.
	if *n < 0 {
		log.Fatalf("invalid -tuples %d: want a non-negative cardinality", *n)
	}
	cfg := workload.Config{Seed: *seed, Tuples: *n, KeySpace: *space}
	var rels []*tuple.Relation
	switch *kind {
	case "uniform":
		rels = append(rels, workload.Uniform("uniform", cfg))
	case "fk":
		r, s, err := workload.FKPair(cfg, *rn)
		if err != nil {
			log.Fatal(err)
		}
		rels = append(rels, r, s)
	case "groupby":
		r, err := workload.GroupBy(cfg, *groups)
		if err != nil {
			log.Fatal(err)
		}
		rels = append(rels, r)
	case "zipf":
		r, err := workload.Zipf("zipf", cfg, *skew)
		if err != nil {
			log.Fatal(err)
		}
		rels = append(rels, r)
	case "sequential":
		rels = append(rels, workload.Sequential("sequential", *n))
	default:
		log.Fatalf("unknown workload kind %q", *kind)
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	for _, rel := range rels {
		fmt.Fprintln(out, workload.Describe(rel))
		if *stats {
			printStats(out, rel)
		}
		if *csv {
			for _, t := range rel.Tuples {
				fmt.Fprintf(out, "%d,%d\n", t.Key, t.Val)
			}
		}
	}
}

// printStats summarizes the key distribution: distinct keys, hottest keys,
// and the per-vault balance a 64-way low-bits partitioning would see.
func printStats(out *bufio.Writer, rel *tuple.Relation) {
	counts := make(map[tuple.Key]int)
	var buckets [64]int
	for _, t := range rel.Tuples {
		counts[t.Key]++
		buckets[uint64(t.Key)%64]++
	}
	fmt.Fprintf(out, "  distinct keys: %d\n", len(counts))
	type kc struct {
		k tuple.Key
		c int
	}
	top := make([]kc, 0, len(counts))
	for k, c := range counts {
		top = append(top, kc{k, c})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].c > top[j].c })
	fmt.Fprintf(out, "  hottest keys:")
	for i := 0; i < 3 && i < len(top); i++ {
		fmt.Fprintf(out, " %d(×%d)", top[i].k, top[i].c)
	}
	fmt.Fprintln(out)
	minB, maxB := rel.Len(), 0
	for _, b := range buckets {
		if b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
	}
	mean := float64(rel.Len()) / 64
	fmt.Fprintf(out, "  64-way partition balance: min %d, max %d, mean %.1f (max/mean %.2f)\n",
		minB, maxB, mean, float64(maxB)/mean)
}
