package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestGenRejectsBadFlags pins the generator CLI's error contract: bad
// workload parameters fail with a non-zero exit and one clean stderr line
// — never a panic from the workload package.
func TestGenRejectsBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the CLI")
	}
	bin := filepath.Join(t.TempDir(), "mondrian-gen")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	cases := [][]string{
		{"-tuples", "-5"},
		{"-kind", "fk", "-r-tuples", "0"},
		{"-kind", "fk", "-r-tuples", "-3"},
		{"-kind", "groupby", "-group-size", "0"},
		{"-kind", "zipf", "-skew", "0.5"},
		{"-kind", "martian"},
	}
	for _, args := range cases {
		cmd := exec.Command(bin, args...)
		var stderr strings.Builder
		cmd.Stderr = &stderr
		err := cmd.Run()
		msg := stderr.String()
		if err == nil {
			t.Fatalf("%v exited 0, want failure\nstderr: %s", args, msg)
		}
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("%v did not run: %v", args, err)
		}
		if strings.Count(msg, "\n") != 1 || !strings.HasSuffix(msg, "\n") {
			t.Fatalf("%v stderr is not a single line:\n%s", args, msg)
		}
		for _, leak := range []string{"goroutine ", "panic:", "runtime error"} {
			if strings.Contains(msg, leak) {
				t.Fatalf("%v stderr leaks internals (%q):\n%s", args, leak, msg)
			}
		}
	}
}
