// Command mondrian-serve runs the engine as a live multi-tenant daemon:
// it drives the serve scheduler under a configurable open-loop workload
// (round-robin tenants × systems × operators, rate-paced arrivals) and
// exposes runtime introspection over HTTP (DESIGN.md §17):
//
//	GET /healthz         liveness (200 "ok")
//	GET /metrics         Prometheus text format, live window gauges included
//	GET /tenants         JSON per-tenant live view: rolling p50/p95/p99
//	                     queue wait + simulated latency, SLO burn rate
//	GET /trace/{ticket}  Chrome trace_event JSON for a served request
//	                     (open in Perfetto / chrome://tracing)
//	GET /flightrecorder  JSON dump of the last N request records
//	GET /debug/pprof/    standard Go profiling endpoints
//
// The built-in driver exists so the daemon is inspectable out of the
// box — point a browser at /tenants while it runs. -rate 0 disables it,
// leaving an idle scheduler (useful under external load generators).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/ecocloud-go/mondrian/internal/obs"
	"github.com/ecocloud-go/mondrian/internal/serve"
	"github.com/ecocloud-go/mondrian/internal/simulate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mondrian-serve: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "HTTP listen address (use :0 for an ephemeral port)")
		addrFile = flag.String("addr-file", "", "write the bound address to `file` once listening (lets scripts discover an ephemeral port)")
		duration = flag.Duration("duration", 0, "serve for this long, then shut down cleanly (0 = until SIGINT/SIGTERM)")
		rate     = flag.Float64("rate", 200, "open-loop workload arrival rate in requests/s (0 = no built-in driver)")
		tenants  = flag.Int("tenants", 4, "number of synthetic tenants the driver round-robins across")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "scheduler worker goroutines")
		depth    = flag.Int("queue-depth", 256, "per-tenant queue depth bound")
		budget   = flag.Int64("budget", 0, "aggregate vault-capacity admission budget in bytes (0 = unlimited)")
		flight   = flag.Int("flight", serve.DefaultFlightRecords, "flight-recorder ring size (negative disables)")
		sloMs    = flag.Float64("slo-ms", 50, "per-tenant SLO: target simulated latency in ms")
		sloObj   = flag.Float64("slo-objective", serve.DefaultSLOObjective, "per-tenant SLO objective (fraction of runs within target)")
		winDur   = flag.Duration("window", serve.DefaultWindowDur, "rolling-window slot duration")
		winSlots = flag.Int("window-slots", serve.DefaultWindowSlots, "rolling-window slot count (window covers slots × duration)")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	sched := serve.New(serve.Config{
		Workers:              *workers,
		QueueDepth:           *depth,
		FootprintBudgetBytes: *budget,
		Obs:                  reg,
		HarvestExchange:      true,
		RetainSpans:          true,
		FlightRecords:        *flight,
		FlightDump:           os.Stderr,
		SLOTargetNs:          *sloMs * 1e6,
		SLOObjective:         *sloObj,
		WindowDur:            *winDur,
		WindowSlots:          *winSlots,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("listening on http://%s", ln.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
	}

	srv := &http.Server{Handler: handler(sched, reg)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	var wg sync.WaitGroup
	if *rate > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			drive(ctx, sched, *tenants, *rate)
		}()
	}

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		return err
	}
	log.Printf("shutting down")
	wg.Wait()
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		return err
	}
	sched.Close()
	for _, t := range sched.TenantsSnapshot() {
		log.Printf("tenant %-12s runs %-6d errors %-3d rejects %-3d  queue-wait p99 %.2f ms  latency p99 %.2f ms (sim)  burn %.2f",
			t.Tenant, t.Runs, t.Errors, t.Rejects, t.QueueWaitP99Ns/1e6, t.LatencyP99Ns/1e6, t.SLOBurnRate)
	}
	return nil
}

// handler assembles the introspection mux. Factored out of run so tests
// can drive it with httptest against a deterministic scheduler.
func handler(sched *serve.Scheduler, reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		sched.PublishLive()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.WritePrometheus(w, reg); err != nil {
			log.Printf("metrics: %v", err)
		}
	})
	mux.HandleFunc("/tenants", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, struct {
			Tenants []serve.TenantLive `json:"tenants"`
		}{sched.TenantsSnapshot()})
	})
	mux.HandleFunc("/flightrecorder", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, struct {
			FlightRecords []serve.FlightRecord `json:"flight_records"`
		}{sched.FlightRecords()})
	})
	mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(strings.TrimPrefix(r.URL.Path, "/trace/"), 10, 64)
		if err != nil {
			http.Error(w, "bad ticket id", http.StatusBadRequest)
			return
		}
		spans := sched.TraceSpans(id)
		if spans == nil {
			http.Error(w, "no trace for ticket (fell out of the flight ring, or spans not retained)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := obs.WriteChromeTrace(w, spans); err != nil {
			log.Printf("trace: %v", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("json: %v", err)
	}
}

// driveParams is the workload's per-request shape: the paper's full
// system geometries with a dataset small enough that the daemon turns
// over many requests per second (the same regime mondrian-bench -qps
// measures).
func driveParams() simulate.Params {
	p := simulate.DefaultParams()
	p.STuples = 1 << 10
	p.RTuples = 1 << 9
	p.KeySpace = 1 << 16
	p.CPUBuckets = 1 << 8
	return p
}

// drive submits the open-loop mix until ctx is cancelled: arrival i is
// due at i/rate seconds from start whether or not the service has kept
// up, tenants round-robin, and each request cycles through the system ×
// operator matrix. Admission rejects are expected under overload — they
// are the admission policy working — so they only feed the metrics.
func drive(ctx context.Context, sched *serve.Scheduler, tenants int, rate float64) {
	if tenants < 1 {
		tenants = 1
	}
	systems := simulate.Systems()
	ops := simulate.Operators()
	p := driveParams()
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; ctx.Err() == nil; i++ {
		due := start.Add(time.Duration(float64(i) / rate * float64(time.Second)))
		if wait := time.Until(due); wait > 0 {
			select {
			case <-ctx.Done():
				wg.Wait()
				return
			case <-time.After(wait):
			}
		}
		tenant := "tenant-" + strconv.Itoa(i%tenants)
		req := serve.Request{
			System:   systems[i%len(systems)],
			Operator: ops[(i/len(systems))%len(ops)],
			Params:   p,
			Priority: i % 2,
		}
		ticket, err := sched.Submit(tenant, req)
		if err != nil {
			var adm *serve.ErrAdmission
			if errors.Is(err, serve.ErrClosed) || errors.As(err, &adm) {
				continue
			}
			log.Printf("submit: %v", err)
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ticket.Wait()
		}()
	}
	wg.Wait()
}
