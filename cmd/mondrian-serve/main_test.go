package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"github.com/ecocloud-go/mondrian/internal/obs"
	"github.com/ecocloud-go/mondrian/internal/serve"
	"github.com/ecocloud-go/mondrian/internal/simulate"
)

// testParams shrinks the driver workload so endpoint tests run fast.
func testParams() simulate.Params {
	p := simulate.TestParams()
	p.STuples = 1 << 10
	p.RTuples = 1 << 9
	p.KeySpace = 1 << 16
	p.CPUBuckets = 1 << 8
	return p
}

func TestHandlerEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	sched := serve.New(serve.Config{
		Workers: 2, Obs: reg, HarvestExchange: true, RetainSpans: true,
	})
	defer sched.Close()

	// Serve a small mix so every endpoint has data.
	var tickets []*serve.Ticket
	for i := 0; i < 6; i++ {
		tk, err := sched.Submit("tenant-"+strconv.Itoa(i%2), serve.Request{
			System:   simulate.Mondrian,
			Operator: simulate.Operators()[i%len(simulate.Operators())],
			Params:   testParams(),
		})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for _, tk := range tickets {
		if r := tk.Wait(); r.Err != nil {
			t.Fatal(r.Err)
		}
	}

	srv := httptest.NewServer(handler(sched, reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE tenant_runs counter",
		`tenant_queue_wait_p99_ns{tenant="tenant-0"}`,
		`tenant_latency_p50_ns{tenant="tenant-1"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get("/tenants")
	if code != 200 {
		t.Fatalf("/tenants = %d", code)
	}
	var tn struct {
		Tenants []serve.TenantLive `json:"tenants"`
	}
	if err := json.Unmarshal([]byte(body), &tn); err != nil {
		t.Fatalf("/tenants not JSON: %v", err)
	}
	if len(tn.Tenants) != 2 {
		t.Fatalf("/tenants = %d tenants, want 2", len(tn.Tenants))
	}
	for _, tenant := range tn.Tenants {
		if tenant.QueueWaitP50Ns <= 0 || tenant.QueueWaitP99Ns <= 0 ||
			tenant.LatencyP50Ns <= 0 || tenant.LatencyP99Ns <= 0 {
			t.Fatalf("tenant %q has empty live percentiles: %+v", tenant.Tenant, tenant)
		}
	}

	code, body = get("/flightrecorder")
	if code != 200 {
		t.Fatalf("/flightrecorder = %d", code)
	}
	var fr struct {
		FlightRecords []serve.FlightRecord `json:"flight_records"`
	}
	if err := json.Unmarshal([]byte(body), &fr); err != nil {
		t.Fatalf("/flightrecorder not JSON: %v", err)
	}
	if len(fr.FlightRecords) != 6 {
		t.Fatalf("/flightrecorder = %d records, want 6", len(fr.FlightRecords))
	}

	ticket := fr.FlightRecords[len(fr.FlightRecords)-1].Ticket
	code, body = get("/trace/" + strconv.FormatUint(ticket, 10))
	if code != 200 {
		t.Fatalf("/trace/%d = %d", ticket, code)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace not valid trace_event JSON: %v", err)
	}
	if len(doc.TraceEvents) < 2 {
		t.Fatalf("/trace has %d events", len(doc.TraceEvents))
	}

	if code, _ := get("/trace/999999"); code != http.StatusNotFound {
		t.Fatalf("/trace of unknown ticket = %d, want 404", code)
	}
	if code, _ := get("/trace/notanumber"); code != http.StatusBadRequest {
		t.Fatalf("/trace of garbage = %d, want 400", code)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}
