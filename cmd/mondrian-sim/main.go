// Command mondrian-sim runs a single operator on a single system
// configuration and prints a detailed timing, bandwidth, DRAM and energy
// report — the tool for exploring one point of the design space.
//
// Example:
//
//	mondrian-sim -system mondrian -op join -s-tuples 262144
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"github.com/ecocloud-go/mondrian/internal/simulate"
)

var systems = map[string]simulate.System{
	"cpu":             simulate.CPU,
	"nmp":             simulate.NMP,
	"nmp-perm":        simulate.NMPPerm,
	"nmp-rand":        simulate.NMPRand,
	"nmp-seq":         simulate.NMPSeq,
	"mondrian-noperm": simulate.MondrianNoPerm,
	"mondrian":        simulate.Mondrian,
}

var operators = map[string]simulate.Operator{
	"scan":    simulate.OpScan,
	"sort":    simulate.OpSort,
	"groupby": simulate.OpGroupBy,
	"join":    simulate.OpJoin,
}

func keys[M map[string]V, V any](m M) string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return strings.Join(out, ", ")
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mondrian-sim: ")
	if err := run(); err != nil {
		// Every failure — invalid flag values included — is a one-line
		// typed error from the simulate boundary, never a stack trace.
		log.Fatal(err)
	}
}

func run() error {
	defaults := simulate.DefaultParams()
	var (
		sysName  = flag.String("system", "mondrian", "system: "+keys(systems))
		opName   = flag.String("op", "join", "operator: "+keys(operators))
		sTup     = flag.Int("s-tuples", 1<<16, "large-relation cardinality")
		rTup     = flag.Int("r-tuples", 1<<15, "small join relation cardinality")
		group    = flag.Int("group-size", defaults.GroupSize, "average group size (groupby)")
		keySpace = flag.Uint64("keyspace", defaults.KeySpace, "key space bound (must be a power of two)")
		vaultCap = flag.Int64("vault-cap", defaults.VaultCapBytes, "per-vault DRAM capacity in bytes")
		par      = flag.Int("parallelism", defaults.Parallelism, "host worker pool (0 = GOMAXPROCS, 1 = serial)")
		seed     = flag.Int64("seed", 42, "workload seed")
		steps    = flag.Bool("steps", false, "print the per-step timeline")
	)
	flag.Parse()

	sys, ok := systems[strings.ToLower(*sysName)]
	if !ok {
		return fmt.Errorf("unknown system %q (want one of %s)", *sysName, keys(systems))
	}
	op, ok := operators[strings.ToLower(*opName)]
	if !ok {
		return fmt.Errorf("unknown operator %q (want one of %s)", *opName, keys(operators))
	}

	p := defaults
	p.STuples = *sTup
	p.RTuples = *rTup
	p.GroupSize = *group
	p.KeySpace = *keySpace
	p.VaultCapBytes = *vaultCap
	p.Parallelism = *par
	p.Seed = *seed

	res, err := simulate.Run(sys, op, p)
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "system\t%v\n", res.System)
	fmt.Fprintf(w, "operator\t%v\n", res.Operator)
	fmt.Fprintf(w, "verified\t%v\n", res.Verified)
	fmt.Fprintf(w, "partition\t%.3f ms\n", res.PartitionNs/1e6)
	fmt.Fprintf(w, "probe\t%.3f ms\n", res.ProbeNs/1e6)
	fmt.Fprintf(w, "total\t%.3f ms\n", res.TotalNs/1e6)
	if res.DistBWPerVaultGBs > 0 {
		fmt.Fprintf(w, "distribution BW\t%.2f GB/s per vault\n", res.DistBWPerVaultGBs)
	}
	if res.ProbeBWPerVaultGBs > 0 {
		fmt.Fprintf(w, "probe BW\t%.2f GB/s per vault\n", res.ProbeBWPerVaultGBs)
	}
	fmt.Fprintf(w, "DRAM accesses\t%d (%.1f%% row hits)\n",
		res.DRAM.Accesses(), res.DRAM.RowHitRate()*100)
	fmt.Fprintf(w, "row activations\t%d\n", res.DRAM.Activations)
	fmt.Fprintf(w, "bytes moved\t%d\n", res.DRAM.TotalBytes())
	fmt.Fprintf(w, "energy\t%s\n", res.Energy)
	if err := w.Flush(); err != nil {
		return err
	}

	if *steps {
		fmt.Println("\nstep timeline:")
		for i, st := range res.Steps {
			if st.Ns == 0 {
				continue
			}
			fmt.Printf("  %2d %-32s %10.1f µs  (compute %.1f µs, mem %.1f µs, net %.1f µs, IPC %.2f)\n",
				i, st.Name, st.Ns/1e3, st.MaxUnitNs/1e3, st.MemNs/1e3, st.NetNs/1e3, st.AggIPC)
		}
	}
	return nil
}
