// Command mondrian-sim runs a single operator on a single system
// configuration and prints a detailed timing, bandwidth, DRAM and energy
// report — the tool for exploring one point of the design space.
//
// Beyond the registered systems, the spec-override flags derive a custom
// variant of the selected system on the fly:
//
//	mondrian-sim -system mondrian -op join -s-tuples 262144
//	mondrian-sim -system mondrian -op scan -stream-buffers 4
//	mondrian-sim -system nmp -op join -topology star -l1-bytes 16384
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/ecocloud-go/mondrian/internal/cliio"
	"github.com/ecocloud-go/mondrian/internal/noc"
	"github.com/ecocloud-go/mondrian/internal/obs"
	"github.com/ecocloud-go/mondrian/internal/simulate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mondrian-sim: ")
	if err := run(); err != nil {
		// Every failure — invalid flag values included — is a one-line
		// typed error from the simulate boundary, never a stack trace.
		log.Fatal(err)
	}
}

// customize derives a one-off system from base's registered spec with
// the given overrides applied, registers it under a derived name, and
// returns its handle. Zero values leave the base spec untouched.
func customize(base simulate.System, topo string, l1Bytes, streamBufs int) (simulate.System, error) {
	sp, ok := simulate.SpecOf(base)
	if !ok {
		return 0, fmt.Errorf("unknown system %v", base)
	}
	sp.Name += "+custom"
	switch strings.ToLower(topo) {
	case "":
	case "star":
		sp.Engine.Topology = noc.Star
	case "full", "fully-connected":
		sp.Engine.Topology = noc.FullyConnected
	default:
		return 0, fmt.Errorf("unknown topology %q (want star or full)", topo)
	}
	if l1Bytes != 0 {
		if l1Bytes < 0 {
			return 0, fmt.Errorf("negative L1 size %d bytes", l1Bytes)
		}
		sp.Engine.L1.SizeBytes = l1Bytes
	}
	if streamBufs != 0 {
		if streamBufs < 0 {
			return 0, fmt.Errorf("negative stream-buffer count %d", streamBufs)
		}
		sp.Engine.StreamBuffers = streamBufs
	}
	return simulate.Register(sp)
}

func run() error {
	defaults := simulate.DefaultParams()
	var (
		sysName = flag.String("system", "mondrian", "system: "+strings.ToLower(strings.Join(simulate.SystemNames(), ", ")))
		opName  = flag.String("op", "join", "operator: "+strings.Join(simulate.OperatorNames(), ", ")+
			"; or a query plan: "+strings.Join(simulate.PlanNames(), ", "))
		staged   = flag.Bool("staged", false, "disable the query-plan compiler's re-shuffle elision (plans only): every stage re-partitions from scratch")
		sTup     = flag.Int("s-tuples", 1<<16, "large-relation cardinality")
		rTup     = flag.Int("r-tuples", 1<<15, "small join relation cardinality")
		group    = flag.Int("group-size", defaults.GroupSize, "average group size (groupby)")
		keySpace = flag.Uint64("keyspace", defaults.KeySpace, "key space bound (must be a power of two)")
		vaultCap = flag.Int64("vault-cap", defaults.VaultCapBytes, "per-vault DRAM capacity in bytes")
		par      = flag.Int("parallelism", defaults.Parallelism, "host worker pool (0 = GOMAXPROCS, 1 = serial)")
		seed     = flag.Int64("seed", 42, "workload seed")
		steps    = flag.Bool("steps", false, "print the per-step timeline")
		repeat   = flag.Int("repeat", 1, "re-run the same request N times on one pooled engine and report the amortized construction overhead per run")
		noPool   = flag.Bool("no-pool", defaults.NoPool, "construct a fresh engine per run instead of drawing a reset one from the engine pool; simulated results are byte-identical")

		// Skew knobs. -skew-aware defaults to the MONDRIAN_SKEW_AWARE
		// environment override so the flag and variable compose.
		skewAware = flag.Bool("skew-aware", defaults.SkewAware, "enable skew-aware execution (heavy-hitter detection, exact provisioning, hot-key splitting, work stealing)")

		// -columnar defaults to the MONDRIAN_COLUMNAR environment
		// override so the flag and variable compose.
		columnar = flag.Bool("columnar", defaults.Columnar, "run the columnar (structure-of-arrays) host kernels; simulated results are byte-identical")
		zipfS    = flag.Float64("zipf-s", 0, "Zipf exponent for skewed workload keys (0 = uniform; must be > 1 otherwise)")
		overprov = flag.Float64("overprovision", 0, "destination-buffer overprovision factor (0 = operator default)")

		// Observability outputs. Setting any of them enables the metrics
		// registry for the run; "-" writes to stdout.
		metricsOut = flag.String("metrics", "", "write the JSON run manifest to `file` (\"-\" = stdout)")
		promOut    = flag.String("prom", "", "write the metrics in Prometheus text format to `file` (\"-\" = stdout)")
		spans      = flag.Bool("spans", false, "collect the simulated-time span tree: print it and embed it in -metrics")
		chromeOut  = flag.String("chrome-trace", "", "write the span tree as Chrome trace_event JSON to `file` (\"-\" = stdout); open in Perfetto or chrome://tracing")

		// Spec overrides: derive a custom variant of -system.
		topo       = flag.String("topology", "", "override the inter-cube topology: star or full")
		l1Bytes    = flag.Int("l1-bytes", 0, "override the per-unit L1 capacity in bytes (0 = system default)")
		streamBufs = flag.Int("stream-buffers", 0, "override the per-unit stream-buffer count (0 = architectural default)")
		cpuCores   = flag.Int("cpu-cores", 0, "override the host core count on CPU systems (0 = default)")
	)
	flag.Parse()

	sys, err := simulate.ParseSystem(*sysName)
	if err != nil {
		return err
	}
	// -op selects a single operator or, when the name matches a registered
	// query shape, a compiled multi-operator plan.
	op, opErr := simulate.ParseOperator(*opName)
	var pl simulate.Plan
	isPlan := false
	if opErr != nil {
		if pl, err = simulate.ParsePlan(*opName); err != nil {
			return opErr
		}
		isPlan = true
	}
	if *topo != "" || *l1Bytes != 0 || *streamBufs != 0 {
		if sys, err = customize(sys, *topo, *l1Bytes, *streamBufs); err != nil {
			return err
		}
	}

	p := defaults
	p.STuples = *sTup
	p.RTuples = *rTup
	p.GroupSize = *group
	p.KeySpace = *keySpace
	p.VaultCapBytes = *vaultCap
	p.Parallelism = *par
	p.Seed = *seed
	p.SkewAware = *skewAware
	p.Columnar = *columnar
	p.ZipfS = *zipfS
	p.Overprovision = *overprov
	p.NoFusion = *staged
	p.NoPool = *noPool
	if *cpuCores != 0 {
		p.CPUCores = *cpuCores
	}

	observing := *metricsOut != "" || *promOut != "" || *spans || *chromeOut != ""
	if observing {
		p.Obs = obs.NewRegistry()
	}
	if isPlan {
		wall, err := runPlan(sys, pl, p, *steps, *spans, *metricsOut, *promOut, *chromeOut)
		if err != nil {
			return err
		}
		return repeatReport(*repeat, wall, func() (time.Duration, error) {
			rp := p
			rp.Obs = nil
			t0 := time.Now()
			_, err := simulate.RunPlan(sys, pl, rp)
			return time.Since(t0), err
		})
	}
	start := time.Now()
	res, err := simulate.Run(sys, op, p)
	wall := time.Since(start)
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "system\t%v\n", res.System)
	fmt.Fprintf(w, "operator\t%v\n", res.Operator)
	fmt.Fprintf(w, "verified\t%v\n", res.Verified)
	fmt.Fprintf(w, "partition\t%.3f ms\n", res.PartitionNs/1e6)
	fmt.Fprintf(w, "probe\t%.3f ms\n", res.ProbeNs/1e6)
	fmt.Fprintf(w, "total\t%.3f ms\n", res.TotalNs/1e6)
	if res.DistBWPerVaultGBs > 0 {
		fmt.Fprintf(w, "distribution BW\t%.2f GB/s per vault\n", res.DistBWPerVaultGBs)
	}
	if res.ProbeBWPerVaultGBs > 0 {
		fmt.Fprintf(w, "probe BW\t%.2f GB/s per vault\n", res.ProbeBWPerVaultGBs)
	}
	fmt.Fprintf(w, "DRAM accesses\t%d (%.1f%% row hits)\n",
		res.DRAM.Accesses(), res.DRAM.RowHitRate()*100)
	fmt.Fprintf(w, "row activations\t%d\n", res.DRAM.Activations)
	fmt.Fprintf(w, "bytes moved\t%d\n", res.DRAM.TotalBytes())
	fmt.Fprintf(w, "energy\t%s\n", res.Energy)
	if err := w.Flush(); err != nil {
		return err
	}

	if *steps {
		fmt.Println("\nstep timeline:")
		for i, st := range res.Steps {
			if st.Ns == 0 {
				continue
			}
			fmt.Printf("  %2d %-32s %10.1f µs  (compute %.1f µs, mem %.1f µs, net %.1f µs, IPC %.2f)\n",
				i, st.Name, st.Ns/1e3, st.MaxUnitNs/1e3, st.MemNs/1e3, st.NetNs/1e3, st.AggIPC)
		}
	}

	rerun := func() (time.Duration, error) {
		rp := p
		rp.Obs = nil
		t0 := time.Now()
		_, err := simulate.Run(sys, op, rp)
		return time.Since(t0), err
	}
	if !observing {
		return repeatReport(*repeat, wall, rerun)
	}
	m := simulate.BuildManifest(res, p, *spans)
	m.Host.WallNs = wall.Nanoseconds()
	m.Host.Timestamp = start.UTC().Format(time.RFC3339)
	if *spans {
		fmt.Println("\nspan tree (simulated time):")
		if err := res.Spans.WriteTree(os.Stdout, 2); err != nil {
			return err
		}
	}
	if *metricsOut != "" {
		if err := cliio.WriteFile(*metricsOut, func(w io.Writer) error {
			return m.WriteJSON(w)
		}); err != nil {
			return err
		}
	}
	if *promOut != "" {
		if err := cliio.WriteFile(*promOut, func(w io.Writer) error {
			return obs.WritePrometheus(w, p.Obs)
		}); err != nil {
			return err
		}
	}
	if *chromeOut != "" {
		if err := cliio.WriteFile(*chromeOut, func(w io.Writer) error {
			return obs.WriteChromeTrace(w, res.Spans)
		}); err != nil {
			return err
		}
	}
	return repeatReport(*repeat, wall, rerun)
}

// repeatReport re-runs the request n-1 more times and prints the pooled
// lifecycle's amortization summary. The first run paid engine
// construction (a pool miss); steady-state runs draw a reset engine from
// the pool, so the first-vs-steady difference is the construction
// overhead pooling amortizes away. With -no-pool every run pays it
// again, which makes the two modes directly comparable.
func repeatReport(n int, first time.Duration, rerun func() (time.Duration, error)) error {
	if n <= 1 {
		return nil
	}
	var steady time.Duration
	for i := 1; i < n; i++ {
		d, err := rerun()
		if err != nil {
			return err
		}
		steady += d
	}
	mean := steady / time.Duration(n-1)
	over := first - mean
	if over < 0 {
		over = 0
	}
	st := simulate.PoolStats()
	fmt.Printf("\nrepeat: %d runs — first %.3f ms, steady-state mean %.3f ms\n",
		n, float64(first.Nanoseconds())/1e6, float64(mean.Nanoseconds())/1e6)
	fmt.Printf("construction overhead: %.3f ms once, %.3f ms amortized per run (engine pool: %d hits, %d misses)\n",
		float64(over.Nanoseconds())/1e6, float64(over.Nanoseconds())/1e6/float64(n), st.Hits, st.Misses)
	return nil
}

// runPlan executes a compiled query plan and prints the per-stage
// report, returning the first run's host wall time.
func runPlan(sys simulate.System, pl simulate.Plan, p simulate.Params,
	steps, spans bool, metricsOut, promOut, chromeOut string) (time.Duration, error) {
	start := time.Now()
	res, err := simulate.RunPlan(sys, pl, p)
	wall := time.Since(start)
	if err != nil {
		return wall, err
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "system\t%v\n", res.System)
	fmt.Fprintf(w, "plan\t%v\n", res.Plan)
	if p.NoFusion {
		fmt.Fprintf(w, "mode\tstaged (fusion disabled)\n")
	} else {
		noun := "re-shuffles"
		if res.Elisions == 1 {
			noun = "re-shuffle"
		}
		fmt.Fprintf(w, "mode\tfused (%d %s elided)\n", res.Elisions, noun)
	}
	fmt.Fprintf(w, "verified\t%v\n", res.Verified)
	for _, st := range res.Stages {
		mark := ""
		if st.Fused {
			mark = "  [fused]"
		}
		fmt.Fprintf(w, "stage %s\t%.3f ms  (%d tuples out)%s\n", st.Name, st.Ns/1e6, st.Tuples, mark)
	}
	fmt.Fprintf(w, "total\t%.3f ms\n", res.TotalNs/1e6)
	fmt.Fprintf(w, "DRAM accesses\t%d (%.1f%% row hits)\n",
		res.DRAM.Accesses(), res.DRAM.RowHitRate()*100)
	fmt.Fprintf(w, "row activations\t%d\n", res.DRAM.Activations)
	fmt.Fprintf(w, "bytes moved\t%d\n", res.DRAM.TotalBytes())
	fmt.Fprintf(w, "energy\t%s\n", res.Energy)
	if err := w.Flush(); err != nil {
		return wall, err
	}

	if steps {
		fmt.Println("\nstep timeline:")
		for i, st := range res.Steps {
			if st.Ns == 0 {
				continue
			}
			fmt.Printf("  %2d %-32s %10.1f µs  (compute %.1f µs, mem %.1f µs, net %.1f µs, IPC %.2f)\n",
				i, st.Name, st.Ns/1e3, st.MaxUnitNs/1e3, st.MemNs/1e3, st.NetNs/1e3, st.AggIPC)
		}
	}

	if p.Obs == nil {
		return wall, nil
	}
	m := simulate.BuildPlanManifest(res, p, spans)
	m.Host.WallNs = wall.Nanoseconds()
	m.Host.Timestamp = start.UTC().Format(time.RFC3339)
	if spans {
		fmt.Println("\nspan tree (simulated time):")
		if err := res.Spans.WriteTree(os.Stdout, 2); err != nil {
			return wall, err
		}
	}
	if metricsOut != "" {
		if err := cliio.WriteFile(metricsOut, func(w io.Writer) error {
			return m.WriteJSON(w)
		}); err != nil {
			return wall, err
		}
	}
	if promOut != "" {
		if err := cliio.WriteFile(promOut, func(w io.Writer) error {
			return obs.WritePrometheus(w, p.Obs)
		}); err != nil {
			return wall, err
		}
	}
	if chromeOut != "" {
		if err := cliio.WriteFile(chromeOut, func(w io.Writer) error {
			return obs.WriteChromeTrace(w, res.Spans)
		}); err != nil {
			return wall, err
		}
	}
	return wall, nil
}
