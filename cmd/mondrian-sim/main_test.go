package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles the command under test once into the test's temp dir.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cli")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// assertCleanFailure runs the binary and asserts the error contract: a
// non-zero exit and exactly one stderr line that reads as a diagnostic —
// no stack trace, no goroutine dump.
func assertCleanFailure(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err := cmd.Run()
	msg := stderr.String()
	if err == nil {
		t.Fatalf("%v exited 0, want failure\nstderr: %s", args, msg)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("%v did not run: %v", args, err)
	}
	if strings.Count(msg, "\n") != 1 || !strings.HasSuffix(msg, "\n") {
		t.Fatalf("%v stderr is not a single line:\n%s", args, msg)
	}
	for _, leak := range []string{"goroutine ", "panic:", "runtime error"} {
		if strings.Contains(msg, leak) {
			t.Fatalf("%v stderr leaks internals (%q):\n%s", args, leak, msg)
		}
	}
	return msg
}

// TestCLIRejectsCrashReproducers pins the four formerly-crashing
// invocations from the issue: each must fail with a clean one-line
// diagnostic naming the offending parameter.
func TestCLIRejectsCrashReproducers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the CLI")
	}
	bin := buildCLI(t)
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-op", "scan", "-s-tuples", "-5"}, "STuples"},
		{[]string{"-op", "join", "-r-tuples", "0"}, "RTuples"},
		{[]string{"-op", "groupby", "-group-size", "0"}, "GroupSize"},
		{[]string{"-op", "scan", "-vault-cap", "0"}, "VaultCapBytes"},
	}
	for _, tc := range cases {
		msg := assertCleanFailure(t, bin, tc.args...)
		if !strings.Contains(msg, tc.want) {
			t.Fatalf("%v stderr %q does not name %s", tc.args, msg, tc.want)
		}
	}
}

// TestCLIRejectsUnknownSelectors covers the -system/-op spelling errors.
func TestCLIRejectsUnknownSelectors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the CLI")
	}
	bin := buildCLI(t)
	assertCleanFailure(t, bin, "-system", "abacus")
	assertCleanFailure(t, bin, "-op", "shuffleboard")
	assertCleanFailure(t, bin, "-topology", "ring")
	assertCleanFailure(t, bin, "-stream-buffers", "-2")
	assertCleanFailure(t, bin, "-l1-bytes", "-1")
}

// TestCLICustomSystem derives Mondrian with four stream buffers through
// the spec-override flags and runs a scan end-to-end. Scan opens one
// stream per unit, so it stays within the shrunken buffer set.
func TestCLICustomSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the CLI")
	}
	bin := buildCLI(t)
	out, err := exec.Command(bin, "-system", "mondrian", "-op", "scan",
		"-stream-buffers", "4", "-s-tuples", "4096").CombinedOutput()
	if err != nil {
		t.Fatalf("custom-system run failed: %v\n%s", err, out)
	}
	got := string(out)
	if !strings.Contains(got, "Mondrian+custom") {
		t.Fatalf("report does not name the derived system:\n%s", got)
	}
	if !strings.Contains(got, "verified") || strings.Contains(got, "false") {
		t.Fatalf("custom-system scan did not verify:\n%s", got)
	}
}

// TestCLITopologyAndCacheOverrides drives the remaining override flags
// through a small NMP join: star topology, a quarter-size L1, and an
// explicit host-core count on the CPU system.
func TestCLITopologyAndCacheOverrides(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the CLI")
	}
	bin := buildCLI(t)
	out, err := exec.Command(bin, "-system", "nmp", "-op", "scan",
		"-topology", "star", "-l1-bytes", "8192", "-s-tuples", "4096").CombinedOutput()
	if err != nil {
		t.Fatalf("override run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "NMP+custom") {
		t.Fatalf("report does not name the derived system:\n%s", out)
	}
	out, err = exec.Command(bin, "-system", "cpu", "-op", "scan",
		"-cpu-cores", "8", "-s-tuples", "4096").CombinedOutput()
	if err != nil {
		t.Fatalf("-cpu-cores run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "CPU") {
		t.Fatalf("unexpected report:\n%s", out)
	}
}
