// Command mondrian-trace records the memory-access stream of one
// partitioning phase and reports its locality structure — making the
// paper's Fig. 2 mechanism directly observable: with permutability the
// write stream arriving at each destination vault is perfectly
// sequential; without it, the interleaved arrivals destroy row locality.
//
// Example:
//
//	mondrian-trace -system nmp -tuples 16384
//	mondrian-trace -system nmp-perm -tuples 16384 -csv > trace.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"sort"
	"strings"

	"github.com/ecocloud-go/mondrian/internal/cliio"
	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/operators"
	"github.com/ecocloud-go/mondrian/internal/simulate"
	"github.com/ecocloud-go/mondrian/internal/trace"
	"github.com/ecocloud-go/mondrian/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mondrian-trace: ")
	// The tool drives the engine/operators layers directly, below
	// simulate.Run; Protect installs the same recovery boundary, so an
	// internal invariant panic reports as a one-line error here too.
	if err := simulate.Protect("trace", run); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		sysName = flag.String("system", "nmp", "system: "+strings.ToLower(strings.Join(simulate.SystemNames(), ", ")))
		n       = flag.Int("tuples", 1<<14, "input cardinality")
		seed    = flag.Int64("seed", 42, "workload seed")
		csv     = flag.Bool("csv", false, "dump the raw shuffle trace as CSV")
		limit   = flag.Int("limit", 1<<20, "max recorded events")
	)
	flag.Parse()

	sys, err := simulate.ParseSystem(*sysName)
	if err != nil {
		return err
	}
	p := simulate.DefaultParams()
	p.STuples = *n
	p.Seed = *seed
	if err := p.Validate(); err != nil {
		return err
	}

	e, err := engine.New(p.EngineConfig(sys))
	if err != nil {
		return err
	}
	rec := &trace.Recorder{Limit: *limit, KindFilter: map[engine.AccessKind]bool{
		engine.TraceShuffle:  true,
		engine.TracePermuted: true,
		engine.TraceDemand:   sys == simulate.CPU, // CPU shuffles through demand stores
	}}
	e.SetTracer(rec)

	rel := workload.Uniform("in", workload.Config{Seed: p.Seed, Tuples: p.STuples, KeySpace: p.KeySpace})
	parts := rel.SplitEven(e.NumVaults())
	inputs := make([]*engine.Region, len(parts))
	for v, part := range parts {
		r, err := e.Place(v, part.Tuples)
		if err != nil {
			return err
		}
		inputs[v] = r
	}
	opCfg := p.OperatorConfig(sys)
	part := operators.Partitioner{Buckets: e.NumVaults(), KeySpace: p.KeySpace}
	if e.Config().Arch == engine.CPU {
		part.Buckets = p.CPUBuckets
	}
	pres, err := operators.PartitionPhase(e, opCfg, inputs, part)
	if err != nil {
		return err
	}

	events := rec.Events()
	if *csv {
		// cliio flushes the buffered writer and surfaces its error even
		// when WriteCSV fails mid-stream, so a broken pipe or full disk
		// can't silently truncate the trace.
		return cliio.WriteFile(cliio.Stdout, func(out io.Writer) error {
			return trace.WriteCSV(out, events)
		})
	}

	rowBytes := p.EngineConfig(sys).Geometry.RowBytes
	overall := trace.Analyze(events, rowBytes)
	fmt.Printf("system: %v, partitioning %d tuples into %d buckets\n", sys, *n, part.Buckets)
	fmt.Printf("partition phase: histogram %.1f µs + distribute %.1f µs\n",
		pres.HistogramNs/1e3, pres.DistributeNs/1e3)
	fmt.Printf("shuffle trace: %s", overall.Summary())
	if rec.Dropped() > 0 {
		fmt.Printf(" (+%d dropped)", rec.Dropped())
	}
	fmt.Println()

	// Per-destination-vault arrival streams: the paper's Fig. 2 view.
	byVault := make(map[int][]trace.Event)
	for _, ev := range events {
		byVault[e.Sys.VaultOf(ev.Addr).ID] = append(byVault[e.Sys.VaultOf(ev.Addr).ID], ev)
	}
	vaults := make([]int, 0, len(byVault))
	for v := range byVault {
		vaults = append(vaults, v)
	}
	sort.Ints(vaults)
	fmt.Println("\nper-destination arrival streams (first 8 vaults):")
	for i, v := range vaults {
		if i == 8 {
			break
		}
		s := trace.Analyze(byVault[v], rowBytes)
		fmt.Printf("  vault %2d: %6d writes, seq %5.1f%%, rows %5d, row switches %6d\n",
			v, s.Events, s.SeqRatio*100, s.RowsTouched, s.RowSwitches)
	}
	ds := e.DRAMStats()
	fmt.Printf("\nDRAM: %d activations over %d accesses (row-hit rate %.1f%%)\n",
		ds.Activations, ds.Accesses(), ds.RowHitRate()*100)
	return nil
}
