// Analytics: a business-intelligence style aggregation pipeline — the
// workload class the paper's introduction motivates. A fact table of
// sales events is grouped by product with the engine's six aggregation
// functions, on every evaluated system, using the engine API directly
// (rather than the canned experiment harness).
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"

	mondrian "github.com/ecocloud-go/mondrian"
)

// place spreads a relation evenly over the engine's vaults — the initial
// random distribution of a freshly loaded dataset.
func place(e *mondrian.Engine, rel *mondrian.Relation) ([]*mondrian.Region, error) {
	parts := rel.SplitEven(e.NumVaults())
	regions := make([]*mondrian.Region, len(parts))
	for v, p := range parts {
		r, err := e.Place(v, p.Tuples)
		if err != nil {
			return nil, err
		}
		regions[v] = r
	}
	return regions, nil
}

func main() {
	log.SetFlags(0)
	params := mondrian.DefaultParams()

	// "Sales events": keys are product IDs (average 4 events per
	// product, the paper's modeled group size), payloads are amounts.
	sales, err := mondrian.GroupByRelation(mondrian.WorkloadConfig{
		Seed:   7,
		Tuples: 1 << 16,
	}, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fact table: %d sales events\n\n", sales.Len())

	systems := []mondrian.System{
		mondrian.SystemCPU, mondrian.SystemNMPRand, mondrian.SystemNMPSeq, mondrian.SystemMondrian,
	}
	want := mondrian.RefGroupBy(sales.Tuples)

	for _, sys := range systems {
		e, err := mondrian.NewEngine(params.EngineConfig(sys))
		if err != nil {
			log.Fatal(err)
		}
		inputs, err := place(e, sales)
		if err != nil {
			log.Fatal(err)
		}
		res, err := mondrian.GroupBy(e, params.OperatorConfig(sys), inputs)
		if err != nil {
			log.Fatal(err)
		}
		if res.Groups != len(want) {
			log.Fatalf("%v: %d groups, want %d", sys, res.Groups, len(want))
		}
		fmt.Printf("%-10v %d products aggregated in %8.1f µs (partition %.1f, probe %.1f)\n",
			sys, res.Groups, res.Ns()/1e3, res.PartitionNs/1e3, res.ProbeNs/1e3)
	}

	// Show a few aggregates from the reference for flavor.
	fmt.Println("\nsample aggregates (product → count, sum, min, max):")
	shown := 0
	for product, agg := range want {
		fmt.Printf("  product %-8d count=%-4d sum=%-10d min=%-8d max=%d\n",
			product, agg.Count, agg.Sum, agg.Min, agg.Max)
		if shown++; shown == 3 {
			break
		}
	}
}
