// Graphrank: BSP graph processing on the Mondrian Data Engine — the
// paper's §4.1.2 claim that permutability extends to "any BSP-based graph
// processing algorithm". Fixed-point PageRank and connected components
// run on a random graph; every superstep's message exchange uses the
// permutable shuffle, and results are verified against plain-Go
// references.
//
//	go run ./examples/graphrank
package main

import (
	"fmt"
	"log"
	"sort"

	mondrian "github.com/ecocloud-go/mondrian"
)

func main() {
	log.SetFlags(0)
	params := mondrian.DefaultParams()

	const vertices, degree, steps = 20000, 8, 10
	g := mondrian.RandomGraph(vertices, degree, 99)
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.NumVertices, g.NumEdges())

	// --- PageRank on Mondrian vs the NMP baseline ----------------------
	want := mondrian.RefPageRank(g, steps)
	for _, sys := range []mondrian.System{mondrian.SystemNMP, mondrian.SystemMondrian} {
		e, err := mondrian.NewEngine(params.EngineConfig(sys))
		if err != nil {
			log.Fatal(err)
		}
		res, err := mondrian.RunBSP(e, mondrian.PageRankProgram(), g, steps)
		if err != nil {
			log.Fatal(err)
		}
		for v := range want {
			if res.States[v] != want[v] {
				log.Fatalf("%v: rank mismatch at vertex %d", sys, v)
			}
		}
		fmt.Printf("%-10v PageRank ×%d supersteps: %8.1f µs, %d row activations ✓\n",
			sys, res.Supersteps, res.TotalNs/1e3, e.DRAMStats().Activations)
	}

	// Top-ranked vertices.
	type vr struct {
		v    int
		rank int64
	}
	ranked := make([]vr, vertices)
	for v, r := range want {
		ranked[v] = vr{v, r}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].rank > ranked[j].rank })
	fmt.Println("\ntop vertices by rank (fixed-point):")
	for i := 0; i < 3; i++ {
		fmt.Printf("  vertex %-6d rank %.3f\n", ranked[i].v,
			float64(ranked[i].rank)/float64(mondrian.RefPageRank(mondrian.RingGraph(1), 0)[0]))
	}

	// --- connected components ------------------------------------------
	sym := mondrian.Symmetrize(mondrian.RingGraph(1000))
	e, err := mondrian.NewEngine(params.EngineConfig(mondrian.SystemMondrian))
	if err != nil {
		log.Fatal(err)
	}
	cc, err := mondrian.RunBSP(e, mondrian.ComponentsProgram(), sym, 5000)
	if err != nil {
		log.Fatal(err)
	}
	labels := map[int64]bool{}
	for _, l := range cc.States {
		labels[l] = true
	}
	fmt.Printf("\nconnected components of a 1000-ring: %d component(s) after %d supersteps ✓\n",
		len(labels), cc.Supersteps)
}
