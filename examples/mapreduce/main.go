// Mapreduce: the paper's §4.1.2 claim in action — data permutability
// "also applies to the data partitioning and shuffling phase of
// MapReduce". A word-count-style job runs on the engine's MapReduce
// layer; the map→reduce shuffle goes through the permutable-store path,
// and the example contrasts the DRAM row activations of the shuffle with
// and without hardware permutability.
//
//	go run ./examples/mapreduce
package main

import (
	"fmt"
	"log"

	mondrian "github.com/ecocloud-go/mondrian"
)

func place(e *mondrian.Engine, rel *mondrian.Relation) ([]*mondrian.Region, error) {
	parts := rel.SplitEven(e.NumVaults())
	regions := make([]*mondrian.Region, len(parts))
	for v, p := range parts {
		r, err := e.Place(v, p.Tuples)
		if err != nil {
			return nil, err
		}
		regions[v] = r
	}
	return regions, nil
}

func main() {
	log.SetFlags(0)
	params := mondrian.DefaultParams()

	// "Documents": keys are word IDs (each word appears ~6 times).
	words, err := mondrian.GroupByRelation(mondrian.WorkloadConfig{Seed: 13, Tuples: 1 << 15}, 6)
	if err != nil {
		log.Fatal(err)
	}

	job := mondrian.MapReduceJob{
		Name: "wordcount",
		Map: func(t mondrian.Tuple, emit func(mondrian.Tuple)) {
			emit(mondrian.Tuple{Key: t.Key, Val: 1})
		},
		Reduce: func(k mondrian.Key, vs []mondrian.Value, emit func(mondrian.Tuple)) {
			var sum mondrian.Value
			for _, v := range vs {
				sum += v
			}
			emit(mondrian.Tuple{Key: k, Val: sum})
		},
	}
	want := mondrian.RefMapReduce(job, words.Tuples)

	fmt.Printf("word count over %d occurrences (%d distinct words)\n\n", words.Len(), len(want))

	for _, sys := range []mondrian.System{mondrian.SystemNMP, mondrian.SystemNMPPerm, mondrian.SystemMondrian} {
		e, err := mondrian.NewEngine(params.EngineConfig(sys))
		if err != nil {
			log.Fatal(err)
		}
		inputs, err := place(e, words)
		if err != nil {
			log.Fatal(err)
		}
		res, err := mondrian.RunMapReduce(e, job, inputs)
		if err != nil {
			log.Fatal(err)
		}
		var got []mondrian.Tuple
		for _, r := range res.Out {
			got = append(got, r.Tuples...)
		}
		status := "✓"
		if !mondrian.SameMultiset(got, want) {
			status = "✗"
		}
		fmt.Printf("%-10v map %7.1f µs  shuffle %7.1f µs  reduce %7.1f µs  | activations %6d  verified %s\n",
			sys, res.MapNs/1e3, res.ShuffleNs/1e3, res.ReduceNs/1e3,
			e.DRAMStats().Activations, status)
	}

	fmt.Println("\nThe shuffle is where permutability bites: NMP-perm and Mondrian")
	fmt.Println("append arriving intermediate tuples sequentially, activating each")
	fmt.Println("DRAM row once, while the baseline's interleaved writes re-activate")
	fmt.Println("rows constantly.")
}
