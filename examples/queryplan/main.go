// Queryplan: a multi-stage analytical query composed from the basic
// operators — the way the Spark transformations of Table 1 chain in
// practice. The plan
//
//	SORT( GROUPBY( customers ⋈ orders ) )
//
// joins an orders fact table against a customer dimension, aggregates
// revenue per customer, and orders the aggregate table, on both the CPU
// baseline and the Mondrian Data Engine, with per-stage timings.
//
//	go run ./examples/queryplan
package main

import (
	"fmt"
	"log"

	mondrian "github.com/ecocloud-go/mondrian"
)

func table(e *mondrian.Engine, label string, rel *mondrian.Relation) *mondrian.PlanTable {
	parts := rel.SplitEven(e.NumVaults())
	regions := make([]*mondrian.Region, len(parts))
	for v, p := range parts {
		r, err := e.Place(v, p.Tuples)
		if err != nil {
			log.Fatal(err)
		}
		regions[v] = r
	}
	return &mondrian.PlanTable{Label: label, Regions: regions}
}

func main() {
	log.SetFlags(0)
	params := mondrian.DefaultParams()

	// customers: 4Ki unique customer IDs; orders: 64Ki orders referencing
	// them (a foreign-key fact table).
	customers, orders, err := mondrian.FKRelations(mondrian.WorkloadConfig{Seed: 21, Tuples: 1 << 16}, 1<<12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("orders: %d rows, customers: %d rows\n\n", orders.Len(), customers.Len())

	// Reference result for verification.
	want := mondrian.RefGroupBy(mondrian.RefJoin(customers.Tuples, orders.Tuples))

	for _, sys := range []mondrian.System{mondrian.SystemCPU, mondrian.SystemMondrian} {
		e, err := mondrian.NewEngine(params.EngineConfig(sys))
		if err != nil {
			log.Fatal(err)
		}
		plan := &mondrian.PlanSort{In: &mondrian.PlanGroupBy{In: &mondrian.PlanJoin{
			R: table(e, "customers", customers),
			S: table(e, "orders", orders),
		}}}
		res, err := mondrian.RunPipeline(e, params.OperatorConfig(sys), plan)
		if err != nil {
			log.Fatal(err)
		}
		// Six aggregate tuples per customer group.
		status := "✓"
		if len(res.Tuples()) != len(want)*6 {
			status = "✗"
		}
		fmt.Printf("%v:\n", sys)
		for _, st := range res.Stages {
			fmt.Printf("  %-12s %10.1f µs  → %d tuples\n", st.Name, st.Ns/1e3, st.Tuples)
		}
		fmt.Printf("  %-12s %10.1f µs  (%d customer groups, verified %s)\n\n",
			"total", res.Ns()/1e3, len(want), status)
	}
}
