// Queryplan: a multi-stage analytical query composed from the basic
// operators — the way the Spark transformations of Table 1 chain in
// practice. The plan
//
//	SORT( GROUPBY( customers ⋈ orders ) )
//
// joins an orders fact table against a customer dimension, aggregates
// revenue per customer, and orders the aggregate table, on both the CPU
// baseline and the Mondrian Data Engine. On Mondrian the compiler elides
// the group-by's re-shuffle — the join output is already hash-partitioned
// on the customer key — and the staged run shows what that elision saves.
// The output is verified as a full multiset against the composed
// reference oracles, not just by cardinality.
//
//	go run ./examples/queryplan
package main

import (
	"fmt"
	"log"
	"sort"

	mondrian "github.com/ecocloud-go/mondrian"
)

const customerIDs = 1 << 12

func table(e *mondrian.Engine, label string, rel *mondrian.Relation) *mondrian.PlanTable {
	parts := rel.SplitEven(e.NumVaults())
	regions := make([]*mondrian.Region, len(parts))
	for v, p := range parts {
		r, err := e.Place(v, p.Tuples)
		if err != nil {
			log.Fatal(err)
		}
		regions[v] = r
	}
	return &mondrian.PlanTable{Label: label, Regions: regions}
}

// verify checks the plan output the strict way: the result multiset must
// equal the composed reference (join → group-by oracles), and the sorted
// view must be that multiset in nondecreasing key order.
func verify(res *mondrian.PipelineResult, want []mondrian.Tuple) string {
	if !mondrian.SameMultiset(res.Tuples(), want) {
		return "✗ multiset mismatch"
	}
	ordered := res.OrderedTuples()
	if !sort.SliceIsSorted(ordered, func(i, j int) bool { return ordered[i].Key < ordered[j].Key }) {
		return "✗ not globally sorted"
	}
	if !mondrian.SameMultiset(ordered, want) {
		return "✗ sorted view lost tuples"
	}
	return "✓"
}

func main() {
	log.SetFlags(0)
	params := mondrian.DefaultParams()

	// customers: 4Ki unique customer IDs; orders: 64Ki orders referencing
	// them (a foreign-key fact table).
	customers, orders, err := mondrian.FKRelations(mondrian.WorkloadConfig{Seed: 21, Tuples: 1 << 16}, customerIDs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("orders: %d rows, customers: %d rows\n\n", orders.Len(), customers.Len())

	// Reference result for verification: the composed oracles, as a full
	// multiset (six aggregate tuples per customer group).
	want := mondrian.RefGroupByTuples(mondrian.RefJoin(customers.Tuples, orders.Tuples))

	for _, sys := range []mondrian.System{mondrian.SystemCPU, mondrian.SystemMondrian} {
		for _, staged := range []bool{false, true} {
			if staged && sys == mondrian.SystemCPU {
				continue // the CPU re-buckets every stage either way
			}
			e, err := mondrian.NewEngine(params.EngineConfig(sys))
			if err != nil {
				log.Fatal(err)
			}
			// Customer keys live in [0, 4Ki), so the sort stage range-splits
			// over that bound rather than the params' full key space.
			root := &mondrian.PlanSort{KeySpace: customerIDs, In: &mondrian.PlanGroupBy{In: &mondrian.PlanJoin{
				R: table(e, "customers", customers),
				S: table(e, "orders", orders),
			}}}
			res, err := mondrian.RunPipelineWith(e, params.OperatorConfig(sys), root,
				mondrian.PlanOptions{NoFusion: staged})
			if err != nil {
				log.Fatal(err)
			}
			mode := "fused"
			if staged {
				mode = "staged"
			}
			fmt.Printf("%v (%s):\n", sys, mode)
			for _, st := range res.Stages {
				mark := ""
				if st.Fused {
					mark = "  [re-shuffle elided]"
				}
				fmt.Printf("  %-12s %10.1f µs  → %d tuples%s\n", st.Name, st.Ns/1e3, st.Tuples, mark)
			}
			fmt.Printf("  %-12s %10.1f µs  (%d elisions, verified %s)\n\n",
				"total", res.Ns()/1e3, res.Elisions, verify(res, want))
		}
	}
}
