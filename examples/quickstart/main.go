// Quickstart: run a foreign-key join on the Mondrian Data Engine and
// compare it against the CPU-centric baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mondrian "github.com/ecocloud-go/mondrian"
)

func main() {
	log.SetFlags(0)

	// A laptop-scale setup: the paper's 4×16-vault system shape with a
	// reduced dataset (speedups are ratios; the model is scale-aware).
	params := mondrian.DefaultParams()
	params.STuples = 1 << 16 // 64Ki S tuples (1 MB)
	params.RTuples = 1 << 14

	fmt.Println("Join (R ⋈ S) on two systems:")
	var cpuNs float64
	for _, sys := range []mondrian.System{mondrian.SystemCPU, mondrian.SystemMondrian} {
		res, err := mondrian.RunExperiment(sys, mondrian.OperatorJoin, params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10v partition %8.1f µs   probe %8.1f µs   total %8.1f µs   verified=%v\n",
			res.System, res.PartitionNs/1e3, res.ProbeNs/1e3, res.TotalNs/1e3, res.Verified)
		fmt.Printf("  %-10s row activations %d, row-hit rate %.0f%%, energy %.3g J\n",
			"", res.DRAM.Activations, res.DRAM.RowHitRate()*100, res.Energy.Total())
		if sys == mondrian.SystemCPU {
			cpuNs = res.TotalNs
		} else {
			fmt.Printf("\n  Mondrian speedup over CPU: %.1f×\n", cpuNs/res.TotalNs)
		}
	}
}
