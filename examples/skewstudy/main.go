// Skewstudy exercises the behaviour the paper defers to future work
// (§5.4): skewed key distributions. The engine's vault controllers are
// armed with a best-effort overprovisioned destination buffer; when a
// skewed shuffle would overflow a vault, the controller raises an
// exception for the CPU to handle. This program runs Group-by over
// increasingly skewed Zipf datasets and shows the CPU-side retry loop
// that re-provisions the destination buffers until the shuffle fits, plus
// the load imbalance skew induces.
//
//	go run ./examples/skewstudy
package main

import (
	"errors"
	"fmt"
	"log"

	mondrian "github.com/ecocloud-go/mondrian"
)

func place(e *mondrian.Engine, rel *mondrian.Relation) ([]*mondrian.Region, error) {
	parts := rel.SplitEven(e.NumVaults())
	regions := make([]*mondrian.Region, len(parts))
	for v, p := range parts {
		r, err := e.Place(v, p.Tuples)
		if err != nil {
			return nil, err
		}
		regions[v] = r
	}
	return regions, nil
}

// runWithRetry is the CPU-side exception handler of §5.4: on overflow it
// doubles the overprovisioning estimate and relaunches the operator.
func runWithRetry(params mondrian.Params, rel *mondrian.Relation) (*mondrian.GroupByResult, float64, error) {
	overprovision := 2.0
	for attempt := 0; attempt < 8; attempt++ {
		e, err := mondrian.NewEngine(params.EngineConfig(mondrian.SystemMondrian))
		if err != nil {
			return nil, 0, err
		}
		inputs, err := place(e, rel)
		if err != nil {
			return nil, 0, err
		}
		cfg := params.OperatorConfig(mondrian.SystemMondrian)
		cfg.Overprovision = overprovision
		res, err := mondrian.GroupBy(e, cfg, inputs)
		switch {
		case err == nil:
			return res, overprovision, nil
		case errors.Is(err, mondrian.ErrPartitionOverflow):
			fmt.Printf("    overflow exception at overprovision ×%.0f — CPU re-provisions and retries\n",
				overprovision)
			overprovision *= 2
		default:
			return nil, 0, err
		}
	}
	return nil, 0, fmt.Errorf("skew too extreme: gave up after 8 retries")
}

// imbalance reports max/mean bucket population for a 64-way partitioning.
func mustGroupBy(c mondrian.WorkloadConfig, avgGroupSize int) *mondrian.Relation {
	rel, err := mondrian.GroupByRelation(c, avgGroupSize)
	if err != nil {
		log.Fatal(err)
	}
	return rel
}

func imbalance(rel *mondrian.Relation, vaults int) float64 {
	counts := make([]int, vaults)
	for _, t := range rel.Tuples {
		counts[int(uint64(t.Key)%uint64(vaults))]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return float64(max) / (float64(rel.Len()) / float64(vaults))
}

func main() {
	log.SetFlags(0)
	params := mondrian.DefaultParams()
	const n = 1 << 15

	fmt.Println("Group-by under key skew (Mondrian, permutable partitioning):")
	fmt.Println()

	// Uniform baseline plus three Zipf exponents.
	datasets := []struct {
		name string
		rel  *mondrian.Relation
	}{
		{"uniform", mustGroupBy(mondrian.WorkloadConfig{Seed: 1, Tuples: n}, 4)},
		{"zipf s=1.1", mondrian.ZipfRelation("z1", mondrian.WorkloadConfig{Seed: 2, Tuples: n, KeySpace: 1 << 20}, 1.1)},
		{"zipf s=1.5", mondrian.ZipfRelation("z2", mondrian.WorkloadConfig{Seed: 3, Tuples: n, KeySpace: 1 << 20}, 1.5)},
		{"zipf s=2.0", mondrian.ZipfRelation("z3", mondrian.WorkloadConfig{Seed: 4, Tuples: n, KeySpace: 1 << 20}, 2.0)},
	}

	vaults := params.Cubes * params.VaultsPer
	for _, d := range datasets {
		fmt.Printf("  %-12s imbalance ×%.2f\n", d.name, imbalance(d.rel, vaults))
		res, overprov, err := runWithRetry(params, d.rel)
		if err != nil {
			log.Fatalf("%s: %v", d.name, err)
		}
		check := mondrian.RefGroupBy(d.rel.Tuples)
		status := "✓"
		if res.Groups != len(check) {
			status = "✗"
		}
		fmt.Printf("    %d groups in %.1f µs at overprovision ×%.0f  verified %s\n\n",
			res.Groups, res.Ns()/1e3, overprov, status)
	}

	fmt.Println("Takeaway: permutability is correctness-neutral under skew, but the")
	fmt.Println("paper's uniform-distribution assumption hides the provisioning and")
	fmt.Println("load-balance problem the retry loop above has to solve.")
}
