// Skewstudy quantifies the behaviour the paper defers to future work
// (§5.4): skewed key distributions. It runs Group-by over uniform and
// increasingly skewed Zipf datasets for every registered system, twice
// each:
//
//   - skew-UNAWARE: the paper's best-effort path. Destination buffers are
//     overprovisioned by a uniform factor; when a skewed shuffle would
//     overflow a vault, the controller raises an exception and the
//     CPU-side handler doubles the estimate and relaunches — the §5.4
//     retry loop. Every overflow is an "overflow near-miss": a full
//     partition attempt thrown away.
//
//   - skew-AWARE (Params.SkewAware): the partition phase provisions each
//     destination exactly from the histogram exchange it already runs, a
//     SpaceSaving sketch flags the heavy-hitter keys, hot groups split
//     across host workers with an exact merge-side combine, and the
//     worker pool steals tasks in deterministic LPT order. One attempt,
//     no retries — and byte-identical simulated results wherever the
//     unaware path also completes.
//
// The table prints, per (system, skew): the inbound load imbalance
// (max/mean vault load), the retry count and final overprovision factor
// the unaware path needed, both host wall times, and the resulting
// skew-aware speedup. The speedup grows with skew because retries are
// proportional to how far the hottest vault outruns the mean.
//
//	go run ./examples/skewstudy
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	mondrian "github.com/ecocloud-go/mondrian"
)

// study is one (dataset skew) column of the experiment.
type study struct {
	name  string
	zipfS float64 // 0 = uniform
}

var studies = []study{
	{"uniform", 0},
	{"zipf s=1.1", 1.1},
	{"zipf s=1.5", 1.5},
	{"zipf s=2.0", 2.0},
}

// unawareResult is what the §5.4 retry loop cost.
type unawareResult struct {
	res       *mondrian.Result
	retries   int
	finalOver float64
	wall      time.Duration
}

// runUnaware is the CPU-side exception handler of §5.4: on overflow it
// doubles the overprovisioning estimate and relaunches the operator from
// scratch. The wall time accumulates over every attempt — the real cost
// of best-effort provisioning under skew.
func runUnaware(sys mondrian.System, p mondrian.Params) (*unawareResult, error) {
	out := &unawareResult{finalOver: 2}
	p.SkewAware = false
	start := time.Now()
	for attempt := 0; attempt < 10; attempt++ {
		p.Overprovision = out.finalOver
		res, err := mondrian.RunExperiment(sys, mondrian.OperatorGroupBy, p)
		switch {
		case err == nil:
			out.res = res
			out.wall = time.Since(start)
			return out, nil
		case errors.Is(err, mondrian.ErrPartitionOverflow):
			out.retries++
			out.finalOver *= 2
		default:
			return nil, err
		}
	}
	return nil, fmt.Errorf("skew too extreme: gave up after %d retries", out.retries)
}

// imbalance reports the max/mean inbound vault load for the modulo
// placement the partition phase uses.
func imbalance(rel *mondrian.Relation, vaults int) float64 {
	counts := make([]int, vaults)
	for _, t := range rel.Tuples {
		counts[int(uint64(t.Key)%uint64(vaults))]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return float64(max) / (float64(rel.Len()) / float64(vaults))
}

func main() {
	log.SetFlags(0)
	base := mondrian.DefaultParams()
	base.STuples = 1 << 15
	base.KeySpace = 1 << 20
	// The paper's fixed 2^16 CPU partition count exceeds this dataset's
	// cardinality: the per-bucket estimate truncates to zero and no
	// overprovision factor can rescue the unaware path. Scale it down to
	// the dataset like the operator's auto-sizing would.
	base.CPUBuckets = 1 << 8
	vaults := base.Cubes * base.VaultsPer

	fmt.Println("Group-by under key skew: §5.4 retry loop vs skew-aware execution")
	fmt.Printf("(%d tuples over %d vaults; wall times are host-side)\n\n", base.STuples, vaults)

	for _, st := range studies {
		p := base
		p.ZipfS = st.zipfS

		// The dataset is regenerated identically inside every run; this
		// copy only feeds the imbalance column.
		rel, err := datasetFor(p)
		if err != nil {
			log.Fatalf("%s: %v", st.name, err)
		}
		fmt.Printf("%-11s  inbound imbalance ×%.2f\n", st.name, imbalance(rel, vaults))

		for _, sys := range mondrian.Systems() {
			// Min of three timed repetitions keeps scheduler and GC noise
			// out of the speedup column.
			const reps = 3
			var un *unawareResult
			for r := 0; r < reps; r++ {
				u, err := runUnaware(sys, p)
				if err != nil {
					log.Fatalf("%s/%v unaware: %v", st.name, sys, err)
				}
				if un == nil || u.wall < un.wall {
					un = u
				}
			}

			q := p
			q.SkewAware = true
			var aw *mondrian.Result
			var awWall time.Duration
			for r := 0; r < reps; r++ {
				awStart := time.Now()
				res, err := mondrian.RunExperiment(sys, mondrian.OperatorGroupBy, q)
				if err != nil {
					log.Fatalf("%s/%v skew-aware: %v", st.name, sys, err)
				}
				if w := time.Since(awStart); aw == nil || w < awWall {
					aw, awWall = res, w
				}
			}

			status := "✓"
			if !un.res.Verified || !aw.Verified {
				status = "✗"
			}
			speedup := float64(un.wall) / float64(awWall)
			fmt.Printf("  %-16s retries %d (final overprovision ×%-3.0f)  sim %8.1f µs  wall %8.2f→%-8.2f ms  speedup ×%.2f  %s\n",
				sys, un.retries, un.finalOver, aw.TotalNs/1e3,
				float64(un.wall)/1e6, float64(awWall)/1e6, speedup, status)
		}
		fmt.Println()
	}

	fmt.Println("Takeaway: the paper's uniform-distribution assumption hides a real")
	fmt.Println("cost. Under skew the best-effort path burns whole partition attempts")
	fmt.Println("on overflow near-misses, while the exact histogram the exchange")
	fmt.Println("already computes provisions every destination in one shot — and the")
	fmt.Println("differential suite proves the simulated results stay byte-identical.")
}

// datasetFor regenerates the experiment's Group-by input for the
// imbalance column, mirroring the simulate layer's workload routing.
func datasetFor(p mondrian.Params) (*mondrian.Relation, error) {
	c := mondrian.WorkloadConfig{Seed: p.Seed, Tuples: p.STuples, KeySpace: p.KeySpace}
	if p.ZipfS > 0 {
		return mondrian.ZipfRelation("groupby-in", c, p.ZipfS)
	}
	return mondrian.GroupByRelation(c, p.GroupSize)
}
