// Sparkops demonstrates Table 1 of the paper: common Spark
// transformations lower onto the four basic data operators. Each Spark
// operator below executes on the Mondrian Data Engine through the basic
// operator it maps to, and its result is verified.
//
//	go run ./examples/sparkops
package main

import (
	"fmt"
	"log"

	mondrian "github.com/ecocloud-go/mondrian"
)

func place(e *mondrian.Engine, rel *mondrian.Relation) []*mondrian.Region {
	parts := rel.SplitEven(e.NumVaults())
	regions := make([]*mondrian.Region, len(parts))
	for v, p := range parts {
		r, err := e.Place(v, p.Tuples)
		if err != nil {
			log.Fatal(err)
		}
		regions[v] = r
	}
	return regions
}

func newMondrian(params mondrian.Params) (*mondrian.Engine, mondrian.OperatorConfig) {
	e, err := mondrian.NewEngine(params.EngineConfig(mondrian.SystemMondrian))
	if err != nil {
		log.Fatal(err)
	}
	return e, params.OperatorConfig(mondrian.SystemMondrian)
}

func main() {
	log.SetFlags(0)
	params := mondrian.DefaultParams()
	data, err := mondrian.GroupByRelation(mondrian.WorkloadConfig{Seed: 3, Tuples: 1 << 15}, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d tuples\n\n", data.Len())
	fmt.Println("Table 1: Spark operator → basic operator, executed on Mondrian")

	// --- LookupKey / Filter → Scan ------------------------------------
	needle, wantCount := mondrian.ScanNeedle(data, 11)
	e, cfg := newMondrian(params)
	scan, err := mondrian.Scan(e, cfg, place(e, data), needle)
	if err != nil {
		log.Fatal(err)
	}
	if scan.Matches != wantCount {
		log.Fatalf("LookupKey: %d matches, want %d", scan.Matches, wantCount)
	}
	fmt.Printf("  LookupKey(%d)      → Scan      %6d matches     %8.1f µs\n",
		needle, scan.Matches, scan.ProbeNs/1e3)

	// --- CountByKey / ReduceByKey / AggregateByKey → Group by ---------
	e, cfg = newMondrian(params)
	gb, err := mondrian.GroupBy(e, cfg, place(e, data))
	if err != nil {
		log.Fatal(err)
	}
	ref := mondrian.RefGroupBy(data.Tuples)
	if gb.Groups != len(ref) {
		log.Fatalf("ReduceByKey: %d groups, want %d", gb.Groups, len(ref))
	}
	fmt.Printf("  ReduceByKey(sum)  → Group by  %6d groups      %8.1f µs\n",
		gb.Groups, gb.Ns()/1e3)
	fmt.Printf("  CountByKey        → Group by  (count aggregate of the same run)\n")
	fmt.Printf("  AggregateByKey    → Group by  (avg/min/max/sumsq of the same run)\n")

	// --- SortByKey → Sort ----------------------------------------------
	e, cfg = newMondrian(params)
	cfg.KeySpace = 0 // let Sort derive the key range from the data
	sorted, err := mondrian.Sort(e, cfg, place(e, data))
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, b := range sorted.Sorted {
		total += b.Len()
	}
	if total != data.Len() {
		log.Fatalf("SortByKey: %d tuples out, want %d", total, data.Len())
	}
	fmt.Printf("  SortByKey         → Sort      %6d tuples      %8.1f µs\n",
		total, sorted.Ns()/1e3)

	// --- Join → Join -----------------------------------------------------
	dim, fact, err := mondrian.FKRelations(mondrian.WorkloadConfig{Seed: 5, Tuples: 1 << 15}, 1<<12)
	if err != nil {
		log.Fatal(err)
	}
	e, cfg = newMondrian(params)
	j, err := mondrian.Join(e, cfg, place(e, dim), place(e, fact))
	if err != nil {
		log.Fatal(err)
	}
	wantJoin := mondrian.RefJoin(dim.Tuples, fact.Tuples)
	if !mondrian.SameMultiset(mondrian.Gather(j.Out), wantJoin) {
		log.Fatal("Join output mismatch")
	}
	fmt.Printf("  Join              → Join      %6d matches     %8.1f µs\n",
		j.Matches, j.Ns()/1e3)

	fmt.Println("\nall Spark-operator lowerings verified ✓")
}
