module github.com/ecocloud-go/mondrian

go 1.22
