// Package bsp implements a Bulk-Synchronous-Parallel graph-processing
// layer on the Mondrian engine, demonstrating the paper's claim that data
// permutability applies to "any BSP-based graph processing algorithm"
// (§4.1.2): the message exchange between supersteps shuffles messages to
// each destination vertex's vault, and because a vault's inbox is an
// unordered bucket, the vault controllers may place arriving messages in
// any order.
//
// Vertices are partitioned across vaults by ID. Each superstep streams
// the local vertices and their out-edges, emits messages, shuffles them
// (permutable where supported), and applies a vertex program to the
// grouped inbox. Vertex programs must combine messages commutatively —
// the permutability correctness requirement.
package bsp

import (
	"fmt"
	"sort"

	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// Graph is a directed graph with vertices 0..NumVertices-1.
type Graph struct {
	NumVertices int
	// Out[v] lists v's out-neighbors.
	Out [][]int32
}

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, out := range g.Out {
		n += len(out)
	}
	return n
}

// Validate checks edge endpoints.
func (g *Graph) Validate() error {
	if g.NumVertices <= 0 {
		return fmt.Errorf("bsp: graph needs vertices")
	}
	if len(g.Out) != g.NumVertices {
		return fmt.Errorf("bsp: adjacency size %d != %d vertices", len(g.Out), g.NumVertices)
	}
	for v, out := range g.Out {
		for _, d := range out {
			if d < 0 || int(d) >= g.NumVertices {
				return fmt.Errorf("bsp: edge %d→%d out of range", v, d)
			}
		}
	}
	return nil
}

// Program is a vertex-centric BSP program over int64 vertex states and
// int64 messages.
type Program struct {
	Name string
	// Init returns vertex v's initial state.
	Init func(v int, g *Graph) int64
	// Message produces the value v sends along each out-edge this
	// superstep (called once per vertex; nil message skips sending).
	Message func(v int, state int64, g *Graph) (int64, bool)
	// Combine folds two messages (must be commutative+associative).
	Combine func(a, b int64) int64
	// Apply computes v's next state from its current state and the
	// combined inbox value; ok=false means "no message arrived".
	Apply func(v int, state int64, inbox int64, ok bool, g *Graph) int64
	// Halt, if non-nil, stops iteration early when no vertex changed.
	HaltOnFixpoint bool

	// EdgeInsts/VertexInsts charge the compute model (defaults 4 and 6).
	EdgeInsts, VertexInsts float64
}

func (p Program) edgeInsts() float64 {
	if p.EdgeInsts > 0 {
		return p.EdgeInsts
	}
	return 4
}

func (p Program) vertexInsts() float64 {
	if p.VertexInsts > 0 {
		return p.VertexInsts
	}
	return 6
}

// Result reports a BSP run.
type Result struct {
	// States holds the final vertex states.
	States []int64
	// Supersteps actually executed.
	Supersteps int
	// TotalNs is the run's simulated time.
	TotalNs float64
}

// vaultOf maps a vertex to its owning vault.
func vaultOf(v, nv int) int { return v % nv }

// Run executes up to maxSupersteps of the program on the engine.
func Run(e *engine.Engine, p Program, g *Graph, maxSupersteps int) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if p.Init == nil || p.Message == nil || p.Combine == nil || p.Apply == nil {
		return nil, fmt.Errorf("bsp: program %q incomplete", p.Name)
	}
	nv := e.NumVaults()
	t0 := e.TotalNs()

	// Place vertex state and adjacency per vault. States are (vertex,
	// state) tuples; edges are (src, dst) tuples, grouped by source.
	states := make([]int64, g.NumVertices)
	for v := range states {
		states[v] = p.Init(v, g)
	}
	stateRegions := make([]*engine.Region, nv)
	edgeRegions := make([]*engine.Region, nv)
	localVerts := make([][]int, nv)
	for v := 0; v < g.NumVertices; v++ {
		localVerts[vaultOf(v, nv)] = append(localVerts[vaultOf(v, nv)], v)
	}
	for vault := 0; vault < nv; vault++ {
		var st, ed []tuple.Tuple
		for _, v := range localVerts[vault] {
			st = append(st, tuple.Tuple{Key: tuple.Key(v), Val: tuple.Value(states[v])})
			for _, d := range g.Out[v] {
				ed = append(ed, tuple.Tuple{Key: tuple.Key(v), Val: tuple.Value(d)})
			}
		}
		var err error
		if stateRegions[vault], err = e.Place(vault, st); err != nil {
			return nil, err
		}
		if edgeRegions[vault], err = e.Place(vault, ed); err != nil {
			return nil, err
		}
	}

	res := &Result{}
	for step := 0; step < maxSupersteps; step++ {
		changed, err := superstep(e, p, g, states, stateRegions, edgeRegions, localVerts)
		if err != nil {
			return nil, err
		}
		res.Supersteps++
		if p.HaltOnFixpoint && !changed {
			break
		}
	}
	res.States = states
	res.TotalNs = e.TotalNs() - t0
	return res, nil
}

// superstep runs one compute+shuffle+apply round, returning whether any
// vertex state changed.
func superstep(e *engine.Engine, p Program, g *Graph, states []int64,
	stateRegions, edgeRegions []*engine.Region, localVerts [][]int) (bool, error) {
	nv := e.NumVaults()
	streamed := e.Config().UseStreams

	// Phase 1: scan local vertices+edges, stage outgoing messages.
	type msg struct {
		dst int32
		val int64
	}
	stagedMsgs := make([][]msg, nv)
	staging := make([]*engine.Region, nv)
	e.BeginStep(engine.StepProfile{Name: "bsp-scatter", DepIPC: 1.5, InstPerAccess: 4, StreamFed: streamed})
	if err := e.ForEachVault(func(vault int, u *engine.Unit) error {
		// Stream states and edges.
		readers, err := u.OpenStreams(stateRegions[vault], edgeRegions[vault])
		if err != nil {
			return err
		}
		// Per-vertex message values.
		outVal := make(map[int32]int64, len(localVerts[vault]))
		for {
			t, ok := readers[0].Next()
			if !ok {
				break
			}
			u.Charge(p.vertexInsts())
			if mv, send := p.Message(int(t.Key), states[t.Key], g); send {
				outVal[int32(t.Key)] = mv
			}
		}
		for {
			t, ok := readers[1].Next()
			if !ok {
				break
			}
			u.Charge(p.edgeInsts())
			if mv, ok := outVal[int32(t.Key)]; ok {
				stagedMsgs[vault] = append(stagedMsgs[vault], msg{dst: int32(t.Val), val: mv})
			}
		}
		r, err := e.AllocOut(vault, maxInt(len(stagedMsgs[vault]), 1))
		if err != nil {
			return err
		}
		// Staged messages are produced into a local buffer (sequential
		// writes) before the exchange.
		for _, m := range stagedMsgs[vault] {
			u.AppendLocal(r, tuple.Tuple{Key: tuple.Key(m.dst), Val: tuple.Value(m.val)})
		}
		staging[vault] = r
		return nil
	}); err != nil {
		return false, err
	}
	e.EndStep()

	// Phase 2: message exchange — the permutable shuffle.
	perSource := make([][]int64, nv)
	inbound := make([]int64, nv)
	for s := 0; s < nv; s++ {
		perSource[s] = make([]int64, nv)
		for _, m := range stagedMsgs[s] {
			perSource[s][vaultOf(int(m.dst), nv)]++
		}
		for d, n := range perSource[s] {
			inbound[d] += n
		}
	}
	maxIn := int64(0)
	for _, n := range inbound {
		if n > maxIn {
			maxIn = n
		}
	}
	dests, err := e.MallocPermutable(int(maxIn) + 64)
	if err != nil {
		return false, err
	}
	if err := e.ShuffleBegin(dests, perSource); err != nil {
		return false, err
	}
	e.BeginStep(engine.StepProfile{Name: "bsp-exchange", DepIPC: 1.0, InstPerAccess: 4, StreamFed: streamed})
	x := e.NewExchange(dests)
	if err := e.ForEachVault(func(s int, u *engine.Unit) error {
		ob := x.Outbox(s)
		for i := 0; i < staging[s].Len(); i++ {
			t := u.LoadTuple(staging[s], i)
			u.Charge(6)
			if err := ob.Send(vaultOf(int(t.Key), nv), t); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return false, err
	}
	if err := x.Flush(); err != nil {
		return false, err
	}
	e.EndStep()
	e.ShuffleEnd(dests)

	// Phase 3: combine inboxes and apply. Each vault reads and writes only
	// its own vertices' states; cross-vault values arrived as messages.
	changedFlags := make([]bool, nv)
	e.BeginStep(engine.StepProfile{Name: "bsp-apply", DepIPC: 1.5, InstPerAccess: 4, StreamFed: streamed})
	if err := e.ForEachVault(func(vault int, u *engine.Unit) error {
		readers, err := u.OpenStreams(dests[vault])
		if err != nil {
			return err
		}
		inboxes := make(map[int]int64)
		seen := make(map[int]bool)
		for {
			t, ok := readers[0].Next()
			if !ok {
				break
			}
			u.Charge(p.vertexInsts())
			v := int(t.Key)
			if seen[v] {
				inboxes[v] = p.Combine(inboxes[v], int64(t.Val))
			} else {
				inboxes[v] = int64(t.Val)
				seen[v] = true
			}
		}
		// Deterministic application order.
		verts := localVerts[vault]
		sorted := make([]int, len(verts))
		copy(sorted, verts)
		sort.Ints(sorted)
		for i, v := range sorted {
			u.Charge(p.vertexInsts())
			in, ok := inboxes[v]
			next := p.Apply(v, states[v], in, ok, g)
			if next != states[v] {
				states[v] = next
				changedFlags[vault] = true
			}
			u.StoreTuple(stateRegions[vault], i, tuple.Tuple{Key: tuple.Key(v), Val: tuple.Value(next)})
		}
		return nil
	}); err != nil {
		return false, err
	}
	e.EndStep()
	e.Barrier()
	changed := false
	for _, c := range changedFlags {
		changed = changed || c
	}
	return changed, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
