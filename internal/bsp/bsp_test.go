package bsp

import (
	"testing"

	"github.com/ecocloud-go/mondrian/internal/cache"
	"github.com/ecocloud-go/mondrian/internal/cores"
	"github.com/ecocloud-go/mondrian/internal/dram"
	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/noc"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

func testEngine(t *testing.T, arch engine.Arch, perm bool) *engine.Engine {
	t.Helper()
	g := dram.HMCGeometry()
	g.CapacityBytes = 8 << 20
	cfg := engine.Config{
		Cubes: 2, VaultsPer: 4,
		Geometry: g, Timing: dram.HMCTiming(),
		ObjectSize: tuple.Size, BarrierNs: 1000,
		Topology: noc.FullyConnected,
	}
	switch arch {
	case engine.NMP:
		cfg.Arch = engine.NMP
		cfg.Core = cores.Krait400()
		cfg.L1 = cache.L1D32K()
		cfg.Permutable = perm
	case engine.Mondrian:
		cfg.Arch = engine.Mondrian
		cfg.Core = cores.CortexA35Mondrian()
		cfg.Permutable = perm
		cfg.UseStreams = true
	}
	e, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestGraphValidate(t *testing.T) {
	g := Ring(8)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 8 {
		t.Fatalf("ring edges = %d", g.NumEdges())
	}
	bad := &Graph{NumVertices: 2, Out: [][]int32{{5}, {}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := (&Graph{}).Validate(); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	g := RandomGraph(500, 4, 7)
	const steps = 8
	want := RefPageRank(g, steps)
	for _, tc := range []struct {
		name string
		arch engine.Arch
		perm bool
	}{
		{"NMP", engine.NMP, false},
		{"NMP-perm", engine.NMP, true},
		{"Mondrian", engine.Mondrian, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := testEngine(t, tc.arch, tc.perm)
			res, err := Run(e, PageRank(), g, steps)
			if err != nil {
				t.Fatal(err)
			}
			if res.Supersteps != steps {
				t.Fatalf("supersteps = %d", res.Supersteps)
			}
			for v := range want {
				if res.States[v] != want[v] {
					t.Fatalf("vertex %d: rank %d, want %d", v, res.States[v], want[v])
				}
			}
			if res.TotalNs <= 0 {
				t.Fatal("no simulated time")
			}
		})
	}
}

func TestComponentsConverges(t *testing.T) {
	// Two disjoint rings: components {0..49} and {50..99}.
	g := &Graph{NumVertices: 100, Out: make([][]int32, 100)}
	for v := 0; v < 50; v++ {
		g.Out[v] = []int32{int32((v + 1) % 50)}
	}
	for v := 50; v < 100; v++ {
		g.Out[v] = []int32{int32(50 + (v-50+1)%50)}
	}
	sym := Symmetrize(g)
	want := RefComponents(sym)
	e := testEngine(t, engine.Mondrian, true)
	res, err := Run(e, Components(), sym, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Fixpoint halt must kick in well before the cap.
	if res.Supersteps >= 200 {
		t.Fatalf("no early halt: %d supersteps", res.Supersteps)
	}
	for v := range want {
		if res.States[v] != want[v] {
			t.Fatalf("vertex %d: label %d, want %d", v, res.States[v], want[v])
		}
	}
	// Exactly two labels: 0 and 50.
	labels := map[int64]bool{}
	for _, l := range res.States {
		labels[l] = true
	}
	if len(labels) != 2 || !labels[0] || !labels[50] {
		t.Fatalf("labels = %v", labels)
	}
}

func TestIncompleteProgramRejected(t *testing.T) {
	e := testEngine(t, engine.NMP, true)
	if _, err := Run(e, Program{Name: "hollow"}, Ring(4), 1); err == nil {
		t.Fatal("incomplete program accepted")
	}
}

func TestExchangeUsesPermutability(t *testing.T) {
	g := RandomGraph(400, 4, 9)
	run := func(perm bool) (uint64, uint64) {
		e := testEngine(t, engine.NMP, perm)
		if _, err := Run(e, PageRank(), g, 4); err != nil {
			t.Fatal(err)
		}
		var permuted uint64
		for _, v := range e.Sys.Vaults() {
			permuted += v.PermutedWrites
		}
		return permuted, e.DRAMStats().Activations
	}
	permWrites, actsPerm := run(true)
	noPermWrites, actsConv := run(false)
	if permWrites == 0 || noPermWrites != 0 {
		t.Fatalf("permuted writes: perm=%d conv=%d", permWrites, noPermWrites)
	}
	if actsConv <= actsPerm {
		t.Fatalf("permutability should cut activations: %d vs %d", actsPerm, actsConv)
	}
}

func TestSymmetrize(t *testing.T) {
	g := &Graph{NumVertices: 3, Out: [][]int32{{1}, {}, {1}}}
	s := Symmetrize(g)
	found := func(v int, d int32) bool {
		for _, x := range s.Out[v] {
			if x == d {
				return true
			}
		}
		return false
	}
	if !found(1, 0) || !found(1, 2) || !found(0, 1) || !found(2, 1) {
		t.Fatalf("symmetrize: %+v", s.Out)
	}
}

func TestRandomGraphDeterministic(t *testing.T) {
	a, b := RandomGraph(50, 3, 4), RandomGraph(50, 3, 4)
	for v := range a.Out {
		for i := range a.Out[v] {
			if a.Out[v][i] != b.Out[v][i] {
				t.Fatal("RandomGraph not deterministic")
			}
		}
	}
}
