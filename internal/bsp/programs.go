package bsp

import (
	"math/rand"
)

// Canned vertex programs and reference executors. All arithmetic is
// integer/fixed-point so the simulated run and the reference iterate to
// bit-identical states.

// FixedOne is the fixed-point representation of 1.0 (Q32.16-ish scale).
const FixedOne int64 = 1 << 16

// PageRank returns a synchronous fixed-point PageRank program:
// state = rank (fixed point), damping 0.85 approximated as 870/1024.
func PageRank() Program {
	const dampNum, dampDen = 870, 1024
	return Program{
		Name: "pagerank",
		Init: func(v int, g *Graph) int64 { return FixedOne },
		Message: func(v int, state int64, g *Graph) (int64, bool) {
			deg := len(g.Out[v])
			if deg == 0 {
				return 0, false
			}
			return state / int64(deg), true
		},
		Combine: func(a, b int64) int64 { return a + b },
		Apply: func(v int, state, inbox int64, ok bool, g *Graph) int64 {
			var sum int64
			if ok {
				sum = inbox
			}
			return (FixedOne-FixedOne*dampNum/dampDen)*1 + sum*dampNum/dampDen
		},
		EdgeInsts: 4, VertexInsts: 8,
	}
}

// RefPageRank iterates the same fixed-point recurrence in plain Go.
func RefPageRank(g *Graph, supersteps int) []int64 {
	const dampNum, dampDen = 870, 1024
	states := make([]int64, g.NumVertices)
	for v := range states {
		states[v] = FixedOne
	}
	for s := 0; s < supersteps; s++ {
		inbox := make([]int64, g.NumVertices)
		got := make([]bool, g.NumVertices)
		for v := 0; v < g.NumVertices; v++ {
			deg := len(g.Out[v])
			if deg == 0 {
				continue
			}
			m := states[v] / int64(deg)
			for _, d := range g.Out[v] {
				inbox[d] += m
				got[d] = true
			}
		}
		next := make([]int64, g.NumVertices)
		for v := 0; v < g.NumVertices; v++ {
			var sum int64
			if got[v] {
				sum = inbox[v]
			}
			next[v] = (FixedOne-FixedOne*dampNum/dampDen)*1 + sum*dampNum/dampDen
		}
		states = next
	}
	return states
}

// Components returns a connected-components program via min-label
// propagation (on the directed graph interpreted as given; pass a
// symmetrized graph for undirected components). Halts at fixpoint.
func Components() Program {
	return Program{
		Name:           "components",
		HaltOnFixpoint: true,
		Init:           func(v int, g *Graph) int64 { return int64(v) },
		Message: func(v int, state int64, g *Graph) (int64, bool) {
			return state, len(g.Out[v]) > 0
		},
		Combine: func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		},
		Apply: func(v int, state, inbox int64, ok bool, g *Graph) int64 {
			if ok && inbox < state {
				return inbox
			}
			return state
		},
		EdgeInsts: 3, VertexInsts: 5,
	}
}

// RefComponents labels every vertex with the smallest vertex ID reachable
// along undirected paths (use with a symmetrized graph).
func RefComponents(g *Graph) []int64 {
	labels := make([]int64, g.NumVertices)
	for v := range labels {
		labels[v] = int64(v)
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < g.NumVertices; v++ {
			for _, d := range g.Out[v] {
				if labels[v] < labels[d] {
					labels[d] = labels[v]
					changed = true
				} else if labels[d] < labels[v] {
					labels[v] = labels[d]
					changed = true
				}
			}
		}
	}
	return labels
}

// RandomGraph generates a uniform random directed graph with the given
// out-degree, deterministically from seed.
func RandomGraph(vertices, outDegree int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{NumVertices: vertices, Out: make([][]int32, vertices)}
	for v := 0; v < vertices; v++ {
		for i := 0; i < outDegree; i++ {
			g.Out[v] = append(g.Out[v], int32(rng.Intn(vertices)))
		}
	}
	return g
}

// Ring generates a directed ring 0→1→…→n-1→0.
func Ring(vertices int) *Graph {
	g := &Graph{NumVertices: vertices, Out: make([][]int32, vertices)}
	for v := 0; v < vertices; v++ {
		g.Out[v] = []int32{int32((v + 1) % vertices)}
	}
	return g
}

// Symmetrize returns the graph with every edge mirrored (deduplicated).
func Symmetrize(g *Graph) *Graph {
	sets := make([]map[int32]bool, g.NumVertices)
	for v := range sets {
		sets[v] = make(map[int32]bool)
	}
	for v, out := range g.Out {
		for _, d := range out {
			sets[v][d] = true
			sets[int(d)][int32(v)] = true
		}
	}
	out := &Graph{NumVertices: g.NumVertices, Out: make([][]int32, g.NumVertices)}
	for v, set := range sets {
		for d := range set {
			out.Out[v] = append(out.Out[v], d)
		}
	}
	return out
}
