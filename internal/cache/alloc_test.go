package cache

import "testing"

// The Access/AccessRun results reuse per-cache buffers, so the steady
// state allocates nothing — on hits, misses and evictions alike. These
// tests pin that property.

func TestAccessZeroAllocSteadyState(t *testing.T) {
	c := New(L1D32K())
	const blocks = 4096 // 256 KB footprint: hits, misses and evictions
	sweep := func() {
		for i := 0; i < blocks; i++ {
			c.Access(int64(i)*64, i%3 == 0)
		}
	}
	sweep() // grow internal buffers to steady state
	if allocs := testing.AllocsPerRun(5, sweep); allocs != 0 {
		t.Errorf("Access allocates %.1f times per %d-block sweep in steady state", allocs, blocks)
	}
}

func TestAccessRunZeroAllocSteadyState(t *testing.T) {
	c := New(L1D32K())
	var res RunResult
	sweep := func() { c.AccessRun(0, 16, 16384, false, &res) }
	sweep()
	if allocs := testing.AllocsPerRun(5, sweep); allocs != 0 {
		t.Errorf("AccessRun allocates %.1f times per run in steady state", allocs)
	}
}
