package cache

import "testing"

func BenchmarkAccessSequential(b *testing.B) {
	c := New(L1D32K())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(int64(i%(1<<20))*8, false)
	}
}

func BenchmarkAccessRandomFarField(b *testing.B) {
	c := New(L1D32K())
	addr := int64(12345)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr = addr*6364136223846793005 + 1
		c.Access((addr>>20)&0x3ffffff8, i&1 == 0)
	}
}
