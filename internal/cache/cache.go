// Package cache models the cache hierarchy of the CPU-centric baseline
// (and the L1s of the NMP baseline): set-associative, LRU-replaced,
// write-back/write-allocate caches with a next-line prefetcher.
//
// Paper Table 3: the CPU has 32 KB 2-way L1d caches with 64 B blocks and a
// shared 4 MB 16-way LLC; both CPU and NMP baselines feature a next-line
// prefetcher "capable of issuing prefetches for up to three next cache
// lines". The cache model filters the access stream the simulated memory
// system sees: only misses (demand or prefetch) and dirty evictions reach
// DRAM.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	SizeBytes      int
	Ways           int
	BlockBytes     int
	HitLatencyNs   float64
	MSHRs          int // outstanding-miss capacity (bounds miss-level parallelism)
	PrefetchDegree int // next-line prefetch depth; 0 disables
}

// L1D32K returns the CPU/NMP baseline L1 data cache configuration
// (32 KB, 2-way, 64 B blocks, 2-cycle latency at 2 GHz, 32 MSHRs).
func L1D32K() Config {
	return Config{SizeBytes: 32 << 10, Ways: 2, BlockBytes: 64, HitLatencyNs: 1.0, MSHRs: 32, PrefetchDegree: 3}
}

// LLC4M returns the shared last-level cache configuration
// (4 MB, 16-way, 64 B blocks, 4-cycle hit latency at 2 GHz).
func LLC4M() Config {
	return Config{SizeBytes: 4 << 20, Ways: 16, BlockBytes: 64, HitLatencyNs: 2.0, MSHRs: 64}
}

// Stats aggregates cache events.
type Stats struct {
	Accesses       uint64
	Hits           uint64
	Misses         uint64
	DirtyEvictions uint64
	PrefetchIssued uint64
	PrefetchHits   uint64 // demand hits on prefetched-not-yet-used lines
}

// HitRate returns the demand hit rate.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type line struct {
	tag        int64
	valid      bool
	dirty      bool
	prefetched bool
	lastUse    uint64
}

// Cache is one set-associative cache level.
type Cache struct {
	cfg   Config
	sets  [][]line
	nsets int
	tick  uint64
	stats Stats
}

// New builds a cache from its configuration.
func New(cfg Config) *Cache {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 || cfg.BlockBytes <= 0 {
		panic(fmt.Sprintf("cache: invalid config %+v", cfg))
	}
	nsets := cfg.SizeBytes / (cfg.Ways * cfg.BlockBytes)
	if nsets == 0 {
		panic("cache: fewer than one set")
	}
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{cfg: cfg, sets: sets, nsets: nsets}
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears statistics but keeps cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Flush invalidates the whole cache, returning the block addresses of all
// dirty lines (which a memory system must write back).
func (c *Cache) Flush() []int64 {
	var wbs []int64
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			if l.valid && l.dirty {
				wbs = append(wbs, c.blockAddr(si, l.tag))
				c.stats.DirtyEvictions++
			}
			*l = line{}
		}
	}
	return wbs
}

func (c *Cache) index(addr int64) (set int, tag int64) {
	blk := addr / int64(c.cfg.BlockBytes)
	return int(blk % int64(c.nsets)), blk / int64(c.nsets)
}

func (c *Cache) blockAddr(set int, tag int64) int64 {
	return (tag*int64(c.nsets) + int64(set)) * int64(c.cfg.BlockBytes)
}

// Result reports what one access did and what traffic it generated for the
// next level down: Fetches are block addresses that must be read (demand
// miss first, then prefetch misses), Writebacks are dirty evicted blocks.
type Result struct {
	Hit        bool
	Fetches    []int64
	Writebacks []int64
}

// Access performs one demand access to addr. Size is implicit: accesses
// are block-granular (the caller splits larger requests).
func (c *Cache) Access(addr int64, write bool) Result {
	c.tick++
	c.stats.Accesses++
	var res Result
	set, tag := c.index(addr)
	if l := c.lookup(set, tag); l != nil {
		c.stats.Hits++
		if l.prefetched {
			c.stats.PrefetchHits++
			l.prefetched = false
		}
		l.lastUse = c.tick
		l.dirty = l.dirty || write
		res.Hit = true
		return res
	}
	// Demand miss: allocate.
	c.stats.Misses++
	res.Fetches = append(res.Fetches, addr/int64(c.cfg.BlockBytes)*int64(c.cfg.BlockBytes))
	if wb, ok := c.insert(set, tag, write, false); ok {
		res.Writebacks = append(res.Writebacks, wb)
	}
	// Next-line prefetch on demand miss.
	for i := 1; i <= c.cfg.PrefetchDegree; i++ {
		pAddr := addr + int64(i*c.cfg.BlockBytes)
		pSet, pTag := c.index(pAddr)
		if c.lookup(pSet, pTag) != nil {
			continue
		}
		c.stats.PrefetchIssued++
		res.Fetches = append(res.Fetches, pAddr/int64(c.cfg.BlockBytes)*int64(c.cfg.BlockBytes))
		if wb, ok := c.insert(pSet, pTag, false, true); ok {
			res.Writebacks = append(res.Writebacks, wb)
		}
	}
	return res
}

// lookup returns the matching valid line, updating nothing.
func (c *Cache) lookup(set int, tag int64) *line {
	for wi := range c.sets[set] {
		l := &c.sets[set][wi]
		if l.valid && l.tag == tag {
			return l
		}
	}
	return nil
}

// insert allocates a line for (set, tag), evicting LRU. It returns the
// writeback block address if the victim was dirty.
func (c *Cache) insert(set int, tag int64, dirty, prefetched bool) (writeback int64, dirtyEvict bool) {
	victim := 0
	for wi := range c.sets[set] {
		l := &c.sets[set][wi]
		if !l.valid {
			victim = wi
			break
		}
		if l.lastUse < c.sets[set][victim].lastUse {
			victim = wi
		}
	}
	v := &c.sets[set][victim]
	if v.valid && v.dirty {
		writeback = c.blockAddr(set, v.tag)
		dirtyEvict = true
		c.stats.DirtyEvictions++
	}
	*v = line{tag: tag, valid: true, dirty: dirty, prefetched: prefetched, lastUse: c.tick}
	return writeback, dirtyEvict
}
