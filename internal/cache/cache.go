// Package cache models the cache hierarchy of the CPU-centric baseline
// (and the L1s of the NMP baseline): set-associative, LRU-replaced,
// write-back/write-allocate caches with a next-line prefetcher.
//
// Paper Table 3: the CPU has 32 KB 2-way L1d caches with 64 B blocks and a
// shared 4 MB 16-way LLC; both CPU and NMP baselines feature a next-line
// prefetcher "capable of issuing prefetches for up to three next cache
// lines". The cache model filters the access stream the simulated memory
// system sees: only misses (demand or prefetch) and dirty evictions reach
// DRAM.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	SizeBytes      int
	Ways           int
	BlockBytes     int
	HitLatencyNs   float64
	MSHRs          int // outstanding-miss capacity (bounds miss-level parallelism)
	PrefetchDegree int // next-line prefetch depth; 0 disables
}

// L1D32K returns the CPU/NMP baseline L1 data cache configuration
// (32 KB, 2-way, 64 B blocks, 2-cycle latency at 2 GHz, 32 MSHRs).
func L1D32K() Config {
	return Config{SizeBytes: 32 << 10, Ways: 2, BlockBytes: 64, HitLatencyNs: 1.0, MSHRs: 32, PrefetchDegree: 3}
}

// LLC4M returns the shared last-level cache configuration
// (4 MB, 16-way, 64 B blocks, 4-cycle hit latency at 2 GHz).
func LLC4M() Config {
	return Config{SizeBytes: 4 << 20, Ways: 16, BlockBytes: 64, HitLatencyNs: 2.0, MSHRs: 64}
}

// Stats aggregates cache events.
type Stats struct {
	Accesses       uint64
	Hits           uint64
	Misses         uint64
	DirtyEvictions uint64
	PrefetchIssued uint64
	PrefetchHits   uint64 // demand hits on prefetched-not-yet-used lines
}

// HitRate returns the demand hit rate.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type line struct {
	tag int64
	// gen stamps the Cache generation the line was filled in; a line is
	// live only when valid and stamped with the current generation, so
	// Reset and Flush can invalidate the whole cache by bumping the
	// generation instead of clearing every line (pooled engines reset
	// between every run — an O(size) wipe there is the difference
	// between a cheap lifecycle and re-zeroing megabytes per query).
	gen        uint64
	valid      bool
	dirty      bool
	prefetched bool
	lastUse    uint64
}

// Cache is one set-associative cache level.
type Cache struct {
	cfg   Config
	sets  [][]line
	nsets int
	gen   uint64
	tick  uint64
	stats Stats

	// Shift/mask forms of the block and set arithmetic, valid when both
	// BlockBytes and the set count are powers of two (every modeled
	// configuration). The generic divide path remains for odd geometries.
	pow2       bool
	blockShift uint
	blockMask  int64 // BlockBytes-1
	setShift   uint
	setMask    int64 // nsets-1

	// Reusable buffers backing the slices returned in Result, so the
	// steady-state access path performs zero heap allocations. They are
	// overwritten by the next Access/AccessRun call.
	scratch  RunResult
	fetchBuf []int64
	wbBuf    []int64
}

// New builds a cache from its configuration.
func New(cfg Config) *Cache {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 || cfg.BlockBytes <= 0 {
		panic(fmt.Sprintf("cache: invalid config %+v", cfg))
	}
	nsets := cfg.SizeBytes / (cfg.Ways * cfg.BlockBytes)
	if nsets == 0 {
		panic("cache: fewer than one set")
	}
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	c := &Cache{cfg: cfg, sets: sets, nsets: nsets}
	if isPow2(cfg.BlockBytes) && isPow2(nsets) {
		c.pow2 = true
		c.blockShift = log2(cfg.BlockBytes)
		c.blockMask = int64(cfg.BlockBytes - 1)
		c.setShift = log2(nsets)
		c.setMask = int64(nsets - 1)
	}
	return c
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func log2(n int) uint {
	var s uint
	for n > 1 {
		n >>= 1
		s++
	}
	return s
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears statistics but keeps cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Reset restores the cache to its just-constructed state: every line
// invalidated, statistics and the LRU clock zeroed. Unlike Flush it models
// no hardware event — dirty lines are dropped without writebacks and
// without counting evictions — so a reset cache is indistinguishable from
// a fresh New(cfg). The reusable scratch buffers keep their capacity.
func (c *Cache) Reset() {
	c.gen++
	c.tick = 0
	c.stats = Stats{}
}

// Flush invalidates the whole cache, returning the block addresses of all
// dirty lines (which a memory system must write back).
func (c *Cache) Flush() []int64 {
	var wbs []int64
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			if l.valid && l.gen == c.gen && l.dirty {
				wbs = append(wbs, c.blockAddr(si, l.tag))
				c.stats.DirtyEvictions++
			}
		}
	}
	c.gen++
	return wbs
}

func (c *Cache) index(addr int64) (set int, tag int64) {
	if c.pow2 {
		blk := addr >> c.blockShift
		return int(blk & c.setMask), blk >> c.setShift
	}
	blk := addr / int64(c.cfg.BlockBytes)
	return int(blk % int64(c.nsets)), blk / int64(c.nsets)
}

func (c *Cache) blockAddr(set int, tag int64) int64 {
	if c.pow2 {
		return (tag<<c.setShift + int64(set)) << c.blockShift
	}
	return (tag*int64(c.nsets) + int64(set)) * int64(c.cfg.BlockBytes)
}

// blockBase rounds addr down to its block base address.
func (c *Cache) blockBase(addr int64) int64 {
	if c.pow2 {
		return addr &^ c.blockMask
	}
	return addr / int64(c.cfg.BlockBytes) * int64(c.cfg.BlockBytes)
}

// Result reports what one access did and what traffic it generated for the
// next level down: Fetches are block addresses that must be read (demand
// miss first, then prefetch misses), Writebacks are dirty evicted blocks.
// The slices alias buffers owned by the cache and are valid only until the
// next Access or AccessRun call — callers must consume them immediately.
type Result struct {
	Hit        bool
	Fetches    []int64
	Writebacks []int64
}

// RunOpKind classifies one entry of a RunResult's traffic list.
type RunOpKind uint8

// Traffic kinds, in the order the memory system below must see them per
// miss: the demand fetch, then prefetch fetches, then dirty writebacks.
const (
	RunFetchDemand RunOpKind = iota
	RunFetchPrefetch
	RunWriteback
)

// RunOp is one block-granular request for the level below the cache.
type RunOp struct {
	Addr int64
	Kind RunOpKind
}

// RunResult tallies one AccessRun. Ops is the ordered traffic for the
// level below; replaying it access-by-access reproduces exactly the
// Fetches/Writebacks sequence the per-access Access API would have
// produced. The Ops buffer is reused across calls on the same RunResult.
type RunResult struct {
	Hits   uint64
	Misses uint64
	Ops    []RunOp
	wbTmp  []int64 // per-miss writeback staging (fetches precede writebacks)
}

// Access performs one demand access to addr. Size is implicit: accesses
// are block-granular (the caller splits larger requests). The returned
// slices are only valid until the next access (see Result).
func (c *Cache) Access(addr int64, write bool) Result {
	c.scratch.Ops = c.scratch.Ops[:0]
	if c.accessOps(addr, write, &c.scratch) {
		return Result{Hit: true}
	}
	c.fetchBuf = c.fetchBuf[:0]
	c.wbBuf = c.wbBuf[:0]
	for _, op := range c.scratch.Ops {
		if op.Kind == RunWriteback {
			c.wbBuf = append(c.wbBuf, op.Addr)
		} else {
			c.fetchBuf = append(c.fetchBuf, op.Addr)
		}
	}
	return Result{Fetches: c.fetchBuf, Writebacks: c.wbBuf}
}

// accessOps is the single implementation of one demand access. Generated
// traffic is appended to res.Ops (fetches first, then writebacks, matching
// the order callers of Access drain Result). It reports whether the access
// hit.
func (c *Cache) accessOps(addr int64, write bool, res *RunResult) bool {
	c.tick++
	c.stats.Accesses++
	set, tag := c.index(addr)
	if l := c.lookup(set, tag); l != nil {
		c.stats.Hits++
		if l.prefetched {
			c.stats.PrefetchHits++
			l.prefetched = false
		}
		l.lastUse = c.tick
		l.dirty = l.dirty || write
		return true
	}
	// Demand miss: allocate.
	c.stats.Misses++
	res.wbTmp = res.wbTmp[:0]
	res.Ops = append(res.Ops, RunOp{Addr: c.blockBase(addr), Kind: RunFetchDemand})
	if wb, ok := c.insert(set, tag, write, false); ok {
		res.wbTmp = append(res.wbTmp, wb)
	}
	// Next-line prefetch on demand miss.
	for i := 1; i <= c.cfg.PrefetchDegree; i++ {
		pAddr := addr + int64(i*c.cfg.BlockBytes)
		pSet, pTag := c.index(pAddr)
		if c.lookup(pSet, pTag) != nil {
			continue
		}
		c.stats.PrefetchIssued++
		res.Ops = append(res.Ops, RunOp{Addr: c.blockBase(pAddr), Kind: RunFetchPrefetch})
		if wb, ok := c.insert(pSet, pTag, false, true); ok {
			res.wbTmp = append(res.wbTmp, wb)
		}
	}
	for _, wb := range res.wbTmp {
		res.Ops = append(res.Ops, RunOp{Addr: wb, Kind: RunWriteback})
	}
	return false
}

// AccessRun performs count sequential demand accesses of stride bytes
// each, starting at addr, with accounting identical to calling Access once
// per element: same stats, same replacement state, same traffic in the
// same order (collected in res.Ops). The first access to each block runs
// the full lookup/miss/prefetch machinery; the remaining same-block
// accesses are guaranteed hits and are retired in O(1) per block.
//
// The stride must evenly divide the block size and addr must be
// stride-aligned, so no element straddles a block boundary (the Unit
// layer falls back to per-access calls otherwise).
func (c *Cache) AccessRun(addr int64, stride, count int, write bool, res *RunResult) {
	bb := int64(c.cfg.BlockBytes)
	if stride <= 0 || bb%int64(stride) != 0 || addr%int64(stride) != 0 {
		panic(fmt.Sprintf("cache: AccessRun needs a block-aligned stride (addr=%d stride=%d block=%d)", addr, stride, c.cfg.BlockBytes))
	}
	res.Hits, res.Misses = 0, 0
	res.Ops = res.Ops[:0]
	for count > 0 {
		blockEnd := (addr/bb + 1) * bb
		k := int((blockEnd - addr) / int64(stride))
		if k > count {
			k = count
		}
		// First touch of the block: full per-access semantics.
		if c.accessOps(addr, write, res) {
			res.Hits++
		} else {
			res.Misses++
		}
		if k > 1 {
			set, tag := c.index(addr)
			if l := c.lookup(set, tag); l != nil {
				// The block survived its own prefetches (always, outside
				// pathologically tiny configurations): the remaining k-1
				// accesses are hits. Batch their bookkeeping; the final
				// lastUse/dirty state equals k-1 individual hit updates.
				m := uint64(k - 1)
				c.tick += m
				c.stats.Accesses += m
				c.stats.Hits += m
				res.Hits += m
				if l.prefetched {
					c.stats.PrefetchHits++
					l.prefetched = false
				}
				l.lastUse = c.tick
				l.dirty = l.dirty || write
			} else {
				// The demand line was evicted by its own prefetch inserts:
				// replay the remaining accesses one by one.
				for i := 1; i < k; i++ {
					if c.accessOps(addr+int64(i*stride), write, res) {
						res.Hits++
					} else {
						res.Misses++
					}
				}
			}
		}
		addr = blockEnd
		count -= k
	}
}

// AccessHitRun retires count repeated demand accesses that are known to
// fall in the single resident block holding addr (e.g. TLB lookups within
// one page after the first lookup installed the entry). If the block is
// not resident it reports false and performs no accounting, and the
// caller must fall back to per-access lookups.
func (c *Cache) AccessHitRun(addr int64, count int, write bool) bool {
	if count <= 0 {
		return true
	}
	set, tag := c.index(addr)
	l := c.lookup(set, tag)
	if l == nil {
		return false
	}
	m := uint64(count)
	c.tick += m
	c.stats.Accesses += m
	c.stats.Hits += m
	if l.prefetched {
		c.stats.PrefetchHits++
		l.prefetched = false
	}
	l.lastUse = c.tick
	l.dirty = l.dirty || write
	return true
}

// lookup returns the matching valid line, updating nothing.
func (c *Cache) lookup(set int, tag int64) *line {
	for wi := range c.sets[set] {
		l := &c.sets[set][wi]
		if l.valid && l.gen == c.gen && l.tag == tag {
			return l
		}
	}
	return nil
}

// insert allocates a line for (set, tag), evicting LRU. It returns the
// writeback block address if the victim was dirty.
func (c *Cache) insert(set int, tag int64, dirty, prefetched bool) (writeback int64, dirtyEvict bool) {
	victim := 0
	for wi := range c.sets[set] {
		l := &c.sets[set][wi]
		if !l.valid || l.gen != c.gen {
			victim = wi
			break
		}
		if l.lastUse < c.sets[set][victim].lastUse {
			victim = wi
		}
	}
	v := &c.sets[set][victim]
	if v.valid && v.gen == c.gen && v.dirty {
		writeback = c.blockAddr(set, v.tag)
		dirtyEvict = true
		c.stats.DirtyEvictions++
	}
	*v = line{tag: tag, gen: c.gen, valid: true, dirty: dirty, prefetched: prefetched, lastUse: c.tick}
	return writeback, dirtyEvict
}
