package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// tiny returns a 4-set, 2-way, 64 B-block cache without prefetching.
func tiny() *Cache {
	return New(Config{SizeBytes: 512, Ways: 2, BlockBytes: 64})
}

func TestConfigPresets(t *testing.T) {
	l1 := L1D32K()
	if l1.SizeBytes != 32<<10 || l1.Ways != 2 || l1.BlockBytes != 64 || l1.PrefetchDegree != 3 {
		t.Fatalf("L1D32K = %+v", l1)
	}
	llc := LLC4M()
	if llc.SizeBytes != 4<<20 || llc.Ways != 16 {
		t.Fatalf("LLC4M = %+v", llc)
	}
}

func TestMissThenHit(t *testing.T) {
	c := tiny()
	r1 := c.Access(0, false)
	if r1.Hit || len(r1.Fetches) != 1 || r1.Fetches[0] != 0 {
		t.Fatalf("first access: %+v", r1)
	}
	r2 := c.Access(63, false) // same block
	if !r2.Hit {
		t.Fatal("same-block access missed")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Accesses != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny() // 4 sets: blocks 0,4,8... map to set 0
	blk := func(i int) int64 { return int64(i * 4 * 64) }
	c.Access(blk(0), false)
	c.Access(blk(1), false)
	c.Access(blk(0), false) // touch 0: 1 becomes LRU
	c.Access(blk(2), false) // evicts 1
	if !c.Access(blk(0), false).Hit {
		t.Fatal("block 0 should have survived")
	}
	if c.Access(blk(1), false).Hit {
		t.Fatal("block 1 should have been evicted")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := tiny()
	blk := func(i int) int64 { return int64(i * 4 * 64) }
	c.Access(blk(0), true) // dirty
	c.Access(blk(1), false)
	r := c.Access(blk(2), false) // evicts dirty block 0
	if len(r.Writebacks) != 1 || r.Writebacks[0] != blk(0) {
		t.Fatalf("writebacks = %v, want [%d]", r.Writebacks, blk(0))
	}
	if c.Stats().DirtyEvictions != 1 {
		t.Fatalf("dirty evictions = %d", c.Stats().DirtyEvictions)
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := tiny()
	blk := func(i int) int64 { return int64(i * 4 * 64) }
	c.Access(blk(0), false) // clean fill
	c.Access(blk(0), true)  // write hit dirties it
	c.Access(blk(1), false)
	r := c.Access(blk(2), false)
	if len(r.Writebacks) != 1 {
		t.Fatal("write hit did not dirty the line")
	}
}

func TestNextLinePrefetch(t *testing.T) {
	c := New(Config{SizeBytes: 4096, Ways: 4, BlockBytes: 64, PrefetchDegree: 3})
	r := c.Access(0, false)
	// Demand block + 3 prefetched blocks fetched from below.
	if len(r.Fetches) != 4 {
		t.Fatalf("fetches = %v", r.Fetches)
	}
	if c.Stats().PrefetchIssued != 3 {
		t.Fatalf("prefetch issued = %d", c.Stats().PrefetchIssued)
	}
	// Sequential walk: next three blocks are hits on prefetched lines.
	for i := 1; i <= 3; i++ {
		if !c.Access(int64(i*64), false).Hit {
			t.Fatalf("block %d not prefetched", i)
		}
	}
	if c.Stats().PrefetchHits != 3 {
		t.Fatalf("prefetch hits = %d", c.Stats().PrefetchHits)
	}
}

func TestPrefetchNotReissuedForResident(t *testing.T) {
	c := New(Config{SizeBytes: 4096, Ways: 4, BlockBytes: 64, PrefetchDegree: 2})
	c.Access(0, false)        // fetches 0, prefetches 64,128
	r := c.Access(256, false) // miss; prefetch 320,384 (none resident)
	if len(r.Fetches) != 3 {
		t.Fatalf("fetches = %v", r.Fetches)
	}
	c2 := New(Config{SizeBytes: 4096, Ways: 4, BlockBytes: 64, PrefetchDegree: 2})
	c2.Access(64, false)      // fetches 64, prefetches 128,192
	r2 := c2.Access(0, false) // miss; 64 and 128 already resident
	if len(r2.Fetches) != 1 { // only demand block 0
		t.Fatalf("fetches = %v, want only demand block", r2.Fetches)
	}
}

func TestSequentialScanHitRate(t *testing.T) {
	c := New(L1D32K())
	// 8-byte strided scan over 64 KB: with 64 B blocks and prefetch,
	// hit rate should be very high.
	for a := int64(0); a < 64<<10; a += 8 {
		c.Access(a, false)
	}
	if hr := c.Stats().HitRate(); hr < 0.9 {
		t.Fatalf("sequential scan hit rate = %.3f, want > 0.9", hr)
	}
}

func TestRandomAccessBeyondCapacityMissRate(t *testing.T) {
	c := New(Config{SizeBytes: 8 << 10, Ways: 2, BlockBytes: 64})
	rng := rand.New(rand.NewSource(1))
	var hits int
	const n = 20000
	for i := 0; i < n; i++ {
		addr := rng.Int63n(64 << 20) // working set 8192× the cache
		if c.Access(addr, false).Hit {
			hits++
		}
	}
	if float64(hits)/n > 0.02 {
		t.Fatalf("random far-field hit rate = %.3f, want ~0", float64(hits)/n)
	}
}

func TestFlush(t *testing.T) {
	c := tiny()
	c.Access(0, true)
	c.Access(64, false)
	wbs := c.Flush()
	if len(wbs) != 1 || wbs[0] != 0 {
		t.Fatalf("flush writebacks = %v", wbs)
	}
	if c.Access(0, false).Hit {
		t.Fatal("flush left valid lines")
	}
}

func TestBlockAddrRoundTrip(t *testing.T) {
	c := New(L1D32K())
	for _, addr := range []int64{0, 64, 4096, 32 << 10, 1 << 30, (1 << 30) + 64*7} {
		set, tag := c.index(addr)
		back := c.blockAddr(set, tag)
		if back != addr/64*64 {
			t.Fatalf("round trip %d → (%d,%d) → %d", addr, set, tag, back)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero size did not panic")
		}
	}()
	New(Config{SizeBytes: 0, Ways: 1, BlockBytes: 64})
}

// Property: accounting identities hold under random access streams, and a
// re-access of the immediately preceding address always hits.
func TestCacheInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(seed int64, n uint16) bool {
		c := New(Config{SizeBytes: 2048, Ways: 2, BlockBytes: 64, PrefetchDegree: 1})
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < int(n); i++ {
			addr := r.Int63n(1 << 16)
			c.Access(addr, r.Intn(2) == 0)
			if !c.Access(addr, false).Hit {
				return false // temporal locality must always hit
			}
		}
		s := c.Stats()
		return s.Accesses == s.Hits+s.Misses && s.PrefetchHits <= s.PrefetchIssued
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
