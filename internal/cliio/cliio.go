// Package cliio provides the small, error-checked file plumbing shared
// by the command-line tools. Its job is to make the easy mistake hard:
// a buffered writer whose Flush error is dropped silently truncates
// output on full disks and broken pipes, and a tool that log.Fatals on
// an unrelated error must still have flushed what it already produced.
// Every writer handed out here is flushed and closed with the errors
// joined into the caller's return value.
package cliio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
)

// Stdout is the path spelling that routes output to standard output
// instead of a file, following the Unix convention.
const Stdout = "-"

// WriteFile creates (or truncates) path and hands fn a buffered writer.
// The buffer is flushed and the file closed even when fn fails, and
// every error — fn's, the flush's, the close's — is joined into the
// return value, so a full disk cannot masquerade as success. Path "-"
// writes to stdout (flushed, not closed).
func WriteFile(path string, fn func(io.Writer) error) error {
	return openAndWrite(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, fn)
}

// AppendFile is WriteFile but appends to path instead of truncating it,
// for accumulating record-per-line artifacts across runs.
func AppendFile(path string, fn func(io.Writer) error) error {
	return openAndWrite(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, fn)
}

func openAndWrite(path string, flag int, fn func(io.Writer) error) error {
	if path == Stdout {
		bw := bufio.NewWriter(os.Stdout)
		return errors.Join(fn(bw), bw.Flush())
	}
	f, err := os.OpenFile(path, flag, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	err = errors.Join(fn(bw), bw.Flush(), f.Close())
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
