package cliio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello\n")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// A second WriteFile truncates.
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "bye\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "bye\n" {
		t.Fatalf("content = %q, want %q", b, "bye\n")
	}
}

func TestAppendFileAccumulates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	for _, line := range []string{"one\n", "two\n"} {
		line := line
		if err := AppendFile(path, func(w io.Writer) error {
			_, err := io.WriteString(w, line)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "one\ntwo\n" {
		t.Fatalf("content = %q, want %q", b, "one\ntwo\n")
	}
}

func TestWriteFilePropagatesFnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	sentinel := errors.New("boom")
	err := WriteFile(path, func(io.Writer) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped %v", err, sentinel)
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("err %q does not name the file", err)
	}
}

func TestWriteFileBadDirectory(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "missing", "out.txt"),
		func(io.Writer) error { return nil })
	if err == nil {
		t.Fatal("want error for unwritable path")
	}
}

func TestWriteFileStdout(t *testing.T) {
	// "-" must not create a file named "-"; it writes to stdout.
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	if err := WriteFile(Stdout, func(w io.Writer) error {
		_, err := io.WriteString(w, "to stdout\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "-")); !os.IsNotExist(err) {
		t.Fatalf("WriteFile(%q) created a file named %q", Stdout, Stdout)
	}
}
