// Package cores provides analytical timing models for the three compute
// units of the paper (Table 3):
//
//   - CPU baseline: ARM Cortex-A57-like, 64-bit, 2 GHz, out-of-order,
//     3-wide dispatch/retire, 128-entry ROB;
//   - NMP baseline: Qualcomm Krait400-like, 1 GHz, out-of-order, 3-wide,
//     48-entry ROB;
//   - Mondrian: ARM Cortex-A35-like, 1 GHz, dual-issue in-order, with a
//     1024-bit fixed-point SIMD unit (8 lanes of 16-byte tuples).
//
// The model follows the paper's own performance methodology (§6): runtime
// is instruction count divided by achieved IPC and frequency, where the
// achieved IPC reflects issue width, dependency chains, and memory stalls
// bounded by the core's sustainable memory-level parallelism (MLP). The
// MLP derivation mirrors the paper's §3.2 estimate: an OoO core keeps
// about ROB/instructions-per-access memory requests in flight, capped by
// its MSHRs; an in-order core without stream buffers keeps barely one.
package cores

import "fmt"

// Model describes a compute unit.
type Model struct {
	Name       string
	FreqGHz    float64
	IssueWidth int
	ROB        int // reorder-buffer entries; 0 for in-order cores
	MSHRs      int // outstanding-miss registers
	InOrder    bool
	SIMDBits   int     // SIMD datapath width in bits; 0 = scalar only
	PeakPowerW float64 // Table 4 peak power
}

// CortexA57 returns the CPU-centric baseline core model.
func CortexA57() Model {
	return Model{Name: "Cortex-A57", FreqGHz: 2, IssueWidth: 3, ROB: 128, MSHRs: 32, PeakPowerW: 2.1}
}

// Krait400 returns the NMP baseline core model. Its 312 mW peak power is
// the full per-vault budget of Table 4.
func Krait400() Model {
	return Model{Name: "Krait400", FreqGHz: 1, IssueWidth: 3, ROB: 48, MSHRs: 16, PeakPowerW: 0.312}
}

// CortexA35Mondrian returns the Mondrian compute unit: dual-issue in-order
// with the widened 1024-bit fixed-point SIMD unit (§5.2), 180 mW.
func CortexA35Mondrian() Model {
	return Model{Name: "Cortex-A35+SIMD1024", FreqGHz: 1, IssueWidth: 2, InOrder: true,
		MSHRs: 4, SIMDBits: 1024, PeakPowerW: 0.180}
}

// CortexA35 returns the stock in-order A35 with 128-bit NEON, used by the
// SIMD-width ablation study.
func CortexA35() Model {
	return Model{Name: "Cortex-A35", FreqGHz: 1, IssueWidth: 2, InOrder: true,
		MSHRs: 4, SIMDBits: 128, PeakPowerW: 0.090}
}

// SIMDLanes returns how many 16-byte tuples one SIMD operation covers.
func (m Model) SIMDLanes(tupleBytes int) int {
	if m.SIMDBits == 0 {
		return 1
	}
	lanes := m.SIMDBits / 8 / tupleBytes
	if lanes < 1 {
		lanes = 1
	}
	return lanes
}

// MLP estimates sustainable outstanding memory accesses given the average
// number of instructions between memory accesses (paper §3.2: A57 with a
// 128-entry ROB and one access every 6 instructions sustains ~21, capped
// by MSHRs). In-order cores expose only their few non-blocking loads.
func (m Model) MLP(instPerAccess float64) float64 {
	if instPerAccess <= 0 {
		instPerAccess = 1
	}
	if m.InOrder {
		return float64(min(m.MSHRs, 2))
	}
	mlp := float64(m.ROB) / instPerAccess
	if mlp > float64(m.MSHRs) {
		mlp = float64(m.MSHRs)
	}
	if mlp < 1 {
		mlp = 1
	}
	return mlp
}

// SustainedRandomBWGBs reproduces the paper's first-order bandwidth bound
// for random accesses: MLP × accessBytes / memory latency.
func (m Model) SustainedRandomBWGBs(accessBytes int, instPerAccess, memLatencyNs float64) float64 {
	return m.MLP(instPerAccess) * float64(accessBytes) / memLatencyNs
}

// Work summarizes one compute unit's share of an operator phase.
type Work struct {
	// Instructions retired (SIMD operations count as single instructions;
	// the operator cost model already divides tuple work by SIMD lanes).
	Instructions float64
	// DependencyIPC caps issue due to data-dependency chains in the inner
	// loop (e.g. histogram pointer chasing caps near 1.0). Zero means
	// "no dependency limit" (cap at issue width).
	DependencyIPC float64
	// MemStallNs is the sum of memory latencies not hidden by caches or
	// stream buffers (demand misses), before MLP overlap.
	MemStallNs float64
	// InstPerMemAccess feeds the MLP estimate for stall overlap.
	InstPerMemAccess float64
	// StreamFed marks phases whose loads arrive through binding-prefetch
	// stream buffers; their latency is fully hidden (bandwidth is
	// enforced separately by DRAM/link busy times).
	StreamFed bool
	// MLPOverride, when positive, replaces the ROB/MSHR-derived MLP for
	// stall overlap. Operator cost models use it where the paper's
	// measured IPCs reflect dependence patterns the structural estimate
	// cannot see (e.g. serialized histogram-cursor chases).
	MLPOverride float64
}

// PhaseResult reports the core-side timing of a phase.
type PhaseResult struct {
	TimeNs       float64
	ComputeNs    float64
	MemStallNs   float64 // after MLP overlap
	AchievedIPC  float64
	EffectiveMLP float64
}

// PhaseTime estimates how long the core needs for the given work.
func (m Model) PhaseTime(w Work) PhaseResult {
	if w.Instructions < 0 || w.MemStallNs < 0 {
		panic(fmt.Sprintf("cores: negative work %+v", w))
	}
	ipcCap := float64(m.IssueWidth)
	if w.DependencyIPC > 0 && w.DependencyIPC < ipcCap {
		ipcCap = w.DependencyIPC
	}
	computeNs := w.Instructions / ipcCap / m.FreqGHz
	mlp := m.MLP(w.InstPerMemAccess)
	if w.MLPOverride > 0 {
		mlp = w.MLPOverride
	}
	stallNs := 0.0
	if !w.StreamFed {
		stallNs = w.MemStallNs / mlp
	}
	total := computeNs + stallNs
	var ipc float64
	if total > 0 {
		ipc = w.Instructions / (total * m.FreqGHz)
	}
	return PhaseResult{
		TimeNs:       total,
		ComputeNs:    computeNs,
		MemStallNs:   stallNs,
		AchievedIPC:  ipc,
		EffectiveMLP: mlp,
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
