package cores

import (
	"math"
	"testing"
)

func TestMLPOverrideTakesPrecedence(t *testing.T) {
	m := CortexA57()
	w := Work{Instructions: 100, DependencyIPC: 1, MemStallNs: 1000,
		InstPerMemAccess: 6, MLPOverride: 2}
	r := m.PhaseTime(w)
	if math.Abs(r.EffectiveMLP-2) > 1e-9 {
		t.Fatalf("effective MLP = %v, want override 2", r.EffectiveMLP)
	}
	if math.Abs(r.MemStallNs-500) > 1e-9 {
		t.Fatalf("stall = %v, want 500", r.MemStallNs)
	}
}

func TestSubUnityMLPOverrideModelsContention(t *testing.T) {
	// MLP < 1 encodes queueing: each miss costs more than its unloaded
	// latency (the CPU partition-loop calibration uses 0.5).
	m := CortexA57()
	w := Work{Instructions: 0, MemStallNs: 100, MLPOverride: 0.5}
	r := m.PhaseTime(w)
	if math.Abs(r.MemStallNs-200) > 1e-9 {
		t.Fatalf("contended stall = %v, want 200", r.MemStallNs)
	}
}

func TestStockA35Preset(t *testing.T) {
	a := CortexA35()
	if !a.InOrder || a.SIMDBits != 128 || a.PeakPowerW != 0.090 {
		t.Fatalf("A35 = %+v", a)
	}
	// 128-bit SIMD over 8-byte halves: two lanes of 8 B, one 16 B tuple.
	if a.SIMDLanes(8) != 2 {
		t.Fatalf("A35 8B lanes = %d", a.SIMDLanes(8))
	}
}

func TestSIMDLanesFloor(t *testing.T) {
	m := CortexA35()
	// A 32-byte object exceeds the 128-bit datapath: still 1 lane.
	if m.SIMDLanes(32) != 1 {
		t.Fatalf("lanes = %d, want floor of 1", m.SIMDLanes(32))
	}
}

func TestSustainedBandwidthScalesWithLatency(t *testing.T) {
	m := CortexA57()
	fast := m.SustainedRandomBWGBs(8, 6, 15)
	slow := m.SustainedRandomBWGBs(8, 6, 60)
	if math.Abs(fast/slow-4) > 1e-9 {
		t.Fatalf("bandwidth should be inversely proportional to latency: %v vs %v", fast, slow)
	}
}

func TestPhaseResultFields(t *testing.T) {
	m := Krait400()
	r := m.PhaseTime(Work{Instructions: 3000, DependencyIPC: 3, MemStallNs: 300, InstPerMemAccess: 10})
	if r.ComputeNs <= 0 || r.MemStallNs <= 0 {
		t.Fatalf("result = %+v", r)
	}
	if math.Abs(r.TimeNs-(r.ComputeNs+r.MemStallNs)) > 1e-9 {
		t.Fatal("time != compute + stalls")
	}
}
