package cores

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPresetParameters(t *testing.T) {
	a57 := CortexA57()
	if a57.FreqGHz != 2 || a57.IssueWidth != 3 || a57.ROB != 128 || a57.PeakPowerW != 2.1 {
		t.Fatalf("A57 = %+v", a57)
	}
	k := Krait400()
	if k.FreqGHz != 1 || k.ROB != 48 || k.PeakPowerW != 0.312 {
		t.Fatalf("Krait = %+v", k)
	}
	m := CortexA35Mondrian()
	if !m.InOrder || m.SIMDBits != 1024 || m.IssueWidth != 2 || m.PeakPowerW != 0.180 {
		t.Fatalf("Mondrian A35 = %+v", m)
	}
}

func TestSIMDLanes(t *testing.T) {
	m := CortexA35Mondrian()
	// 1024-bit datapath over 16-byte tuples = 8 tuples per op (paper §5.2).
	if got := m.SIMDLanes(16); got != 8 {
		t.Fatalf("SIMD lanes = %d, want 8", got)
	}
	if got := CortexA35().SIMDLanes(16); got != 1 {
		t.Fatalf("128-bit SIMD lanes over 16B tuples = %d, want 1", got)
	}
	if got := CortexA57().SIMDLanes(16); got != 1 {
		t.Fatalf("scalar core lanes = %d, want 1", got)
	}
}

func TestA57MLPMatchesPaperEstimate(t *testing.T) {
	// Paper §3.2: A57 with 128-entry ROB, one 8-byte access every 6
	// instructions → about 20 outstanding accesses; at 30 ns latency
	// that approaches 5.3 GB/s.
	a57 := CortexA57()
	mlp := a57.MLP(6)
	if mlp < 18 || mlp > 22 {
		t.Fatalf("A57 MLP = %.1f, want ~20", mlp)
	}
	bw := a57.SustainedRandomBWGBs(8, 6, 30)
	if bw < 5.0 || bw > 6.0 {
		t.Fatalf("A57 sustained random BW = %.2f GB/s, want ~5.3", bw)
	}
}

func TestMLPCappedByMSHRs(t *testing.T) {
	a57 := CortexA57()
	if got := a57.MLP(1); got != float64(a57.MSHRs) {
		t.Fatalf("MLP(1) = %v, want MSHR cap %d", got, a57.MSHRs)
	}
	if got := a57.MLP(1000); got != 1 {
		t.Fatalf("MLP floor = %v, want 1", got)
	}
	if got := a57.MLP(0); got != float64(a57.MSHRs) {
		t.Fatalf("MLP(0) should treat as 1 inst/access, got %v", got)
	}
}

func TestInOrderMLPIsTiny(t *testing.T) {
	m := CortexA35Mondrian()
	if got := m.MLP(6); got > 2 {
		t.Fatalf("in-order MLP = %v, want <= 2", got)
	}
}

func TestPhaseTimeComputeBound(t *testing.T) {
	m := Krait400() // 3-wide, 1 GHz
	r := m.PhaseTime(Work{Instructions: 3000, DependencyIPC: 0})
	if math.Abs(r.TimeNs-1000) > 1e-9 {
		t.Fatalf("compute-bound time = %v ns, want 1000", r.TimeNs)
	}
	if math.Abs(r.AchievedIPC-3) > 1e-9 {
		t.Fatalf("IPC = %v, want 3", r.AchievedIPC)
	}
}

func TestPhaseTimeDependencyLimited(t *testing.T) {
	m := Krait400()
	r := m.PhaseTime(Work{Instructions: 1000, DependencyIPC: 1})
	if math.Abs(r.TimeNs-1000) > 1e-9 {
		t.Fatalf("dependency-limited time = %v, want 1000", r.TimeNs)
	}
	// Dependency cap above issue width must not raise IPC beyond width.
	r2 := m.PhaseTime(Work{Instructions: 3000, DependencyIPC: 10})
	if r2.AchievedIPC > 3+1e-9 {
		t.Fatalf("IPC exceeded issue width: %v", r2.AchievedIPC)
	}
}

func TestPhaseTimeMemoryStallsOverlap(t *testing.T) {
	m := CortexA57()
	w := Work{Instructions: 6000, DependencyIPC: 2, MemStallNs: 30000, InstPerMemAccess: 6}
	r := m.PhaseTime(w)
	// Stalls divided by MLP ~21.3: ~1406 ns, on top of 1500 ns compute.
	if r.MemStallNs >= 30000/10 {
		t.Fatalf("stalls barely overlapped: %v", r.MemStallNs)
	}
	if r.TimeNs <= r.ComputeNs {
		t.Fatal("stall time vanished entirely")
	}
	// In-order core, same work, must stall far longer.
	io := CortexA35Mondrian().PhaseTime(w)
	if io.MemStallNs <= r.MemStallNs*2 {
		t.Fatalf("in-order stall %v should dwarf OoO stall %v", io.MemStallNs, r.MemStallNs)
	}
}

func TestStreamFedHidesLatency(t *testing.T) {
	m := CortexA35Mondrian()
	w := Work{Instructions: 1000, MemStallNs: 50000, StreamFed: true}
	r := m.PhaseTime(w)
	if r.MemStallNs != 0 {
		t.Fatalf("stream-fed stalls = %v, want 0", r.MemStallNs)
	}
	if r.TimeNs != r.ComputeNs {
		t.Fatal("stream-fed time should be pure compute")
	}
}

func TestPhaseTimePanicsOnNegativeWork(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative work did not panic")
		}
	}()
	CortexA57().PhaseTime(Work{Instructions: -1})
}

func TestZeroWork(t *testing.T) {
	r := CortexA57().PhaseTime(Work{})
	if r.TimeNs != 0 || r.AchievedIPC != 0 {
		t.Fatalf("zero work: %+v", r)
	}
}

// Property: phase time is monotone in both instructions and stalls, and
// achieved IPC never exceeds issue width.
func TestPhaseTimeMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	models := []Model{CortexA57(), Krait400(), CortexA35Mondrian()}
	f := func(ins uint32, stall uint32, extra uint16, which uint8) bool {
		m := models[int(which)%len(models)]
		w := Work{Instructions: float64(ins), DependencyIPC: 1.5,
			MemStallNs: float64(stall), InstPerMemAccess: 6}
		base := m.PhaseTime(w)
		w2 := w
		w2.Instructions += float64(extra)
		w2.MemStallNs += float64(extra)
		more := m.PhaseTime(w2)
		return more.TimeNs >= base.TimeNs &&
			base.AchievedIPC <= float64(m.IssueWidth)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
