package dram

import "testing"

// Micro-benchmarks of the simulator's own hot paths.

func BenchmarkAccessRowHit(b *testing.B) {
	d := testDevice()
	d.Access(0, 16, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Access(int64(i%16)*16, 16, false)
	}
}

func BenchmarkAccessRowConflict(b *testing.B) {
	d := testDevice()
	g := d.Geometry()
	stride := int64(g.RowBytes * g.Banks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Access(int64(i%64)*stride, 16, false)
	}
}

func BenchmarkWindowPushFlush(b *testing.B) {
	d := testDevice()
	w := NewWindow(d, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Push(Request{Addr: int64(i%4096) * 16, Size: 16, Write: true})
	}
	w.Flush()
}
