// Package dram models the DRAM array behind one memory partition (an HMC
// vault) at row-buffer granularity.
//
// This is the substrate the paper's efficiency argument rests on (§3.1):
// a DRAM access is a row activation — copying an entire row into the row
// buffer — followed by a data transfer. For the HMC, the row is 256 B and
// the activation accounts for 14% of the access energy when a whole row is
// consumed, climbing to ~80% when only 8 B of an activated row are used.
// The model tracks open rows per bank, classifies every access as a row
// hit, a cold miss (bank idle) or a row conflict (different row open),
// charges DDR-style timing (Table 3) and counts the raw events that the
// energy model (Table 4) later converts to joules.
package dram

import "fmt"

// Timing holds DRAM timing parameters in nanoseconds (paper Table 3).
type Timing struct {
	TCK  float64 // clock period
	TRAS float64 // row active time
	TRCD float64 // row-to-column delay (activation latency)
	TCAS float64 // column access latency
	TWR  float64 // write recovery
	TRP  float64 // row precharge

	// Refresh: every TREFI (average refresh interval) the device spends
	// TRFC unavailable. Zero TREFI disables refresh modeling. Refresh
	// steals a fixed fraction TRFC/TREFI of device time, which inflates
	// BusyNs — the standard first-order refresh model.
	TREFI float64
	TRFC  float64
}

// RefreshOverhead returns the fraction of device time refresh steals.
func (t Timing) RefreshOverhead() float64 {
	if t.TREFI <= 0 {
		return 0
	}
	return t.TRFC / t.TREFI
}

// HMCTiming returns the timing used in the paper's simulations, with
// standard DDR-class refresh parameters (7.8 µs interval, 160 ns tRFC —
// stacked dies refresh per-vault, so the penalty is modest).
func HMCTiming() Timing {
	return Timing{TCK: 1.6, TRAS: 22.4, TRCD: 11.2, TCAS: 11.2, TWR: 14.4, TRP: 11.2,
		TREFI: 7800, TRFC: 160}
}

// Geometry describes the DRAM array of one vault.
type Geometry struct {
	RowBytes      int   // row-buffer size; 256 B for HMC
	Banks         int   // independently operable banks
	CapacityBytes int64 // total vault capacity
	// PeakBandwidthGBs is the vault's effective peak data bandwidth
	// (8 GB/s per HMC vault in the paper).
	PeakBandwidthGBs float64
}

// HMCGeometry returns the per-vault geometry modeled in the paper:
// 512 MB vaults (16 per 8 GB cube), 256 B rows, 8 GB/s peak bandwidth.
func HMCGeometry() Geometry {
	return Geometry{RowBytes: 256, Banks: 8, CapacityBytes: 512 << 20, PeakBandwidthGBs: 8}
}

// RowsPerBank derives the number of rows each bank holds.
func (g Geometry) RowsPerBank() int64 {
	return g.CapacityBytes / int64(g.RowBytes*g.Banks)
}

// transferNs is the bus occupancy of moving size bytes at peak bandwidth.
func (g Geometry) transferNs(size int) float64 {
	return float64(size) / g.PeakBandwidthGBs // bytes / (GB/s) = ns
}

// Stats aggregates raw DRAM events for one device. The energy model
// translates Activations and transferred bytes into joules.
type Stats struct {
	Reads, Writes         uint64
	ReadBytes, WriteBytes uint64
	Activations           uint64
	RowHits               uint64
	RowColdMisses         uint64 // bank had no open row
	RowConflicts          uint64 // bank had a different row open
	BusNs                 float64
}

// Merge folds another shard of statistics into s. Every field is a plain
// sum, so merging per-vault shards in any order and association equals
// serial accumulation (integer fields exactly; BusNs is a float sum of
// the same addends, so equal-addend shards merge exactly too).
func (s *Stats) Merge(o Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.ReadBytes += o.ReadBytes
	s.WriteBytes += o.WriteBytes
	s.Activations += o.Activations
	s.RowHits += o.RowHits
	s.RowColdMisses += o.RowColdMisses
	s.RowConflicts += o.RowConflicts
	s.BusNs += o.BusNs
}

// TotalBytes returns the total data volume moved over the vault bus.
func (s Stats) TotalBytes() uint64 { return s.ReadBytes + s.WriteBytes }

// Accesses returns the total access count.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// RowHitRate returns the fraction of accesses that hit an open row.
func (s Stats) RowHitRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Accesses())
}

const noRow = int64(-1)

// bank holds the row-buffer state of one DRAM bank.
type bank struct {
	openRow int64
	busyNs  float64
}

// Device simulates one vault's DRAM array.
type Device struct {
	geom  Geometry
	tim   Timing
	banks []bank
	stats Stats

	// Shift/mask forms of the row/bank arithmetic, valid when RowBytes
	// and Banks are powers of two (every modeled configuration).
	pow2      bool
	rowShift  uint
	rowMask   int64 // RowBytes-1
	bankShift uint
	bankMask  int64 // Banks-1
}

// NewDevice creates a DRAM device with the given geometry and timing.
func NewDevice(g Geometry, t Timing) *Device {
	if g.RowBytes <= 0 || g.Banks <= 0 || g.CapacityBytes <= 0 || g.PeakBandwidthGBs <= 0 {
		panic(fmt.Sprintf("dram: invalid geometry %+v", g))
	}
	d := &Device{geom: g, tim: t, banks: make([]bank, g.Banks)}
	for i := range d.banks {
		d.banks[i].openRow = noRow
	}
	if isPow2(g.RowBytes) && isPow2(g.Banks) {
		d.pow2 = true
		d.rowShift = log2(g.RowBytes)
		d.rowMask = int64(g.RowBytes - 1)
		d.bankShift = log2(g.Banks)
		d.bankMask = int64(g.Banks - 1)
	}
	return d
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func log2(n int) uint {
	var s uint
	for n > 1 {
		n >>= 1
		s++
	}
	return s
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geom }

// Stats returns a snapshot of accumulated statistics.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats clears counters but keeps row-buffer state.
func (d *Device) ResetStats() { d.stats = Stats{} }

// CloseAllRows precharges every bank (e.g. between experiment phases).
func (d *Device) CloseAllRows() {
	for i := range d.banks {
		d.banks[i].openRow = noRow
	}
}

// locate maps a vault-local address to (bank, row). Consecutive rows are
// interleaved across banks so that sequential streams pipeline activations
// across all banks.
func (d *Device) locate(addr int64) (bankIdx int, row int64) {
	if d.pow2 {
		rowGlobal := addr >> d.rowShift
		return int(rowGlobal & d.bankMask), rowGlobal >> d.bankShift
	}
	rowGlobal := addr / int64(d.geom.RowBytes)
	return int(rowGlobal % int64(d.geom.Banks)), rowGlobal / int64(d.geom.Banks)
}

// rowOffset returns addr's offset within its row.
func (d *Device) rowOffset(addr int64) int64 {
	if d.pow2 {
		return addr & d.rowMask
	}
	return addr % int64(d.geom.RowBytes)
}

// Access performs one DRAM access of size bytes at a vault-local address.
// The access must not cross a row boundary (use AccessRange for arbitrary
// extents). It returns the access latency in nanoseconds.
func (d *Device) Access(addr int64, size int, write bool) float64 {
	if size <= 0 {
		panic("dram: access size must be positive")
	}
	if off := d.rowOffset(addr); int(off)+size > d.geom.RowBytes {
		panic(fmt.Sprintf("dram: access [%d,+%d) crosses a %dB row boundary", addr, size, d.geom.RowBytes))
	}
	bi, row := d.locate(addr)
	b := &d.banks[bi]

	var lat float64
	switch {
	case b.openRow == row:
		d.stats.RowHits++
		lat = d.tim.TCAS
	case b.openRow == noRow:
		d.stats.RowColdMisses++
		d.stats.Activations++
		b.openRow = row
		lat = d.tim.TRCD + d.tim.TCAS
	default:
		d.stats.RowConflicts++
		d.stats.Activations++
		b.openRow = row
		lat = d.tim.TRP + d.tim.TRCD + d.tim.TCAS
	}
	xfer := d.geom.transferNs(size)
	lat += xfer
	if write {
		d.stats.Writes++
		d.stats.WriteBytes += uint64(size)
		// Write recovery occupies the bank, not the requester.
		b.busyNs += lat + d.tim.TWR
	} else {
		d.stats.Reads++
		d.stats.ReadBytes += uint64(size)
		b.busyNs += lat
	}
	d.stats.BusNs += xfer
	return lat
}

// AccessRange performs an access of arbitrary size, splitting it into
// row-sized pieces as the HMC protocol does (max request = one 256 B row).
// It returns the sum of piece latencies (a sequential-dependency upper
// bound; concurrent pieces are accounted for by the core's MLP model).
func (d *Device) AccessRange(addr int64, size int, write bool) float64 {
	if size <= 0 {
		panic("dram: access size must be positive")
	}
	var total float64
	for size > 0 {
		rowOff := int(d.rowOffset(addr))
		chunk := d.geom.RowBytes - rowOff
		if chunk > size {
			chunk = size
		}
		total += d.Access(addr, chunk, write)
		addr += int64(chunk)
		size -= chunk
	}
	return total
}

// AccessRun performs count sequential accesses of stride bytes each,
// starting at addr, with accounting identical to calling Access once per
// element: the same row-hit/miss classification, the same per-access
// floating-point additions to bank busy time and bus occupancy in the same
// order (float addition is order-sensitive, so the adds are not regrouped).
// If stallAccum is non-nil, each element's latency is added to it, exactly
// as a caller looping over Access and accumulating latencies would.
//
// The fast path requires that the stride evenly divide the row size and
// that addr be stride-aligned, so no element straddles a row; other shapes
// fall back to per-element AccessRange calls.
func (d *Device) AccessRun(addr int64, stride, count int, write bool, stallAccum *float64) {
	rb := int64(d.geom.RowBytes)
	if stride <= 0 || rb%int64(stride) != 0 || addr%int64(stride) != 0 {
		for i := 0; i < count; i++ {
			lat := d.AccessRange(addr+int64(i)*int64(stride), stride, write)
			if stallAccum != nil {
				*stallAccum += lat
			}
		}
		return
	}
	xfer := d.geom.transferNs(stride)
	hitLat := d.tim.TCAS + xfer
	writeRecovery := hitLat + d.tim.TWR
	for count > 0 {
		rowEnd := addr - d.rowOffset(addr) + rb
		k := int((rowEnd - addr) / int64(stride))
		if k > count {
			k = count
		}
		bi, row := d.locate(addr)
		b := &d.banks[bi]
		// First element of the row: full open-row resolution.
		var lat float64
		switch {
		case b.openRow == row:
			d.stats.RowHits++
			lat = d.tim.TCAS
		case b.openRow == noRow:
			d.stats.RowColdMisses++
			d.stats.Activations++
			b.openRow = row
			lat = d.tim.TRCD + d.tim.TCAS
		default:
			d.stats.RowConflicts++
			d.stats.Activations++
			b.openRow = row
			lat = d.tim.TRP + d.tim.TRCD + d.tim.TCAS
		}
		lat += xfer
		if write {
			b.busyNs += lat + d.tim.TWR
		} else {
			b.busyNs += lat
		}
		d.stats.BusNs += xfer
		if stallAccum != nil {
			*stallAccum += lat
		}
		// Remaining elements in this row are guaranteed row hits (nothing
		// else touches the bank mid-run). Integer tallies batch; the float
		// accumulators still receive one addition per element.
		d.stats.RowHits += uint64(k - 1)
		for i := 1; i < k; i++ {
			if write {
				b.busyNs += writeRecovery
			} else {
				b.busyNs += hitLat
			}
			d.stats.BusNs += xfer
			if stallAccum != nil {
				*stallAccum += hitLat
			}
		}
		if write {
			d.stats.Writes += uint64(k)
			d.stats.WriteBytes += uint64(k * stride)
		} else {
			d.stats.Reads += uint64(k)
			d.stats.ReadBytes += uint64(k * stride)
		}
		addr = rowEnd
		count -= k
	}
}

// BusyNs returns the device-level busy time: the maximum over banks of
// per-bank busy time, but never less than the shared-bus occupancy, both
// inflated by the refresh overhead. This is the vault's contribution to
// phase runtime when it is the bottleneck: random fine-grained traffic
// serializes on bank activate/precharge cycles, while sequential streams
// are limited only by bus bandwidth.
func (d *Device) BusyNs() float64 {
	var maxBank float64
	for i := range d.banks {
		if d.banks[i].busyNs > maxBank {
			maxBank = d.banks[i].busyNs
		}
	}
	busy := d.stats.BusNs
	if maxBank > busy {
		busy = maxBank
	}
	return busy * (1 + d.tim.RefreshOverhead())
}

// ResetBusy clears per-bank and bus busy accumulators (stats remain).
func (d *Device) ResetBusy() {
	for i := range d.banks {
		d.banks[i].busyNs = 0
	}
	d.stats.BusNs = 0
}
