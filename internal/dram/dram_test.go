package dram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testDevice() *Device {
	g := HMCGeometry()
	g.CapacityBytes = 1 << 20 // small vault for tests
	return NewDevice(g, HMCTiming())
}

func TestHMCDefaults(t *testing.T) {
	g := HMCGeometry()
	if g.RowBytes != 256 {
		t.Fatalf("HMC row = %d, want 256", g.RowBytes)
	}
	if g.PeakBandwidthGBs != 8 {
		t.Fatalf("HMC peak BW = %v, want 8", g.PeakBandwidthGBs)
	}
	if g.CapacityBytes != 512<<20 {
		t.Fatalf("HMC vault capacity = %d, want 512MB", g.CapacityBytes)
	}
	tim := HMCTiming()
	if tim.TRCD != 11.2 || tim.TCAS != 11.2 || tim.TRP != 11.2 || tim.TRAS != 22.4 {
		t.Fatalf("unexpected HMC timing %+v", tim)
	}
}

func TestRowsPerBank(t *testing.T) {
	g := Geometry{RowBytes: 256, Banks: 8, CapacityBytes: 1 << 20, PeakBandwidthGBs: 8}
	if got := g.RowsPerBank(); got != (1<<20)/(256*8) {
		t.Fatalf("RowsPerBank = %d", got)
	}
}

func TestColdMissThenHit(t *testing.T) {
	d := testDevice()
	lat1 := d.Access(0, 16, false)
	lat2 := d.Access(16, 16, false)
	s := d.Stats()
	if s.RowColdMisses != 1 || s.RowHits != 1 || s.Activations != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if lat1 <= lat2 {
		t.Fatalf("cold miss latency %.2f should exceed hit latency %.2f", lat1, lat2)
	}
	tim := HMCTiming()
	wantHit := tim.TCAS + 16.0/8.0
	if lat2 != wantHit {
		t.Fatalf("hit latency = %.3f, want %.3f", lat2, wantHit)
	}
	wantMiss := tim.TRCD + tim.TCAS + 16.0/8.0
	if lat1 != wantMiss {
		t.Fatalf("cold miss latency = %.3f, want %.3f", lat1, wantMiss)
	}
}

func TestRowConflict(t *testing.T) {
	d := testDevice()
	g := d.Geometry()
	// Same bank, different row: rows are bank-interleaved, so addresses
	// RowBytes*Banks apart share a bank.
	stride := int64(g.RowBytes * g.Banks)
	d.Access(0, 8, false)
	lat := d.Access(stride, 8, false)
	s := d.Stats()
	if s.RowConflicts != 1 {
		t.Fatalf("conflicts = %d, want 1; stats %+v", s.RowConflicts, s)
	}
	tim := HMCTiming()
	want := tim.TRP + tim.TRCD + tim.TCAS + 8.0/8.0
	if lat != want {
		t.Fatalf("conflict latency = %.3f, want %.3f", lat, want)
	}
}

func TestBankInterleavingAvoidsConflicts(t *testing.T) {
	d := testDevice()
	g := d.Geometry()
	// Touching consecutive rows lands on different banks: no conflicts.
	for i := 0; i < g.Banks; i++ {
		d.Access(int64(i*g.RowBytes), 8, false)
	}
	if s := d.Stats(); s.RowConflicts != 0 || s.RowColdMisses != uint64(g.Banks) {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSequentialStreamActivatesEachRowOnce(t *testing.T) {
	d := testDevice()
	g := d.Geometry()
	const rows = 64
	for a := int64(0); a < int64(rows*g.RowBytes); a += 16 {
		d.Access(a, 16, false)
	}
	s := d.Stats()
	if s.Activations != rows {
		t.Fatalf("sequential stream: %d activations, want %d", s.Activations, rows)
	}
	accessesPerRow := uint64(g.RowBytes / 16)
	if s.RowHits != rows*(accessesPerRow-1) {
		t.Fatalf("row hits = %d, want %d", s.RowHits, rows*(accessesPerRow-1))
	}
}

func TestRandomVsSequentialActivationGap(t *testing.T) {
	seq, rnd := testDevice(), testDevice()
	g := seq.Geometry()
	n := 4096
	// Sequential pass.
	for i := 0; i < n; i++ {
		seq.Access(int64(i*16)%g.CapacityBytes, 16, true)
	}
	// Random pass over many rows.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		addr := rng.Int63n(g.CapacityBytes / 16 / 16 * 16) // within first 1/16th: still >> banks rows
		rnd.Access(addr/16*16, 16, true)
	}
	if rnd.Stats().Activations < 4*seq.Stats().Activations {
		t.Fatalf("random activations (%d) should dwarf sequential (%d)",
			rnd.Stats().Activations, seq.Stats().Activations)
	}
	if rnd.BusyNs() <= seq.BusyNs() {
		t.Fatalf("random busy %.1f should exceed sequential busy %.1f", rnd.BusyNs(), seq.BusyNs())
	}
}

func TestAccessRangeSplitsOnRows(t *testing.T) {
	d := testDevice()
	g := d.Geometry()
	// A 256 B access starting mid-row must touch two rows.
	d.AccessRange(int64(g.RowBytes/2), g.RowBytes, false)
	if s := d.Stats(); s.Activations != 2 {
		t.Fatalf("activations = %d, want 2", s.Activations)
	}
	if s := d.Stats(); s.ReadBytes != uint64(g.RowBytes) {
		t.Fatalf("read bytes = %d, want %d", s.ReadBytes, g.RowBytes)
	}
}

func TestAccessPanicsAcrossRow(t *testing.T) {
	d := testDevice()
	defer func() {
		if recover() == nil {
			t.Fatal("row-crossing Access did not panic")
		}
	}()
	d.Access(int64(d.Geometry().RowBytes)-8, 16, false)
}

func TestAccessPanicsOnZeroSize(t *testing.T) {
	d := testDevice()
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size Access did not panic")
		}
	}()
	d.Access(0, 0, false)
}

func TestWriteRecoveryChargesBank(t *testing.T) {
	rd, wr := testDevice(), testDevice()
	for i := 0; i < 16; i++ {
		rd.Access(int64(i*16), 16, false)
		wr.Access(int64(i*16), 16, true)
	}
	if wr.BusyNs() <= rd.BusyNs() {
		t.Fatalf("writes busy %.1f should exceed reads busy %.1f (tWR)", wr.BusyNs(), rd.BusyNs())
	}
}

func TestCloseAllRows(t *testing.T) {
	d := testDevice()
	d.Access(0, 8, false)
	d.CloseAllRows()
	d.Access(8, 8, false) // same row, but closed in between
	if s := d.Stats(); s.RowHits != 0 || s.Activations != 2 {
		t.Fatalf("stats after close = %+v", s)
	}
}

func TestResetStatsAndBusy(t *testing.T) {
	d := testDevice()
	d.Access(0, 8, true)
	d.ResetBusy()
	if d.BusyNs() != 0 {
		t.Fatal("busy not cleared")
	}
	d.ResetStats()
	if d.Stats().Accesses() != 0 {
		t.Fatal("stats not cleared")
	}
	// Row state must survive ResetStats: next access to row 0 is a hit.
	d.Access(8, 8, false)
	if d.Stats().RowHits != 1 {
		t.Fatal("row state lost across ResetStats")
	}
}

func TestRowHitRate(t *testing.T) {
	d := testDevice()
	if d.Stats().RowHitRate() != 0 {
		t.Fatal("empty device hit rate should be 0")
	}
	d.Access(0, 8, false)
	d.Access(8, 8, false)
	d.Access(16, 8, false)
	d.Access(24, 8, false)
	if got := d.Stats().RowHitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", got)
	}
}

// Property: activations always equal cold misses + conflicts, and every
// access is classified exactly once.
func TestAccountingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64, n uint16) bool {
		d := testDevice()
		g := d.Geometry()
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < int(n); i++ {
			addr := r.Int63n(g.CapacityBytes/8) * 8
			size := []int{8, 16, 32, 64}[r.Intn(4)]
			if int(addr%int64(g.RowBytes))+size > g.RowBytes {
				size = g.RowBytes - int(addr%int64(g.RowBytes))
			}
			d.Access(addr, size, r.Intn(2) == 0)
		}
		s := d.Stats()
		return s.Activations == s.RowColdMisses+s.RowConflicts &&
			s.Accesses() == s.RowHits+s.RowColdMisses+s.RowConflicts &&
			s.Accesses() == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowFRFCFSPrefersOpenRow(t *testing.T) {
	d := testDevice()
	g := d.Geometry()
	w := NewWindow(d, 4)
	stride := int64(g.RowBytes * g.Banks) // same bank, different rows
	// Open row 0 of bank 0.
	d.Access(0, 8, false)
	// Queue a conflict access and a hit access; FR-FCFS services the hit
	// first, so only one conflict occurs in total.
	w.Push(Request{Addr: stride, Size: 8})
	w.Push(Request{Addr: 8, Size: 8}) // row 0 again: should be serviced first
	w.Flush()
	s := d.Stats()
	if s.RowHits != 1 || s.RowConflicts != 1 {
		t.Fatalf("FR-FCFS stats = %+v, want 1 hit then 1 conflict", s)
	}
}

func TestWindowCapacityForcesService(t *testing.T) {
	d := testDevice()
	w := NewWindow(d, 2)
	if lat := w.Push(Request{Addr: 0, Size: 8}); lat != 0 {
		t.Fatal("push into empty window should not service")
	}
	w.Push(Request{Addr: 8, Size: 8})
	if lat := w.Push(Request{Addr: 16, Size: 8}); lat == 0 {
		t.Fatal("push into full window must service one request")
	}
	if w.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", w.Pending())
	}
	w.Flush()
	if w.Pending() != 0 {
		t.Fatal("flush left pending requests")
	}
	if d.Stats().Accesses() != 3 {
		t.Fatalf("device saw %d accesses, want 3", d.Stats().Accesses())
	}
}

func TestWindowStrictFCFSWithCapacityOne(t *testing.T) {
	d := testDevice()
	g := d.Geometry()
	w := NewWindow(d, 1)
	stride := int64(g.RowBytes * g.Banks)
	d.Access(0, 8, false)
	w.Push(Request{Addr: stride, Size: 8})
	w.Push(Request{Addr: 8, Size: 8})
	w.Flush()
	// With no lookahead, the conflict access goes first and closes row 0,
	// so the second access conflicts again.
	if s := d.Stats(); s.RowConflicts != 2 {
		t.Fatalf("FCFS conflicts = %d, want 2", s.RowConflicts)
	}
}

func TestWindowPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWindow(0) did not panic")
		}
	}()
	NewWindow(testDevice(), 0)
}

// Property: a window never loses or duplicates requests.
func TestWindowConservesRequests(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64, n uint8, capacity uint8) bool {
		d := testDevice()
		w := NewWindow(d, int(capacity)%7+1)
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < int(n); i++ {
			w.Push(Request{Addr: r.Int63n(1<<18) / 8 * 8, Size: 8, Write: r.Intn(2) == 0})
		}
		w.Flush()
		return d.Stats().Accesses() == uint64(n) && w.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestRefreshOverhead(t *testing.T) {
	tim := HMCTiming()
	if oh := tim.RefreshOverhead(); oh <= 0 || oh > 0.05 {
		t.Fatalf("HMC refresh overhead = %v, want a few percent", oh)
	}
	tim.TREFI = 0
	if tim.RefreshOverhead() != 0 {
		t.Fatal("disabled refresh should cost nothing")
	}
}

func TestRefreshInflatesBusy(t *testing.T) {
	g := HMCGeometry()
	g.CapacityBytes = 1 << 20
	withRef := NewDevice(g, HMCTiming())
	noRefT := HMCTiming()
	noRefT.TREFI = 0
	without := NewDevice(g, noRefT)
	for a := int64(0); a < 1<<14; a += 16 {
		withRef.Access(a, 16, false)
		without.Access(a, 16, false)
	}
	ratio := withRef.BusyNs() / without.BusyNs()
	want := 1 + HMCTiming().RefreshOverhead()
	if ratio < want-1e-9 || ratio > want+1e-9 {
		t.Fatalf("refresh busy ratio = %v, want %v", ratio, want)
	}
	// Latency of an individual access is unchanged (refresh is modeled
	// as stolen throughput, not added latency).
	a := NewDevice(g, HMCTiming())
	b := NewDevice(g, noRefT)
	if a.Access(0, 16, false) != b.Access(0, 16, false) {
		t.Fatal("refresh changed per-access latency")
	}
}
