package dram

import "testing"

// shardStats builds N deterministic per-vault stat shards. BusNs values
// are multiples of 0.25 well below 2^53 quarters, so every float sum in
// the tests below is exact and order/association cannot change the result.
func shardStats(n int) []Stats {
	shards := make([]Stats, n)
	for i := range shards {
		k := uint64(i + 1)
		shards[i] = Stats{
			Reads:         k * 17,
			Writes:        k * 5,
			ReadBytes:     k * 17 * 64,
			WriteBytes:    k * 5 * 64,
			Activations:   k * 3,
			RowHits:       k * 11,
			RowColdMisses: k * 2,
			RowConflicts:  k,
			BusNs:         float64(i*i+1) * 0.25,
		}
	}
	return shards
}

// TestStatsMergeOrderIndependent is the shard-merge property the parallel
// engine relies on: folding per-vault shards in any order and any
// association equals serial accumulation, field for field.
func TestStatsMergeOrderIndependent(t *testing.T) {
	shards := shardStats(16)

	var serial Stats
	for _, s := range shards {
		serial.Merge(s)
	}

	var reversed Stats
	for i := len(shards) - 1; i >= 0; i-- {
		reversed.Merge(shards[i])
	}
	if reversed != serial {
		t.Fatalf("reverse-order merge diverges:\n%+v\nvs\n%+v", reversed, serial)
	}

	// Stride-3 permutation.
	var strided Stats
	for off := 0; off < 3; off++ {
		for i := off; i < len(shards); i += 3 {
			strided.Merge(shards[i])
		}
	}
	if strided != serial {
		t.Fatalf("strided merge diverges:\n%+v\nvs\n%+v", strided, serial)
	}

	// Pairwise-tree association: merge halves recursively.
	var tree func(ss []Stats) Stats
	tree = func(ss []Stats) Stats {
		if len(ss) == 1 {
			return ss[0]
		}
		left, right := tree(ss[:len(ss)/2]), tree(ss[len(ss)/2:])
		left.Merge(right)
		return left
	}
	if got := tree(shards); got != serial {
		t.Fatalf("tree-association merge diverges:\n%+v\nvs\n%+v", got, serial)
	}

	// Merging a zero shard is the identity.
	withZero := serial
	withZero.Merge(Stats{})
	if withZero != serial {
		t.Fatal("zero shard changed the merge result")
	}
}
