package dram

// Request is one memory access queued at a vault controller.
type Request struct {
	Addr  int64
	Size  int
	Write bool
}

// Window is a small FR-FCFS scheduling window in front of a Device.
//
// The paper (§4.1.2) notes that conventional memory controllers can reorder
// incoming requests to prioritize open rows, but that during partitioning
// "the distance of accesses to different locations within a row is
// typically too long for this scheduling window" — which is why hardware
// permutability is needed. Window models exactly that limited capability:
// among at most Cap buffered requests, a request hitting a currently open
// row is serviced first (first-ready); otherwise the oldest request is
// serviced (first-come first-served).
type Window struct {
	dev     *Device
	cap     int
	pending []Request
	// ServicedNs accumulates the latency of all serviced requests.
	ServicedNs float64
}

// NewWindow creates a scheduling window of the given capacity. A capacity
// of 1 degenerates to strict FCFS.
func NewWindow(dev *Device, capacity int) *Window {
	if capacity < 1 {
		panic("dram: window capacity must be >= 1")
	}
	return &Window{dev: dev, cap: capacity, pending: make([]Request, 0, capacity)}
}

// Push enqueues a request, servicing one request first if the window is
// full. It returns the latency of any serviced request (0 if none).
func (w *Window) Push(r Request) float64 {
	var lat float64
	if len(w.pending) == w.cap {
		lat = w.serviceOne()
	}
	w.pending = append(w.pending, r)
	return lat
}

// Flush services all buffered requests and returns their total latency.
func (w *Window) Flush() float64 {
	var total float64
	for len(w.pending) > 0 {
		total += w.serviceOne()
	}
	return total
}

// Pending returns the number of buffered requests.
func (w *Window) Pending() int { return len(w.pending) }

// serviceOne issues the first-ready request, falling back to the oldest.
func (w *Window) serviceOne() float64 {
	pick := 0
	for i, r := range w.pending {
		bi, row := w.dev.locate(r.Addr)
		if w.dev.banks[bi].openRow == row {
			pick = i
			break
		}
	}
	r := w.pending[pick]
	w.pending = append(w.pending[:pick], w.pending[pick+1:]...)
	lat := w.dev.AccessRange(r.Addr, r.Size, r.Write)
	w.ServicedNs += lat
	return lat
}
