// Package energy implements the paper's custom energy-modeling framework
// (§6, Table 4). Components report raw event counts (row activations, bits
// moved, flit bit-millimetres, busy times); this package converts them to
// joules and aggregates them into the four categories of the paper's
// Fig. 8 energy breakdown: DRAM dynamic, DRAM static, cores, SerDes+NOC.
package energy

import "fmt"

// Params holds the power and energy constants of Table 4 plus the derived
// modeling knobs. All powers are watts, energies joules.
type Params struct {
	CPUCoreW      float64 // per CPU core (2.1 W)
	NMPCoreW      float64 // per NMP-baseline core (312 mW)
	MondrianCoreW float64 // per Mondrian core (180 mW)

	LLCAccessJ float64 // per LLC access (0.09 nJ)
	LLCLeakW   float64 // LLC leakage (110 mW)

	NoCPerBitMMJ float64 // NoC dynamic energy (0.04 pJ/bit/mm)
	NoCLeakW     float64 // NoC leakage per cube mesh (30 mW)

	HMCBackgroundW float64 // per 8 GB cube (980 mW)
	ActivationJ    float64 // per row activation (0.65 nJ)
	AccessJPerBit  float64 // DRAM access energy (2 pJ/bit)

	SerDesIdleJPerBit float64 // idle links burn 1 pJ per bit-time of capacity
	SerDesBusyJPerBit float64 // transferring costs 3 pJ/bit

	// IdleCoreFraction is the fraction of peak power a core draws while
	// stalled at a phase barrier (clock gating is imperfect).
	IdleCoreFraction float64
}

// DefaultParams returns Table 4 of the paper.
func DefaultParams() Params {
	return Params{
		CPUCoreW:          2.1,
		NMPCoreW:          0.312,
		MondrianCoreW:     0.180,
		LLCAccessJ:        0.09e-9,
		LLCLeakW:          0.110,
		NoCPerBitMMJ:      0.04e-12,
		NoCLeakW:          0.030,
		HMCBackgroundW:    0.980,
		ActivationJ:       0.65e-9,
		AccessJPerBit:     2e-12,
		SerDesIdleJPerBit: 1e-12,
		SerDesBusyJPerBit: 3e-12,
		IdleCoreFraction:  0.3,
	}
}

// Breakdown is an energy account in joules, split the way Fig. 8 reports
// it. LLC energy is tracked separately but reported inside Cores (the
// cache hierarchy is part of the processor die).
type Breakdown struct {
	DRAMDynamic float64 // activations + access energy
	DRAMStatic  float64 // HMC background power × time
	Cores       float64 // core busy+idle energy
	LLC         float64 // LLC access + leakage (CPU system only)
	Network     float64 // SerDes + NoC, dynamic + idle/leakage
}

// Total returns the summed energy in joules.
func (b Breakdown) Total() float64 {
	return b.DRAMDynamic + b.DRAMStatic + b.Cores + b.LLC + b.Network
}

// Add accumulates another breakdown into this one.
func (b *Breakdown) Add(o Breakdown) {
	b.DRAMDynamic += o.DRAMDynamic
	b.DRAMStatic += o.DRAMStatic
	b.Cores += o.Cores
	b.LLC += o.LLC
	b.Network += o.Network
}

// Scale returns the breakdown with every component multiplied by f.
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{
		DRAMDynamic: b.DRAMDynamic * f,
		DRAMStatic:  b.DRAMStatic * f,
		Cores:       b.Cores * f,
		LLC:         b.LLC * f,
		Network:     b.Network * f,
	}
}

// Fractions returns the Fig. 8 category fractions in order
// [DRAM dyn, DRAM static, cores (incl. LLC), SerDes+NOC]. A zero-total
// breakdown yields all zeros.
func (b Breakdown) Fractions() [4]float64 {
	t := b.Total()
	if t == 0 {
		return [4]float64{}
	}
	return [4]float64{
		b.DRAMDynamic / t,
		b.DRAMStatic / t,
		(b.Cores + b.LLC) / t,
		b.Network / t,
	}
}

// String renders the breakdown for logs.
func (b Breakdown) String() string {
	f := b.Fractions()
	return fmt.Sprintf("total %.3g J (DRAMdyn %.0f%%, DRAMstatic %.0f%%, cores %.0f%%, net %.0f%%)",
		b.Total(), f[0]*100, f[1]*100, f[2]*100, f[3]*100)
}

// DRAMDynamicJ converts raw DRAM events into dynamic energy.
func (p Params) DRAMDynamicJ(activations, bytesMoved uint64) float64 {
	return float64(activations)*p.ActivationJ + float64(bytesMoved*8)*p.AccessJPerBit
}

// DRAMStaticJ charges HMC background power for the given cubes and time.
func (p Params) DRAMStaticJ(cubes int, seconds float64) float64 {
	return float64(cubes) * p.HMCBackgroundW * seconds
}

// CoreJ charges one core running busySeconds at peak power within a phase
// of totalSeconds; the remainder is idle at IdleCoreFraction of peak.
func (p Params) CoreJ(peakW, busySeconds, totalSeconds float64) float64 {
	if busySeconds > totalSeconds {
		busySeconds = totalSeconds
	}
	return peakW*busySeconds + p.IdleCoreFraction*peakW*(totalSeconds-busySeconds)
}

// CoreUtilJ is CoreJ with utilization-scaled busy power: the paper
// estimates core power "based on the core's peak power and its utilization
// statistics" (§6). utilization is achieved IPC over issue width; a fully
// stalled core draws the idle fraction of peak, a saturated one full peak.
func (p Params) CoreUtilJ(peakW, busySeconds, totalSeconds, utilization float64) float64 {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	busyW := peakW * (p.IdleCoreFraction + (1-p.IdleCoreFraction)*utilization)
	return busyW*minF(busySeconds, totalSeconds) +
		p.IdleCoreFraction*peakW*maxF(0, totalSeconds-busySeconds)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// LLCJ charges LLC accesses plus leakage over the phase.
func (p Params) LLCJ(accesses uint64, seconds float64) float64 {
	return float64(accesses)*p.LLCAccessJ + p.LLCLeakW*seconds
}

// NoCJ charges mesh dynamic energy (bit-millimetres) plus leakage for the
// given number of cube meshes over the phase.
func (p Params) NoCJ(bitMM float64, meshes int, seconds float64) float64 {
	return bitMM*p.NoCPerBitMMJ + float64(meshes)*p.NoCLeakW*seconds
}

// SerDesJ charges one link: busy bits at the busy energy and the remaining
// capacity-time at the idle energy.
func (p Params) SerDesJ(bytesMoved uint64, bandwidthGbps, busyNs, totalNs float64) float64 {
	busy := float64(bytesMoved*8) * p.SerDesBusyJPerBit
	idleNs := totalNs - busyNs
	if idleNs < 0 {
		idleNs = 0
	}
	// Idle bits = link capacity (bits/ns) × idle time (ns).
	idleBits := bandwidthGbps * idleNs // Gb/s × ns = bits
	return busy + idleBits*p.SerDesIdleJPerBit
}
