package energy

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))+1e-18
}

func TestDefaultParamsMatchTable4(t *testing.T) {
	p := DefaultParams()
	if p.CPUCoreW != 2.1 || p.NMPCoreW != 0.312 || p.MondrianCoreW != 0.180 {
		t.Fatalf("core powers: %+v", p)
	}
	if p.ActivationJ != 0.65e-9 {
		t.Fatalf("activation energy = %v, want 0.65 nJ", p.ActivationJ)
	}
	if p.AccessJPerBit != 2e-12 {
		t.Fatalf("access energy = %v, want 2 pJ/bit", p.AccessJPerBit)
	}
	if p.SerDesBusyJPerBit != 3e-12 || p.SerDesIdleJPerBit != 1e-12 {
		t.Fatalf("serdes energies: %+v", p)
	}
	if p.HMCBackgroundW != 0.980 || p.LLCLeakW != 0.110 || p.NoCLeakW != 0.030 {
		t.Fatalf("static powers: %+v", p)
	}
	if p.LLCAccessJ != 0.09e-9 || p.NoCPerBitMMJ != 0.04e-12 {
		t.Fatalf("per-event energies: %+v", p)
	}
}

func TestDRAMDynamicJ(t *testing.T) {
	p := DefaultParams()
	// One activation plus one full 256 B row read.
	got := p.DRAMDynamicJ(1, 256)
	want := 0.65e-9 + 256*8*2e-12
	if !almost(got, want) {
		t.Fatalf("DRAMDynamicJ = %v, want %v", got, want)
	}
	// Activation share for a whole-row access should be modest (~14% in
	// the paper's CACTI-3DD estimate; our Table 4 constants land nearby).
	frac := 0.65e-9 / want
	if frac < 0.10 || frac > 0.25 {
		t.Fatalf("activation fraction for full row = %.2f, want ~0.14", frac)
	}
	// For an 8 B access the activation must dominate (~80% in the paper).
	small := p.DRAMDynamicJ(1, 8)
	frac8 := 0.65e-9 / small
	if frac8 < 0.7 {
		t.Fatalf("activation fraction for 8B access = %.2f, want > 0.7", frac8)
	}
}

func TestDRAMStaticJ(t *testing.T) {
	p := DefaultParams()
	if got := p.DRAMStaticJ(4, 2.0); !almost(got, 4*0.980*2) {
		t.Fatalf("DRAMStaticJ = %v", got)
	}
}

func TestCoreJBusyIdleSplit(t *testing.T) {
	p := DefaultParams()
	full := p.CoreJ(2.0, 1.0, 1.0)
	if !almost(full, 2.0) {
		t.Fatalf("fully busy core = %v, want 2.0", full)
	}
	idle := p.CoreJ(2.0, 0.0, 1.0)
	if !almost(idle, 2.0*p.IdleCoreFraction) {
		t.Fatalf("idle core = %v", idle)
	}
	half := p.CoreJ(2.0, 0.5, 1.0)
	if !(half > idle && half < full) {
		t.Fatalf("half-busy core %v not between %v and %v", half, idle, full)
	}
	// Busy time is clamped to the phase duration.
	if got := p.CoreJ(2.0, 5.0, 1.0); !almost(got, 2.0) {
		t.Fatalf("clamped CoreJ = %v, want 2.0", got)
	}
}

func TestSerDesJ(t *testing.T) {
	p := DefaultParams()
	// Fully busy link: pure busy energy.
	busy := p.SerDesJ(1000, 160, 50, 50)
	if !almost(busy, 1000*8*3e-12) {
		t.Fatalf("busy SerDesJ = %v", busy)
	}
	// Fully idle link for 100 ns at 160 Gb/s: 16000 idle bits at 1 pJ.
	idle := p.SerDesJ(0, 160, 0, 100)
	if !almost(idle, 16000*1e-12) {
		t.Fatalf("idle SerDesJ = %v", idle)
	}
	// Busy time exceeding total must not produce negative idle energy.
	if got := p.SerDesJ(10, 160, 100, 50); got < 0 {
		t.Fatalf("SerDesJ went negative: %v", got)
	}
}

func TestLLCAndNoC(t *testing.T) {
	p := DefaultParams()
	if got := p.LLCJ(1000, 0.5); !almost(got, 1000*0.09e-9+0.110*0.5) {
		t.Fatalf("LLCJ = %v", got)
	}
	if got := p.NoCJ(1e6, 4, 0.25); !almost(got, 1e6*0.04e-12+4*0.030*0.25) {
		t.Fatalf("NoCJ = %v", got)
	}
}

func TestBreakdownTotalAddScale(t *testing.T) {
	b := Breakdown{DRAMDynamic: 1, DRAMStatic: 2, Cores: 3, LLC: 4, Network: 5}
	if b.Total() != 15 {
		t.Fatalf("Total = %v, want 15", b.Total())
	}
	var acc Breakdown
	acc.Add(b)
	acc.Add(b)
	if acc.Total() != 30 {
		t.Fatalf("accumulated total = %v, want 30", acc.Total())
	}
	if s := b.Scale(2); s.Total() != 30 || s.LLC != 8 {
		t.Fatalf("Scale: %+v", s)
	}
}

func TestBreakdownFractions(t *testing.T) {
	b := Breakdown{DRAMDynamic: 10, DRAMStatic: 20, Cores: 25, LLC: 5, Network: 40}
	f := b.Fractions()
	wants := [4]float64{0.10, 0.20, 0.30, 0.40}
	for i := range f {
		if !almost(f[i], wants[i]) {
			t.Fatalf("Fractions[%d] = %v, want %v", i, f[i], wants[i])
		}
	}
	var zero Breakdown
	if zero.Fractions() != [4]float64{} {
		t.Fatal("zero breakdown should have zero fractions")
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{DRAMDynamic: 1, DRAMStatic: 1, Cores: 1, Network: 1}
	s := b.String()
	if !strings.Contains(s, "25%") {
		t.Fatalf("String() = %q", s)
	}
}

// Property: every energy function is non-negative and monotone in its
// activity inputs.
func TestEnergyMonotoneProperty(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(23))
	f := func(acts, bytes uint32, extra uint16) bool {
		a, b2 := uint64(acts), uint64(bytes)
		base := p.DRAMDynamicJ(a, b2)
		more := p.DRAMDynamicJ(a+uint64(extra), b2+uint64(extra))
		if base < 0 || more < base {
			return false
		}
		c := p.CoreJ(1.0, float64(acts%1000)/1000, 1.0)
		return c >= 0 && c <= 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: Fractions always sums to 1 for non-zero breakdowns.
func TestFractionsSumProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	f := func(a, b, c, d, e uint16) bool {
		br := Breakdown{float64(a) + 1, float64(b), float64(c), float64(d), float64(e)}
		fr := br.Fractions()
		sum := fr[0] + fr[1] + fr[2] + fr[3]
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
