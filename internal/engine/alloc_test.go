package engine

import (
	"testing"

	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// The bulk-access work removed every steady-state allocation from the
// per-access hot paths (cache results, block-split closures, trace
// events). These tests pin that property so it cannot regress silently.

// sweepUnit reads a region tuple by tuple through the scalar accessor —
// the per-access hot path shared by every operator reference loop.
func sweepUnit(u *Unit, r *Region, n int) {
	for i := 0; i < n; i++ {
		u.ReadBytes(r.Addr+int64(i)*tuple.Size, tuple.Size)
	}
}

func TestUnitAccessZeroAllocSteadyState(t *testing.T) {
	const n = 4096 // 64 KB: misses in the L1, TLB-resident
	cases := map[string]Config{
		"cpu":      cpuConfig(),
		"nmp":      nmpConfig(false),
		"mondrian": mondrianConfig(),
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			e := mustEngine(t, cfg)
			r, err := e.Place(0, make([]tuple.Tuple, n))
			if err != nil {
				t.Fatal(err)
			}
			u := e.Units()[0]
			sweepUnit(u, r, n) // warm caches, TLBs and internal buffers
			allocs := testing.AllocsPerRun(5, func() { sweepUnit(u, r, n) })
			if allocs != 0 {
				t.Errorf("Unit.access allocates %.1f times per %d-tuple sweep in steady state", allocs, n)
			}
		})
	}
}

func TestUnitBulkAccessZeroAllocSteadyState(t *testing.T) {
	const n = 4096
	for name, cfg := range map[string]Config{"nmp": nmpConfig(false), "mondrian": mondrianConfig()} {
		t.Run(name, func(t *testing.T) {
			e := mustEngine(t, cfg)
			r, err := e.Place(0, make([]tuple.Tuple, n))
			if err != nil {
				t.Fatal(err)
			}
			u := e.Units()[0]
			run := func() { u.ReadRunBytes(r.Addr, tuple.Size, n) }
			run()
			if allocs := testing.AllocsPerRun(5, run); allocs != 0 {
				t.Errorf("ReadRunBytes allocates %.1f times per run in steady state", allocs)
			}
		})
	}
}

// TestObsDisabledZeroAllocSteadyState pins the ISSUE-5 acceptance bound:
// with observability disabled (nil registry — the default), the phase
// hooks plus the bulk hot loop allocate nothing. The hooks' entire
// disabled cost is one nil-check each.
func TestObsDisabledZeroAllocSteadyState(t *testing.T) {
	const n = 4096
	for name, cfg := range map[string]Config{"nmp": nmpConfig(false), "mondrian": mondrianConfig()} {
		t.Run(name, func(t *testing.T) {
			e := mustEngine(t, cfg)
			r, err := e.Place(0, make([]tuple.Tuple, n))
			if err != nil {
				t.Fatal(err)
			}
			u := e.Units()[0]
			run := func() {
				e.BeginPhase("probe")
				u.ReadRunBytes(r.Addr, tuple.Size, n)
				e.EndPhase()
			}
			run()
			if allocs := testing.AllocsPerRun(5, run); allocs != 0 {
				t.Errorf("disabled-obs phase hooks + bulk sweep allocate %.1f times per run", allocs)
			}
		})
	}
}

// nullTracer counts events without storing them, so the measurement sees
// only the engine's own buffering allocations.
type nullTracer struct{ n int }

func (t *nullTracer) Access(unit int, kind AccessKind, addr int64, size int, write bool) { t.n++ }

func TestTraceBufferZeroAllocSteadyState(t *testing.T) {
	const n = 1024
	e := mustEngine(t, nmpConfig(false))
	e.SetTracer(&nullTracer{})
	r, err := e.Place(0, make([]tuple.Tuple, n))
	if err != nil {
		t.Fatal(err)
	}
	u := e.Units()[0]
	sweep := func() {
		e.beginTraceBuffer()
		sweepUnit(u, r, n)
		e.flushTraceBuffer()
	}
	sweep() // grow the per-unit buffers to steady state
	if allocs := testing.AllocsPerRun(5, sweep); allocs != 0 {
		t.Errorf("trace buffering allocates %.1f times per %d-event sweep in steady state", allocs, n)
	}
}
