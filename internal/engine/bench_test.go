package engine

import (
	"testing"

	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// Micro-benchmarks of the engine's shuffle send paths (the simulator's
// hottest loop during partitioning).

func benchEngine(b *testing.B, cfg Config) *Engine {
	b.Helper()
	e, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func BenchmarkSendPermutable(b *testing.B) {
	cfg := Config{
		Arch: Mondrian, Core: mondrianConfigForBench().Core, Permutable: true, UseStreams: true,
		Cubes: 2, VaultsPer: 4, Topology: mondrianConfigForBench().Topology,
		Geometry: mondrianConfigForBench().Geometry, Timing: mondrianConfigForBench().Timing,
		ObjectSize: tuple.Size, BarrierNs: 1000,
	}
	e := benchEngine(b, cfg)
	const regionTuples = 1 << 20 // fixed destination regions, re-armed when full
	dests, err := e.MallocPermutable(regionTuples)
	if err != nil {
		b.Fatal(err)
	}
	perSource := make([][]int64, len(e.Units()))
	for i := range perSource {
		perSource[i] = make([]int64, e.NumVaults())
	}
	for j := range perSource[0] {
		perSource[0][j] = regionTuples
	}
	rearm := func() {
		for _, d := range dests {
			d.Reset()
		}
		if err := e.ShuffleBegin(dests, perSource); err != nil {
			b.Fatal(err)
		}
	}
	rearm()
	u := e.UnitForVault(0)
	e.BeginStep(StepProfile{Name: "bench"})
	b.ResetTimer()
	wrap := regionTuples * e.NumVaults() / 2
	for i := 0; i < b.N; i++ {
		if i%wrap == 0 && i > 0 {
			b.StopTimer()
			rearm()
			b.StartTimer()
		}
		if err := u.SendPermutable(dests[i%e.NumVaults()], tuple.Tuple{Key: tuple.Key(i)}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	e.EndStep()
}

func BenchmarkSendAt(b *testing.B) {
	cfg := nmpConfigForBench()
	e := benchEngine(b, cfg)
	const regionTuples = 1 << 20
	dst, err := e.AllocOut(1, regionTuples)
	if err != nil {
		b.Fatal(err)
	}
	u := e.UnitForVault(0)
	e.BeginStep(StepProfile{Name: "bench"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.SendAt(dst, i%regionTuples, tuple.Tuple{Key: tuple.Key(i)})
	}
	b.StopTimer()
	e.EndStep()
}

// Bench config helpers (mirrors the test configs, sized for b.N writes).
func mondrianConfigForBench() Config {
	c := mondrianConfig()
	c.Geometry.CapacityBytes = 256 << 20
	return c
}

func nmpConfigForBench() Config {
	c := nmpConfig(false)
	c.Geometry.CapacityBytes = 256 << 20
	return c
}
