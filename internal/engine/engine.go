// Package engine implements the Mondrian Data Engine's execution model —
// the paper's primary contribution (§5). An Engine instance couples the
// simulated memory fabric (HMC cubes, NoC, SerDes) with one compute unit
// per vault (NMP/Mondrian) or a cache-backed multicore CPU, and exposes
// the programming model of Fig. 4:
//
//   - MallocPermutable / ShuffleBegin / ShuffleEnd toggle hardware data
//     permutability during the partitioning phase (§5.3, §5.4);
//   - object buffers keep data objects within single memory messages;
//   - stream buffers feed Mondrian units with binding prefetches (§5.2).
//
// Operators execute *functionally* on real tuples through Unit accessors;
// every access is routed through the architecture's memory path (caches,
// mesh, SerDes, DRAM row buffers) so that timing and energy emerge from
// the same models the paper's arguments are built on. Work is divided
// into steps (histogram build, data distribution, sort passes, ...); each
// step's runtime is the barrier-synchronized maximum over compute-unit
// times and memory/link busy times.
package engine

import (
	"fmt"
	"time"

	"github.com/ecocloud-go/mondrian/internal/cache"
	"github.com/ecocloud-go/mondrian/internal/cores"
	"github.com/ecocloud-go/mondrian/internal/dram"
	"github.com/ecocloud-go/mondrian/internal/hmc"
	"github.com/ecocloud-go/mondrian/internal/noc"
	"github.com/ecocloud-go/mondrian/internal/obs"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// Arch identifies the three evaluated architectures.
type Arch int

const (
	// CPU is the CPU-centric baseline: 16 OoO cores, cache hierarchy,
	// passive cubes behind a star SerDes topology.
	CPU Arch = iota
	// NMP is the baseline near-memory system: one OoO core per vault.
	NMP
	// Mondrian is the co-designed system: in-order SIMD units with
	// stream buffers and permutable-write vault controllers.
	Mondrian
)

// String implements fmt.Stringer.
func (a Arch) String() string {
	switch a {
	case CPU:
		return "CPU"
	case NMP:
		return "NMP"
	case Mondrian:
		return "Mondrian"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// Config assembles one evaluated system (paper Table 3).
type Config struct {
	// Arch selects one of the three canonical compositions (archRows in
	// spec.go). Ignored when Spec is set.
	Arch Arch
	// Spec, when non-nil, declares the system composition directly —
	// the extension point for variants the Arch shorthand cannot
	// express (see SystemSpec).
	Spec       *SystemSpec
	Core       cores.Model
	CPUCores   int  // host-core compositions only
	Permutable bool // vault controllers honor permutable stores
	UseStreams bool // compute units read via stream buffers
	// StreamBuffers sizes each unit's stream-buffer set (0 selects the
	// architectural default, hmc.NumStreamBuffers).
	StreamBuffers int
	Cubes         int
	VaultsPer     int
	Topology      noc.Topology
	Geometry      dram.Geometry
	Timing        dram.Timing
	ObjectSize    int // permutability granularity (tuple size by default)
	L1            cache.Config
	LLC           cache.Config // CPU only
	// BarrierNs is the fixed cost of one all-to-all MSI notification
	// (ShuffleBegin/ShuffleEnd synchronization, §5.4).
	BarrierNs float64
	// Parallelism bounds the host worker pool that executes independent
	// per-vault work (0 = GOMAXPROCS, 1 = serial). It affects wall-clock
	// time only: simulated results are bit-identical at every setting.
	// Ignored by the CPU architecture, whose cores share the LLC and
	// chip mesh and therefore must be evaluated in order.
	Parallelism int
	// NoBulk disables the batched run-based access fast path: operators
	// fall back to their per-tuple reference loops and the run accessors
	// degrade to per-element accesses. Simulated results are byte-identical
	// either way (the differential tests assert it); only host wall-clock
	// time changes. Intended for debugging and the differential suite.
	NoBulk bool
	// Obs, when non-nil, enables the observability layer: phase tracking
	// (BeginPhase/EndPhase), exchange summaries, and post-run metric
	// harvesting via CollectObs/BuildSpans. The metrics are collected from
	// deterministic simulation state at serial points, so they are
	// byte-identical at every Parallelism. nil (the default) is the
	// near-zero-cost disabled path.
	Obs *obs.Registry
	// SkewAware enables deterministic work stealing in the host worker
	// pool: weighted parallel sections (ForEachVaultWeighted /
	// ForEachTaskWeighted) dispatch tasks heaviest-first (LPT order), so
	// idle workers drain a straggler vault's queue instead of idling
	// behind it. The dispatch permutation is a pure function of the task
	// weights — independent of worker count — and parallel sections touch
	// only index-owned state, so simulated results stay byte-identical to
	// a skew-unaware run; only host wall-clock time and the skew_* obs
	// metrics change. Ignored on shared-unit (host-core) specs, whose
	// accesses are order-dependent.
	SkewAware bool
	// Columnar enables the structure-of-arrays host kernels: operators
	// run their hot inner loops over dense key/value columns
	// (tuple.Columns) fed from per-unit arenas, with regions keeping a
	// lazily built key-column mirror. Like NoBulk and SkewAware this is
	// a host-execution choice only — every simulated access is still
	// charged against the AoS tuple addresses, so simulated results are
	// byte-identical either way (the differential suite asserts it).
	// Columnar implies the bulk path; it is ignored when NoBulk is set.
	Columnar bool
}

// Validate checks internal consistency, including that the resolved
// system spec names a registered memory path — a mis-declared spec is an
// error here, never a panic mid-run.
func (c Config) Validate() error {
	sp, err := c.resolveSpec()
	if err != nil {
		return err
	}
	if c.Cubes <= 0 || c.VaultsPer <= 0 {
		return fmt.Errorf("engine: need cubes and vaults, got %d×%d", c.Cubes, c.VaultsPer)
	}
	if sp.HostCores && c.CPUCores <= 0 {
		return fmt.Errorf("engine: host-core systems (the CPU architecture) need CPUCores > 0")
	}
	if c.ObjectSize <= 0 || c.ObjectSize > hmc.ObjectBufferBytes {
		return fmt.Errorf("engine: object size %d outside (0,%d]", c.ObjectSize, hmc.ObjectBufferBytes)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("engine: negative Parallelism %d (want 0 for GOMAXPROCS or a positive worker count)", c.Parallelism)
	}
	if c.BarrierNs < 0 {
		return fmt.Errorf("engine: negative BarrierNs %v", c.BarrierNs)
	}
	if c.StreamBuffers < 0 {
		return fmt.Errorf("engine: negative StreamBuffers %d (want 0 for the architectural default)", c.StreamBuffers)
	}
	return nil
}

// Region is a contiguous tuple array resident in one vault. Tuples holds
// the functional contents; Addr locates it in the simulated address space.
type Region struct {
	Vault  *hmc.Vault
	Addr   int64
	Tuples []tuple.Tuple
	cap    int

	// keys is the lazily built key-column mirror used by the columnar
	// host kernels (Config.Columnar): the same tuples, key half only,
	// as one dense array. It is pure host-side representation — the
	// simulated address space holds only the AoS Tuples — and is
	// invalidated by every mutation of Tuples (keysOK false), then
	// rebuilt on demand into the same backing slab.
	keys   []tuple.Key
	keysOK bool
}

// Cap returns the region's capacity in tuples.
func (r *Region) Cap() int { return r.cap }

// Len returns the region's current tuple count.
func (r *Region) Len() int { return len(r.Tuples) }

// EndAddr returns the first address past the region's capacity.
func (r *Region) EndAddr() int64 { return r.Addr + int64(r.cap)*tuple.Size }

// addrOf returns the address of tuple idx.
func (r *Region) addrOf(idx int) int64 { return r.Addr + int64(idx)*tuple.Size }

// View returns a read-only sub-region covering tuples [start, end) of r.
// Views share r's backing storage and address range; they exist so merge
// passes can tie individual sorted runs to stream buffers.
func (r *Region) View(start, end int) *Region {
	if start < 0 || end > len(r.Tuples) || start > end {
		panic(fmt.Sprintf("engine: view [%d,%d) of region with %d tuples", start, end, len(r.Tuples)))
	}
	v := &Region{
		Vault:  r.Vault,
		Addr:   r.addrOf(start),
		Tuples: r.Tuples[start:end:end],
		cap:    end - start,
	}
	if r.keysOK && len(r.keys) == len(r.Tuples) {
		// The parent's mirror covers the view's tuples; share it so the
		// columnar kernels need no rebuild per view.
		v.keys = r.keys[start:end:end]
		v.keysOK = true
	}
	return v
}

// Reset empties the region (its capacity and address are unchanged), so a
// scratch region can be reused across merge passes.
func (r *Region) Reset() {
	r.Tuples = r.Tuples[:0]
	r.keysOK = false
}

// KeyColumn returns the region's dense key-column mirror, rebuilding it
// from Tuples if a mutation invalidated it. The returned slice aliases
// the mirror — callers must treat it as read-only and must not hold it
// across region mutations.
func (r *Region) KeyColumn() []tuple.Key {
	if !r.keysOK || len(r.keys) != len(r.Tuples) {
		r.keys = tuple.ExtractKeys(r.keys, r.Tuples)
		r.keysOK = true
	}
	return r.keys
}

// MarkMutated invalidates the key-column mirror. The engine's own
// accessors call it automatically; it exists for the few operator code
// paths that mutate Tuples directly (in-place sorts, slab re-slicing)
// after charging the traffic through raw byte accessors.
func (r *Region) MarkMutated() { r.keysOK = false }

// AccessKind classifies traced memory accesses.
type AccessKind int

// The traced access classes.
const (
	// TraceDemand is a compute unit's demand load/store.
	TraceDemand AccessKind = iota
	// TraceShuffle is a partitioning-phase store arriving at its
	// destination vault at its software-computed address.
	TraceShuffle
	// TracePermuted is a permutable store at the address the vault
	// controller chose.
	TracePermuted
)

// Tracer observes the engine's memory accesses (see internal/trace).
type Tracer interface {
	Access(unit int, kind AccessKind, addr int64, size int, write bool)
}

// RunTracer is an optional Tracer extension for run-length-encoded
// observation: one AccessRun call stands for count accesses of size bytes
// at addr, addr+stride, addr+2·stride, … . Tracers that do not implement
// it receive the expanded per-access calls instead, so either way the
// observed access stream is identical.
type RunTracer interface {
	Tracer
	AccessRun(unit int, kind AccessKind, addr int64, size, stride, count int, write bool)
}

// Engine is one configured system instance.
type Engine struct {
	cfg    Config
	spec   SystemSpec // resolved composition (spec.go)
	path   memPath    // the units' memory-path implementation
	Sys    *hmc.System
	llc    *cache.Cache // shared LLC (host-core specs only)
	mesh   *noc.Mesh    // host-side tile mesh (host-core specs only)
	tracer Tracer

	// Shift/mask form of the block-interleaved NUCA bank hash
	// (addr/blockBytes mod tiles), valid when both are powers of two;
	// nucaShift==0 means "use the divide path".
	nucaShift uint
	nucaMask  int64

	units []*Unit

	// Step state.
	inStep  bool
	profile StepProfile
	snap    snapshot

	// Accumulated run accounting.
	steps      []StepTiming
	totalNs    float64
	barrierCnt int

	// Observability state (obs.go); populated only when cfg.Obs != nil.
	phaseOpen   bool
	phasePrefix string
	curPhase    PhaseTiming
	phaseSnap   obsTotals
	phaseWall   time.Time
	phaseSeen   map[string]int
	phases      []PhaseTiming
	stepUnits   [][]float64 // per-step per-unit TimeNs, aligned with steps
	exchanges   []exchangeRecord

	// Skew-aware accounting (obs.go / parallel.go); all updated at serial
	// points, so deterministic at every parallelism level.
	stolenTasks uint64
	splitKeys   uint64
	skewStats   []skewStat
}

// New builds an engine from a configuration: the system spec (Config.Spec,
// or the canonical composition of Config.Arch) is resolved once, and the
// units are assembled from it declaratively — each feature flag adds one
// piece of per-unit hardware, with no per-architecture construction code.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec, err := cfg.resolveSpec()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:  cfg,
		spec: spec,
		path: memPaths[spec.Path],
		Sys:  hmc.NewSystem(cfg.Cubes, cfg.VaultsPer, cfg.Topology, cfg.Geometry, cfg.Timing),
	}
	if spec.SharedLLC {
		e.llc = cache.New(cfg.LLC)
	}
	if spec.HostCores {
		e.mesh = noc.NewMesh(4, 4) // 16-tile host chip (Fig. 5)
		if bb, tiles := cfg.L1.BlockBytes, e.mesh.Tiles(); bb > 0 && bb&(bb-1) == 0 && tiles&(tiles-1) == 0 {
			for b := bb; b > 1; b >>= 1 {
				e.nucaShift++
			}
			e.nucaMask = int64(tiles - 1)
		}
	}
	n := cfg.CPUCores
	if !spec.HostCores {
		n = e.Sys.NumVaults()
	}
	for i := 0; i < n; i++ {
		u := &Unit{ID: i, engine: e, path: e.path}
		if spec.HostCores {
			u.tile = i % e.mesh.Tiles()
		} else {
			u.Vault = e.Sys.Vault(i)
		}
		if spec.UnitL1 {
			u.L1 = cache.New(cfg.L1)
		}
		if spec.TLB {
			// 64-entry L1 TLB and 1024-entry L2 TLB over 4 KB pages
			// (Cortex-A57-class translation hardware).
			u.tlbL1 = cache.New(cache.Config{SizeBytes: 64 * pageBytes, Ways: 4, BlockBytes: pageBytes})
			u.tlbL2 = cache.New(cache.Config{SizeBytes: 1024 * pageBytes, Ways: 8, BlockBytes: pageBytes})
		}
		if spec.ObjectBuf {
			b, err := hmc.NewObjectBuffer(cfg.ObjectSize)
			if err != nil {
				return nil, err
			}
			u.ObjBuf = b
		}
		if spec.StreamBufs {
			u.Streams = hmc.NewStreamBufferSetN(u.Vault, cfg.StreamBuffers)
		}
		e.units = append(e.units, u)
	}
	return e, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Columnar reports whether the structure-of-arrays host kernels are
// enabled (Config.Columnar, which NoBulk overrides — see Unit.Columnar).
func (e *Engine) Columnar() bool { return e.cfg.Columnar && !e.cfg.NoBulk }

// Units returns the compute units (16 CPU cores or one per vault).
func (e *Engine) Units() []*Unit { return e.units }

// NumVaults returns the vault count of the memory fabric.
func (e *Engine) NumVaults() int { return e.Sys.NumVaults() }

// Place loads tuples into a vault as pre-existing data. Placement models
// the initial dataset residency and is not charged to any phase (the
// paper measures operators on memory-resident data).
func (e *Engine) Place(vaultID int, ts []tuple.Tuple) (*Region, error) {
	return e.allocRegion(vaultID, ts, len(ts))
}

// AllocOut reserves an (initially empty) output region of capTuples in the
// given vault — e.g. the CPU-provisioned destination buffers of the
// partitioning phase (§5.3).
func (e *Engine) AllocOut(vaultID, capTuples int) (*Region, error) {
	return e.allocRegion(vaultID, nil, capTuples)
}

func (e *Engine) allocRegion(vaultID int, ts []tuple.Tuple, capTuples int) (*Region, error) {
	v := e.Sys.Vault(vaultID)
	if capTuples < len(ts) {
		capTuples = len(ts)
	}
	n := int64(capTuples) * tuple.Size
	if n == 0 {
		n = tuple.Size // keep zero-capacity regions addressable
	}
	addr, err := v.Alloc(n, int64(e.cfg.Geometry.RowBytes))
	if err != nil {
		return nil, err
	}
	r := &Region{Vault: v, Addr: addr, cap: capTuples}
	if ts != nil {
		r.Tuples = append(r.Tuples, ts...)
		if e.cfg.Columnar {
			// Build the key-column mirror at placement: residency setup
			// is off the operators' clock, mirroring a columnar store
			// that lays out columns at load time.
			r.KeyColumn()
		}
	}
	return r, nil
}

// UnitForVault returns the compute unit co-located with vault v
// (vault-resident specs — the NMP and Mondrian architectures).
func (e *Engine) UnitForVault(v int) *Unit {
	if e.spec.HostCores {
		panic("engine: host cores are not vault-resident")
	}
	return e.units[v]
}

// SetTracer installs (or, with nil, removes) a memory-access observer.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// TotalNs returns the accumulated runtime of all completed steps.
func (e *Engine) TotalNs() float64 { return e.totalNs }

// Steps returns the timing of every completed step.
func (e *Engine) Steps() []StepTiming { return e.steps }

// LLC returns the shared last-level cache (nil on specs without one).
func (e *Engine) LLC() *cache.Cache { return e.llc }

// DRAMStats returns cumulative DRAM statistics across all vaults.
func (e *Engine) DRAMStats() dram.Stats { return e.Sys.TotalDRAMStats() }
