package engine

import (
	"testing"

	"github.com/ecocloud-go/mondrian/internal/energy"
	"github.com/ecocloud-go/mondrian/internal/tuple"
	"github.com/ecocloud-go/mondrian/internal/workload"
)

func TestRegionViewAndReset(t *testing.T) {
	e := mustEngine(t, mondrianConfig())
	ts := workload.Sequential("s", 100).Tuples
	r, err := e.Place(0, ts)
	if err != nil {
		t.Fatal(err)
	}
	v := r.View(10, 20)
	if v.Len() != 10 || v.Cap() != 10 {
		t.Fatalf("view len=%d cap=%d", v.Len(), v.Cap())
	}
	if v.Tuples[0] != ts[10] {
		t.Fatalf("view start = %v", v.Tuples[0])
	}
	if v.Addr != r.Addr+10*tuple.Size {
		t.Fatalf("view addr = %#x", v.Addr)
	}
	// Views must not grow into the parent's storage.
	defer func() {
		if recover() == nil {
			t.Fatal("view append past capacity did not panic")
		}
	}()
	u := e.UnitForVault(0)
	e.BeginStep(StepProfile{})
	for i := 0; i < 11; i++ {
		u.AppendLocal(v, tuple.Tuple{})
	}
}

func TestRegionViewBounds(t *testing.T) {
	e := mustEngine(t, mondrianConfig())
	r, _ := e.Place(0, workload.Sequential("s", 10).Tuples)
	for _, fn := range []func(){
		func() { r.View(-1, 5) },
		func() { r.View(0, 11) },
		func() { r.View(7, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad view bounds did not panic")
				}
			}()
			fn()
		}()
	}
	scratch, _ := e.AllocOut(0, 5)
	scratch.Tuples = append(scratch.Tuples, tuple.Tuple{Key: 1})
	scratch.Reset()
	if scratch.Len() != 0 || scratch.Cap() != 5 {
		t.Fatal("Reset changed capacity or kept tuples")
	}
}

func TestRemoteAccessCostsMoreThanLocal(t *testing.T) {
	e := mustEngine(t, mondrianConfig())
	// Local read.
	local, _ := e.Place(0, workload.Sequential("l", 4).Tuples)
	sameCube, _ := e.Place(1, workload.Sequential("s", 4).Tuples)  // vault 1: cube 0
	crossCube, _ := e.Place(5, workload.Sequential("c", 4).Tuples) // vault 5: cube 1
	u := e.UnitForVault(0)

	measure := func(r *Region) float64 {
		e.BeginStep(StepProfile{Name: "m", DepIPC: 1, InstPerAccess: 1})
		u.LoadTuple(r, 0)
		st := e.EndStep()
		return st.MaxUnitNs
	}
	lLocal := measure(local)
	lSame := measure(sameCube)
	lCross := measure(crossCube)
	if !(lLocal < lSame && lSame < lCross) {
		t.Fatalf("latency ordering broken: local %.1f, same-cube %.1f, cross-cube %.1f",
			lLocal, lSame, lCross)
	}
}

func TestStepBytesAndBandwidth(t *testing.T) {
	e := mustEngine(t, mondrianConfig())
	r, _ := e.Place(0, workload.Sequential("s", 1024).Tuples)
	u := e.UnitForVault(0)
	e.BeginStep(StepProfile{Name: "scan", StreamFed: true})
	readers, _ := u.OpenStreams(r)
	for {
		if _, ok := readers[0].Next(); !ok {
			break
		}
	}
	st := e.EndStep()
	if st.StepBytes() != 1024*tuple.Size {
		t.Fatalf("step bytes = %d", st.StepBytes())
	}
	bw := st.BandwidthPerVaultGBs(st.StepBytes(), 1)
	if bw <= 0 || bw > 8.01 {
		t.Fatalf("per-vault bandwidth %.2f outside (0, 8]", bw)
	}
	if zero := (StepTiming{}).BandwidthPerVaultGBs(100, 4); zero != 0 {
		t.Fatal("zero-duration step should report 0 bandwidth")
	}
}

func TestStepsTimeline(t *testing.T) {
	e := mustEngine(t, nmpConfig(false))
	e.BeginStep(StepProfile{Name: "a"})
	e.Units()[0].Charge(1000)
	e.EndStep()
	e.Barrier()
	e.BeginStep(StepProfile{Name: "b"})
	e.Units()[1].Charge(500)
	e.EndStep()
	steps := e.Steps()
	if len(steps) != 3 {
		t.Fatalf("steps = %d", len(steps))
	}
	if steps[0].Name != "a" || steps[1].Name != "barrier" || steps[2].Name != "b" {
		t.Fatalf("timeline = %v %v %v", steps[0].Name, steps[1].Name, steps[2].Name)
	}
	var sum float64
	for _, s := range steps {
		sum += s.Ns
	}
	if sum != e.TotalNs() {
		t.Fatalf("step sum %v != total %v", sum, e.TotalNs())
	}
}

func TestEnergyDeterminism(t *testing.T) {
	run := func() float64 {
		e := mustEngine(t, mondrianConfig())
		r, _ := e.Place(0, workload.Uniform("u", workload.Config{Seed: 2, Tuples: 512}).Tuples)
		u := e.UnitForVault(0)
		e.BeginStep(StepProfile{Name: "s", StreamFed: true})
		readers, _ := u.OpenStreams(r)
		for {
			if _, ok := readers[0].Next(); !ok {
				break
			}
		}
		u.Charge(1000)
		e.EndStep()
		return e.Energy(energy.DefaultParams()).Total()
	}
	if run() != run() {
		t.Fatal("energy not deterministic")
	}
}

func TestChargeNegativePanics(t *testing.T) {
	e := mustEngine(t, nmpConfig(false))
	e.BeginStep(StepProfile{})
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge did not panic")
		}
	}()
	e.Units()[0].Charge(-1)
}

func TestLoadTupleBoundsPanics(t *testing.T) {
	e := mustEngine(t, nmpConfig(false))
	r, _ := e.Place(0, workload.Sequential("s", 4).Tuples)
	e.BeginStep(StepProfile{})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range load did not panic")
		}
	}()
	e.UnitForVault(0).LoadTuple(r, 4)
}

func TestUnitForVaultPanicsOnCPU(t *testing.T) {
	e := mustEngine(t, cpuConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("UnitForVault on CPU did not panic")
		}
	}()
	e.UnitForVault(0)
}

func TestArchString(t *testing.T) {
	if CPU.String() != "CPU" || NMP.String() != "NMP" || Mondrian.String() != "Mondrian" {
		t.Fatal("arch names wrong")
	}
	if Arch(9).String() != "Arch(9)" {
		t.Fatal("fallback arch name wrong")
	}
}

func TestAggIPCReported(t *testing.T) {
	e := mustEngine(t, nmpConfig(false))
	e.BeginStep(StepProfile{Name: "ipc", DepIPC: 1})
	for _, u := range e.Units() {
		u.Charge(1000)
	}
	st := e.EndStep()
	// All units equally busy at DepIPC 1 → aggregate per-unit IPC ≈ 1.
	if st.AggIPC < 0.9 || st.AggIPC > 1.1 {
		t.Fatalf("AggIPC = %v, want ~1", st.AggIPC)
	}
}
