package engine

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/ecocloud-go/mondrian/internal/cache"
	"github.com/ecocloud-go/mondrian/internal/cores"
	"github.com/ecocloud-go/mondrian/internal/dram"
	"github.com/ecocloud-go/mondrian/internal/energy"
	"github.com/ecocloud-go/mondrian/internal/hmc"
	"github.com/ecocloud-go/mondrian/internal/noc"
	"github.com/ecocloud-go/mondrian/internal/tuple"
	"github.com/ecocloud-go/mondrian/internal/workload"
)

func smallGeom() dram.Geometry {
	g := dram.HMCGeometry()
	g.CapacityBytes = 1 << 20
	return g
}

func cpuConfig() Config {
	return Config{
		Arch: CPU, Core: cores.CortexA57(), CPUCores: 4,
		Cubes: 2, VaultsPer: 4, Topology: noc.Star,
		Geometry: smallGeom(), Timing: dram.HMCTiming(),
		ObjectSize: tuple.Size,
		L1:         cache.L1D32K(), LLC: cache.LLC4M(),
		BarrierNs: 1000,
	}
}

func nmpConfig(perm bool) Config {
	return Config{
		Arch: NMP, Core: cores.Krait400(), Permutable: perm,
		Cubes: 2, VaultsPer: 4, Topology: noc.FullyConnected,
		Geometry: smallGeom(), Timing: dram.HMCTiming(),
		ObjectSize: tuple.Size, L1: cache.L1D32K(),
		BarrierNs: 1000,
	}
}

func mondrianConfig() Config {
	return Config{
		Arch: Mondrian, Core: cores.CortexA35Mondrian(), Permutable: true,
		UseStreams: true,
		Cubes:      2, VaultsPer: 4, Topology: noc.FullyConnected,
		Geometry: smallGeom(), Timing: dram.HMCTiming(),
		ObjectSize: tuple.Size,
		BarrierNs:  1000,
	}
}

func mustEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewPerArch(t *testing.T) {
	cpu := mustEngine(t, cpuConfig())
	if len(cpu.Units()) != 4 || cpu.LLC() == nil || cpu.Units()[0].Vault != nil {
		t.Fatal("CPU engine misconfigured")
	}
	nmp := mustEngine(t, nmpConfig(false))
	if len(nmp.Units()) != 8 || nmp.Units()[3].Vault == nil || nmp.Units()[3].L1 == nil {
		t.Fatal("NMP engine misconfigured")
	}
	if nmp.Units()[0].ObjBuf != nil {
		t.Fatal("non-permutable NMP unit should have no object buffer")
	}
	nmpP := mustEngine(t, nmpConfig(true))
	if nmpP.Units()[0].ObjBuf == nil {
		t.Fatal("NMP-perm unit missing object buffer")
	}
	m := mustEngine(t, mondrianConfig())
	if m.Units()[0].L1 != nil || m.Units()[0].Streams == nil || m.Units()[0].ObjBuf == nil {
		t.Fatal("Mondrian engine misconfigured")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := cpuConfig()
	bad.CPUCores = 0
	if _, err := New(bad); err == nil {
		t.Fatal("CPU with 0 cores accepted")
	}
	bad2 := nmpConfig(false)
	bad2.ObjectSize = 1024
	if _, err := New(bad2); err == nil {
		t.Fatal("object size 1024 accepted")
	}
	bad3 := cpuConfig()
	bad3.Cubes = 0
	if _, err := New(bad3); err == nil {
		t.Fatal("0 cubes accepted")
	}
}

func TestPlaceAndLoad(t *testing.T) {
	e := mustEngine(t, nmpConfig(false))
	ts := workload.Sequential("s", 100).Tuples
	r, err := e.Place(2, ts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 100 || r.Cap() != 100 {
		t.Fatalf("region len=%d cap=%d", r.Len(), r.Cap())
	}
	if r.Vault.ID != 2 {
		t.Fatalf("placed in vault %d", r.Vault.ID)
	}
	u := e.UnitForVault(2)
	e.BeginStep(StepProfile{Name: "load"})
	got := u.LoadTuple(r, 7)
	if got != ts[7] {
		t.Fatalf("LoadTuple = %v, want %v", got, ts[7])
	}
	e.EndStep()
	if e.DRAMStats().Reads == 0 {
		t.Fatal("load did not touch DRAM (no cache was warm)")
	}
}

func TestStoreAndAppend(t *testing.T) {
	e := mustEngine(t, mondrianConfig())
	r, err := e.AllocOut(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	u := e.UnitForVault(1)
	e.BeginStep(StepProfile{Name: "store"})
	u.StoreTuple(r, 3, tuple.Tuple{Key: 9, Val: 9})
	if r.Len() != 4 || r.Tuples[3].Key != 9 {
		t.Fatalf("store: %v", r.Tuples)
	}
	u.AppendLocal(r, tuple.Tuple{Key: 10, Val: 10})
	if r.Len() != 5 || r.Tuples[4].Key != 10 {
		t.Fatalf("append: %v", r.Tuples)
	}
	e.EndStep()
	if e.DRAMStats().Writes != 2 {
		t.Fatalf("writes = %d, want 2", e.DRAMStats().Writes)
	}
}

func TestAppendPastCapacityPanics(t *testing.T) {
	e := mustEngine(t, mondrianConfig())
	r, _ := e.AllocOut(0, 1)
	u := e.UnitForVault(0)
	e.BeginStep(StepProfile{})
	u.AppendLocal(r, tuple.Tuple{})
	defer func() {
		if recover() == nil {
			t.Fatal("append past capacity did not panic")
		}
	}()
	u.AppendLocal(r, tuple.Tuple{})
}

func TestStepComputeBound(t *testing.T) {
	e := mustEngine(t, nmpConfig(false))
	e.BeginStep(StepProfile{Name: "compute", DepIPC: 1})
	e.Units()[0].Charge(1e6) // 1M insts at IPC 1 at 1 GHz = 1 ms
	st := e.EndStep()
	if st.Ns != 1e6 {
		t.Fatalf("step ns = %v, want 1e6", st.Ns)
	}
	if st.MaxUnitNs != 1e6 || st.MemNs != 0 {
		t.Fatalf("step = %+v", st)
	}
	if e.TotalNs() != 1e6 {
		t.Fatalf("total = %v", e.TotalNs())
	}
}

func TestStepMemoryBound(t *testing.T) {
	e := mustEngine(t, mondrianConfig())
	ts := workload.Sequential("s", 4096).Tuples
	r, _ := e.Place(0, ts)
	u := e.UnitForVault(0)
	e.BeginStep(StepProfile{Name: "stream", StreamFed: true})
	readers, err := u.OpenStreams(r)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := readers[0].Next(); !ok {
			break
		}
	}
	// Tiny instruction charge: the step must be bound by DRAM busy time.
	u.Charge(10)
	st := e.EndStep()
	if st.MemNs <= st.MaxUnitNs {
		t.Fatalf("expected memory-bound step: %+v", st)
	}
	if st.Ns != st.MemNs {
		t.Fatalf("step ns should equal memory bound: %+v", st)
	}
	if st.StepBytes() != 4096*tuple.Size {
		t.Fatalf("step bytes = %d", st.StepBytes())
	}
}

func TestStepNesting(t *testing.T) {
	e := mustEngine(t, nmpConfig(false))
	e.BeginStep(StepProfile{})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nested BeginStep did not panic")
			}
		}()
		e.BeginStep(StepProfile{})
	}()
	e.EndStep()
	defer func() {
		if recover() == nil {
			t.Fatal("dangling EndStep did not panic")
		}
	}()
	e.EndStep()
}

func TestBarrierAccounting(t *testing.T) {
	e := mustEngine(t, nmpConfig(false))
	e.Barrier()
	e.Barrier()
	if e.Barriers() != 2 || e.TotalNs() != 2000 {
		t.Fatalf("barriers=%d total=%v", e.Barriers(), e.TotalNs())
	}
}

func TestSendAtPlacesExactly(t *testing.T) {
	e := mustEngine(t, nmpConfig(false))
	dst, _ := e.AllocOut(5, 16)
	u := e.UnitForVault(0)
	e.BeginStep(StepProfile{Name: "send"})
	u.SendAt(dst, 7, tuple.Tuple{Key: 70})
	u.SendAt(dst, 2, tuple.Tuple{Key: 20})
	e.EndStep()
	if dst.Tuples[7].Key != 70 || dst.Tuples[2].Key != 20 {
		t.Fatalf("SendAt misplaced: %v", dst.Tuples)
	}
}

func TestSendPermutableArrivalOrder(t *testing.T) {
	e := mustEngine(t, mondrianConfig())
	dests, err := e.MallocPermutable(64)
	if err != nil {
		t.Fatal(err)
	}
	perSource := make([][]int64, len(e.Units()))
	for i := range perSource {
		perSource[i] = make([]int64, e.NumVaults())
	}
	perSource[0][5] = 3
	if err := e.ShuffleBegin(dests, perSource); err != nil {
		t.Fatal(err)
	}
	u := e.UnitForVault(0)
	e.BeginStep(StepProfile{Name: "dist"})
	for i := 0; i < 3; i++ {
		if err := u.SendPermutable(dests[5], tuple.Tuple{Key: tuple.Key(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	e.EndStep()
	e.ShuffleEnd(dests)
	if dests[5].Len() != 3 {
		t.Fatalf("dest len = %d", dests[5].Len())
	}
	if dests[5].Vault.PermutedWrites != 3 {
		t.Fatalf("permuted writes = %d", dests[5].Vault.PermutedWrites)
	}
	// Arrival order is the layout.
	for i, tp := range dests[5].Tuples {
		if tp.Key != tuple.Key(100+i) {
			t.Fatalf("arrival order broken: %v", dests[5].Tuples)
		}
	}
}

func TestShuffleBeginOverflowSurfaces(t *testing.T) {
	e := mustEngine(t, mondrianConfig())
	dests, err := e.MallocPermutable(4)
	if err != nil {
		t.Fatal(err)
	}
	perSource := make([][]int64, len(e.Units()))
	for i := range perSource {
		perSource[i] = make([]int64, e.NumVaults())
	}
	perSource[0][0] = 100 // far beyond the 4-tuple provision
	if err := e.ShuffleBegin(dests, perSource); !errors.Is(err, hmc.ErrRegionOverflow) {
		t.Fatalf("overflow error = %v", err)
	}
}

func TestSendPermutableWithoutBufferFails(t *testing.T) {
	e := mustEngine(t, nmpConfig(false))
	dst, _ := e.AllocOut(1, 4)
	e.BeginStep(StepProfile{})
	err := e.Units()[0].SendPermutable(dst, tuple.Tuple{})
	e.EndStep()
	if err == nil {
		t.Fatal("SendPermutable without object buffer succeeded")
	}
}

func TestOpenStreamsFallbackOnCachedUnits(t *testing.T) {
	e := mustEngine(t, nmpConfig(false))
	ts := workload.Sequential("s", 64).Tuples
	r, _ := e.Place(3, ts)
	u := e.UnitForVault(3)
	e.BeginStep(StepProfile{Name: "seqread"})
	readers, err := u.OpenStreams(r)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		tp, ok := readers[0].Next()
		if !ok {
			break
		}
		if tp != ts[n] {
			t.Fatalf("tuple %d = %v", n, tp)
		}
		n++
	}
	e.EndStep()
	if n != 64 {
		t.Fatalf("read %d tuples", n)
	}
	// Cached sequential reads: far fewer DRAM reads than tuples.
	if e.DRAMStats().Reads >= 64 {
		t.Fatalf("cache did not filter: %d DRAM reads", e.DRAMStats().Reads)
	}
}

func TestOpenStreamsRejectsRemoteRegion(t *testing.T) {
	e := mustEngine(t, mondrianConfig())
	ts := workload.Sequential("s", 8).Tuples
	r, _ := e.Place(3, ts)
	if _, err := e.UnitForVault(0).OpenStreams(r); err == nil {
		t.Fatal("remote stream accepted on Mondrian unit")
	}
}

func TestStreamPeekIsFree(t *testing.T) {
	e := mustEngine(t, mondrianConfig())
	ts := workload.Sequential("s", 32).Tuples
	r, _ := e.Place(0, ts)
	u := e.UnitForVault(0)
	e.BeginStep(StepProfile{StreamFed: true})
	readers, err := u.OpenStreams(r)
	if err != nil {
		t.Fatal(err)
	}
	before := u.Streams.FillBytes
	for i := 0; i < 10; i++ {
		if _, ok := readers[0].Peek(); !ok {
			t.Fatal("peek failed")
		}
	}
	if u.Streams.FillBytes != before {
		t.Fatal("peeks triggered fills")
	}
	e.EndStep()
}

func TestEnergyBreakdownSanity(t *testing.T) {
	e := mustEngine(t, mondrianConfig())
	ts := workload.Uniform("u", workload.Config{Seed: 1, Tuples: 1024}).Tuples
	r, _ := e.Place(0, ts)
	u := e.UnitForVault(0)
	e.BeginStep(StepProfile{Name: "scan", StreamFed: true})
	readers, _ := u.OpenStreams(r)
	for {
		if _, ok := readers[0].Next(); !ok {
			break
		}
	}
	u.Charge(float64(len(ts)) * 2)
	e.EndStep()
	b := e.Energy(energy.DefaultParams())
	if b.Total() <= 0 {
		t.Fatal("zero energy")
	}
	if b.DRAMDynamic <= 0 || b.DRAMStatic <= 0 || b.Cores <= 0 || b.Network <= 0 {
		t.Fatalf("missing components: %+v", b)
	}
	if b.LLC != 0 {
		t.Fatal("Mondrian has no LLC but was charged for one")
	}
	cpu := mustEngine(t, cpuConfig())
	rr, _ := cpu.Place(0, ts)
	cu := cpu.Units()[0]
	cpu.BeginStep(StepProfile{Name: "scan", DepIPC: 2, InstPerAccess: 4})
	for i := 0; i < rr.Len(); i++ {
		cu.LoadTuple(rr, i)
	}
	cu.Charge(float64(rr.Len()) * 8)
	cpu.EndStep()
	cb := cpu.Energy(energy.DefaultParams())
	if cb.LLC <= 0 {
		t.Fatal("CPU LLC energy missing")
	}
}

// The headline mechanism: an interleaved multi-source shuffle produces far
// fewer row activations with permutability than without, on identical
// tuple traffic, and the functional results are the same multiset.
func TestShuffleActivationGapEndToEnd(t *testing.T) {
	const perVault = 512
	run := func(perm bool) (uint64, []tuple.Tuple) {
		cfg := nmpConfig(perm)
		e := mustEngine(t, cfg)
		nv := e.NumVaults()
		// Source data: every vault holds tuples destined for vault
		// (key % nv).
		srcs := make([]*Region, nv)
		for v := 0; v < nv; v++ {
			rel := workload.Uniform("src", workload.Config{Seed: int64(v + 1), Tuples: perVault})
			r, err := e.Place(v, rel.Tuples)
			if err != nil {
				t.Fatal(err)
			}
			srcs[v] = r
		}
		dests, err := e.MallocPermutable(perVault * 4)
		if err != nil {
			t.Fatal(err)
		}
		perSource := make([][]int64, nv)
		for v := 0; v < nv; v++ {
			perSource[v] = make([]int64, nv)
			for _, tp := range srcs[v].Tuples {
				perSource[v][int(tp.Key)%nv]++
			}
		}
		if err := e.ShuffleBegin(dests, perSource); err != nil {
			t.Fatal(err)
		}
		// Conventional partitioning: each source owns a contiguous
		// sub-range of every destination (prefix sums over the
		// exchanged histograms).
		offset := make([][]int, nv) // offset[src][dst]
		for s := range offset {
			offset[s] = make([]int, nv)
		}
		for dst := 0; dst < nv; dst++ {
			run := 0
			for src := 0; src < nv; src++ {
				offset[src][dst] = run
				run += int(perSource[src][dst])
			}
		}
		actsBefore := e.DRAMStats().Activations
		e.BeginStep(StepProfile{Name: "distribute"})
		// Round-robin across sources: the arrival interleaving of Fig. 2.
		cursors := make([]int, nv)
		remaining := nv * perVault
		for remaining > 0 {
			for v := 0; v < nv; v++ {
				if cursors[v] >= srcs[v].Len() {
					continue
				}
				u := e.UnitForVault(v)
				tp := u.LoadTuple(srcs[v], cursors[v])
				cursors[v]++
				remaining--
				dst := int(tp.Key) % nv
				if perm {
					if err := u.SendPermutable(dests[dst], tp); err != nil {
						t.Fatal(err)
					}
				} else {
					u.SendAt(dests[dst], offset[v][dst], tp)
					offset[v][dst]++
				}
			}
		}
		e.EndStep()
		e.ShuffleEnd(dests)
		var all []tuple.Tuple
		for _, d := range dests {
			all = append(all, d.Tuples...)
		}
		return e.DRAMStats().Activations - actsBefore, all
	}
	actsPerm, tuplesPerm := run(true)
	actsNoPerm, tuplesNoPerm := run(false)
	if !tuple.SameMultiset(tuplesPerm, tuplesNoPerm) {
		t.Fatal("permutability changed the shuffled multiset")
	}
	if actsNoPerm < actsPerm*2 {
		t.Fatalf("activation gap too small: noperm=%d perm=%d", actsNoPerm, actsPerm)
	}
}

// Property: SendPermutable preserves tuple multisets for random fan-outs.
func TestSendPermutableMultisetProperty(t *testing.T) {
	e := mustEngine(t, mondrianConfig())
	dests, err := e.MallocPermutable(4096)
	if err != nil {
		t.Fatal(err)
	}
	perSource := make([][]int64, len(e.Units()))
	for i := range perSource {
		perSource[i] = make([]int64, e.NumVaults())
		for j := range perSource[i] {
			perSource[i][j] = 64 // generous announcement
		}
	}
	if err := e.ShuffleBegin(dests, perSource); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	var sent []tuple.Tuple
	e.BeginStep(StepProfile{Name: "prop"})
	for i := 0; i < 500; i++ {
		src := rng.Intn(len(e.Units()))
		dst := rng.Intn(e.NumVaults())
		tp := tuple.Tuple{Key: tuple.Key(rng.Uint64()), Val: tuple.Value(rng.Uint64())}
		if err := e.Units()[src].SendPermutable(dests[dst], tp); err != nil {
			t.Fatal(err)
		}
		sent = append(sent, tp)
	}
	e.EndStep()
	e.ShuffleEnd(dests)
	var got []tuple.Tuple
	for _, d := range dests {
		got = append(got, d.Tuples...)
	}
	if !tuple.SameMultiset(sent, got) {
		t.Fatal("shuffle lost or duplicated tuples")
	}
}
