package engine

import (
	"fmt"

	"github.com/ecocloud-go/mondrian/internal/hmc"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// Exchange is the parallel-safe form of the partitioning-phase data
// distribution (the inner loop between ShuffleBegin and ShuffleEnd). The
// serial engine interleaved SendAt/SendPermutable calls across source
// units in a round-robin loop; under host parallelism the sources run
// concurrently, so cross-vault sends are staged instead:
//
//   - Stage A (parallel by source): each source unit reads its tuples,
//     charges its instructions, drains its object buffer, and appends the
//     tuple plus a per-source sequence number to a per-destination staging
//     list. Only source-owned state is touched.
//   - Stage B (parallel by destination): each destination vault gathers
//     its staged messages, sorts them by (sequence, source) — exactly the
//     arrival interleave of the serial round-robin loop, since every
//     source sent one tuple per round — and applies the writes in that
//     order. Only destination-owned state is touched, so the paper's
//     Fig. 2 row-buffer behaviour (interleaved arrivals → random rows
//     conventionally, sequential appends with permutability) is
//     reproduced bit-exactly at every worker count.
//   - Stage C (serial): interconnect statistics are applied in (source,
//     destination) order through the stateless RecordBulk paths. Senders
//     never consumed the per-message Transfer latency, so aggregating the
//     occupancy is exact.
//
// The arrival order at each destination is a pure function of the data,
// which makes the whole exchange — tuple layout, DRAM row traffic,
// link occupancy, traces — deterministic and identical at parallelism 1
// and N.
type Exchange struct {
	e     *Engine
	dests []*Region
	perm  bool
	boxes []*Outbox
}

// exMsg is one staged tuple with its per-source send sequence number.
type exMsg struct {
	t   tuple.Tuple
	seq int32
}

// Outbox stages one source unit's outbound tuples. Each source owns its
// Outbox exclusively, so Send is safe inside ForEachVault.
type Outbox struct {
	x      *Exchange
	u      *Unit
	seq    int32
	perDst [][]exMsg // staged messages per destination vault
	netCnt []uint64  // network messages per destination (flushes or tuples)
}

// NewExchange prepares a staged exchange into the given per-vault
// destination regions (as returned by MallocPermutable). Permutability
// follows the engine configuration, matching the serial engine's choice
// between SendPermutable and SendAt.
func (e *Engine) NewExchange(dests []*Region) *Exchange {
	if e.spec.HostCores {
		panic("engine: Exchange is for vault-resident specs; host cores shuffle through the cache hierarchy")
	}
	if len(dests) != e.NumVaults() {
		panic(fmt.Sprintf("engine: %d destination regions for %d vaults", len(dests), e.NumVaults()))
	}
	x := &Exchange{e: e, dests: dests, perm: e.cfg.Permutable}
	x.boxes = make([]*Outbox, len(e.units))
	for i, u := range e.units {
		x.boxes[i] = &Outbox{
			x:      x,
			u:      u,
			perDst: make([][]exMsg, len(dests)),
			netCnt: make([]uint64, len(dests)),
		}
	}
	return x
}

// Outbox returns source unit src's staging box.
func (x *Exchange) Outbox(src int) *Outbox { return x.boxes[src] }

// Send stages one tuple for destination vault dst. On permutable systems
// the tuple passes through the source's object buffer and only completed
// objects become network messages; conventionally every tuple is its own
// message.
func (o *Outbox) Send(dst int, t tuple.Tuple) error {
	if o.x.perm {
		if o.u.ObjBuf == nil {
			return fmt.Errorf("engine: unit %d has no object buffer (permutability disabled)", o.u.ID)
		}
		o.netCnt[dst] += uint64(o.u.ObjBuf.Push(tuple.Size))
	} else {
		o.netCnt[dst]++
	}
	o.perDst[dst] = append(o.perDst[dst], exMsg{t: t, seq: o.seq})
	o.seq++
	return nil
}

// arrival is one staged message annotated with its source for the
// destination-side ordering.
type arrival struct {
	src int
	m   exMsg
}

// Flush applies all staged messages: destination-side writes in parallel
// (stage B), interconnect statistics serially (stage C). It must be
// called outside any ForEachVault section, before EndStep, so the DRAM
// and link activity lands in the step that performed the sends.
func (x *Exchange) Flush() error {
	e := x.e
	nv := len(x.dests)

	// Conventional systems write each source's tuples into a contiguous
	// slot range per destination: prefix sums over sources, exactly the
	// offsets the software histogram exchange provides (§5.4).
	var offset [][]int
	if !x.perm {
		offset = make([][]int, len(x.boxes))
		for s := range x.boxes {
			offset[s] = make([]int, nv)
		}
		for d := 0; d < nv; d++ {
			next := 0
			for s := range x.boxes {
				offset[s][d] = next
				next += len(x.boxes[s].perDst[d])
			}
		}
	}

	// Stage B: per-destination apply. Worker d touches only destination
	// d's region/vault, column d of the offset table, and shard d of the
	// trace buffer.
	var shards [][]traceEvent
	if e.tracer != nil {
		shards = make([][]traceEvent, nv)
	}
	err := e.forEach(nv, func(d int) error {
		dst := x.dests[d]
		total := 0
		for s := range x.boxes {
			total += len(x.boxes[s].perDst[d])
		}
		// Arrival order is (seq, src). Each source's staged list is
		// already seq-sorted and sources are visited in src order, so a
		// stable counting sort by seq reproduces the comparison sort's
		// permutation in O(n + maxSeq) without per-element comparisons.
		maxSeq := int32(-1)
		for s := range x.boxes {
			if l := x.boxes[s].perDst[d]; len(l) > 0 {
				if q := l[len(l)-1].seq; q > maxSeq {
					maxSeq = q
				}
			}
		}
		counts := make([]int32, maxSeq+2)
		for s := range x.boxes {
			for _, m := range x.boxes[s].perDst[d] {
				counts[m.seq+1]++
			}
		}
		for i := 1; i < len(counts); i++ {
			counts[i] += counts[i-1]
		}
		arr := make([]arrival, total)
		for s := range x.boxes {
			for _, m := range x.boxes[s].perDst[d] {
				arr[counts[m.seq]] = arrival{src: s, m: m}
				counts[m.seq]++
			}
		}
		// Permutable destinations are strictly sequential appends: the
		// controller ignores target addresses and bumps its append offset
		// once per object, so the whole arrival list can retire as one
		// DRAM run. Tracing keeps the per-arrival loop (events carry
		// per-source attribution); so does NoBulk.
		if x.perm && !e.cfg.NoBulk && shards == nil && dst.Vault.ShuffleActive() {
			return x.applyPermutableRun(dst, arr)
		}
		for _, a := range arr {
			if x.perm {
				if len(dst.Tuples) >= dst.cap {
					return fmt.Errorf("%w: region in vault %d full", hmc.ErrRegionOverflow, dst.Vault.ID)
				}
				target := dst.addrOf(len(dst.Tuples))
				placed, _, err := dst.Vault.PermutableWrite(target, tuple.Size)
				if err != nil {
					return err
				}
				if shards != nil {
					shards[d] = append(shards[d], traceEvent{unit: a.src, kind: TracePermuted, addr: placed, size: tuple.Size, write: true})
				}
				dst.Tuples = append(dst.Tuples, a.m.t) // arrival order IS the layout
				dst.keysOK = false
				continue
			}
			idx := offset[a.src][d]
			offset[a.src][d]++
			if idx < 0 || idx >= dst.cap {
				panic(fmt.Sprintf("engine: send index %d outside capacity %d", idx, dst.cap))
			}
			ensureLen(dst, idx+1)
			dst.Tuples[idx] = a.m.t
			dst.keysOK = false
			addr := dst.addrOf(idx)
			if shards != nil {
				shards[d] = append(shards[d], traceEvent{unit: a.src, kind: TraceShuffle, addr: addr, size: tuple.Size, write: true})
			}
			dst.Vault.Write(addr, tuple.Size)
			dst.Vault.RecordInbound(tuple.Size)
		}
		return nil
	})
	for _, shard := range shards {
		for _, ev := range shard {
			e.tracer.Access(ev.unit, ev.kind, ev.addr, ev.size, ev.write)
		}
	}
	if err != nil {
		return err
	}

	// Stage C: aggregated interconnect occupancy in (src, dst) order.
	// Permutable messages are object-buffer flushes of ObjectSize bytes;
	// conventional ones are bare tuples.
	msgSize := tuple.Size
	if x.perm {
		msgSize = e.cfg.ObjectSize
	}
	for s, box := range x.boxes {
		for d, n := range box.netCnt {
			e.recordRouteBulk(e.units[s].Vault, x.dests[d].Vault, msgSize, n)
		}
	}
	x.recordObs(msgSize)
	return nil
}

// applyPermutableRun retires a destination's sorted arrival list as one
// sequential permutable-append run — byte-identical accounting to the
// per-arrival loop, including the partial-application semantics on
// overflow (writes preceding the overflowing arrival land; the error
// matches the one the scalar loop would have returned for that arrival).
func (x *Exchange) applyPermutableRun(dst *Region, arr []arrival) error {
	apply := len(arr)
	var fullErr error
	if avail := dst.cap - len(dst.Tuples); apply > avail {
		apply = avail
		fullErr = fmt.Errorf("%w: region in vault %d full", hmc.ErrRegionOverflow, dst.Vault.ID)
	}
	_, n, err := dst.Vault.PermutableWriteRun(tuple.Size, apply)
	for i := 0; i < n; i++ {
		dst.Tuples = append(dst.Tuples, arr[i].m.t) // arrival order IS the layout
	}
	dst.keysOK = false
	if err != nil {
		return err
	}
	return fullErr
}

// recordRouteBulk applies the interconnect statistics of n identical
// size-byte messages along the unit→vault route of routeLatency, without
// computing latency (the exchange's senders never consumed it).
func (e *Engine) recordRouteBulk(src, dst *hmc.Vault, size int, n uint64) {
	if n == 0 || src == dst {
		return
	}
	if src.Cube == dst.Cube {
		e.Sys.Cubes[src.Cube].Mesh.RecordBulk(src.Tile, dst.Tile, size, n)
		return
	}
	e.Sys.Cubes[src.Cube].Mesh.RecordBulk(src.Tile, 0, size, n)
	e.Sys.Net.RecordBulk(src.Cube, dst.Cube, size, n)
	e.Sys.Cubes[dst.Cube].Mesh.RecordBulk(0, dst.Tile, size, n)
}
