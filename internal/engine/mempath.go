package engine

import (
	"fmt"

	"github.com/ecocloud-go/mondrian/internal/cache"
	"github.com/ecocloud-go/mondrian/internal/hmc"
	"github.com/ecocloud-go/mondrian/internal/noc"
)

// memPath is one memory-path implementation: the architecture-specific
// half of Unit's access machinery. Unit.access/accessRun handle the
// common bookkeeping (tracing, access tallies, the bulk-eligibility
// fallback) and delegate the actual walk to the unit's path, so the hot
// paths carry no architecture switches.
type memPath interface {
	// access walks one demand access of size bytes through the path.
	access(u *Unit, addr int64, size int, write bool)
	// accessRun retires a bulk run the path proved runnable: count
	// elements of stride bytes, with accounting byte-identical to count
	// access calls.
	accessRun(u *Unit, addr int64, stride, count int, write bool)
	// runnable reports whether the bulk path can retire this run with
	// provably identical accounting (see the per-path doc comments).
	runnable(u *Unit, addr int64, stride, count int) bool
	// route charges the interconnect between the unit and a vault and
	// returns the one-way latency.
	route(u *Unit, dst *hmc.Vault, size int) float64
	// demandShuffle reports whether partitioning-phase sends go through
	// the demand path (write-allocate caches) instead of direct remote
	// vault writes.
	demandShuffle() bool
	// check validates that a spec composition provides the hardware
	// this path dereferences (caches, TLBs, home vaults).
	check(sp SystemSpec) error
}

// --- cpuPath: TLB → L1 → NUCA mesh → LLC → SerDes → vault ---------------

// cpuPath is the host-processor hierarchy: every access translates
// through the TLBs, walks the private L1, and misses into the shared
// NUCA LLC across the chip mesh; LLC misses cross the star SerDes into
// the owning cube.
type cpuPath struct{}

func (cpuPath) check(sp SystemSpec) error {
	if !sp.HostCores || !sp.UnitL1 || !sp.SharedLLC || !sp.TLB {
		return fmt.Errorf("engine: the cpu path needs host cores with TLBs, an L1 and a shared LLC")
	}
	return nil
}

func (cpuPath) access(u *Unit, addr int64, size int, write bool) {
	block := int64(u.L1.Config().BlockBytes)
	end := addr + int64(size)
	for a := addr / block * block; a < end; a += block {
		u.cpuBlockAccess(a, write)
	}
}

func (cpuPath) accessRun(u *Unit, addr int64, stride, count int, write bool) {
	u.cpuRunAccess(addr, stride, count, write)
}

// runnable: elements must not straddle cache blocks or DRAM rows
// (stride-aligned, power-of-two-dividing strides).
func (cpuPath) runnable(u *Unit, addr int64, stride, count int) bool {
	return u.cachedRunnable(addr, stride)
}

func (cpuPath) route(u *Unit, dst *hmc.Vault, size int) float64 {
	e := u.engine
	lat := e.Sys.Net.Transfer(noc.CPUNode, dst.Cube, size)
	return lat + e.Sys.Cubes[dst.Cube].Mesh.Transfer(0, dst.Tile, size)
}

// CPU stores go through the cache hierarchy.
func (cpuPath) demandShuffle() bool { return true }

// --- cachedVaultPath: L1 → home/remote vault ----------------------------

// cachedVaultPath is the cache-backed near-memory core: accesses walk
// the per-unit L1 and miss straight into the fabric (home vault free,
// remote vaults across the logic-layer mesh and SerDes).
type cachedVaultPath struct{}

func (cachedVaultPath) check(sp SystemSpec) error {
	if sp.HostCores || !sp.UnitL1 {
		return fmt.Errorf("engine: the cached-vault path needs vault-resident units with an L1")
	}
	return nil
}

func (cachedVaultPath) access(u *Unit, addr int64, size int, write bool) {
	block := int64(u.L1.Config().BlockBytes)
	end := addr + int64(size)
	for a := addr / block * block; a < end; a += block {
		u.nmpBlockAccess(a, write)
	}
}

func (cachedVaultPath) accessRun(u *Unit, addr int64, stride, count int, write bool) {
	u.nmpRunAccess(addr, stride, count, write)
}

// runnable: same block/row alignment condition as the CPU path — the L1
// batches same-block hits and the miss list replays per-element.
func (cachedVaultPath) runnable(u *Unit, addr int64, stride, count int) bool {
	return u.cachedRunnable(addr, stride)
}

func (cachedVaultPath) route(u *Unit, dst *hmc.Vault, size int) float64 {
	return u.vaultRoute(dst, size)
}

func (cachedVaultPath) demandShuffle() bool { return false }

// --- streamPath: cacheless direct vault access --------------------------

// streamPath is the cacheless Mondrian unit: every access goes straight
// at the owning vault (reads that must not stall flow through the stream
// buffers instead — streams.go).
type streamPath struct{}

func (streamPath) check(sp SystemSpec) error {
	if sp.HostCores || sp.UnitL1 {
		return fmt.Errorf("engine: the stream path needs cacheless vault-resident units")
	}
	return nil
}

func (streamPath) access(u *Unit, addr int64, size int, write bool) {
	lat := u.directAccess(addr, size, write)
	if !write {
		u.stallRawNs += lat
	}
}

// accessRun: cacheless unit, local vault — the route adds zero latency,
// so each element's stall is exactly its DRAM latency.
func (streamPath) accessRun(u *Unit, addr int64, stride, count int, write bool) {
	if write {
		u.Vault.WriteRun(addr, stride, count)
	} else {
		u.Vault.ReadRun(addr, stride, count, &u.stallRawNs)
	}
}

// runnable: elements must not straddle DRAM rows, and the run must stay
// inside the home vault so route latency is uniformly zero.
func (streamPath) runnable(u *Unit, addr int64, stride, count int) bool {
	row := int64(u.engine.cfg.Geometry.RowBytes)
	if row%int64(stride) != 0 || addr%int64(stride) != 0 {
		return false
	}
	last := addr + int64(stride)*int64(count) - 1
	return u.Vault != nil && u.Vault.Contains(addr) && u.Vault.Contains(last)
}

func (streamPath) route(u *Unit, dst *hmc.Vault, size int) float64 {
	return u.vaultRoute(dst, size)
}

func (streamPath) demandShuffle() bool { return false }

// --- shared walk helpers ------------------------------------------------

// cachedRunnable is the bulk-eligibility condition shared by the cached
// paths: elements must not straddle cache blocks or DRAM rows.
func (u *Unit) cachedRunnable(addr int64, stride int) bool {
	block := int64(u.L1.Config().BlockBytes)
	if block%int64(stride) != 0 || addr%int64(stride) != 0 {
		return false
	}
	row := int64(u.engine.cfg.Geometry.RowBytes)
	return row%int64(stride) == 0
}

// vaultRoute charges the interconnect between a vault-resident unit and
// a destination vault: free at home, across the logic-layer mesh within
// a cube, and over the SerDes between cubes.
func (u *Unit) vaultRoute(dst *hmc.Vault, size int) float64 {
	e := u.engine
	src := u.Vault
	if src == dst {
		return 0
	}
	if src.Cube == dst.Cube {
		return e.Sys.Cubes[src.Cube].Mesh.Transfer(src.Tile, dst.Tile, size)
	}
	lat := e.Sys.Cubes[src.Cube].Mesh.Transfer(src.Tile, 0, size)
	lat += e.Sys.Net.Transfer(src.Cube, dst.Cube, size)
	lat += e.Sys.Cubes[dst.Cube].Mesh.Transfer(0, dst.Tile, size)
	return lat
}

// cpuRunAccess retires a sequential run on a CPU core: per page, one full
// TLB lookup plus batched TLB hits (the first lookup installs the entry);
// per L1 block, the cache's own bulk walk; misses route through the LLC
// exactly as the per-element path does, demand fetches stalling and
// prefetches overlapping.
func (u *Unit) cpuRunAccess(addr int64, stride, count int, write bool) {
	block := u.L1.Config().BlockBytes
	for count > 0 {
		pageEnd := (addr/pageBytes + 1) * pageBytes
		k := int((pageEnd - addr + int64(stride) - 1) / int64(stride))
		if k > count {
			k = count
		}
		u.stallRawNs += u.tlbLookup(addr)
		if k > 1 && !u.tlbL1.AccessHitRun(addr+int64(stride), k-1, false) {
			// The first lookup always installs the page's entry; this
			// branch only runs on pathological TLB geometries.
			for i := 1; i < k; i++ {
				u.stallRawNs += u.tlbLookup(addr + int64(i)*int64(stride))
			}
		}
		u.L1.AccessRun(addr, stride, k, write, &u.runRes)
		for _, op := range u.runRes.Ops {
			switch op.Kind {
			case cache.RunFetchDemand:
				// Only the demand block stalls; prefetches overlap.
				u.stallRawNs += u.cpuFetchFromLLC(op.Addr, block)
			case cache.RunFetchPrefetch:
				u.cpuFetchFromLLC(op.Addr, block)
			case cache.RunWriteback:
				u.cpuWritebackToLLC(op.Addr, block)
			}
		}
		addr += int64(k) * int64(stride)
		count -= k
	}
}

// nmpRunAccess retires a sequential run on a cache-backed vault unit: the
// L1 batches same-block hits, and the miss traffic list replays through
// the fabric in the per-element order (demand fetch stalls, prefetches and
// writebacks only occupy bandwidth).
func (u *Unit) nmpRunAccess(addr int64, stride, count int, write bool) {
	u.L1.AccessRun(addr, stride, count, write, &u.runRes)
	block := u.L1.Config().BlockBytes
	for _, op := range u.runRes.Ops {
		switch op.Kind {
		case cache.RunFetchDemand:
			lat := u.directAccess(op.Addr, block, false)
			if !write {
				u.stallRawNs += lat
			}
		case cache.RunFetchPrefetch:
			u.directAccess(op.Addr, block, false)
		case cache.RunWriteback:
			u.directAccess(op.Addr, block, true)
		}
	}
}

// pageBytes is the virtual-memory page size the CPU's TLBs cover.
const pageBytes = 4096

// tlbLookup translates one address, returning the translation stall. An
// L1-TLB hit is free, an L2-TLB hit costs a couple of cycles, and a full
// miss performs a page walk: a real memory read of the page-table entry
// through the cache hierarchy (PTEs live in a reserved tail of the owning
// vault, so walk traffic shares DRAM banks with the data).
func (u *Unit) tlbLookup(addr int64) float64 {
	if u.tlbL1.Access(addr, false).Hit {
		return 0
	}
	if u.tlbL2.Access(addr, false).Hit {
		return 2 // L2 TLB hit: ~4 cycles at 2 GHz
	}
	e := u.engine
	v := e.Sys.VaultOf(addr)
	page := (addr - v.Base) / pageBytes
	reserved := v.Size / 16
	// Two-level radix walk: the last two table levels are real memory
	// reads (the top levels stay cached and are not charged). PMD
	// entries cover 512 pages each.
	pmd := v.Base + v.Size - reserved + (page/512*8)%(reserved/2)
	pte := v.Base + v.Size - reserved/2 + (page*8)%(reserved/2)
	lat := u.cpuFetchFromLLC(pmd/64*64, 64)
	lat += u.cpuFetchFromLLC(pte/64*64, 64)
	return lat
}

// cpuBlockAccess walks one block through TLB → L1 → LLC → star network →
// vault.
func (u *Unit) cpuBlockAccess(addr int64, write bool) {
	u.stallRawNs += u.tlbLookup(addr)
	res := u.L1.Access(addr, write)
	if res.Hit {
		return
	}
	block := u.L1.Config().BlockBytes
	var stall float64
	for i, fetch := range res.Fetches {
		lat := u.cpuFetchFromLLC(fetch, block)
		if i == 0 { // only the demand block stalls; prefetches overlap
			stall += lat
		}
	}
	for _, wb := range res.Writebacks {
		u.cpuWritebackToLLC(wb, block)
	}
	u.stallRawNs += stall
}

// cpuFetchFromLLC brings one block from the LLC (or DRAM below it).
func (u *Unit) cpuFetchFromLLC(addr int64, block int) float64 {
	e := u.engine
	bank := e.nucaBank(addr, block) // block-interleaved NUCA
	lat := e.mesh.Transfer(u.tile, bank, block)
	res := e.llc.Access(addr, false)
	lat += e.llc.Config().HitLatencyNs
	if res.Hit {
		return lat
	}
	for _, fetch := range res.Fetches {
		v := e.Sys.VaultOf(fetch)
		l := e.Sys.Net.Transfer(noc.CPUNode, v.Cube, block) // request+data crossing
		l += e.Sys.Cubes[v.Cube].Mesh.Transfer(0, v.Tile, block)
		l += v.Read(fetch, block)
		lat += l
	}
	for _, wb := range res.Writebacks {
		v := e.Sys.VaultOf(wb)
		e.Sys.Net.Transfer(noc.CPUNode, v.Cube, block)
		e.Sys.Cubes[v.Cube].Mesh.Transfer(0, v.Tile, block)
		v.Write(wb, block)
	}
	return lat
}

// nucaBank hashes a block address onto an LLC tile (block-interleaved
// NUCA), in shift/mask form when the block size matches the precomputed
// power-of-two geometry.
func (e *Engine) nucaBank(addr int64, block int) int {
	if e.nucaShift > 0 && block == 1<<e.nucaShift {
		return int((addr >> e.nucaShift) & e.nucaMask)
	}
	return int(addr/int64(block)) % e.mesh.Tiles()
}

// cpuWritebackToLLC spills one dirty L1 block into the LLC.
func (u *Unit) cpuWritebackToLLC(addr int64, block int) {
	e := u.engine
	bank := e.nucaBank(addr, block)
	e.mesh.Transfer(u.tile, bank, block)
	res := e.llc.Access(addr, true)
	if res.Hit {
		return
	}
	for _, wb := range res.Writebacks {
		v := e.Sys.VaultOf(wb)
		e.Sys.Net.Transfer(noc.CPUNode, v.Cube, block)
		e.Sys.Cubes[v.Cube].Mesh.Transfer(0, v.Tile, block)
		v.Write(wb, block)
	}
}

// nmpBlockAccess walks one block through the per-vault L1 and the fabric.
func (u *Unit) nmpBlockAccess(addr int64, write bool) {
	res := u.L1.Access(addr, write)
	if res.Hit {
		return
	}
	block := u.L1.Config().BlockBytes
	var stall float64
	for i, fetch := range res.Fetches {
		lat := u.directAccess(fetch, block, false)
		if i == 0 {
			stall += lat
		}
	}
	for _, wb := range res.Writebacks {
		u.directAccess(wb, block, true)
	}
	if !write {
		u.stallRawNs += stall
	}
}

// directAccess reaches the owning vault through mesh/SerDes as needed and
// returns the one-way latency (request-to-data).
func (u *Unit) directAccess(addr int64, size int, write bool) float64 {
	e := u.engine
	dst := e.Sys.VaultOf(addr)
	lat := u.routeLatency(dst, size)
	if write {
		return lat + dst.Write(addr, size)
	}
	return lat + dst.Read(addr, size)
}

// routeLatency charges the interconnect between this unit and a vault
// through the unit's memory path.
func (u *Unit) routeLatency(dst *hmc.Vault, size int) float64 {
	return u.path.route(u, dst, size)
}
