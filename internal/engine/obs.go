package engine

// Observability integration: phase tracking, post-run metric harvesting,
// and span-tree construction for internal/obs.
//
// Determinism is the governing constraint (the manifest must be
// byte-identical across host parallelism levels), so the engine does NOT
// instrument its concurrent hot paths. Instead it snapshots the
// simulation's own deterministic statistics — cache/TLB/LLC stats, DRAM
// row counters, NoC/SerDes occupancy, stream/object-buffer tallies, all
// of which PR 1 already made shard-mergeable and order-independent — at
// serial points: phase boundaries (BeginPhase/EndPhase, called by the
// operators between parallel sections) and the end of the run
// (CollectObs). The only always-on additions to the hot loops are the
// nil-checks at those phase boundaries, pinned at zero allocations by the
// engine's AllocsPerRun tests.

import (
	"fmt"
	"strconv"
	"time"

	"github.com/ecocloud-go/mondrian/internal/cache"
	"github.com/ecocloud-go/mondrian/internal/dram"
	"github.com/ecocloud-go/mondrian/internal/noc"
	"github.com/ecocloud-go/mondrian/internal/obs"
)

// PhaseTiming is one operator phase (partition, probe, ...) on the
// simulated clock, plus the host wall time spent inside it. StartNs/EndNs
// and the step range are deterministic; WallNs is host-dependent and is
// stripped from manifests before golden comparison.
type PhaseTiming struct {
	Name      string  `json:"name"`
	StartNs   float64 `json:"start_ns"`
	EndNs     float64 `json:"end_ns"`
	WallNs    int64   `json:"wall_ns,omitempty"`
	StepStart int     `json:"step_start"`
	StepEnd   int     `json:"step_end"`

	instructions float64
	deltas       obsTotals // activity attributable to this phase
}

// SimulatedNs returns the phase's simulated duration.
func (p PhaseTiming) SimulatedNs() float64 { return p.EndNs - p.StartNs }

// obsTotals freezes every deterministic activity counter the engine can
// observe, so phase boundaries can attribute deltas.
type obsTotals struct {
	insts    float64
	accesses uint64

	l1, tlb1, tlb2, llc cache.Stats
	dram                dram.Stats
	mesh                noc.MeshStats
	serdesMsgs          uint64
	serdesBytes         uint64
	streamFill          uint64
	objPushes           uint64
	objFlushes          uint64
	permWrites          uint64
}

func (e *Engine) obsSnapshot() obsTotals {
	var t obsTotals
	for _, u := range e.units {
		t.insts += u.instTotal
		t.accesses += u.accessTotal + u.accesses // closed steps + the open one
		if u.L1 != nil {
			addCache(&t.l1, u.L1.Stats())
		}
		if u.tlbL1 != nil {
			addCache(&t.tlb1, u.tlbL1.Stats())
		}
		if u.tlbL2 != nil {
			addCache(&t.tlb2, u.tlbL2.Stats())
		}
		if u.Streams != nil {
			t.streamFill += u.Streams.FillBytes
		}
		if u.ObjBuf != nil {
			t.objPushes += u.ObjBuf.Pushes
			t.objFlushes += u.ObjBuf.Flushes
		}
	}
	if e.llc != nil {
		t.llc = e.llc.Stats()
	}
	t.dram = e.Sys.TotalDRAMStats()
	for _, c := range e.Sys.Cubes {
		t.mesh.Merge(c.Mesh.Stats())
	}
	if e.mesh != nil {
		t.mesh.Merge(e.mesh.Stats())
	}
	for _, l := range e.Sys.Net.Links() {
		s := l.Stats()
		t.serdesMsgs += s.Messages
		t.serdesBytes += s.Bytes
	}
	for _, v := range e.Sys.Vaults() {
		t.permWrites += v.PermutedWrites
	}
	return t
}

func addCache(dst *cache.Stats, s cache.Stats) {
	dst.Accesses += s.Accesses
	dst.Hits += s.Hits
	dst.Misses += s.Misses
	dst.DirtyEvictions += s.DirtyEvictions
	dst.PrefetchIssued += s.PrefetchIssued
	dst.PrefetchHits += s.PrefetchHits
}

func subCache(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Accesses:       a.Accesses - b.Accesses,
		Hits:           a.Hits - b.Hits,
		Misses:         a.Misses - b.Misses,
		DirtyEvictions: a.DirtyEvictions - b.DirtyEvictions,
		PrefetchIssued: a.PrefetchIssued - b.PrefetchIssued,
		PrefetchHits:   a.PrefetchHits - b.PrefetchHits,
	}
}

func (t obsTotals) sub(b obsTotals) obsTotals {
	d := obsTotals{
		insts:       t.insts - b.insts,
		accesses:    t.accesses - b.accesses,
		l1:          subCache(t.l1, b.l1),
		tlb1:        subCache(t.tlb1, b.tlb1),
		tlb2:        subCache(t.tlb2, b.tlb2),
		llc:         subCache(t.llc, b.llc),
		serdesMsgs:  t.serdesMsgs - b.serdesMsgs,
		serdesBytes: t.serdesBytes - b.serdesBytes,
		streamFill:  t.streamFill - b.streamFill,
		objPushes:   t.objPushes - b.objPushes,
		objFlushes:  t.objFlushes - b.objFlushes,
		permWrites:  t.permWrites - b.permWrites,
	}
	d.dram = t.dram
	d.dram.Reads -= b.dram.Reads
	d.dram.Writes -= b.dram.Writes
	d.dram.ReadBytes -= b.dram.ReadBytes
	d.dram.WriteBytes -= b.dram.WriteBytes
	d.dram.Activations -= b.dram.Activations
	d.dram.RowHits -= b.dram.RowHits
	d.dram.RowColdMisses -= b.dram.RowColdMisses
	d.dram.RowConflicts -= b.dram.RowConflicts
	d.dram.BusNs = t.dram.BusNs - b.dram.BusNs
	d.mesh.Messages = t.mesh.Messages - b.mesh.Messages
	d.mesh.Bytes = t.mesh.Bytes - b.mesh.Bytes
	d.mesh.BitMM = t.mesh.BitMM - b.mesh.BitMM
	d.mesh.BusyNs = t.mesh.BusyNs - b.mesh.BusyNs
	for i := range d.mesh.HopCounts {
		d.mesh.HopCounts[i] = t.mesh.HopCounts[i] - b.mesh.HopCounts[i]
	}
	return d
}

// BeginPhase opens a named operator phase (partition, probe, ...). All
// simulated time, steps and hardware activity until the matching EndPhase
// are attributed to it. Phases must not nest; repeated names get a "#n"
// suffix (Join runs two partition phases). A no-op when observability is
// disabled — the nil-check is the hook's entire disabled-path cost.
func (e *Engine) BeginPhase(name string) {
	if e.cfg.Obs == nil {
		return
	}
	if e.phaseOpen {
		panic(fmt.Sprintf("engine: BeginPhase(%q) while phase %q is open", name, e.curPhase.Name))
	}
	if e.phasePrefix != "" {
		name = e.phasePrefix + "/" + name
	}
	e.phaseOpen = true
	if n := e.phaseSeen[name]; n > 0 {
		e.phaseSeen[name] = n + 1
		name = fmt.Sprintf("%s#%d", name, n+1)
	} else {
		if e.phaseSeen == nil {
			e.phaseSeen = make(map[string]int)
		}
		e.phaseSeen[name] = 1
	}
	e.curPhase = PhaseTiming{Name: name, StartNs: e.totalNs, StepStart: len(e.steps)}
	e.phaseSnap = e.obsSnapshot()
	e.phaseWall = time.Now()
}

// SetPhasePrefix labels the phases of subsequent BeginPhase calls with a
// stage prefix ("join" turns the operator's "partition" phase into
// "join/partition"), so multi-operator plans attribute every phase to the
// plan stage that ran it. The empty prefix (the default) leaves phase
// names exactly as the operators report them. Prefixed names feed the
// same "#n" de-duplication as plain ones, so repeated stages stay
// distinguishable. Callers set the prefix at serial points only.
func (e *Engine) SetPhasePrefix(prefix string) { e.phasePrefix = prefix }

// EndPhase closes the open phase. A no-op when observability is disabled.
func (e *Engine) EndPhase() {
	if e.cfg.Obs == nil {
		return
	}
	if !e.phaseOpen {
		panic("engine: EndPhase without BeginPhase")
	}
	e.phaseOpen = false
	p := e.curPhase
	p.EndNs = e.totalNs
	p.StepEnd = len(e.steps)
	p.WallNs = time.Since(e.phaseWall).Nanoseconds()
	p.deltas = e.obsSnapshot().sub(e.phaseSnap)
	p.instructions = p.deltas.insts
	e.phases = append(e.phases, p)
}

// Phases returns the completed phases in execution order (nil when
// observability is disabled).
func (e *Engine) Phases() []PhaseTiming { return e.phases }

// exchangeRecord summarizes one Exchange.Flush for the span tree and the
// exchange_* counters. Recorded serially at the end of Flush, so it is
// deterministic at every parallelism level.
type exchangeRecord struct {
	step       int // index the enclosing step will get (== len(steps) at Flush)
	tuples     uint64
	messages   uint64
	bytes      uint64
	permWrites uint64
	convWrites uint64
	nearMisses uint64 // destinations ≥90% full after the flush
}

func (x *Exchange) recordObs(msgSize int) {
	e := x.e
	if e.cfg.Obs == nil {
		return
	}
	rec := exchangeRecord{step: len(e.steps)}
	for _, box := range x.boxes {
		for d, n := range box.netCnt {
			rec.messages += n
			rec.tuples += uint64(len(box.perDst[d]))
		}
	}
	rec.bytes = rec.messages * uint64(msgSize)
	if x.perm {
		rec.permWrites = rec.tuples
	} else {
		rec.convWrites = rec.tuples
	}
	for _, dst := range x.dests {
		if dst.cap > 0 && uint64(len(dst.Tuples))*10 >= uint64(dst.cap)*9 {
			rec.nearMisses++
		}
	}
	e.exchanges = append(e.exchanges, rec)
}

// skewStat is one phase's skew observation: the exact destination-load
// spread from the histogram exchange plus the heavy-hitter count the
// detector flagged. Recorded serially between steps.
type skewStat struct {
	phase    string
	maxLoad  float64
	meanLoad float64
	hotKeys  int
}

// RecordSkew stores one skew observation for the currently open phase (or
// unattributed when no phase is open / observability is disabled). Called
// by the partition phase on skew-aware runs; the values come from the
// exact exchanged histograms, so they are deterministic at every
// parallelism level.
func (e *Engine) RecordSkew(maxLoad, meanLoad float64, hotKeys int) {
	phase := ""
	if e.phaseOpen {
		phase = e.curPhase.Name
	}
	e.skewStats = append(e.skewStats, skewStat{phase: phase, maxLoad: maxLoad, meanLoad: meanLoad, hotKeys: hotKeys})
}

// RecordSplitKeys counts hot keys whose work was split across host workers
// with a merge-side combine (operator-layer hot-key splitting). Called at
// serial points only.
func (e *Engine) RecordSplitKeys(n int) {
	e.splitKeys += uint64(n)
}

// StolenTasks returns the cumulative count of tasks dispatched out of
// their natural order by the skew-aware worker pool — a pure function of
// the task weights, identical at every parallelism level.
func (e *Engine) StolenTasks() uint64 { return e.stolenTasks }

// SplitKeys returns the cumulative hot-key split count.
func (e *Engine) SplitKeys() uint64 { return e.splitKeys }

// Histogram bucket bounds for CollectObs. Hop bounds cover the 4×4 mesh
// diameter; step bounds span µs-to-ms simulated step durations.
var (
	hopBounds  = []float64{0, 1, 2, 3, 4, 5, 6, 8}
	stepBounds = []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}
)

// CollectObs harvests every deterministic run statistic into reg: totals,
// per-unit and per-vault counters (recorded through per-unit shards and
// merged in unit-ID order — the same shard/merge discipline the worker
// pool uses), per-link SerDes traffic, hop and step-duration histograms,
// exchange summaries, and per-phase attribution. Call after the run
// completes; a nil registry is a no-op.
func (e *Engine) CollectObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	t := e.obsSnapshot()

	reg.Gauge("sim_total_ns").Set(e.totalNs)
	reg.Counter("steps_total").Add(uint64(len(e.steps)))
	reg.Counter("barriers_total").Add(uint64(e.barrierCnt))
	reg.Gauge("instructions_total").Set(t.insts)
	reg.Counter("accesses_total").Add(t.accesses)
	if e.totalNs > 0 && len(e.units) > 0 {
		reg.Gauge("run_ipc").Set(t.insts / (e.totalNs * e.cfg.Core.FreqGHz) / float64(len(e.units)))
	}

	recordCacheStats(reg, "l1", t.l1)
	recordCacheStats(reg, "tlb_l1", t.tlb1)
	recordCacheStats(reg, "tlb_l2", t.tlb2)
	recordCacheStats(reg, "llc", t.llc)
	recordDRAMStats(reg, "dram", t.dram)

	reg.Counter("mesh_messages").Add(t.mesh.Messages)
	reg.Counter("mesh_bytes").Add(t.mesh.Bytes)
	reg.Gauge("mesh_busy_ns").Set(t.mesh.BusyNs)
	hops := reg.Histogram("mesh_hops", hopBounds)
	for h, n := range t.mesh.HopCounts {
		hops.ObserveN(float64(h), n)
	}

	reg.Counter("serdes_messages").Add(t.serdesMsgs)
	reg.Counter("serdes_bytes").Add(t.serdesBytes)
	names := e.Sys.Net.LinkNames()
	for i, l := range e.Sys.Net.Links() {
		s := l.Stats()
		reg.Counter(obs.Label("serdes_link_bytes", "link", names[i])).Add(s.Bytes)
		reg.Counter(obs.Label("serdes_link_messages", "link", names[i])).Add(s.Messages)
	}

	reg.Counter("stream_fill_bytes").Add(t.streamFill)
	reg.Counter("objbuf_pushes").Add(t.objPushes)
	reg.Counter("objbuf_flushes").Add(t.objFlushes)
	reg.Counter("permuted_writes").Add(t.permWrites)

	var ex exchangeRecord
	for _, r := range e.exchanges {
		ex.tuples += r.tuples
		ex.messages += r.messages
		ex.bytes += r.bytes
		ex.permWrites += r.permWrites
		ex.convWrites += r.convWrites
		ex.nearMisses += r.nearMisses
	}
	reg.Counter("exchange_flushes").Add(uint64(len(e.exchanges)))
	reg.Counter("exchange_tuples").Add(ex.tuples)
	reg.Counter("exchange_messages").Add(ex.messages)
	reg.Counter("exchange_bytes").Add(ex.bytes)
	reg.Counter("exchange_permutable_writes").Add(ex.permWrites)
	reg.Counter("exchange_conventional_writes").Add(ex.convWrites)
	reg.Counter("exchange_overflow_near_misses").Add(ex.nearMisses)

	stepHist := reg.Histogram("step_ns", stepBounds)
	for _, st := range e.steps {
		stepHist.Observe(st.Ns)
	}

	// Per-unit counters go through one shard per unit, merged in unit-ID
	// order — production exercise of the same discipline the worker pool
	// relies on for lock-free recording.
	shards := make([]*obs.Registry, len(e.units))
	for i, u := range e.units {
		sh := reg.NewShard()
		id := strconv.Itoa(i)
		sh.Gauge(obs.Label("unit_busy_ns", "unit", id)).Set(u.busyNs)
		sh.Gauge(obs.Label("unit_instructions", "unit", id)).Set(u.instTotal)
		sh.Counter(obs.Label("unit_accesses", "unit", id)).Add(u.accessTotal + u.accesses)
		shards[i] = sh
	}
	if err := reg.Merge(shards...); err != nil {
		panic(fmt.Sprintf("engine: per-unit shard merge: %v", err)) // disjoint names; unreachable
	}

	for _, v := range e.Sys.Vaults() {
		id := strconv.Itoa(v.ID)
		ds := v.DRAM.Stats()
		reg.Counter(obs.Label("vault_dram_row_hits", "vault", id)).Add(ds.RowHits)
		reg.Counter(obs.Label("vault_dram_activations", "vault", id)).Add(ds.Activations)
		reg.Counter(obs.Label("vault_dram_bytes", "vault", id)).Add(ds.TotalBytes())
		if v.PermutedWrites > 0 {
			reg.Counter(obs.Label("vault_permuted_writes", "vault", id)).Add(v.PermutedWrites)
		}
	}

	// Skew metrics are emitted only on skew-aware runs so that manifests
	// of skew-unaware runs are byte-for-byte unchanged by this feature.
	if e.cfg.SkewAware {
		reg.Counter("skew_tasks_stolen").Add(e.stolenTasks)
		reg.Counter("skew_split_keys").Add(e.splitKeys)
		for _, s := range e.skewStats {
			lbl := func(name string) string { return obs.Label(name, "phase", s.phase) }
			reg.Gauge(lbl("phase_load_max")).Set(s.maxLoad)
			reg.Gauge(lbl("phase_load_mean")).Set(s.meanLoad)
			reg.Gauge(lbl("phase_hot_keys")).Set(float64(s.hotKeys))
		}
	}

	for _, p := range e.phases {
		lbl := func(name string) string { return obs.Label(name, "phase", p.Name) }
		d := p.deltas
		reg.Gauge(lbl("phase_sim_ns")).Set(p.SimulatedNs())
		reg.Gauge(lbl("phase_instructions")).Set(d.insts)
		reg.Counter(lbl("phase_accesses")).Add(d.accesses)
		reg.Counter(lbl("phase_l1_misses")).Add(d.l1.Misses)
		reg.Counter(lbl("phase_dram_row_hits")).Add(d.dram.RowHits)
		reg.Counter(lbl("phase_dram_row_conflicts")).Add(d.dram.RowConflicts)
		reg.Counter(lbl("phase_dram_bytes")).Add(d.dram.TotalBytes())
		reg.Counter(lbl("phase_mesh_bytes")).Add(d.mesh.Bytes)
		reg.Counter(lbl("phase_serdes_bytes")).Add(d.serdesBytes)
		reg.Counter(lbl("phase_stream_fill_bytes")).Add(d.streamFill)
		reg.Counter(lbl("phase_permuted_writes")).Add(d.permWrites)
		if dur := p.SimulatedNs(); dur > 0 && len(e.units) > 0 {
			reg.Gauge(lbl("phase_ipc")).Set(d.insts / (dur * e.cfg.Core.FreqGHz) / float64(len(e.units)))
		}
	}
}

func recordCacheStats(reg *obs.Registry, prefix string, s cache.Stats) {
	reg.Counter(prefix + "_accesses").Add(s.Accesses)
	reg.Counter(prefix + "_hits").Add(s.Hits)
	reg.Counter(prefix + "_misses").Add(s.Misses)
	reg.Counter(prefix + "_dirty_evictions").Add(s.DirtyEvictions)
	reg.Counter(prefix + "_prefetch_issued").Add(s.PrefetchIssued)
	reg.Counter(prefix + "_prefetch_hits").Add(s.PrefetchHits)
}

func recordDRAMStats(reg *obs.Registry, prefix string, s dram.Stats) {
	reg.Counter(prefix + "_reads").Add(s.Reads)
	reg.Counter(prefix + "_writes").Add(s.Writes)
	reg.Counter(prefix + "_read_bytes").Add(s.ReadBytes)
	reg.Counter(prefix + "_write_bytes").Add(s.WriteBytes)
	reg.Counter(prefix + "_activations").Add(s.Activations)
	reg.Counter(prefix + "_row_hits").Add(s.RowHits)
	reg.Counter(prefix + "_row_cold_misses").Add(s.RowColdMisses)
	reg.Counter(prefix + "_row_conflicts").Add(s.RowConflicts)
	reg.Gauge(prefix + "_bus_busy_ns").Set(s.BusNs)
}

// BuildSpans constructs the simulated-time span tree: run → phase → step
// → per-unit task / exchange round. All inputs are deterministic engine
// state, so the tree is identical at every parallelism level. Returns nil
// when observability is disabled.
func (e *Engine) BuildSpans() *obs.Span {
	if e.cfg.Obs == nil {
		return nil
	}
	root := &obs.Span{Name: "run", StartNs: 0, EndNs: e.totalNs}

	// Cumulative step start offsets on the simulated clock.
	starts := make([]float64, len(e.steps)+1)
	for i, st := range e.steps {
		starts[i+1] = starts[i] + st.Ns
	}

	// Exchange records grouped by enclosing step.
	exByStep := make(map[int][]exchangeRecord, len(e.exchanges))
	for _, r := range e.exchanges {
		exByStep[r.step] = append(exByStep[r.step], r)
	}

	buildStep := func(parent *obs.Span, i int) {
		st := e.steps[i]
		s := parent.Child(st.Name, starts[i], starts[i]+st.Ns)
		if st.Instructions > 0 {
			s.SetAttr("instructions", st.Instructions)
		}
		if st.MemNs > 0 {
			s.SetAttr("mem_ns", st.MemNs)
		}
		if st.NetNs > 0 {
			s.SetAttr("net_ns", st.NetNs)
		}
		for _, r := range exByStep[i] {
			x := s.Child("exchange", s.StartNs, s.EndNs)
			x.SetAttr("tuples", float64(r.tuples))
			x.SetAttr("messages", float64(r.messages))
			x.SetAttr("bytes", float64(r.bytes))
			if r.nearMisses > 0 {
				x.SetAttr("overflow_near_misses", float64(r.nearMisses))
			}
		}
		if i < len(e.stepUnits) {
			for uid, ns := range e.stepUnits[i] {
				if ns > 0 {
					s.Child("unit_"+strconv.Itoa(uid), s.StartNs, s.StartNs+ns)
				}
			}
		}
	}

	next := 0 // first step not yet attached
	for _, p := range e.phases {
		for ; next < p.StepStart; next++ {
			buildStep(root, next)
		}
		ps := root.Child(p.Name, p.StartNs, p.EndNs)
		ps.SetAttr("instructions", p.instructions)
		// Phase-delta attribution (same deltas CollectObs exports as
		// phase_* counters), so a Chrome trace of the run carries the
		// byte/miss breakdown on each phase slice without a registry.
		d := p.deltas
		if d.accesses > 0 {
			ps.SetAttr("accesses", float64(d.accesses))
		}
		if d.l1.Misses > 0 {
			ps.SetAttr("l1_misses", float64(d.l1.Misses))
		}
		if b := d.dram.TotalBytes(); b > 0 {
			ps.SetAttr("dram_bytes", float64(b))
		}
		if d.mesh.Bytes > 0 {
			ps.SetAttr("mesh_bytes", float64(d.mesh.Bytes))
		}
		if d.serdesBytes > 0 {
			ps.SetAttr("serdes_bytes", float64(d.serdesBytes))
		}
		for ; next < p.StepEnd; next++ {
			buildStep(ps, next)
		}
	}
	for ; next < len(e.steps); next++ {
		buildStep(root, next)
	}
	return root
}
