package engine

import (
	"testing"

	"github.com/ecocloud-go/mondrian/internal/obs"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// stepProfile is a minimal profile for driving steps in tests.
var stepProfile = StepProfile{Name: "work", InstPerAccess: 4}

func TestPhaseTracking(t *testing.T) {
	cfg := nmpConfig(false)
	cfg.Obs = obs.NewRegistry()
	e := mustEngine(t, cfg)
	r, err := e.Place(0, make([]tuple.Tuple, 256))
	if err != nil {
		t.Fatal(err)
	}
	u := e.Units()[0]

	work := func() {
		e.BeginStep(stepProfile)
		u.ChargeRun(2, 256)
		u.ReadRunBytes(r.Addr, tuple.Size, 256)
		e.EndStep()
	}
	e.BeginPhase("partition")
	work()
	e.EndPhase()
	e.BeginPhase("partition") // Join runs two partition phases
	work()
	e.EndPhase()
	e.Barrier()
	e.BeginPhase("probe")
	work()
	e.EndPhase()

	phases := e.Phases()
	if len(phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(phases))
	}
	wantNames := []string{"partition", "partition#2", "probe"}
	for i, p := range phases {
		if p.Name != wantNames[i] {
			t.Errorf("phase %d = %q, want %q", i, p.Name, wantNames[i])
		}
		if p.SimulatedNs() <= 0 {
			t.Errorf("phase %q has non-positive duration", p.Name)
		}
		if p.deltas.accesses != 256 {
			t.Errorf("phase %q accesses = %d, want 256", p.Name, p.deltas.accesses)
		}
	}
	// The barrier between partition#2 and probe must not be attributed to
	// either phase's step range.
	if phases[1].StepEnd != 2 || phases[2].StepStart != 3 {
		t.Errorf("step ranges %d..%d / %d..%d leave the barrier misattributed",
			phases[1].StepStart, phases[1].StepEnd, phases[2].StepStart, phases[2].StepEnd)
	}

	e.CollectObs(cfg.Obs)
	snap := cfg.Obs.Snapshot()
	if snap.Counters["accesses_total"] != 768 {
		t.Errorf("accesses_total = %d, want 768", snap.Counters["accesses_total"])
	}
	if snap.Counters[`phase_accesses{phase="partition#2"}`] != 256 {
		t.Errorf("per-phase counter missing: %v", snap.Counters[`phase_accesses{phase="partition#2"}`])
	}
	// Per-unit counters arrive via the shard/merge path.
	if snap.Counters[`unit_accesses{unit="0"}`] != 768 {
		t.Errorf("unit_accesses{unit=0} = %d, want 768", snap.Counters[`unit_accesses{unit="0"}`])
	}

	span := e.BuildSpans()
	if span == nil || span.EndNs != e.TotalNs() {
		t.Fatalf("root span mismatch")
	}
	// Children: 3 phase spans + the barrier step.
	var names []string
	for _, c := range span.Children {
		names = append(names, c.Name)
	}
	want := []string{"partition", "partition#2", "barrier", "probe"}
	if len(names) != len(want) {
		t.Fatalf("root children %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("root children %v, want %v", names, want)
		}
	}
}

func TestBeginPhaseNestingPanics(t *testing.T) {
	cfg := nmpConfig(false)
	cfg.Obs = obs.NewRegistry()
	e := mustEngine(t, cfg)
	e.BeginPhase("a")
	defer func() {
		if recover() == nil {
			t.Fatal("nested BeginPhase must panic")
		}
	}()
	e.BeginPhase("b")
}

func TestPhaseHooksDisabledAreNoOps(t *testing.T) {
	e := mustEngine(t, nmpConfig(false))
	// With no registry these must all be safe no-ops, in any order.
	e.EndPhase()
	e.BeginPhase("x")
	e.BeginPhase("y")
	e.EndPhase()
	if e.Phases() != nil {
		t.Fatal("disabled obs must record no phases")
	}
	if e.BuildSpans() != nil {
		t.Fatal("disabled obs must build no spans")
	}
	e.CollectObs(nil) // nil registry: no-op
}
