package engine

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
)

// Host-side parallel execution of per-vault work (see DESIGN.md, "Host
// parallelism vs. simulated parallelism").
//
// The paper's compute units execute independently between barriers, and the
// simulated timing model already reflects that: a step's duration is the
// barrier-synchronized maximum over per-unit times and per-vault busy
// times, regardless of the order the host evaluates the units in. This
// file exploits that property to run the *functional* execution of
// independent per-vault work on a bounded pool of goroutines.
//
// Determinism contract: ForEachVault/ForEachTask produce bit-identical
// simulation results at every worker count. The contract holds because a
// well-formed parallel section touches only state owned by its index —
// its unit (instruction/stall accounting, L1, TLBs, stream buffers, object
// buffer), its vault (DRAM device, row buffers, bump allocator), and its
// own slots of caller-provided slices. Cross-vault interactions (the
// shuffle) go through Exchange (exchange.go), which stages messages and
// applies them in a data-determined order. All reductions (EndStep,
// Energy, stat merges) remain serial, in fixed vault-ID order.

// Workers returns the size of the worker pool a parallel section uses.
// Specs whose units share simulated state (host cores around an LLC and
// chip mesh) always run serially: their accesses are order-dependent.
// For the vault-resident specs the pool is Config.Parallelism
// workers (default GOMAXPROCS when zero), never more than the unit count.
// Values above GOMAXPROCS are honored — the goroutines time-share — so
// race tests exercise real concurrency even on single-core hosts.
func (e *Engine) Workers() int {
	if e.sharedUnits() {
		return 1
	}
	w := e.cfg.Parallelism
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		return 1
	}
	if w > len(e.units) {
		w = len(e.units)
	}
	return w
}

// ForEachVault runs fn(v, UnitForVault(v)) for every vault, fanning the
// calls over the worker pool. fn must touch only vault-v-owned state (its
// unit, its vault's DRAM/allocator, and index-v slots of caller slices).
// Every index runs even after a failure; the lowest-index error is
// returned, matching serial first-error semantics at any worker count.
func (e *Engine) ForEachVault(fn func(v int, u *Unit) error) error {
	if e.spec.HostCores {
		panic("engine: ForEachVault on a host-core system")
	}
	return e.forEach(len(e.units), func(i int) error { return fn(i, e.units[i]) })
}

// ForEachTask runs fn(i) for i in [0,n) over the worker pool, for
// per-bucket or per-group work. The caller must ensure distinct indices
// operate on distinct vaults/units when the engine is parallel (true for
// the vault-resident architectures, where buckets and probe groups are
// 1:1 with vaults; the CPU architecture always runs serially).
func (e *Engine) ForEachTask(n int, fn func(i int) error) error {
	return e.forEachOrdered(n, nil, fn)
}

// ForEachVaultWeighted is ForEachVault with a per-vault work estimate
// (typically the vault's input tuple count). On skew-aware engines the
// tasks are dispatched in LPT (heaviest-first) order so that a straggler
// vault's work starts first and idle workers drain the remaining queue —
// deterministic work stealing. Simulated results are unchanged: the
// permutation is a pure function of the weights, and per-vault sections
// touch only vault-owned state. Skew-unaware engines ignore the weights.
func (e *Engine) ForEachVaultWeighted(weights []float64, fn func(v int, u *Unit) error) error {
	if e.spec.HostCores {
		panic("engine: ForEachVault on a host-core system")
	}
	return e.forEachOrdered(len(e.units), e.stealOrder(len(e.units), weights),
		func(i int) error { return fn(i, e.units[i]) })
}

// ForEachTaskWeighted is ForEachTask with per-task work estimates; see
// ForEachVaultWeighted for the dispatch-order contract.
func (e *Engine) ForEachTaskWeighted(n int, weights []float64, fn func(i int) error) error {
	return e.forEachOrdered(n, e.stealOrder(n, weights), fn)
}

// stealOrder computes the LPT dispatch permutation for n weighted tasks:
// indices sorted by weight descending, index ascending on ties. It returns
// nil (natural order) when stealing is disabled, the spec's units share
// state (dispatch order would change simulated results), the weights are
// malformed, or the permutation is the identity. Positions dispatched out
// of their natural slot count as stolen tasks — a pure function of the
// weights, so the skew_tasks_stolen metric is identical at every
// parallelism level.
func (e *Engine) stealOrder(n int, weights []float64) []int {
	if !e.cfg.SkewAware || e.sharedUnits() || n < 2 || len(weights) != n {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return weights[order[a]] > weights[order[b]]
	})
	stolen := uint64(0)
	for i, idx := range order {
		if idx != i {
			stolen++
		}
	}
	if stolen == 0 {
		return nil
	}
	e.stolenTasks += stolen
	return order
}

// PanicError carries a panic recovered on a worker goroutine together with
// the stack captured at the recovery point. Rethrowing a worker panic from
// the caller's goroutine would otherwise discard the worker's stack — the
// only record of where the invariant actually broke — so forEach wraps the
// value before propagating it. Recovery boundaries (simulate.Protect)
// unwrap it to report the original value with the original stack.
type PanicError struct {
	Value any    // the worker's original panic value
	Stack []byte // debug.Stack() of the worker goroutine at recovery
}

// Error implements error as a single line; the stack stays in Stack.
func (p *PanicError) Error() string {
	return fmt.Sprintf("engine: worker panic: %v", p.Value)
}

// Unwrap exposes a panic value that was itself an error.
func (p *PanicError) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// forEach is the shared driver for natural-order sections.
func (e *Engine) forEach(n int, fn func(i int) error) error {
	return e.forEachOrdered(n, nil, fn)
}

// forEachOrdered runs fn(i) for i in [0,n), dispatching in the given order
// (nil = natural). Work is handed out through an atomic cursor; results
// are indexed by task so error/panic selection is deterministic — the
// lowest-INDEX error wins regardless of dispatch order. Traces buffer per
// unit whenever execution can deviate from natural serial order (parallel
// workers, or a serial pass over a reordered queue) and flush in unit-ID
// order, so the trace stream is identical at every worker count and
// dispatch order.
func (e *Engine) forEachOrdered(n int, order []int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := e.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		buffered := e.tracer != nil && order != nil
		if buffered {
			e.beginTraceBuffer()
		}
		// Serial mode still runs every index and reports the
		// lowest-index error so error behavior matches parallel runs.
		errs := make([]error, n)
		for i := 0; i < n; i++ {
			idx := i
			if order != nil {
				idx = order[i]
			}
			errs[idx] = fn(idx)
		}
		if buffered {
			e.flushTraceBuffer()
		}
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	buffered := e.tracer != nil
	if buffered {
		e.beginTraceBuffer()
	}
	errs := make([]error, n)
	panics := make([]any, n)
	var panicked atomic.Bool
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				idx := i
				if order != nil {
					idx = order[i]
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							if _, ok := r.(*PanicError); !ok {
								r = &PanicError{Value: r, Stack: debug.Stack()}
							}
							panics[idx] = r
							panicked.Store(true)
						}
					}()
					errs[idx] = fn(idx)
				}()
			}
		}()
	}
	wg.Wait()
	if buffered {
		e.flushTraceBuffer()
	}
	if panicked.Load() {
		for _, p := range panics {
			if p != nil {
				panic(p)
			}
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// traceEvent is one buffered tracer call: a single access (count == 1) or
// a run-length-encoded run of count accesses stride bytes apart.
type traceEvent struct {
	unit   int
	kind   AccessKind
	addr   int64
	size   int
	stride int
	count  int
	write  bool
}

// trace emits one access to the installed tracer, buffering per unit
// while a parallel section runs so that concurrent units do not interleave
// nondeterministically in the trace.
func (u *Unit) trace(kind AccessKind, addr int64, size int, write bool) {
	e := u.engine
	if e.tracer == nil {
		return
	}
	if u.buffering {
		u.traceBuf = append(u.traceBuf, traceEvent{unit: u.ID, kind: kind, addr: addr, size: size, count: 1, write: write})
		return
	}
	e.tracer.Access(u.ID, kind, addr, size, write)
}

// traceRun emits a run of count accesses as one record: tracers that speak
// RunTracer get a single run-length-encoded event, others get the expanded
// per-access stream. Runs buffer as one entry during parallel sections.
func (u *Unit) traceRun(kind AccessKind, addr int64, size, stride, count int, write bool) {
	e := u.engine
	if e.tracer == nil || count <= 0 {
		return
	}
	if u.buffering {
		u.traceBuf = append(u.traceBuf, traceEvent{unit: u.ID, kind: kind, addr: addr, size: size, stride: stride, count: count, write: write})
		return
	}
	emitRun(e.tracer, u.ID, kind, addr, size, stride, count, write)
}

// emitRun delivers one run to a tracer, run-length-encoded when supported.
func emitRun(t Tracer, unit int, kind AccessKind, addr int64, size, stride, count int, write bool) {
	if count == 1 {
		t.Access(unit, kind, addr, size, write)
		return
	}
	if rt, ok := t.(RunTracer); ok {
		rt.AccessRun(unit, kind, addr, size, stride, count, write)
		return
	}
	for i := 0; i < count; i++ {
		t.Access(unit, kind, addr+int64(i)*int64(stride), size, write)
	}
}

// beginTraceBuffer switches every unit to buffered tracing for the
// duration of a parallel section.
func (e *Engine) beginTraceBuffer() {
	for _, u := range e.units {
		u.buffering = true
	}
}

// flushTraceBuffer replays buffered events in unit-ID order — the order a
// serial per-vault loop emits them in — and returns units to direct
// tracing.
func (e *Engine) flushTraceBuffer() {
	for _, u := range e.units {
		u.buffering = false
		for _, ev := range u.traceBuf {
			emitRun(e.tracer, ev.unit, ev.kind, ev.addr, ev.size, ev.stride, ev.count, ev.write)
		}
		u.traceBuf = u.traceBuf[:0]
	}
}
