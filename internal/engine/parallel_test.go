package engine

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/ecocloud-go/mondrian/internal/tuple"
)

func TestWorkersPolicy(t *testing.T) {
	cpu := mustEngine(t, cpuConfig())
	if w := cpu.Workers(); w != 1 {
		t.Fatalf("CPU Workers() = %d, want 1 (shared LLC/mesh are order-dependent)", w)
	}

	cfg := nmpConfig(false) // 8 vaults
	def := mustEngine(t, cfg)
	want := runtime.GOMAXPROCS(0)
	if want > 8 {
		want = 8
	}
	if w := def.Workers(); w != want {
		t.Fatalf("default Workers() = %d, want GOMAXPROCS capped at units = %d", w, want)
	}

	cfg.Parallelism = 4
	if w := mustEngine(t, cfg).Workers(); w != 4 {
		t.Fatalf("Parallelism=4 Workers() = %d", w)
	}
	cfg.Parallelism = 99 // above unit count: capped
	if w := mustEngine(t, cfg).Workers(); w != 8 {
		t.Fatalf("Parallelism=99 Workers() = %d, want 8 (unit count)", w)
	}
	cfg.Parallelism = -3
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "negative Parallelism") {
		t.Fatalf("Parallelism=-3 New error = %v, want negative-Parallelism rejection", err)
	}
}

func TestForEachVaultCoversAllIndices(t *testing.T) {
	cfg := nmpConfig(false)
	cfg.Parallelism = 4
	e := mustEngine(t, cfg)
	ran := make([]int32, e.NumVaults())
	if err := e.ForEachVault(func(v int, u *Unit) error {
		if u != e.UnitForVault(v) {
			t.Errorf("vault %d got unit %d", v, u.ID)
		}
		atomic.AddInt32(&ran[v], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for v, n := range ran {
		if n != 1 {
			t.Fatalf("vault %d ran %d times", v, n)
		}
	}
}

func TestForEachVaultPanicsOnCPU(t *testing.T) {
	e := mustEngine(t, cpuConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("ForEachVault on CPU did not panic")
		}
	}()
	_ = e.ForEachVault(func(int, *Unit) error { return nil })
}

// Both serial and parallel execution must run every index and report the
// lowest-index error, so P1 and PN agree on error behavior too.
func TestForEachLowestIndexError(t *testing.T) {
	for _, par := range []int{1, 4} {
		cfg := nmpConfig(false)
		cfg.Parallelism = par
		e := mustEngine(t, cfg)
		var ran atomic.Int32
		err := e.ForEachTask(8, func(i int) error {
			ran.Add(1)
			if i >= 2 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 2 failed" {
			t.Fatalf("parallelism %d: err = %v, want lowest-index error", par, err)
		}
		if ran.Load() != 8 {
			t.Fatalf("parallelism %d: ran %d of 8 indices", par, ran.Load())
		}
	}
}

func TestForEachPanicPropagatesLowestIndex(t *testing.T) {
	cfg := nmpConfig(false)
	cfg.Parallelism = 4
	e := mustEngine(t, cfg)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		// Worker panics propagate wrapped in a *PanicError that keeps the
		// worker goroutine's own stack — the rethrow from the caller's
		// goroutine would otherwise discard it.
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T %v, want *PanicError", r, r)
		}
		if s, ok := pe.Value.(string); !ok || s != "boom 3" {
			t.Fatalf("recovered value %v, want lowest-index panic value", pe.Value)
		}
		if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "parallel_test") {
			t.Fatalf("worker stack not captured:\n%s", pe.Stack)
		}
	}()
	_ = e.ForEachTask(8, func(i int) error {
		if i == 3 || i == 5 {
			panic(fmt.Sprintf("boom %d", i))
		}
		return nil
	})
}

// exchangeOutcome captures everything a shuffle changes in the simulation.
type exchangeOutcome struct {
	totalNs   float64
	dram      string
	destData  [][]tuple.Tuple
	permuted  []uint64
	meshBusy  []float64
	meshBitMM []float64
	linkBusy  []float64
	steps     []StepTiming
}

// runExchange performs a full shuffle round (histogram → ShuffleBegin →
// Exchange → ShuffleEnd) on a fresh engine with a skewed synthetic
// dataset and returns the complete observable outcome.
func runExchange(t *testing.T, cfg Config) exchangeOutcome {
	t.Helper()
	e := mustEngine(t, cfg)
	nv := e.NumVaults()
	perVault := 512

	inputs := make([]*Region, nv)
	for v := 0; v < nv; v++ {
		ts := make([]tuple.Tuple, perVault)
		for i := range ts {
			// Deterministic skewed keys: vault 0 receives ~2× traffic.
			k := uint64(v*perVault+i) * 2654435761
			if i%4 == 0 {
				k = k / uint64(nv) * uint64(nv) // multiples of nv → vault 0
			}
			ts[i] = tuple.Tuple{Key: tuple.Key(k), Val: tuple.Value(i)}
		}
		r, err := e.Place(v, ts)
		if err != nil {
			t.Fatal(err)
		}
		inputs[v] = r
	}

	dests, err := e.MallocPermutable(2*perVault + 64)
	if err != nil {
		t.Fatal(err)
	}
	perSource := make([][]int64, nv)
	for v := 0; v < nv; v++ {
		perSource[v] = make([]int64, nv)
		for _, tp := range inputs[v].Tuples {
			perSource[v][int(uint64(tp.Key)%uint64(nv))]++
		}
	}
	if err := e.ShuffleBegin(dests, perSource); err != nil {
		t.Fatal(err)
	}

	e.BeginStep(StepProfile{Name: "dist", DepIPC: 1, InstPerAccess: 4})
	x := e.NewExchange(dests)
	if err := e.ForEachVault(func(v int, u *Unit) error {
		ob := x.Outbox(v)
		for i := 0; i < inputs[v].Len(); i++ {
			tp := u.LoadTuple(inputs[v], i)
			u.Charge(6)
			if err := ob.Send(int(uint64(tp.Key)%uint64(nv)), tp); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := x.Flush(); err != nil {
		t.Fatal(err)
	}
	e.EndStep()
	e.ShuffleEnd(dests)

	out := exchangeOutcome{
		totalNs: e.TotalNs(),
		dram:    fmt.Sprintf("%+v", e.DRAMStats()),
		steps:   e.Steps(),
	}
	for _, d := range dests {
		out.destData = append(out.destData, append([]tuple.Tuple(nil), d.Tuples...))
	}
	for _, v := range e.Sys.Vaults() {
		out.permuted = append(out.permuted, v.PermutedWrites)
	}
	for _, c := range e.Sys.Cubes {
		out.meshBusy = append(out.meshBusy, c.Mesh.Stats().BusyNs)
		out.meshBitMM = append(out.meshBitMM, c.Mesh.Stats().BitMM)
	}
	for _, l := range e.Sys.Net.Links() {
		out.linkBusy = append(out.linkBusy, l.Stats().BusyNs)
	}
	return out
}

// The tentpole determinism guarantee at engine level: the full observable
// outcome of a shuffle — timing, DRAM stats, tuple layout, interconnect
// occupancy — is bitwise identical at parallelism 1 and 4, with and
// without permutability.
func TestExchangeDeterministicAcrossParallelism(t *testing.T) {
	for _, perm := range []bool{false, true} {
		cfg := nmpConfig(perm)
		cfg.Parallelism = 1
		serial := runExchange(t, cfg)
		cfg.Parallelism = 4
		parallel := runExchange(t, cfg)

		if math.Float64bits(serial.totalNs) != math.Float64bits(parallel.totalNs) {
			t.Fatalf("perm=%v: TotalNs %v != %v", perm, serial.totalNs, parallel.totalNs)
		}
		if serial.dram != parallel.dram {
			t.Fatalf("perm=%v: DRAM stats diverge:\n  P1: %s\n  P4: %s", perm, serial.dram, parallel.dram)
		}
		if !reflect.DeepEqual(serial.destData, parallel.destData) {
			t.Fatalf("perm=%v: destination tuple layout diverges", perm)
		}
		if !reflect.DeepEqual(serial.permuted, parallel.permuted) {
			t.Fatalf("perm=%v: PermutedWrites diverge", perm)
		}
		if !reflect.DeepEqual(serial.meshBusy, parallel.meshBusy) ||
			!reflect.DeepEqual(serial.meshBitMM, parallel.meshBitMM) {
			t.Fatalf("perm=%v: mesh stats diverge", perm)
		}
		if !reflect.DeepEqual(serial.linkBusy, parallel.linkBusy) {
			t.Fatalf("perm=%v: SerDes stats diverge", perm)
		}
		if !reflect.DeepEqual(serial.steps, parallel.steps) {
			t.Fatalf("perm=%v: step timings diverge", perm)
		}
		if perm {
			total := uint64(0)
			for _, p := range parallel.permuted {
				total += p
			}
			if total == 0 {
				t.Fatal("permutable run recorded no permuted writes")
			}
		}
	}
}

// orderTracer records the access stream as comparable strings.
type orderTracer struct{ events []string }

func (o *orderTracer) Access(unit int, kind AccessKind, addr int64, size int, write bool) {
	o.events = append(o.events, fmt.Sprintf("%d/%d/%d/%d/%v", unit, kind, addr, size, write))
}

// Buffered tracing must replay parallel-section events in the exact order
// a serial run emits them.
func TestTraceOrderMatchesSerial(t *testing.T) {
	run := func(par int) []string {
		cfg := nmpConfig(true)
		cfg.Parallelism = par
		e := mustEngine(t, cfg)
		regions := make([]*Region, e.NumVaults())
		for v := range regions {
			ts := make([]tuple.Tuple, 64)
			for i := range ts {
				ts[i] = tuple.Tuple{Key: tuple.Key(v*64 + i)}
			}
			r, err := e.Place(v, ts)
			if err != nil {
				t.Fatal(err)
			}
			regions[v] = r
		}
		tr := &orderTracer{}
		e.SetTracer(tr)
		e.BeginStep(StepProfile{Name: "scan", DepIPC: 1, InstPerAccess: 4})
		if err := e.ForEachVault(func(v int, u *Unit) error {
			for i := 0; i < regions[v].Len(); i++ {
				u.LoadTuple(regions[v], i)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		e.EndStep()
		return tr.events
	}
	serial := run(1)
	parallel := run(4)
	if len(serial) == 0 {
		t.Fatal("no events traced")
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("trace order diverges:\n  P1: %s ...\n  P4: %s ...",
			strings.Join(serial[:4], " "), strings.Join(parallel[:4], " "))
	}
}
