package engine

import (
	"fmt"
	"runtime"
	"sync"
)

// Pool recycles constructed engines across runs (DESIGN.md §16). Engines
// are keyed by their full identity — the resolved SystemSpec plus every
// configuration field that shapes construction or simulated behaviour —
// so an acquired engine is guaranteed interchangeable with a fresh
// New(cfg): Release resets the engine to pristine state (Engine.Reset)
// before parking it, and the reset contract makes reuse invisible in
// report JSON.
//
// The observability registry is deliberately excluded from the key: it is
// a per-run output binding, not part of the system's identity, and is
// re-pointed on every Acquire.
//
// Idle lists are bounded per key (PerKey); releases beyond the bound
// discard the engine to the garbage collector, so a burst of concurrent
// runs cannot pin an unbounded amount of construction state. A Pool is
// safe for concurrent use.
type Pool struct {
	perKey int

	mu    sync.Mutex
	idle  map[string][]*Engine
	stats PoolStats
}

// PoolStats counts pool traffic: Hits are acquisitions served from the
// idle list, Misses fell through to New, Discards are releases dropped
// because the key's idle list was full.
type PoolStats struct {
	Hits     uint64
	Misses   uint64
	Discards uint64
}

// NewPool creates a pool holding at most perKey idle engines per
// configuration key. perKey <= 0 selects the default, GOMAXPROCS — one
// engine per potential concurrent worker.
func NewPool(perKey int) *Pool {
	if perKey <= 0 {
		perKey = runtime.GOMAXPROCS(0)
	}
	return &Pool{perKey: perKey, idle: make(map[string][]*Engine)}
}

// poolKey canonicalizes a configuration into the pool's map key: the
// resolved spec plus the config with the two pointer fields zeroed — Spec
// (already folded into the resolved spec) and Obs (per-run binding).
// Every remaining Config field is a plain value struct, so %+v is a
// complete, collision-free rendering.
func poolKey(cfg Config) (string, error) {
	sp, err := cfg.resolveSpec()
	if err != nil {
		return "", err
	}
	flat := cfg
	flat.Spec = nil
	flat.Obs = nil
	return fmt.Sprintf("%+v|%+v", sp, flat), nil
}

// Acquire returns a pristine engine for cfg: a reset idle engine when one
// is parked under cfg's key, a fresh New(cfg) otherwise. The caller owns
// the engine until Release.
func (p *Pool) Acquire(cfg Config) (*Engine, error) {
	key, err := poolKey(cfg)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if list := p.idle[key]; len(list) > 0 {
		e := list[len(list)-1]
		list[len(list)-1] = nil
		p.idle[key] = list[:len(list)-1]
		p.stats.Hits++
		p.mu.Unlock()
		// Key equality guarantees cfg differs from the engine's own config
		// at most in the pointer fields; adopt the caller's wholesale so
		// the run binds to its registry (and Spec pointer, harmlessly).
		e.cfg = cfg
		return e, nil
	}
	p.stats.Misses++
	p.mu.Unlock()
	return New(cfg)
}

// Release resets e and parks it for reuse (or discards it when the key's
// idle list is full). The caller must be done with every region, reader
// and result slice the run handed out — Reset invalidates them. Release
// of nil is a no-op.
func (p *Pool) Release(e *Engine) {
	if e == nil {
		return
	}
	key, err := poolKey(e.cfg)
	if err != nil {
		return // constructed engines always resolve; defensive only
	}
	e.Reset()
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.idle[key]) >= p.perKey {
		p.stats.Discards++
		return
	}
	p.idle[key] = append(p.idle[key], e)
}

// Stats returns a snapshot of the pool's traffic counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Idle returns the total number of parked engines across all keys.
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, l := range p.idle {
		n += len(l)
	}
	return n
}
