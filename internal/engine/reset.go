package engine

import "github.com/ecocloud-go/mondrian/internal/obs"

// Pooled-lifecycle support: Reset restores a constructed engine to its
// just-built state so the expensive construction work — cache line arrays,
// DRAM devices, NoC meshes, per-unit hardware — is reused across runs
// instead of rebuilt and garbage-collected per run (DESIGN.md §16).
//
// The contract is byte-identity: a run on a reset engine must produce
// report JSON byte-identical to the same run on a fresh New(cfg) engine,
// for every system and operator (TestResetEquivalence in
// internal/simulate). Two kinds of state are therefore distinguished:
//
//   - simulation state (cache/TLB/LLC contents and stats, DRAM row
//     buffers and counters, link/mesh stats, vault allocators and
//     permutation regions, step/phase/exchange/skew accounting) — all of
//     it cleared to construction values;
//   - host-side scratch capacity (per-unit arenas, stream groups, trace
//     buffers, cache run buffers) — retained, so pooled re-runs keep the
//     zero-allocation steady state the columnar kernels rely on.

// Reset restores the engine to its just-constructed state. Regions,
// readers and results handed out by previous runs are invalidated — the
// caller must drop them before resetting (the pool does this by only
// resetting engines whose run has completed). Not safe for concurrent use
// with a running operator.
func (e *Engine) Reset() {
	// Memory fabric: DRAM stats/busy/rows, vault allocators and
	// permutation regions, SerDes links, cube meshes.
	e.Sys.ResetAll()
	if e.llc != nil {
		e.llc.Reset()
	}
	if e.mesh != nil {
		e.mesh.ResetStats()
	}

	for _, u := range e.units {
		if u.L1 != nil {
			u.L1.Reset()
		}
		if u.tlbL1 != nil {
			u.tlbL1.Reset()
		}
		if u.tlbL2 != nil {
			u.tlbL2.Reset()
		}
		if u.ObjBuf != nil {
			u.ObjBuf.Reset()
		}
		if u.Streams != nil {
			u.Streams.Reset()
		}
		u.insts = 0
		u.stallRawNs = 0
		u.accesses = 0
		u.busyNs = 0
		u.instTotal = 0
		u.accessTotal = 0
		u.buffering = false
		u.traceBuf = u.traceBuf[:0]
		// The arena is retained as-is (grow-only scratch; its borrowed
		// buffers were all returned when the previous run's operators
		// finished). The stream group keeps its storage but drops the
		// stale region views so no tuple data outlives the run.
		if u.streamGroup != nil {
			u.streamGroup.Reset()
		}
	}

	e.tracer = nil
	e.inStep = false
	e.profile = StepProfile{}
	e.snap = snapshot{}

	// Run accounting is released, not truncated: results returned by the
	// previous run alias these slices (Result.Steps aliases e.steps), so
	// the next run must append into fresh backing arrays.
	e.steps = nil
	e.totalNs = 0
	e.barrierCnt = 0

	e.phaseOpen = false
	e.phasePrefix = ""
	e.curPhase = PhaseTiming{}
	e.phaseSnap = obsTotals{}
	e.phaseSeen = nil
	e.phases = nil
	e.stepUnits = nil
	e.exchanges = nil

	e.stolenTasks = 0
	e.splitKeys = 0
	e.skewStats = nil
}

// SetObs retargets the engine's observability registry for the next run
// (nil disables phase tracking). Everything else about the configuration
// is immutable for the engine's lifetime; the registry is the one per-run
// binding, which is how the pool hands the same engine to callers with
// different (or no) registries. Call only between runs.
func (e *Engine) SetObs(reg *obs.Registry) { e.cfg.Obs = reg }
