package engine

import (
	"testing"

	"github.com/ecocloud-go/mondrian/internal/dram"
	"github.com/ecocloud-go/mondrian/internal/obs"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// workout runs a fixed little workload on a pristine engine — placement,
// a read-sweep step, a barrier — and returns the accumulated simulated
// time. It must be a pure function of the engine's construction state, so
// identical outcomes on a fresh and a reset engine prove Reset restored
// everything the simulation reads.
func workout(t *testing.T, e *Engine) float64 {
	t.Helper()
	const n = 2048
	r, err := e.Place(0, make([]tuple.Tuple, n))
	if err != nil {
		t.Fatal(err)
	}
	e.BeginStep(StepProfile{Name: "sweep", InstPerAccess: 4})
	u := e.Units()[0]
	for i := 0; i < n; i++ {
		u.Charge(4)
		u.ReadBytes(r.Addr+int64(i)*tuple.Size, tuple.Size)
	}
	e.EndStep()
	e.Barrier()
	return e.TotalNs()
}

func TestResetRestoresPristineState(t *testing.T) {
	for name, cfg := range map[string]Config{
		"cpu":      cpuConfig(),
		"nmp":      nmpConfig(true),
		"mondrian": mondrianConfig(),
	} {
		t.Run(name, func(t *testing.T) {
			e := mustEngine(t, cfg)
			first := workout(t, e)
			firstDRAM := e.DRAMStats()
			if first <= 0 || firstDRAM.Accesses() == 0 {
				t.Fatalf("workout did nothing: total=%v dram=%+v", first, firstDRAM)
			}

			e.Reset()
			if e.TotalNs() != 0 || len(e.Steps()) != 0 || e.Barriers() != 0 {
				t.Fatalf("reset left run accounting: total=%v steps=%d barriers=%d",
					e.TotalNs(), len(e.Steps()), e.Barriers())
			}
			if ds := e.DRAMStats(); ds != (dram.Stats{}) {
				t.Fatalf("reset left DRAM stats: %+v", ds)
			}
			if e.llc != nil && e.llc.Stats().Accesses != 0 {
				t.Fatal("reset left LLC stats")
			}
			for _, u := range e.Units() {
				if u.L1 != nil && u.L1.Stats().Accesses != 0 {
					t.Fatal("reset left L1 stats")
				}
				if u.busyNs != 0 || u.instTotal != 0 || u.accessTotal != 0 {
					t.Fatal("reset left unit accounting")
				}
			}

			// The definitive check: the same workload on the reset engine
			// reproduces the fresh run exactly (same addresses, same
			// row-buffer behaviour, same step timing).
			second := workout(t, e)
			if second != first {
				t.Fatalf("reset run differs from fresh run: %v vs %v", second, first)
			}
			if got := e.DRAMStats(); got != firstDRAM {
				t.Fatalf("reset run DRAM stats differ: %+v vs %+v", got, firstDRAM)
			}
		})
	}
}

func TestResetRetainsScratchCapacity(t *testing.T) {
	e := mustEngine(t, mondrianConfig())
	u := e.Units()[0]

	// Warm the arena and stream group once.
	a := u.Arena()
	a.PutCols(a.Cols(256))
	g := u.StreamGroup()
	r, err := e.Place(0, make([]tuple.Tuple, 512))
	if err != nil {
		t.Fatal(err)
	}
	cycle := func(reg *Region) {
		g.Reset()
		g.AddView(reg, 0, reg.Len())
		if _, err := g.Open(); err != nil {
			t.Fatal(err)
		}
	}
	cycle(r)

	e.Reset()
	if u.streamGroup != g {
		t.Fatal("Reset replaced the unit's stream group")
	}
	if u.Arena() != a {
		t.Fatal("Reset replaced the unit's arena")
	}
	// Pooled re-run steady state: after Reset, arena borrows and stream
	// group cycles must stay allocation-free on retained capacity.
	r2, err := e.Place(0, make([]tuple.Tuple, 512))
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(5, func() { a.PutCols(a.Cols(256)) }); allocs != 0 {
		t.Errorf("arena borrow allocates %.1f times after Reset", allocs)
	}
	if allocs := testing.AllocsPerRun(5, func() { cycle(r2) }); allocs != 0 {
		t.Errorf("stream-group cycle allocates %.1f times after Reset", allocs)
	}
}

func TestPoolReuseAndKeying(t *testing.T) {
	p := NewPool(2)
	cfg := mondrianConfig()

	e1, err := p.Acquire(cfg)
	if err != nil {
		t.Fatal(err)
	}
	workout(t, e1)
	p.Release(e1)
	if p.Idle() != 1 {
		t.Fatalf("idle = %d, want 1", p.Idle())
	}

	e2, err := p.Acquire(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e2 != e1 {
		t.Fatal("same-key acquire did not reuse the released engine")
	}
	if e2.TotalNs() != 0 || len(e2.Steps()) != 0 {
		t.Fatal("pooled engine was not pristine")
	}

	// A different construction-shaping field is a different key.
	other := cfg
	other.L1 = cfg.L1
	other.StreamBuffers = 4
	e3, err := p.Acquire(other)
	if err != nil {
		t.Fatal(err)
	}
	if e3 == e2 {
		t.Fatal("different configs shared one pooled engine")
	}

	st := p.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", st)
	}
}

func TestPoolBoundDiscards(t *testing.T) {
	p := NewPool(2)
	cfg := nmpConfig(false)
	var es []*Engine
	for i := 0; i < 3; i++ {
		e, err := p.Acquire(cfg)
		if err != nil {
			t.Fatal(err)
		}
		es = append(es, e)
	}
	for _, e := range es {
		p.Release(e)
	}
	if p.Idle() != 2 {
		t.Fatalf("idle = %d, want the per-key bound 2", p.Idle())
	}
	if st := p.Stats(); st.Discards != 1 {
		t.Fatalf("stats = %+v, want 1 discard", st)
	}
	p.Release(nil) // no-op
}

func TestPoolRebindsObsRegistry(t *testing.T) {
	p := NewPool(1)
	cfg := mondrianConfig()
	e, err := p.Acquire(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(e)

	reg := obs.NewRegistry()
	cfg.Obs = reg
	e2, err := p.Acquire(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e2 != e {
		t.Fatal("registry binding must not change the pool key")
	}
	if e2.Config().Obs != reg {
		t.Fatal("acquire did not rebind the observability registry")
	}
	e2.SetObs(nil)
	if e2.Config().Obs != nil {
		t.Fatal("SetObs(nil) did not clear the registry")
	}
}
