package engine

import (
	"fmt"

	"github.com/ecocloud-go/mondrian/internal/hmc"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// MallocPermutable allocates one destination buffer per vault for the
// upcoming partitioning phase and — on permutability-capable systems —
// programs each vault controller's permutable-region registers
// (malloc_permutable in Fig. 4a). capTuples is the CPU's best-effort
// overprovisioned estimate per vault (§5.3).
func (e *Engine) MallocPermutable(capTuples int) ([]*Region, error) {
	dests := make([]*Region, e.NumVaults())
	for v := range dests {
		r, err := e.AllocOut(v, capTuples)
		if err != nil {
			return nil, err
		}
		if e.cfg.Permutable {
			size := int64(capTuples) * tuple.Size
			if err := r.Vault.SetPermRegion(r.Addr, size, e.cfg.ObjectSize); err != nil {
				return nil, err
			}
		}
		dests[v] = r
	}
	return dests, nil
}

// ShuffleBegin performs the shuffle_begin protocol of §5.4: every compute
// unit announces the bytes it will send to each destination vault (the
// histogram exchange), each vault controller sums its inbound total and —
// if permutability is enabled — arms its permutable region. A vault whose
// announced inbound data overflows its provisioned buffer raises the
// overflow error for the CPU to handle (skewed datasets, §5.4).
//
// perSource[src][dstVault] is the tuple count unit src will ship to
// dstVault. The exchange and the completion barrier are charged to the
// run for every architecture — conventional distributed partitioning needs
// the same histogram exchange to compute global write offsets.
func (e *Engine) ShuffleBegin(dests []*Region, perSource [][]int64) error {
	if len(dests) != e.NumVaults() {
		return fmt.Errorf("engine: %d destination regions for %d vaults", len(dests), e.NumVaults())
	}
	inbound := make([]int64, e.NumVaults())
	for src, row := range perSource {
		if len(row) != e.NumVaults() {
			return fmt.Errorf("engine: histogram row %d has %d entries, want %d", src, len(row), e.NumVaults())
		}
		u := e.units[src%len(e.units)]
		for dst, n := range row {
			inbound[dst] += n * tuple.Size
			// The announcement write: 8 bytes to a predefined location
			// of the remote vault.
			u.routeLatency(dests[dst].Vault, 8)
		}
	}
	// The exchanged histograms give every destination's exact inbound
	// total, so the overflow check happens here in software for every
	// architecture — conventional systems compute their write offsets from
	// these same counts and must refuse a shuffle that cannot fit, exactly
	// like the permutable controller's hardware check below.
	for dst, r := range dests {
		if inbound[dst] > int64(r.cap)*tuple.Size {
			return fmt.Errorf("%w: vault %d announced %d B inbound for a %d-tuple (%d B) buffer",
				hmc.ErrRegionOverflow, r.Vault.ID, inbound[dst], r.cap, int64(r.cap)*tuple.Size)
		}
	}
	if e.cfg.Permutable {
		for dst, r := range dests {
			if err := r.Vault.BeginShuffle(inbound[dst]); err != nil {
				return err
			}
		}
	}
	e.Barrier()
	return nil
}

// ShuffleEnd performs the shuffle_end protocol: drains partial object
// buffers, waits for every vault controller's completion MSI (modeled as
// one barrier), and disarms permutability.
func (e *Engine) ShuffleEnd(dests []*Region) {
	for _, u := range e.units {
		if u.ObjBuf != nil {
			u.ObjBuf.Drain()
		}
	}
	if e.cfg.Permutable {
		for _, r := range dests {
			r.Vault.EndShuffle()
		}
	}
	e.Barrier()
}
