package engine

import "fmt"

// This file is the declarative system-description layer: a SystemSpec
// names the memory path a system's accesses take and the per-unit
// hardware each compute unit carries, and New assembles engines from it
// without any architecture switches. The three paper architectures are
// rows of archRows; custom compositions set Config.Spec directly.

// PathKind names a registered memory-path implementation (mempath.go).
type PathKind int

// The built-in memory paths.
const (
	// PathCPU walks TLB → L1 → NUCA mesh → LLC → SerDes → vault: the
	// cache-coherent host-processor hierarchy.
	PathCPU PathKind = iota
	// PathCachedVault walks a per-unit L1 → home/remote vault: the
	// cache-backed near-memory core.
	PathCachedVault
	// PathStream goes straight at the vault with no cache in between:
	// the cacheless Mondrian unit (stream buffers carry the reads that
	// must not stall).
	PathStream
)

// String implements fmt.Stringer.
func (k PathKind) String() string {
	switch k {
	case PathCPU:
		return "cpu"
	case PathCachedVault:
		return "cached-vault"
	case PathStream:
		return "stream"
	default:
		return fmt.Sprintf("PathKind(%d)", int(k))
	}
}

// memPaths is the registry of memory-path implementations, keyed by
// PathKind. Config.Validate rejects a spec whose Path has no entry here,
// so a mis-assembled system fails at construction instead of panicking
// mid-run.
var memPaths = map[PathKind]memPath{
	PathCPU:         cpuPath{},
	PathCachedVault: cachedVaultPath{},
	PathStream:      streamPath{},
}

// SystemSpec declaratively describes a system's composition: which
// memory path every access takes and which hardware each compute unit is
// assembled with. The quantitative parameters the composition refers to
// (core model, cache geometries, SerDes topology, cube/vault counts)
// stay in Config; the spec says how they are wired together.
type SystemSpec struct {
	// Path selects the memory-path implementation units access through.
	Path PathKind
	// HostCores builds Config.CPUCores host-side cores that share the
	// LLC and chip mesh, instead of one unit per vault.
	HostCores bool
	// TLB gives each unit two-level address-translation hardware (host
	// cores translate virtual addresses; vault units access physically).
	TLB bool
	// UnitL1 gives each unit a private L1 cache (Config.L1).
	UnitL1 bool
	// SharedLLC builds the shared last-level cache (Config.LLC) behind
	// the chip mesh.
	SharedLLC bool
	// ObjectBuf gives each unit an object buffer (permutable sends).
	ObjectBuf bool
	// StreamBufs gives each vault-resident unit a stream-buffer set of
	// Config.StreamBuffers buffers.
	StreamBufs bool
}

// validate checks the composition's internal consistency: the generic
// constraints here, the path-specific ones via memPath.check.
func (sp SystemSpec) validate() error {
	path, ok := memPaths[sp.Path]
	if !ok {
		return fmt.Errorf("engine: spec has no registered memory path for %v", sp.Path)
	}
	if sp.StreamBufs && sp.HostCores {
		return fmt.Errorf("engine: stream buffers need vault-resident units")
	}
	return path.check(sp)
}

// archRow maps a legacy Arch identifier to its canonical composition
// plus the feature flags that historically toggled per-unit buffers.
type archRow struct {
	spec SystemSpec
	// permObjBuf adds an object buffer per unit when Config.Permutable
	// is set (the NMP-perm composition).
	permObjBuf bool
	// streamToggle adds stream-buffer sets when Config.UseStreams is
	// set (the Mondrian composition).
	streamToggle bool
}

// archRows is the declarative form of the three evaluated architectures
// (paper Table 3): the Arch constants stay as convenient shorthand, and
// this table defines what each one means.
var archRows = map[Arch]archRow{
	CPU: {spec: SystemSpec{
		Path: PathCPU, HostCores: true, TLB: true, UnitL1: true, SharedLLC: true,
	}},
	NMP: {spec: SystemSpec{
		Path: PathCachedVault, UnitL1: true,
	}, permObjBuf: true},
	Mondrian: {spec: SystemSpec{
		Path: PathStream, ObjectBuf: true,
	}, streamToggle: true},
}

// resolveSpec produces the composition New assembles from: Config.Spec
// verbatim when set, otherwise the archRows row for Config.Arch with the
// historical feature toggles applied.
func (c Config) resolveSpec() (SystemSpec, error) {
	if c.Spec != nil {
		sp := *c.Spec
		return sp, sp.validate()
	}
	row, ok := archRows[c.Arch]
	if !ok {
		return SystemSpec{}, fmt.Errorf("engine: unknown architecture %v", c.Arch)
	}
	sp := row.spec
	if row.permObjBuf && c.Permutable {
		sp.ObjectBuf = true
	}
	if row.streamToggle && c.UseStreams {
		sp.StreamBufs = true
	}
	return sp, sp.validate()
}

// Spec returns the resolved composition the engine was assembled from.
func (e *Engine) Spec() SystemSpec { return e.spec }

// sharedUnits reports whether compute units share simulated state (the
// LLC and chip mesh of host-core systems), which makes their accesses
// order-dependent and forces serial evaluation.
func (e *Engine) sharedUnits() bool { return e.spec.HostCores || e.spec.SharedLLC }
