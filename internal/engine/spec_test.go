package engine

import (
	"strings"
	"testing"
)

func TestPathKindString(t *testing.T) {
	for k, want := range map[PathKind]string{
		PathCPU:         "cpu",
		PathCachedVault: "cached-vault",
		PathStream:      "stream",
		PathKind(42):    "PathKind(42)",
	} {
		if got := k.String(); got != want {
			t.Errorf("PathKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

// TestResolveSpecFromArch pins the archRows table: each legacy Arch maps
// to its canonical composition, and the historical feature toggles apply
// only where they historically did.
func TestResolveSpecFromArch(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want SystemSpec
	}{
		{"cpu", cpuConfig(), SystemSpec{
			Path: PathCPU, HostCores: true, TLB: true, UnitL1: true, SharedLLC: true,
		}},
		// Permutability on the CPU must not grow object buffers: the host
		// shuffles through its cache hierarchy.
		{"cpu+perm", func() Config { c := cpuConfig(); c.Permutable = true; return c }(),
			SystemSpec{Path: PathCPU, HostCores: true, TLB: true, UnitL1: true, SharedLLC: true}},
		{"nmp", nmpConfig(false), SystemSpec{Path: PathCachedVault, UnitL1: true}},
		{"nmp+perm", nmpConfig(true), SystemSpec{Path: PathCachedVault, UnitL1: true, ObjectBuf: true}},
		// UseStreams is a Mondrian toggle; NMP ignores it.
		{"nmp+streams", func() Config { c := nmpConfig(false); c.UseStreams = true; return c }(),
			SystemSpec{Path: PathCachedVault, UnitL1: true}},
		{"mondrian", mondrianConfig(), SystemSpec{
			Path: PathStream, ObjectBuf: true, StreamBufs: true,
		}},
		{"mondrian-nostream", func() Config { c := mondrianConfig(); c.UseStreams = false; return c }(),
			SystemSpec{Path: PathStream, ObjectBuf: true}},
	}
	for _, tc := range cases {
		got, err := tc.cfg.resolveSpec()
		if err != nil {
			t.Errorf("%s: resolveSpec error %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: resolveSpec = %+v, want %+v", tc.name, got, tc.want)
		}
		if e := mustEngine(t, tc.cfg); e.Spec() != got {
			t.Errorf("%s: engine.Spec() = %+v, want resolved %+v", tc.name, e.Spec(), got)
		}
	}
}

// TestSpecValidationErrors covers every rejection path of the spec
// layer: unregistered memory paths, unknown architectures, and
// compositions the registered paths refuse.
func TestSpecValidationErrors(t *testing.T) {
	base := nmpConfig(false)
	cases := []struct {
		name string
		spec SystemSpec
		want string
	}{
		{"unregistered path", SystemSpec{Path: PathKind(99)}, "no registered memory path"},
		{"streams on host cores", SystemSpec{Path: PathCPU, HostCores: true, TLB: true, UnitL1: true, SharedLLC: true, StreamBufs: true}, "vault-resident"},
		{"cpu path without host cores", SystemSpec{Path: PathCPU, UnitL1: true, SharedLLC: true, TLB: true}, "cpu path needs host cores"},
		{"cached-vault path without L1", SystemSpec{Path: PathCachedVault}, "needs vault-resident units with an L1"},
		{"stream path with L1", SystemSpec{Path: PathStream, UnitL1: true}, "cacheless"},
	}
	for _, tc := range cases {
		cfg := base
		cfg.Spec = &tc.spec
		if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: New error = %v, want one containing %q", tc.name, err, tc.want)
		}
	}

	cfg := base
	cfg.Arch = Arch(7)
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "unknown architecture") {
		t.Errorf("unknown arch: New error = %v", err)
	}
}

// TestConfigRejectsNegativeKnobs pins the tightened Config validation:
// negative BarrierNs and StreamBuffers are construction-time errors.
func TestConfigRejectsNegativeKnobs(t *testing.T) {
	cfg := nmpConfig(false)
	cfg.BarrierNs = -1
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "BarrierNs") {
		t.Fatalf("BarrierNs=-1 New error = %v", err)
	}
	cfg = mondrianConfig()
	cfg.StreamBuffers = -4
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "StreamBuffers") {
		t.Fatalf("StreamBuffers=-4 New error = %v", err)
	}
}

// TestCustomSpecAssembly builds an engine from an explicit Config.Spec —
// a cacheless streaming system with a custom stream-buffer count — and
// checks the assembled units match the declaration.
func TestCustomSpecAssembly(t *testing.T) {
	cfg := mondrianConfig()
	cfg.Spec = &SystemSpec{Path: PathStream, ObjectBuf: true, StreamBufs: true}
	cfg.StreamBuffers = 4
	e := mustEngine(t, cfg)
	if e.Spec() != *cfg.Spec {
		t.Fatalf("engine.Spec() = %+v, want %+v", e.Spec(), *cfg.Spec)
	}
	for _, u := range e.Units() {
		if u.L1 != nil || u.Streams == nil || u.ObjBuf == nil || u.Vault == nil {
			t.Fatalf("unit %d not assembled per spec", u.ID)
		}
		if u.Streams.Buffers() != 4 {
			t.Fatalf("unit %d has %d stream buffers, want 4", u.ID, u.Streams.Buffers())
		}
	}
}
