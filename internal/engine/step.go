package engine

import (
	"github.com/ecocloud-go/mondrian/internal/cores"
	"github.com/ecocloud-go/mondrian/internal/energy"
)

// StepProfile characterizes one step's inner loop for the core timing
// model. The values come from the operator cost model
// (internal/operators/costs.go) and stand in for the per-loop IPC and MLP
// behaviour the paper measured with cycle-accurate simulation.
type StepProfile struct {
	Name string
	// DepIPC caps issue throughput due to dependency chains (0 = issue
	// width).
	DepIPC float64
	// InstPerAccess is the mean instruction distance between memory
	// accesses, feeding the structural MLP estimate.
	InstPerAccess float64
	// StreamFed marks steps whose reads flow through stream buffers.
	StreamFed bool
	// MLPOverride, when positive, pins the stall-overlap factor (used
	// where dependent misses serialize below the structural estimate).
	MLPOverride float64
}

// StepTiming is the outcome of one barrier-synchronized step.
type StepTiming struct {
	Name string
	// Ns is the step's wall-clock contribution: the max of compute,
	// memory and link bounds.
	Ns float64
	// MaxUnitNs is the slowest compute unit's time (compute + stalls).
	MaxUnitNs float64
	// MemNs is the largest per-vault DRAM busy time in this step.
	MemNs float64
	// NetNs is the largest SerDes link busy time in this step.
	NetNs float64
	// AggIPC is Σ instructions / (Ns × Σ unit frequency) — comparable to
	// the per-core IPCs the paper quotes.
	AggIPC float64
	// Instructions across all units.
	Instructions float64

	bytes uint64 // DRAM bytes moved during the step
}

// BandwidthPerVaultGBs returns the average per-vault DRAM bandwidth drawn
// during the step, the metric the paper quotes (e.g. "NMP utilizes only
// 1.0 GB/s of memory bandwidth per vault").
func (s StepTiming) BandwidthPerVaultGBs(bytes uint64, vaults int) float64 {
	if s.Ns == 0 || vaults == 0 {
		return 0
	}
	return float64(bytes) / s.Ns / float64(vaults)
}

// snapshot freezes monotone busy counters so EndStep can compute deltas.
type snapshot struct {
	vaultBusy []float64
	linkBusy  []float64
	dramBytes uint64
}

func (e *Engine) takeSnapshot() snapshot {
	var s snapshot
	for _, v := range e.Sys.Vaults() {
		s.vaultBusy = append(s.vaultBusy, v.DRAM.BusyNs())
	}
	for _, l := range e.Sys.Net.Links() {
		s.linkBusy = append(s.linkBusy, l.Stats().BusyNs)
	}
	s.dramBytes = e.Sys.TotalDRAMStats().TotalBytes()
	return s
}

// BeginStep opens a new step; all Unit work until EndStep is attributed
// to it. Steps must not nest.
func (e *Engine) BeginStep(p StepProfile) {
	if e.inStep {
		panic("engine: BeginStep while a step is open")
	}
	e.inStep = true
	e.profile = p
	e.snap = e.takeSnapshot()
	for _, u := range e.units {
		u.insts = 0
		u.stallRawNs = 0
		u.accesses = 0
	}
}

// EndStep closes the current step, computes its barrier-synchronized
// duration, and accumulates run totals.
func (e *Engine) EndStep() StepTiming {
	if !e.inStep {
		panic("engine: EndStep without BeginStep")
	}
	e.inStep = false
	p := e.profile

	var unitNs []float64
	if e.cfg.Obs != nil {
		unitNs = make([]float64, len(e.units))
	}
	var maxUnit, sumInsts float64
	for i, u := range e.units {
		w := cores.Work{
			Instructions:     u.insts,
			DependencyIPC:    p.DepIPC,
			MemStallNs:       u.stallRawNs,
			InstPerMemAccess: p.InstPerAccess,
			StreamFed:        p.StreamFed,
			MLPOverride:      p.MLPOverride,
		}
		r := e.cfg.Core.PhaseTime(w)
		u.busyNs += r.TimeNs
		u.accessTotal += u.accesses
		u.accesses = 0 // folded into accessTotal; keeps between-step snapshots exact
		if r.TimeNs > maxUnit {
			maxUnit = r.TimeNs
		}
		sumInsts += u.insts
		if unitNs != nil {
			unitNs[i] = r.TimeNs
		}
	}

	var memNs, netNs float64
	for i, v := range e.Sys.Vaults() {
		if d := v.DRAM.BusyNs() - e.snap.vaultBusy[i]; d > memNs {
			memNs = d
		}
	}
	for i, l := range e.Sys.Net.Links() {
		if d := l.Stats().BusyNs - e.snap.linkBusy[i]; d > netNs {
			netNs = d
		}
	}

	ns := maxUnit
	if memNs > ns {
		ns = memNs
	}
	if netNs > ns {
		ns = netNs
	}
	st := StepTiming{
		Name:         p.Name,
		Ns:           ns,
		MaxUnitNs:    maxUnit,
		MemNs:        memNs,
		NetNs:        netNs,
		Instructions: sumInsts,
	}
	if ns > 0 && len(e.units) > 0 {
		st.AggIPC = sumInsts / (ns * e.cfg.Core.FreqGHz) / float64(len(e.units))
	}
	st.bytes = e.Sys.TotalDRAMStats().TotalBytes() - e.snap.dramBytes
	e.steps = append(e.steps, st)
	if unitNs != nil {
		e.stepUnits = append(e.stepUnits, unitNs)
	}
	e.totalNs += ns
	return st
}

// StepBytes returns the DRAM bytes the step moved (for bandwidth reports).
func (s StepTiming) StepBytes() uint64 { return s.bytes }

// Barrier charges one all-to-all notification (MSI interrupt vector,
// §5.4) to the run.
func (e *Engine) Barrier() {
	e.totalNs += e.cfg.BarrierNs
	e.barrierCnt++
	e.steps = append(e.steps, StepTiming{Name: "barrier", Ns: e.cfg.BarrierNs})
	if e.cfg.Obs != nil {
		e.stepUnits = append(e.stepUnits, nil) // keep stepUnits aligned with steps
	}
}

// Barriers returns how many barriers the run executed.
func (e *Engine) Barriers() int { return e.barrierCnt }

// Energy converts the run's accumulated activity into the paper's Fig. 8
// breakdown using the Table 4 constants.
func (e *Engine) Energy(p energy.Params) energy.Breakdown {
	seconds := e.totalNs * 1e-9
	var b energy.Breakdown

	ds := e.Sys.TotalDRAMStats()
	b.DRAMDynamic = p.DRAMDynamicJ(ds.Activations, ds.TotalBytes())
	b.DRAMStatic = p.DRAMStaticJ(len(e.Sys.Cubes), seconds)

	for _, u := range e.units {
		util := 0.0
		if u.busyNs > 0 {
			util = u.instTotal / (u.busyNs * e.cfg.Core.FreqGHz) / float64(e.cfg.Core.IssueWidth)
		}
		b.Cores += p.CoreUtilJ(e.cfg.Core.PeakPowerW, u.busyNs*1e-9, seconds, util)
	}
	if e.llc != nil {
		b.LLC = p.LLCJ(e.llc.Stats().Accesses, seconds)
	}

	var bitMM float64
	meshes := 0
	for _, c := range e.Sys.Cubes {
		bitMM += c.Mesh.Stats().BitMM
		meshes++
	}
	if e.mesh != nil {
		bitMM += e.mesh.Stats().BitMM
		meshes++
	}
	b.Network = p.NoCJ(bitMM, meshes, seconds)
	for _, l := range e.Sys.Net.Links() {
		s := l.Stats()
		b.Network += p.SerDesJ(s.Bytes, l.BandwidthGbps, s.BusyNs, e.totalNs)
	}
	return b
}
