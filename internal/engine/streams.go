package engine

import (
	"fmt"

	"github.com/ecocloud-go/mondrian/internal/hmc"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// StreamReader consumes one region's tuples in order. On Mondrian units
// the reads flow through the hardware stream buffers (binding prefetch —
// the core never stalls, and DRAM fill traffic accrues as vault busy
// time); on cache-backed units they are ordinary demand reads, which the
// L1 and its next-line prefetcher filter.
type StreamReader struct {
	u      *Unit
	r      *Region
	pos    int
	stream int // stream-buffer slot, or -1 for demand reads
}

// OpenStreams ties the given regions to the unit's stream buffers
// (prefetch_in_str_buf, Fig. 4b) and returns one reader per region. At
// most Streams.Buffers() regions (hmc.NumStreamBuffers by default; see
// engine.Config.StreamBuffers) can stream simultaneously on Mondrian
// units; cache-backed units accept any count.
func (u *Unit) OpenStreams(regions ...*Region) ([]*StreamReader, error) {
	readers := make([]*StreamReader, len(regions))
	if u.Streams == nil {
		for i, r := range regions {
			readers[i] = &StreamReader{u: u, r: r, stream: -1}
		}
		return readers, nil
	}
	ranges := make([]hmc.Range, len(regions))
	for i, r := range regions {
		if r.Vault != u.Vault {
			return nil, fmt.Errorf("engine: region in vault %d streamed from unit %d (vault %d)",
				r.Vault.ID, u.ID, u.Vault.ID)
		}
		ranges[i] = hmc.Range{Start: r.Addr, End: r.addrOf(len(r.Tuples))}
		readers[i] = &StreamReader{u: u, r: r, stream: i}
	}
	if err := u.Streams.Configure(ranges); err != nil {
		return nil, err
	}
	return readers, nil
}

// Peek returns the tuple at the head of the stream without consuming it.
// Peeks are free: the head entry already sits in the stream buffer (or
// was loaded by the preceding Next's cache fill).
func (s *StreamReader) Peek() (tuple.Tuple, bool) {
	if s.pos >= len(s.r.Tuples) {
		return tuple.Tuple{}, false
	}
	return s.r.Tuples[s.pos], true
}

// Next consumes and returns the head tuple (read_stream_heads +
// pop_input_stream in Fig. 4b).
func (s *StreamReader) Next() (tuple.Tuple, bool) {
	if s.pos >= len(s.r.Tuples) {
		return tuple.Tuple{}, false
	}
	t := s.r.Tuples[s.pos]
	if s.stream >= 0 {
		if !s.u.Streams.Pop(s.stream, tuple.Size) {
			panic("engine: stream buffer out of sync with region")
		}
	} else {
		s.u.ReadBytes(s.r.addrOf(s.pos), tuple.Size)
	}
	s.pos++
	return t, true
}

// NextRun consumes the next n tuples as one sequential run and returns
// them (a view into the region — callers must not mutate it). The charged
// traffic is byte-identical to n Next calls: on stream-buffer units the
// refill sequence is a deterministic function of the pop sequence, and on
// cache-backed units the demand reads batch through ReadRunBytes.
func (s *StreamReader) NextRun(n int) []tuple.Tuple {
	if n <= 0 {
		return nil
	}
	if s.pos+n > len(s.r.Tuples) {
		panic(fmt.Sprintf("engine: stream run of %d past %d remaining", n, len(s.r.Tuples)-s.pos))
	}
	ts := s.r.Tuples[s.pos : s.pos+n]
	if s.stream >= 0 {
		if !s.u.Streams.PopRun(s.stream, tuple.Size, n) {
			panic("engine: stream buffer out of sync with region")
		}
	} else {
		s.u.ReadRunBytes(s.r.addrOf(s.pos), tuple.Size, n)
	}
	s.pos += n
	return ts
}

// Streamed reports whether the reader consumes through the vault's
// stream buffers (pops are free; only granule refills touch DRAM) as
// opposed to issuing a demand read per tuple.
func (s *StreamReader) Streamed() bool { return s.stream >= 0 }

// NextFills reports whether the next Next() would issue DRAM refill
// traffic. Only meaningful for streamed readers; it has no side effects.
func (s *StreamReader) NextFills() bool {
	return s.u.Streams.PopFills(s.stream, tuple.Size)
}

// Remaining returns how many tuples are left.
func (s *StreamReader) Remaining() int { return len(s.r.Tuples) - s.pos }

// Done reports whether the stream is exhausted.
func (s *StreamReader) Done() bool { return s.pos >= len(s.r.Tuples) }

// StreamGroup is a reusable OpenStreams: it owns the view, reader and
// range storage that OpenStreams would otherwise allocate per call, so
// per-group stream setup inside hot loops (a sort's merge groups run
// thousands of times per pass) reaches a zero-allocation steady state.
// Usage per group: Reset, AddView for each run, then Open.
//
// The readers returned by Open are valid until the next Reset. A
// StreamGroup is owned by its unit and is not safe for concurrent use.
type StreamGroup struct {
	u       *Unit
	views   []Region
	readers []StreamReader
	ptrs    []*StreamReader
	ranges  []hmc.Range
}

// StreamGroup returns the unit's reusable stream-group storage,
// creating it on first use.
func (u *Unit) StreamGroup() *StreamGroup {
	if u.streamGroup == nil {
		u.streamGroup = &StreamGroup{u: u}
	}
	return u.streamGroup
}

// Reset empties the group for a new set of views, keeping capacity.
func (g *StreamGroup) Reset() {
	g.views = g.views[:0]
	g.readers = g.readers[:0]
	g.ptrs = g.ptrs[:0]
	g.ranges = g.ranges[:0]
}

// AddView adds tuples [start, end) of r as one stream — the same view
// r.View(start, end) would describe, built into the group's storage.
func (g *StreamGroup) AddView(r *Region, start, end int) {
	if start < 0 || end > len(r.Tuples) || start > end {
		panic(fmt.Sprintf("engine: view [%d,%d) of region with %d tuples", start, end, len(r.Tuples)))
	}
	v := Region{
		Vault:  r.Vault,
		Addr:   r.addrOf(start),
		Tuples: r.Tuples[start:end:end],
		cap:    end - start,
	}
	if r.keysOK && len(r.keys) == len(r.Tuples) {
		v.keys = r.keys[start:end:end]
		v.keysOK = true
	}
	g.views = append(g.views, v)
}

// Open ties the added views to the unit's stream buffers and returns
// one reader per view, exactly as OpenStreams would — but into reused
// storage. The result slice is invalidated by the next Reset.
func (g *StreamGroup) Open() ([]*StreamReader, error) {
	u := g.u
	for i := range g.views {
		r := &g.views[i]
		if u.Streams == nil {
			g.readers = append(g.readers, StreamReader{u: u, r: r, stream: -1})
			continue
		}
		if r.Vault != u.Vault {
			return nil, fmt.Errorf("engine: region in vault %d streamed from unit %d (vault %d)",
				r.Vault.ID, u.ID, u.Vault.ID)
		}
		g.ranges = append(g.ranges, hmc.Range{Start: r.Addr, End: r.addrOf(len(r.Tuples))})
		g.readers = append(g.readers, StreamReader{u: u, r: r, stream: i})
	}
	if u.Streams != nil {
		if err := u.Streams.Configure(g.ranges); err != nil {
			return nil, err
		}
	}
	for i := range g.readers {
		g.ptrs = append(g.ptrs, &g.readers[i])
	}
	return g.ptrs, nil
}

// View returns the group's view i, for callers that need the region
// (e.g. key columns) alongside the reader.
func (g *StreamGroup) View(i int) *Region { return &g.views[i] }
