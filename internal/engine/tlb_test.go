package engine

import (
	"testing"

	"github.com/ecocloud-go/mondrian/internal/tuple"
	"github.com/ecocloud-go/mondrian/internal/workload"
)

// TLB behaviour of the CPU architecture (§5.1: the CPU translates virtual
// addresses; NMP units are physically addressed and carry no TLBs).

func TestNMPUnitsHaveNoTLB(t *testing.T) {
	e := mustEngine(t, nmpConfig(false))
	if e.Units()[0].tlbL1 != nil || e.Units()[0].tlbL2 != nil {
		t.Fatal("NMP unit carries TLBs")
	}
	m := mustEngine(t, mondrianConfig())
	if m.Units()[0].tlbL1 != nil {
		t.Fatal("Mondrian unit carries TLBs")
	}
}

func TestCPUSequentialScanRarelyWalks(t *testing.T) {
	e := mustEngine(t, cpuConfig())
	ts := workload.Sequential("s", 16<<10).Tuples // 256 KB = 64 pages
	r, err := e.Place(0, ts)
	if err != nil {
		t.Fatal(err)
	}
	u := e.Units()[0]
	e.BeginStep(StepProfile{Name: "scan", DepIPC: 2, InstPerAccess: 4})
	for i := 0; i < r.Len(); i++ {
		u.LoadTuple(r, i)
	}
	e.EndStep()
	s1 := u.tlbL1.Stats()
	// One TLB miss per 4 KB page: 64 misses out of 16 Ki accesses...
	// L1-TLB misses can exceed pages slightly (set conflicts), but the
	// miss RATE must be tiny for a sequential walk.
	if rate := float64(s1.Misses) / float64(s1.Accesses); rate > 0.02 {
		t.Fatalf("sequential scan TLB miss rate %.3f, want < 0.02", rate)
	}
}

func TestCPURandomScatterWalks(t *testing.T) {
	e := mustEngine(t, cpuConfig())
	// Scatter writes over a working set of 2048 pages — far beyond the
	// 64-entry L1 TLB and the 1024-entry L2 TLB.
	regions := make([]*Region, 0, 64)
	for v := 0; v < e.NumVaults(); v++ {
		r, err := e.AllocOut(v, 8<<10) // 128 KB per vault
		if err != nil {
			t.Fatal(err)
		}
		regions = append(regions, r)
	}
	u := e.Units()[0]
	e.BeginStep(StepProfile{Name: "scatter", DepIPC: 1, InstPerAccess: 4})
	rnd := uint64(12345)
	for i := 0; i < 20000; i++ {
		rnd = rnd*6364136223846793005 + 1
		v := int(rnd>>33) % len(regions)
		idx := int(rnd>>20) % regions[v].Cap()
		u.StoreTuple(regions[v], idx, tuple.Tuple{Key: tuple.Key(i)})
	}
	e.EndStep()
	s1 := u.tlbL1.Stats()
	if rate := float64(s1.Misses) / float64(s1.Accesses); rate < 0.5 {
		t.Fatalf("scatter TLB miss rate %.3f, want > 0.5", rate)
	}
	// Page walks must have produced real DRAM traffic in the PTE region
	// beyond the data writes themselves.
	if u.tlbL2.Stats().Misses == 0 {
		t.Fatal("scatter never missed the L2 TLB")
	}
}

func TestPageWalkChargesMemory(t *testing.T) {
	e := mustEngine(t, cpuConfig())
	u := e.Units()[0]
	r, err := e.AllocOut(0, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	e.BeginStep(StepProfile{Name: "walk", DepIPC: 1, InstPerAccess: 1})
	before := e.DRAMStats().Reads
	// One access to a brand new page: TLB cold miss → two-level walk.
	u.StoreTuple(r, 0, tuple.Tuple{})
	walkReads := e.DRAMStats().Reads - before
	e.EndStep()
	if walkReads == 0 {
		t.Fatal("page walk generated no memory reads")
	}
}

func TestTLBStallContributesToStep(t *testing.T) {
	// The same scatter work must take longer on the CPU when its TLB
	// thrashes than a hypothetical repeat with warm TLBs.
	e := mustEngine(t, cpuConfig())
	u := e.Units()[0]
	r, err := e.AllocOut(0, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	prof := StepProfile{Name: "x", DepIPC: 1, InstPerAccess: 4}
	e.BeginStep(prof)
	for i := 0; i < r.Cap(); i++ {
		u.StoreTuple(r, i, tuple.Tuple{Key: tuple.Key(i)})
	}
	cold := e.EndStep()
	e.BeginStep(prof)
	for i := 0; i < r.Cap(); i++ {
		u.StoreTuple(r, i, tuple.Tuple{Key: tuple.Key(i)})
	}
	warm := e.EndStep()
	if warm.Ns >= cold.Ns {
		t.Fatalf("warm pass (%v) not faster than cold pass (%v)", warm.Ns, cold.Ns)
	}
}
