package engine

import (
	"fmt"

	"github.com/ecocloud-go/mondrian/internal/cache"
	"github.com/ecocloud-go/mondrian/internal/hmc"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// Unit is one compute unit: a host core (host-core specs) or the
// per-vault logic-layer core (vault-resident specs). Operators run on
// Units; every accessor both performs the functional operation on tuples
// and routes the memory traffic through the unit's memory path (mempath.go)
// so that DRAM row behaviour, interconnect occupancy and core stalls
// accumulate. The accessors below carry only the path-independent
// bookkeeping — the architecture-specific walks live behind the memPath
// interface.
type Unit struct {
	ID     int
	engine *Engine
	path   memPath

	Vault   *hmc.Vault // home vault (nil for host cores)
	L1      *cache.Cache
	Streams *hmc.StreamBufferSet
	ObjBuf  *hmc.ObjectBuffer

	tile int // chip-mesh tile (host cores only)

	// Host cores translate virtual addresses; the vault-resident units
	// access their vaults physically (§5.1), so only host cores carry
	// TLBs. Random access over working sets far beyond TLB reach adds
	// page-walk memory accesses — a first-class cost in full-system
	// simulation.
	tlbL1, tlbL2 *cache.Cache

	// Per-step accounting (reset by BeginStep).
	insts      float64
	stallRawNs float64
	accesses   uint64

	// Run accounting.
	busyNs      float64
	instTotal   float64
	accessTotal uint64 // accesses folded in at each EndStep

	// Trace buffering during parallel sections (parallel.go): events are
	// collected per unit and replayed in unit-ID order at the join.
	buffering bool
	traceBuf  []traceEvent

	// runRes is the reusable tally for bulk cache runs (accessRun).
	runRes cache.RunResult

	// arena is the unit's scratch allocator for the columnar kernels
	// (Config.Columnar): grow-only, so steady-state batches allocate
	// nothing. Single-threaded by per-unit ownership.
	arena tuple.Arena

	// streamGroup is the unit's reusable OpenStreams storage
	// (StreamGroup in streams.go); lazily created.
	streamGroup *StreamGroup
}

// Bulk reports whether the batched run-based fast path is enabled for
// this unit's engine (see Config.NoBulk). Operators consult it to pick
// between their run-based loops and the per-tuple reference loops.
func (u *Unit) Bulk() bool { return !u.engine.cfg.NoBulk }

// Columnar reports whether the structure-of-arrays host kernels are
// enabled (see Config.Columnar). Columnar is a refinement of the bulk
// path, so it is false whenever NoBulk disables batching.
func (u *Unit) Columnar() bool { return u.engine.cfg.Columnar && !u.engine.cfg.NoBulk }

// Arena returns the unit's columnar scratch arena. Operators borrow
// columns / id arrays / staging buffers per batch and return them, so
// the warmed steady state allocates nothing.
func (u *Unit) Arena() *tuple.Arena { return &u.arena }

// Charge adds retired instructions to the unit's current step. The
// operator cost model (internal/operators) decides the amounts; SIMD
// execution charges fewer instructions per tuple.
func (u *Unit) Charge(insts float64) {
	if insts < 0 {
		panic("engine: negative instruction charge")
	}
	u.insts += insts
	u.instTotal += insts
}

// Instructions returns the instructions charged in the current step.
func (u *Unit) Instructions() float64 { return u.insts }

// ChargeRun adds n per-tuple instruction charges — the same accumulation,
// in the same order, as n Charge(insts) calls (the addends are identical,
// so the float sums agree bit-for-bit).
func (u *Unit) ChargeRun(insts float64, n int) {
	if insts < 0 {
		panic("engine: negative instruction charge")
	}
	for i := 0; i < n; i++ {
		u.insts += insts
		u.instTotal += insts
	}
}

// --- demand access paths -------------------------------------------------

// ReadBytes performs a demand read. Cache hits are free (their latency is
// folded into the dependency IPC); misses charge the full path latency as
// raw stall, which EndStep divides by the core's sustainable MLP.
func (u *Unit) ReadBytes(addr int64, size int) {
	u.access(addr, size, false)
}

// WriteBytes performs a demand write. On the CPU the write-allocate cache
// fetches the block (read-for-ownership) and the miss stalls the store
// pipeline; on the NMP architectures stores are fire-and-forget (no
// coherence, store buffers) and only occupy DRAM/link bandwidth.
func (u *Unit) WriteBytes(addr int64, size int) {
	u.access(addr, size, true)
}

// ReadRunBytes performs count sequential demand reads of stride bytes
// each, starting at addr — accounting byte-identical to count ReadBytes
// calls, but retired with one walk over the touched cache blocks (or DRAM
// rows) instead of one full traversal per element.
func (u *Unit) ReadRunBytes(addr int64, stride, count int) {
	u.accessRun(addr, stride, count, false)
}

// WriteRunBytes is the write-side counterpart of ReadRunBytes.
func (u *Unit) WriteRunBytes(addr int64, stride, count int) {
	u.accessRun(addr, stride, count, true)
}

func (u *Unit) access(addr int64, size int, write bool) {
	if size <= 0 {
		panic("engine: access size must be positive")
	}
	u.accesses++
	u.trace(TraceDemand, addr, size, write)
	u.path.access(u, addr, size, write)
}

// accessRun is the bulk demand path: one trace record, one accesses tally,
// and one walk over the run's cache blocks / DRAM rows for count elements.
// Shapes the unit's memory path cannot prove equivalent — unaligned
// strides, runs leaving the unit's home vault, NoBulk mode — fall back to
// per-element access calls, which are the reference semantics by
// definition.
func (u *Unit) accessRun(addr int64, stride, count int, write bool) {
	if count <= 0 {
		return
	}
	if stride <= 0 {
		panic("engine: access size must be positive")
	}
	if count == 1 || u.engine.cfg.NoBulk || !u.path.runnable(u, addr, stride, count) {
		for i := 0; i < count; i++ {
			u.access(addr+int64(i)*int64(stride), stride, write)
		}
		return
	}
	u.accesses += uint64(count)
	u.traceRun(TraceDemand, addr, stride, stride, count, write)
	u.path.accessRun(u, addr, stride, count, write)
}

// --- tuple-level accessors ------------------------------------------------

// LoadTuple reads tuple idx of region r.
func (u *Unit) LoadTuple(r *Region, idx int) tuple.Tuple {
	if idx < 0 || idx >= len(r.Tuples) {
		panic(fmt.Sprintf("engine: load index %d outside region of %d", idx, len(r.Tuples)))
	}
	u.ReadBytes(r.addrOf(idx), tuple.Size)
	return r.Tuples[idx]
}

// StoreTuple writes tuple idx of region r in place (growing as needed).
func (u *Unit) StoreTuple(r *Region, idx int, t tuple.Tuple) {
	if idx < 0 || idx >= r.cap {
		panic(fmt.Sprintf("engine: store index %d outside capacity %d", idx, r.cap))
	}
	ensureLen(r, idx+1)
	r.Tuples[idx] = t
	r.keysOK = false
	u.WriteBytes(r.addrOf(idx), tuple.Size)
}

// AppendLocal appends a tuple to a region in the unit's own vault
// (sequential output writes of probe-phase algorithms).
func (u *Unit) AppendLocal(r *Region, t tuple.Tuple) {
	if len(r.Tuples) >= r.cap {
		panic("engine: append past region capacity")
	}
	idx := len(r.Tuples)
	r.Tuples = append(r.Tuples, t)
	r.keysOK = false
	u.WriteBytes(r.addrOf(idx), tuple.Size)
}

// LoadRun reads tuples [start, start+n) of region r as one sequential run
// and returns them (a view into the region's backing store — callers must
// not mutate it). Accounting is byte-identical to n LoadTuple calls.
func (u *Unit) LoadRun(r *Region, start, n int) []tuple.Tuple {
	if n == 0 {
		return nil
	}
	if start < 0 || n < 0 || start+n > len(r.Tuples) {
		panic(fmt.Sprintf("engine: load run [%d,+%d) outside region of %d", start, n, len(r.Tuples)))
	}
	u.ReadRunBytes(r.addrOf(start), tuple.Size, n)
	return r.Tuples[start : start+n]
}

// StoreRun writes ts into region r at start as one sequential run —
// accounting byte-identical to len(ts) StoreTuple calls.
func (u *Unit) StoreRun(r *Region, start int, ts []tuple.Tuple) {
	if len(ts) == 0 {
		return
	}
	if start < 0 || start+len(ts) > r.cap {
		panic(fmt.Sprintf("engine: store run [%d,+%d) outside capacity %d", start, len(ts), r.cap))
	}
	ensureLen(r, start+len(ts))
	copy(r.Tuples[start:], ts)
	r.keysOK = false
	u.WriteRunBytes(r.addrOf(start), tuple.Size, len(ts))
}

// AppendRunLocal appends ts to a region in the unit's own vault as one
// sequential run — accounting byte-identical to len(ts) AppendLocal calls.
func (u *Unit) AppendRunLocal(r *Region, ts []tuple.Tuple) {
	if len(ts) == 0 {
		return
	}
	if len(r.Tuples)+len(ts) > r.cap {
		panic("engine: append past region capacity")
	}
	idx := len(r.Tuples)
	r.Tuples = append(r.Tuples, ts...)
	r.keysOK = false
	u.WriteRunBytes(r.addrOf(idx), tuple.Size, len(ts))
}

func ensureLen(r *Region, n int) {
	for len(r.Tuples) < n {
		r.Tuples = append(r.Tuples, tuple.Tuple{})
	}
}

// LoadRunCols reads tuples [start, start+n) of region r as one
// sequential run and appends them to c in SoA form. The charged traffic
// is byte-identical to LoadRun (and hence to n LoadTuple calls): the
// simulated memory holds AoS tuples, and the columnar copy is host-side
// representation work only.
func (u *Unit) LoadRunCols(r *Region, start, n int, c *tuple.Columns) {
	if n == 0 {
		return
	}
	if start < 0 || n < 0 || start+n > len(r.Tuples) {
		panic(fmt.Sprintf("engine: load run [%d,+%d) outside region of %d", start, n, len(r.Tuples)))
	}
	u.ReadRunBytes(r.addrOf(start), tuple.Size, n)
	c.AppendTuples(r.Tuples[start : start+n])
}

// StoreRunCols writes elements [lo, hi) of c into region r at start as
// one sequential run — accounting byte-identical to StoreRun of the
// same tuples.
func (u *Unit) StoreRunCols(r *Region, start int, c *tuple.Columns, lo, hi int) {
	n := hi - lo
	if n == 0 {
		return
	}
	if lo < 0 || hi > c.Len() || n < 0 {
		panic(fmt.Sprintf("engine: store cols [%d,%d) outside columns of %d", lo, hi, c.Len()))
	}
	if start < 0 || start+n > r.cap {
		panic(fmt.Sprintf("engine: store run [%d,+%d) outside capacity %d", start, n, r.cap))
	}
	ensureLen(r, start+n)
	ts := r.Tuples[start : start+n]
	ks := c.Keys[lo:hi]
	vs := c.Vals[lo:hi]
	for i := range ts {
		ts[i].Key = ks[i]
		ts[i].Val = vs[i]
	}
	r.keysOK = false
	u.WriteRunBytes(r.addrOf(start), tuple.Size, n)
}

// --- shuffle (partitioning-phase data distribution) -----------------------

// SendAt ships a tuple to an exact slot of a (typically remote) region —
// the conventional, address-preserving distribution used by the CPU, the
// NMP baseline and Mondrian-noperm. The destination vault sees writes in
// arrival order, which interleaving across sources turns into random row
// traffic (paper Fig. 2).
func (u *Unit) SendAt(dst *Region, idx int, t tuple.Tuple) {
	if idx < 0 || idx >= dst.cap {
		panic(fmt.Sprintf("engine: send index %d outside capacity %d", idx, dst.cap))
	}
	ensureLen(dst, idx+1)
	dst.Tuples[idx] = t
	dst.keysOK = false
	if u.path.demandShuffle() {
		// Host-core stores go through the cache hierarchy.
		u.WriteBytes(dst.addrOf(idx), tuple.Size)
		return
	}
	addr := dst.addrOf(idx)
	u.trace(TraceShuffle, addr, tuple.Size, true)
	u.routeLatency(dst.Vault, tuple.Size)
	dst.Vault.Write(addr, tuple.Size)
	dst.Vault.RecordInbound(tuple.Size)
}

// SendPermutable ships a tuple as a permutable store: the message drains
// through the unit's object buffer, crosses the network, and the receiving
// vault controller appends it sequentially into its armed permutable
// region. The tuple's final position is chosen by hardware.
func (u *Unit) SendPermutable(dst *Region, t tuple.Tuple) error {
	if u.ObjBuf == nil {
		return fmt.Errorf("engine: unit %d has no object buffer (permutability disabled)", u.ID)
	}
	if len(dst.Tuples) >= dst.cap {
		return fmt.Errorf("%w: region in vault %d full", hmc.ErrRegionOverflow, dst.Vault.ID)
	}
	// The object buffer drains one object-sized message per completed
	// object (§5.3); only drained messages cross the network.
	for flushes := u.ObjBuf.Push(tuple.Size); flushes > 0; flushes-- {
		u.routeLatency(dst.Vault, u.ObjBuf.ObjectSize())
	}
	target := dst.addrOf(len(dst.Tuples)) // any in-region address; hardware re-places
	placed, _, err := dst.Vault.PermutableWrite(target, tuple.Size)
	if err != nil {
		return err
	}
	u.trace(TracePermuted, placed, tuple.Size, true)
	dst.Tuples = append(dst.Tuples, t) // arrival order IS the layout
	dst.keysOK = false
	return nil
}
