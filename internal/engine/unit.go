package engine

import (
	"fmt"

	"github.com/ecocloud-go/mondrian/internal/cache"
	"github.com/ecocloud-go/mondrian/internal/hmc"
	"github.com/ecocloud-go/mondrian/internal/noc"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// Unit is one compute unit: a CPU core (CPU architecture) or the per-vault
// logic-layer core (NMP/Mondrian). Operators run on Units; every accessor
// both performs the functional operation on tuples and routes the memory
// traffic through the architecture's path so that DRAM row behaviour,
// interconnect occupancy and core stalls accumulate.
type Unit struct {
	ID     int
	engine *Engine

	Vault   *hmc.Vault // home vault (nil for CPU cores)
	L1      *cache.Cache
	Streams *hmc.StreamBufferSet
	ObjBuf  *hmc.ObjectBuffer

	tile int // CPU-mesh tile (CPU architecture only)

	// CPU cores translate virtual addresses; the NMP units access their
	// vaults physically (§5.1), so only CPU units carry TLBs. Random
	// access over working sets far beyond TLB reach adds page-walk
	// memory accesses — a first-class cost in full-system simulation.
	tlbL1, tlbL2 *cache.Cache

	// Per-step accounting (reset by BeginStep).
	insts      float64
	stallRawNs float64
	accesses   uint64

	// Run accounting.
	busyNs    float64
	instTotal float64

	// Trace buffering during parallel sections (parallel.go): events are
	// collected per unit and replayed in unit-ID order at the join.
	buffering bool
	traceBuf  []traceEvent
}

// Charge adds retired instructions to the unit's current step. The
// operator cost model (internal/operators) decides the amounts; SIMD
// execution charges fewer instructions per tuple.
func (u *Unit) Charge(insts float64) {
	if insts < 0 {
		panic("engine: negative instruction charge")
	}
	u.insts += insts
	u.instTotal += insts
}

// Instructions returns the instructions charged in the current step.
func (u *Unit) Instructions() float64 { return u.insts }

// --- demand access paths -------------------------------------------------

// blockSplit applies fn to each cache-block-sized piece of [addr, addr+size).
func blockSplit(addr int64, size, block int, fn func(addr int64)) {
	end := addr + int64(size)
	for a := addr / int64(block) * int64(block); a < end; a += int64(block) {
		fn(a)
	}
}

// ReadBytes performs a demand read. Cache hits are free (their latency is
// folded into the dependency IPC); misses charge the full path latency as
// raw stall, which EndStep divides by the core's sustainable MLP.
func (u *Unit) ReadBytes(addr int64, size int) {
	u.access(addr, size, false)
}

// WriteBytes performs a demand write. On the CPU the write-allocate cache
// fetches the block (read-for-ownership) and the miss stalls the store
// pipeline; on the NMP architectures stores are fire-and-forget (no
// coherence, store buffers) and only occupy DRAM/link bandwidth.
func (u *Unit) WriteBytes(addr int64, size int) {
	u.access(addr, size, true)
}

func (u *Unit) access(addr int64, size int, write bool) {
	if size <= 0 {
		panic("engine: access size must be positive")
	}
	u.accesses++
	e := u.engine
	u.trace(TraceDemand, addr, size, write)
	switch e.cfg.Arch {
	case CPU:
		blockSplit(addr, size, u.L1.Config().BlockBytes, func(a int64) {
			u.cpuBlockAccess(a, write)
		})
	default:
		if u.L1 != nil {
			blockSplit(addr, size, u.L1.Config().BlockBytes, func(a int64) {
				u.nmpBlockAccess(a, write)
			})
			return
		}
		// Cacheless Mondrian unit: direct vault access.
		lat := u.directAccess(addr, size, write)
		if !write {
			u.stallRawNs += lat
		}
	}
}

// pageBytes is the virtual-memory page size the CPU's TLBs cover.
const pageBytes = 4096

// tlbLookup translates one address, returning the translation stall. An
// L1-TLB hit is free, an L2-TLB hit costs a couple of cycles, and a full
// miss performs a page walk: a real memory read of the page-table entry
// through the cache hierarchy (PTEs live in a reserved tail of the owning
// vault, so walk traffic shares DRAM banks with the data).
func (u *Unit) tlbLookup(addr int64) float64 {
	if u.tlbL1.Access(addr, false).Hit {
		return 0
	}
	if u.tlbL2.Access(addr, false).Hit {
		return 2 // L2 TLB hit: ~4 cycles at 2 GHz
	}
	e := u.engine
	v := e.Sys.VaultOf(addr)
	page := (addr - v.Base) / pageBytes
	reserved := v.Size / 16
	// Two-level radix walk: the last two table levels are real memory
	// reads (the top levels stay cached and are not charged). PMD
	// entries cover 512 pages each.
	pmd := v.Base + v.Size - reserved + (page/512*8)%(reserved/2)
	pte := v.Base + v.Size - reserved/2 + (page*8)%(reserved/2)
	lat := u.cpuFetchFromLLC(pmd/64*64, 64)
	lat += u.cpuFetchFromLLC(pte/64*64, 64)
	return lat
}

// cpuBlockAccess walks one block through TLB → L1 → LLC → star network →
// vault.
func (u *Unit) cpuBlockAccess(addr int64, write bool) {
	u.stallRawNs += u.tlbLookup(addr)
	res := u.L1.Access(addr, write)
	if res.Hit {
		return
	}
	block := u.L1.Config().BlockBytes
	var stall float64
	for i, fetch := range res.Fetches {
		lat := u.cpuFetchFromLLC(fetch, block)
		if i == 0 { // only the demand block stalls; prefetches overlap
			stall += lat
		}
	}
	for _, wb := range res.Writebacks {
		u.cpuWritebackToLLC(wb, block)
	}
	u.stallRawNs += stall
}

// cpuFetchFromLLC brings one block from the LLC (or DRAM below it).
func (u *Unit) cpuFetchFromLLC(addr int64, block int) float64 {
	e := u.engine
	bank := int(addr/int64(block)) % e.mesh.Tiles() // block-interleaved NUCA
	lat := e.mesh.Transfer(u.tile, bank, block)
	res := e.llc.Access(addr, false)
	lat += e.llc.Config().HitLatencyNs
	if res.Hit {
		return lat
	}
	for _, fetch := range res.Fetches {
		v := e.Sys.VaultOf(fetch)
		l := e.Sys.Net.Transfer(noc.CPUNode, v.Cube, block) // request+data crossing
		l += e.Sys.Cubes[v.Cube].Mesh.Transfer(0, v.Tile, block)
		l += v.Read(fetch, block)
		lat += l
	}
	for _, wb := range res.Writebacks {
		v := e.Sys.VaultOf(wb)
		e.Sys.Net.Transfer(noc.CPUNode, v.Cube, block)
		e.Sys.Cubes[v.Cube].Mesh.Transfer(0, v.Tile, block)
		v.Write(wb, block)
	}
	return lat
}

// cpuWritebackToLLC spills one dirty L1 block into the LLC.
func (u *Unit) cpuWritebackToLLC(addr int64, block int) {
	e := u.engine
	bank := int(addr/int64(block)) % e.mesh.Tiles()
	e.mesh.Transfer(u.tile, bank, block)
	res := e.llc.Access(addr, true)
	if res.Hit {
		return
	}
	for _, wb := range res.Writebacks {
		v := e.Sys.VaultOf(wb)
		e.Sys.Net.Transfer(noc.CPUNode, v.Cube, block)
		e.Sys.Cubes[v.Cube].Mesh.Transfer(0, v.Tile, block)
		v.Write(wb, block)
	}
}

// nmpBlockAccess walks one block through the per-vault L1 and the fabric.
func (u *Unit) nmpBlockAccess(addr int64, write bool) {
	res := u.L1.Access(addr, write)
	if res.Hit {
		return
	}
	block := u.L1.Config().BlockBytes
	var stall float64
	for i, fetch := range res.Fetches {
		lat := u.directAccess(fetch, block, false)
		if i == 0 {
			stall += lat
		}
	}
	for _, wb := range res.Writebacks {
		u.directAccess(wb, block, true)
	}
	if !write {
		u.stallRawNs += stall
	}
}

// directAccess reaches the owning vault through mesh/SerDes as needed and
// returns the one-way latency (request-to-data).
func (u *Unit) directAccess(addr int64, size int, write bool) float64 {
	e := u.engine
	dst := e.Sys.VaultOf(addr)
	lat := u.routeLatency(dst, size)
	if write {
		return lat + dst.Write(addr, size)
	}
	return lat + dst.Read(addr, size)
}

// routeLatency charges the interconnect between this unit and a vault.
func (u *Unit) routeLatency(dst *hmc.Vault, size int) float64 {
	e := u.engine
	if e.cfg.Arch == CPU {
		lat := e.Sys.Net.Transfer(noc.CPUNode, dst.Cube, size)
		return lat + e.Sys.Cubes[dst.Cube].Mesh.Transfer(0, dst.Tile, size)
	}
	src := u.Vault
	if src == dst {
		return 0
	}
	if src.Cube == dst.Cube {
		return e.Sys.Cubes[src.Cube].Mesh.Transfer(src.Tile, dst.Tile, size)
	}
	lat := e.Sys.Cubes[src.Cube].Mesh.Transfer(src.Tile, 0, size)
	lat += e.Sys.Net.Transfer(src.Cube, dst.Cube, size)
	lat += e.Sys.Cubes[dst.Cube].Mesh.Transfer(0, dst.Tile, size)
	return lat
}

// --- tuple-level accessors ------------------------------------------------

// LoadTuple reads tuple idx of region r.
func (u *Unit) LoadTuple(r *Region, idx int) tuple.Tuple {
	if idx < 0 || idx >= len(r.Tuples) {
		panic(fmt.Sprintf("engine: load index %d outside region of %d", idx, len(r.Tuples)))
	}
	u.ReadBytes(r.addrOf(idx), tuple.Size)
	return r.Tuples[idx]
}

// StoreTuple writes tuple idx of region r in place (growing as needed).
func (u *Unit) StoreTuple(r *Region, idx int, t tuple.Tuple) {
	if idx < 0 || idx >= r.cap {
		panic(fmt.Sprintf("engine: store index %d outside capacity %d", idx, r.cap))
	}
	ensureLen(r, idx+1)
	r.Tuples[idx] = t
	u.WriteBytes(r.addrOf(idx), tuple.Size)
}

// AppendLocal appends a tuple to a region in the unit's own vault
// (sequential output writes of probe-phase algorithms).
func (u *Unit) AppendLocal(r *Region, t tuple.Tuple) {
	if len(r.Tuples) >= r.cap {
		panic("engine: append past region capacity")
	}
	idx := len(r.Tuples)
	r.Tuples = append(r.Tuples, t)
	u.WriteBytes(r.addrOf(idx), tuple.Size)
}

func ensureLen(r *Region, n int) {
	for len(r.Tuples) < n {
		r.Tuples = append(r.Tuples, tuple.Tuple{})
	}
}

// --- shuffle (partitioning-phase data distribution) -----------------------

// SendAt ships a tuple to an exact slot of a (typically remote) region —
// the conventional, address-preserving distribution used by the CPU, the
// NMP baseline and Mondrian-noperm. The destination vault sees writes in
// arrival order, which interleaving across sources turns into random row
// traffic (paper Fig. 2).
func (u *Unit) SendAt(dst *Region, idx int, t tuple.Tuple) {
	if idx < 0 || idx >= dst.cap {
		panic(fmt.Sprintf("engine: send index %d outside capacity %d", idx, dst.cap))
	}
	ensureLen(dst, idx+1)
	dst.Tuples[idx] = t
	e := u.engine
	if e.cfg.Arch == CPU {
		// CPU stores go through the cache hierarchy.
		u.WriteBytes(dst.addrOf(idx), tuple.Size)
		return
	}
	addr := dst.addrOf(idx)
	u.trace(TraceShuffle, addr, tuple.Size, true)
	u.routeLatency(dst.Vault, tuple.Size)
	dst.Vault.Write(addr, tuple.Size)
	dst.Vault.RecordInbound(tuple.Size)
}

// SendPermutable ships a tuple as a permutable store: the message drains
// through the unit's object buffer, crosses the network, and the receiving
// vault controller appends it sequentially into its armed permutable
// region. The tuple's final position is chosen by hardware.
func (u *Unit) SendPermutable(dst *Region, t tuple.Tuple) error {
	if u.ObjBuf == nil {
		return fmt.Errorf("engine: unit %d has no object buffer (permutability disabled)", u.ID)
	}
	if len(dst.Tuples) >= dst.cap {
		return fmt.Errorf("%w: region in vault %d full", hmc.ErrRegionOverflow, dst.Vault.ID)
	}
	// The object buffer drains one object-sized message per completed
	// object (§5.3); only drained messages cross the network.
	for flushes := u.ObjBuf.Push(tuple.Size); flushes > 0; flushes-- {
		u.routeLatency(dst.Vault, u.ObjBuf.ObjectSize())
	}
	target := dst.addrOf(len(dst.Tuples)) // any in-region address; hardware re-places
	placed, _, err := dst.Vault.PermutableWrite(target, tuple.Size)
	if err != nil {
		return err
	}
	u.trace(TracePermuted, placed, tuple.Size, true)
	dst.Tuples = append(dst.Tuples, t) // arrival order IS the layout
	return nil
}
