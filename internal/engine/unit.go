package engine

import (
	"fmt"

	"github.com/ecocloud-go/mondrian/internal/cache"
	"github.com/ecocloud-go/mondrian/internal/hmc"
	"github.com/ecocloud-go/mondrian/internal/noc"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// Unit is one compute unit: a CPU core (CPU architecture) or the per-vault
// logic-layer core (NMP/Mondrian). Operators run on Units; every accessor
// both performs the functional operation on tuples and routes the memory
// traffic through the architecture's path so that DRAM row behaviour,
// interconnect occupancy and core stalls accumulate.
type Unit struct {
	ID     int
	engine *Engine

	Vault   *hmc.Vault // home vault (nil for CPU cores)
	L1      *cache.Cache
	Streams *hmc.StreamBufferSet
	ObjBuf  *hmc.ObjectBuffer

	tile int // CPU-mesh tile (CPU architecture only)

	// CPU cores translate virtual addresses; the NMP units access their
	// vaults physically (§5.1), so only CPU units carry TLBs. Random
	// access over working sets far beyond TLB reach adds page-walk
	// memory accesses — a first-class cost in full-system simulation.
	tlbL1, tlbL2 *cache.Cache

	// Per-step accounting (reset by BeginStep).
	insts      float64
	stallRawNs float64
	accesses   uint64

	// Run accounting.
	busyNs    float64
	instTotal float64

	// Trace buffering during parallel sections (parallel.go): events are
	// collected per unit and replayed in unit-ID order at the join.
	buffering bool
	traceBuf  []traceEvent

	// runRes is the reusable tally for bulk cache runs (accessRun).
	runRes cache.RunResult
}

// Bulk reports whether the batched run-based fast path is enabled for
// this unit's engine (see Config.NoBulk). Operators consult it to pick
// between their run-based loops and the per-tuple reference loops.
func (u *Unit) Bulk() bool { return !u.engine.cfg.NoBulk }

// Charge adds retired instructions to the unit's current step. The
// operator cost model (internal/operators) decides the amounts; SIMD
// execution charges fewer instructions per tuple.
func (u *Unit) Charge(insts float64) {
	if insts < 0 {
		panic("engine: negative instruction charge")
	}
	u.insts += insts
	u.instTotal += insts
}

// Instructions returns the instructions charged in the current step.
func (u *Unit) Instructions() float64 { return u.insts }

// ChargeRun adds n per-tuple instruction charges — the same accumulation,
// in the same order, as n Charge(insts) calls (the addends are identical,
// so the float sums agree bit-for-bit).
func (u *Unit) ChargeRun(insts float64, n int) {
	if insts < 0 {
		panic("engine: negative instruction charge")
	}
	for i := 0; i < n; i++ {
		u.insts += insts
		u.instTotal += insts
	}
}

// --- demand access paths -------------------------------------------------

// ReadBytes performs a demand read. Cache hits are free (their latency is
// folded into the dependency IPC); misses charge the full path latency as
// raw stall, which EndStep divides by the core's sustainable MLP.
func (u *Unit) ReadBytes(addr int64, size int) {
	u.access(addr, size, false)
}

// WriteBytes performs a demand write. On the CPU the write-allocate cache
// fetches the block (read-for-ownership) and the miss stalls the store
// pipeline; on the NMP architectures stores are fire-and-forget (no
// coherence, store buffers) and only occupy DRAM/link bandwidth.
func (u *Unit) WriteBytes(addr int64, size int) {
	u.access(addr, size, true)
}

// ReadRunBytes performs count sequential demand reads of stride bytes
// each, starting at addr — accounting byte-identical to count ReadBytes
// calls, but retired with one walk over the touched cache blocks (or DRAM
// rows) instead of one full traversal per element.
func (u *Unit) ReadRunBytes(addr int64, stride, count int) {
	u.accessRun(addr, stride, count, false)
}

// WriteRunBytes is the write-side counterpart of ReadRunBytes.
func (u *Unit) WriteRunBytes(addr int64, stride, count int) {
	u.accessRun(addr, stride, count, true)
}

func (u *Unit) access(addr int64, size int, write bool) {
	if size <= 0 {
		panic("engine: access size must be positive")
	}
	u.accesses++
	e := u.engine
	u.trace(TraceDemand, addr, size, write)
	switch e.cfg.Arch {
	case CPU:
		block := int64(u.L1.Config().BlockBytes)
		end := addr + int64(size)
		for a := addr / block * block; a < end; a += block {
			u.cpuBlockAccess(a, write)
		}
	default:
		if u.L1 != nil {
			block := int64(u.L1.Config().BlockBytes)
			end := addr + int64(size)
			for a := addr / block * block; a < end; a += block {
				u.nmpBlockAccess(a, write)
			}
			return
		}
		// Cacheless Mondrian unit: direct vault access.
		lat := u.directAccess(addr, size, write)
		if !write {
			u.stallRawNs += lat
		}
	}
}

// accessRun is the bulk demand path: one trace record, one accesses tally,
// and one walk over the run's cache blocks / DRAM rows for count elements.
// Shapes the fast path cannot prove equivalent — unaligned strides, runs
// leaving the unit's home vault, NoBulk mode — fall back to per-element
// access calls, which are the reference semantics by definition.
func (u *Unit) accessRun(addr int64, stride, count int, write bool) {
	if count <= 0 {
		return
	}
	if stride <= 0 {
		panic("engine: access size must be positive")
	}
	e := u.engine
	if count == 1 || e.cfg.NoBulk || !u.runnable(addr, stride, count) {
		for i := 0; i < count; i++ {
			u.access(addr+int64(i)*int64(stride), stride, write)
		}
		return
	}
	u.accesses += uint64(count)
	u.traceRun(TraceDemand, addr, stride, stride, count, write)
	switch e.cfg.Arch {
	case CPU:
		u.cpuRunAccess(addr, stride, count, write)
	default:
		if u.L1 != nil {
			u.nmpRunAccess(addr, stride, count, write)
			return
		}
		// Cacheless unit, local vault: the route adds zero latency, so
		// each element's stall is exactly its DRAM latency.
		if write {
			u.Vault.WriteRun(addr, stride, count)
		} else {
			u.Vault.ReadRun(addr, stride, count, &u.stallRawNs)
		}
	}
}

// runnable reports whether the bulk path can retire this run with provably
// identical accounting: elements must not straddle cache blocks or DRAM
// rows (stride-aligned, power-of-two-dividing strides), and on vault-
// resident units the run must stay inside the home vault so route latency
// is uniformly zero.
func (u *Unit) runnable(addr int64, stride, count int) bool {
	e := u.engine
	if u.L1 != nil {
		block := int64(u.L1.Config().BlockBytes)
		if block%int64(stride) != 0 || addr%int64(stride) != 0 {
			return false
		}
	}
	row := int64(e.cfg.Geometry.RowBytes)
	if row%int64(stride) != 0 || addr%int64(stride) != 0 {
		return false
	}
	if e.cfg.Arch != CPU && u.L1 == nil {
		// Cacheless path goes straight at the vault: require residence.
		last := addr + int64(stride)*int64(count) - 1
		if u.Vault == nil || !u.Vault.Contains(addr) || !u.Vault.Contains(last) {
			return false
		}
	}
	return true
}

// cpuRunAccess retires a sequential run on a CPU core: per page, one full
// TLB lookup plus batched TLB hits (the first lookup installs the entry);
// per L1 block, the cache's own bulk walk; misses route through the LLC
// exactly as the per-element path does, demand fetches stalling and
// prefetches overlapping.
func (u *Unit) cpuRunAccess(addr int64, stride, count int, write bool) {
	block := u.L1.Config().BlockBytes
	for count > 0 {
		pageEnd := (addr/pageBytes + 1) * pageBytes
		k := int((pageEnd - addr + int64(stride) - 1) / int64(stride))
		if k > count {
			k = count
		}
		u.stallRawNs += u.tlbLookup(addr)
		if k > 1 && !u.tlbL1.AccessHitRun(addr+int64(stride), k-1, false) {
			// The first lookup always installs the page's entry; this
			// branch only runs on pathological TLB geometries.
			for i := 1; i < k; i++ {
				u.stallRawNs += u.tlbLookup(addr + int64(i)*int64(stride))
			}
		}
		u.L1.AccessRun(addr, stride, k, write, &u.runRes)
		for _, op := range u.runRes.Ops {
			switch op.Kind {
			case cache.RunFetchDemand:
				// Only the demand block stalls; prefetches overlap.
				u.stallRawNs += u.cpuFetchFromLLC(op.Addr, block)
			case cache.RunFetchPrefetch:
				u.cpuFetchFromLLC(op.Addr, block)
			case cache.RunWriteback:
				u.cpuWritebackToLLC(op.Addr, block)
			}
		}
		addr += int64(k) * int64(stride)
		count -= k
	}
}

// nmpRunAccess retires a sequential run on a cache-backed vault unit: the
// L1 batches same-block hits, and the miss traffic list replays through
// the fabric in the per-element order (demand fetch stalls, prefetches and
// writebacks only occupy bandwidth).
func (u *Unit) nmpRunAccess(addr int64, stride, count int, write bool) {
	u.L1.AccessRun(addr, stride, count, write, &u.runRes)
	block := u.L1.Config().BlockBytes
	for _, op := range u.runRes.Ops {
		switch op.Kind {
		case cache.RunFetchDemand:
			lat := u.directAccess(op.Addr, block, false)
			if !write {
				u.stallRawNs += lat
			}
		case cache.RunFetchPrefetch:
			u.directAccess(op.Addr, block, false)
		case cache.RunWriteback:
			u.directAccess(op.Addr, block, true)
		}
	}
}

// pageBytes is the virtual-memory page size the CPU's TLBs cover.
const pageBytes = 4096

// tlbLookup translates one address, returning the translation stall. An
// L1-TLB hit is free, an L2-TLB hit costs a couple of cycles, and a full
// miss performs a page walk: a real memory read of the page-table entry
// through the cache hierarchy (PTEs live in a reserved tail of the owning
// vault, so walk traffic shares DRAM banks with the data).
func (u *Unit) tlbLookup(addr int64) float64 {
	if u.tlbL1.Access(addr, false).Hit {
		return 0
	}
	if u.tlbL2.Access(addr, false).Hit {
		return 2 // L2 TLB hit: ~4 cycles at 2 GHz
	}
	e := u.engine
	v := e.Sys.VaultOf(addr)
	page := (addr - v.Base) / pageBytes
	reserved := v.Size / 16
	// Two-level radix walk: the last two table levels are real memory
	// reads (the top levels stay cached and are not charged). PMD
	// entries cover 512 pages each.
	pmd := v.Base + v.Size - reserved + (page/512*8)%(reserved/2)
	pte := v.Base + v.Size - reserved/2 + (page*8)%(reserved/2)
	lat := u.cpuFetchFromLLC(pmd/64*64, 64)
	lat += u.cpuFetchFromLLC(pte/64*64, 64)
	return lat
}

// cpuBlockAccess walks one block through TLB → L1 → LLC → star network →
// vault.
func (u *Unit) cpuBlockAccess(addr int64, write bool) {
	u.stallRawNs += u.tlbLookup(addr)
	res := u.L1.Access(addr, write)
	if res.Hit {
		return
	}
	block := u.L1.Config().BlockBytes
	var stall float64
	for i, fetch := range res.Fetches {
		lat := u.cpuFetchFromLLC(fetch, block)
		if i == 0 { // only the demand block stalls; prefetches overlap
			stall += lat
		}
	}
	for _, wb := range res.Writebacks {
		u.cpuWritebackToLLC(wb, block)
	}
	u.stallRawNs += stall
}

// cpuFetchFromLLC brings one block from the LLC (or DRAM below it).
func (u *Unit) cpuFetchFromLLC(addr int64, block int) float64 {
	e := u.engine
	bank := e.nucaBank(addr, block) // block-interleaved NUCA
	lat := e.mesh.Transfer(u.tile, bank, block)
	res := e.llc.Access(addr, false)
	lat += e.llc.Config().HitLatencyNs
	if res.Hit {
		return lat
	}
	for _, fetch := range res.Fetches {
		v := e.Sys.VaultOf(fetch)
		l := e.Sys.Net.Transfer(noc.CPUNode, v.Cube, block) // request+data crossing
		l += e.Sys.Cubes[v.Cube].Mesh.Transfer(0, v.Tile, block)
		l += v.Read(fetch, block)
		lat += l
	}
	for _, wb := range res.Writebacks {
		v := e.Sys.VaultOf(wb)
		e.Sys.Net.Transfer(noc.CPUNode, v.Cube, block)
		e.Sys.Cubes[v.Cube].Mesh.Transfer(0, v.Tile, block)
		v.Write(wb, block)
	}
	return lat
}

// nucaBank hashes a block address onto an LLC tile (block-interleaved
// NUCA), in shift/mask form when the block size matches the precomputed
// power-of-two geometry.
func (e *Engine) nucaBank(addr int64, block int) int {
	if e.nucaShift > 0 && block == 1<<e.nucaShift {
		return int((addr >> e.nucaShift) & e.nucaMask)
	}
	return int(addr/int64(block)) % e.mesh.Tiles()
}

// cpuWritebackToLLC spills one dirty L1 block into the LLC.
func (u *Unit) cpuWritebackToLLC(addr int64, block int) {
	e := u.engine
	bank := e.nucaBank(addr, block)
	e.mesh.Transfer(u.tile, bank, block)
	res := e.llc.Access(addr, true)
	if res.Hit {
		return
	}
	for _, wb := range res.Writebacks {
		v := e.Sys.VaultOf(wb)
		e.Sys.Net.Transfer(noc.CPUNode, v.Cube, block)
		e.Sys.Cubes[v.Cube].Mesh.Transfer(0, v.Tile, block)
		v.Write(wb, block)
	}
}

// nmpBlockAccess walks one block through the per-vault L1 and the fabric.
func (u *Unit) nmpBlockAccess(addr int64, write bool) {
	res := u.L1.Access(addr, write)
	if res.Hit {
		return
	}
	block := u.L1.Config().BlockBytes
	var stall float64
	for i, fetch := range res.Fetches {
		lat := u.directAccess(fetch, block, false)
		if i == 0 {
			stall += lat
		}
	}
	for _, wb := range res.Writebacks {
		u.directAccess(wb, block, true)
	}
	if !write {
		u.stallRawNs += stall
	}
}

// directAccess reaches the owning vault through mesh/SerDes as needed and
// returns the one-way latency (request-to-data).
func (u *Unit) directAccess(addr int64, size int, write bool) float64 {
	e := u.engine
	dst := e.Sys.VaultOf(addr)
	lat := u.routeLatency(dst, size)
	if write {
		return lat + dst.Write(addr, size)
	}
	return lat + dst.Read(addr, size)
}

// routeLatency charges the interconnect between this unit and a vault.
func (u *Unit) routeLatency(dst *hmc.Vault, size int) float64 {
	e := u.engine
	if e.cfg.Arch == CPU {
		lat := e.Sys.Net.Transfer(noc.CPUNode, dst.Cube, size)
		return lat + e.Sys.Cubes[dst.Cube].Mesh.Transfer(0, dst.Tile, size)
	}
	src := u.Vault
	if src == dst {
		return 0
	}
	if src.Cube == dst.Cube {
		return e.Sys.Cubes[src.Cube].Mesh.Transfer(src.Tile, dst.Tile, size)
	}
	lat := e.Sys.Cubes[src.Cube].Mesh.Transfer(src.Tile, 0, size)
	lat += e.Sys.Net.Transfer(src.Cube, dst.Cube, size)
	lat += e.Sys.Cubes[dst.Cube].Mesh.Transfer(0, dst.Tile, size)
	return lat
}

// --- tuple-level accessors ------------------------------------------------

// LoadTuple reads tuple idx of region r.
func (u *Unit) LoadTuple(r *Region, idx int) tuple.Tuple {
	if idx < 0 || idx >= len(r.Tuples) {
		panic(fmt.Sprintf("engine: load index %d outside region of %d", idx, len(r.Tuples)))
	}
	u.ReadBytes(r.addrOf(idx), tuple.Size)
	return r.Tuples[idx]
}

// StoreTuple writes tuple idx of region r in place (growing as needed).
func (u *Unit) StoreTuple(r *Region, idx int, t tuple.Tuple) {
	if idx < 0 || idx >= r.cap {
		panic(fmt.Sprintf("engine: store index %d outside capacity %d", idx, r.cap))
	}
	ensureLen(r, idx+1)
	r.Tuples[idx] = t
	u.WriteBytes(r.addrOf(idx), tuple.Size)
}

// AppendLocal appends a tuple to a region in the unit's own vault
// (sequential output writes of probe-phase algorithms).
func (u *Unit) AppendLocal(r *Region, t tuple.Tuple) {
	if len(r.Tuples) >= r.cap {
		panic("engine: append past region capacity")
	}
	idx := len(r.Tuples)
	r.Tuples = append(r.Tuples, t)
	u.WriteBytes(r.addrOf(idx), tuple.Size)
}

// LoadRun reads tuples [start, start+n) of region r as one sequential run
// and returns them (a view into the region's backing store — callers must
// not mutate it). Accounting is byte-identical to n LoadTuple calls.
func (u *Unit) LoadRun(r *Region, start, n int) []tuple.Tuple {
	if n == 0 {
		return nil
	}
	if start < 0 || n < 0 || start+n > len(r.Tuples) {
		panic(fmt.Sprintf("engine: load run [%d,+%d) outside region of %d", start, n, len(r.Tuples)))
	}
	u.ReadRunBytes(r.addrOf(start), tuple.Size, n)
	return r.Tuples[start : start+n]
}

// StoreRun writes ts into region r at start as one sequential run —
// accounting byte-identical to len(ts) StoreTuple calls.
func (u *Unit) StoreRun(r *Region, start int, ts []tuple.Tuple) {
	if len(ts) == 0 {
		return
	}
	if start < 0 || start+len(ts) > r.cap {
		panic(fmt.Sprintf("engine: store run [%d,+%d) outside capacity %d", start, len(ts), r.cap))
	}
	ensureLen(r, start+len(ts))
	copy(r.Tuples[start:], ts)
	u.WriteRunBytes(r.addrOf(start), tuple.Size, len(ts))
}

// AppendRunLocal appends ts to a region in the unit's own vault as one
// sequential run — accounting byte-identical to len(ts) AppendLocal calls.
func (u *Unit) AppendRunLocal(r *Region, ts []tuple.Tuple) {
	if len(ts) == 0 {
		return
	}
	if len(r.Tuples)+len(ts) > r.cap {
		panic("engine: append past region capacity")
	}
	idx := len(r.Tuples)
	r.Tuples = append(r.Tuples, ts...)
	u.WriteRunBytes(r.addrOf(idx), tuple.Size, len(ts))
}

func ensureLen(r *Region, n int) {
	for len(r.Tuples) < n {
		r.Tuples = append(r.Tuples, tuple.Tuple{})
	}
}

// --- shuffle (partitioning-phase data distribution) -----------------------

// SendAt ships a tuple to an exact slot of a (typically remote) region —
// the conventional, address-preserving distribution used by the CPU, the
// NMP baseline and Mondrian-noperm. The destination vault sees writes in
// arrival order, which interleaving across sources turns into random row
// traffic (paper Fig. 2).
func (u *Unit) SendAt(dst *Region, idx int, t tuple.Tuple) {
	if idx < 0 || idx >= dst.cap {
		panic(fmt.Sprintf("engine: send index %d outside capacity %d", idx, dst.cap))
	}
	ensureLen(dst, idx+1)
	dst.Tuples[idx] = t
	e := u.engine
	if e.cfg.Arch == CPU {
		// CPU stores go through the cache hierarchy.
		u.WriteBytes(dst.addrOf(idx), tuple.Size)
		return
	}
	addr := dst.addrOf(idx)
	u.trace(TraceShuffle, addr, tuple.Size, true)
	u.routeLatency(dst.Vault, tuple.Size)
	dst.Vault.Write(addr, tuple.Size)
	dst.Vault.RecordInbound(tuple.Size)
}

// SendPermutable ships a tuple as a permutable store: the message drains
// through the unit's object buffer, crosses the network, and the receiving
// vault controller appends it sequentially into its armed permutable
// region. The tuple's final position is chosen by hardware.
func (u *Unit) SendPermutable(dst *Region, t tuple.Tuple) error {
	if u.ObjBuf == nil {
		return fmt.Errorf("engine: unit %d has no object buffer (permutability disabled)", u.ID)
	}
	if len(dst.Tuples) >= dst.cap {
		return fmt.Errorf("%w: region in vault %d full", hmc.ErrRegionOverflow, dst.Vault.ID)
	}
	// The object buffer drains one object-sized message per completed
	// object (§5.3); only drained messages cross the network.
	for flushes := u.ObjBuf.Push(tuple.Size); flushes > 0; flushes-- {
		u.routeLatency(dst.Vault, u.ObjBuf.ObjectSize())
	}
	target := dst.addrOf(len(dst.Tuples)) // any in-region address; hardware re-places
	placed, _, err := dst.Vault.PermutableWrite(target, tuple.Size)
	if err != nil {
		return err
	}
	u.trace(TracePermuted, placed, tuple.Size, true)
	dst.Tuples = append(dst.Tuples, t) // arrival order IS the layout
	return nil
}
