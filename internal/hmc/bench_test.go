package hmc

import (
	"testing"

	"github.com/ecocloud-go/mondrian/internal/dram"
	"github.com/ecocloud-go/mondrian/internal/noc"
)

func BenchmarkPermutableWrite(b *testing.B) {
	g := testGeom()
	g.CapacityBytes = 256 << 20
	s := NewSystem(1, 4, noc.FullyConnected, g, dram.HMCTiming())
	v := s.Vault(0)
	const regionTuples = 1 << 20 // fixed 16 MB region; re-armed when full
	base, err := v.Alloc(regionTuples*16, 256)
	if err != nil {
		b.Fatal(err)
	}
	if err := v.SetPermRegion(base, regionTuples*16, 16); err != nil {
		b.Fatal(err)
	}
	if err := v.BeginShuffle(regionTuples * 16); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%regionTuples == 0 && i > 0 {
			v.EndShuffle()
			if err := v.BeginShuffle(regionTuples * 16); err != nil {
				b.Fatal(err)
			}
		}
		if _, _, err := v.PermutableWrite(base, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamBufferPop(b *testing.B) {
	g := testGeom()
	g.CapacityBytes = 256 << 20
	s := NewSystem(1, 4, noc.FullyConnected, g, dram.HMCTiming())
	v := s.Vault(0)
	const streamTuples = 1 << 20 // fixed 16 MB stream; re-tied when drained
	base, err := v.Alloc(streamTuples*16, 256)
	if err != nil {
		b.Fatal(err)
	}
	sb := NewStreamBufferSet(v)
	if err := sb.Configure([]Range{{base, base + streamTuples*16}}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%streamTuples == 0 && i > 0 {
			if err := sb.Configure([]Range{{base, base + streamTuples*16}}); err != nil {
				b.Fatal(err)
			}
		}
		if !sb.Pop(0, 16) {
			b.Fatal("pop failed")
		}
	}
}
