package hmc

import (
	"errors"
	"fmt"
)

// ObjectBufferBytes is the capacity of the per-compute-unit object buffer
// (§5.3). It matches the HMC row-buffer size and the protocol's maximum
// message size, and bounds the largest permutable object.
const ObjectBufferBytes = 256

// ObjectBuffer batches a compute unit's stores into whole data objects so
// that no object straddles more than one memory message — the condition
// under which inter-request permutation is safe (§5.3: the controller
// "only makes inter-request and never intra-request memory location
// permutations").
type ObjectBuffer struct {
	objectSize int
	pending    int

	// Flushes counts object-sized messages injected into the network.
	Flushes uint64
	// Pushes counts store operations absorbed by the buffer — with
	// Flushes, this gives the buffer's hit (coalescing) rate.
	Pushes uint64
}

// NewObjectBuffer creates an object buffer for the given object size.
func NewObjectBuffer(objectSize int) (*ObjectBuffer, error) {
	if objectSize <= 0 || objectSize > ObjectBufferBytes {
		return nil, fmt.Errorf("hmc: object size %d outside (0,%d]", objectSize, ObjectBufferBytes)
	}
	return &ObjectBuffer{objectSize: objectSize}, nil
}

// ObjectSize returns the configured granularity.
func (b *ObjectBuffer) ObjectSize() int { return b.objectSize }

// Push adds n bytes of pending store data and returns how many complete
// object-sized messages drained to the vault router as a result.
func (b *ObjectBuffer) Push(n int) int {
	if n <= 0 {
		panic("hmc: ObjectBuffer.Push requires positive n")
	}
	b.pending += n
	b.Pushes++
	flushes := b.pending / b.objectSize
	b.pending %= b.objectSize
	b.Flushes += uint64(flushes)
	return flushes
}

// Pending returns bytes buffered but not yet drained.
func (b *ObjectBuffer) Pending() int { return b.pending }

// Reset restores the buffer to its just-constructed state: pending data
// dropped, counters zeroed. Part of the engine's pooled-lifecycle reset.
func (b *ObjectBuffer) Reset() {
	b.pending = 0
	b.Flushes = 0
	b.Pushes = 0
}

// Drain flushes a final partial object (end of the partitioning loop),
// returning its size in bytes (0 if empty).
func (b *ObjectBuffer) Drain() int {
	n := b.pending
	b.pending = 0
	if n > 0 {
		b.Flushes++
	}
	return n
}

// Stream-buffer constants from §5.2: eight programmable 384 B buffers
// (1.5× the 256 B row), filled by binding prefetches in full-row units.
const (
	NumStreamBuffers  = 8
	StreamBufferBytes = 384
	streamFillGranule = 256
)

// ErrTooManyStreams is returned when more ranges than buffers are tied.
var ErrTooManyStreams = errors.New("hmc: more streams than stream buffers")

// Range is a half-open global address interval [Start, End).
type Range struct{ Start, End int64 }

// Len returns the range length in bytes.
func (r Range) Len() int64 { return r.End - r.Start }

type streamState struct {
	next        int64 // next byte the compute unit will pop
	filledUntil int64 // exclusive bound of prefetched data
	end         int64
}

// StreamBufferSet models one compute unit's stream buffers, tied to the
// unit's local vault. Pops from stream heads never stall the core (the
// binding prefetcher keeps 1.5 rows of lead); the DRAM fills it issues are
// charged to the vault and surface as bus/bank busy time, which is how
// bandwidth saturation limits streaming throughput.
type StreamBufferSet struct {
	vault   *Vault
	bufs    int // number of stream buffers in this set
	streams []streamState

	// FillBytes counts bytes prefetched from DRAM into the buffers.
	FillBytes uint64
}

// NewStreamBufferSet creates the buffer set for a compute unit co-located
// with the given vault, with the architectural NumStreamBuffers buffers.
func NewStreamBufferSet(v *Vault) *StreamBufferSet {
	return NewStreamBufferSetN(v, NumStreamBuffers)
}

// NewStreamBufferSetN creates a buffer set with n stream buffers — the
// sensitivity-sweep knob behind engine.Config.StreamBuffers. n <= 0
// selects the architectural default.
func NewStreamBufferSetN(v *Vault, n int) *StreamBufferSet {
	if n <= 0 {
		n = NumStreamBuffers
	}
	return &StreamBufferSet{vault: v, bufs: n}
}

// Buffers returns how many stream buffers the set provides.
func (s *StreamBufferSet) Buffers() int { return s.bufs }

// Reset restores the set to its just-constructed state: all streams
// untied and the fill counter zeroed. The stream storage keeps its
// capacity, so a reset set reaches Configure's steady state allocation-free.
func (s *StreamBufferSet) Reset() {
	s.streams = s.streams[:0]
	s.FillBytes = 0
}

// Configure ties up to Buffers() address ranges to the buffers
// (prefetch_in_str_buf in Fig. 4b) and primes each with its initial fill.
// All ranges must lie in the unit's local vault.
func (s *StreamBufferSet) Configure(ranges []Range) error {
	if len(ranges) > s.bufs {
		return fmt.Errorf("%w: %d > %d", ErrTooManyStreams, len(ranges), s.bufs)
	}
	s.streams = s.streams[:0]
	for _, r := range ranges {
		if r.Len() < 0 {
			return fmt.Errorf("hmc: negative stream range %+v", r)
		}
		if r.Len() > 0 && (!s.vault.Contains(r.Start) || !s.vault.Contains(r.End-1)) {
			return fmt.Errorf("hmc: stream %+v outside local vault %d", r, s.vault.ID)
		}
		st := streamState{next: r.Start, filledUntil: r.Start, end: r.End}
		s.streams = append(s.streams, st)
	}
	for i := range s.streams {
		s.fill(i)
	}
	return nil
}

// fill tops up stream i to its buffer capacity in full-row granules.
func (s *StreamBufferSet) fill(i int) {
	st := &s.streams[i]
	for st.filledUntil < st.end && st.filledUntil-st.next < StreamBufferBytes {
		chunk := int64(streamFillGranule)
		if st.filledUntil+chunk > st.end {
			chunk = st.end - st.filledUntil
		}
		s.vault.Read(st.filledUntil, int(chunk))
		s.FillBytes += uint64(chunk)
		st.filledUntil += chunk
	}
}

// Pop advances stream i by n bytes (pop_input_stream in Fig. 4b),
// triggering refills. It reports whether n bytes were available.
func (s *StreamBufferSet) Pop(i, n int) bool {
	if i < 0 || i >= len(s.streams) {
		panic(fmt.Sprintf("hmc: stream %d not configured", i))
	}
	st := &s.streams[i]
	if st.next+int64(n) > st.end {
		return false
	}
	st.next += int64(n)
	s.fill(i)
	return true
}

// PopRun advances stream i by count pops of stride bytes each, issuing
// exactly the refill reads the equivalent Pop loop would — the fill
// sequence is a deterministic function of the pop sequence, so the vault
// sees identical traffic. It reports whether all count pops fit (nothing
// is consumed otherwise).
func (s *StreamBufferSet) PopRun(i, stride, count int) bool {
	if i < 0 || i >= len(s.streams) {
		panic(fmt.Sprintf("hmc: stream %d not configured", i))
	}
	st := &s.streams[i]
	if st.next+int64(stride)*int64(count) > st.end {
		return false
	}
	// next advances monotonically, so the per-pop fill condition is
	// loosest at the final offset: the run issues exactly the granule
	// chunks the equivalent Pop loop would, in the same address order.
	// Full granules batch into one DRAM run (each granule is one whole
	// row, so per-row accounting is identical to individual reads); the
	// clipped tail chunk, if any, is last.
	st.next += int64(stride) * int64(count)
	start := st.filledUntil
	fullChunks := 0
	var tail int64
	for st.filledUntil < st.end && st.filledUntil-st.next < StreamBufferBytes {
		chunk := int64(streamFillGranule)
		if st.filledUntil+chunk > st.end {
			chunk = st.end - st.filledUntil
			tail = chunk
		} else {
			fullChunks++
		}
		s.FillBytes += uint64(chunk)
		st.filledUntil += chunk
	}
	if fullChunks > 0 {
		s.vault.ReadRun(start, streamFillGranule, fullChunks, nil)
	}
	if tail > 0 {
		s.vault.Read(st.filledUntil-tail, int(tail))
	}
	return true
}

// PopFills reports whether the next n-byte Pop on stream i would issue
// at least one DRAM fill. It has no side effects.
func (s *StreamBufferSet) PopFills(i, n int) bool {
	if i < 0 || i >= len(s.streams) {
		panic(fmt.Sprintf("hmc: stream %d not configured", i))
	}
	st := &s.streams[i]
	return st.filledUntil < st.end && st.filledUntil-(st.next+int64(n)) < StreamBufferBytes
}

// Remaining returns how many bytes stream i still holds (including data
// not yet prefetched).
func (s *StreamBufferSet) Remaining(i int) int64 {
	st := &s.streams[i]
	return st.end - st.next
}

// Done reports whether every configured stream is fully consumed
// (all_stream_buffer_done in Fig. 4b).
func (s *StreamBufferSet) Done() bool {
	for i := range s.streams {
		if s.streams[i].next < s.streams[i].end {
			return false
		}
	}
	return true
}
