package hmc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ecocloud-go/mondrian/internal/dram"
	"github.com/ecocloud-go/mondrian/internal/noc"
)

func testGeom() dram.Geometry {
	g := dram.HMCGeometry()
	g.CapacityBytes = 1 << 20 // 1 MB vaults keep tests fast
	return g
}

func testSystem() *System {
	return NewSystem(4, 16, noc.FullyConnected, testGeom(), dram.HMCTiming())
}

func TestSystemLayout(t *testing.T) {
	s := testSystem()
	if s.NumVaults() != 64 {
		t.Fatalf("vaults = %d, want 64", s.NumVaults())
	}
	if s.CapacityBytes() != 64<<20 {
		t.Fatalf("capacity = %d", s.CapacityBytes())
	}
	if len(s.Cubes) != 4 || s.Cubes[0].Mesh.Tiles() != 16 {
		t.Fatal("cube layout wrong")
	}
	// Vault ownership is a partition of the address space.
	for i := 0; i < s.NumVaults(); i++ {
		v := s.Vault(i)
		if got := s.VaultOf(v.Base); got != v {
			t.Fatalf("VaultOf(base of %d) = vault %d", i, got.ID)
		}
		if got := s.VaultOf(v.Base + v.Size - 1); got != v {
			t.Fatalf("VaultOf(last of %d) = vault %d", i, got.ID)
		}
	}
}

func TestSystemPanicsOnNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-square vault count did not panic")
		}
	}()
	NewSystem(1, 12, noc.Star, testGeom(), dram.HMCTiming())
}

func TestVaultAlloc(t *testing.T) {
	s := testSystem()
	v := s.Vault(3)
	a1, err := v.Alloc(100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != v.Base {
		t.Fatalf("first alloc at %#x, want vault base %#x", a1, v.Base)
	}
	a2, err := v.Alloc(100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != v.Base+128 { // 100 rounded up to 128 by 64-alignment
		t.Fatalf("second alloc at %#x, want %#x", a2, v.Base+128)
	}
	if _, err := v.Alloc(v.Size, 64); err == nil {
		t.Fatal("oversized alloc should fail")
	}
	v.AllocReset()
	a3, _ := v.Alloc(16, 16)
	if a3 != v.Base {
		t.Fatal("AllocReset did not rewind")
	}
}

func TestVaultReadWriteChargeDRAM(t *testing.T) {
	s := testSystem()
	v := s.Vault(0)
	v.Read(v.Base, 64)
	v.Write(v.Base+64, 64)
	st := v.DRAM.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.ReadBytes != 64 || st.WriteBytes != 64 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVaultLocalPanicsOutside(t *testing.T) {
	s := testSystem()
	defer func() {
		if recover() == nil {
			t.Fatal("foreign address did not panic")
		}
	}()
	s.Vault(0).Read(s.Vault(1).Base, 8)
}

func TestPermutableWriteSequentialPlacement(t *testing.T) {
	s := testSystem()
	v := s.Vault(2)
	base, _ := v.Alloc(4096, 256)
	if err := v.SetPermRegion(base, 4096, 16); err != nil {
		t.Fatal(err)
	}
	if err := v.BeginShuffle(4096); err != nil {
		t.Fatal(err)
	}
	// Writes arrive targeting scattered addresses; controller appends.
	targets := []int64{base + 1024, base + 16, base + 3200, base + 512}
	for i, target := range targets {
		got, _, err := v.PermutableWrite(target, 16)
		if err != nil {
			t.Fatal(err)
		}
		if want := base + int64(i*16); got != want {
			t.Fatalf("write %d placed at %#x, want sequential %#x", i, got, want)
		}
	}
	if v.PermutedWrites != 4 {
		t.Fatalf("PermutedWrites = %d", v.PermutedWrites)
	}
	if got := v.EndShuffle(); got != 64 {
		t.Fatalf("EndShuffle bytes = %d, want 64", got)
	}
}

func TestPermutableWriteOutsideRegionPreservesAddress(t *testing.T) {
	s := testSystem()
	v := s.Vault(2)
	base, _ := v.Alloc(4096, 256)
	other, _ := v.Alloc(256, 256)
	if err := v.SetPermRegion(base, 4096, 16); err != nil {
		t.Fatal(err)
	}
	if err := v.BeginShuffle(16); err != nil {
		t.Fatal(err)
	}
	got, _, err := v.PermutableWrite(other, 16)
	if err != nil || got != other {
		t.Fatalf("outside-region write moved to %#x (err %v)", got, err)
	}
	if v.PermutedWrites != 0 {
		t.Fatal("outside-region write counted as permuted")
	}
}

func TestPermutableWriteInactivePreservesAddress(t *testing.T) {
	s := testSystem()
	v := s.Vault(1)
	base, _ := v.Alloc(1024, 256)
	if err := v.SetPermRegion(base, 1024, 16); err != nil {
		t.Fatal(err)
	}
	// No BeginShuffle: controller must not permute.
	got, _, err := v.PermutableWrite(base+512, 16)
	if err != nil || got != base+512 {
		t.Fatalf("inactive permutable write moved to %#x (err %v)", got, err)
	}
}

func TestShuffleOverflow(t *testing.T) {
	s := testSystem()
	v := s.Vault(0)
	base, _ := v.Alloc(64, 64)
	if err := v.SetPermRegion(base, 64, 16); err != nil {
		t.Fatal(err)
	}
	// Announcing more data than fits fails up front.
	if err := v.BeginShuffle(128); !errors.Is(err, ErrRegionOverflow) {
		t.Fatalf("BeginShuffle overflow err = %v", err)
	}
	// Announcing within bounds but writing past the end fails at write.
	if err := v.BeginShuffle(64); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := v.PermutableWrite(base, 16); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := v.PermutableWrite(base, 16); !errors.Is(err, ErrRegionOverflow) {
		t.Fatalf("append overflow err = %v", err)
	}
}

func TestShuffleCompletion(t *testing.T) {
	s := testSystem()
	v := s.Vault(0)
	base, _ := v.Alloc(256, 256)
	if err := v.SetPermRegion(base, 256, 16); err != nil {
		t.Fatal(err)
	}
	if err := v.BeginShuffle(48); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if v.ShuffleComplete() {
			t.Fatalf("complete after %d of 3 writes", i)
		}
		if _, _, err := v.PermutableWrite(base, 16); err != nil {
			t.Fatal(err)
		}
	}
	if !v.ShuffleComplete() {
		t.Fatal("not complete after all writes")
	}
}

func TestRecordInboundCompletesWithoutPermutation(t *testing.T) {
	s := testSystem()
	v := s.Vault(0)
	base, _ := v.Alloc(256, 256)
	if err := v.SetPermRegion(base, 256, 16); err != nil {
		t.Fatal(err)
	}
	if err := v.BeginShuffle(32); err != nil {
		t.Fatal(err)
	}
	v.Write(base, 16)
	v.RecordInbound(16)
	v.Write(base+128, 16)
	v.RecordInbound(16)
	if !v.ShuffleComplete() {
		t.Fatal("address-preserving shuffle did not complete")
	}
}

func TestSetPermRegionValidation(t *testing.T) {
	s := testSystem()
	v := s.Vault(0)
	if err := v.SetPermRegion(v.Base, 128, 512); err == nil {
		t.Fatal("object size > 256 accepted")
	}
	if err := v.SetPermRegion(v.Base+v.Size-64, 128, 16); err == nil {
		t.Fatal("region outside vault accepted")
	}
	if err := v.BeginShuffle(0); err == nil {
		t.Fatal("BeginShuffle without region accepted")
	}
}

func TestPermutabilityRowActivationBenefit(t *testing.T) {
	// The core hardware claim (§4.1.2): interleaved writes from many
	// sources activate rows repeatedly; permuted appends activate each
	// row exactly once.
	run := func(permute bool) uint64 {
		s := testSystem()
		v := s.Vault(0)
		const n = 4096 // 4096 16-byte tuples = 64 KB = 256 rows
		base, _ := v.Alloc(n*16, 256)
		if err := v.SetPermRegion(base, n*16, 16); err != nil {
			t.Fatal(err)
		}
		if err := v.BeginShuffle(n * 16); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		order := rng.Perm(n) // interleaved arrival targets
		for _, i := range order {
			target := base + int64(i*16)
			if permute {
				if _, _, err := v.PermutableWrite(target, 16); err != nil {
					t.Fatal(err)
				}
			} else {
				v.Write(target, 16)
				v.RecordInbound(16)
			}
		}
		return v.DRAM.Stats().Activations
	}
	perm, noperm := run(true), run(false)
	if perm != 64<<10/256 {
		t.Fatalf("permuted activations = %d, want one per row (%d)", perm, 64<<10/256)
	}
	if noperm < perm*5 {
		t.Fatalf("interleaved activations = %d, want ≫ %d", noperm, perm)
	}
}

func TestObjectBuffer(t *testing.T) {
	b, err := NewObjectBuffer(64)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Push(16); got != 0 {
		t.Fatalf("partial push flushed %d", got)
	}
	if got := b.Push(48); got != 1 {
		t.Fatalf("boundary push flushed %d, want 1", got)
	}
	if got := b.Push(160); got != 2 {
		t.Fatalf("large push flushed %d, want 2", got)
	}
	if b.Pending() != 32 {
		t.Fatalf("pending = %d, want 32", b.Pending())
	}
	if got := b.Drain(); got != 32 {
		t.Fatalf("drain = %d, want 32", got)
	}
	if b.Flushes != 4 {
		t.Fatalf("flushes = %d, want 4", b.Flushes)
	}
}

func TestObjectBufferRejectsOversized(t *testing.T) {
	if _, err := NewObjectBuffer(512); err == nil {
		t.Fatal("object size 512 accepted (max is 256)")
	}
	if _, err := NewObjectBuffer(0); err == nil {
		t.Fatal("object size 0 accepted")
	}
}

func TestStreamBuffersSequentialConsumption(t *testing.T) {
	s := testSystem()
	v := s.Vault(0)
	base, _ := v.Alloc(8192, 256)
	sb := NewStreamBufferSet(v)
	if err := sb.Configure([]Range{{base, base + 4096}, {base + 4096, base + 8192}}); err != nil {
		t.Fatal(err)
	}
	// Initial fills prime both buffers up to capacity (384 B in 256 B
	// granules → 512 B each).
	if sb.FillBytes != 1024 {
		t.Fatalf("initial fill = %d, want 1024", sb.FillBytes)
	}
	for !sb.Done() {
		for i := 0; i < 2; i++ {
			if sb.Remaining(i) > 0 && !sb.Pop(i, 16) {
				t.Fatalf("pop failed on stream %d", i)
			}
		}
	}
	if sb.FillBytes != 8192 {
		t.Fatalf("total fill = %d, want 8192", sb.FillBytes)
	}
	// Streaming must have perfect row locality: one activation per row.
	if acts := v.DRAM.Stats().Activations; acts != 8192/256 {
		t.Fatalf("activations = %d, want %d", acts, 8192/256)
	}
}

func TestStreamBuffersRejectTooMany(t *testing.T) {
	s := testSystem()
	v := s.Vault(0)
	sb := NewStreamBufferSet(v)
	ranges := make([]Range, NumStreamBuffers+1)
	for i := range ranges {
		ranges[i] = Range{v.Base, v.Base}
	}
	if err := sb.Configure(ranges); !errors.Is(err, ErrTooManyStreams) {
		t.Fatalf("err = %v", err)
	}
}

func TestStreamBuffersRejectRemote(t *testing.T) {
	s := testSystem()
	sb := NewStreamBufferSet(s.Vault(0))
	remote := s.Vault(1).Base
	if err := sb.Configure([]Range{{remote, remote + 64}}); err == nil {
		t.Fatal("remote stream accepted")
	}
}

func TestStreamBufferPopBounds(t *testing.T) {
	s := testSystem()
	v := s.Vault(0)
	base, _ := v.Alloc(64, 64)
	sb := NewStreamBufferSet(v)
	if err := sb.Configure([]Range{{base, base + 64}}); err != nil {
		t.Fatal(err)
	}
	if !sb.Pop(0, 64) {
		t.Fatal("full pop failed")
	}
	if sb.Pop(0, 1) {
		t.Fatal("pop past end succeeded")
	}
	if !sb.Done() {
		t.Fatal("Done() false after full consumption")
	}
}

func TestResetAllClearsState(t *testing.T) {
	s := testSystem()
	v := s.Vault(0)
	base, _ := v.Alloc(256, 256)
	if err := v.SetPermRegion(base, 256, 16); err != nil {
		t.Fatal(err)
	}
	if err := v.BeginShuffle(16); err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.PermutableWrite(base, 16); err != nil {
		t.Fatal(err)
	}
	s.Net.Transfer(0, 1, 256)
	s.ResetAll()
	if v.DRAM.Stats().Accesses() != 0 || v.PermutedWrites != 0 || v.ShuffleActive() {
		t.Fatal("ResetAll left vault state")
	}
	if s.MaxLinkBusyNs() != 0 {
		t.Fatal("ResetAll left link state")
	}
	if _, err := v.Alloc(16, 16); err != nil {
		t.Fatal("allocator not reset")
	}
}

func TestMaxBusyAccounting(t *testing.T) {
	s := testSystem()
	s.Vault(5).Read(s.Vault(5).Base, 256)
	if s.MaxVaultBusyNs() <= 0 {
		t.Fatal("vault busy not recorded")
	}
	s.Net.Transfer(0, 1, 512)
	if s.MaxLinkBusyNs() <= 0 {
		t.Fatal("link busy not recorded")
	}
	s.ResetTiming()
	if s.MaxVaultBusyNs() != 0 || s.MaxLinkBusyNs() != 0 {
		t.Fatal("ResetTiming left busy state")
	}
}

// Property: under any arrival order, permutable writes are placed densely
// and sequentially, and written bytes equal the announced total.
func TestPermutableSequentialProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func(seed int64, nObjs uint8) bool {
		n := int(nObjs)%64 + 1
		s := testSystem()
		v := s.Vault(0)
		base, err := v.Alloc(int64(n*16), 256)
		if err != nil {
			return false
		}
		if v.SetPermRegion(base, int64(n*16), 16) != nil {
			return false
		}
		if v.BeginShuffle(int64(n*16)) != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			target := base + int64(r.Intn(n)*16)
			addr, _, err := v.PermutableWrite(target, 16)
			if err != nil || addr != base+int64(i*16) {
				return false
			}
		}
		return v.ShuffleComplete() && v.EndShuffle() == int64(n*16)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamBufferEmptyRange(t *testing.T) {
	s := testSystem()
	v := s.Vault(0)
	sb := NewStreamBufferSet(v)
	if err := sb.Configure([]Range{{v.Base, v.Base}}); err != nil {
		t.Fatal(err)
	}
	if !sb.Done() {
		t.Fatal("empty stream should be done immediately")
	}
	if sb.Pop(0, 1) {
		t.Fatal("pop from empty stream succeeded")
	}
	if sb.FillBytes != 0 {
		t.Fatal("empty stream triggered fills")
	}
}

func TestStreamBufferReconfigure(t *testing.T) {
	s := testSystem()
	v := s.Vault(0)
	base, _ := v.Alloc(2048, 256)
	sb := NewStreamBufferSet(v)
	if err := sb.Configure([]Range{{base, base + 1024}}); err != nil {
		t.Fatal(err)
	}
	sb.Pop(0, 512)
	// Reconfiguring reuses the buffers for a new merge group.
	if err := sb.Configure([]Range{{base + 1024, base + 2048}}); err != nil {
		t.Fatal(err)
	}
	if sb.Remaining(0) != 1024 {
		t.Fatalf("remaining = %d after reconfigure", sb.Remaining(0))
	}
}

func TestStreamBufferFillLead(t *testing.T) {
	// The prefetcher keeps at most StreamBufferBytes of lead, in
	// row-sized granules: after the initial fill of a long stream it
	// must have fetched ceil(384/256) granules = 512 B, no more.
	s := testSystem()
	v := s.Vault(0)
	base, _ := v.Alloc(1<<16, 256)
	sb := NewStreamBufferSet(v)
	if err := sb.Configure([]Range{{base, base + 1<<16}}); err != nil {
		t.Fatal(err)
	}
	if sb.FillBytes != 512 {
		t.Fatalf("initial fill = %d, want 512", sb.FillBytes)
	}
	// Consuming one tuple keeps the lead under capacity: no refill yet.
	sb.Pop(0, 16)
	if sb.FillBytes != 512 {
		t.Fatalf("early pop refilled: %d", sb.FillBytes)
	}
	// Consuming a full granule triggers the next fill.
	sb.Pop(0, 240)
	if sb.FillBytes != 768 {
		t.Fatalf("fill after one granule = %d, want 768", sb.FillBytes)
	}
}

func TestObjectBufferPushValidation(t *testing.T) {
	b, _ := NewObjectBuffer(64)
	defer func() {
		if recover() == nil {
			t.Fatal("Push(0) did not panic")
		}
	}()
	b.Push(0)
}

func TestVaultAllocValidation(t *testing.T) {
	s := testSystem()
	v := s.Vault(0)
	if _, err := v.Alloc(0, 16); err == nil {
		t.Fatal("zero-size alloc accepted")
	}
	if _, err := v.Alloc(16, 0); err == nil {
		t.Fatal("zero alignment accepted")
	}
}

func TestVaultOfPanicsOutsideSpace(t *testing.T) {
	s := testSystem()
	defer func() {
		if recover() == nil {
			t.Fatal("address beyond last vault did not panic")
		}
	}()
	s.VaultOf(s.CapacityBytes())
}
