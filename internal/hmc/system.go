package hmc

import (
	"fmt"
	"math"

	"github.com/ecocloud-go/mondrian/internal/dram"
	"github.com/ecocloud-go/mondrian/internal/noc"
)

// Cube is one HMC device: a set of vaults interconnected by a 2D mesh on
// the logic layer, attached to the rest of the system by SerDes links.
type Cube struct {
	ID     int
	Vaults []*Vault
	Mesh   *noc.Mesh
}

// System is the memory fabric shared by all evaluated architectures: four
// 8 GB cubes of 16 vaults each in the paper's configuration, wired star
// (CPU-centric) or fully connected (NMP/Mondrian).
type System struct {
	Cubes    []*Cube
	Net      *noc.Network
	VaultCap int64

	vaults []*Vault // flat view, indexed by global vault ID

	// vaultShift is the shift form of the address→vault division, valid
	// when VaultCap is a power of two (every modeled configuration); 0
	// means "use the divide path".
	vaultShift uint
}

// NewSystem builds the memory fabric. vaultsPerCube must be a square so
// the mesh is square (16 vaults → 4×4 mesh).
func NewSystem(cubes, vaultsPerCube int, topo noc.Topology, geom dram.Geometry, tim dram.Timing) *System {
	if cubes <= 0 || vaultsPerCube <= 0 {
		panic("hmc: system needs at least one cube and vault")
	}
	side := int(math.Sqrt(float64(vaultsPerCube)))
	if side*side != vaultsPerCube {
		panic(fmt.Sprintf("hmc: vaultsPerCube %d is not a perfect square", vaultsPerCube))
	}
	s := &System{
		Net:      noc.NewNetwork(topo, cubes),
		VaultCap: geom.CapacityBytes,
	}
	if cap := geom.CapacityBytes; cap > 1 && cap&(cap-1) == 0 {
		for c := cap; c > 1; c >>= 1 {
			s.vaultShift++
		}
	}
	id := 0
	for c := 0; c < cubes; c++ {
		cube := &Cube{ID: c, Mesh: noc.NewMesh(side, side)}
		for t := 0; t < vaultsPerCube; t++ {
			v := NewVault(id, c, t, int64(id)*geom.CapacityBytes, geom, tim)
			cube.Vaults = append(cube.Vaults, v)
			s.vaults = append(s.vaults, v)
			id++
		}
		s.Cubes = append(s.Cubes, cube)
	}
	return s
}

// NumVaults returns the total vault count.
func (s *System) NumVaults() int { return len(s.vaults) }

// Vault returns the vault with the given global ID.
func (s *System) Vault(i int) *Vault {
	if i < 0 || i >= len(s.vaults) {
		panic(fmt.Sprintf("hmc: vault %d out of range [0,%d)", i, len(s.vaults)))
	}
	return s.vaults[i]
}

// Vaults returns the flat vault list.
func (s *System) Vaults() []*Vault { return s.vaults }

// VaultOf maps a global physical address to its owning vault.
func (s *System) VaultOf(addr int64) *Vault {
	var idx int64
	if s.vaultShift > 0 {
		idx = addr >> s.vaultShift
	} else {
		idx = addr / s.VaultCap
	}
	if addr < 0 || idx >= int64(len(s.vaults)) {
		panic(fmt.Sprintf("hmc: address %#x outside the %d-vault space", addr, len(s.vaults)))
	}
	return s.vaults[idx]
}

// CapacityBytes returns total system memory.
func (s *System) CapacityBytes() int64 {
	return int64(len(s.vaults)) * s.VaultCap
}

// TotalDRAMStats merges the per-vault DRAM shards in vault-ID order.
func (s *System) TotalDRAMStats() dram.Stats {
	var total dram.Stats
	for _, v := range s.vaults {
		total.Merge(v.DRAM.Stats())
	}
	return total
}

// MaxVaultBusyNs returns the largest per-vault DRAM busy time — the memory
// side's contribution to a barrier-synchronized phase's runtime.
func (s *System) MaxVaultBusyNs() float64 {
	var busy float64
	for _, v := range s.vaults {
		if b := v.DRAM.BusyNs(); b > busy {
			busy = b
		}
	}
	return busy
}

// MaxLinkBusyNs returns the largest SerDes link occupancy.
func (s *System) MaxLinkBusyNs() float64 {
	var busy float64
	for _, l := range s.Net.Links() {
		if b := l.Stats().BusyNs; b > busy {
			busy = b
		}
	}
	return busy
}

// ResetTiming clears busy accumulators and link/mesh stats between phases
// while preserving row-buffer and allocation state.
func (s *System) ResetTiming() {
	for _, v := range s.vaults {
		v.DRAM.ResetBusy()
	}
	for _, l := range s.Net.Links() {
		l.ResetStats()
	}
	for _, c := range s.Cubes {
		c.Mesh.ResetStats()
	}
}

// ResetAll clears all statistics, busy times, allocations and row state.
func (s *System) ResetAll() {
	for _, v := range s.vaults {
		v.DRAM.ResetStats()
		v.DRAM.ResetBusy()
		v.DRAM.CloseAllRows()
		v.AllocReset()
		v.PermutedWrites = 0
		v.perm = PermRegion{}
	}
	for _, l := range s.Net.Links() {
		l.ResetStats()
	}
	for _, c := range s.Cubes {
		c.Mesh.ResetStats()
	}
}
