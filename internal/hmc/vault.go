// Package hmc models the Hybrid Memory Cube hardware of the Mondrian Data
// Engine (§5): cubes of 16 vaults, each vault pairing a DRAM partition with
// a vault controller on the logic layer. The Mondrian extensions live
// here: permutable-region registers on the vault controller (§5.3), the
// 256 B object buffer that keeps data objects from straddling memory
// messages, and the eight 384 B programmable stream buffers that feed the
// compute units with binding prefetches (§5.2).
package hmc

import (
	"errors"
	"fmt"

	"github.com/ecocloud-go/mondrian/internal/dram"
)

// ErrRegionOverflow is returned when permutable writes exceed the
// destination buffer the CPU provisioned. The paper (§5.4) raises an
// exception for the CPU to handle (re-partitioning for skewed datasets).
var ErrRegionOverflow = errors.New("hmc: permutable region overflow")

// PermRegion is the vault controller's description of one permutable
// destination buffer (a set of special memory-mapped registers in §5.3).
type PermRegion struct {
	Base       int64 // global physical base address
	Size       int64 // provisioned bytes
	ObjectSize int   // granularity of permutability

	appendOff     int64 // next sequential write offset
	expectedBytes int64 // announced inbound data (histogram exchange)
	writtenBytes  int64
	active        bool
}

// Written returns how many bytes have been appended so far.
func (r *PermRegion) Written() int64 { return r.writtenBytes }

// Vault couples one DRAM partition with its controller state.
type Vault struct {
	ID    int // global vault index
	Cube  int // owning cube
	Tile  int // tile position on the cube's mesh
	Base  int64
	Size  int64
	DRAM  *dram.Device
	perm  PermRegion
	alloc int64 // bump allocator offset (vault-local)

	// PermutedWrites counts writes whose placement the controller chose.
	PermutedWrites uint64
}

// NewVault creates a vault owning [base, base+geom.CapacityBytes) of the
// global physical address space.
func NewVault(id, cube, tile int, base int64, geom dram.Geometry, tim dram.Timing) *Vault {
	return &Vault{
		ID: id, Cube: cube, Tile: tile,
		Base: base, Size: geom.CapacityBytes,
		DRAM: dram.NewDevice(geom, tim),
	}
}

// Contains reports whether a global address belongs to this vault.
func (v *Vault) Contains(addr int64) bool {
	return addr >= v.Base && addr < v.Base+v.Size
}

// local converts a global address to a vault-local one.
func (v *Vault) local(addr int64) int64 {
	if !v.Contains(addr) {
		panic(fmt.Sprintf("hmc: address %#x not in vault %d [%#x,%#x)", addr, v.ID, v.Base, v.Base+v.Size))
	}
	return addr - v.Base
}

// Alloc reserves n bytes (aligned to align) in the vault and returns the
// global base address of the reservation.
func (v *Vault) Alloc(n int64, align int64) (int64, error) {
	if n <= 0 || align <= 0 {
		return 0, fmt.Errorf("hmc: bad allocation n=%d align=%d", n, align)
	}
	off := (v.alloc + align - 1) / align * align
	if off+n > v.Size {
		return 0, fmt.Errorf("hmc: vault %d out of memory (%d requested, %d free)", v.ID, n, v.Size-off)
	}
	v.alloc = off + n
	return v.Base + off, nil
}

// AllocReset releases all allocations (between experiments).
func (v *Vault) AllocReset() { v.alloc = 0 }

// Read performs a read of size bytes at a global address, returning the
// DRAM latency in nanoseconds.
func (v *Vault) Read(addr int64, size int) float64 {
	return v.DRAM.AccessRange(v.local(addr), size, false)
}

// Write performs an ordinary (address-preserving) write.
func (v *Vault) Write(addr int64, size int) float64 {
	return v.DRAM.AccessRange(v.local(addr), size, true)
}

// ReadRun performs count sequential reads of stride bytes each starting at
// a global address — accounting identical to count Read calls. Each read's
// latency is added to stallAccum when non-nil, preserving the per-access
// float-addition order a scalar caller would produce.
func (v *Vault) ReadRun(addr int64, stride, count int, stallAccum *float64) {
	if count <= 0 {
		return
	}
	end := addr + int64(stride)*int64(count) - 1
	if !v.Contains(addr) || !v.Contains(end) {
		panic(fmt.Sprintf("hmc: run [%#x,%#x] not in vault %d", addr, end, v.ID))
	}
	v.DRAM.AccessRun(addr-v.Base, stride, count, false, stallAccum)
}

// WriteRun performs count sequential address-preserving writes of stride
// bytes each — accounting identical to count Write calls.
func (v *Vault) WriteRun(addr int64, stride, count int) {
	if count <= 0 {
		return
	}
	end := addr + int64(stride)*int64(count) - 1
	if !v.Contains(addr) || !v.Contains(end) {
		panic(fmt.Sprintf("hmc: run [%#x,%#x] not in vault %d", addr, end, v.ID))
	}
	v.DRAM.AccessRun(addr-v.Base, stride, count, true, nil)
}

// SetPermRegion programs the controller's permutable-region registers.
// Object sizes above 256 B are rejected: the object buffer bounds the
// granularity of permutability (§5.3); larger objects already enjoy row
// locality and need no permutation.
func (v *Vault) SetPermRegion(base, size int64, objectSize int) error {
	if objectSize <= 0 || objectSize > ObjectBufferBytes {
		return fmt.Errorf("hmc: object size %d outside (0,%d]", objectSize, ObjectBufferBytes)
	}
	if base < v.Base || base+size > v.Base+v.Size {
		return fmt.Errorf("hmc: permutable region [%#x,+%d) outside vault %d", base, size, v.ID)
	}
	v.perm = PermRegion{Base: base, Size: size, ObjectSize: objectSize}
	return nil
}

// Region returns the controller's current permutable region state.
func (v *Vault) Region() PermRegion { return v.perm }

// BeginShuffle arms permutability after the histogram exchange announced
// the expected inbound bytes. If the announced data overflows the
// provisioned buffer the controller refuses, mirroring the overflow
// exception of §5.4.
func (v *Vault) BeginShuffle(expectedBytes int64) error {
	if v.perm.ObjectSize == 0 {
		return errors.New("hmc: BeginShuffle without a programmed region")
	}
	if expectedBytes > v.perm.Size {
		return fmt.Errorf("%w: expecting %d bytes into %d-byte buffer (vault %d)",
			ErrRegionOverflow, expectedBytes, v.perm.Size, v.ID)
	}
	v.perm.expectedBytes = expectedBytes
	v.perm.writtenBytes = 0
	v.perm.appendOff = 0
	v.perm.active = true
	return nil
}

// ShuffleActive reports whether the controller is treating stores to the
// permutable region as permutable.
func (v *Vault) ShuffleActive() bool { return v.perm.active }

// PermutableWrite stores one object-sized message. If the region is armed
// the controller ignores the target address within the region and appends
// sequentially (the permutability optimization); otherwise the write goes
// to its original address. The chosen global address and the DRAM latency
// are returned.
func (v *Vault) PermutableWrite(origAddr int64, size int) (int64, float64, error) {
	if !v.perm.active || origAddr < v.perm.Base || origAddr >= v.perm.Base+v.perm.Size {
		return origAddr, v.Write(origAddr, size), nil
	}
	if v.perm.appendOff+int64(size) > v.perm.Size {
		return 0, 0, fmt.Errorf("%w: vault %d append %d past %d",
			ErrRegionOverflow, v.ID, v.perm.appendOff+int64(size), v.perm.Size)
	}
	addr := v.perm.Base + v.perm.appendOff
	v.perm.appendOff += int64(size)
	v.perm.writtenBytes += int64(size)
	v.PermutedWrites++
	lat := v.Write(addr, size)
	return addr, lat, nil
}

// PermutableWriteRun appends count object-sized messages while the region
// is armed, with accounting identical to count PermutableWrite calls whose
// targets fall inside the region. It returns the global address of the
// first append, how many writes were applied, and an error if the region
// overflowed mid-run — in which case, exactly like the scalar loop, the
// writes preceding the overflow have already been applied.
func (v *Vault) PermutableWriteRun(size, count int) (int64, int, error) {
	if !v.perm.active {
		return 0, 0, errors.New("hmc: PermutableWriteRun while shuffle not armed")
	}
	if count <= 0 {
		return v.perm.Base + v.perm.appendOff, 0, nil
	}
	applied := count
	if free := v.perm.Size - v.perm.appendOff; int64(applied)*int64(size) > free {
		applied = int(free / int64(size))
	}
	start := v.perm.Base + v.perm.appendOff
	if applied > 0 {
		v.perm.appendOff += int64(applied) * int64(size)
		v.perm.writtenBytes += int64(applied) * int64(size)
		v.PermutedWrites += uint64(applied)
		v.DRAM.AccessRun(start-v.Base, size, applied, true, nil)
	}
	if applied < count {
		return start, applied, fmt.Errorf("%w: vault %d append %d past %d",
			ErrRegionOverflow, v.ID, v.perm.appendOff+int64(size), v.perm.Size)
	}
	return start, applied, nil
}

// RecordInbound tracks address-preserving shuffle traffic so completion
// detection also works for systems without permutability (NMP baseline).
func (v *Vault) RecordInbound(size int) {
	if v.perm.active {
		v.perm.writtenBytes += int64(size)
	}
}

// ShuffleComplete reports whether all announced data has arrived — the
// condition on which the controller raises its MSI to every NMP unit.
func (v *Vault) ShuffleComplete() bool {
	return v.perm.active && v.perm.writtenBytes >= v.perm.expectedBytes
}

// EndShuffle disarms permutability (shuffle_end semantics) and returns how
// many bytes were appended.
func (v *Vault) EndShuffle() int64 {
	v.perm.active = false
	return v.perm.writtenBytes
}
