// Package mapreduce implements a MapReduce execution layer on top of the
// Mondrian engine, demonstrating the paper's claim that data
// permutability "also applies to the data partitioning and shuffling
// phase of MapReduce and any BSP-based graph processing algorithm"
// (§4.1.2): the shuffle between map and reduce treats each destination
// partition as an unordered bucket, so the vault controllers may place
// arriving intermediate tuples in any order.
//
// Jobs run functionally: mappers and reducers are real Go functions over
// tuples, and results are verified against an in-memory reference
// executor. Timing and energy come from the same engine models as the
// basic operators; the shuffle reuses the engine's permutable-store path
// when the system supports it.
package mapreduce

import (
	"fmt"
	"sort"

	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// Mapper transforms one input tuple into zero or more intermediate
// key/value tuples via emit.
type Mapper func(t tuple.Tuple, emit func(tuple.Tuple))

// Reducer folds one key's values into zero or more output tuples.
type Reducer func(key tuple.Key, values []tuple.Value, emit func(tuple.Tuple))

// Job describes a MapReduce computation and its instruction costs.
type Job struct {
	Name   string
	Map    Mapper
	Reduce Reducer

	// MapInsts / ReduceInsts are charged per input tuple and per reduced
	// value respectively (defaults 8 and 6 — a small transform and a
	// fold step). SIMD units divide these by SIMDFactor (default 4).
	MapInsts    float64
	ReduceInsts float64
	SIMDFactor  float64

	// Amplification estimates intermediate tuples per input tuple (for
	// buffer provisioning; default 1). Underestimates surface the §5.4
	// overflow exception.
	Amplification float64
}

func (j Job) mapInsts() float64 {
	if j.MapInsts > 0 {
		return j.MapInsts
	}
	return 8
}

func (j Job) reduceInsts() float64 {
	if j.ReduceInsts > 0 {
		return j.ReduceInsts
	}
	return 6
}

func (j Job) simdFactor() float64 {
	if j.SIMDFactor > 0 {
		return j.SIMDFactor
	}
	return 4
}

func (j Job) amplification() float64 {
	if j.Amplification > 0 {
		return j.Amplification
	}
	return 1
}

// Result reports a completed job.
type Result struct {
	// Out holds the reducer outputs, one region per vault.
	Out []*engine.Region
	// Keys is the number of distinct keys reduced.
	Keys int
	// Phase runtimes.
	MapNs, ShuffleNs, ReduceNs float64
}

// Ns returns the job's total runtime.
func (r *Result) Ns() float64 { return r.MapNs + r.ShuffleNs + r.ReduceNs }

// Run executes the job over the inputs (one region per vault).
func Run(e *engine.Engine, job Job, inputs []*engine.Region) (*Result, error) {
	if job.Map == nil || job.Reduce == nil {
		return nil, fmt.Errorf("mapreduce: job %q needs Map and Reduce", job.Name)
	}
	if len(inputs) != e.NumVaults() {
		return nil, fmt.Errorf("mapreduce: %d input regions for %d vaults", len(inputs), e.NumVaults())
	}
	nv := e.NumVaults()
	simd := e.Config().Core.SIMDBits > 0
	res := &Result{}

	// --- map phase: stream local input, emit into local staging -------
	total := 0
	for _, in := range inputs {
		total += in.Len()
	}
	stageCap := int(float64(total)/float64(nv)*job.amplification())*2 + 64
	staging := make([]*engine.Region, nv)
	for v := 0; v < nv; v++ {
		r, err := e.AllocOut(v, stageCap)
		if err != nil {
			return nil, err
		}
		staging[v] = r
	}
	mapInsts := job.mapInsts()
	if simd {
		mapInsts /= job.simdFactor()
	}
	t0 := e.TotalNs()
	e.BeginStep(engine.StepProfile{Name: "map", DepIPC: 1.5, InstPerAccess: 4,
		StreamFed: e.Config().UseStreams})
	if err := e.ForEachVault(func(v int, u *engine.Unit) error {
		readers, err := u.OpenStreams(inputs[v])
		if err != nil {
			return err
		}
		for {
			t, ok := readers[0].Next()
			if !ok {
				return nil
			}
			u.Charge(mapInsts)
			var emitErr error
			job.Map(t, func(out tuple.Tuple) {
				if emitErr != nil {
					return
				}
				if staging[v].Len() >= staging[v].Cap() {
					emitErr = fmt.Errorf("mapreduce: staging overflow in vault %d (raise Job.Amplification)", v)
					return
				}
				u.AppendLocal(staging[v], out)
			})
			if emitErr != nil {
				return emitErr
			}
		}
	}); err != nil {
		return nil, err
	}
	e.EndStep()
	e.Barrier()
	res.MapNs = e.TotalNs() - t0

	// --- shuffle phase: permutable redistribution by key hash ---------
	t1 := e.TotalNs()
	buckets, err := shuffle(e, staging)
	if err != nil {
		return nil, err
	}
	res.ShuffleNs = e.TotalNs() - t1

	// --- reduce phase: group each bucket by key, fold ------------------
	t2 := e.TotalNs()
	outs := make([]*engine.Region, nv)
	for v := 0; v < nv; v++ {
		r, err := e.AllocOut(v, maxInt(buckets[v].Len(), 1))
		if err != nil {
			return nil, err
		}
		outs[v] = r
	}
	res.Out = outs
	redInsts := job.reduceInsts()
	if simd {
		redInsts /= job.simdFactor()
	}
	keyCnt := make([]int, nv)
	e.BeginStep(engine.StepProfile{Name: "reduce", DepIPC: 1.5, InstPerAccess: 4,
		StreamFed: e.Config().UseStreams})
	if err := e.ForEachVault(func(v int, u *engine.Unit) error {
		b := buckets[v]
		// Read the bucket (streamed where supported) and group by key.
		readers, err := u.OpenStreams(b)
		if err != nil {
			return err
		}
		groups := make(map[tuple.Key][]tuple.Value)
		for {
			t, ok := readers[0].Next()
			if !ok {
				break
			}
			u.Charge(redInsts)
			groups[t.Key] = append(groups[t.Key], t.Val)
		}
		// Deterministic reduce order.
		keys := make([]tuple.Key, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		var emitErr error
		for _, k := range keys {
			u.Charge(redInsts * float64(len(groups[k])))
			job.Reduce(k, groups[k], func(out tuple.Tuple) {
				if emitErr != nil {
					return
				}
				if outs[v].Len() >= outs[v].Cap() {
					emitErr = fmt.Errorf("mapreduce: reduce output overflow in vault %d", v)
					return
				}
				u.AppendLocal(outs[v], out)
			})
			if emitErr != nil {
				return emitErr
			}
			keyCnt[v]++
		}
		return nil
	}); err != nil {
		return nil, err
	}
	e.EndStep()
	e.Barrier()
	for _, k := range keyCnt {
		res.Keys += k
	}
	res.ReduceNs = e.TotalNs() - t2
	return res, nil
}

// shuffle redistributes staged intermediate tuples to their key-hash
// vault, through the permutable path when the system supports it. It is
// the MapReduce twin of the operators' partitioning distribution step.
func shuffle(e *engine.Engine, staging []*engine.Region) ([]*engine.Region, error) {
	nv := e.NumVaults()
	dest := func(k tuple.Key) int { return int(uint64(k) % uint64(nv)) }

	// Histogram exchange (sizes the destination buffers).
	perSource := make([][]int64, nv)
	maxIn := 0
	inbound := make([]int64, nv)
	for v := 0; v < nv; v++ {
		perSource[v] = make([]int64, nv)
		for _, t := range staging[v].Tuples {
			perSource[v][dest(t.Key)]++
		}
		for d, n := range perSource[v] {
			inbound[d] += n
		}
	}
	for _, n := range inbound {
		if int(n) > maxIn {
			maxIn = int(n)
		}
	}
	dests, err := e.MallocPermutable(maxIn + 64)
	if err != nil {
		return nil, err
	}
	if err := e.ShuffleBegin(dests, perSource); err != nil {
		return nil, err
	}

	e.BeginStep(engine.StepProfile{Name: "mr-shuffle", DepIPC: 1.0, InstPerAccess: 4,
		StreamFed: e.Config().UseStreams})
	x := e.NewExchange(dests)
	if err := e.ForEachVault(func(v int, u *engine.Unit) error {
		ob := x.Outbox(v)
		for i := 0; i < staging[v].Len(); i++ {
			t := u.LoadTuple(staging[v], i)
			u.Charge(6)
			if err := ob.Send(dest(t.Key), t); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := x.Flush(); err != nil {
		return nil, err
	}
	e.EndStep()
	e.ShuffleEnd(dests)
	return dests, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RefRun executes the job in plain Go for verification.
func RefRun(job Job, inputs []tuple.Tuple) []tuple.Tuple {
	groups := make(map[tuple.Key][]tuple.Value)
	for _, t := range inputs {
		job.Map(t, func(out tuple.Tuple) {
			groups[out.Key] = append(groups[out.Key], out.Val)
		})
	}
	keys := make([]tuple.Key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var out []tuple.Tuple
	for _, k := range keys {
		job.Reduce(k, groups[k], func(t tuple.Tuple) { out = append(out, t) })
	}
	return out
}
