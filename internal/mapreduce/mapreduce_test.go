package mapreduce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ecocloud-go/mondrian/internal/cache"
	"github.com/ecocloud-go/mondrian/internal/cores"
	"github.com/ecocloud-go/mondrian/internal/dram"
	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/noc"
	"github.com/ecocloud-go/mondrian/internal/tuple"
	"github.com/ecocloud-go/mondrian/internal/workload"
)

func testEngine(t *testing.T, arch engine.Arch, perm bool) *engine.Engine {
	t.Helper()
	g := dram.HMCGeometry()
	g.CapacityBytes = 8 << 20
	cfg := engine.Config{
		Cubes: 2, VaultsPer: 4,
		Geometry: g, Timing: dram.HMCTiming(),
		ObjectSize: tuple.Size, BarrierNs: 1000,
		Topology: noc.FullyConnected,
	}
	switch arch {
	case engine.CPU:
		cfg.Arch = engine.CPU
		cfg.Core = cores.CortexA57()
		cfg.CPUCores = 4
		cfg.Topology = noc.Star
		cfg.L1 = cache.L1D32K()
		cfg.LLC = cache.LLC4M()
	case engine.NMP:
		cfg.Arch = engine.NMP
		cfg.Core = cores.Krait400()
		cfg.L1 = cache.L1D32K()
		cfg.Permutable = perm
	case engine.Mondrian:
		cfg.Arch = engine.Mondrian
		cfg.Core = cores.CortexA35Mondrian()
		cfg.Permutable = perm
		cfg.UseStreams = true
	}
	e, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func place(t *testing.T, e *engine.Engine, rel *tuple.Relation) []*engine.Region {
	t.Helper()
	parts := rel.SplitEven(e.NumVaults())
	regions := make([]*engine.Region, len(parts))
	for v, p := range parts {
		r, err := e.Place(v, p.Tuples)
		if err != nil {
			t.Fatal(err)
		}
		regions[v] = r
	}
	return regions
}

// wordCount is the canonical job: map emits (key, 1), reduce sums.
func wordCount() Job {
	return Job{
		Name: "wordcount",
		Map: func(t tuple.Tuple, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{Key: t.Key, Val: 1})
		},
		Reduce: func(k tuple.Key, vs []tuple.Value, emit func(tuple.Tuple)) {
			var sum tuple.Value
			for _, v := range vs {
				sum += v
			}
			emit(tuple.Tuple{Key: k, Val: sum})
		},
	}
}

func gatherOut(res *Result) []tuple.Tuple {
	var out []tuple.Tuple
	for _, r := range res.Out {
		out = append(out, r.Tuples...)
	}
	return out
}

func TestWordCountAcrossArchitectures(t *testing.T) {
	rel, err := workload.GroupBy(workload.Config{Seed: 3, Tuples: 4000}, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := RefRun(wordCount(), rel.Tuples)
	for _, tc := range []struct {
		name string
		arch engine.Arch
		perm bool
	}{
		{"NMP", engine.NMP, false},
		{"NMP-perm", engine.NMP, true},
		{"Mondrian", engine.Mondrian, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := testEngine(t, tc.arch, tc.perm)
			res, err := Run(e, wordCount(), place(t, e, rel))
			if err != nil {
				t.Fatal(err)
			}
			if !tuple.SameMultiset(gatherOut(res), want) {
				t.Fatal("wordcount output mismatch")
			}
			if res.Keys != len(want) {
				t.Fatalf("keys = %d, want %d", res.Keys, len(want))
			}
			if res.MapNs <= 0 || res.ShuffleNs <= 0 || res.ReduceNs <= 0 {
				t.Fatalf("phases: %+v", res)
			}
		})
	}
}

func TestMapAmplification(t *testing.T) {
	// A mapper that fans out 3 tuples per input needs Amplification.
	fanOut := Job{
		Name:          "fanout",
		Amplification: 3,
		Map: func(t tuple.Tuple, emit func(tuple.Tuple)) {
			for i := 0; i < 3; i++ {
				emit(tuple.Tuple{Key: t.Key + tuple.Key(i), Val: t.Val})
			}
		},
		Reduce: func(k tuple.Key, vs []tuple.Value, emit func(tuple.Tuple)) {
			emit(tuple.Tuple{Key: k, Val: tuple.Value(len(vs))})
		},
	}
	rel := workload.Uniform("in", workload.Config{Seed: 4, Tuples: 2000, KeySpace: 300})
	e := testEngine(t, engine.NMP, true)
	res, err := Run(e, fanOut, place(t, e, rel))
	if err != nil {
		t.Fatal(err)
	}
	if !tuple.SameMultiset(gatherOut(res), RefRun(fanOut, rel.Tuples)) {
		t.Fatal("fanout output mismatch")
	}
}

func TestMapOverflowSurfaces(t *testing.T) {
	under := Job{
		Name:          "underprovisioned",
		Amplification: 1, // actually fans out 8×
		Map: func(t tuple.Tuple, emit func(tuple.Tuple)) {
			for i := 0; i < 8; i++ {
				emit(tuple.Tuple{Key: t.Key, Val: t.Val})
			}
		},
		Reduce: func(k tuple.Key, vs []tuple.Value, emit func(tuple.Tuple)) {},
	}
	rel := workload.Uniform("in", workload.Config{Seed: 5, Tuples: 4000, KeySpace: 300})
	e := testEngine(t, engine.NMP, true)
	if _, err := Run(e, under, place(t, e, rel)); err == nil {
		t.Fatal("staging overflow not surfaced")
	}
}

func TestFilterJob(t *testing.T) {
	// A selective mapper (drop odd keys) with an identity-ish reducer.
	filter := Job{
		Name: "filter-even",
		Map: func(t tuple.Tuple, emit func(tuple.Tuple)) {
			if t.Key%2 == 0 {
				emit(t)
			}
		},
		Reduce: func(k tuple.Key, vs []tuple.Value, emit func(tuple.Tuple)) {
			for _, v := range vs {
				emit(tuple.Tuple{Key: k, Val: v})
			}
		},
	}
	rel := workload.Uniform("in", workload.Config{Seed: 6, Tuples: 3000, KeySpace: 1000})
	e := testEngine(t, engine.Mondrian, true)
	res, err := Run(e, filter, place(t, e, rel))
	if err != nil {
		t.Fatal(err)
	}
	want := RefRun(filter, rel.Tuples)
	if !tuple.SameMultiset(gatherOut(res), want) {
		t.Fatal("filter output mismatch")
	}
	for _, tp := range gatherOut(res) {
		if tp.Key%2 != 0 {
			t.Fatal("odd key survived the filter")
		}
	}
}

func TestJobValidation(t *testing.T) {
	e := testEngine(t, engine.NMP, true)
	if _, err := Run(e, Job{Name: "empty"}, nil); err == nil {
		t.Fatal("job without Map/Reduce accepted")
	}
	if _, err := Run(e, wordCount(), nil); err == nil {
		t.Fatal("wrong input shape accepted")
	}
}

func TestShuffleUsesPermutability(t *testing.T) {
	rel, err := workload.GroupBy(workload.Config{Seed: 7, Tuples: 8000}, 4)
	if err != nil {
		t.Fatal(err)
	}
	run := func(perm bool) uint64 {
		e := testEngine(t, engine.NMP, perm)
		if _, err := Run(e, wordCount(), place(t, e, rel)); err != nil {
			t.Fatal(err)
		}
		var permuted uint64
		for _, v := range e.Sys.Vaults() {
			permuted += v.PermutedWrites
		}
		return permuted
	}
	if run(true) == 0 {
		t.Fatal("permutable shuffle used no permuted writes")
	}
	if run(false) != 0 {
		t.Fatal("conventional shuffle used permuted writes")
	}
}

// Property: for any commutative job, the engine result equals the
// reference result regardless of permutability.
func TestMapReduceEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	job := wordCount()
	f := func(seed int64, n uint16, perm bool) bool {
		tuples := int(n)%2000 + 64
		rel := workload.Uniform("in", workload.Config{Seed: seed, Tuples: tuples, KeySpace: 200})
		e := testEngine(t, engine.NMP, perm)
		res, err := Run(e, job, place(t, e, rel))
		if err != nil {
			return false
		}
		return tuple.SameMultiset(gatherOut(res), RefRun(job, rel.Tuples))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestMapReduceDeterministic(t *testing.T) {
	rel, err := workload.GroupBy(workload.Config{Seed: 17, Tuples: 3000}, 4)
	if err != nil {
		t.Fatal(err)
	}
	run := func() float64 {
		e := testEngine(t, engine.Mondrian, true)
		res, err := Run(e, wordCount(), place(t, e, rel))
		if err != nil {
			t.Fatal(err)
		}
		return res.Ns()
	}
	if run() != run() {
		t.Fatal("mapreduce timing not deterministic")
	}
}

func TestJobDefaults(t *testing.T) {
	var j Job
	if j.mapInsts() != 8 || j.reduceInsts() != 6 || j.simdFactor() != 4 || j.amplification() != 1 {
		t.Fatalf("defaults: %v %v %v %v", j.mapInsts(), j.reduceInsts(), j.simdFactor(), j.amplification())
	}
	j = Job{MapInsts: 3, ReduceInsts: 2, SIMDFactor: 8, Amplification: 2}
	if j.mapInsts() != 3 || j.reduceInsts() != 2 || j.simdFactor() != 8 || j.amplification() != 2 {
		t.Fatal("overrides ignored")
	}
}
