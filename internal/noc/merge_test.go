package noc

import "testing"

// TestMeshStatsMergeOrderIndependent checks the shard-merge property for
// mesh statistics: any order and association of per-destination shards
// equals serial accumulation. Float fields use multiples of 0.25 so every
// sum is exact.
func TestMeshStatsMergeOrderIndependent(t *testing.T) {
	shards := make([]MeshStats, 12)
	for i := range shards {
		shards[i] = MeshStats{
			Messages: uint64(i+1) * 7,
			Bytes:    uint64(i+1) * 112,
			BitMM:    float64(3*i+1) * 0.5,
			BusyNs:   float64(i*i+2) * 0.25,
		}
	}
	var serial MeshStats
	for _, s := range shards {
		serial.Merge(s)
	}
	var reversed MeshStats
	for i := len(shards) - 1; i >= 0; i-- {
		reversed.Merge(shards[i])
	}
	if reversed != serial {
		t.Fatalf("reverse merge diverges: %+v vs %+v", reversed, serial)
	}
	var halves [2]MeshStats
	for i, s := range shards {
		halves[i%2].Merge(s)
	}
	halves[0].Merge(halves[1])
	if halves[0] != serial {
		t.Fatalf("two-way association diverges: %+v vs %+v", halves[0], serial)
	}
}

// TestLinkStatsMergeOrderIndependent is the SerDes twin.
func TestLinkStatsMergeOrderIndependent(t *testing.T) {
	shards := make([]LinkStats, 10)
	for i := range shards {
		shards[i] = LinkStats{
			Messages: uint64(i + 1),
			Bytes:    uint64(i+1) * 20,
			BusyNs:   float64(i+1) * 1.0, // 20 B at 160 Gb/s = 1 ns exactly
		}
	}
	var serial LinkStats
	for _, s := range shards {
		serial.Merge(s)
	}
	var reversed LinkStats
	for i := len(shards) - 1; i >= 0; i-- {
		reversed.Merge(shards[i])
	}
	if reversed != serial {
		t.Fatalf("reverse merge diverges: %+v vs %+v", reversed, serial)
	}
}

// TestMeshRecordBulkMatchesTransfers proves the aggregated-statistics path
// the parallel Exchange uses: RecordBulk(src, dst, size, n) leaves exactly
// the statistics n individual Transfer calls leave. The mesh runs at
// 1 GHz with millimetre hops, so every contribution is an integer and the
// n× multiplication is exact.
func TestMeshRecordBulkMatchesTransfers(t *testing.T) {
	for _, tc := range []struct {
		src, dst, size int
		n              uint64
	}{
		{0, 15, 16, 1},
		{0, 15, 16, 9},
		{3, 3, 16, 5},   // zero hops: local delivery still serializes
		{5, 6, 40, 7},   // multi-flit message
		{12, 1, 64, 33}, // long diagonal route
	} {
		a, b := NewMesh(4, 4), NewMesh(4, 4)
		for i := uint64(0); i < tc.n; i++ {
			a.Transfer(tc.src, tc.dst, tc.size)
		}
		b.RecordBulk(tc.src, tc.dst, tc.size, tc.n)
		if a.Stats() != b.Stats() {
			t.Fatalf("%+v: %d×Transfer %+v != RecordBulk %+v", tc, tc.n, a.Stats(), b.Stats())
		}
	}
	m := NewMesh(4, 4)
	m.RecordBulk(0, 1, 16, 0)
	if m.Stats() != (MeshStats{}) {
		t.Fatal("RecordBulk with n=0 recorded traffic")
	}
}

// TestNetworkRecordBulkMatchesTransfers does the same for the SerDes
// fabric across both topologies and all routing cases (cube↔cube,
// cube↔CPU, star two-hop). Sizes are multiples of 20 B, so each transfer
// is a whole nanosecond at 160 Gb/s and the bulk arithmetic is exact.
func TestNetworkRecordBulkMatchesTransfers(t *testing.T) {
	for _, topo := range []Topology{Star, FullyConnected} {
		for _, tc := range []struct {
			src, dst, size int
			n              uint64
		}{
			{0, 1, 20, 6},       // cube→cube (direct or via CPU by topology)
			{2, 0, 40, 11},      // reverse direction, distinct links
			{CPUNode, 3, 60, 4}, // CPU→cube
			{1, CPUNode, 20, 8}, // cube→CPU
			{2, 2, 20, 5},       // local: no links crossed
		} {
			a, b := NewNetwork(topo, 4), NewNetwork(topo, 4)
			for i := uint64(0); i < tc.n; i++ {
				a.Transfer(tc.src, tc.dst, tc.size)
			}
			b.RecordBulk(tc.src, tc.dst, tc.size, tc.n)
			la, lb := a.Links(), b.Links()
			if len(la) != len(lb) {
				t.Fatalf("%v: link count mismatch", topo)
			}
			for i := range la {
				if la[i].Stats() != lb[i].Stats() {
					t.Fatalf("%v %+v: link %d stats %+v != %+v",
						topo, tc, i, la[i].Stats(), lb[i].Stats())
				}
			}
		}
	}
}
