// Package noc models the interconnects of the evaluated systems: the 2D
// mesh network-on-chip that links the 16 vaults inside one HMC cube, and
// the SerDes links that connect cubes to each other and to the CPU.
//
// Paper Table 3: NOC is a 2D mesh with 16 B links at 3 cycles/hop; the
// inter-HMC network uses SerDes links at 10 GHz providing 160 Gb/s per
// direction, arranged fully connected for the NMP systems and as a star
// (through the CPU) for the CPU-centric system. Table 4 gives NOC energy
// of 0.04 pJ/bit/mm and SerDes energy of 3 pJ/bit busy, 1 pJ/bit idle.
package noc

import "fmt"

// Mesh models one cube's 2D mesh NoC with XY routing.
type Mesh struct {
	Width, Height int
	LinkBytes     int     // flit width in bytes (16 B in the paper)
	CyclesPerHop  int     // router+link latency per hop (3 in the paper)
	FreqGHz       float64 // NoC clock (1 GHz, matching the logic layer)
	HopMM         float64 // physical length of one hop in millimetres

	stats MeshStats

	// hops[src*tiles+dst] caches the XY hop counts (the mesh is small —
	// 16 tiles — and Hops sits on the per-access simulation path).
	hops []uint8
}

// MaxHopBucket bounds the per-hop message histogram in MeshStats; longer
// routes (impossible on the paper's 4×4 meshes, whose diameter is 6) fold
// into the last bucket.
const MaxHopBucket = 15

// MeshStats aggregates NoC activity for energy accounting.
type MeshStats struct {
	Messages uint64
	Bytes    uint64
	BitMM    float64 // Σ bits × millimetres traveled (energy basis)
	BusyNs   float64 // total link occupancy

	// HopCounts[h] counts messages that traveled h hops (h clamped to
	// MaxHopBucket) — the locality histogram behind the observability
	// layer's mesh_hops metric.
	HopCounts [MaxHopBucket + 1]uint64
}

// Merge folds another shard of statistics into s (plain field sums).
func (s *MeshStats) Merge(o MeshStats) {
	s.Messages += o.Messages
	s.Bytes += o.Bytes
	s.BitMM += o.BitMM
	s.BusyNs += o.BusyNs
	for i, n := range o.HopCounts {
		s.HopCounts[i] += n
	}
}

func (s *MeshStats) countHops(hops int, n uint64) {
	if hops > MaxHopBucket {
		hops = MaxHopBucket
	}
	s.HopCounts[hops] += n
}

// NewMesh creates a w×h mesh with the paper's link parameters.
func NewMesh(w, h int) *Mesh {
	if w <= 0 || h <= 0 {
		panic("noc: mesh dimensions must be positive")
	}
	m := &Mesh{Width: w, Height: h, LinkBytes: 16, CyclesPerHop: 3, FreqGHz: 1, HopMM: 1}
	tiles := w * h
	m.hops = make([]uint8, tiles*tiles)
	for s := 0; s < tiles; s++ {
		for d := 0; d < tiles; d++ {
			m.hops[s*tiles+d] = uint8(abs(s%w-d%w) + abs(s/w-d/w))
		}
	}
	return m
}

// Tiles returns the number of mesh endpoints.
func (m *Mesh) Tiles() int { return m.Width * m.Height }

// Stats returns a snapshot of accumulated mesh statistics.
func (m *Mesh) Stats() MeshStats { return m.stats }

// ResetStats clears the accumulated statistics.
func (m *Mesh) ResetStats() { m.stats = MeshStats{} }

// Hops returns the XY-routing hop count between two tiles.
func (m *Mesh) Hops(src, dst int) int {
	tiles := m.Tiles()
	if src < 0 || src >= tiles || dst < 0 || dst >= tiles {
		panic(fmt.Sprintf("noc: tile out of range (src=%d dst=%d tiles=%d)", src, dst, tiles))
	}
	if m.hops != nil {
		return int(m.hops[src*tiles+dst])
	}
	sx, sy := src%m.Width, src/m.Width
	dx, dy := dst%m.Width, dst/m.Width
	return abs(sx-dx) + abs(sy-dy)
}

// Transfer accounts for moving size bytes from src to dst and returns the
// latency in nanoseconds: per-hop pipeline latency plus serialization of
// the message over the flit-wide links.
func (m *Mesh) Transfer(src, dst, size int) float64 {
	if size <= 0 {
		panic("noc: transfer size must be positive")
	}
	hops := m.Hops(src, dst)
	m.stats.Messages++
	m.stats.Bytes += uint64(size)
	m.stats.BitMM += float64(size*8) * float64(hops) * m.HopMM
	m.stats.countHops(hops, 1)
	flits := (size + m.LinkBytes - 1) / m.LinkBytes
	cycleNs := 1.0 / m.FreqGHz
	// Head latency: hops × cyclesPerHop; body streams behind at one flit
	// per cycle (wormhole routing).
	lat := float64(hops*m.CyclesPerHop)*cycleNs + float64(flits-1)*cycleNs
	if hops == 0 {
		lat = float64(flits-1) * cycleNs
	}
	m.stats.BusyNs += float64(flits) * cycleNs * float64(max(hops, 1))
	return lat
}

// RecordBulk accounts for n identical size-byte messages from src to dst
// without returning a latency. It is the aggregated-statistics path used
// by engine.Exchange, whose senders ignore per-message latency (the mesh
// model is stateless: Transfer's latency depends only on src, dst, size).
func (m *Mesh) RecordBulk(src, dst, size int, n uint64) {
	if n == 0 {
		return
	}
	if size <= 0 {
		panic("noc: transfer size must be positive")
	}
	hops := m.Hops(src, dst)
	m.stats.Messages += n
	m.stats.Bytes += uint64(size) * n
	m.stats.BitMM += float64(size*8) * float64(hops) * m.HopMM * float64(n)
	m.stats.countHops(hops, n)
	flits := (size + m.LinkBytes - 1) / m.LinkBytes
	cycleNs := 1.0 / m.FreqGHz
	m.stats.BusyNs += float64(flits) * cycleNs * float64(max(hops, 1)) * float64(n)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
