package noc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeshHopsXY(t *testing.T) {
	m := NewMesh(4, 4)
	for _, tc := range []struct {
		src, dst, want int
	}{
		{0, 0, 0},
		{0, 3, 3},  // same row
		{0, 12, 3}, // same column
		{0, 15, 6}, // opposite corners
		{5, 10, 2}, // (1,1)→(2,2)
		{15, 0, 6}, // symmetric
	} {
		if got := m.Hops(tc.src, tc.dst); got != tc.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", tc.src, tc.dst, got, tc.want)
		}
	}
}

func TestMeshHopsSymmetric(t *testing.T) {
	m := NewMesh(4, 4)
	rng := rand.New(rand.NewSource(3))
	f := func(a, b uint8) bool {
		s, d := int(a)%16, int(b)%16
		return m.Hops(s, d) == m.Hops(d, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestMeshTransferLatency(t *testing.T) {
	m := NewMesh(4, 4)
	// 64 B over 3 hops: head 3 hops × 3 cycles, body 3 more flits.
	lat := m.Transfer(0, 3, 64)
	want := float64(3*3) + 3 // 1 ns per cycle at 1 GHz
	if lat != want {
		t.Fatalf("latency = %v, want %v", lat, want)
	}
	s := m.Stats()
	if s.Messages != 1 || s.Bytes != 64 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BitMM != 64*8*3 {
		t.Fatalf("BitMM = %v, want %v", s.BitMM, 64*8*3)
	}
}

func TestMeshLocalTransfer(t *testing.T) {
	m := NewMesh(4, 4)
	lat := m.Transfer(5, 5, 16)
	if lat != 0 {
		t.Fatalf("single-flit local transfer latency = %v, want 0", lat)
	}
	if m.Stats().BitMM != 0 {
		t.Fatal("local transfer should travel zero bit-mm")
	}
}

func TestMeshPanics(t *testing.T) {
	m := NewMesh(2, 2)
	for _, fn := range []func(){
		func() { m.Hops(0, 4) },
		func() { m.Transfer(0, 1, 0) },
		func() { NewMesh(0, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSerDesLatencyAndStats(t *testing.T) {
	l := NewSerDesLink()
	lat := l.Transfer(200) // 1600 bits at 160 Gb/s = 10 ns
	if lat != 10 {
		t.Fatalf("latency = %v, want 10", lat)
	}
	if s := l.Stats(); s.BusyNs != 10 || s.Bytes != 200 || s.Messages != 1 {
		t.Fatalf("stats = %+v", s)
	}
	l.ResetStats()
	if l.Stats().Bytes != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestStarRoutesThroughCPU(t *testing.T) {
	n := NewNetwork(Star, 4)
	if n.HopCount(0, 1) != 2 {
		t.Fatalf("star cube↔cube hops = %d, want 2", n.HopCount(0, 1))
	}
	if n.HopCount(CPUNode, 2) != 1 {
		t.Fatal("CPU↔cube should be one hop")
	}
	lat := n.Transfer(0, 1, 200)
	if lat != 20 { // two 10 ns link crossings
		t.Fatalf("star transfer latency = %v, want 20", lat)
	}
	// Both endpoint CPU links must have been charged.
	var busy int
	for _, l := range n.Links() {
		if l.Stats().Bytes > 0 {
			busy++
		}
	}
	if busy != 2 {
		t.Fatalf("%d links busy, want 2", busy)
	}
}

func TestFullyConnectedDirect(t *testing.T) {
	n := NewNetwork(FullyConnected, 4)
	if n.HopCount(0, 3) != 1 {
		t.Fatal("fully-connected cubes should be one hop apart")
	}
	lat := n.Transfer(0, 3, 200)
	if lat != 10 {
		t.Fatalf("direct transfer latency = %v, want 10", lat)
	}
	// Link count: 2×4 CPU link directions + 4×3 cube link directions.
	if got := len(n.Links()); got != 20 {
		t.Fatalf("links = %d, want 20", got)
	}
	// Opposing directions use distinct links (160 Gb/s per direction).
	n.Transfer(3, 0, 200)
	var busyLinks int
	for _, l := range n.Links() {
		if l.Stats().Bytes > 0 {
			busyLinks++
			if l.Stats().Bytes != 200 {
				t.Fatalf("link bytes = %d, want 200", l.Stats().Bytes)
			}
		}
	}
	if busyLinks != 2 {
		t.Fatalf("busy link directions = %d, want 2", busyLinks)
	}
}

func TestNetworkLocalAndCPUTransfers(t *testing.T) {
	n := NewNetwork(FullyConnected, 4)
	if n.Transfer(2, 2, 100) != 0 {
		t.Fatal("local transfer should cost nothing")
	}
	if n.Transfer(CPUNode, 1, 200) != 10 {
		t.Fatal("CPU→cube should cross one link")
	}
	if n.Transfer(1, CPUNode, 200) != 10 {
		t.Fatal("cube→CPU should cross one link")
	}
	if n.HopCount(2, 2) != 0 {
		t.Fatal("self hop count should be 0")
	}
}

func TestNetworkPanicsOnBadCube(t *testing.T) {
	n := NewNetwork(Star, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range cube did not panic")
		}
	}()
	n.Transfer(0, 5, 8)
}

func TestTopologyString(t *testing.T) {
	if Star.String() != "star" || FullyConnected.String() != "fully-connected" {
		t.Fatal("unexpected topology strings")
	}
	if Topology(9).String() != "Topology(9)" {
		t.Fatal("unexpected fallback string")
	}
}

// Property: star topology is never cheaper than fully connected for
// cube↔cube traffic, and byte accounting balances.
func TestTopologyCostProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func(a, b uint8, sz uint16) bool {
		src, dst := int(a)%4, int(b)%4
		size := int(sz)%4096 + 1
		star := NewNetwork(Star, 4)
		full := NewNetwork(FullyConnected, 4)
		ls, lf := star.Transfer(src, dst, size), full.Transfer(src, dst, size)
		if ls < lf {
			return false
		}
		var starBytes, fullBytes uint64
		for _, l := range star.Links() {
			starBytes += l.Stats().Bytes
		}
		for _, l := range full.Links() {
			fullBytes += l.Stats().Bytes
		}
		if src == dst {
			return starBytes == 0 && fullBytes == 0
		}
		return starBytes == uint64(2*size) && fullBytes == uint64(size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestMeshResetStats(t *testing.T) {
	m := NewMesh(4, 4)
	m.Transfer(0, 5, 64)
	m.ResetStats()
	if s := m.Stats(); s.Messages != 0 || s.BitMM != 0 || s.BusyNs != 0 {
		t.Fatalf("stats after reset: %+v", s)
	}
}

func TestMeshBusyAccumulates(t *testing.T) {
	m := NewMesh(4, 4)
	m.Transfer(0, 15, 256)
	first := m.Stats().BusyNs
	m.Transfer(0, 15, 256)
	if m.Stats().BusyNs != 2*first {
		t.Fatalf("busy not additive: %v then %v", first, m.Stats().BusyNs)
	}
}
