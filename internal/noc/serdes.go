package noc

import "fmt"

// SerDesLink models one inter-device serial link direction pair. The paper
// uses SerDes links at 10 GHz with 160 Gb/s of bandwidth per direction.
type SerDesLink struct {
	BandwidthGbps float64 // per direction

	stats LinkStats
}

// LinkStats aggregates SerDes link activity.
type LinkStats struct {
	Messages uint64
	Bytes    uint64
	BusyNs   float64
}

// Merge folds another shard of statistics into s (plain field sums).
func (s *LinkStats) Merge(o LinkStats) {
	s.Messages += o.Messages
	s.Bytes += o.Bytes
	s.BusyNs += o.BusyNs
}

// NewSerDesLink returns a link with the paper's 160 Gb/s bandwidth.
func NewSerDesLink() *SerDesLink { return &SerDesLink{BandwidthGbps: 160} }

// Stats returns a snapshot of the accumulated link statistics.
func (l *SerDesLink) Stats() LinkStats { return l.stats }

// ResetStats clears the accumulated link statistics.
func (l *SerDesLink) ResetStats() { l.stats = LinkStats{} }

// Transfer accounts for size bytes crossing the link in one direction and
// returns the serialization latency in nanoseconds.
func (l *SerDesLink) Transfer(size int) float64 {
	if size <= 0 {
		panic("noc: transfer size must be positive")
	}
	l.stats.Messages++
	l.stats.Bytes += uint64(size)
	ns := float64(size*8) / l.BandwidthGbps // bits / (Gb/s) = ns
	l.stats.BusyNs += ns
	return ns
}

// RecordBulk accounts for n identical size-byte transfers without
// returning a latency (the aggregated path of engine.Exchange; the link
// model is stateless, so the per-message latency is a pure function of
// size).
func (l *SerDesLink) RecordBulk(size int, n uint64) {
	if n == 0 {
		return
	}
	if size <= 0 {
		panic("noc: transfer size must be positive")
	}
	l.stats.Messages += n
	l.stats.Bytes += uint64(size) * n
	l.stats.BusyNs += float64(size*8) / l.BandwidthGbps * float64(n)
}

// Topology selects how cubes are wired to each other and to the CPU.
type Topology int

const (
	// Star wires every cube to the CPU only; cube↔cube traffic crosses
	// two links via the CPU. This is the CPU-centric system's topology.
	Star Topology = iota
	// FullyConnected wires every cube pair directly, plus each cube to
	// the CPU. This is the NMP systems' topology.
	FullyConnected
)

// String implements fmt.Stringer.
func (t Topology) String() string {
	switch t {
	case Star:
		return "star"
	case FullyConnected:
		return "fully-connected"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// CPUNode is the node index representing the CPU in a Network.
const CPUNode = -1

// Network is the inter-device SerDes fabric over a set of cubes and a CPU.
// Every link is directional: the paper's SerDes links provide 160 Gb/s
// per direction, so opposing flows do not share bandwidth.
type Network struct {
	Topology Topology
	Cubes    int

	cpuTx, cpuRx []*SerDesLink   // CPU→cube i and cube i→CPU
	cubeLinks    [][]*SerDesLink // cubeLinks[src][dst], src≠dst
}

// NewNetwork builds the SerDes network for the given topology.
func NewNetwork(topology Topology, cubes int) *Network {
	if cubes <= 0 {
		panic("noc: network needs at least one cube")
	}
	n := &Network{Topology: topology, Cubes: cubes}
	n.cpuTx = make([]*SerDesLink, cubes)
	n.cpuRx = make([]*SerDesLink, cubes)
	for i := 0; i < cubes; i++ {
		n.cpuTx[i] = NewSerDesLink()
		n.cpuRx[i] = NewSerDesLink()
	}
	if topology == FullyConnected {
		n.cubeLinks = make([][]*SerDesLink, cubes)
		for i := range n.cubeLinks {
			n.cubeLinks[i] = make([]*SerDesLink, cubes)
			for j := range n.cubeLinks[i] {
				if i != j {
					n.cubeLinks[i][j] = NewSerDesLink()
				}
			}
		}
	}
	return n
}

// Links returns every distinct link direction in the network (for energy
// accounting and busy-time bounds).
func (n *Network) Links() []*SerDesLink {
	out := make([]*SerDesLink, 0, 2*len(n.cpuTx))
	out = append(out, n.cpuTx...)
	out = append(out, n.cpuRx...)
	if n.Topology == FullyConnected {
		for i := 0; i < n.Cubes; i++ {
			for j := 0; j < n.Cubes; j++ {
				if i != j {
					out = append(out, n.cubeLinks[i][j])
				}
			}
		}
	}
	return out
}

// LinkNames returns a stable human-readable name for every link, aligned
// index-for-index with Links(): cpu_tx_<cube> (CPU→cube), cpu_rx_<cube>
// (cube→CPU), then cube_<src>_<dst> for the direct cube pairs of
// fully-connected topologies.
func (n *Network) LinkNames() []string {
	out := make([]string, 0, 2*len(n.cpuTx))
	for i := range n.cpuTx {
		out = append(out, fmt.Sprintf("cpu_tx_%d", i))
	}
	for i := range n.cpuRx {
		out = append(out, fmt.Sprintf("cpu_rx_%d", i))
	}
	if n.Topology == FullyConnected {
		for i := 0; i < n.Cubes; i++ {
			for j := 0; j < n.Cubes; j++ {
				if i != j {
					out = append(out, fmt.Sprintf("cube_%d_%d", i, j))
				}
			}
		}
	}
	return out
}

// Transfer moves size bytes between two nodes (cube index or CPUNode) and
// returns total serialization latency across the links crossed.
func (n *Network) Transfer(src, dst, size int) float64 {
	if src == dst {
		return 0
	}
	switch {
	case src == CPUNode:
		return n.cpuTx[n.check(dst)].Transfer(size)
	case dst == CPUNode:
		return n.cpuRx[n.check(src)].Transfer(size)
	case n.Topology == FullyConnected:
		return n.cubeLinks[n.check(src)][n.check(dst)].Transfer(size)
	default:
		// Star: cube → CPU → cube crosses two links.
		return n.cpuRx[n.check(src)].Transfer(size) + n.cpuTx[n.check(dst)].Transfer(size)
	}
}

// RecordBulk accounts for n identical size-byte transfers between two
// nodes, crossing the same links Transfer would, without returning a
// latency.
func (n *Network) RecordBulk(src, dst, size int, count uint64) {
	if src == dst || count == 0 {
		return
	}
	switch {
	case src == CPUNode:
		n.cpuTx[n.check(dst)].RecordBulk(size, count)
	case dst == CPUNode:
		n.cpuRx[n.check(src)].RecordBulk(size, count)
	case n.Topology == FullyConnected:
		n.cubeLinks[n.check(src)][n.check(dst)].RecordBulk(size, count)
	default:
		// Star: cube → CPU → cube crosses two links.
		n.cpuRx[n.check(src)].RecordBulk(size, count)
		n.cpuTx[n.check(dst)].RecordBulk(size, count)
	}
}

// HopCount returns how many SerDes links a transfer crosses (0 for local).
func (n *Network) HopCount(src, dst int) int {
	switch {
	case src == dst:
		return 0
	case src == CPUNode || dst == CPUNode:
		return 1
	case n.Topology == FullyConnected:
		return 1
	default:
		return 2
	}
}

func (n *Network) check(cube int) int {
	if cube < 0 || cube >= n.Cubes {
		panic(fmt.Sprintf("noc: cube %d out of range [0,%d)", cube, n.Cubes))
	}
	return cube
}
