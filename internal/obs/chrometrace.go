package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Chrome trace_event export: renders a Span tree as the JSON object
// format Perfetto and chrome://tracing open directly. Every event is a
// "X" (complete) event on the simulated clock — ts/dur are microseconds,
// so simulated nanoseconds divide by 1e3 — plus "M" metadata events
// naming the tracks. Because spans are built from deterministic engine
// state and attrs marshal with sorted keys, the output is byte-identical
// across host parallelism (pinned by TestChromeTraceDeterminism).
//
// Track (tid) assignment: the run/phase/step/exchange hierarchy renders
// on tid 0 ("engine"); per-unit spans (`unit_N`) render on tid N+1
// ("unit N") so vault-level concurrency is visible as parallel tracks.

// chromeEvent is one entry of the trace_event "traceEvents" array. Field
// order here fixes the JSON field order (encoding/json emits struct
// fields in declaration order), which the determinism test relies on.
type chromeEvent struct {
	Name string             `json:"name"`
	Ph   string             `json:"ph"`
	Ts   float64            `json:"ts"`
	Dur  float64            `json:"dur,omitempty"`
	Pid  int                `json:"pid"`
	Tid  int                `json:"tid"`
	Args map[string]float64 `json:"args,omitempty"`
}

// chromeMeta is a "M" metadata event (thread naming).
type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

type chromeDoc struct {
	TraceEvents     []json.RawMessage `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the span tree rooted at root as Chrome
// trace_event JSON. A nil root writes an empty (still valid) document.
func WriteChromeTrace(w io.Writer, root *Span) error {
	var events []json.RawMessage
	tids := map[int]struct{}{}
	collectTids(root, tids)
	order := make([]int, 0, len(tids))
	for tid := range tids {
		order = append(order, tid)
	}
	sort.Ints(order)
	for _, tid := range order {
		name := "engine"
		if tid > 0 {
			name = "unit " + strconv.Itoa(tid-1)
		}
		b, err := json.Marshal(chromeMeta{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]string{"name": name},
		})
		if err != nil {
			return err
		}
		events = append(events, b)
	}
	var err error
	events, err = appendSpanEvents(events, root)
	if err != nil {
		return err
	}
	if events == nil {
		events = []json.RawMessage{}
	}
	b, err := json.MarshalIndent(chromeDoc{TraceEvents: events, DisplayTimeUnit: "ns"}, "", " ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

func collectTids(s *Span, tids map[int]struct{}) {
	if s == nil {
		return
	}
	tids[spanTid(s)] = struct{}{}
	for _, c := range s.Children {
		collectTids(c, tids)
	}
}

// spanTid maps a span to its track: unit_N spans go to tid N+1,
// everything else to the engine track (tid 0).
func spanTid(s *Span) int {
	if n, ok := strings.CutPrefix(s.Name, "unit_"); ok {
		if id, err := strconv.Atoi(n); err == nil && id >= 0 {
			return id + 1
		}
	}
	return 0
}

func appendSpanEvents(events []json.RawMessage, s *Span) ([]json.RawMessage, error) {
	if s == nil {
		return events, nil
	}
	ev := chromeEvent{
		Name: s.Name,
		Ph:   "X",
		Ts:   s.StartNs / 1e3, // simulated ns -> trace µs
		Dur:  s.DurationNs() / 1e3,
		Pid:  0,
		Tid:  spanTid(s),
		Args: s.Attrs, // map marshals with sorted keys: deterministic
	}
	b, err := json.Marshal(ev)
	if err != nil {
		return nil, err
	}
	events = append(events, b)
	for _, c := range s.Children {
		events, err = appendSpanEvents(events, c)
		if err != nil {
			return nil, err
		}
	}
	return events, nil
}
