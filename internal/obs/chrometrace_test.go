package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// traceDoc mirrors the trace_event JSON object format for assertions.
type traceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestWriteChromeTrace(t *testing.T) {
	root := &Span{Name: "run", StartNs: 0, EndNs: 4000}
	ph := root.Child("partition", 0, 3000)
	ph.SetAttr("instructions", 1234)
	st := ph.Child("scatter", 0, 2000)
	st.Child("unit_0", 0, 1500)
	st.Child("unit_3", 0, 2000)
	x := st.Child("exchange", 0, 2000)
	x.SetAttr("bytes", 4096)
	root.Child("probe", 3000, 4000)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, root); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}

	var metas, complete int
	byName := map[string][]int{} // name -> tids
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			metas++
			if e.Name != "thread_name" {
				t.Fatalf("unexpected metadata event %q", e.Name)
			}
		case "X":
			complete++
			byName[e.Name] = append(byName[e.Name], e.Tid)
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	// Tracks: engine (0), unit 0 (1), unit 3 (4).
	if metas != 3 {
		t.Fatalf("thread metadata events = %d, want 3", metas)
	}
	if complete != 7 {
		t.Fatalf("complete events = %d, want 7", complete)
	}
	if tids := byName["unit_0"]; len(tids) != 1 || tids[0] != 1 {
		t.Fatalf("unit_0 tid = %v, want [1]", tids)
	}
	if tids := byName["unit_3"]; len(tids) != 1 || tids[0] != 4 {
		t.Fatalf("unit_3 tid = %v, want [4]", tids)
	}
	if tids := byName["run"]; len(tids) != 1 || tids[0] != 0 {
		t.Fatalf("run tid = %v, want [0]", tids)
	}
	// Simulated ns ÷ 1000 = trace µs.
	for _, e := range doc.TraceEvents {
		if e.Name == "probe" {
			if e.Ts != 3 || e.Dur != 1 {
				t.Fatalf("probe ts/dur = %g/%g µs, want 3/1", e.Ts, e.Dur)
			}
		}
	}
	// Attrs survive as args.
	found := false
	for _, e := range doc.TraceEvents {
		if e.Name == "exchange" {
			if v, ok := e.Args["bytes"].(float64); !ok || v != 4096 {
				t.Fatalf("exchange args = %v, want bytes=4096", e.Args)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("exchange event missing:\n%s", buf.String())
	}
}

func TestWriteChromeTraceNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatalf("nil span: %v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-span output must still be valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("nil span must render no events")
	}
}
