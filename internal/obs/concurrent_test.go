package obs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentRegistryHammer is the -race proof of the Concurrent()
// contract: writer goroutines hammer Counter/Gauge/Histogram handles —
// both pre-existing and registered mid-flight — while readers snapshot
// and export. Run under `go test -race ./internal/obs/`.
func TestConcurrentRegistryHammer(t *testing.T) {
	r := NewRegistry()
	pre := r.Counter("pre_existing") // handle taken before Concurrent()
	r.Concurrent()

	const writers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("writer_%d", w)
			for i := 0; i < iters; i++ {
				pre.Inc()
				r.Counter(name + "_c").Add(2)
				r.Gauge(name + "_g").Set(float64(i))
				r.Histogram(name+"_h", []float64{1, 10, 100}).Observe(float64(i % 128))
				r.Histogram("shared_h", []float64{1, 10, 100}).Observe(float64(i % 7))
			}
		}(w)
	}
	// Readers: snapshot and Prometheus-export while writers run.
	for rd := 0; rd < 4; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = r.Snapshot()
				var buf bytes.Buffer
				if err := WritePrometheus(&buf, r); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				_ = r.Names()
			}
		}()
	}
	wg.Wait()

	snap := r.Snapshot()
	if got := snap.Counters["pre_existing"]; got != writers*iters {
		t.Fatalf("pre_existing = %d, want %d (pre-Concurrent handles must be synchronized too)", got, writers*iters)
	}
	for w := 0; w < writers; w++ {
		if got := snap.Counters[fmt.Sprintf("writer_%d_c", w)]; got != 2*iters {
			t.Fatalf("writer_%d_c = %d, want %d", w, got, 2*iters)
		}
	}
	if got := snap.Histograms["shared_h"].Count; got != writers*iters {
		t.Fatalf("shared_h count = %d, want %d", got, writers*iters)
	}
}

// TestConcurrentMergeAndIdempotence: Merge still works in Concurrent
// mode (shards are plain registries), and Concurrent() is idempotent and
// nil-safe.
func TestConcurrentMergeAndIdempotence(t *testing.T) {
	var nilReg *Registry
	if nilReg.Concurrent() != nil {
		t.Fatalf("nil.Concurrent() must stay nil")
	}
	r := NewRegistry().Concurrent()
	if r.Concurrent() != r {
		t.Fatalf("Concurrent must be idempotent")
	}
	sh := r.NewShard()
	sh.Counter("c").Add(5)
	sh.Histogram("h", []float64{1}).Observe(0.5)
	if err := r.Merge(sh); err != nil {
		t.Fatalf("merge into concurrent registry: %v", err)
	}
	if r.Counter("c").Value() != 5 {
		t.Fatalf("merge lost counter")
	}
	// Handles registered via Merge must be stamped: hammer one briefly.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("c").Inc()
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 5+400 {
		t.Fatalf("c = %d, want 405", got)
	}
}
