package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
)

// ManifestSchema identifies the manifest JSON layout; bump on breaking
// changes so downstream tooling can dispatch on it.
const ManifestSchema = "mondrian-run-manifest/v1"

// PhaseSummary is one operator phase (partition, probe, ...) in the
// manifest: its simulated interval plus the host wall time the engine
// spent inside it. WallNs lives here (not in Host) but is stripped by
// Deterministic() along with the rest of the host-dependent data.
type PhaseSummary struct {
	Name        string  `json:"name"`
	SimulatedNs float64 `json:"simulated_ns"`
	WallNs      int64   `json:"wall_ns,omitempty"`
}

// HostInfo is the non-deterministic section of a manifest: everything
// that legitimately varies across machines, processes and parallelism
// levels. Deterministic() zeroes it before golden comparison.
type HostInfo struct {
	GoVersion   string `json:"go_version,omitempty"`
	GOOS        string `json:"goos,omitempty"`
	GOARCH      string `json:"goarch,omitempty"`
	GitRevision string `json:"git_revision,omitempty"`
	Parallelism int    `json:"parallelism,omitempty"`
	WallNs      int64  `json:"wall_ns,omitempty"`
	Timestamp   string `json:"timestamp,omitempty"`
}

// Manifest is the machine-readable record of one simulation run: the
// configuration that produced it, per-phase simulated/wall breakdown,
// every metric in the registry, and (optionally) the span tree.
// Everything outside Host and per-phase WallNs is deterministic.
type Manifest struct {
	Schema   string `json:"schema"`
	System   string `json:"system"`
	Operator string `json:"operator"`

	// Params is supplied by the caller (e.g. simulate.ManifestParams):
	// any JSON-marshalable struct describing the workload. Struct fields
	// marshal in declaration order, so the JSON form is deterministic.
	Params any `json:"params,omitempty"`

	Verified         bool            `json:"verified"`
	SimulatedTotalNs float64         `json:"simulated_total_ns"`
	Phases           []PhaseSummary  `json:"phases,omitempty"`
	Metrics          Snapshot        `json:"metrics"`
	Windows          []WindowSummary `json:"windows,omitempty"`
	Spans            *Span           `json:"spans,omitempty"`
	Host             HostInfo        `json:"host"`
}

// WindowSummary is the percentile digest of one histogram family in the
// manifest — the same p50/p95/p99 view the live /tenants endpoint serves,
// computed here from the run's cumulative buckets so offline manifests
// and live snapshots read the same way. Deterministic: derived purely
// from bucket counts.
type WindowSummary struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// SummarizeHistograms digests every histogram in s into a WindowSummary,
// sorted by name (deterministic). Returns nil when s has no histograms.
func SummarizeHistograms(s Snapshot) []WindowSummary {
	if len(s.Histograms) == 0 {
		return nil
	}
	names := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]WindowSummary, 0, len(names))
	for _, name := range names {
		h := s.Histograms[name]
		out = append(out, WindowSummary{
			Name:  name,
			Count: h.Count,
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		})
	}
	return out
}

// Deterministic returns a copy of m with every host-dependent field
// zeroed: the Host section and each phase's WallNs. Two runs of the same
// workload at different -parallelism levels (or on different machines)
// must produce byte-identical JSON for the result — this is the object
// the golden determinism suite compares.
func (m Manifest) Deterministic() Manifest {
	m.Host = HostInfo{}
	if len(m.Phases) > 0 {
		phases := make([]PhaseSummary, len(m.Phases))
		copy(phases, m.Phases)
		for i := range phases {
			phases[i].WallNs = 0
		}
		m.Phases = phases
	}
	return m
}

// WriteJSON marshals the manifest with indentation and a trailing
// newline.
func (m Manifest) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteJSONLine marshals the manifest compactly on a single line — the
// append-friendly form mondrian-bench uses for BENCH_PR5.json.
func (m Manifest) WriteJSONLine(w io.Writer) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// NewHostInfo captures the current process's build/runtime identity.
// Timestamp and WallNs are left for the caller (they need a clock).
func NewHostInfo(parallelism int) HostInfo {
	return HostInfo{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GitRevision: GitRevision(),
		Parallelism: parallelism,
	}
}

// GitRevision returns the VCS revision stamped into the binary by the Go
// toolchain, suffixed with "+dirty" for modified trees. Empty when no VCS
// info is available (e.g. `go test` binaries).
func GitRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, dirty string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev == "" {
		return ""
	}
	return rev + dirty
}
