// Package obs is the simulator's zero-dependency observability layer:
// a metrics registry (counters, gauges, fixed-bucket histograms), a
// simulated-time span tree, rolling live windows with percentile
// estimation, and exporters — a machine-readable JSON run manifest,
// Prometheus text format, and Chrome trace_event JSON.
//
// Design constraints, in order:
//
//   - Determinism. Every metric recorded from simulation state must be
//     byte-identical across host parallelism levels. The engine therefore
//     harvests metrics from the simulation's own deterministic statistics
//     (cache/DRAM/NoC counters, per-unit accumulators) at serial points —
//     step and phase boundaries — rather than instrumenting concurrent
//     hot paths. Registries are shard-mergeable (NewShard/Merge) so
//     per-worker recording composes into one deterministic total when the
//     shards are merged in a fixed order.
//   - Near-zero cost when disabled. A nil *Registry is a valid "off"
//     handle: every method on a nil Registry, Counter, Gauge or Histogram
//     is a no-op returning nil, so instrumented code needs no branches
//     beyond the ones the nil receivers already provide, and the hot
//     loops allocate nothing (pinned by engine's AllocsPerRun tests and
//     the BenchmarkObsOverhead delta budget).
//   - Zero dependencies. Only the standard library.
//
// Metrics are identified by name; a Prometheus-style label set may be
// embedded in the name with Label (`dram_row_hits{vault="3"}`). Metrics
// are not internally synchronized by default: a registry (or shard) must
// be owned by one goroutine at a time, which is exactly the worker-pool
// shard model. A long-lived serving registry that must be snapshotted
// while writers are active opts into synchronization with Concurrent()
// — see its doc for the exact contract.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counter is a monotonically increasing uint64 metric. The zero value is
// ready to use; a nil Counter ignores all updates.
type Counter struct {
	v  uint64
	mu *sync.Mutex // non-nil only for handles of a Concurrent() registry
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	if c.mu != nil {
		c.mu.Lock()
		c.v += n
		c.mu.Unlock()
		return
	}
	c.v += n
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	if c.mu != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	return c.v
}

// Gauge is a float64 metric representing a current value. A nil Gauge
// ignores all updates.
type Gauge struct {
	v   float64
	set bool
	mu  *sync.Mutex // non-nil only for handles of a Concurrent() registry
}

// Set assigns the gauge's value. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	if g.mu != nil {
		g.mu.Lock()
		defer g.mu.Unlock()
	}
	g.v, g.set = v, true
}

// Add adjusts the gauge by d. No-op on a nil receiver.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	if g.mu != nil {
		g.mu.Lock()
		defer g.mu.Unlock()
	}
	g.v, g.set = g.v+d, true
}

// Value returns the gauge's current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	if g.mu != nil {
		g.mu.Lock()
		defer g.mu.Unlock()
	}
	return g.v
}

// Histogram is a fixed-bucket histogram: bounds[i] is the inclusive upper
// bound of bucket i, and one implicit overflow bucket catches everything
// above the last bound. A nil Histogram ignores all observations.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the overflow (+Inf) bucket
	count  uint64
	sum    float64
	mu     *sync.Mutex // non-nil only for handles of a Concurrent() registry
}

// Observe records one observation. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records n identical observations of v — equivalent to n
// Observe(v) calls (the bulk form the engine's post-run harvesting uses).
// No-op on a nil receiver or n == 0.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if h == nil || n == 0 {
		return
	}
	if h.mu != nil {
		h.mu.Lock()
		defer h.mu.Unlock()
	}
	h.observeLocked(v, n)
}

func (h *Histogram) observeLocked(v float64, n uint64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i] += n
	h.count += n
	h.sum += v * float64(n)
}

// Snapshot returns the histogram's current state (zero value when nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	if h.mu != nil {
		h.mu.Lock()
		defer h.mu.Unlock()
	}
	return h.snapshotLocked()
}

func (h *Histogram) snapshotLocked() HistogramSnapshot {
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
	}
}

// Registry holds named metrics. A nil *Registry is the disabled fast
// path: Counter/Gauge/Histogram return nil handles whose methods no-op.
type Registry struct {
	metrics map[string]any    // *Counter | *Gauge | *Histogram
	order   []string          // registration order (stable export basis)
	help    map[string]string // family -> HELP text (Prometheus export)
	sync    *sync.Mutex       // non-nil after Concurrent(): serializes every access
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// Concurrent switches the registry into its synchronized mode and
// returns it: every subsequent metric write (through handles already
// handed out or future ones), lookup, snapshot and export is serialized
// on one internal mutex, so a reader may snapshot or export while
// writers are active — the serving layer's live-introspection contract
// (DESIGN.md §17). Call it before the registry is shared; the switch
// itself is not synchronized against concurrent use. The default
// unsynchronized mode stays the deterministic single-owner fast path,
// and a nil registry remains the disabled no-op handle.
func (r *Registry) Concurrent() *Registry {
	if r == nil {
		return nil
	}
	if r.sync == nil {
		r.sync = &sync.Mutex{}
		for _, m := range r.metrics {
			stamp(m, r.sync)
		}
	}
	return r
}

// stamp attaches the registry's mutex to one metric handle.
func stamp(m any, mu *sync.Mutex) {
	switch h := m.(type) {
	case *Counter:
		h.mu = mu
	case *Gauge:
		h.mu = mu
	case *Histogram:
		h.mu = mu
	}
}

// lock/unlock guard registry-level state in Concurrent mode and are free
// no-ops otherwise.
func (r *Registry) lock() {
	if r.sync != nil {
		r.sync.Lock()
	}
}

func (r *Registry) unlock() {
	if r.sync != nil {
		r.sync.Unlock()
	}
}

// Counter returns (registering on first use) the named counter.
// Returns nil — a valid no-op handle — on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.lock()
	defer r.unlock()
	return r.counterLocked(name)
}

func (r *Registry) counterLocked(name string) *Counter {
	if m, ok := r.metrics[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
		}
		return c
	}
	c := &Counter{mu: r.sync}
	r.register(name, c)
	return c
}

// Gauge returns (registering on first use) the named gauge.
// Returns nil — a valid no-op handle — on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.lock()
	defer r.unlock()
	return r.gaugeLocked(name)
}

func (r *Registry) gaugeLocked(name string) *Gauge {
	if m, ok := r.metrics[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
		}
		return g
	}
	g := &Gauge{mu: r.sync}
	r.register(name, g)
	return g
}

// Histogram returns (registering on first use) the named histogram with
// the given bucket upper bounds, which must be sorted ascending. A
// re-registration must use identical bounds. Returns nil — a valid no-op
// handle — on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.lock()
	defer r.unlock()
	return r.histogramLocked(name, bounds)
}

func (r *Registry) histogramLocked(name string, bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not sorted", name))
	}
	if m, ok := r.metrics[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
		}
		if !equalBounds(h.bounds, bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
		}
		return h
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
		mu:     r.sync,
	}
	r.register(name, h)
	return h
}

func (r *Registry) register(name string, m any) {
	r.metrics[name] = m
	r.order = append(r.order, name)
}

// SetHelp records a HELP string for a metric family, emitted by the
// Prometheus exporter (escaped per the text exposition format). No-op on
// a nil registry.
func (r *Registry) SetHelp(family, help string) {
	if r == nil {
		return
	}
	r.lock()
	defer r.unlock()
	if r.help == nil {
		r.help = make(map[string]string)
	}
	r.help[family] = help
}

// Names returns the registered metric names in sorted order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.lock()
	defer r.unlock()
	return r.namesLocked()
}

func (r *Registry) namesLocked() []string {
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	return names
}

// NewShard returns an empty registry intended for single-owner recording
// by one worker; Merge folds shards back into the parent. (Shards share
// no state with the parent — the schema materializes on demand — and are
// always unsynchronized, whatever mode the parent is in.)
func (r *Registry) NewShard() *Registry {
	if r == nil {
		return nil
	}
	return NewRegistry()
}

// Merge folds the shards' metrics into r, visiting shards in argument
// order and each shard's metrics in its registration order — so merging
// is deterministic whenever the shard order is. Counters and histogram
// buckets sum; gauges take the last Set value in merge order. Metrics
// absent from r are registered. Merging a histogram into an existing one
// with different bounds is an error. Nil shards are skipped; merging into
// a nil registry is a no-op. The shards themselves must be quiescent.
func (r *Registry) Merge(shards ...*Registry) error {
	if r == nil {
		return nil
	}
	r.lock()
	defer r.unlock()
	for _, s := range shards {
		if s == nil {
			continue
		}
		for _, name := range s.order {
			switch m := s.metrics[name].(type) {
			case *Counter:
				r.counterLocked(name).v += m.v
			case *Gauge:
				if m.set {
					g := r.gaugeLocked(name)
					g.v, g.set = m.v, true
				}
			case *Histogram:
				if ex, ok := r.metrics[name]; ok {
					h, ok := ex.(*Histogram)
					if !ok {
						return fmt.Errorf("obs: merge: metric %q is %T in destination", name, ex)
					}
					if !equalBounds(h.bounds, m.bounds) {
						return fmt.Errorf("obs: merge: histogram %q bounds differ", name)
					}
					for i, c := range m.counts {
						h.counts[i] += c
					}
					h.count += m.count
					h.sum += m.sum
					continue
				}
				h := r.histogramLocked(name, m.bounds)
				copy(h.counts, m.counts)
				h.count, h.sum = m.count, m.sum
			}
		}
	}
	return nil
}

// HistogramSnapshot is the exported state of one histogram. Counts has
// len(Bounds)+1 entries; the last is the overflow (+Inf) bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts by linear interpolation within the selected bucket — the same
// estimator Prometheus's histogram_quantile uses. Observations in the
// overflow bucket clamp to the last finite bound. Returns 0 when the
// histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	return quantileFromBuckets(s.Bounds, s.Counts, s.Count, q)
}

// quantileFromBuckets is the shared bucket-interpolation estimator used
// by HistogramSnapshot.Quantile and the rolling Window.
func quantileFromBuckets(bounds []float64, counts []uint64, total uint64, q float64) float64 {
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i, bound := range bounds {
		prev := cum
		cum += counts[i]
		if float64(cum) >= rank {
			lower := 0.0
			if i > 0 {
				lower = bounds[i-1]
			}
			if counts[i] == 0 {
				return bound
			}
			frac := (rank - float64(prev)) / float64(counts[i])
			if frac < 0 {
				frac = 0
			}
			return lower + (bound-lower)*frac
		}
	}
	// Overflow bucket: clamp to the last finite bound.
	return bounds[len(bounds)-1]
}

// Snapshot is the exported state of a whole registry. The maps marshal
// with sorted keys (encoding/json), so the JSON form is deterministic.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot exports every metric's current value (zero value when nil).
// On a Concurrent() registry the whole snapshot is one critical section,
// so it is a consistent point-in-time view even with writers active.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.lock()
	defer r.unlock()
	for _, name := range r.order {
		switch m := r.metrics[name].(type) {
		case *Counter:
			if s.Counters == nil {
				s.Counters = make(map[string]uint64)
			}
			s.Counters[name] = m.v
		case *Gauge:
			if s.Gauges == nil {
				s.Gauges = make(map[string]float64)
			}
			s.Gauges[name] = m.v
		case *Histogram:
			if s.Histograms == nil {
				s.Histograms = make(map[string]HistogramSnapshot)
			}
			s.Histograms[name] = m.snapshotLocked()
		}
	}
	return s
}

// Label appends one label to a metric name in Prometheus syntax:
// Label("dram_row_hits", "vault", "3") == `dram_row_hits{vault="3"}`,
// and labeling an already-labeled name extends its label set. The value
// is escaped per the text exposition format (backslash, quote, newline).
func Label(name, key, value string) string {
	value = escapeLabelValue(value)
	if strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + `,` + key + `="` + value + `"}`
	}
	return name + `{` + key + `="` + value + `"}`
}

// escapeLabelValue escapes a label value for the Prometheus text
// exposition format: backslash, double-quote and line feed.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string for the text exposition format:
// backslash and line feed (quotes stay literal there).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// splitName separates a possibly-labeled metric name into its family name
// and label body: `a{b="c"}` → ("a", `b="c"`).
func splitName(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
