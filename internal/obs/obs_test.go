package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 2})
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil metric handles")
	}
	// All of these must be safe no-ops.
	c.Add(3)
	c.Inc()
	g.Set(1.5)
	g.Add(2)
	h.Observe(1)
	h.ObserveN(5, 10)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatalf("nil metrics must read as zero")
	}
	if err := r.Merge(NewRegistry()); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
	if s := r.NewShard(); s != nil {
		t.Fatalf("nil registry shard must be nil")
	}
	if snap := r.Snapshot(); snap.Counters != nil || snap.Gauges != nil || snap.Histograms != nil {
		t.Fatalf("nil snapshot must be empty")
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil || buf.Len() != 0 {
		t.Fatalf("nil prom export: err=%v len=%d", err, buf.Len())
	}
}

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests")
	c.Add(2)
	c.Inc()
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if r.Counter("requests") != c {
		t.Fatalf("re-registration must return the same counter")
	}

	g := r.Gauge("temp")
	g.Set(10)
	g.Add(-2.5)
	if got := g.Value(); got != 7.5 {
		t.Fatalf("gauge = %g, want 7.5", got)
	}

	h := r.Histogram("lat", []float64{1, 10, 100})
	h.Observe(0.5) // bucket 0 (<=1)
	h.Observe(1)   // bucket 0 (inclusive upper bound)
	h.Observe(5)   // bucket 1
	h.ObserveN(50, 3)
	h.Observe(1000) // overflow
	snap := h.Snapshot()
	wantCounts := []uint64{2, 1, 3, 1}
	if !reflect.DeepEqual(snap.Counts, wantCounts) {
		t.Fatalf("hist counts = %v, want %v", snap.Counts, wantCounts)
	}
	if snap.Count != 7 {
		t.Fatalf("hist count = %d, want 7", snap.Count)
	}
	if snap.Sum != 0.5+1+5+150+1000 {
		t.Fatalf("hist sum = %g", snap.Sum)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic registering gauge over counter")
		}
	}()
	r.Gauge("x")
}

func TestHistogramBoundsMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic re-registering with different bounds")
		}
	}()
	r.Histogram("h", []float64{1, 3})
}

// TestMergePropertyEqualsSingleShard is the satellite property test: a
// random stream of metric operations, partitioned across N shards and
// merged in shard order, must equal the same stream recorded into a
// single registry (also in shard order, since gauge merge is last-wins).
func TestMergePropertyEqualsSingleShard(t *testing.T) {
	bounds := []float64{1, 4, 16, 64}
	names := []string{"a", "b", Label("c", "vault", "0"), Label("c", "vault", "1")}
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		nShards := 1 + rng.Intn(8)

		parent := NewRegistry()
		shards := make([]*Registry, nShards)
		for i := range shards {
			shards[i] = parent.NewShard()
		}
		single := NewRegistry()

		// Record the same operations per shard, replaying them into
		// `single` in shard order (the order Merge visits).
		for si := 0; si < nShards; si++ {
			nOps := rng.Intn(40)
			for op := 0; op < nOps; op++ {
				name := names[rng.Intn(len(names))]
				switch rng.Intn(3) {
				case 0:
					n := uint64(rng.Intn(100))
					shards[si].Counter("cnt_" + name).Add(n)
					single.Counter("cnt_" + name).Add(n)
				case 1:
					v := rng.Float64() * 100
					shards[si].Gauge("g_" + name).Set(v)
					single.Gauge("g_" + name).Set(v)
				case 2:
					// Integral observations: histogram sums are exact, so
					// grouped (per-shard) and sequential accumulation agree
					// bit-for-bit. Engine harvesting observes integral values
					// (hop counts, byte sizes), which is this same domain.
					v := float64(rng.Intn(128))
					n := uint64(1 + rng.Intn(10))
					shards[si].Histogram("h_"+name, bounds).ObserveN(v, n)
					single.Histogram("h_"+name, bounds).ObserveN(v, n)
				}
			}
		}
		if err := parent.Merge(shards...); err != nil {
			t.Fatalf("trial %d: merge: %v", trial, err)
		}
		got, want := parent.Snapshot(), single.Snapshot()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (%d shards): merged snapshot differs\n got: %+v\nwant: %+v",
				trial, nShards, got, want)
		}
		// The JSON forms must agree byte-for-byte too (map keys sort).
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(want)
		if !bytes.Equal(gj, wj) {
			t.Fatalf("trial %d: JSON snapshots differ", trial)
		}
	}
}

func TestMergeBoundsConflict(t *testing.T) {
	a := NewRegistry()
	a.Histogram("h", []float64{1, 2}).Observe(1)
	b := NewRegistry()
	b.Histogram("h", []float64{1, 3}).Observe(1)
	if err := a.Merge(b); err == nil {
		t.Fatalf("expected bounds-conflict error")
	}
}

func TestLabelAndSplit(t *testing.T) {
	n := Label("dram_row_hits", "vault", "3")
	if n != `dram_row_hits{vault="3"}` {
		t.Fatalf("Label = %q", n)
	}
	n2 := Label(n, "cube", "1")
	if n2 != `dram_row_hits{vault="3",cube="1"}` {
		t.Fatalf("nested Label = %q", n2)
	}
	f, l := splitName(n2)
	if f != "dram_row_hits" || l != `vault="3",cube="1"` {
		t.Fatalf("splitName = %q / %q", f, l)
	}
	f, l = splitName("plain")
	if f != "plain" || l != "" {
		t.Fatalf("splitName(plain) = %q / %q", f, l)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("bytes_total", "link", "cpu_tx_0")).Add(64)
	r.Counter(Label("bytes_total", "link", "cpu_tx_1")).Add(128)
	r.Gauge("ipc").Set(1.5)
	h := r.Histogram("hops", []float64{1, 2, 4})
	h.ObserveN(1, 3)
	h.ObserveN(3, 2)
	h.Observe(9)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	want := []string{
		"# TYPE bytes_total counter",
		`bytes_total{link="cpu_tx_0"} 64`,
		`bytes_total{link="cpu_tx_1"} 128`,
		"# TYPE ipc gauge",
		"ipc 1.5",
		"# TYPE hops histogram",
		`hops_bucket{le="1"} 3`,
		`hops_bucket{le="2"} 3`,
		`hops_bucket{le="4"} 5`,
		`hops_bucket{le="+Inf"} 6`,
		"hops_sum 18",
		"hops_count 6",
	}
	for _, line := range want {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("prometheus output missing %q:\n%s", line, out)
		}
	}
	// TYPE header must appear exactly once per family.
	if strings.Count(out, "# TYPE bytes_total counter") != 1 {
		t.Fatalf("duplicate TYPE header:\n%s", out)
	}
}

func TestSpanTree(t *testing.T) {
	root := &Span{Name: "run", StartNs: 0, EndNs: 100}
	p := root.Child("partition", 0, 60)
	p.SetAttr("bytes", 4096)
	root.Child("probe", 60, 100)
	if root.CountSpans() != 3 {
		t.Fatalf("CountSpans = %d, want 3", root.CountSpans())
	}
	if p.DurationNs() != 60 {
		t.Fatalf("DurationNs = %g", p.DurationNs())
	}
	var buf bytes.Buffer
	if err := root.WriteTree(&buf, -1); err != nil {
		t.Fatalf("WriteTree: %v", err)
	}
	out := buf.String()
	for _, frag := range []string{"run [0..100 ns, 100 ns]", "  partition", "bytes=4096", "  probe"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("tree output missing %q:\n%s", frag, out)
		}
	}
	// Depth limit 1 keeps only root+children (here: everything); depth 0
	// prints only the root.
	buf.Reset()
	if err := root.WriteTree(&buf, 0); err != nil {
		t.Fatalf("WriteTree depth 0: %v", err)
	}
	if strings.Contains(buf.String(), "partition") {
		t.Fatalf("depth 0 must not descend:\n%s", buf.String())
	}
}

func TestManifestDeterministicStripsHost(t *testing.T) {
	m := Manifest{
		Schema:           ManifestSchema,
		System:           "mondrian",
		Operator:         "sort",
		SimulatedTotalNs: 123,
		Phases: []PhaseSummary{
			{Name: "partition", SimulatedNs: 100, WallNs: 555},
			{Name: "probe", SimulatedNs: 23, WallNs: 777},
		},
		Host: NewHostInfo(4),
	}
	m.Host.WallNs = 999
	m.Host.Timestamp = "2026-08-06T00:00:00Z"

	d := m.Deterministic()
	if d.Host != (HostInfo{}) {
		t.Fatalf("Deterministic must zero Host: %+v", d.Host)
	}
	for _, p := range d.Phases {
		if p.WallNs != 0 {
			t.Fatalf("Deterministic must zero phase wall times: %+v", p)
		}
	}
	// The original must be untouched (value receiver + copied slice).
	if m.Phases[0].WallNs != 555 || m.Host.WallNs != 999 {
		t.Fatalf("Deterministic mutated its receiver")
	}
	if d.SimulatedTotalNs != 123 || len(d.Phases) != 2 {
		t.Fatalf("Deterministic dropped deterministic data")
	}
}

func TestManifestJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	m := Manifest{
		Schema:   ManifestSchema,
		System:   "cpu",
		Operator: "scan",
		Metrics:  r.Snapshot(),
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Schema != ManifestSchema || back.Metrics.Counters["c"] != 7 {
		t.Fatalf("round trip lost data: %+v", back)
	}

	buf.Reset()
	if err := m.WriteJSONLine(&buf); err != nil {
		t.Fatalf("WriteJSONLine: %v", err)
	}
	if n := bytes.Count(buf.Bytes(), []byte("\n")); n != 1 || buf.Bytes()[buf.Len()-1] != '\n' {
		t.Fatalf("WriteJSONLine must emit exactly one newline-terminated line")
	}
}
