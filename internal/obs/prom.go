package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus renders every metric in r in Prometheus text exposition
// format (version 0.0.4). Metrics are emitted in sorted-name order, with
// one `# HELP` (when set via SetHelp) and `# TYPE` line per family;
// histograms expand into cumulative `_bucket{le=...}` series plus `_sum`
// and `_count`. A nil registry writes nothing. On a Concurrent()
// registry the whole export is one critical section, consistent with
// concurrent writers.
func WritePrometheus(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	r.lock()
	defer r.unlock()
	typed := make(map[string]string) // family -> emitted TYPE
	for _, name := range r.namesLocked() {
		family, labels := splitName(name)
		switch m := r.metrics[name].(type) {
		case *Counter:
			if err := writeHeader(w, r, typed, family, "counter"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", promName(family, labels), m.v); err != nil {
				return err
			}
		case *Gauge:
			if err := writeHeader(w, r, typed, family, "gauge"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", promName(family, labels), formatFloat(m.v)); err != nil {
				return err
			}
		case *Histogram:
			if err := writeHeader(w, r, typed, family, "histogram"); err != nil {
				return err
			}
			var cum uint64
			for i, bound := range m.bounds {
				cum += m.counts[i]
				le := formatFloat(bound)
				if _, err := fmt.Fprintf(w, "%s %d\n", promName(family+"_bucket", addLabel(labels, `le="`+le+`"`)), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", promName(family+"_bucket", addLabel(labels, `le="+Inf"`)), m.count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", promName(family+"_sum", labels), formatFloat(m.sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", promName(family+"_count", labels), m.count); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHeader emits the `# HELP` (if any) and `# TYPE` lines the first
// time a family appears and checks that one family isn't reused across
// metric kinds.
func writeHeader(w io.Writer, r *Registry, typed map[string]string, family, kind string) error {
	if prev, ok := typed[family]; ok {
		if prev != kind {
			return fmt.Errorf("obs: family %q exported as both %s and %s", family, prev, kind)
		}
		return nil
	}
	typed[family] = kind
	if help, ok := r.help[family]; ok {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", family, escapeHelp(help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, kind)
	return err
}

func promName(family, labels string) string {
	if labels == "" {
		return family
	}
	return family + "{" + labels + "}"
}

func addLabel(labels, l string) string {
	if labels == "" {
		return l
	}
	return labels + "," + l
}

// formatFloat renders a float the way Prometheus clients expect: shortest
// round-trip representation, integral values without an exponent where
// possible, and NaN/+Inf/-Inf spelled the way the exposition format
// requires.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Families returns the distinct metric family names in sorted order
// (mostly useful for tests asserting exporter coverage).
func (r *Registry) Families() []string {
	if r == nil {
		return nil
	}
	r.lock()
	defer r.unlock()
	set := make(map[string]struct{})
	for _, name := range r.order {
		f, _ := splitName(name)
		set[f] = struct{}{}
	}
	fams := make([]string, 0, len(set))
	for f := range set {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	return fams
}
