package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestWritePrometheusTable is the exporter-hardening table: empty
// registries, NaN/±Inf gauges, +Inf histogram buckets, escaped label
// values, and HELP strings per the text exposition format.
func TestWritePrometheusTable(t *testing.T) {
	cases := []struct {
		name    string
		build   func() *Registry
		want    []string // substrings that must appear
		wantNot []string // substrings that must not appear
	}{
		{
			name:  "empty registry",
			build: NewRegistry,
			want:  nil, // no output at all, asserted below via exact length
		},
		{
			name: "nan and inf gauges",
			build: func() *Registry {
				r := NewRegistry()
				r.Gauge("g_nan").Set(math.NaN())
				r.Gauge("g_pinf").Set(math.Inf(1))
				r.Gauge("g_ninf").Set(math.Inf(-1))
				return r
			},
			want: []string{"g_nan NaN\n", "g_pinf +Inf\n", "g_ninf -Inf\n"},
		},
		{
			name: "histogram overflow bucket",
			build: func() *Registry {
				r := NewRegistry()
				h := r.Histogram("lat", []float64{1, 10})
				h.Observe(0.5)
				h.Observe(100) // overflow: only in the +Inf bucket
				return r
			},
			want: []string{
				`lat_bucket{le="1"} 1`,
				`lat_bucket{le="10"} 1`,
				`lat_bucket{le="+Inf"} 2`,
				"lat_count 2",
			},
		},
		{
			name: "label value escaping",
			build: func() *Registry {
				r := NewRegistry()
				r.Counter(Label("runs", "tenant", `ten"ant\one`+"\n")).Inc()
				return r
			},
			want:    []string{`runs{tenant="ten\"ant\\one\n"} 1`},
			wantNot: []string{"\n\"} 1"}, // raw newline must not survive
		},
		{
			name: "help strings escaped",
			build: func() *Registry {
				r := NewRegistry()
				r.Counter("runs").Inc()
				r.SetHelp("runs", "total runs\nwith \\ backslash")
				return r
			},
			want: []string{`# HELP runs total runs\nwith \\ backslash` + "\n", "# TYPE runs counter"},
		},
		{
			name: "help only for set families",
			build: func() *Registry {
				r := NewRegistry()
				r.Counter("a").Inc()
				r.Counter("b").Inc()
				r.SetHelp("a", "alpha")
				return r
			},
			want:    []string{"# HELP a alpha\n"},
			wantNot: []string{"# HELP b"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WritePrometheus(&buf, tc.build()); err != nil {
				t.Fatalf("WritePrometheus: %v", err)
			}
			out := buf.String()
			if tc.want == nil && buf.Len() != 0 {
				t.Fatalf("expected no output, got:\n%s", out)
			}
			for _, w := range tc.want {
				if !strings.Contains(out, w) {
					t.Fatalf("output missing %q:\n%s", w, out)
				}
			}
			for _, w := range tc.wantNot {
				if strings.Contains(out, w) {
					t.Fatalf("output must not contain %q:\n%s", w, out)
				}
			}
		})
	}
}

func TestSetHelpNilSafe(t *testing.T) {
	var r *Registry
	r.SetHelp("x", "help") // must not panic
}
