package obs

import (
	"fmt"
	"io"
	"sort"
)

// Span is one node of a simulated-time span tree: a named interval on the
// engine's simulated clock (nanoseconds since run start). Spans nest —
// run → phase → step → per-unit task / exchange round — and carry
// optional numeric attributes (bytes moved, messages, instructions).
//
// Spans are built after the run from deterministic engine state, so the
// tree is byte-identical across host parallelism levels.
type Span struct {
	Name     string             `json:"name"`
	StartNs  float64            `json:"start_ns"`
	EndNs    float64            `json:"end_ns"`
	Attrs    map[string]float64 `json:"attrs,omitempty"`
	Children []*Span            `json:"children,omitempty"`
}

// DurationNs returns the span's simulated duration.
func (s *Span) DurationNs() float64 {
	if s == nil {
		return 0
	}
	return s.EndNs - s.StartNs
}

// Child appends and returns a new child span.
func (s *Span) Child(name string, startNs, endNs float64) *Span {
	c := &Span{Name: name, StartNs: startNs, EndNs: endNs}
	s.Children = append(s.Children, c)
	return c
}

// SetAttr records a numeric attribute on the span.
func (s *Span) SetAttr(key string, v float64) {
	if s.Attrs == nil {
		s.Attrs = make(map[string]float64)
	}
	s.Attrs[key] = v
}

// WriteTree renders the span tree as an indented text outline, descending
// at most maxDepth levels below s (maxDepth < 0 means unlimited).
// Attributes print sorted by key so output is deterministic.
func (s *Span) WriteTree(w io.Writer, maxDepth int) error {
	return s.writeTree(w, 0, maxDepth)
}

func (s *Span) writeTree(w io.Writer, depth, maxDepth int) error {
	if s == nil {
		return nil
	}
	for i := 0; i < depth; i++ {
		if _, err := io.WriteString(w, "  "); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s [%.0f..%.0f ns, %.0f ns]", s.Name, s.StartNs, s.EndNs, s.DurationNs()); err != nil {
		return err
	}
	keys := make([]string, 0, len(s.Attrs))
	for k := range s.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, " %s=%g", k, s.Attrs[k]); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	if maxDepth == 0 {
		return nil
	}
	for _, c := range s.Children {
		if err := c.writeTree(w, depth+1, maxDepth-1); err != nil {
			return err
		}
	}
	return nil
}

// CountSpans returns the number of spans in the tree rooted at s.
func (s *Span) CountSpans() int {
	if s == nil {
		return 0
	}
	n := 1
	for _, c := range s.Children {
		n += c.CountSpans()
	}
	return n
}
