package obs

// Window is a rolling-window histogram: a ring of fixed-bucket slots
// over shared bounds. Record observes into the current slot; Advance
// rotates the ring, dropping the oldest slot — so queries always cover
// the last `slots` rotation periods. The serve layer rotates windows on
// a wall-clock cadence to answer "p99 queue wait over the last minute"
// while the cumulative registry histograms keep all-time totals.
//
// A nil *Window ignores all operations (mirroring the registry's
// disabled path). Windows are unsynchronized — callers own locking (the
// serve scheduler updates them under its own mutex).
type Window struct {
	bounds []float64
	slots  []windowSlot
	cur    int // index of the slot currently recording
}

type windowSlot struct {
	counts []uint64 // len(bounds)+1; last is overflow
	count  uint64
	sum    float64
}

// NewWindow returns a rolling window with `slots` ring slots over the
// given sorted bucket bounds. Panics on slots < 1 or unsorted bounds.
func NewWindow(slots int, bounds []float64) *Window {
	if slots < 1 {
		panic("obs: NewWindow slots < 1")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			panic("obs: NewWindow bounds not sorted")
		}
	}
	w := &Window{
		bounds: append([]float64(nil), bounds...),
		slots:  make([]windowSlot, slots),
	}
	for i := range w.slots {
		w.slots[i].counts = make([]uint64, len(bounds)+1)
	}
	return w
}

// Record observes one value into the current slot. No-op on nil.
func (w *Window) Record(v float64) {
	if w == nil {
		return
	}
	s := &w.slots[w.cur]
	i := searchBounds(w.bounds, v)
	s.counts[i]++
	s.count++
	s.sum += v
}

// searchBounds returns the index of the first bound >= v, or len(bounds)
// for the overflow bucket. Linear scan: window bounds are short (~10
// entries) and the common case lands in the first few buckets, so this
// beats binary search and keeps the record path branch-cheap.
func searchBounds(bounds []float64, v float64) int {
	for i, b := range bounds {
		if v <= b {
			return i
		}
	}
	return len(bounds)
}

// Advance rotates the ring by one slot, clearing the slot that now
// becomes current (the oldest data falls out of every query). No-op on
// nil.
func (w *Window) Advance() {
	if w == nil {
		return
	}
	w.cur = (w.cur + 1) % len(w.slots)
	s := &w.slots[w.cur]
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.count, s.sum = 0, 0
}

// Count returns the number of observations across all live slots.
func (w *Window) Count() uint64 {
	if w == nil {
		return 0
	}
	var n uint64
	for i := range w.slots {
		n += w.slots[i].count
	}
	return n
}

// Sum returns the sum of observations across all live slots.
func (w *Window) Sum() float64 {
	if w == nil {
		return 0
	}
	var s float64
	for i := range w.slots {
		s += w.slots[i].sum
	}
	return s
}

// Quantile estimates the q-quantile over all live slots using the same
// bucket interpolation as HistogramSnapshot.Quantile. Returns 0 when the
// window is empty or nil.
func (w *Window) Quantile(q float64) float64 {
	if w == nil {
		return 0
	}
	counts := make([]uint64, len(w.bounds)+1)
	var total uint64
	for i := range w.slots {
		for j, c := range w.slots[i].counts {
			counts[j] += c
		}
		total += w.slots[i].count
	}
	return quantileFromBuckets(w.bounds, counts, total, q)
}

// Snapshot merges all live slots into one HistogramSnapshot.
func (w *Window) Snapshot() HistogramSnapshot {
	if w == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), w.bounds...),
		Counts: make([]uint64, len(w.bounds)+1),
	}
	for i := range w.slots {
		for j, c := range w.slots[i].counts {
			s.Counts[j] += c
		}
		s.Count += w.slots[i].count
		s.Sum += w.slots[i].sum
	}
	return s
}

// SLO is a latency service-level objective: "Objective of requests
// complete within TargetNs" (e.g. 0.99 within 50ms).
type SLO struct {
	TargetNs  float64 // latency threshold separating good from bad events
	Objective float64 // fraction of events that must be good, in (0,1)
}

// SLOTracker tracks an SLO over the same rolling ring as Window: each
// slot counts good (latency <= target) and bad events; Advance drops the
// oldest slot. BurnRate answers "how fast is the error budget burning
// right now" — 1.0 means exactly at budget, >1 burning too fast.
//
// A nil *SLOTracker ignores all operations. Unsynchronized, like Window.
type SLOTracker struct {
	slo  SLO
	good []uint64
	bad  []uint64
	cur  int
}

// NewSLOTracker returns a tracker over `slots` ring slots. Panics on
// slots < 1 or an objective outside (0,1).
func NewSLOTracker(slots int, slo SLO) *SLOTracker {
	if slots < 1 {
		panic("obs: NewSLOTracker slots < 1")
	}
	if !(slo.Objective > 0 && slo.Objective < 1) {
		panic("obs: NewSLOTracker objective must be in (0,1)")
	}
	return &SLOTracker{
		slo:  slo,
		good: make([]uint64, slots),
		bad:  make([]uint64, slots),
	}
}

// SLO returns the tracked objective (zero value on nil).
func (t *SLOTracker) SLO() SLO {
	if t == nil {
		return SLO{}
	}
	return t.slo
}

// Record classifies one completed event by latency. No-op on nil.
func (t *SLOTracker) Record(latencyNs float64) {
	if t == nil {
		return
	}
	if latencyNs <= t.slo.TargetNs {
		t.good[t.cur]++
	} else {
		t.bad[t.cur]++
	}
}

// RecordBad counts one unconditionally-bad event (errors, admission
// rejects) against the budget. No-op on nil.
func (t *SLOTracker) RecordBad() {
	if t == nil {
		return
	}
	t.bad[t.cur]++
}

// Advance rotates the ring, clearing the slot that becomes current.
func (t *SLOTracker) Advance() {
	if t == nil {
		return
	}
	t.cur = (t.cur + 1) % len(t.good)
	t.good[t.cur], t.bad[t.cur] = 0, 0
}

// GoodFraction returns the fraction of good events over the live window
// (1 when the window is empty — no budget consumed).
func (t *SLOTracker) GoodFraction() float64 {
	if t == nil {
		return 1
	}
	var good, bad uint64
	for i := range t.good {
		good += t.good[i]
		bad += t.bad[i]
	}
	if good+bad == 0 {
		return 1
	}
	return float64(good) / float64(good+bad)
}

// BurnRate returns the error-budget burn rate over the live window:
// observed bad fraction divided by the budgeted bad fraction
// (1-Objective). 0 on an empty window, 1.0 at exactly budget.
func (t *SLOTracker) BurnRate() float64 {
	if t == nil {
		return 0
	}
	return (1 - t.GoodFraction()) / (1 - t.slo.Objective)
}
