package obs

import (
	"math"
	"testing"
)

func TestNilWindowAndSLOAreNoOps(t *testing.T) {
	var w *Window
	w.Record(1)
	w.Advance()
	if w.Count() != 0 || w.Sum() != 0 || w.Quantile(0.5) != 0 {
		t.Fatalf("nil window must read as zero")
	}
	if s := w.Snapshot(); s.Count != 0 {
		t.Fatalf("nil window snapshot must be empty")
	}
	var tr *SLOTracker
	tr.Record(1)
	tr.RecordBad()
	tr.Advance()
	if tr.GoodFraction() != 1 || tr.BurnRate() != 0 {
		t.Fatalf("nil tracker must read as healthy")
	}
}

func TestWindowRecordAndQuantile(t *testing.T) {
	w := NewWindow(3, []float64{10, 100, 1000})
	for i := 0; i < 90; i++ {
		w.Record(5) // bucket 0
	}
	for i := 0; i < 9; i++ {
		w.Record(50) // bucket 1
	}
	w.Record(500) // bucket 2
	if w.Count() != 100 {
		t.Fatalf("Count = %d, want 100", w.Count())
	}
	if got := w.Sum(); got != 90*5+9*50+500 {
		t.Fatalf("Sum = %g", got)
	}
	// p50 lands mid-bucket-0 (interpolated within [0,10]); p95 and p99 in
	// bucket 1 (rank 99 of 100 is exactly bucket 1's cumulative edge);
	// p100 reaches into bucket 2.
	if p := w.Quantile(0.50); p <= 0 || p > 10 {
		t.Fatalf("p50 = %g, want in (0,10]", p)
	}
	if p := w.Quantile(0.95); p <= 10 || p > 100 {
		t.Fatalf("p95 = %g, want in (10,100]", p)
	}
	if p := w.Quantile(0.99); p <= 10 || p > 100 {
		t.Fatalf("p99 = %g, want in (10,100]", p)
	}
	if p := w.Quantile(1); p <= 100 || p > 1000 {
		t.Fatalf("p100 = %g, want in (100,1000]", p)
	}
	// Overflow clamps to the last finite bound.
	w2 := NewWindow(1, []float64{10})
	w2.Record(1e9)
	if p := w2.Quantile(0.99); p != 10 {
		t.Fatalf("overflow quantile = %g, want clamp to 10", p)
	}
}

func TestWindowAdvanceDropsOldSlots(t *testing.T) {
	w := NewWindow(3, []float64{10, 100})
	w.Record(5)
	w.Advance()
	w.Record(5)
	if w.Count() != 2 {
		t.Fatalf("both slots live: Count = %d, want 2", w.Count())
	}
	// Two more rotations push the first slot out of the ring.
	w.Advance()
	w.Advance()
	if w.Count() != 1 {
		t.Fatalf("after 3 advances the first record must be gone: Count = %d", w.Count())
	}
	w.Advance()
	if w.Count() != 0 {
		t.Fatalf("all records aged out: Count = %d", w.Count())
	}
}

func TestWindowSnapshotMatchesHistogram(t *testing.T) {
	bounds := []float64{1, 10, 100}
	w := NewWindow(4, bounds)
	h := NewRegistry().Histogram("h", bounds)
	vals := []float64{0.5, 2, 2, 50, 500, 7}
	for i, v := range vals {
		w.Record(v)
		h.Observe(v)
		if i%2 == 1 {
			w.Advance() // spread across slots; all stay live (4 slots, 3 advances)
		}
	}
	ws, hs := w.Snapshot(), h.Snapshot()
	if ws.Count != hs.Count || ws.Sum != hs.Sum {
		t.Fatalf("window snapshot diverges: %+v vs %+v", ws, hs)
	}
	for i := range ws.Counts {
		if ws.Counts[i] != hs.Counts[i] {
			t.Fatalf("bucket %d: %d vs %d", i, ws.Counts[i], hs.Counts[i])
		}
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if wq, hq := w.Quantile(q), hs.Quantile(q); wq != hq {
			t.Fatalf("q=%g: window %g vs histogram %g", q, wq, hq)
		}
	}
}

func TestHistogramSnapshotQuantileEmpty(t *testing.T) {
	var s HistogramSnapshot
	if s.Quantile(0.5) != 0 {
		t.Fatalf("empty snapshot quantile must be 0")
	}
}

func TestSLOTracker(t *testing.T) {
	tr := NewSLOTracker(2, SLO{TargetNs: 100, Objective: 0.9})
	if tr.GoodFraction() != 1 || tr.BurnRate() != 0 {
		t.Fatalf("empty tracker must be healthy: good=%g burn=%g", tr.GoodFraction(), tr.BurnRate())
	}
	for i := 0; i < 90; i++ {
		tr.Record(50) // good
	}
	for i := 0; i < 10; i++ {
		tr.Record(200) // bad
	}
	// 10% bad against a 10% budget: burn rate exactly 1.
	if gf := tr.GoodFraction(); gf != 0.9 {
		t.Fatalf("GoodFraction = %g, want 0.9", gf)
	}
	if br := tr.BurnRate(); math.Abs(br-1) > 1e-9 {
		t.Fatalf("BurnRate = %g, want 1", br)
	}
	tr.RecordBad() // unconditional bad event (error/reject)
	if tr.BurnRate() <= 1 {
		t.Fatalf("burn rate must rise past 1 after extra bad event: %g", tr.BurnRate())
	}
	// Rotating both slots clears the window back to healthy.
	tr.Advance()
	tr.Advance()
	if tr.GoodFraction() != 1 || tr.BurnRate() != 0 {
		t.Fatalf("cleared tracker must be healthy again")
	}
}

func TestNewWindowValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewWindow(0, []float64{1}) },
		func() { NewWindow(2, []float64{2, 1}) },
		func() { NewSLOTracker(0, SLO{TargetNs: 1, Objective: 0.5}) },
		func() { NewSLOTracker(1, SLO{TargetNs: 1, Objective: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected constructor panic")
				}
			}()
			fn()
		}()
	}
}
