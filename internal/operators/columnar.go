package operators

import (
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// Columnar partition kernels (ISSUE 7). bucketIDs batch-computes every
// key's destination bucket over the dense key column, replacing the
// per-tuple Partitioner.Bucket mul/div (range partitioning) or runtime
// modulo (hash partitioning) with shift/mask loops whenever the
// geometry is a power of two. The operator computes the ids once per
// input region and reuses them across the histogram and scatter passes,
// where the scalar path recomputes Bucket per tuple per pass.
//
// Exactness contract: ids[i] == part.Bucket(keys[i]) for every key,
// including keys at or beyond KeySpace (the fast path delegates any
// out-of-range key to the scalar Bucket, clamping and overflow wrap
// included). TestBucketIDsMatchesScalar pins it.

// bucketIDs fills ids[i] with part.Bucket(keys[i]); ids must have
// length len(keys).
func bucketIDs(ids []int32, keys []tuple.Key, part Partitioner) {
	if len(ids) != len(keys) {
		panic("operators: bucketIDs length mismatch")
	}
	b := uint64(part.Buckets)
	if part.HighBits {
		// Range partitioning: k*B/KS. With both powers of two (and the
		// product overflow-free, which log2 KS + log2 B <= 64
		// guarantees for every k < KS) the division is a plain shift.
		if isPow2u(b) && isPow2u(part.KeySpace) && part.KeySpace >= b &&
			log2u(part.KeySpace)+log2u(b) <= 64 {
			shift := log2u(part.KeySpace) - log2u(b)
			for i, k := range keys {
				v := uint64(k) >> shift
				if v >= b {
					// Key outside the declared key space: defer to the
					// scalar path's exact clamped (and possibly
					// overflow-wrapped) arithmetic.
					v = uint64(part.Bucket(k))
				}
				ids[i] = int32(v)
			}
			return
		}
		for i, k := range keys {
			ids[i] = int32(part.Bucket(k))
		}
		return
	}
	// Hash partitioning: k mod B.
	if isPow2u(b) {
		mask := tuple.Key(b - 1)
		for i, k := range keys {
			ids[i] = int32(k & mask)
		}
		return
	}
	for i, k := range keys {
		ids[i] = int32(uint64(k) % b)
	}
}

// isPow2u reports whether v is a power of two.
func isPow2u(v uint64) bool { return v != 0 && v&(v-1) == 0 }

// log2u returns floor(log2 v) for v > 0.
func log2u(v uint64) uint {
	var s uint
	for v > 1 {
		v >>= 1
		s++
	}
	return s
}
