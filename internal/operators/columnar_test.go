package operators

import (
	"math/rand"
	"testing"

	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/tuple"
	"github.com/ecocloud-go/mondrian/internal/workload"
)

// TestBucketIDsMatchesScalar pins the bucketIDs exactness contract:
// ids[i] == part.Bucket(keys[i]) for every key — across pow2 and
// non-pow2 geometries (exercising the shift, mask and fallback paths)
// and for keys far outside the declared key space (exercising the
// clamped, overflow-wrapped scalar delegation).
func TestBucketIDsMatchesScalar(t *testing.T) {
	parts := []Partitioner{
		// Range, both pow2: shift fast path.
		{Buckets: 8, KeySpace: 1 << 16, HighBits: true},
		{Buckets: 256, KeySpace: 1 << 16, HighBits: true},
		{Buckets: 1 << 20, KeySpace: 1 << 40, HighBits: true},
		{Buckets: 16, KeySpace: 16, HighBits: true},
		// Range, log2(KS)+log2(B) > 64: scalar fallback.
		{Buckets: 1 << 20, KeySpace: 1 << 50, HighBits: true},
		// Range, non-pow2 bucket count or key space: scalar fallback.
		{Buckets: 7, KeySpace: 1 << 16, HighBits: true},
		{Buckets: 8, KeySpace: 100000, HighBits: true},
		// Range, KS < B: scalar fallback.
		{Buckets: 256, KeySpace: 16, HighBits: true},
		// Hash, pow2: mask fast path; non-pow2: modulo.
		{Buckets: 8},
		{Buckets: 256},
		{Buckets: 7},
		{Buckets: 1000},
	}
	rng := rand.New(rand.NewSource(77))
	for _, part := range parts {
		keys := make([]tuple.Key, 0, 4096)
		ks := part.KeySpace
		if ks == 0 {
			ks = 1 << 16
		}
		for i := 0; i < 2000; i++ {
			keys = append(keys, tuple.Key(rng.Uint64()%ks))
		}
		// Out-of-range and adversarial keys: beyond KeySpace, full-width
		// random (overflow wrap in the scalar mul), and the extremes.
		for i := 0; i < 1000; i++ {
			keys = append(keys, tuple.Key(rng.Uint64()%(2*ks)))
			keys = append(keys, tuple.Key(rng.Uint64()))
		}
		keys = append(keys, 0, tuple.Key(ks-1), tuple.Key(ks), tuple.Key(ks+1),
			^tuple.Key(0), ^tuple.Key(0)>>1)
		ids := make([]int32, len(keys))
		bucketIDs(ids, keys, part)
		for i, k := range keys {
			if want := part.Bucket(k); int(ids[i]) != want {
				t.Fatalf("part %+v key %d: ids[%d] = %d, want %d",
					part, k, i, ids[i], want)
			}
		}
	}
}

// TestColumnarMatchesBulkTiming runs every operator on every variant
// twice — bulk and columnar — and requires identical simulated time and
// identical functional results. This is the operators-level half of the
// differential pin; the simulate package pins full byte-identical
// report JSON.
func TestColumnarMatchesBulkTiming(t *testing.T) {
	scanRel := workload.Uniform("in", workload.Config{Seed: 3, Tuples: 4000, KeySpace: 500})
	needle, _ := workload.ScanTarget(scanRel, 7)
	sortRel := workload.Uniform("in", workload.Config{Seed: 5, Tuples: 6000, KeySpace: 1 << 16})
	gbRel, err := workload.GroupBy(workload.Config{Seed: 9, Tuples: 4000}, 4)
	if err != nil {
		t.Fatal(err)
	}
	joinR, joinS, err := workload.FKPair(workload.Config{Seed: 11, Tuples: 6000}, 800)
	if err != nil {
		t.Fatal(err)
	}
	type opRun struct {
		name string
		run  func(e *engine.Engine, cfg Config) (float64, int, []*engine.Region, error)
	}
	ops := []opRun{
		{"scan", func(e *engine.Engine, cfg Config) (float64, int, []*engine.Region, error) {
			res, err := Scan(e, cfg, place(t, e, scanRel), needle)
			if err != nil {
				return 0, 0, nil, err
			}
			return e.TotalNs(), res.Matches, res.Out, nil
		}},
		{"sort", func(e *engine.Engine, cfg Config) (float64, int, []*engine.Region, error) {
			res, err := Sort(e, cfg, place(t, e, sortRel))
			if err != nil {
				return 0, 0, nil, err
			}
			return e.TotalNs(), 0, res.Sorted, nil
		}},
		{"groupby", func(e *engine.Engine, cfg Config) (float64, int, []*engine.Region, error) {
			res, err := GroupBy(e, cfg, place(t, e, gbRel))
			if err != nil {
				return 0, 0, nil, err
			}
			return e.TotalNs(), res.Groups, res.Out, nil
		}},
		{"join", func(e *engine.Engine, cfg Config) (float64, int, []*engine.Region, error) {
			res, err := Join(e, cfg, place(t, e, joinR), place(t, e, joinS))
			if err != nil {
				return 0, 0, nil, err
			}
			return e.TotalNs(), res.Matches, res.Out, nil
		}},
	}
	for _, v := range testVariants() {
		for _, skew := range []bool{false, true} {
			for _, op := range ops {
				name := v.name + "/" + op.name
				if skew {
					name += "/skew"
				}
				t.Run(name, func(t *testing.T) {
					bulkCfg := v.cfg
					bulkCfg.SkewAware = skew
					colCfg := bulkCfg
					colCfg.Columnar = true

					ns0, count0, out0, err := op.run(newEngine(t, bulkCfg), v.opCfg)
					if err != nil {
						t.Fatal(err)
					}
					ns1, count1, out1, err := op.run(newEngine(t, colCfg), v.opCfg)
					if err != nil {
						t.Fatal(err)
					}
					if ns0 != ns1 {
						t.Fatalf("simulated time diverged: bulk %v ns, columnar %v ns", ns0, ns1)
					}
					if count0 != count1 {
						t.Fatalf("result count diverged: bulk %d, columnar %d", count0, count1)
					}
					if !tuple.SameMultiset(Gather(out0), Gather(out1)) {
						t.Fatal("output multiset diverged")
					}
				})
			}
		}
	}
}

// columnarUnit builds a Columnar engine from the given variant, places
// rel in vault 0 and returns the engine, region and owning unit.
func columnarUnit(t *testing.T, v variant, rel *tuple.Relation) (*engine.Engine, *engine.Region, *engine.Unit) {
	t.Helper()
	cfg := v.cfg
	cfg.Columnar = true
	e := newEngine(t, cfg)
	r, err := e.Place(0, rel.Tuples)
	if err != nil {
		t.Fatal(err)
	}
	return e, r, unitForBucket(e, 0)
}

// The steady-state allocation pins. A full operator run necessarily
// allocates (fresh output regions, result structs, goroutine fan-out),
// so the pins target the per-bucket hot kernels — the code that runs
// once per bucket per pass and dominates the host time. After one
// warm-up call grows the unit's arena, stream group and region slabs,
// every subsequent call must perform zero heap allocations.

func TestScanKernelSteadyStateZeroAlloc(t *testing.T) {
	rel := workload.Uniform("in", workload.Config{Seed: 21, Tuples: 4000, KeySpace: 500})
	e, r, u := columnarUnit(t, testVariants()[5], rel) // Mondrian
	out, err := e.AllocOut(0, 4000)
	if err != nil {
		t.Fatal(err)
	}
	needle, _ := workload.ScanTarget(rel, 7)
	e.BeginStep(engine.StepProfile{Name: "scan", StreamFed: true})
	defer e.EndStep()
	kernel := func() {
		out.Reset()
		if _, err := scanVaultColumnar(u, r, out, needle, 1); err != nil {
			t.Fatal(err)
		}
	}
	kernel() // warm up arena, stream group, key mirror and out slab
	if allocs := testing.AllocsPerRun(20, kernel); allocs != 0 {
		t.Fatalf("scan kernel steady state allocates %v times per run", allocs)
	}
}

func TestQuicksortKernelSteadyStateZeroAlloc(t *testing.T) {
	rel := workload.Uniform("in", workload.Config{Seed: 23, Tuples: 4000, KeySpace: 1 << 16})
	e, r, u := columnarUnit(t, testVariants()[0], rel) // CPU
	cm := DefaultCosts()
	e.BeginStep(engine.StepProfile{Name: "sort"})
	defer e.EndStep()
	kernel := func() { quicksortLocal(u, cm, r) }
	kernel()
	if allocs := testing.AllocsPerRun(20, kernel); allocs != 0 {
		t.Fatalf("quicksort kernel steady state allocates %v times per run", allocs)
	}
}

func TestMergesortKernelSteadyStateZeroAlloc(t *testing.T) {
	rel := workload.Uniform("in", workload.Config{Seed: 25, Tuples: 4096, KeySpace: 1 << 16})
	e, r, u := columnarUnit(t, testVariants()[5], rel) // Mondrian (streamed)
	scratch, err := e.AllocOut(0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	cm := MondrianCosts()
	e.BeginStep(engine.StepProfile{Name: "sort", StreamFed: true})
	defer e.EndStep()
	kernel := func() {
		if _, err := mergesortLocal(u, cm, r, scratch, true); err != nil {
			t.Fatal(err)
		}
	}
	kernel()
	if allocs := testing.AllocsPerRun(10, kernel); allocs != 0 {
		t.Fatalf("mergesort kernel steady state allocates %v times per run", allocs)
	}
}
