package operators

import (
	"fmt"

	"github.com/ecocloud-go/mondrian/internal/engine"
)

// Config selects the algorithmic variant an operator runs with.
type Config struct {
	// Costs is the instruction cost model (DefaultCosts / MondrianCosts).
	Costs CostModel
	// SortProbe selects the sequential-access, sort-based probe
	// algorithms (NMP-seq and Mondrian) instead of the random-access,
	// hash-based ones (CPU and NMP-rand).
	SortProbe bool
	// KeySpace is the exclusive upper bound of input keys (needed by the
	// range partitioner of Sort).
	KeySpace uint64
	// CPUBuckets overrides the CPU's cache-sized partition count
	// (0 = CPUPartitionCount auto-sizing).
	CPUBuckets int
	// Overprovision scales the destination-buffer estimate of the
	// partitioning phase (the CPU's "best-effort overprovisioned
	// estimation", §5.3). Zero selects the default factor of 2. Skewed
	// datasets overflow the default and surface ErrPartitionOverflow
	// for the CPU to handle (§5.4) — retry with a larger factor.
	Overprovision float64
	// CPUProbeTuples is the partition size the CPU's probe phase works
	// on. The paper's CPU probes 2^16-way radix partitions of a 32 GB
	// dataset — ~32 Ki tuples (512 KB) each. At reduced dataset scale the
	// 2^16-way buckets become unrealistically cache-resident, so the
	// probe phase groups consecutive radix buckets into partitions of
	// this many tuples (still a valid co-partition of the key space),
	// reproducing the paper's probe working-set regime. 0 = 32 Ki.
	CPUProbeTuples int
	// SkewAware enables skew-aware execution (see DESIGN.md §13): the
	// partition phase runs the heavy-hitter detector and provisions
	// destination buffers from the exact exchanged histograms instead of
	// failing over to the §5.4 overflow-retry loop, and the probe phases
	// split hot keys across host workers with a merge-side combine. All
	// simulated quantities stay byte-identical to a skew-unaware run that
	// succeeds at the same Overprovision.
	SkewAware bool
	// SkewLoadFactor is the heavy-hitter flagging threshold as a fraction
	// of the mean destination load (0 = 0.5): a key is hot when its
	// estimated frequency reaches SkewLoadFactor × mean vault load.
	SkewLoadFactor float64
	// SkewSketchSize is the SpaceSaving sketch capacity (0 = 256 keys).
	SkewSketchSize int
	// SkewSampleStride samples every Nth tuple into the sketch on the
	// bulk path (0 = 8).
	SkewSampleStride int
}

// overprovision returns the destination-buffer slack factor.
func (c Config) overprovision() float64 {
	if c.Overprovision > 0 {
		return c.Overprovision
	}
	return defaultOverprovision
}

// probeTuples returns the CPU probe partition size.
func (c Config) probeTuples() int {
	if c.CPUProbeTuples > 0 {
		return c.CPUProbeTuples
	}
	return 32 << 10
}

// isSIMD reports whether the engine's compute units have SIMD datapaths.
func isSIMD(e *engine.Engine) bool { return e.Config().Core.SIMDBits > 0 }

// isStreamed reports whether reads flow through hardware stream buffers.
func isStreamed(e *engine.Engine) bool {
	return e.Config().Arch == engine.Mondrian && e.Config().UseStreams
}

// streamed adapts a step profile for stream-buffer-fed execution: the
// binding prefetcher hides load latency entirely, so no stall overlap
// modeling applies. (Issue-rate effects stay in the profile's DepIPC.)
func streamed(p engine.StepProfile) engine.StepProfile {
	p.StreamFed = true
	p.MLPOverride = 0
	return p
}

// scanProfile / mergeProfile pick the scalar or SIMD loop profile and
// adapt it for streaming.
func scanProfile(e *engine.Engine, cm CostModel) engine.StepProfile {
	if isSIMD(e) {
		return probeProfile(e, cm.SIMDScanProfile)
	}
	return probeProfile(e, cm.ScanProfile)
}

func mergeProfile(e *engine.Engine, cm CostModel) engine.StepProfile {
	if isSIMD(e) {
		return probeProfile(e, cm.SIMDMergeProfile)
	}
	return probeProfile(e, cm.MergeProfile)
}

// probeProfile picks the step profile for a probe loop, adapting it when
// the architecture streams.
func probeProfile(e *engine.Engine, base engine.StepProfile) engine.StepProfile {
	if isStreamed(e) {
		return streamed(base)
	}
	return base
}

// bucketCount picks the number of partition buckets for the architecture:
// one per vault on NMP systems (the keys' 6 bits in the paper), cache-
// sized buckets on the CPU (the keys' 16 low-order bits).
func bucketCount(e *engine.Engine, cfg Config, totalTuples int) int {
	if e.Config().Arch != engine.CPU {
		return e.NumVaults()
	}
	if cfg.CPUBuckets > 0 {
		return cfg.CPUBuckets
	}
	return CPUPartitionCount(totalTuples, len(e.Units()))
}

// unitForBucket returns the unit that probes bucket b.
func unitForBucket(e *engine.Engine, b int) *engine.Unit {
	if e.Config().Arch == engine.CPU {
		return e.Units()[b%len(e.Units())]
	}
	return e.UnitForVault(b)
}

// probeGroups partitions the bucket list into probe units: one bucket per
// group on the vault-resident systems (a vault's bucket is its probe
// working set), and runs of consecutive radix buckets totalling
// ~CPUProbeTuples on the CPU (see Config.CPUProbeTuples). Consecutive
// hash buckets form a valid coarser partition of the key space, so
// grouping preserves co-partitioning and range order.
func probeGroups(e *engine.Engine, cfg Config, buckets []*engine.Region) [][]int {
	if e.Config().Arch != engine.CPU {
		groups := make([][]int, len(buckets))
		for i := range buckets {
			groups[i] = []int{i}
		}
		return groups
	}
	target := cfg.probeTuples()
	// Never leave CPU cores idle: with small datasets, shrink groups so
	// there is at least one per core.
	total := totalLen(buckets)
	if perCore := total / len(e.Units()); perCore > 0 && perCore < target {
		target = perCore
	}
	var groups [][]int
	var cur []int
	n := 0
	for i, b := range buckets {
		cur = append(cur, i)
		n += b.Len()
		if n >= target {
			groups = append(groups, cur)
			cur, n = nil, 0
		}
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return groups
}

// unitForGroup returns the unit that probes group g.
func unitForGroup(e *engine.Engine, groups [][]int, g int) *engine.Unit {
	if e.Config().Arch == engine.CPU {
		return e.Units()[g%len(e.Units())]
	}
	return e.UnitForVault(groups[g][0])
}

// stealWeights returns per-index task weights (summed tuple counts of the
// region sets) for the skew-aware worker pool, or nil when the engine is
// not skew-aware — the default path pays no allocation.
func stealWeights(e *engine.Engine, sets ...[]*engine.Region) []float64 {
	if !e.Config().SkewAware || len(sets) == 0 {
		return nil
	}
	w := make([]float64, len(sets[0]))
	for _, rs := range sets {
		for i, r := range rs {
			w[i] += float64(r.Len())
		}
	}
	return w
}

// stealGroupWeights returns per-probe-group task weights (summed tuple
// counts of each group's buckets over the region sets), or nil when the
// engine is not skew-aware.
func stealGroupWeights(e *engine.Engine, groups [][]int, sets ...[]*engine.Region) []float64 {
	if !e.Config().SkewAware {
		return nil
	}
	w := make([]float64, len(groups))
	for g, group := range groups {
		for _, b := range group {
			for _, rs := range sets {
				w[g] += float64(rs[b].Len())
			}
		}
	}
	return w
}

// totalLen sums region lengths.
func totalLen(rs []*engine.Region) int {
	n := 0
	for _, r := range rs {
		n += r.Len()
	}
	return n
}

// checkInputs validates the canonical one-region-per-vault input shape.
func checkInputs(e *engine.Engine, inputs []*engine.Region) error {
	if len(inputs) != e.NumVaults() {
		return fmt.Errorf("operators: %d input regions for %d vaults", len(inputs), e.NumVaults())
	}
	for v, r := range inputs {
		if r.Vault.ID != v {
			return fmt.Errorf("operators: input %d resides in vault %d", v, r.Vault.ID)
		}
	}
	return nil
}

// sortBuckets runs the mergesort probe machinery over all buckets in
// lockstep passes (every unit works on its bucket within each step, so the
// barrier-synchronized step timing matches the parallel execution). It
// returns the regions holding each bucket's sorted data.
func sortBuckets(e *engine.Engine, cm CostModel, buckets []*engine.Region) ([]*engine.Region, error) {
	simd := isSIMD(e)
	n := len(buckets)
	scratch := make([]*engine.Region, n)
	for i, b := range buckets {
		s, err := e.AllocOut(b.Vault.ID, maxInt(b.Len(), 1))
		if err != nil {
			return nil, err
		}
		scratch[i] = s
	}

	runProfile := engine.StepProfile{Name: "form-runs", DepIPC: 1.5, InstPerAccess: 4}
	if simd {
		runProfile.DepIPC = 2
	}
	e.BeginStep(probeProfile(e, runProfile))
	if err := e.ForEachTaskWeighted(n, stealWeights(e, buckets), func(i int) error {
		return formRuns(unitForBucket(e, i), cm, buckets[i], simd)
	}); err != nil {
		return nil, err
	}
	e.EndStep()

	src := make([]*engine.Region, n)
	dst := make([]*engine.Region, n)
	runLen := make([]int, n)
	maxPasses := 0
	for i, b := range buckets {
		src[i], dst[i] = b, scratch[i]
		runLen[i] = cm.InitialRunLen
		if p := MergePasses(b.Len(), cm.InitialRunLen, cm.MergeFanIn); p > maxPasses {
			maxPasses = p
		}
	}
	for pass := 0; pass < maxPasses; pass++ {
		// Buckets already sorted in this pass carry no work; weight the
		// dispatch by what each task will actually merge.
		var passWeights []float64
		if e.Config().SkewAware {
			passWeights = make([]float64, n)
			for i := range passWeights {
				if runLen[i] < maxInt(src[i].Len(), 1) {
					passWeights[i] = float64(src[i].Len())
				}
			}
		}
		e.BeginStep(mergeProfile(e, cm))
		if err := e.ForEachTaskWeighted(n, passWeights, func(i int) error {
			if runLen[i] >= maxInt(src[i].Len(), 1) {
				return nil // this bucket is already sorted
			}
			dst[i].Reset()
			if err := mergePass(unitForBucket(e, i), cm, src[i], dst[i], runLen[i], cm.MergeFanIn, simd); err != nil {
				return err
			}
			src[i], dst[i] = dst[i], src[i]
			runLen[i] *= cm.MergeFanIn
			return nil
		}); err != nil {
			return nil, err
		}
		e.EndStep()
	}
	return src, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
