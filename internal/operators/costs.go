// Package operators implements the four basic in-memory data operators the
// paper evaluates — Scan, Sort, Group by, Join (§2, Table 2) — in both
// their CPU-preferred (hash/quicksort, random-access) and NMP-preferred
// (sort/merge, sequential-access) forms, on top of the engine's execution
// model.
//
// Operators run functionally on real tuples; their outputs are verified
// against reference implementations. Timing emerges from (a) the memory
// traffic they actually generate through engine.Unit accessors and (b) the
// per-tuple instruction costs defined here.
package operators

import (
	"github.com/ecocloud-go/mondrian/internal/engine"
)

// CostModel holds per-tuple instruction costs and loop profiles for every
// operator step. The instruction counts are first-principles estimates of
// the inner loops (documented per field); the DepIPC / MLP numbers stand
// in for the dependence behaviour the paper measured with cycle-accurate
// simulation (§7 quotes partition IPC 0.98 for NMP, probe IPC 0.95 for
// NMP-seq and 0.24 for NMP-rand; our defaults are tuned so the model's
// achieved IPCs land in those ranges).
type CostModel struct {
	// --- partitioning phase -------------------------------------------

	// HistogramInsts: load key, mask/shift, load counter, add, store
	// counter, loop overhead ≈ 6 scalar instructions per tuple.
	HistogramInsts float64
	// HistogramProfile caps the histogram loop: the counter
	// increment chains through memory.
	HistogramProfile engine.StepProfile

	// DistConvInsts: conventional distribution — load tuple, hash, load
	// write cursor, address arithmetic, remote store, bump cursor,
	// store cursor ≈ 12 instructions, serialized through the cursor.
	DistConvInsts   float64
	DistConvProfile engine.StepProfile

	// DistPermInsts: permutable distribution — load tuple, hash, store
	// into object buffer ≈ 7 instructions; no cursor chain (§7:
	// "permutability eschews the need for destination address
	// calculation and greatly reduces dependencies").
	DistPermInsts   float64
	DistPermProfile engine.StepProfile

	// SIMDDistFactor divides distribution instruction counts when the
	// whole loop is SIMD-vectorized (Mondrian: 8-tuple-wide processing).
	// Mondrian-noperm cannot vectorize the scatter/cursor part and only
	// gets SIMDDistScatterFactor on the conventional loop.
	SIMDDistFactor        float64
	SIMDDistScatterFactor float64
	// SIMDHistFactor divides histogram instruction counts on SIMD units
	// (8 keys hashed per operation; counters updated from SIMD lanes).
	SIMDHistFactor float64
	// CPUPartitionMLP pins the CPU's partition-loop stall overlap. The
	// histogram-cursor and write-cursor chains make consecutive misses
	// dependent ("the histogram manipulation code suffers from heavy
	// data dependencies", §7.1), so essentially nothing overlaps.
	CPUPartitionMLP float64

	// --- probe phase ---------------------------------------------------

	// ScanInsts: load, compare, predicated count ≈ 4 instructions.
	ScanInsts   float64
	ScanProfile engine.StepProfile
	// SIMDScanProfile is the stream-fed vector scan loop.
	SIMDScanProfile engine.StepProfile

	// HashBuildInsts: hash, probe for free slot, store ≈ 8 instructions.
	HashBuildInsts float64
	// HashProbeInsts: hash, load slot, compare, emit ≈ 10 instructions
	// (plus extra slot loads charged per actual collision).
	HashProbeInsts float64
	HashProfile    engine.StepProfile
	// HashAggInsts: Group-by aggregate update — 6 running aggregates
	// read-modify-write ≈ 14 instructions.
	HashAggInsts float64

	// MergeInsts: one 2-way-merge step — compare heads, select, advance,
	// store ≈ 10 instructions per tuple per pass.
	MergeInsts   float64
	MergeProfile engine.StepProfile
	// SIMDMergeInsts: the Mondrian SIMD merge processes 8 tuples every
	// 32 cycles (§5.2) on the dual-issue core ≈ 8 instructions/tuple.
	SIMDMergeInsts float64
	// SIMDMergeProfile reflects the data-parallel merge network: the
	// stream buffers break load-to-use chains, so the dual-issue core
	// sustains full width.
	SIMDMergeProfile engine.StepProfile
	// BitonicInsts: the initial in-register bitonic pass sorting runs of
	// InitialRunLen tuples ≈ 3 instructions/tuple SIMD.
	BitonicInsts float64

	// QuicksortInsts: per compare-swap ≈ 6 instructions; quicksort does
	// ~n·log2(n) of them but stays inside the CPU caches by design.
	QuicksortInsts   float64
	QuicksortProfile engine.StepProfile

	// MergeJoinInsts: final merge-join pass ≈ 8 instructions/tuple.
	MergeJoinInsts float64
	// RadixInsts: one LSD radix pass step — digit extract, counter or
	// offset update, store ≈ 8 instructions/tuple/pass.
	RadixInsts float64
	// SortAggInsts: sorted-run aggregation pass ≈ 10 instructions/tuple.
	SortAggInsts float64

	// SIMDScanFactor divides scan/compare instruction counts on SIMD
	// units (8 lanes of 16-byte tuples).
	SIMDScanFactor float64
	// SIMDJoinFactor divides merge-join and sorted-aggregation pass
	// costs on SIMD units (vectorized compares with scalar emission).
	SIMDJoinFactor float64

	// InitialRunLen is the sorted-run length the bitonic pre-pass
	// produces (16 ⇒ "reduces the required number of passes by four").
	InitialRunLen int
	// MergeFanIn is the merge width: 2 for scalar cores, 8 on Mondrian
	// (one stream buffer per input run).
	MergeFanIn int

	// OnChipHistogramBytes: histograms up to this size live in the
	// logic-layer SRAM / core scratchpad and generate no memory traffic
	// (the NMP systems' 64-bucket histograms are 512 B; the CPU's
	// 2^16-bucket histograms are 512 KB and must live in memory).
	OnChipHistogramBytes int
}

// DefaultCosts returns the calibrated cost model used by all experiments.
func DefaultCosts() CostModel {
	return CostModel{
		HistogramInsts: 6,
		HistogramProfile: engine.StepProfile{
			Name: "histogram", DepIPC: 0.75, InstPerAccess: 3,
			// Dependent counter updates serialize misses: the paper's
			// CPU partition code "suffers from heavy data dependencies".
			MLPOverride: 2,
		},
		DistConvInsts: 12,
		// DepIPC 0.75: the cursor chain serializes the loop (the NMP
		// baseline's partition IPC is 0.98 over histogram+distribution).
		DistConvProfile: engine.StepProfile{
			Name: "distribute-conventional", DepIPC: 0.6, InstPerAccess: 4,
			MLPOverride: 2,
		},
		DistPermInsts: 7,
		// DepIPC 1.0: permutability removes the cursor chain but the
		// object-buffer push still serializes on the loaded tuple.
		DistPermProfile: engine.StepProfile{
			Name: "distribute-permutable", DepIPC: 0.82, InstPerAccess: 4,
		},
		SIMDDistFactor:        4,
		SIMDDistScatterFactor: 2,
		SIMDHistFactor:        4,
		// 0.5: dependent misses PLUS bank/row contention from 16 cores
		// hammering the same vaults — each miss effectively costs twice
		// its unloaded latency (queueing is not modeled explicitly).
		CPUPartitionMLP: 0.5,

		ScanInsts: 4,
		// DepIPC 0.7: the paper reports the NMP baseline scanning at
		// only 2.5 GB/s per vault from "a narrow pipeline and code with
		// heavy data dependencies" (§7.1) — the compare chains through
		// the loaded key.
		ScanProfile: engine.StepProfile{
			Name: "scan", DepIPC: 0.7, InstPerAccess: 4,
		},
		SIMDScanProfile: engine.StepProfile{
			Name: "scan-simd", DepIPC: 2, InstPerAccess: 4,
		},

		HashBuildInsts: 8,
		HashProbeInsts: 10,
		HashProfile: engine.StepProfile{
			Name: "hash", DepIPC: 1.2, InstPerAccess: 4,
			// Hash probing is a dependent pointer-chase: the slot
			// address depends on the loaded key, the compare on the
			// loaded slot. The paper measures NMP-rand at IPC 0.24 —
			// essentially no miss overlap.
			MLPOverride: 1,
		},
		HashAggInsts: 14,

		MergeInsts: 10,
		// DepIPC 1.0: branchy two-way merge with load-compare-select
		// chains (NMP-seq runs at IPC 0.95 in the paper).
		MergeProfile: engine.StepProfile{
			Name: "merge", DepIPC: 1.0, InstPerAccess: 5,
		},
		SIMDMergeInsts: 8,
		SIMDMergeProfile: engine.StepProfile{
			Name: "merge-simd", DepIPC: 2, InstPerAccess: 5,
		},
		BitonicInsts: 3,

		QuicksortInsts: 6,
		// DepIPC 0.8: quicksort's pivot compares mispredict ~50% of the
		// time, and the swap chain serializes through memory.
		QuicksortProfile: engine.StepProfile{
			Name: "quicksort", DepIPC: 0.8, InstPerAccess: 8,
		},

		MergeJoinInsts: 8,
		RadixInsts:     8,
		SortAggInsts:   10,

		SIMDScanFactor: 8,
		SIMDJoinFactor: 4,

		InitialRunLen:        16,
		MergeFanIn:           2,
		OnChipHistogramBytes: 8 << 10,
	}
}

// MondrianCosts adapts the cost model to the Mondrian compute unit: wide
// merges through the eight stream buffers and SIMD throughout.
func MondrianCosts() CostModel {
	cm := DefaultCosts()
	cm.MergeFanIn = 8
	return cm
}
