package operators

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/tuple"
	"github.com/ecocloud-go/mondrian/internal/workload"
)

// Edge cases and properties beyond the happy-path matrix.

func TestOperatorsOnEmptyInput(t *testing.T) {
	for _, v := range testVariants() {
		t.Run(v.name, func(t *testing.T) {
			e := newEngine(t, v.cfg)
			empty := tuple.NewRelation("empty", 0)
			inputs := place(t, e, empty)

			scan, err := Scan(e, v.opCfg, inputs, 42)
			if err != nil || scan.Matches != 0 {
				t.Fatalf("scan on empty: %v, %d matches", err, scan.Matches)
			}

			e2 := newEngine(t, v.cfg)
			sorted, err := Sort(e2, v.opCfg, place(t, e2, empty))
			if err != nil {
				t.Fatalf("sort on empty: %v", err)
			}
			if got := totalLen(sorted.Sorted); got != 0 {
				t.Fatalf("sort emitted %d tuples from nothing", got)
			}

			e3 := newEngine(t, v.cfg)
			gb, err := GroupBy(e3, v.opCfg, place(t, e3, empty))
			if err != nil || gb.Groups != 0 {
				t.Fatalf("groupby on empty: %v, %d groups", err, gb.Groups)
			}
		})
	}
}

func TestJoinWithEmptyR(t *testing.T) {
	s := workload.Uniform("s", workload.Config{Seed: 1, Tuples: 500, KeySpace: 100})
	for _, v := range testVariants() {
		t.Run(v.name, func(t *testing.T) {
			e := newEngine(t, v.cfg)
			rIn := place(t, e, tuple.NewRelation("r", 0))
			sIn := place(t, e, s)
			res, err := Join(e, v.opCfg, rIn, sIn)
			if err != nil {
				t.Fatal(err)
			}
			if res.Matches != 0 {
				t.Fatalf("join with empty R matched %d", res.Matches)
			}
		})
	}
}

func TestSingleTupleOperators(t *testing.T) {
	one := &tuple.Relation{Name: "one", Tuples: []tuple.Tuple{{Key: 5, Val: 50}}}
	for _, v := range testVariants() {
		t.Run(v.name, func(t *testing.T) {
			e := newEngine(t, v.cfg)
			res, err := Sort(e, v.opCfg, place(t, e, one))
			if err != nil {
				t.Fatal(err)
			}
			var got []tuple.Tuple
			for _, b := range res.Sorted {
				got = append(got, b.Tuples...)
			}
			if len(got) != 1 || got[0].Key != 5 {
				t.Fatalf("sorted = %v", got)
			}
		})
	}
}

func TestSortAutoKeySpace(t *testing.T) {
	// Keys occupy only [0, 100) but the declared key space is absent:
	// Sort must derive the range instead of collapsing into bucket 0.
	rel := workload.Uniform("in", workload.Config{Seed: 9, Tuples: 3000, KeySpace: 100})
	for _, v := range testVariants() {
		t.Run(v.name, func(t *testing.T) {
			cfg := v.opCfg
			cfg.KeySpace = 0
			e := newEngine(t, v.cfg)
			res, err := Sort(e, cfg, place(t, e, rel))
			if err != nil {
				t.Fatal(err)
			}
			var got []tuple.Tuple
			for _, b := range res.Sorted {
				got = append(got, b.Tuples...)
			}
			if !tuple.SameMultiset(got, rel.Tuples) {
				t.Fatal("auto-keyspace sort lost tuples")
			}
			// With low keys and the auto range, buckets must be
			// populated beyond the first.
			if res.Sorted[0].Len() == len(got) && len(got) > 0 {
				t.Fatal("all tuples collapsed into one bucket")
			}
		})
	}
}

func TestSkewOverflowAndOverprovisionRetry(t *testing.T) {
	skewed, err := workload.Zipf("z", workload.Config{Seed: 13, Tuples: 16000, KeySpace: 1 << 20}, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	v := testVariants()[5] // Mondrian
	run := func(over float64) error {
		e := newEngine(t, v.cfg)
		cfg := v.opCfg
		cfg.Overprovision = over
		_, err := GroupBy(e, cfg, place(t, e, skewed))
		return err
	}
	if err := run(0); !errors.Is(err, ErrPartitionOverflow) {
		t.Fatalf("default overprovision on skew: %v, want overflow", err)
	}
	if err := run(64); err != nil {
		t.Fatalf("overprovision ×64 still failed: %v", err)
	}
}

func TestProbeGroupsShape(t *testing.T) {
	v := testVariants()[0] // CPU, 4 cores
	e := newEngine(t, v.cfg)
	// 32 buckets of 100 tuples each.
	buckets := make([]*engine.Region, 32)
	for i := range buckets {
		r, err := e.Place(i%e.NumVaults(), workload.Sequential("b", 100).Tuples)
		if err != nil {
			t.Fatal(err)
		}
		buckets[i] = r
	}
	cfg := v.opCfg
	cfg.CPUProbeTuples = 400
	groups := probeGroups(e, cfg, buckets)
	// 3200 tuples at 400/group → 8 groups of 4 consecutive buckets.
	if len(groups) != 8 {
		t.Fatalf("groups = %d, want 8", len(groups))
	}
	next := 0
	for _, g := range groups {
		for _, b := range g {
			if b != next {
				t.Fatalf("groups not consecutive: %v", groups)
			}
			next++
		}
	}
	// NMP systems: strictly one bucket per group.
	nmp := newEngine(t, testVariants()[1].cfg)
	nBuckets := make([]*engine.Region, nmp.NumVaults())
	for i := range nBuckets {
		r, err := nmp.Place(i, workload.Sequential("b", 10).Tuples)
		if err != nil {
			t.Fatal(err)
		}
		nBuckets[i] = r
	}
	ngroups := probeGroups(nmp, testVariants()[1].opCfg, nBuckets)
	if len(ngroups) != nmp.NumVaults() {
		t.Fatalf("NMP groups = %d", len(ngroups))
	}
	for i, g := range ngroups {
		if len(g) != 1 || g[0] != i {
			t.Fatalf("NMP group %d = %v", i, g)
		}
	}
}

func TestProbeGroupsKeepCoresBusy(t *testing.T) {
	// Small dataset: group size shrinks so all 4 CPU cores get work.
	v := testVariants()[0]
	e := newEngine(t, v.cfg)
	buckets := make([]*engine.Region, 16)
	for i := range buckets {
		r, err := e.Place(i%e.NumVaults(), workload.Sequential("b", 50).Tuples)
		if err != nil {
			t.Fatal(err)
		}
		buckets[i] = r
	}
	cfg := v.opCfg
	cfg.CPUProbeTuples = 1 << 20 // absurdly large target
	groups := probeGroups(e, cfg, buckets)
	if len(groups) < len(e.Units()) {
		t.Fatalf("only %d groups for %d cores", len(groups), len(e.Units()))
	}
}

func TestQuicksortSuperSpansRegions(t *testing.T) {
	v := testVariants()[0]
	e := newEngine(t, v.cfg)
	u := e.Units()[0]
	r1, _ := e.Place(0, []tuple.Tuple{{Key: 9}, {Key: 3}})
	r2, _ := e.Place(1, []tuple.Tuple{{Key: 7}, {Key: 1}})
	e.BeginStep(engine.StepProfile{Name: "qs", DepIPC: 1, InstPerAccess: 4})
	quicksortSuper(u, DefaultCosts(), []*engine.Region{r1, r2})
	e.EndStep()
	got := append(append([]tuple.Tuple{}, r1.Tuples...), r2.Tuples...)
	for i := 1; i < len(got); i++ {
		if got[i].Key < got[i-1].Key {
			t.Fatalf("cross-region sort broken: %v", got)
		}
	}
}

func TestHashTableFull(t *testing.T) {
	v := testVariants()[1]
	e := newEngine(t, v.cfg)
	ht, err := newHashTable(e, 0, 1) // 4 slots
	if err != nil {
		t.Fatal(err)
	}
	u := e.UnitForVault(0)
	e.BeginStep(engine.StepProfile{Name: "ht"})
	var insertErr error
	for i := 0; i < 8 && insertErr == nil; i++ {
		insertErr = ht.insert(u, tuple.Tuple{Key: tuple.Key(i)})
	}
	e.EndStep()
	if insertErr == nil {
		t.Fatal("overfilled hash table did not error")
	}
}

func TestAggregatesAvg(t *testing.T) {
	a := &Aggregates{}
	if a.Avg() != 0 {
		t.Fatal("empty Avg should be 0")
	}
	a.Count, a.Sum = 4, 10
	if a.Avg() != 2 {
		t.Fatalf("Avg = %d", a.Avg())
	}
}

// Property: for random workloads, every variant's Join output equals the
// reference, and all variants agree with each other.
func TestJoinEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	vs := testVariants()
	f := func(seed int64, sn uint16, rn uint8) bool {
		sSize := int(sn)%3000 + 100
		rSize := int(rn)%300 + 10
		r, s, err := workload.FKPair(workload.Config{Seed: seed, Tuples: sSize}, rSize)
		if err != nil {
			return false
		}
		want := RefJoin(r.Tuples, s.Tuples)
		for _, v := range vs {
			e, err := engine.New(v.cfg)
			if err != nil {
				return false
			}
			rIn := placeQuiet(e, r)
			sIn := placeQuiet(e, s)
			if rIn == nil || sIn == nil {
				return false
			}
			res, err := Join(e, v.opCfg, rIn, sIn)
			if err != nil {
				return false
			}
			if !tuple.SameMultiset(Gather(res.Out), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// placeQuiet is place without the testing.T plumbing (for quick.Check).
func placeQuiet(e *engine.Engine, rel *tuple.Relation) []*engine.Region {
	parts := rel.SplitEven(e.NumVaults())
	regions := make([]*engine.Region, len(parts))
	for v, p := range parts {
		r, err := e.Place(v, p.Tuples)
		if err != nil {
			return nil
		}
		regions[v] = r
	}
	return regions
}

func TestRadixPasses(t *testing.T) {
	for _, tc := range []struct {
		ks   uint64
		want int
	}{
		{256, 1}, {257, 2}, {1 << 16, 2}, {1 << 24, 3}, {1, 1},
	} {
		if got := RadixPasses(tc.ks); got != tc.want {
			t.Fatalf("RadixPasses(%d) = %d, want %d", tc.ks, got, tc.want)
		}
	}
}

func TestRadixSortLocalSorts(t *testing.T) {
	v := testVariants()[5] // Mondrian
	e := newEngine(t, v.cfg)
	rel := workload.Uniform("in", workload.Config{Seed: 33, Tuples: 2000, KeySpace: 1 << 16})
	r, err := e.Place(0, rel.Tuples)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := e.AllocOut(0, 2000)
	if err != nil {
		t.Fatal(err)
	}
	u := e.UnitForVault(0)
	e.BeginStep(engine.StepProfile{Name: "radix", StreamFed: true, DepIPC: 2})
	out, err := radixSortLocal(u, MondrianCosts(), r, scratch, 1<<16, true)
	e.EndStep()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < out.Len(); i++ {
		if out.Tuples[i].Key < out.Tuples[i-1].Key {
			t.Fatalf("not sorted at %d", i)
		}
	}
	if !tuple.SameMultiset(out.Tuples, rel.Tuples) {
		t.Fatal("radix sort changed the multiset")
	}
}

func TestRadixSortStability(t *testing.T) {
	// Equal keys must keep their relative payload order (LSD stability).
	v := testVariants()[1] // NMP
	e := newEngine(t, v.cfg)
	in := []tuple.Tuple{{Key: 5, Val: 1}, {Key: 3, Val: 2}, {Key: 5, Val: 3}, {Key: 3, Val: 4}}
	r, _ := e.Place(0, in)
	scratch, _ := e.AllocOut(0, 4)
	u := e.UnitForVault(0)
	e.BeginStep(engine.StepProfile{Name: "radix"})
	out, err := radixSortLocal(u, DefaultCosts(), r, scratch, 256, false)
	e.EndStep()
	if err != nil {
		t.Fatal(err)
	}
	want := []tuple.Tuple{{Key: 3, Val: 2}, {Key: 3, Val: 4}, {Key: 5, Val: 1}, {Key: 5, Val: 3}}
	for i := range want {
		if out.Tuples[i] != want[i] {
			t.Fatalf("stability broken: %v", out.Tuples)
		}
	}
}

func TestRadixSortBucketsAcrossVaults(t *testing.T) {
	v := testVariants()[5]
	e := newEngine(t, v.cfg)
	rel := workload.Uniform("in", workload.Config{Seed: 35, Tuples: 4000, KeySpace: 1 << 16})
	buckets := place(t, e, rel)
	sorted, err := RadixSortBuckets(e, MondrianCosts(), buckets, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	var got []tuple.Tuple
	for _, b := range sorted {
		for i := 1; i < b.Len(); i++ {
			if b.Tuples[i].Key < b.Tuples[i-1].Key {
				t.Fatal("bucket not sorted")
			}
		}
		got = append(got, b.Tuples...)
	}
	if !tuple.SameMultiset(got, rel.Tuples) {
		t.Fatal("radix buckets lost tuples")
	}
}

// Failure injection: vault memory exhaustion must surface as errors, not
// panics, from every operator entry point.
func TestVaultExhaustionSurfacesAsError(t *testing.T) {
	v := testVariants()[5] // Mondrian
	cfg := v.cfg
	cfg.Geometry.CapacityBytes = 96 << 10 // 96 KB vaults: too small for scratch
	e, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rel := workload.Uniform("in", workload.Config{Seed: 41, Tuples: 16000, KeySpace: 1 << 16})
	parts := rel.SplitEven(e.NumVaults())
	inputs := make([]*engine.Region, len(parts))
	for i, p := range parts {
		r, err := e.Place(i, p.Tuples)
		if err != nil {
			t.Skipf("placement itself exhausted the vault: %v", err)
		}
		inputs[i] = r
	}
	if _, err := Sort(e, v.opCfg, inputs); err == nil {
		t.Fatal("sort in exhausted vaults should error")
	}
}

func TestPartitionPhaseInputValidation(t *testing.T) {
	v := testVariants()[1]
	e := newEngine(t, v.cfg)
	if _, err := PartitionPhase(e, v.opCfg, nil, Partitioner{Buckets: e.NumVaults()}); err == nil {
		t.Fatal("nil inputs accepted")
	}
	rel := workload.Sequential("s", 100)
	inputs := place(t, e, rel)
	if _, err := PartitionPhase(e, v.opCfg, inputs, Partitioner{Buckets: 3}); err == nil {
		t.Fatal("NMP partitioning with wrong bucket count accepted")
	}
}

func TestCheckInputsRejectsMisplacedRegions(t *testing.T) {
	v := testVariants()[1]
	e := newEngine(t, v.cfg)
	rel := workload.Sequential("s", 64)
	inputs := place(t, e, rel)
	// Swap two regions: vault order broken.
	inputs[0], inputs[1] = inputs[1], inputs[0]
	if _, err := Scan(e, v.opCfg, inputs, 1); err == nil {
		t.Fatal("misordered inputs accepted")
	}
}
