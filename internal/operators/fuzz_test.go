package operators

import (
	"encoding/binary"
	"testing"

	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

const fuzzKeySpace = 1 << 16

// fuzzTuples decodes arbitrary fuzzer bytes into tuples with keys bounded
// by fuzzKeySpace (the HighBits partitioner requires keys < KeySpace).
// Capped at 1024 tuples to bound per-input runtime.
func fuzzTuples(data []byte) []tuple.Tuple {
	n := len(data) / 16
	if n > 1024 {
		n = 1024
	}
	ts := make([]tuple.Tuple, 0, n)
	for i := 0; i < n; i++ {
		ts = append(ts, tuple.Tuple{
			Key: tuple.Key(binary.LittleEndian.Uint64(data[i*16:]) % fuzzKeySpace),
			Val: tuple.Value(binary.LittleEndian.Uint64(data[i*16+8:])),
		})
	}
	return ts
}

// fuzzSeeds registers a shared seed corpus: empty input, uniform keys,
// all-identical keys, total skew to one bucket, and reverse-sorted keys.
// Under plain `go test` these run as regression cases.
func fuzzSeeds(f *testing.F) {
	f.Add([]byte{})
	uniform := make([]byte, 16*64)
	for i := 0; i < 64; i++ {
		binary.LittleEndian.PutUint64(uniform[i*16:], uint64(i)*2654435761)
		binary.LittleEndian.PutUint64(uniform[i*16+8:], uint64(i))
	}
	f.Add(uniform)
	same := make([]byte, 16*32)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint64(same[i*16:], 12345)
		binary.LittleEndian.PutUint64(same[i*16+8:], uint64(i))
	}
	f.Add(same)
	skew := make([]byte, 16*48) // keys ≡ 0 (mod 8): all tuples hit vault 0
	for i := 0; i < 48; i++ {
		binary.LittleEndian.PutUint64(skew[i*16:], uint64(i)*8*64)
		binary.LittleEndian.PutUint64(skew[i*16+8:], uint64(i))
	}
	f.Add(skew)
	rev := make([]byte, 16*40)
	for i := 0; i < 40; i++ {
		binary.LittleEndian.PutUint64(rev[i*16:], uint64(4000-100*i))
		binary.LittleEndian.PutUint64(rev[i*16+8:], uint64(i))
	}
	f.Add(rev)
}

// nmpFuzzEngine builds a fresh 8-vault NMP engine (permutable or not).
func nmpFuzzEngine(t *testing.T, perm bool) *engine.Engine {
	t.Helper()
	for _, v := range testVariants() {
		if (perm && v.name == "NMP-perm") || (!perm && v.name == "NMP-rand") {
			return newEngine(t, v.cfg)
		}
	}
	t.Fatal("test variant not found")
	return nil
}

// placeEven spreads tuples across vaults like the simulation harness does.
func placeEven(t *testing.T, e *engine.Engine, ts []tuple.Tuple) []*engine.Region {
	t.Helper()
	rel := &tuple.Relation{Name: "fuzz", Tuples: ts}
	return place(t, e, rel)
}

// FuzzPartitionRoundTrip feeds arbitrary key distributions through the
// real NMP partitioning phase (both the permutable and conventional
// distribution paths) and asserts the shuffle invariants: every tuple
// lands in its key's bucket, and partition-then-concatenate is a multiset
// identity. Pure Partitioner properties (range, HighBits monotonicity)
// are checked on the same input.
func FuzzPartitionRoundTrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		ts := fuzzTuples(data)

		// Pure bucket-function properties at several bucket counts.
		for _, nb := range []int{1, 3, 8, 64} {
			mod := Partitioner{Buckets: nb}
			high := Partitioner{Buckets: nb, KeySpace: fuzzKeySpace, HighBits: true}
			prevHigh := -1
			for k := uint64(0); k < fuzzKeySpace; k += 977 {
				if b := mod.Bucket(tuple.Key(k)); b < 0 || b >= nb {
					t.Fatalf("mod bucket %d out of range [0,%d)", b, nb)
				}
				hb := high.Bucket(tuple.Key(k))
				if hb < 0 || hb >= nb {
					t.Fatalf("high bucket %d out of range [0,%d)", hb, nb)
				}
				if hb < prevHigh {
					t.Fatalf("HighBits not monotonic: key %d → bucket %d after %d", k, hb, prevHigh)
				}
				prevHigh = hb
			}
		}

		// Engine round-trip through both distribution paths.
		for _, perm := range []bool{false, true} {
			e := nmpFuzzEngine(t, perm)
			inputs := placeEven(t, e, ts)
			part := Partitioner{Buckets: e.NumVaults()}
			pr, err := PartitionPhase(e, Config{Costs: DefaultCosts(), KeySpace: fuzzKeySpace}, inputs, part)
			if err != nil {
				t.Fatalf("perm=%v: %v", perm, err)
			}
			var got []tuple.Tuple
			for b, r := range pr.Buckets {
				for _, tp := range r.Tuples {
					if part.Bucket(tp.Key) != b {
						t.Fatalf("perm=%v: tuple %v in bucket %d, want %d", perm, tp, b, part.Bucket(tp.Key))
					}
				}
				got = append(got, r.Tuples...)
			}
			if !tuple.SameMultiset(got, ts) {
				t.Fatalf("perm=%v: partition lost or invented tuples (%d in, %d out)", perm, len(ts), len(got))
			}
		}
	})
}

// FuzzRadixRoundTrip runs the LSD radix sort over arbitrary inputs and
// asserts it produces a sorted permutation of its input.
func FuzzRadixRoundTrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		ts := fuzzTuples(data)
		e := nmpFuzzEngine(t, false)
		r, err := e.Place(0, ts)
		if err != nil {
			t.Fatal(err)
		}
		scratch, err := e.AllocOut(0, maxInt(len(ts), 1))
		if err != nil {
			t.Fatal(err)
		}
		e.BeginStep(engine.StepProfile{Name: "radix-fuzz", DepIPC: 1.2, InstPerAccess: 3})
		sorted, err := radixSortLocal(e.UnitForVault(0), DefaultCosts(), r, scratch, fuzzKeySpace, false)
		e.EndStep()
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < sorted.Len(); i++ {
			if sorted.Tuples[i].Key < sorted.Tuples[i-1].Key {
				t.Fatalf("not sorted at %d: %v > %v", i, sorted.Tuples[i-1], sorted.Tuples[i])
			}
		}
		if !tuple.SameMultiset(sorted.Tuples, ts) {
			t.Fatalf("radix sort is not a permutation (%d in, %d out)", len(ts), sorted.Len())
		}
	})
}
