package operators

import (
	"sort"

	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// AggKind indexes the six Group-by aggregation functions of §6.
type AggKind int

// The aggregation functions, in output order.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
	AggAvg
	AggSumSq
	numAggs
)

// GroupByResult reports a Group-by run.
type GroupByResult struct {
	// Out holds the emitted aggregate tuples: for each group, six tuples
	// (group key, aggregate value) in AggKind order.
	Out         []*engine.Region
	Groups      int
	Partition   *PartitionResult
	PartitionNs float64
	ProbeNs     float64
}

// Ns returns the operator's total runtime.
func (r *GroupByResult) Ns() float64 { return r.PartitionNs + r.ProbeNs }

// emitGroup appends one group's six aggregate tuples to out.
func emitGroup(u *engine.Unit, out *engine.Region, key tuple.Key, a *Aggregates) {
	vals := [numAggs]uint64{a.Count, a.Sum, a.Min, a.Max, a.Avg(), a.SumSq}
	for _, v := range vals {
		u.AppendLocal(out, tuple.Tuple{Key: key, Val: tuple.Value(v)})
	}
}

// emitGroupRun is emitGroup retired as one run-based append.
func emitGroupRun(u *engine.Unit, out *engine.Region, key tuple.Key, a *Aggregates) {
	vals := [numAggs]uint64{a.Count, a.Sum, a.Min, a.Max, a.Avg(), a.SumSq}
	var ts [numAggs]tuple.Tuple
	for i, v := range vals {
		ts[i] = tuple.Tuple{Key: key, Val: tuple.Value(v)}
	}
	u.AppendRunLocal(out, ts[:])
}

// GroupBy groups the dataset by key and applies the six aggregation
// functions (avg, count, min, max, sum, sum squared) to each group. The
// partitioning phase hashes low-order key bits; the probe is hash
// aggregation (CPU, NMP-rand) or sort-then-aggregate (NMP-seq, Mondrian).
func GroupBy(e *engine.Engine, cfg Config, inputs []*engine.Region) (*GroupByResult, error) {
	if err := checkInputs(e, inputs); err != nil {
		return nil, err
	}
	total := totalLen(inputs)
	part := Partitioner{Buckets: bucketCount(e, cfg, total)}

	pres, err := PartitionPhase(e, cfg, inputs, part)
	if err != nil {
		return nil, err
	}
	res, err := GroupByProbe(e, cfg, pres.Buckets)
	if err != nil {
		return nil, err
	}
	res.Partition = pres
	res.PartitionNs = pres.Ns()
	return res, nil
}

// GroupByProbe runs the Group-by probe phase over already partitioned
// buckets: every occurrence of a key must live in a single bucket, with
// bucket b resident in vault b on the vault-partitioned architectures
// (either a hash or a range partition satisfies this). GroupBy calls it
// after its partition phase; plan execution calls it directly when an
// upstream operator's output is already partitioned on the group key,
// eliding the re-shuffle.
func GroupByProbe(e *engine.Engine, cfg Config, buckets []*engine.Region) (*GroupByResult, error) {
	cm := cfg.Costs
	res := &GroupByResult{}
	t1 := e.TotalNs()
	e.BeginPhase("probe")
	defer e.EndPhase()

	if cfg.SortProbe {
		if err := groupBySortProbe(e, cm, buckets, res); err != nil {
			return nil, err
		}
	} else {
		if err := groupByHashProbe(e, cfg, buckets, res); err != nil {
			return nil, err
		}
	}
	e.Barrier()
	res.ProbeNs = e.TotalNs() - t1
	return res, nil
}

// groupByHashProbe aggregates each probe group through a hash table of
// running aggregates — random-access hash aggregation (CPU and NMP-rand).
func groupByHashProbe(e *engine.Engine, cfg Config, buckets []*engine.Region, res *GroupByResult) error {
	cm := cfg.Costs
	groups := probeGroups(e, cfg, buckets)
	tables := make([]*aggTable, len(groups))
	outs := make([]*engine.Region, len(groups))
	for g, group := range groups {
		total := 0
		for _, b := range group {
			total += buckets[b].Len()
		}
		t, err := newAggTable(e, buckets[group[0]].Vault.ID, maxInt(total, 1))
		if err != nil {
			return err
		}
		tables[g] = t
		out, err := e.AllocOut(buckets[group[0]].Vault.ID, maxInt(total, 1)*int(numAggs))
		if err != nil {
			return err
		}
		outs[g] = out
	}
	res.Out = outs

	nGroups := make([]int, len(groups))
	e.BeginStep(cm.HashProfile)
	if err := e.ForEachTaskWeighted(len(groups), stealGroupWeights(e, groups, buckets), func(g int) error {
		u := unitForGroup(e, groups, g)
		for _, b := range groups[g] {
			bucket := buckets[b]
			for i := 0; i < bucket.Len(); i++ {
				t := u.LoadTuple(bucket, i)
				u.Charge(cm.HashAggInsts)
				tables[g].update(u, t)
			}
		}
		// Emission sweep over the table, in sorted key order. The writes
		// are sequential appends either way, so the simulated address
		// stream — and with it timing and energy — is order-independent;
		// but the emitted tuple order must be deterministic because plan
		// execution feeds these regions into downstream operators, whose
		// access patterns follow the content.
		keys := make([]tuple.Key, 0, len(tables[g].groups))
		for key := range tables[g].groups {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, key := range keys {
			u.Charge(float64(numAggs) * 2)
			emitGroup(u, outs[g], key, tables[g].groups[key])
			nGroups[g]++
		}
		return nil
	}); err != nil {
		return err
	}
	e.EndStep()
	for _, n := range nGroups {
		res.Groups += n
	}
	return nil
}

// groupBySortProbe sorts each bucket, then aggregates in one sequential
// pass — the NMP-preferred algorithm (more passes, all sequential).
func groupBySortProbe(e *engine.Engine, cm CostModel, buckets []*engine.Region, res *GroupByResult) error {
	outs := make([]*engine.Region, len(buckets))
	for b, bucket := range buckets {
		r, err := e.AllocOut(bucket.Vault.ID, maxInt(bucket.Len(), 1)*int(numAggs))
		if err != nil {
			return err
		}
		outs[b] = r
	}
	res.Out = outs
	sorted, err := sortBuckets(e, cm, buckets)
	if err != nil {
		return err
	}
	insts := cm.SortAggInsts
	prof := engine.StepProfile{Name: "agg-pass", DepIPC: 1.0, InstPerAccess: 5}
	if isSIMD(e) {
		insts /= cm.SIMDJoinFactor
		prof.DepIPC = 2
	}
	nGroups := make([]int, len(sorted))
	splits := make([]int, len(sorted))
	skewAware := e.Config().SkewAware
	e.BeginStep(probeProfile(e, prof))
	if err := e.ForEachTaskWeighted(len(sorted), stealWeights(e, sorted), func(b int) error {
		u := unitForBucket(e, b)
		if u.Columnar() {
			// Columnar path: group boundaries come from the RunEnd kernel
			// over the bucket's dense key column; reads, charges and
			// emissions follow the bulk path exactly.
			keys := sorted[b].KeyColumn()
			g := u.StreamGroup()
			g.Reset()
			g.AddView(sorted[b], 0, sorted[b].Len())
			readers, err := g.Open()
			if err != nil {
				return err
			}
			rd := readers[0]
			ts := sorted[b].Tuples
			n := len(keys)
			c := 0 // tuples consumed from the reader so far
			for gs := 0; gs < n; {
				ge := tuple.RunEnd(keys, gs)
				want := ge + 1
				if want > n {
					want = n
				}
				if k := want - c; k > 0 {
					rd.NextRun(k)
					u.ChargeRun(insts, k)
					c = want
				}
				var agg Aggregates
				if skewAware && ge-gs >= splitGroupMinTuples {
					agg = shardedAggregate(ts[gs:ge])
					splits[b]++
				} else {
					agg = Aggregates{Min: ^uint64(0)}
					for i := gs; i < ge; i++ {
						v := uint64(ts[i].Val)
						agg.Count++
						agg.Sum += v
						agg.SumSq += v * v
						if v < agg.Min {
							agg.Min = v
						}
						if v > agg.Max {
							agg.Max = v
						}
					}
				}
				emitGroupRun(u, outs[b], keys[gs], &agg)
				nGroups[b]++
				gs = ge
			}
			return nil
		}
		readers, err := u.OpenStreams(sorted[b])
		if err != nil {
			return err
		}
		if u.Bulk() {
			// Bulk path: key boundaries are found by peeking ahead in the
			// functional data. The reference loop emits group g right after
			// reading (and charging) the first tuple of group g+1, so each
			// group's read run extends one tuple past its boundary — except
			// the last, which ends at the stream's end.
			ts := sorted[b].Tuples
			n := len(ts)
			c := 0 // tuples consumed from the reader so far
			for gs := 0; gs < n; {
				ge := gs + 1
				for ge < n && ts[ge].Key == ts[gs].Key {
					ge++
				}
				want := ge + 1
				if want > n {
					want = n
				}
				if k := want - c; k > 0 {
					readers[0].NextRun(k)
					u.ChargeRun(insts, k)
					c = want
				}
				var agg Aggregates
				if skewAware && ge-gs >= splitGroupMinTuples {
					// Hot group: shard the aggregation across host workers
					// and combine the exact partials. The simulated reads
					// and charges already happened above, untouched.
					agg = shardedAggregate(ts[gs:ge])
					splits[b]++
				} else {
					agg = Aggregates{Min: ^uint64(0)}
					for i := gs; i < ge; i++ {
						v := uint64(ts[i].Val)
						agg.Count++
						agg.Sum += v
						agg.SumSq += v * v
						if v < agg.Min {
							agg.Min = v
						}
						if v > agg.Max {
							agg.Max = v
						}
					}
				}
				emitGroupRun(u, outs[b], ts[gs].Key, &agg)
				nGroups[b]++
				gs = ge
			}
			return nil
		}
		// Reference per-tuple path.
		var cur tuple.Key
		var agg *Aggregates
		for {
			t, ok := readers[0].Next()
			if !ok {
				break
			}
			u.Charge(insts)
			if agg == nil || t.Key != cur {
				if agg != nil {
					emitGroup(u, outs[b], cur, agg)
					nGroups[b]++
				}
				cur = t.Key
				agg = &Aggregates{Min: ^uint64(0)}
			}
			v := uint64(t.Val)
			agg.Count++
			agg.Sum += v
			agg.SumSq += v * v
			if v < agg.Min {
				agg.Min = v
			}
			if v > agg.Max {
				agg.Max = v
			}
		}
		if agg != nil {
			emitGroup(u, outs[b], cur, agg)
			nGroups[b]++
		}
		return nil
	}); err != nil {
		return err
	}
	e.EndStep()
	for _, n := range nGroups {
		res.Groups += n
	}
	if skewAware {
		total := 0
		for _, s := range splits {
			total += s
		}
		e.RecordSplitKeys(total)
	}
	return nil
}
