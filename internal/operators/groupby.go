package operators

import (
	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// AggKind indexes the six Group-by aggregation functions of §6.
type AggKind int

// The aggregation functions, in output order.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
	AggAvg
	AggSumSq
	numAggs
)

// GroupByResult reports a Group-by run.
type GroupByResult struct {
	// Out holds the emitted aggregate tuples: for each group, six tuples
	// (group key, aggregate value) in AggKind order.
	Out         []*engine.Region
	Groups      int
	Partition   *PartitionResult
	PartitionNs float64
	ProbeNs     float64
}

// Ns returns the operator's total runtime.
func (r *GroupByResult) Ns() float64 { return r.PartitionNs + r.ProbeNs }

// emitGroup appends one group's six aggregate tuples to out.
func emitGroup(u *engine.Unit, out *engine.Region, key tuple.Key, a *Aggregates) {
	vals := [numAggs]uint64{a.Count, a.Sum, a.Min, a.Max, a.Avg(), a.SumSq}
	for _, v := range vals {
		u.AppendLocal(out, tuple.Tuple{Key: key, Val: tuple.Value(v)})
	}
}

// GroupBy groups the dataset by key and applies the six aggregation
// functions (avg, count, min, max, sum, sum squared) to each group. The
// partitioning phase hashes low-order key bits; the probe is hash
// aggregation (CPU, NMP-rand) or sort-then-aggregate (NMP-seq, Mondrian).
func GroupBy(e *engine.Engine, cfg Config, inputs []*engine.Region) (*GroupByResult, error) {
	if err := checkInputs(e, inputs); err != nil {
		return nil, err
	}
	cm := cfg.Costs
	total := totalLen(inputs)
	part := Partitioner{Buckets: bucketCount(e, cfg, total)}

	pres, err := PartitionPhase(e, cfg, inputs, part)
	if err != nil {
		return nil, err
	}
	res := &GroupByResult{Partition: pres, PartitionNs: pres.Ns()}
	t1 := e.TotalNs()

	if cfg.SortProbe {
		if err := groupBySortProbe(e, cm, pres.Buckets, res); err != nil {
			return nil, err
		}
	} else {
		if err := groupByHashProbe(e, cfg, pres.Buckets, res); err != nil {
			return nil, err
		}
	}
	e.Barrier()
	res.ProbeNs = e.TotalNs() - t1
	return res, nil
}

// groupByHashProbe aggregates each probe group through a hash table of
// running aggregates — random-access hash aggregation (CPU and NMP-rand).
func groupByHashProbe(e *engine.Engine, cfg Config, buckets []*engine.Region, res *GroupByResult) error {
	cm := cfg.Costs
	groups := probeGroups(e, cfg, buckets)
	tables := make([]*aggTable, len(groups))
	outs := make([]*engine.Region, len(groups))
	for g, group := range groups {
		total := 0
		for _, b := range group {
			total += buckets[b].Len()
		}
		t, err := newAggTable(e, buckets[group[0]].Vault.ID, maxInt(total, 1))
		if err != nil {
			return err
		}
		tables[g] = t
		out, err := e.AllocOut(buckets[group[0]].Vault.ID, maxInt(total, 1)*int(numAggs))
		if err != nil {
			return err
		}
		outs[g] = out
	}
	res.Out = outs

	nGroups := make([]int, len(groups))
	e.BeginStep(cm.HashProfile)
	if err := e.ForEachTask(len(groups), func(g int) error {
		u := unitForGroup(e, groups, g)
		for _, b := range groups[g] {
			bucket := buckets[b]
			for i := 0; i < bucket.Len(); i++ {
				t := u.LoadTuple(bucket, i)
				u.Charge(cm.HashAggInsts)
				tables[g].update(u, t)
			}
		}
		// Emission sweep over the table. Map order varies run to run, but
		// the emitted writes are sequential appends, so the simulated
		// address stream — and with it timing and energy — does not.
		for key, agg := range tables[g].groups {
			u.Charge(float64(numAggs) * 2)
			emitGroup(u, outs[g], key, agg)
			nGroups[g]++
		}
		return nil
	}); err != nil {
		return err
	}
	e.EndStep()
	for _, n := range nGroups {
		res.Groups += n
	}
	return nil
}

// groupBySortProbe sorts each bucket, then aggregates in one sequential
// pass — the NMP-preferred algorithm (more passes, all sequential).
func groupBySortProbe(e *engine.Engine, cm CostModel, buckets []*engine.Region, res *GroupByResult) error {
	outs := make([]*engine.Region, len(buckets))
	for b, bucket := range buckets {
		r, err := e.AllocOut(bucket.Vault.ID, maxInt(bucket.Len(), 1)*int(numAggs))
		if err != nil {
			return err
		}
		outs[b] = r
	}
	res.Out = outs
	sorted, err := sortBuckets(e, cm, buckets)
	if err != nil {
		return err
	}
	insts := cm.SortAggInsts
	prof := engine.StepProfile{Name: "agg-pass", DepIPC: 1.0, InstPerAccess: 5}
	if isSIMD(e) {
		insts /= cm.SIMDJoinFactor
		prof.DepIPC = 2
	}
	nGroups := make([]int, len(sorted))
	e.BeginStep(probeProfile(e, prof))
	if err := e.ForEachTask(len(sorted), func(b int) error {
		u := unitForBucket(e, b)
		readers, err := u.OpenStreams(sorted[b])
		if err != nil {
			return err
		}
		var cur tuple.Key
		var agg *Aggregates
		for {
			t, ok := readers[0].Next()
			if !ok {
				break
			}
			u.Charge(insts)
			if agg == nil || t.Key != cur {
				if agg != nil {
					emitGroup(u, outs[b], cur, agg)
					nGroups[b]++
				}
				cur = t.Key
				agg = &Aggregates{Min: ^uint64(0)}
			}
			v := uint64(t.Val)
			agg.Count++
			agg.Sum += v
			agg.SumSq += v * v
			if v < agg.Min {
				agg.Min = v
			}
			if v > agg.Max {
				agg.Max = v
			}
		}
		if agg != nil {
			emitGroup(u, outs[b], cur, agg)
			nGroups[b]++
		}
		return nil
	}); err != nil {
		return err
	}
	e.EndStep()
	for _, n := range nGroups {
		res.Groups += n
	}
	return nil
}
