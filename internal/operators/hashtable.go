package operators

import (
	"fmt"

	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// hashTable is an open-addressing (linear probing) table materialized in a
// simulated memory region, used by the hash-based probe algorithms (the
// CPU-preferred path and NMP-rand). Every slot touch is a real 16-byte
// access to the region, so collisions, cache behaviour and DRAM row
// traffic all emerge from the actual probe sequence.
type hashTable struct {
	region   *engine.Region
	occupied []bool
	// keys is the columnar build side: a dense mirror of the slot keys,
	// maintained only when the engine runs columnar. Probe compares then
	// scan 8-byte keys instead of dereferencing 16-byte slots; the
	// simulated slot reads (and their charges) are unchanged.
	keys    []tuple.Key
	mask    uint64
	entries int
}

// newHashTable allocates a table with ≥ 2× capacity slots (power of two)
// in the given vault.
func newHashTable(e *engine.Engine, vaultID, capacity int) (*hashTable, error) {
	slots := 4
	for slots < capacity*2 {
		slots <<= 1
	}
	r, err := e.AllocOut(vaultID, slots)
	if err != nil {
		return nil, err
	}
	for i := 0; i < slots; i++ {
		r.Tuples = append(r.Tuples, tuple.Tuple{})
	}
	ht := &hashTable{region: r, occupied: make([]bool, slots), mask: uint64(slots - 1)}
	if e.Columnar() {
		ht.keys = make([]tuple.Key, slots)
	}
	return ht, nil
}

// slotHash spreads keys over slots (Fibonacci hashing).
func (h *hashTable) slotHash(k tuple.Key) uint64 {
	return (uint64(k) * 0x9e3779b97f4a7c15) >> 1 & h.mask
}

// insert stores one tuple, probing linearly for a free slot. u is charged
// one 16-byte access per probed slot plus the store.
func (h *hashTable) insert(u *engine.Unit, t tuple.Tuple) error {
	if h.entries >= len(h.occupied) {
		return fmt.Errorf("operators: hash table full (%d slots)", len(h.occupied))
	}
	i := h.slotHash(t.Key)
	for h.occupied[i] {
		u.LoadTuple(h.region, int(i))
		i = (i + 1) & h.mask
	}
	h.occupied[i] = true
	h.entries++
	if h.keys != nil {
		h.keys[i] = t.Key
	}
	u.StoreTuple(h.region, int(i), t)
	return nil
}

// lookup finds the tuple with the given key, charging one slot read per
// probe. It reports whether the key was present.
func (h *hashTable) lookup(u *engine.Unit, k tuple.Key) (tuple.Tuple, bool) {
	i := h.slotHash(k)
	if h.keys != nil {
		// Columnar probe: compares run over the dense key column; every
		// probed slot still charges the same 16-byte read.
		for h.occupied[i] {
			t := u.LoadTuple(h.region, int(i))
			if h.keys[i] == k {
				return t, true
			}
			i = (i + 1) & h.mask
		}
		u.LoadTuple(h.region, int(i))
		return tuple.Tuple{}, false
	}
	for h.occupied[i] {
		t := u.LoadTuple(h.region, int(i))
		if t.Key == k {
			return t, true
		}
		i = (i + 1) & h.mask
	}
	// The miss still reads the empty slot that terminates the probe.
	u.LoadTuple(h.region, int(i))
	return tuple.Tuple{}, false
}

// aggTable is the Group-by aggregation table: per group a 48-byte record
// of running aggregates (count, sum, min, max, sum-of-squares share the
// record; avg derives from count and sum). Updates charge a 48-byte
// read-modify-write at the group's record, matching the random-access
// pattern of hash aggregation.
type aggTable struct {
	base   int64
	slots  uint64
	groups map[tuple.Key]*Aggregates
}

// Aggregates holds the paper's six Group-by aggregation functions
// (avg, count, min, max, sum, sum squared — §6).
type Aggregates struct {
	Count uint64
	Sum   uint64
	Min   uint64
	Max   uint64
	SumSq uint64
}

// Avg returns the integer average (0 for empty groups).
func (a *Aggregates) Avg() uint64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / a.Count
}

// newAggTable allocates the aggregation records region in the given vault.
func newAggTable(e *engine.Engine, vaultID, expectedGroups int) (*aggTable, error) {
	slots := 4
	for slots < expectedGroups*2 {
		slots <<= 1
	}
	r, err := e.AllocOut(vaultID, slots*3) // 3 tuples = 48 B per record
	if err != nil {
		return nil, err
	}
	return &aggTable{base: r.Addr, slots: uint64(slots), groups: make(map[tuple.Key]*Aggregates, expectedGroups)}, nil
}

// update folds one tuple into its group's running aggregates.
func (a *aggTable) update(u *engine.Unit, t tuple.Tuple) {
	slot := (uint64(t.Key) * 0x9e3779b97f4a7c15) >> 1 % a.slots
	addr := a.base + int64(slot)*48
	u.ReadBytes(addr, 48)
	g, ok := a.groups[t.Key]
	if !ok {
		g = &Aggregates{Min: ^uint64(0)}
		a.groups[t.Key] = g
	}
	v := uint64(t.Val)
	g.Count++
	g.Sum += v
	g.SumSq += v * v
	if v < g.Min {
		g.Min = v
	}
	if v > g.Max {
		g.Max = v
	}
	u.WriteBytes(addr, 48)
}
