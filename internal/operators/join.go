package operators

import (
	"fmt"

	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// JoinResult reports a Join run (R ⋈ S on key equality).
type JoinResult struct {
	// Out holds the join output: one tuple per match with the S tuple's
	// key and the XOR of the R and S payloads (a verifiable combine).
	Out     []*engine.Region
	Matches int
	// RPartition and SPartition are the two partitioning sub-phases.
	RPartition, SPartition *PartitionResult
	PartitionNs            float64
	ProbeNs                float64
}

// Ns returns the operator's total runtime.
func (r *JoinResult) Ns() float64 { return r.PartitionNs + r.ProbeNs }

// combine produces the verifiable join output payload.
func combine(r, s tuple.Tuple) tuple.Tuple {
	return tuple.Tuple{Key: s.Key, Val: r.Val ^ s.Val}
}

// Join executes R ⋈ S assuming a foreign-key relationship (every S tuple
// matches exactly one R tuple, §6). Both relations are co-partitioned on
// low-order key bits; the probe phase is a radix hash join (CPU,
// NMP-rand, after Kim et al. / Balkesen et al.) or a sort-merge join
// (NMP-seq, Mondrian).
func Join(e *engine.Engine, cfg Config, rIn, sIn []*engine.Region) (*JoinResult, error) {
	if err := checkInputs(e, rIn); err != nil {
		return nil, err
	}
	if err := checkInputs(e, sIn); err != nil {
		return nil, err
	}
	part := Partitioner{Buckets: bucketCount(e, cfg, totalLen(sIn))}

	rPart, err := PartitionPhase(e, cfg, rIn, part)
	if err != nil {
		return nil, fmt.Errorf("partitioning R: %w", err)
	}
	sPart, err := PartitionPhase(e, cfg, sIn, part)
	if err != nil {
		return nil, fmt.Errorf("partitioning S: %w", err)
	}
	res, err := JoinProbe(e, cfg, rPart.Buckets, sPart.Buckets)
	if err != nil {
		return nil, err
	}
	res.RPartition, res.SPartition = rPart, sPart
	res.PartitionNs = rPart.Ns() + sPart.Ns()
	return res, nil
}

// JoinProbe runs the join's probe phase over already co-partitioned
// buckets: rBuckets[b] and sBuckets[b] must hold exactly the keys the
// join partitioner maps to bucket b, with bucket b resident in vault b on
// the vault-partitioned architectures. Join calls it after its two
// partition phases; plan execution calls it directly when an upstream
// operator's output is already co-partitioned, eliding the re-shuffle.
func JoinProbe(e *engine.Engine, cfg Config, rBuckets, sBuckets []*engine.Region) (*JoinResult, error) {
	cm := cfg.Costs
	res := &JoinResult{}
	t1 := e.TotalNs()
	e.BeginPhase("probe")
	defer e.EndPhase()

	var err error
	if cfg.SortProbe {
		err = joinSortMergeProbe(e, cm, rBuckets, sBuckets, res)
	} else {
		err = joinHashProbe(e, cfg, rBuckets, sBuckets, res)
	}
	if err != nil {
		return nil, err
	}
	e.Barrier()
	res.ProbeNs = e.TotalNs() - t1
	return res, nil
}

// joinHashProbe implements the radix hash join probe: per probe group,
// build a hash table over the R tuples (the second hash step of Table 2),
// then probe it with every S tuple. All accesses are group-local but
// random — the working set the paper's CPU and NMP-rand probes see.
func joinHashProbe(e *engine.Engine, cfg Config, rBuckets, sBuckets []*engine.Region, res *JoinResult) error {
	cm := cfg.Costs
	groups := probeGroups(e, cfg, sBuckets)
	tables := make([]*hashTable, len(groups))
	outs := make([]*engine.Region, len(groups))
	for g, group := range groups {
		rLen, sLen := 0, 0
		for _, b := range group {
			rLen += rBuckets[b].Len()
			sLen += sBuckets[b].Len()
		}
		ht, err := newHashTable(e, rBuckets[group[0]].Vault.ID, maxInt(rLen, 1))
		if err != nil {
			return err
		}
		tables[g] = ht
		out, err := e.AllocOut(sBuckets[group[0]].Vault.ID, maxInt(sLen, 1))
		if err != nil {
			return err
		}
		outs[g] = out
	}
	res.Out = outs

	e.BeginStep(cm.HashProfile)
	if err := e.ForEachTaskWeighted(len(groups), stealGroupWeights(e, groups, rBuckets), func(g int) error {
		u := unitForGroup(e, groups, g)
		for _, b := range groups[g] {
			rb := rBuckets[b]
			for i := 0; i < rb.Len(); i++ {
				t := u.LoadTuple(rb, i)
				u.Charge(cm.HashBuildInsts)
				if err := tables[g].insert(u, t); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}
	e.EndStep()

	matches := make([]int, len(groups))
	e.BeginStep(cm.HashProfile)
	if err := e.ForEachTaskWeighted(len(groups), stealGroupWeights(e, groups, sBuckets), func(g int) error {
		u := unitForGroup(e, groups, g)
		for _, b := range groups[g] {
			sb := sBuckets[b]
			for i := 0; i < sb.Len(); i++ {
				s := u.LoadTuple(sb, i)
				u.Charge(cm.HashProbeInsts)
				if r, ok := tables[g].lookup(u, s.Key); ok {
					u.AppendLocal(outs[g], combine(r, s))
					matches[g]++
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}
	e.EndStep()
	for _, m := range matches {
		res.Matches += m
	}
	return nil
}

// joinSortMergeProbe implements the sort-merge join probe: sort both
// buckets, then join them in one final sequential pass (§6: "all data in
// the local vault is sorted and the two relations are joined doing a
// final pass").
func joinSortMergeProbe(e *engine.Engine, cm CostModel, rBuckets, sBuckets []*engine.Region, res *JoinResult) error {
	outs := make([]*engine.Region, len(sBuckets))
	for b, bucket := range sBuckets {
		r, err := e.AllocOut(bucket.Vault.ID, maxInt(bucket.Len(), 1))
		if err != nil {
			return err
		}
		outs[b] = r
	}
	res.Out = outs
	rSorted, err := sortBuckets(e, cm, rBuckets)
	if err != nil {
		return err
	}
	sSorted, err := sortBuckets(e, cm, sBuckets)
	if err != nil {
		return err
	}

	insts := cm.MergeJoinInsts
	prof := engine.StepProfile{Name: "merge-join", DepIPC: 1.0, InstPerAccess: 5}
	if isSIMD(e) {
		insts /= cm.SIMDJoinFactor
		prof.DepIPC = 2
	}
	matches := make([]int, len(rSorted))
	splits := make([]int, len(rSorted))
	skewAware := e.Config().SkewAware
	e.BeginStep(probeProfile(e, prof))
	if err := e.ForEachTaskWeighted(len(rSorted), stealWeights(e, rSorted, sSorted), func(b int) error {
		u := unitForBucket(e, b)
		// Columnar mode trades the AoS peek-ahead walks for flat scans of
		// the buckets' dense key columns (AdvanceBelow for R catch-up,
		// RunEnd for equal-key S runs) and draws its stream machinery and
		// append buffer from the unit's reusable pools. The read, charge
		// and append sequences are those of the bulk path, unchanged.
		colsMode := u.Columnar()
		var rKeys, sKeys []tuple.Key
		var readers []*engine.StreamReader
		var err error
		if colsMode {
			rKeys = rSorted[b].KeyColumn()
			sKeys = sSorted[b].KeyColumn()
			sg := u.StreamGroup()
			sg.Reset()
			sg.AddView(rSorted[b], 0, rSorted[b].Len())
			sg.AddView(sSorted[b], 0, sSorted[b].Len())
			readers, err = sg.Open()
		} else {
			readers, err = u.OpenStreams(rSorted[b], sSorted[b])
		}
		if err != nil {
			return err
		}
		rr, sr := readers[0], readers[1]
		if u.Bulk() {
			// Bulk path: the same merge, but R catch-up stretches retire as
			// runs found by peeking ahead in the functional data. The read,
			// charge and append sequences match the reference loop exactly
			// — including the charged-but-readless final Next when R
			// exhausts mid-advance.
			rTs, sTs := rSorted[b].Tuples, sSorted[b].Tuples
			nR := len(rTs)
			cur := 0
			rok := nR > 0
			if rok {
				rr.NextRun(1)
				u.Charge(insts)
			}
			var pending []tuple.Tuple
			if colsMode {
				pending = u.Arena().Tuples(0)
				defer func() { u.Arena().PutTuples(pending) }()
			}
			for si := 0; si < len(sTs); si++ {
				if !rok {
					// R exhausted: the rest of S is a pure read run.
					n := len(sTs) - si
					sr.NextRun(n)
					u.ChargeRun(insts, n)
					return nil
				}
				st := sTs[si]
				sr.NextRun(1)
				u.Charge(insts)
				if rTs[cur].Key < st.Key {
					var j int
					if colsMode {
						j = tuple.AdvanceBelow(rKeys, cur, st.Key)
					} else {
						j = cur
						for j < nR && rTs[j].Key < st.Key {
							j++
						}
					}
					if j < nR {
						rr.NextRun(j - cur)
						u.ChargeRun(insts, j-cur)
						cur = j
					} else {
						// The advance runs off the end: nR-1-cur real
						// reads, then one charged Next that finds the
						// stream empty.
						if k := nR - 1 - cur; k > 0 {
							rr.NextRun(k)
						}
						u.ChargeRun(insts, nR-cur)
						cur = nR
						rok = false
						continue
					}
				}
				if rTs[cur].Key == st.Key {
					u.AppendLocal(outs[b], combine(rTs[cur], st))
					matches[b]++
				}
				if !skewAware {
					continue
				}
				// Skew-aware hot-run batching: the rest of an equal-key S
				// run needs no R advance, so it can retire as run-granular
				// operations. The charged access sequence is identical to
				// the per-tuple loop: NextRun/ChargeRun equal their
				// per-tuple expansions, and matched appends use the
				// mergePass flush-before-refill pattern, which reproduces
				// the exact [refill][≤granule writes] DRAM order.
				var se int
				if colsMode {
					se = tuple.RunEnd(sKeys, si)
				} else {
					se = si + 1
					for se < len(sTs) && sTs[se].Key == st.Key {
						se++
					}
				}
				if k := se - (si + 1); k >= splitRunMinTuples {
					switch {
					case rTs[cur].Key != st.Key:
						// Unmatched hot run: a pure read run.
						sr.NextRun(k)
						u.ChargeRun(insts, k)
						splits[b]++
						si = se - 1
					case sr.Streamed():
						// Matched hot run: every tuple joins the same R
						// tuple. Batching appends needs DRAM-free pops,
						// which only stream-buffer units provide.
						rt := rTs[cur]
						pending = pending[:0]
						flush := func() {
							if len(pending) == 0 {
								return
							}
							u.ChargeRun(insts, len(pending))
							u.AppendRunLocal(outs[b], pending)
							matches[b] += len(pending)
							pending = pending[:0]
						}
						for i := si + 1; i < se; i++ {
							if sr.NextFills() {
								flush()
							}
							sr.Next()
							pending = append(pending, combine(rt, sTs[i]))
						}
						flush()
						splits[b]++
						si = se - 1
					}
				}
			}
			return nil
		}
		// Reference per-tuple path.
		rt, rok := rr.Next()
		if rok {
			u.Charge(insts)
		}
		for {
			st, sok := sr.Next()
			if !sok {
				return nil
			}
			u.Charge(insts)
			for rok && rt.Key < st.Key {
				rt, rok = rr.Next()
				u.Charge(insts)
			}
			if rok && rt.Key == st.Key {
				u.AppendLocal(outs[b], combine(rt, st))
				matches[b]++
			}
		}
	}); err != nil {
		return err
	}
	e.EndStep()
	for _, m := range matches {
		res.Matches += m
	}
	if skewAware {
		total := 0
		for _, s := range splits {
			total += s
		}
		e.RecordSplitKeys(total)
	}
	return nil
}
