package operators

import (
	"testing"

	"github.com/ecocloud-go/mondrian/internal/cache"
	"github.com/ecocloud-go/mondrian/internal/cores"
	"github.com/ecocloud-go/mondrian/internal/dram"
	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/noc"
	"github.com/ecocloud-go/mondrian/internal/tuple"
	"github.com/ecocloud-go/mondrian/internal/workload"
)

// Test systems: 2 cubes × 4 vaults (8 units) with 4 MB vaults.

func testGeom() dram.Geometry {
	g := dram.HMCGeometry()
	g.CapacityBytes = 4 << 20
	return g
}

type variant struct {
	name  string
	cfg   engine.Config
	opCfg Config
}

func testVariants() []variant {
	base := func() engine.Config {
		return engine.Config{
			Cubes: 2, VaultsPer: 4,
			Geometry: testGeom(), Timing: dram.HMCTiming(),
			ObjectSize: tuple.Size, BarrierNs: 1000,
		}
	}
	cpu := base()
	cpu.Arch = engine.CPU
	cpu.Core = cores.CortexA57()
	cpu.CPUCores = 4
	cpu.Topology = noc.Star
	cpu.L1 = cache.L1D32K()
	cpu.LLC = cache.LLC4M()

	nmp := base()
	nmp.Arch = engine.NMP
	nmp.Core = cores.Krait400()
	nmp.Topology = noc.FullyConnected
	nmp.L1 = cache.L1D32K()

	nmpPerm := nmp
	nmpPerm.Permutable = true

	mondrian := base()
	mondrian.Arch = engine.Mondrian
	mondrian.Core = cores.CortexA35Mondrian()
	mondrian.Topology = noc.FullyConnected
	mondrian.Permutable = true
	mondrian.UseStreams = true

	mondrianNoPerm := mondrian
	mondrianNoPerm.Permutable = false

	hash := Config{Costs: DefaultCosts(), KeySpace: 1 << 16}
	seq := Config{Costs: DefaultCosts(), KeySpace: 1 << 16, SortProbe: true}
	mond := Config{Costs: MondrianCosts(), KeySpace: 1 << 16, SortProbe: true}

	return []variant{
		{"CPU", cpu, hash},
		{"NMP-rand", nmp, hash},
		{"NMP-seq", nmp, seq},
		{"NMP-perm", nmpPerm, hash},
		{"Mondrian-noperm", mondrianNoPerm, mond},
		{"Mondrian", mondrian, mond},
	}
}

func newEngine(t *testing.T, cfg engine.Config) *engine.Engine {
	t.Helper()
	e, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// place distributes a relation evenly over the engine's vaults.
func place(t *testing.T, e *engine.Engine, rel *tuple.Relation) []*engine.Region {
	t.Helper()
	parts := rel.SplitEven(e.NumVaults())
	regions := make([]*engine.Region, len(parts))
	for v, p := range parts {
		r, err := e.Place(v, p.Tuples)
		if err != nil {
			t.Fatal(err)
		}
		regions[v] = r
	}
	return regions
}

func TestScanAllVariants(t *testing.T) {
	rel := workload.Uniform("in", workload.Config{Seed: 3, Tuples: 4000, KeySpace: 500})
	needle, want := workload.ScanTarget(rel, 7)
	for _, v := range testVariants() {
		t.Run(v.name, func(t *testing.T) {
			e := newEngine(t, v.cfg)
			inputs := place(t, e, rel)
			res, err := Scan(e, v.opCfg, inputs, needle)
			if err != nil {
				t.Fatal(err)
			}
			if res.Matches != want {
				t.Fatalf("matches = %d, want %d", res.Matches, want)
			}
			if !tuple.SameMultiset(Gather(res.Out), RefScan(rel.Tuples, needle)) {
				t.Fatal("scan output mismatch")
			}
			if res.ProbeNs <= 0 {
				t.Fatal("no probe time recorded")
			}
		})
	}
}

func TestSortAllVariants(t *testing.T) {
	rel := workload.Uniform("in", workload.Config{Seed: 5, Tuples: 6000, KeySpace: 1 << 16})
	want := RefSort(rel.Tuples)
	for _, v := range testVariants() {
		t.Run(v.name, func(t *testing.T) {
			e := newEngine(t, v.cfg)
			inputs := place(t, e, rel)
			res, err := Sort(e, v.opCfg, inputs)
			if err != nil {
				t.Fatal(err)
			}
			// Concatenated buckets must be globally sorted and the same
			// multiset as the reference sort.
			var got []tuple.Tuple
			for _, b := range res.Sorted {
				for i := 1; i < b.Len(); i++ {
					if b.Tuples[i].Key < b.Tuples[i-1].Key {
						t.Fatalf("bucket not sorted at %d", i)
					}
				}
				if len(got) > 0 && b.Len() > 0 && b.Tuples[0].Key < got[len(got)-1].Key {
					t.Fatal("buckets not range-ordered")
				}
				got = append(got, b.Tuples...)
			}
			if len(got) != len(want) {
				t.Fatalf("got %d tuples, want %d", len(got), len(want))
			}
			if !tuple.SameMultiset(got, want) {
				t.Fatal("sort output mismatch")
			}
			if res.PartitionNs <= 0 || res.ProbeNs <= 0 {
				t.Fatalf("phases: %+v", res)
			}
		})
	}
}

func TestGroupByAllVariants(t *testing.T) {
	rel, err := workload.GroupBy(workload.Config{Seed: 9, Tuples: 4000}, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := RefGroupByTuples(rel.Tuples)
	wantGroups := len(RefGroupBy(rel.Tuples))
	for _, v := range testVariants() {
		t.Run(v.name, func(t *testing.T) {
			e := newEngine(t, v.cfg)
			inputs := place(t, e, rel)
			res, err := GroupBy(e, v.opCfg, inputs)
			if err != nil {
				t.Fatal(err)
			}
			if res.Groups != wantGroups {
				t.Fatalf("groups = %d, want %d", res.Groups, wantGroups)
			}
			if !tuple.SameMultiset(Gather(res.Out), want) {
				t.Fatal("group-by output mismatch")
			}
		})
	}
}

func TestJoinAllVariants(t *testing.T) {
	r, s, err := workload.FKPair(workload.Config{Seed: 11, Tuples: 6000}, 800)
	if err != nil {
		t.Fatal(err)
	}
	want := RefJoin(r.Tuples, s.Tuples)
	for _, v := range testVariants() {
		t.Run(v.name, func(t *testing.T) {
			e := newEngine(t, v.cfg)
			rIn := place(t, e, r)
			sIn := place(t, e, s)
			res, err := Join(e, v.opCfg, rIn, sIn)
			if err != nil {
				t.Fatal(err)
			}
			if res.Matches != len(want) {
				t.Fatalf("matches = %d, want %d (every S tuple joins)", res.Matches, len(want))
			}
			if !tuple.SameMultiset(Gather(res.Out), want) {
				t.Fatal("join output mismatch")
			}
			if res.PartitionNs <= 0 || res.ProbeNs <= 0 {
				t.Fatalf("phases: %+v", res)
			}
		})
	}
}

func TestPartitionerBuckets(t *testing.T) {
	low := Partitioner{Buckets: 8}
	if low.Bucket(13) != 5 {
		t.Fatalf("low bits bucket = %d", low.Bucket(13))
	}
	high := Partitioner{Buckets: 4, KeySpace: 1 << 16, HighBits: true}
	if high.Bucket(0) != 0 || high.Bucket(1<<16-1) != 3 {
		t.Fatal("high-bits range partition wrong ends")
	}
	// Range property: bucket is monotone in key.
	prev := 0
	for k := 0; k < 1<<16; k += 997 {
		b := high.Bucket(tuple.Key(k))
		if b < prev {
			t.Fatal("range partition not monotone")
		}
		prev = b
	}
}

func TestMergePasses(t *testing.T) {
	for _, tc := range []struct{ n, run, fan, want int }{
		{16, 16, 2, 0},
		{17, 16, 2, 1},
		{64 << 10, 16, 2, 12},
		{64 << 10, 16, 8, 4},
		{1, 16, 2, 0},
	} {
		if got := MergePasses(tc.n, tc.run, tc.fan); got != tc.want {
			t.Fatalf("MergePasses(%d,%d,%d) = %d, want %d", tc.n, tc.run, tc.fan, got, tc.want)
		}
	}
}

func TestCPUPartitionCount(t *testing.T) {
	if got := CPUPartitionCount(1<<20, 16); got != 512 {
		t.Fatalf("1M tuples → %d buckets, want 512", got)
	}
	if got := CPUPartitionCount(1<<30, 16); got != 1<<16 {
		t.Fatalf("cap failed: %d", got)
	}
	if got := CPUPartitionCount(100, 16); got != 16 {
		t.Fatalf("floor failed: %d", got)
	}
}

func TestPermutabilityReducesDistributionActivations(t *testing.T) {
	rel := workload.Uniform("in", workload.Config{Seed: 21, Tuples: 16000, KeySpace: 1 << 16})
	run := func(perm bool) uint64 {
		vs := testVariants()
		var v variant
		for _, cand := range vs {
			if (perm && cand.name == "NMP-perm") || (!perm && cand.name == "NMP-rand") {
				v = cand
			}
		}
		e := newEngine(t, v.cfg)
		inputs := place(t, e, rel)
		before := e.DRAMStats().Activations
		_, err := PartitionPhase(e, v.opCfg, inputs, Partitioner{Buckets: e.NumVaults()})
		if err != nil {
			t.Fatal(err)
		}
		return e.DRAMStats().Activations - before
	}
	perm, noperm := run(true), run(false)
	if noperm < perm+perm/2 {
		t.Fatalf("permutability should cut activations: perm=%d noperm=%d", perm, noperm)
	}
}

func TestHashTableCollisionsAndLookups(t *testing.T) {
	v := testVariants()[1] // NMP
	e := newEngine(t, v.cfg)
	ht, err := newHashTable(e, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	u := e.UnitForVault(0)
	e.BeginStep(engine.StepProfile{Name: "ht"})
	for i := 0; i < 100; i++ {
		if err := ht.insert(u, tuple.Tuple{Key: tuple.Key(i * 7), Val: tuple.Value(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		got, ok := ht.lookup(u, tuple.Key(i*7))
		if !ok || got.Val != tuple.Value(i) {
			t.Fatalf("lookup %d = %v,%v", i, got, ok)
		}
	}
	if _, ok := ht.lookup(u, tuple.Key(99999)); ok {
		t.Fatal("found absent key")
	}
	e.EndStep()
}

func TestMergesortLocalSorts(t *testing.T) {
	v := testVariants()[5] // Mondrian
	e := newEngine(t, v.cfg)
	rel := workload.Uniform("in", workload.Config{Seed: 31, Tuples: 1000, KeySpace: 1 << 30})
	r, err := e.Place(0, rel.Tuples)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := e.AllocOut(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	u := e.UnitForVault(0)
	e.BeginStep(engine.StepProfile{Name: "sort", StreamFed: true})
	out, err := mergesortLocal(u, MondrianCosts(), r, scratch, true)
	e.EndStep()
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1000 {
		t.Fatalf("sorted len = %d", out.Len())
	}
	for i := 1; i < out.Len(); i++ {
		if out.Tuples[i].Key < out.Tuples[i-1].Key {
			t.Fatalf("not sorted at %d", i)
		}
	}
	if !tuple.SameMultiset(out.Tuples, rel.Tuples) {
		t.Fatal("mergesort changed the multiset")
	}
}
