package operators

import (
	"fmt"

	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/hmc"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// Partitioner maps keys to destination buckets. Join and Group-by hash on
// low-order key bits; Sort range-partitions on high-order bits so bucket i
// holds keys strictly smaller than bucket i+1's (Table 2, §6).
type Partitioner struct {
	Buckets  int
	KeySpace uint64 // exclusive upper bound of keys; needed for HighBits
	HighBits bool
}

// Bucket returns the destination bucket of a key.
func (p Partitioner) Bucket(k tuple.Key) int {
	if p.HighBits {
		b := int(uint64(k) * uint64(p.Buckets) / p.KeySpace)
		if b >= p.Buckets {
			b = p.Buckets - 1
		}
		return b
	}
	return int(uint64(k) % uint64(p.Buckets))
}

// PartitionResult carries the partitioning phase's outputs and timing.
type PartitionResult struct {
	// Buckets holds one region per destination bucket. On the NMP
	// architectures there is exactly one bucket per vault; on the CPU
	// there are Partitioner.Buckets cache-sized buckets spread over the
	// memory space.
	Buckets []*engine.Region
	// HistogramNs and DistributeNs split the phase's runtime.
	HistogramNs  float64
	DistributeNs float64
	// Steps are the engine step timings of the phase.
	Steps []engine.StepTiming
	// Skew carries the heavy-hitter detector's observations on skew-aware
	// runs; nil otherwise. Host-side only — never feeds simulated state.
	Skew *SkewReport
}

// Ns returns the phase's total runtime.
func (p *PartitionResult) Ns() float64 { return p.HistogramNs + p.DistributeNs }

// defaultOverprovision and bucketSlack size destination buffers — the
// CPU's "best-effort overprovisioned estimation" (§5.3). The constant
// slack absorbs the Poisson tail of small buckets.
const (
	defaultOverprovision = 2
	bucketSlack          = 64
)

// ErrPartitionOverflow wraps the vault controller's overflow exception.
var ErrPartitionOverflow = hmc.ErrRegionOverflow

// PartitionPhase redistributes the input tuples into buckets. Inputs are
// one region per vault (the initial random distribution of the dataset);
// the phase performs the histogram build, the histogram exchange
// (ShuffleBegin), the interleaved data distribution of Fig. 2, and the
// completion barrier (ShuffleEnd).
func PartitionPhase(e *engine.Engine, cfg Config, inputs []*engine.Region, part Partitioner) (*PartitionResult, error) {
	if len(inputs) != e.NumVaults() {
		return nil, fmt.Errorf("operators: %d input regions for %d vaults", len(inputs), e.NumVaults())
	}
	e.BeginPhase("partition")
	defer e.EndPhase()
	if e.Config().Arch == engine.CPU {
		return cpuPartition(e, cfg, inputs, part)
	}
	return nmpPartition(e, cfg, inputs, part)
}

// histTraffic charges histogram-counter memory traffic when the histogram
// cannot live on chip (8 B read-modify-write per tuple).
func histTraffic(u *engine.Unit, cm CostModel, histAddr int64, buckets, bucket int) {
	if buckets*8 <= cm.OnChipHistogramBytes {
		return
	}
	a := histAddr + int64(bucket)*8
	u.ReadBytes(a, 8)
	u.WriteBytes(a, 8)
}

// distInsts selects the per-tuple distribution instruction cost for the
// engine's architecture and feature set.
func distInsts(e *engine.Engine, cm CostModel) (insts float64, profile engine.StepProfile) {
	cfg := e.Config()
	simd := cfg.Core.SIMDBits > 0
	switch {
	case cfg.Permutable && simd: // Mondrian: SIMD across the whole loop
		p := cm.DistPermProfile
		p.Name = "distribute-permutable-simd"
		p.DepIPC = 2
		return cm.DistPermInsts / cm.SIMDDistFactor, p
	case cfg.Permutable: // NMP-perm
		return cm.DistPermInsts, cm.DistPermProfile
	case simd: // Mondrian-noperm: SIMD hash, scalar scatter + cursors
		p := cm.DistConvProfile
		p.Name = "distribute-conventional-simd"
		p.DepIPC = 0.65
		return cm.DistConvInsts / cm.SIMDDistScatterFactor, p
	default: // CPU, NMP
		return cm.DistConvInsts, cm.DistConvProfile
	}
}

// nmpPartition runs the phase on the vault-resident architectures.
func nmpPartition(e *engine.Engine, cfg Config, inputs []*engine.Region, part Partitioner) (*PartitionResult, error) {
	cm := cfg.Costs
	nv := e.NumVaults()
	if part.Buckets != nv {
		return nil, fmt.Errorf("operators: NMP partitioning needs one bucket per vault (%d != %d)", part.Buckets, nv)
	}
	total := 0
	for _, in := range inputs {
		total += in.Len()
	}
	capPer := int(float64(total/nv)*cfg.overprovision()) + bucketSlack
	res := &PartitionResult{}
	t0 := e.TotalNs()

	histInsts := cm.HistogramInsts
	if isSIMD(e) {
		histInsts /= cm.SIMDHistFactor
	}

	// Step 1: histogram build, every unit streaming its local partition.
	// Per-vault histograms are 64 counters (512 B) and live on chip.
	// Skew-aware runs additionally feed a sampled SpaceSaving sketch per
	// source — host-side bookkeeping with no charges, each sketch owned
	// exclusively by its source unit.
	perSource := make([][]int64, nv)
	var sketches []*SpaceSaving
	stride := cfg.skewSampleStride()
	if cfg.SkewAware {
		sketches = make([]*SpaceSaving, nv)
		for v := range sketches {
			sketches[v] = NewSpaceSaving(cfg.skewSketchSize())
		}
	}
	// Columnar runs keep each vault's bucket ids from the histogram step
	// for reuse in the distribute step (same unit, same tuple order).
	var vaultIDs [][]int32
	if e.Columnar() {
		vaultIDs = make([][]int32, nv)
	}
	e.BeginStep(probeProfile(e, cm.HistogramProfile))
	if err := e.ForEachVaultWeighted(stealWeights(e, inputs), func(v int, u *engine.Unit) error {
		perSource[v] = make([]int64, nv)
		if u.Columnar() {
			// Columnar path: one shift/mask kernel over the dense key
			// column computes every tuple's bucket; the histogram is then
			// a flat count over the id array. Charges are identical to
			// the bulk path (one run read + n constant charges).
			g := u.StreamGroup()
			g.Reset()
			g.AddView(inputs[v], 0, inputs[v].Len())
			readers, err := g.Open()
			if err != nil {
				return err
			}
			n := inputs[v].Len()
			readers[0].NextRun(n)
			keys := inputs[v].KeyColumn()
			ids := u.Arena().IDs(n)
			bucketIDs(ids, keys, part)
			row := perSource[v]
			for _, id := range ids {
				row[id]++
			}
			if sketches != nil {
				for i := 0; i < len(keys); i += stride {
					sketches[v].Offer(uint64(keys[i]))
				}
			}
			u.ChargeRun(histInsts, n)
			vaultIDs[v] = ids
			return nil
		}
		readers, err := u.OpenStreams(inputs[v])
		if err != nil {
			return err
		}
		if u.Bulk() {
			// Pure sequential read: the whole partition streams in as one
			// run; counting is functional and the charges are the same
			// constant, so batching preserves every accumulator exactly.
			ts := readers[0].NextRun(inputs[v].Len())
			for i := range ts {
				perSource[v][part.Bucket(ts[i].Key)]++
			}
			if sketches != nil {
				for i := 0; i < len(ts); i += stride {
					sketches[v].Offer(uint64(ts[i].Key))
				}
			}
			u.ChargeRun(histInsts, len(ts))
			return nil
		}
		i := 0
		for {
			t, ok := readers[0].Next()
			if !ok {
				break
			}
			perSource[v][part.Bucket(t.Key)]++
			if sketches != nil && i%stride == 0 {
				sketches[v].Offer(uint64(t.Key))
			}
			i++
			u.Charge(histInsts)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	res.Steps = append(res.Steps, e.EndStep())

	// The exchanged histograms give every destination's exact inbound
	// tuple count. Skew-aware runs provision from those exact counts when
	// the uniform estimate would overflow — replacing the §5.4 CPU
	// overflow-retry loop with a single correctly-sized allocation. When
	// the uniform estimate suffices (every run a skew-unaware execution
	// would survive), capPer is untouched and the allocation is
	// byte-identical to the skew-unaware one. MallocPermutable performs no
	// accounting, so running it after the histogram step leaves all
	// simulated quantities unchanged.
	if cfg.SkewAware {
		inbound := make([]int64, nv)
		for _, row := range perSource {
			for dst, n := range row {
				inbound[dst] += n
			}
		}
		maxIn := 0
		for _, n := range inbound {
			if int(n) > maxIn {
				maxIn = int(n)
			}
		}
		resized := false
		if maxIn > capPer {
			capPer = maxIn + bucketSlack
			resized = true
		}
		sketch := sketches[0]
		for _, sk := range sketches[1:] {
			sketch.Merge(sk)
		}
		res.Skew = buildSkewReport(cfg, inbound, sketch, stride)
		res.Skew.Provisioned = capPer
		res.Skew.Resized = resized
		e.RecordSkew(float64(res.Skew.MaxLoad), res.Skew.MeanLoad, len(res.Skew.HotKeys))
	}
	dests, err := e.MallocPermutable(capPer)
	if err != nil {
		return nil, err
	}
	res.Buckets = dests

	// Histogram exchange + permutable-region arming.
	if err := e.ShuffleBegin(dests, perSource); err != nil {
		return nil, err
	}
	res.HistogramNs = e.TotalNs() - t0
	t1 := e.TotalNs()

	// Step 2: data distribution. Each source streams its partition and
	// stages tuples into the Exchange; destinations apply the staged
	// messages in the serial engine's round-robin arrival interleave
	// (Fig. 2) — see engine.Exchange. Conventional write offsets (prefix
	// sums over the exchanged histograms) are computed by the Exchange.
	insts, profile := distInsts(e, cm)

	e.BeginStep(probeProfile(e, profile))
	x := e.NewExchange(dests)
	if err := e.ForEachVaultWeighted(stealWeights(e, inputs), func(v int, u *engine.Unit) error {
		if u.Columnar() {
			// Columnar path: reuse the bucket ids the histogram step
			// computed for this vault — the scalar path recomputes
			// Bucket per tuple. Same run read, same per-tuple charge and
			// send order.
			g := u.StreamGroup()
			g.Reset()
			g.AddView(inputs[v], 0, inputs[v].Len())
			rs, err := g.Open()
			if err != nil {
				return err
			}
			ob := x.Outbox(v)
			ids := vaultIDs[v]
			ts := rs[0].NextRun(inputs[v].Len())
			for i := range ts {
				u.Charge(insts)
				if err := ob.Send(int(ids[i]), ts[i]); err != nil {
					return err
				}
			}
			u.Arena().PutIDs(ids)
			vaultIDs[v] = nil
			return nil
		}
		rs, err := u.OpenStreams(inputs[v])
		if err != nil {
			return err
		}
		ob := x.Outbox(v)
		if u.Bulk() {
			// The source side is a pure sequential read; staging a tuple
			// into the Exchange is host-side work (the destination vault's
			// DRAM traffic happens at Flush). One run read, then the
			// per-tuple charges and sends in the same order as the
			// reference loop.
			ts := rs[0].NextRun(inputs[v].Len())
			for i := range ts {
				u.Charge(insts)
				if err := ob.Send(part.Bucket(ts[i].Key), ts[i]); err != nil {
					return err
				}
			}
			return nil
		}
		for {
			t, ok := rs[0].Next()
			if !ok {
				return nil
			}
			u.Charge(insts)
			if err := ob.Send(part.Bucket(t.Key), t); err != nil {
				return err
			}
		}
	}); err != nil {
		return nil, err
	}
	if err := x.Flush(); err != nil {
		return nil, err
	}
	res.Steps = append(res.Steps, e.EndStep())
	e.ShuffleEnd(dests)
	res.DistributeNs = e.TotalNs() - t1
	return res, nil
}

// cpuPartition runs the phase on the CPU-centric system: cores stream
// their share of the input and scatter tuples into cache-sized buckets
// using exact histogram-derived offsets.
func cpuPartition(e *engine.Engine, cfg Config, inputs []*engine.Region, part Partitioner) (*PartitionResult, error) {
	cm := cfg.Costs
	units := e.Units()
	nCores := len(units)
	nv := e.NumVaults()
	total := 0
	for _, in := range inputs {
		total += in.Len()
	}

	// Destination buckets spread round-robin over vaults.
	capPer := int(float64(total/part.Buckets)*cfg.overprovision()) + bucketSlack
	buckets := make([]*engine.Region, part.Buckets)
	for b := range buckets {
		r, err := e.AllocOut(b%nv, capPer)
		if err != nil {
			return nil, err
		}
		buckets[b] = r
	}
	res := &PartitionResult{Buckets: buckets}

	// Per-core in-memory histograms (2^16 buckets = 512 KB each: far
	// beyond on-chip capacity, unlike the NMP systems' 64 counters).
	histAddrs := make([]int64, nCores)
	for c := range histAddrs {
		r, err := e.AllocOut(c%nv, part.Buckets/2+1)
		if err != nil {
			return nil, err
		}
		histAddrs[c] = r.Addr
	}

	// Cores split each vault's region evenly: core c owns inputs[i]
	// for i ≡ c (mod nCores).
	coreInputs := make([][]*engine.Region, nCores)
	for i, in := range inputs {
		c := i % nCores
		coreInputs[c] = append(coreInputs[c], in)
	}

	t0 := e.TotalNs()
	hist := make([][]int64, nCores)
	histBacking := make([]int64, nCores*part.Buckets)
	var sketches []*SpaceSaving
	stride := cfg.skewSampleStride()
	if cfg.SkewAware {
		sketches = make([]*SpaceSaving, nCores)
		for c := range sketches {
			sketches[c] = NewSpaceSaving(cfg.skewSketchSize())
		}
	}
	// Columnar runs compute each region's bucket ids once (shift/mask
	// kernel over the key column) and reuse them in the scatter pass,
	// where the scalar path recomputes Bucket per tuple per pass.
	var coreIDs [][][]int32
	if e.Columnar() {
		coreIDs = make([][][]int32, nCores)
		for c := range coreIDs {
			coreIDs[c] = make([][]int32, len(coreInputs[c]))
		}
	}
	histProf := cm.HistogramProfile
	histProf.MLPOverride = cm.CPUPartitionMLP
	e.BeginStep(histProf)
	for c, u := range units {
		hist[c] = histBacking[c*part.Buckets : (c+1)*part.Buckets]
		n := 0
		for j, in := range coreInputs[c] {
			if u.Columnar() {
				keys := in.KeyColumn()
				ids := u.Arena().IDs(len(keys))
				bucketIDs(ids, keys, part)
				coreIDs[c][j] = ids
				for i := 0; i < len(keys); i++ {
					u.LoadTuple(in, i)
					b := int(ids[i])
					hist[c][b]++
					if sketches != nil && n%stride == 0 {
						sketches[c].Offer(uint64(keys[i]))
					}
					n++
					u.Charge(cm.HistogramInsts)
					histTraffic(u, cm, histAddrs[c], part.Buckets, b)
				}
				continue
			}
			for i := 0; i < in.Len(); i++ {
				t := u.LoadTuple(in, i)
				b := part.Bucket(t.Key)
				hist[c][b]++
				if sketches != nil && n%stride == 0 {
					sketches[c].Offer(uint64(t.Key))
				}
				n++
				u.Charge(cm.HistogramInsts)
				histTraffic(u, cm, histAddrs[c], part.Buckets, b)
			}
		}
		// Prefix-sum pass over the histogram.
		u.Charge(float64(part.Buckets) * 2)
	}
	res.Steps = append(res.Steps, e.EndStep())
	e.Barrier() // cores exchange prefix sums before writing
	res.HistogramNs = e.TotalNs() - t0
	t1 := e.TotalNs()

	// Per-(core,bucket) write offsets.
	offset := make([][]int, nCores)
	offBacking := make([]int, nCores*part.Buckets)
	for c := range offset {
		offset[c] = offBacking[c*part.Buckets : (c+1)*part.Buckets]
	}
	for b := 0; b < part.Buckets; b++ {
		run := 0
		for c := 0; c < nCores; c++ {
			offset[c][b] = run
			run += int(hist[c][b])
		}
	}

	// The histogram gives each bucket's exact final size; carve the
	// host-side tuple storage from one slab so the distribute loop's
	// ensureLen appends never reallocate (host memory only — simulated
	// region capacity is untouched). Skew-aware runs size the sketch-side
	// report from the same exact counts and reallocate just the
	// overflowing buckets at their exact size instead of surfacing the
	// §5.4 retry error; non-overflowing runs perform no extra allocation,
	// keeping the allocation sequence byte-identical to skew-unaware.
	counts := make([]int64, part.Buckets)
	for b := range counts {
		for c := 0; c < nCores; c++ {
			counts[b] += hist[c][b]
		}
	}
	if cfg.SkewAware {
		sketch := sketches[0]
		for _, sk := range sketches[1:] {
			sketch.Merge(sk)
		}
		res.Skew = buildSkewReport(cfg, counts, sketch, stride)
		res.Skew.Provisioned = capPer
		e.RecordSkew(float64(res.Skew.MaxLoad), res.Skew.MeanLoad, len(res.Skew.HotKeys))
	}
	slab := make([]tuple.Tuple, total)
	off := 0
	for b, r := range buckets {
		cnt := int(counts[b])
		if cnt > capPer {
			if !cfg.SkewAware {
				// The histogram exchange reveals overflowing buckets before
				// any tuple moves: skewed datasets surface the retryable
				// overflow error here instead of tripping the scatter's
				// capacity invariant (§5.4).
				return nil, fmt.Errorf("%w: bucket %d needs %d tuples, provisioned %d",
					ErrPartitionOverflow, b, cnt, capPer)
			}
			grown, err := e.AllocOut(b%nv, cnt+bucketSlack)
			if err != nil {
				return nil, err
			}
			buckets[b], r = grown, grown
			if cnt+bucketSlack > res.Skew.Provisioned {
				res.Skew.Provisioned = cnt + bucketSlack
			}
			res.Skew.Resized = true
		}
		r.Tuples = slab[off : off : off+cnt]
		r.MarkMutated() // backing swap bypassed the engine's mutators
		off += cnt
	}

	insts, profile := distInsts(e, cm)
	profile.MLPOverride = cm.CPUPartitionMLP
	e.BeginStep(profile)
	for c, u := range units {
		for j, in := range coreInputs[c] {
			if u.Columnar() {
				ids := coreIDs[c][j]
				for i := 0; i < in.Len(); i++ {
					t := u.LoadTuple(in, i)
					b := int(ids[i])
					u.Charge(insts)
					u.SendAt(buckets[b], offset[c][b], t)
					offset[c][b]++
				}
				u.Arena().PutIDs(ids)
				coreIDs[c][j] = nil
				continue
			}
			for i := 0; i < in.Len(); i++ {
				t := u.LoadTuple(in, i)
				b := part.Bucket(t.Key)
				u.Charge(insts)
				u.SendAt(buckets[b], offset[c][b], t)
				offset[c][b]++
			}
		}
	}
	res.Steps = append(res.Steps, e.EndStep())
	e.Barrier()
	res.DistributeNs = e.TotalNs() - t1
	return res, nil
}

// CPUPartitionCount picks the CPU's bucket count: the paper's code uses
// the keys' 16 low-order bits, "optimizing for our modeled system's
// private cache size". We target ~2K tuples (32 KB) per bucket, capped at
// 2^16 buckets, with a floor of one bucket per core.
func CPUPartitionCount(totalTuples, cpuCores int) int {
	target := totalTuples / 2048
	p := 1
	for p < target {
		p <<= 1
	}
	if p > 1<<16 {
		p = 1 << 16
	}
	for p < cpuCores {
		p <<= 1
	}
	return p
}
