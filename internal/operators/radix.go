package operators

import (
	"fmt"

	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// LSD radix sort — an alternative sequential-access sort for the probe
// phase, provided for the algorithm-space ablation
// (BenchmarkAblationSortAlgorithm). Like mergesort it trades extra passes
// for predictable access patterns, but its scatter writes fan out over
// 256 digit runs per pass instead of merging 2–8 sequential streams:
// reads stream perfectly, writes see moderate row locality (each digit
// run is locally sequential). The comparison quantifies why the paper
// picks mergesort for the stream-buffer hardware: a merge consumes ≤8
// sequential inputs — exactly what eight stream buffers support — while a
// 256-way scatter would need 256 write streams.

// radixDigitBits is the digit width (8 → 256 buckets, on-chip counters).
const radixDigitBits = 8

// RadixPasses returns how many byte passes cover the key space.
func RadixPasses(keySpace uint64) int {
	passes := 0
	for ks := keySpace - 1; ks > 0; ks >>= radixDigitBits {
		passes++
	}
	if passes == 0 {
		passes = 1
	}
	return passes
}

// radixSortLocal sorts one bucket with LSD radix sort, ping-ponging
// between the bucket and scratch. Each pass streams the source and
// scatters to 256 digit runs in the destination. Returns the region
// holding the sorted result.
func radixSortLocal(u *engine.Unit, cm CostModel, r, scratch *engine.Region, keySpace uint64, simd bool) (*engine.Region, error) {
	n := r.Len()
	if scratch.Cap() < n {
		return nil, fmt.Errorf("operators: scratch capacity %d < %d", scratch.Cap(), n)
	}
	if n == 0 {
		return r, nil
	}
	insts := cm.RadixInsts
	if simd {
		insts /= cm.SIMDHistFactor // digit extraction vectorizes like hashing
	}
	src, dst := r, scratch
	passes := RadixPasses(keySpace)
	for pass := 0; pass < passes; pass++ {
		shift := uint(pass * radixDigitBits)
		// Counting pass: stream the source, 256 on-chip counters.
		var counts [1 << radixDigitBits]int
		readers, err := u.OpenStreams(src)
		if err != nil {
			return nil, err
		}
		for {
			t, ok := readers[0].Next()
			if !ok {
				break
			}
			u.Charge(insts)
			counts[(uint64(t.Key)>>shift)&0xff]++
		}
		var offsets [1 << radixDigitBits]int
		run := 0
		for d := 0; d < 1<<radixDigitBits; d++ {
			offsets[d] = run
			run += counts[d]
		}
		// Scatter pass: stream the source again, write each tuple into
		// its digit run (stable).
		dst.Reset()
		ensureCap(dst, n)
		readers, err = u.OpenStreams(src)
		if err != nil {
			return nil, err
		}
		for {
			t, ok := readers[0].Next()
			if !ok {
				break
			}
			u.Charge(insts)
			d := (uint64(t.Key) >> shift) & 0xff
			u.StoreTuple(dst, offsets[d], t)
			offsets[d]++
		}
		src, dst = dst, src
	}
	return src, nil
}

// ensureCap grows the region's functional length to n (zero tuples) so
// StoreTuple can place out of order.
func ensureCap(r *engine.Region, n int) {
	for r.Len() < n {
		r.Tuples = append(r.Tuples, tuple.Tuple{})
	}
	r.Tuples = r.Tuples[:n]
	r.MarkMutated() // direct length change bypassed the engine's mutators
}

// RadixSortBuckets sorts every bucket with LSD radix sort in lockstep
// passes (the ablation twin of the mergesort path used by sortBuckets).
func RadixSortBuckets(e *engine.Engine, cm CostModel, buckets []*engine.Region, keySpace uint64) ([]*engine.Region, error) {
	simd := isSIMD(e)
	out := make([]*engine.Region, len(buckets))
	// Scratch allocation stays serial: on the CPU several buckets can share
	// a vault, and the bump allocator is not safe (or deterministic) under
	// concurrent allocation.
	scratches := make([]*engine.Region, len(buckets))
	for i, b := range buckets {
		s, err := e.AllocOut(b.Vault.ID, maxInt(b.Len(), 1))
		if err != nil {
			return nil, err
		}
		scratches[i] = s
	}
	e.BeginStep(probeProfile(e, engine.StepProfile{Name: "radix-sort", DepIPC: 1.2, InstPerAccess: 3}))
	if err := e.ForEachTaskWeighted(len(buckets), stealWeights(e, buckets), func(i int) error {
		sorted, err := radixSortLocal(unitForBucket(e, i), cm, buckets[i], scratches[i], keySpace, simd)
		if err != nil {
			return err
		}
		out[i] = sorted
		return nil
	}); err != nil {
		return nil, err
	}
	e.EndStep()
	return out, nil
}

// SortBucketsForBench exposes the mergesort bucket path to the benchmark
// harness (the ablation twin of RadixSortBuckets).
func SortBucketsForBench(e *engine.Engine, cm CostModel, buckets []*engine.Region) ([]*engine.Region, error) {
	return sortBuckets(e, cm, buckets)
}
