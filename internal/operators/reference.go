package operators

import (
	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// Reference implementations: plain-Go oracles the simulated operators are
// verified against in tests and in simulate's cross-checks.

// RefScan returns the tuples matching the needle.
func RefScan(in []tuple.Tuple, needle tuple.Key) []tuple.Tuple {
	var out []tuple.Tuple
	for _, t := range in {
		if t.Key == needle {
			out = append(out, t)
		}
	}
	return out
}

// RefSort returns a key-sorted copy of the input.
func RefSort(in []tuple.Tuple) []tuple.Tuple {
	out := make([]tuple.Tuple, len(in))
	copy(out, in)
	tuple.SortSliceByKey(out)
	return out
}

// RefGroupBy computes the six aggregates per group.
func RefGroupBy(in []tuple.Tuple) map[tuple.Key]*Aggregates {
	groups := make(map[tuple.Key]*Aggregates)
	for _, t := range in {
		g, ok := groups[t.Key]
		if !ok {
			g = &Aggregates{Min: ^uint64(0)}
			groups[t.Key] = g
		}
		v := uint64(t.Val)
		g.Count++
		g.Sum += v
		g.SumSq += v * v
		if v < g.Min {
			g.Min = v
		}
		if v > g.Max {
			g.Max = v
		}
	}
	return groups
}

// RefGroupByTuples renders RefGroupBy in the operator's output encoding
// (six tuples per group in AggKind order) for multiset comparison.
func RefGroupByTuples(in []tuple.Tuple) []tuple.Tuple {
	groups := RefGroupBy(in)
	out := make([]tuple.Tuple, 0, len(groups)*int(numAggs))
	for k, a := range groups {
		vals := [numAggs]uint64{a.Count, a.Sum, a.Min, a.Max, a.Avg(), a.SumSq}
		for _, v := range vals {
			out = append(out, tuple.Tuple{Key: k, Val: tuple.Value(v)})
		}
	}
	return out
}

// RefJoin computes R ⋈ S with a nested-loop join (via a map for speed),
// producing the operator's output encoding.
func RefJoin(r, s []tuple.Tuple) []tuple.Tuple {
	rByKey := make(map[tuple.Key]tuple.Tuple, len(r))
	for _, t := range r {
		rByKey[t.Key] = t
	}
	var out []tuple.Tuple
	for _, st := range s {
		if rt, ok := rByKey[st.Key]; ok {
			out = append(out, combine(rt, st))
		}
	}
	return out
}

// Gather flattens operator output regions into one tuple slice.
func Gather(regions []*engine.Region) []tuple.Tuple {
	var out []tuple.Tuple
	for _, r := range regions {
		out = append(out, r.Tuples...)
	}
	return out
}
