package operators

import (
	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// ScanResult reports a Scan run.
type ScanResult struct {
	// Matches is the number of tuples whose key equals the needle.
	Matches int
	// Out holds the matching tuples (one region per participating unit).
	Out []*engine.Region
	// ProbeNs is the operator's runtime (Scan has no partitioning phase).
	ProbeNs float64
	Steps   []engine.StepTiming
}

// Scan searches every input partition in parallel for tuples matching the
// needle key (§6: "each input data partition is scanned in parallel, and
// each tuple is compared to the searched value"). Scan is the one
// operator without a partitioning phase (Table 2).
func Scan(e *engine.Engine, cfg Config, inputs []*engine.Region, needle tuple.Key) (*ScanResult, error) {
	if err := checkInputs(e, inputs); err != nil {
		return nil, err
	}
	cm := cfg.Costs
	insts := cm.ScanInsts
	if isSIMD(e) {
		insts /= cm.SIMDScanFactor
	}

	res := &ScanResult{}
	t0 := e.TotalNs()
	e.BeginPhase("probe")
	defer e.EndPhase()

	// Output regions: matches are appended locally by whoever scans the
	// partition. Capacity is bounded by the partition size.
	outs := make([]*engine.Region, len(inputs))
	for v, in := range inputs {
		r, err := e.AllocOut(v, maxInt(in.Len(), 1))
		if err != nil {
			return nil, err
		}
		outs[v] = r
	}
	res.Out = outs

	e.BeginStep(scanProfile(e, cm))
	if e.Config().Arch == engine.CPU {
		// Cores sweep the vault partitions round-robin over the star
		// network; the sequential stream is prefetch-friendly but every
		// byte crosses the CPU's SerDes links.
		for v, in := range inputs {
			u := e.Units()[v%len(e.Units())]
			if u.Columnar() {
				// Columnar path: the match search runs over the dense key
				// column (FindKey's flat compare loop) instead of striding
				// the AoS tuples; runs retire exactly as in the bulk path.
				ts := in.Tuples
				keys := in.KeyColumn()
				for pos := 0; pos < len(keys); {
					m := tuple.FindKey(keys, pos, needle)
					n := m - pos
					if m < len(keys) {
						n++ // include the matching tuple in the run
					}
					u.LoadRun(in, pos, n)
					u.ChargeRun(insts, n)
					if m < len(keys) {
						u.AppendLocal(outs[v], ts[m])
						res.Matches++
					}
					pos += n
				}
				continue
			}
			if u.Bulk() {
				// Bulk path: peek ahead in the functional data to find the
				// next match, then retire the whole stretch up to and
				// including it as one run — identical charged access order.
				ts := in.Tuples
				for pos := 0; pos < len(ts); {
					m := pos
					for m < len(ts) && ts[m].Key != needle {
						m++
					}
					n := m - pos
					if m < len(ts) {
						n++ // include the matching tuple in the run
					}
					u.LoadRun(in, pos, n)
					u.ChargeRun(insts, n)
					if m < len(ts) {
						u.AppendLocal(outs[v], ts[m])
						res.Matches++
					}
					pos += n
				}
				continue
			}
			// Reference per-tuple path.
			for i := 0; i < in.Len(); i++ {
				t := u.LoadTuple(in, i)
				u.Charge(insts)
				if t.Key == needle {
					u.AppendLocal(outs[v], t)
					res.Matches++
				}
			}
		}
	} else {
		matches := make([]int, len(inputs))
		if err := e.ForEachVaultWeighted(stealWeights(e, inputs), func(v int, u *engine.Unit) error {
			if u.Columnar() {
				// Columnar path: stream setup through the unit's reusable
				// group and the match search over the dense key column —
				// the steady state allocates nothing.
				m, err := scanVaultColumnar(u, inputs[v], outs[v], needle, insts)
				matches[v] = m
				return err
			}
			readers, err := u.OpenStreams(inputs[v])
			if err != nil {
				return err
			}
			if u.Bulk() {
				ts := inputs[v].Tuples
				for pos := 0; pos < len(ts); {
					m := pos
					for m < len(ts) && ts[m].Key != needle {
						m++
					}
					n := m - pos
					if m < len(ts) {
						n++
					}
					readers[0].NextRun(n)
					u.ChargeRun(insts, n)
					if m < len(ts) {
						u.AppendLocal(outs[v], ts[m])
						matches[v]++
					}
					pos += n
				}
				return nil
			}
			// Reference per-tuple path.
			for {
				t, ok := readers[0].Next()
				if !ok {
					return nil
				}
				u.Charge(insts)
				if t.Key == needle {
					u.AppendLocal(outs[v], t)
					matches[v]++
				}
			}
		}); err != nil {
			return nil, err
		}
		for _, m := range matches {
			res.Matches += m
		}
	}
	res.Steps = append(res.Steps, e.EndStep())
	res.ProbeNs = e.TotalNs() - t0
	return res, nil
}

// scanVaultColumnar is one vault's columnar scan: the needle search runs
// over the region's dense key column, and the consumed stretches retire
// through the stream reader exactly as the bulk path retires them, so
// the charged access sequence is identical. The reusable stream group
// and the region's cached key mirror make the steady state
// allocation-free.
func scanVaultColumnar(u *engine.Unit, in, out *engine.Region, needle tuple.Key, insts float64) (int, error) {
	g := u.StreamGroup()
	g.Reset()
	g.AddView(in, 0, in.Len())
	readers, err := g.Open()
	if err != nil {
		return 0, err
	}
	rd := readers[0]
	ts := in.Tuples
	keys := in.KeyColumn()
	matches := 0
	for pos := 0; pos < len(keys); {
		m := tuple.FindKey(keys, pos, needle)
		n := m - pos
		if m < len(keys) {
			n++ // include the matching tuple in the run
		}
		rd.NextRun(n)
		u.ChargeRun(insts, n)
		if m < len(keys) {
			u.AppendLocal(out, ts[m])
			matches++
		}
		pos += n
	}
	return matches, nil
}
