package operators

// Heavy-hitter detection for the skew-aware execution path. The partition
// phase already computes exact per-destination histograms (the §5.4
// histogram exchange) — those drive provisioning decisions, which must be
// exact. Identifying WHICH keys are hot needs key-granularity counts that
// the per-destination histograms collapse away, and an exact key histogram
// over the full key space is exactly the kind of per-tuple random-access
// work the bulk path exists to avoid. The detector therefore runs a
// SpaceSaving sketch (Metwally et al.) over a sampled sub-stream of the
// keys: constant space, deterministic, and — by the SpaceSaving invariant —
// incapable of missing a key that is genuinely heavy in the sampled stream.
//
// Determinism: every tie in the sketch (eviction victim, output order) is
// broken by key value, and per-source sketches are merged in source order,
// so the flagged set is a pure function of the input data — independent of
// host parallelism.

import (
	"sort"
	"sync"

	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// Default detector tuning, overridable through Config.
const (
	defaultSkewLoadFactor   = 0.5 // hot = one key ≥ half a destination's fair share
	defaultSkewSketchSize   = 256 // tracked keys per sketch
	defaultSkewSampleStride = 8   // sample every 8th tuple in bulk streams
)

// Hot-key splitting thresholds. Splitting restructures only the HOST
// execution plan for a hot key's tuples — the simulated access and charge
// sequence is preserved exactly, because the run-granular primitives
// (NextRun, ChargeRun, AppendRunLocal) are defined to equal their
// per-tuple expansions.
const (
	// splitGroupMinTuples is the minimum group size before Group-by
	// shards a hot group's aggregation across host workers and combines
	// the exact partial aggregates.
	splitGroupMinTuples = 4096
	// splitRunMinTuples is the minimum equal-key run length before the
	// sort-merge join retires a hot key's S run as batched run
	// operations instead of per-tuple pops.
	splitRunMinTuples = 64
	// splitShards is the fan-out of a sharded hot-group aggregation.
	splitShards = 4
)

// shardedAggregate computes the six aggregates of one hot group by
// splitting it across splitShards host workers and combining the partial
// aggregates. Count/Sum/SumSq are wraparound uint64 adds and Min/Max are
// semilattice joins — all associative — so the combined result is
// bit-exact with the sequential loop regardless of shard boundaries.
func shardedAggregate(ts []tuple.Tuple) Aggregates {
	shards := splitShards
	if len(ts) < shards {
		shards = 1
	}
	partial := make([]Aggregates, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo, hi := len(ts)*s/shards, len(ts)*(s+1)/shards
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			a := Aggregates{Min: ^uint64(0)}
			for i := lo; i < hi; i++ {
				v := uint64(ts[i].Val)
				a.Count++
				a.Sum += v
				a.SumSq += v * v
				if v < a.Min {
					a.Min = v
				}
				if v > a.Max {
					a.Max = v
				}
			}
			partial[s] = a
		}(s, lo, hi)
	}
	wg.Wait()
	agg := Aggregates{Min: ^uint64(0)}
	for _, a := range partial {
		agg.Count += a.Count
		agg.Sum += a.Sum
		agg.SumSq += a.SumSq
		if a.Min < agg.Min {
			agg.Min = a.Min
		}
		if a.Max > agg.Max {
			agg.Max = a.Max
		}
	}
	return agg
}

// skewLoadFactor returns the heavy-hitter flagging threshold as a fraction
// of the mean destination load.
func (c Config) skewLoadFactor() float64 {
	if c.SkewLoadFactor > 0 {
		return c.SkewLoadFactor
	}
	return defaultSkewLoadFactor
}

// skewSketchSize returns the SpaceSaving capacity m.
func (c Config) skewSketchSize() int {
	if c.SkewSketchSize > 0 {
		return c.SkewSketchSize
	}
	return defaultSkewSketchSize
}

// skewSampleStride returns the bulk-path sampling stride.
func (c Config) skewSampleStride() int {
	if c.SkewSampleStride > 0 {
		return c.SkewSampleStride
	}
	return defaultSkewSampleStride
}

// ssEntry is one tracked key with its overestimated count.
type ssEntry struct {
	key uint64
	cnt uint64
}

// SpaceSaving is a deterministic stream-summary sketch with capacity m.
// Offer counts one key occurrence; when the sketch is full, the entry with
// the minimum (count, key) is evicted and the newcomer inherits its count
// plus one — the classic SpaceSaving overestimate. Invariants (for a
// sketch fed n offers): Estimate(k) ≥ true count of k for every key, and
// any key whose true count exceeds n/m is tracked. Ties are broken by key
// value so the flagged set is a pure function of the offer sequence.
//
// Entries live in an indexed min-heap ordered by (count, key): on the
// adversarial all-distinct stream every Offer evicts, so eviction must be
// O(log m), not an O(m) scan — the detector taxes every partition run,
// hot or not.
type SpaceSaving struct {
	m    int
	n    uint64         // total offers
	heap []ssEntry      // min-heap by (count, key); heap[0] is the victim
	idx  map[uint64]int // key → heap position
}

// NewSpaceSaving returns an empty sketch tracking at most m keys. m < 1 is
// treated as 1.
func NewSpaceSaving(m int) *SpaceSaving {
	if m < 1 {
		m = 1
	}
	return &SpaceSaving{m: m, idx: make(map[uint64]int, m)}
}

// Len returns the number of tracked keys.
func (s *SpaceSaving) Len() int { return len(s.heap) }

// Offers returns the total number of Offer calls (the sampled stream
// length n in the error bound n/m).
func (s *SpaceSaving) Offers() uint64 { return s.n }

// less orders heap entries by (count, key); keys are unique, so the order
// is total and heap[0] — the eviction victim — is uniquely determined.
func (s *SpaceSaving) less(i, j int) bool {
	if s.heap[i].cnt != s.heap[j].cnt {
		return s.heap[i].cnt < s.heap[j].cnt
	}
	return s.heap[i].key < s.heap[j].key
}

func (s *SpaceSaving) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.idx[s.heap[i].key] = i
	s.idx[s.heap[j].key] = j
}

func (s *SpaceSaving) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			return
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *SpaceSaving) siftDown(i int) {
	n := len(s.heap)
	for {
		least := i
		if l := 2*i + 1; l < n && s.less(l, least) {
			least = l
		}
		if r := 2*i + 2; r < n && s.less(r, least) {
			least = r
		}
		if least == i {
			return
		}
		s.swap(i, least)
		i = least
	}
}

// push inserts a new entry (the key must not be tracked yet).
func (s *SpaceSaving) push(e ssEntry) {
	s.heap = append(s.heap, e)
	s.idx[e.key] = len(s.heap) - 1
	s.siftUp(len(s.heap) - 1)
}

// Offer counts one occurrence of key k.
func (s *SpaceSaving) Offer(k uint64) {
	s.n++
	if pos, ok := s.idx[k]; ok {
		s.heap[pos].cnt++
		s.siftDown(pos)
		return
	}
	if len(s.heap) < s.m {
		s.push(ssEntry{key: k, cnt: 1})
		return
	}
	victim := s.heap[0]
	delete(s.idx, victim.key)
	s.heap[0] = ssEntry{key: k, cnt: victim.cnt + 1}
	s.idx[k] = 0
	s.siftDown(0)
}

// Estimate returns the sketch's count upper bound for key k and whether k
// is currently tracked. Untracked keys report the minimum tracked count —
// still an upper bound on their true count, by the eviction rule.
func (s *SpaceSaving) Estimate(k uint64) (uint64, bool) {
	if pos, ok := s.idx[k]; ok {
		return s.heap[pos].cnt, true
	}
	if len(s.heap) < s.m {
		return 0, false // never evicted anything: absent means count 0
	}
	return s.heap[0].cnt, false
}

// Merge folds other into s, preserving the overestimate invariant: a key
// tracked in only one sketch gets the other sketch's untracked upper bound
// added, then the combined set is truncated back to the top m entries by
// (count, key). The result is deterministic regardless of heap layout
// because all ties resolve by key value.
func (s *SpaceSaving) Merge(other *SpaceSaving) {
	if other == nil || (other.n == 0 && other.Len() == 0) {
		return
	}
	floorS, floorO := uint64(0), uint64(0)
	if s.Len() >= s.m {
		floorS = s.heap[0].cnt
	}
	if other.Len() >= other.m {
		floorO = other.heap[0].cnt
	}
	merged := make(map[uint64]uint64, s.Len()+other.Len())
	for _, e := range s.heap {
		merged[e.key] = e.cnt + floorO
	}
	for _, e := range other.heap {
		if pos, ok := s.idx[e.key]; ok {
			merged[e.key] = s.heap[pos].cnt + e.cnt // tracked in both: sum of the two bounds
		} else {
			merged[e.key] = e.cnt + floorS
		}
	}
	all := make([]ssEntry, 0, len(merged))
	for k, c := range merged {
		all = append(all, ssEntry{key: k, cnt: c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].cnt != all[j].cnt {
			return all[i].cnt > all[j].cnt
		}
		return all[i].key < all[j].key
	})
	if len(all) > s.m {
		all = all[:s.m]
	}
	s.heap = s.heap[:0]
	s.idx = make(map[uint64]int, s.m)
	for _, e := range all {
		s.push(e)
	}
	s.n += other.n
}

// HeavyHitters returns every tracked key whose estimated count reaches
// threshold, sorted by descending count then ascending key. Because
// estimates are upper bounds, the result is a superset of the keys whose
// TRUE sampled count reaches threshold (no false negatives).
func (s *SpaceSaving) HeavyHitters(threshold uint64) []uint64 {
	var hot []ssEntry
	for _, e := range s.heap {
		if e.cnt >= threshold {
			hot = append(hot, e)
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].cnt != hot[j].cnt {
			return hot[i].cnt > hot[j].cnt
		}
		return hot[i].key < hot[j].key
	})
	keys := make([]uint64, len(hot))
	for i, e := range hot {
		keys[i] = e.key
	}
	return keys
}

// SkewReport summarizes what the detector saw during one partition phase.
// It is attached to PartitionResult only on skew-aware runs; all fields
// are host-side observations and never feed back into simulated state, so
// the report cannot perturb the byte-identical differential contract.
type SkewReport struct {
	// MaxLoad and MeanLoad are the exact per-destination tuple loads from
	// the histogram exchange (max and arithmetic mean).
	MaxLoad  int
	MeanLoad float64
	// HotKeys are the sketch-flagged heavy hitters: keys whose estimated
	// frequency (scaled by the sampling stride) reaches SkewLoadFactor ×
	// MeanLoad. Sorted hottest-first.
	HotKeys []uint64
	// Provisioned is the final per-destination buffer capacity in tuples;
	// Resized reports whether skew-aware provisioning raised it above the
	// uniform overprovisioned estimate (i.e. the run would have overflowed
	// and retried without skew awareness).
	Provisioned int
	Resized     bool
}

// buildSkewReport assembles a SkewReport from exact destination loads and
// the merged sample sketch. stride scales sampled counts back to stream
// frequency estimates.
func buildSkewReport(cfg Config, loads []int64, sketch *SpaceSaving, stride int) *SkewReport {
	rep := &SkewReport{}
	var total int64
	for _, l := range loads {
		if int(l) > rep.MaxLoad {
			rep.MaxLoad = int(l)
		}
		total += l
	}
	if len(loads) > 0 {
		rep.MeanLoad = float64(total) / float64(len(loads))
	}
	if sketch != nil && rep.MeanLoad > 0 {
		threshold := uint64(cfg.skewLoadFactor() * rep.MeanLoad / float64(stride))
		if threshold < 1 {
			threshold = 1
		}
		rep.HotKeys = sketch.HeavyHitters(threshold)
	}
	return rep
}
