package operators

import (
	"math/rand"
	"reflect"
	"testing"
)

// zipfStream draws n keys from a seeded Zipf distribution — the skewed
// streams the detector exists for.
func zipfStream(seed int64, n int, s float64, keySpace uint64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, keySpace-1)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = z.Uint64()
	}
	return keys
}

// uniformStream draws n keys uniformly — the adversarial case for the
// false-positive bound (no key is truly heavy).
func uniformStream(seed int64, n int, keySpace uint64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64() % keySpace
	}
	return keys
}

// exactCounts is the reference the sketch is judged against.
func exactCounts(keys []uint64) map[uint64]uint64 {
	m := make(map[uint64]uint64)
	for _, k := range keys {
		m[k]++
	}
	return m
}

// TestSpaceSavingNoFalseNegatives is the detector's core property: for
// seeded Zipf and uniform streams, every key whose TRUE count reaches the
// threshold appears in HeavyHitters(threshold) — the sketch-flagged set
// is a superset of the true heavy hitters. This is what makes skew-aware
// planning safe: a hot key can be over-split (wasted host work, same
// simulated result) but never missed.
func TestSpaceSavingNoFalseNegatives(t *testing.T) {
	streams := map[string][]uint64{
		"zipf1.1":  zipfStream(1, 1<<14, 1.1, 1<<16),
		"zipf1.5":  zipfStream(2, 1<<14, 1.5, 1<<16),
		"zipf2.0":  zipfStream(3, 1<<14, 2.0, 1<<16),
		"uniform":  uniformStream(4, 1<<14, 1<<10),
		"twoHot":   append(zipfStream(5, 1<<12, 2.0, 1<<8), uniformStream(6, 1<<12, 1<<16)...),
		"constant": make([]uint64, 1<<10), // all zero: one maximally hot key
	}
	for name, keys := range streams {
		keys := keys
		t.Run(name, func(t *testing.T) {
			const m = 64
			sk := NewSpaceSaving(m)
			for _, k := range keys {
				sk.Offer(k)
			}
			truth := exactCounts(keys)
			// Any threshold above the SpaceSaving error bound n/m is
			// guaranteed exact-superset territory; sweep several.
			n := uint64(len(keys))
			for _, threshold := range []uint64{n/m + 1, n / 32, n / 8, n / 2} {
				if threshold == 0 {
					continue
				}
				flagged := make(map[uint64]bool)
				for _, k := range sk.HeavyHitters(threshold) {
					flagged[k] = true
				}
				for k, c := range truth {
					if c >= threshold && !flagged[k] {
						t.Errorf("threshold %d: true heavy hitter %d (count %d) not flagged",
							threshold, k, c)
					}
				}
			}
		})
	}
}

// TestSpaceSavingEstimateUpperBound pins the overestimate invariant the
// superset property rests on: Estimate(k) ≥ true count for every key in
// the stream, tracked or not.
func TestSpaceSavingEstimateUpperBound(t *testing.T) {
	keys := zipfStream(7, 1<<13, 1.3, 1<<14)
	sk := NewSpaceSaving(32)
	for _, k := range keys {
		sk.Offer(k)
	}
	for k, c := range exactCounts(keys) {
		if est, _ := sk.Estimate(k); est < c {
			t.Errorf("Estimate(%d) = %d < true count %d", k, est, c)
		}
	}
	if sk.Offers() != uint64(len(keys)) {
		t.Errorf("Offers() = %d, want %d", sk.Offers(), len(keys))
	}
}

// TestSpaceSavingBoundedFalsePositives bounds the other direction: a
// flagged key's true count can undershoot the threshold by at most the
// SpaceSaving error n/m, so thresholds ≫ n/m admit only near-hot keys.
// On a uniform stream with per-key counts far below n/m the flagged set
// at threshold 2·n/m must therefore be empty.
func TestSpaceSavingBoundedFalsePositives(t *testing.T) {
	const m = 64
	keys := zipfStream(8, 1<<14, 1.5, 1<<16)
	sk := NewSpaceSaving(m)
	for _, k := range keys {
		sk.Offer(k)
	}
	truth := exactCounts(keys)
	bound := uint64(len(keys)) / m
	threshold := 4 * bound
	for _, k := range sk.HeavyHitters(threshold) {
		if truth[k]+bound < threshold {
			t.Errorf("flagged key %d has true count %d < threshold %d - error bound %d",
				k, truth[k], threshold, bound)
		}
	}

	// Uniform keys over a space ≫ m: every true count is tiny, so a
	// threshold of 2·n/m flags nothing.
	uni := uniformStream(9, 1<<14, 1<<20)
	sk2 := NewSpaceSaving(m)
	for _, k := range uni {
		sk2.Offer(k)
	}
	if hot := sk2.HeavyHitters(2 * uint64(len(uni)) / m); len(hot) != 0 {
		t.Errorf("uniform stream flagged %d heavy hitters at 2n/m, want 0", len(hot))
	}
}

// TestSpaceSavingMergeProperties checks the cross-source merge the NMP
// partition path performs: the merged sketch keeps the upper-bound
// invariant over the concatenated stream, reproduces identically across
// repeated merges (map iteration order must not leak), and flags the true
// heavy hitters of the combined stream.
func TestSpaceSavingMergeProperties(t *testing.T) {
	const m = 48
	a := zipfStream(10, 1<<13, 1.5, 1<<15)
	b := zipfStream(11, 1<<13, 2.0, 1<<15)

	build := func() *SpaceSaving {
		sa, sb := NewSpaceSaving(m), NewSpaceSaving(m)
		for _, k := range a {
			sa.Offer(k)
		}
		for _, k := range b {
			sb.Offer(k)
		}
		sa.Merge(sb)
		return sa
	}
	merged := build()

	if got, want := merged.Offers(), uint64(len(a)+len(b)); got != want {
		t.Errorf("merged Offers() = %d, want %d", got, want)
	}
	// Determinism: rebuilding from scratch yields the identical sketch.
	for i := 0; i < 3; i++ {
		if again := build(); !reflect.DeepEqual(merged, again) {
			t.Fatalf("merge is not deterministic across rebuilds")
		}
	}
	// Upper bound and superset over the combined stream.
	truth := exactCounts(append(append([]uint64{}, a...), b...))
	for k, c := range truth {
		if est, _ := merged.Estimate(k); est < c {
			t.Errorf("merged Estimate(%d) = %d < combined true count %d", k, est, c)
		}
	}
	threshold := uint64(len(a)+len(b)) / 8
	flagged := make(map[uint64]bool)
	for _, k := range merged.HeavyHitters(threshold) {
		flagged[k] = true
	}
	for k, c := range truth {
		if c >= threshold && !flagged[k] {
			t.Errorf("combined heavy hitter %d (count %d) lost in merge", k, c)
		}
	}
}

// TestSpaceSavingSmallAndEmpty exercises the degenerate shapes the
// partition path can feed the sketch.
func TestSpaceSavingSmallAndEmpty(t *testing.T) {
	sk := NewSpaceSaving(0) // clamped to capacity 1
	if est, ok := sk.Estimate(7); est != 0 || ok {
		t.Errorf("empty sketch Estimate = %d,%v", est, ok)
	}
	sk.Offer(7)
	sk.Offer(7)
	sk.Offer(9) // evicts 7, inherits its count
	if est, ok := sk.Estimate(9); !ok || est != 3 {
		t.Errorf("Estimate(9) = %d,%v, want 3,true", est, ok)
	}
	if hot := sk.HeavyHitters(1); len(hot) != 1 || hot[0] != 9 {
		t.Errorf("HeavyHitters(1) = %v, want [9]", hot)
	}
	var empty *SpaceSaving
	full := NewSpaceSaving(4)
	full.Offer(1)
	full.Merge(empty)             // nil merge is a no-op
	full.Merge(NewSpaceSaving(4)) // empty merge is a no-op
	if full.Len() != 1 || full.Offers() != 1 {
		t.Errorf("no-op merges changed the sketch: len=%d n=%d", full.Len(), full.Offers())
	}
}
