package operators

import (
	"github.com/ecocloud-go/mondrian/internal/engine"
)

// SortResult reports a Sort run.
type SortResult struct {
	// Sorted holds the range-partitioned, locally sorted buckets in
	// ascending bucket (hence global key) order: concatenating them
	// yields the fully sorted dataset.
	Sorted    []*engine.Region
	Partition *PartitionResult
	// PartitionNs and ProbeNs split the operator runtime by phase.
	PartitionNs float64
	ProbeNs     float64
}

// Ns returns the operator's total runtime.
func (r *SortResult) Ns() float64 { return r.PartitionNs + r.ProbeNs }

// Sort globally sorts the dataset: a range-partitioning phase on the
// keys' high-order bits (so bucket i's keys all precede bucket i+1's,
// Table 2) followed by a local sort of every bucket — quicksort on the
// CPU, mergesort on the NMP systems (§6).
func Sort(e *engine.Engine, cfg Config, inputs []*engine.Region) (*SortResult, error) {
	if err := checkInputs(e, inputs); err != nil {
		return nil, err
	}
	total := totalLen(inputs)
	ks := SortKeySpace(cfg, inputs)
	part := Partitioner{
		Buckets:  bucketCount(e, cfg, total),
		KeySpace: ks,
		HighBits: true,
	}

	pres, err := PartitionPhase(e, cfg, inputs, part)
	if err != nil {
		return nil, err
	}
	res, err := SortProbe(e, cfg, pres.Buckets)
	if err != nil {
		return nil, err
	}
	res.Partition = pres
	res.PartitionNs = pres.Ns()
	return res, nil
}

// SortKeySpace returns the effective range-partitioner bound Sort uses:
// the configured KeySpace, or, when that is zero, one past the largest key
// present (real systems learn the range from statistics; the scan is free
// here because the histogram step re-reads the data anyway). Plan
// compilation calls it to decide whether an upstream range partition
// already matches the one Sort would build.
func SortKeySpace(cfg Config, inputs []*engine.Region) uint64 {
	ks := cfg.KeySpace
	if ks != 0 {
		return ks
	}
	for _, in := range inputs {
		for _, t := range in.Tuples {
			if uint64(t.Key) >= ks {
				ks = uint64(t.Key) + 1
			}
		}
	}
	if ks == 0 {
		ks = 1
	}
	return ks
}

// SortProbe runs the local-sort probe phase over already range-partitioned
// buckets: bucket i's keys must all precede bucket i+1's, with bucket b
// resident in vault b on the vault-partitioned architectures. Sort calls
// it after its partition phase; plan execution calls it directly when an
// upstream operator's output already carries the matching range partition,
// eliding the re-shuffle.
func SortProbe(e *engine.Engine, cfg Config, buckets []*engine.Region) (*SortResult, error) {
	cm := cfg.Costs
	res := &SortResult{}
	t1 := e.TotalNs()
	e.BeginPhase("probe")
	defer e.EndPhase()

	if e.Config().Arch == engine.CPU {
		// CPU probe: quicksort per probe group (consecutive range
		// buckets form a contiguous key range, so group-local sorts
		// still compose to a global order).
		groups := probeGroups(e, cfg, buckets)
		e.BeginStep(cm.QuicksortProfile)
		for g, group := range groups {
			regions := make([]*engine.Region, len(group))
			for i, b := range group {
				regions[i] = buckets[b]
			}
			quicksortSuper(unitForGroup(e, groups, g), cm, regions)
		}
		e.EndStep()
		res.Sorted = buckets
	} else {
		sorted, err := sortBuckets(e, cm, buckets)
		if err != nil {
			return nil, err
		}
		res.Sorted = sorted
	}
	e.Barrier()
	res.ProbeNs = e.TotalNs() - t1
	return res, nil
}
