package operators

import (
	"fmt"

	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// The sorting machinery of the probe phase. Two algorithms exist, per the
// paper's central algorithm tradeoff (§4.1.1):
//
//   - quicksort: the CPU-preferred algorithm. Buckets are sized to fit the
//     private caches, so after one streaming load the O(n log n) compare
//     work runs cache-resident.
//   - mergesort: the NMP-preferred algorithm. An initial in-register
//     bitonic pass builds sorted runs of InitialRunLen tuples (§5.2:
//     "reduces the required number of passes by four"), then log_fanIn
//     sequential merge passes ping-pong between the bucket and a scratch
//     region. On Mondrian the runs stream through the stream buffers
//     (fan-in 8, one buffer per run) and the merge network is SIMD.

// quicksortLocal sorts one bucket with the CPU algorithm. It charges one
// streaming read of the bucket (which also warms the caches), the compare
// work, and one write pass.
func quicksortLocal(u *engine.Unit, cm CostModel, r *engine.Region) {
	n := r.Len()
	if n == 0 {
		return
	}
	if u.Columnar() {
		// Columnar path: split the bucket into key/value columns, radix
		// sort the key column carrying the payload permutation, and
		// interleave back. Charges are identical to the bulk path; only
		// the host algorithm (and the permutation among equal keys,
		// which nothing simulated observes) differs.
		a := u.Arena()
		c := a.Cols(n)
		scratch := a.Cols(n)
		c.Reset()
		u.LoadRunCols(r, 0, n, c)
		c.SortByKey(scratch)
		u.Charge(float64(n) * log2ceil(n) * cm.QuicksortInsts)
		u.StoreRunCols(r, 0, c, 0, n)
		a.PutCols(scratch)
		a.PutCols(c)
		return
	}
	if u.Bulk() {
		u.LoadRun(r, 0, n)
		tuple.SortSliceByKey(r.Tuples)
		u.Charge(float64(n) * log2ceil(n) * cm.QuicksortInsts)
		u.StoreRun(r, 0, r.Tuples)
		return
	}
	for i := 0; i < n; i++ {
		u.LoadTuple(r, i)
	}
	tuple.SortSliceByKey(r.Tuples)
	u.Charge(float64(n) * log2ceil(n) * cm.QuicksortInsts)
	for i := 0; i < n; i++ {
		u.StoreTuple(r, i, r.Tuples[i])
	}
}

// quicksortSuper sorts the concatenation of several consecutive regions
// in place (the CPU's probe-group sort): one streaming load of every
// region, the O(n log n) compare work over the full group working set,
// and one streaming store back.
func quicksortSuper(u *engine.Unit, cm CostModel, regions []*engine.Region) {
	if u.Columnar() {
		// Columnar path: gather the group into arena-backed columns
		// (instead of a fresh []Tuple per group), radix sort the key
		// column, and store back region by region. Same charges, zero
		// steady-state allocations.
		total := 0
		for _, r := range regions {
			total += r.Len()
		}
		if total == 0 {
			return
		}
		a := u.Arena()
		c := a.Cols(total)
		scratch := a.Cols(total)
		c.Reset()
		for _, r := range regions {
			u.LoadRunCols(r, 0, r.Len(), c)
		}
		c.SortByKey(scratch)
		u.Charge(float64(total) * log2ceil(total) * cm.QuicksortInsts)
		k := 0
		for _, r := range regions {
			u.StoreRunCols(r, 0, c, k, k+r.Len())
			k += r.Len()
		}
		a.PutCols(scratch)
		a.PutCols(c)
		return
	}
	if u.Bulk() {
		total := 0
		for _, r := range regions {
			total += r.Len()
		}
		if total == 0 {
			return
		}
		all := make([]tuple.Tuple, 0, total)
		for _, r := range regions {
			all = append(all, u.LoadRun(r, 0, r.Len())...)
		}
		tuple.SortSliceByKey(all)
		u.Charge(float64(total) * log2ceil(total) * cm.QuicksortInsts)
		k := 0
		for _, r := range regions {
			u.StoreRun(r, 0, all[k:k+r.Len()])
			k += r.Len()
		}
		return
	}
	var all []tuple.Tuple
	for _, r := range regions {
		for i := 0; i < r.Len(); i++ {
			all = append(all, u.LoadTuple(r, i))
		}
	}
	n := len(all)
	if n == 0 {
		return
	}
	tuple.SortSliceByKey(all)
	u.Charge(float64(n) * log2ceil(n) * cm.QuicksortInsts)
	k := 0
	for _, r := range regions {
		for i := 0; i < r.Len(); i++ {
			u.StoreTuple(r, i, all[k])
			k++
		}
	}
}

// log2ceil returns ceil(log2(n)) as a float, with log2ceil(≤1) = 1.
func log2ceil(n int) float64 {
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	if bits < 1 {
		bits = 1
	}
	return float64(bits)
}

// MergePasses returns how many merge passes sorting n tuples takes with
// the given initial run length and fan-in (exposed for the ablation
// benches and EXPERIMENTS.md math).
func MergePasses(n, initialRun, fanIn int) int {
	if n <= initialRun {
		return 0
	}
	passes := 0
	run := initialRun
	for run < n {
		run *= fanIn
		passes++
	}
	return passes
}

// formRuns performs the initial run-formation pass: a streaming read of
// the bucket, in-register sorting of InitialRunLen-tuple groups, and a
// streaming write. SIMD units run the bitonic network of [8]; scalar
// cores insertion-sort the group.
func formRuns(u *engine.Unit, cm CostModel, r *engine.Region, simd bool) error {
	n := r.Len()
	if n == 0 {
		return nil
	}
	var in *engine.StreamReader
	if u.Columnar() {
		// Columnar runs draw the reader from the unit's reusable stream
		// group so run formation allocates nothing in steady state.
		sg := u.StreamGroup()
		sg.Reset()
		sg.AddView(r, 0, n)
		readers, err := sg.Open()
		if err != nil {
			return err
		}
		in = readers[0]
	} else {
		readers, err := u.OpenStreams(r)
		if err != nil {
			return err
		}
		in = readers[0]
	}
	var out []tuple.Tuple
	if u.Bulk() {
		// The read pass fully precedes the write pass and NextRun hands
		// back the region's own storage, so the whole bucket streams in as
		// one run and the groups sort in place (identical contents and
		// comparator → identical permutations).
		run := in.NextRun(n)
		for g := 0; g < n; g += cm.InitialRunLen {
			end := g + cm.InitialRunLen
			if end > n {
				end = n
			}
			tuple.SortSliceByKey(run[g:end])
		}
		r.MarkMutated() // in-place sort bypassed the engine's mutators
	} else {
		out = make([]tuple.Tuple, 0, n)
		for !in.Done() {
			group := make([]tuple.Tuple, 0, cm.InitialRunLen)
			for len(group) < cm.InitialRunLen {
				t, ok := in.Next()
				if !ok {
					break
				}
				group = append(group, t)
			}
			tuple.SortSliceByKey(group)
			out = append(out, group...)
		}
	}
	if simd {
		// Bitonic sort of 16-tuple groups: log2(16)·(log2(16)+1)/2 = 10
		// compare-exchange stages over 2 SIMD vectors ≈ BitonicInsts/tuple.
		u.Charge(float64(n) * cm.BitonicInsts)
	} else {
		// Insertion sort of each group: ~log2(runLen)·Quicksort-like work.
		u.Charge(float64(n) * log2ceil(cm.InitialRunLen) * cm.QuicksortInsts)
	}
	if u.Bulk() {
		u.WriteRunBytes(r.Addr, tuple.Size, n)
		return nil
	}
	for i := range out {
		r.Tuples[i] = out[i]
		u.WriteBytes(r.Addr+int64(i)*tuple.Size, tuple.Size)
	}
	r.MarkMutated() // direct writes bypassed the engine's mutators
	return nil
}

// mergePass merges sorted runs of runLen from src into dst, fanIn at a
// time, charging per-tuple merge work. dst must be empty with capacity
// ≥ src.Len().
func mergePass(u *engine.Unit, cm CostModel, src, dst *engine.Region, runLen, fanIn int, simd bool) error {
	if dst.Len() != 0 {
		return fmt.Errorf("operators: merge destination not empty")
	}
	n := src.Len()
	insts := cm.MergeInsts
	if simd {
		insts = cm.SIMDMergeInsts
	}
	// The merge interleave is data-dependent, so pops stay per-tuple. On
	// stream-buffer units, though, pops themselves are free — only the
	// granule refills touch DRAM — so the strictly sequential output
	// appends between two refills can retire as one run: flushing the
	// pending appends right before each refill-triggering pop preserves
	// the exact DRAM access order of the per-tuple loop. (Cache-backed
	// units issue a demand read per pop, so their appends cannot batch.)
	// Columnar runs reach a zero-allocation steady state: the pending
	// buffer comes from the unit's arena, the per-group views and
	// readers from its reusable stream group, and the head-cache arrays
	// from the stack (fan-ins beyond the buffer fall back to slices).
	colsMode := u.Columnar()
	var pending []tuple.Tuple
	var keys []tuple.Key // cached stream heads; scanned instead of re-Peeking
	var live []bool
	var keysBuf [16]tuple.Key
	var liveBuf [16]bool
	var sg *engine.StreamGroup
	if colsMode {
		pending = u.Arena().Tuples(n)
		defer func() { u.Arena().PutTuples(pending) }()
		if fanIn <= len(keysBuf) {
			keys, live = keysBuf[:0], liveBuf[:0]
		}
		sg = u.StreamGroup()
	}
	flush := func() {
		if len(pending) == 0 {
			return
		}
		u.ChargeRun(insts, len(pending))
		u.AppendRunLocal(dst, pending)
		pending = pending[:0]
	}
	for groupStart := 0; groupStart < n; groupStart += runLen * fanIn {
		var readers []*engine.StreamReader
		var err error
		if colsMode {
			sg.Reset()
			for r := 0; r < fanIn; r++ {
				s := groupStart + r*runLen
				if s >= n {
					break
				}
				e := s + runLen
				if e > n {
					e = n
				}
				sg.AddView(src, s, e)
			}
			readers, err = sg.Open()
		} else {
			views := make([]*engine.Region, 0, fanIn)
			for r := 0; r < fanIn; r++ {
				s := groupStart + r*runLen
				if s >= n {
					break
				}
				e := s + runLen
				if e > n {
					e = n
				}
				views = append(views, src.View(s, e))
			}
			readers, err = u.OpenStreams(views...)
		}
		if err != nil {
			return err
		}
		batched := u.Bulk() && len(readers) > 0 && readers[0].Streamed()
		keys, live = keys[:0], live[:0]
		for _, rd := range readers {
			t, ok := rd.Peek()
			keys = append(keys, t.Key)
			live = append(live, ok)
		}
		for {
			best := -1
			var bestKey tuple.Key
			for i := range keys {
				if live[i] && (best == -1 || keys[i] < bestKey) {
					best, bestKey = i, keys[i]
				}
			}
			if best == -1 {
				break
			}
			if batched {
				if readers[best].NextFills() {
					flush()
				}
				t, _ := readers[best].Next()
				pending = append(pending, t)
			} else {
				t, _ := readers[best].Next()
				u.Charge(insts)
				u.AppendLocal(dst, t)
			}
			t, ok := readers[best].Peek()
			keys[best], live[best] = t.Key, ok
		}
		flush()
	}
	return nil
}

// mergesortLocal sorts one bucket with the NMP algorithm, ping-ponging
// between the bucket and a same-vault scratch region. It returns the
// region holding the sorted result (either r or scratch).
func mergesortLocal(u *engine.Unit, cm CostModel, r, scratch *engine.Region, simd bool) (*engine.Region, error) {
	n := r.Len()
	if scratch.Cap() < n {
		return nil, fmt.Errorf("operators: scratch capacity %d < %d", scratch.Cap(), n)
	}
	if err := formRuns(u, cm, r, simd); err != nil {
		return nil, err
	}
	src, dst := r, scratch
	for runLen := cm.InitialRunLen; runLen < n; runLen *= cm.MergeFanIn {
		dst.Reset()
		if err := mergePass(u, cm, src, dst, runLen, cm.MergeFanIn, simd); err != nil {
			return nil, err
		}
		src, dst = dst, src
	}
	return src, nil
}
