// Package pipeline composes the basic data operators into multi-stage
// query plans — the way the paper's Table 1 workloads actually use them
// (a Spark query is a chain of transformations, each lowering onto Scan,
// Group by, Join or Sort). A plan is a tree of nodes; executing it runs
// each operator on the engine and rematerializes intermediate results
// into the canonical one-region-per-vault layout between stages (the
// local compaction a real engine performs when an operator's output
// feeds the next partitioning phase).
package pipeline

import (
	"fmt"

	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/operators"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// Node is one stage of a query plan.
type Node interface {
	// Name labels the stage in reports.
	Name() string
	exec(x *executor) ([]*engine.Region, error)
}

// StageStats records one executed stage.
type StageStats struct {
	Name   string
	Ns     float64
	Tuples int
}

// Result is an executed plan's output.
type Result struct {
	Out    []*engine.Region
	Stages []StageStats
}

// Tuples flattens the plan output.
func (r *Result) Tuples() []tuple.Tuple { return operators.Gather(r.Out) }

// Ns returns the plan's total runtime.
func (r *Result) Ns() float64 {
	var sum float64
	for _, s := range r.Stages {
		sum += s.Ns
	}
	return sum
}

type executor struct {
	e      *engine.Engine
	cfg    operators.Config
	stages []StageStats
}

// Run executes a plan on the engine.
func Run(e *engine.Engine, cfg operators.Config, root Node) (*Result, error) {
	x := &executor{e: e, cfg: cfg}
	out, err := root.exec(x)
	if err != nil {
		return nil, err
	}
	return &Result{Out: out, Stages: x.stages}, nil
}

func (x *executor) record(name string, t0 float64, out []*engine.Region) {
	n := 0
	for _, r := range out {
		n += r.Len()
	}
	x.stages = append(x.stages, StageStats{Name: name, Ns: x.e.TotalNs() - t0, Tuples: n})
}

// --- leaf -------------------------------------------------------------------

// Table is a leaf node: data already resident in the vaults, one region
// per vault.
type Table struct {
	Label   string
	Regions []*engine.Region
}

// Name implements Node.
func (t *Table) Name() string { return "table:" + t.Label }

func (t *Table) exec(x *executor) ([]*engine.Region, error) {
	if len(t.Regions) != x.e.NumVaults() {
		return nil, fmt.Errorf("pipeline: table %q has %d regions for %d vaults",
			t.Label, len(t.Regions), x.e.NumVaults())
	}
	return t.Regions, nil
}

// --- operators ----------------------------------------------------------------

// Filter keeps tuples whose key equals Needle (LookupKey/Filter → Scan).
type Filter struct {
	In     Node
	Needle tuple.Key
}

// Name implements Node.
func (f *Filter) Name() string { return "filter" }

func (f *Filter) exec(x *executor) ([]*engine.Region, error) {
	in, err := f.In.exec(x)
	if err != nil {
		return nil, err
	}
	t0 := x.e.TotalNs()
	res, err := operators.Scan(x.e, x.cfg, in, f.Needle)
	if err != nil {
		return nil, err
	}
	out, err := Materialize(x.e, res.Out)
	if err != nil {
		return nil, err
	}
	x.record("filter", t0, out)
	return out, nil
}

// Join equi-joins two inputs on key (FK relationship expected from R to S).
type Join struct {
	R, S Node
}

// Name implements Node.
func (j *Join) Name() string { return "join" }

func (j *Join) exec(x *executor) ([]*engine.Region, error) {
	rIn, err := j.R.exec(x)
	if err != nil {
		return nil, err
	}
	sIn, err := j.S.exec(x)
	if err != nil {
		return nil, err
	}
	t0 := x.e.TotalNs()
	res, err := operators.Join(x.e, x.cfg, rIn, sIn)
	if err != nil {
		return nil, err
	}
	out, err := Materialize(x.e, res.Out)
	if err != nil {
		return nil, err
	}
	x.record("join", t0, out)
	return out, nil
}

// GroupBy aggregates the input by key (six aggregate tuples per group).
type GroupBy struct {
	In Node
}

// Name implements Node.
func (g *GroupBy) Name() string { return "groupby" }

func (g *GroupBy) exec(x *executor) ([]*engine.Region, error) {
	in, err := g.In.exec(x)
	if err != nil {
		return nil, err
	}
	t0 := x.e.TotalNs()
	res, err := operators.GroupBy(x.e, x.cfg, in)
	if err != nil {
		return nil, err
	}
	out, err := Materialize(x.e, res.Out)
	if err != nil {
		return nil, err
	}
	x.record("groupby", t0, out)
	return out, nil
}

// Sort orders the input globally by key.
type Sort struct {
	In Node
	// KeySpace optionally overrides the range partitioner's bound
	// (0 = derive from the data).
	KeySpace uint64
}

// Name implements Node.
func (s *Sort) Name() string { return "sort" }

func (s *Sort) exec(x *executor) ([]*engine.Region, error) {
	in, err := s.In.exec(x)
	if err != nil {
		return nil, err
	}
	t0 := x.e.TotalNs()
	cfg := x.cfg
	cfg.KeySpace = s.KeySpace
	res, err := operators.Sort(x.e, cfg, in)
	if err != nil {
		return nil, err
	}
	// Sorted buckets are already per-bucket ordered; materializing must
	// preserve order, so concatenate per vault in bucket order.
	out, err := Materialize(x.e, res.Sorted)
	if err != nil {
		return nil, err
	}
	x.record("sort", t0, out)
	return out, nil
}

// Materialize compacts arbitrary operator-output regions into the
// canonical one-region-per-vault input layout. Data does not move between
// vaults — each vault's fragments are concatenated locally (a streaming
// read plus a sequential write, charged to the vault's unit).
func Materialize(e *engine.Engine, outs []*engine.Region) ([]*engine.Region, error) {
	nv := e.NumVaults()
	byVault := make([][]*engine.Region, nv)
	for _, r := range outs {
		byVault[r.Vault.ID] = append(byVault[r.Vault.ID], r)
	}
	result := make([]*engine.Region, nv)
	e.BeginStep(engine.StepProfile{Name: "materialize", DepIPC: 2, InstPerAccess: 4,
		StreamFed: e.Config().UseStreams})
	for v := 0; v < nv; v++ {
		total := 0
		for _, r := range byVault[v] {
			total += r.Len()
		}
		dst, err := e.AllocOut(v, maxInt(total, 1))
		if err != nil {
			return nil, err
		}
		u := unitFor(e, v)
		for _, r := range byVault[v] {
			for i := 0; i < r.Len(); i++ {
				t := u.LoadTuple(r, i)
				u.Charge(2)
				u.AppendLocal(dst, t)
			}
		}
		result[v] = dst
	}
	e.EndStep()
	return result, nil
}

// unitFor picks the unit that compacts vault v's fragments.
func unitFor(e *engine.Engine, v int) *engine.Unit {
	if e.Config().Arch == engine.CPU {
		return e.Units()[v%len(e.Units())]
	}
	return e.UnitForVault(v)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
