package pipeline

import (
	"testing"

	"github.com/ecocloud-go/mondrian/internal/cache"
	"github.com/ecocloud-go/mondrian/internal/cores"
	"github.com/ecocloud-go/mondrian/internal/dram"
	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/noc"
	"github.com/ecocloud-go/mondrian/internal/operators"
	"github.com/ecocloud-go/mondrian/internal/tuple"
	"github.com/ecocloud-go/mondrian/internal/workload"
)

func testEngine(t *testing.T, arch engine.Arch) *engine.Engine {
	t.Helper()
	g := dram.HMCGeometry()
	g.CapacityBytes = 16 << 20
	cfg := engine.Config{
		Cubes: 2, VaultsPer: 4,
		Geometry: g, Timing: dram.HMCTiming(),
		ObjectSize: tuple.Size, BarrierNs: 1000,
		Topology: noc.FullyConnected,
	}
	switch arch {
	case engine.CPU:
		cfg.Arch = engine.CPU
		cfg.Core = cores.CortexA57()
		cfg.CPUCores = 4
		cfg.Topology = noc.Star
		cfg.L1 = cache.L1D32K()
		cfg.LLC = cache.LLC4M()
	case engine.NMP:
		cfg.Arch = engine.NMP
		cfg.Core = cores.Krait400()
		cfg.L1 = cache.L1D32K()
	case engine.Mondrian:
		cfg.Arch = engine.Mondrian
		cfg.Core = cores.CortexA35Mondrian()
		cfg.Permutable = true
		cfg.UseStreams = true
	}
	e, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func opCfg(arch engine.Arch) operators.Config {
	cfg := operators.Config{Costs: operators.DefaultCosts(), KeySpace: 1 << 16, CPUBuckets: 256}
	if arch == engine.Mondrian {
		cfg.Costs = operators.MondrianCosts()
		cfg.SortProbe = true
	}
	return cfg
}

func table(t *testing.T, e *engine.Engine, label string, rel *tuple.Relation) *Table {
	t.Helper()
	parts := rel.SplitEven(e.NumVaults())
	regions := make([]*engine.Region, len(parts))
	for v, p := range parts {
		r, err := e.Place(v, p.Tuples)
		if err != nil {
			t.Fatal(err)
		}
		regions[v] = r
	}
	return &Table{Label: label, Regions: regions}
}

func TestJoinThenGroupBy(t *testing.T) {
	rRel, sRel, err := workload.FKPair(workload.Config{Seed: 3, Tuples: 4000}, 500)
	if err != nil {
		t.Fatal(err)
	}
	joined := operators.RefJoin(rRel.Tuples, sRel.Tuples)
	want := operators.RefGroupByTuples(joined)

	for _, arch := range []engine.Arch{engine.CPU, engine.NMP, engine.Mondrian} {
		t.Run(arch.String(), func(t *testing.T) {
			e := testEngine(t, arch)
			plan := &GroupBy{In: &Join{
				R: table(t, e, "R", rRel),
				S: table(t, e, "S", sRel),
			}}
			res, err := Run(e, opCfg(arch), plan)
			if err != nil {
				t.Fatal(err)
			}
			if !tuple.SameMultiset(res.Tuples(), want) {
				t.Fatal("join→groupby output mismatch")
			}
			if len(res.Stages) != 2 {
				t.Fatalf("stages = %d", len(res.Stages))
			}
			if res.Ns() <= 0 {
				t.Fatal("no pipeline time")
			}
		})
	}
}

func TestFilterThenSort(t *testing.T) {
	rel := workload.Uniform("in", workload.Config{Seed: 5, Tuples: 5000, KeySpace: 64})
	needle, count := workload.ScanTarget(rel, 7)
	e := testEngine(t, engine.Mondrian)
	plan := &Sort{In: &Filter{In: table(t, e, "in", rel), Needle: needle}}
	res, err := Run(e, opCfg(engine.Mondrian), plan)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Tuples()
	if len(got) != count {
		t.Fatalf("filtered %d tuples, want %d", len(got), count)
	}
	for _, tp := range got {
		if tp.Key != needle {
			t.Fatalf("foreign key %d survived the filter", tp.Key)
		}
	}
}

func TestSortPipelinePreservesMultiset(t *testing.T) {
	rel := workload.Uniform("in", workload.Config{Seed: 9, Tuples: 6000, KeySpace: 1 << 16})
	e := testEngine(t, engine.NMP)
	res, err := Run(e, opCfg(engine.NMP), &Sort{In: table(t, e, "in", rel)})
	if err != nil {
		t.Fatal(err)
	}
	if !tuple.SameMultiset(res.Tuples(), rel.Tuples) {
		t.Fatal("sort pipeline changed the multiset")
	}
	// On vault-partitioned systems the materialized layout is globally
	// ordered: vault v holds range bucket v.
	var last tuple.Key
	for _, r := range res.Out {
		for i, tp := range r.Tuples {
			if tp.Key < last {
				t.Fatalf("global order broken at vault %d index %d", r.Vault.ID, i)
			}
			last = tp.Key
		}
	}
}

func TestTableShapeValidation(t *testing.T) {
	e := testEngine(t, engine.NMP)
	bad := &Table{Label: "bad", Regions: nil}
	if _, err := Run(e, opCfg(engine.NMP), bad); err == nil {
		t.Fatal("mis-shaped table accepted")
	}
}

func TestMaterializeCompactsLocally(t *testing.T) {
	e := testEngine(t, engine.NMP)
	// Two fragments in vault 0, one in vault 3.
	a, _ := e.Place(0, workload.Sequential("a", 10).Tuples)
	b, _ := e.Place(0, workload.Sequential("b", 5).Tuples)
	c, _ := e.Place(3, workload.Sequential("c", 7).Tuples)
	out, err := Materialize(e, []*engine.Region{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != e.NumVaults() {
		t.Fatalf("out regions = %d", len(out))
	}
	if out[0].Len() != 15 || out[3].Len() != 7 || out[1].Len() != 0 {
		t.Fatalf("lengths: %d %d %d", out[0].Len(), out[3].Len(), out[1].Len())
	}
	// Fragments stay in their vault.
	if out[0].Vault.ID != 0 || out[3].Vault.ID != 3 {
		t.Fatal("materialize moved data between vaults")
	}
	var all []tuple.Tuple
	all = append(all, a.Tuples...)
	all = append(all, b.Tuples...)
	all = append(all, c.Tuples...)
	var got []tuple.Tuple
	for _, r := range out {
		got = append(got, r.Tuples...)
	}
	if !tuple.SameMultiset(all, got) {
		t.Fatal("materialize lost tuples")
	}
}

func TestNodeNames(t *testing.T) {
	n := &GroupBy{In: &Join{R: &Table{Label: "r"}, S: &Table{Label: "s"}}}
	if n.Name() != "groupby" || n.In.Name() != "join" {
		t.Fatal("node names wrong")
	}
	if (&Filter{}).Name() != "filter" || (&Sort{}).Name() != "sort" {
		t.Fatal("node names wrong")
	}
	if (&Table{Label: "x"}).Name() != "table:x" {
		t.Fatal("table name wrong")
	}
}
