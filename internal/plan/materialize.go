package plan

import (
	"github.com/ecocloud-go/mondrian/internal/engine"
)

// Materialize compacts arbitrary operator-output regions into the
// canonical one-region-per-vault input layout. Data does not move between
// vaults — each vault's fragments are concatenated locally, one fragment
// at a time as a sequential read run followed by a sequential write run,
// charged to the vault's unit. The run-based bulk access path retires
// each fragment in two calls; the engine's NoBulk mode expands them into
// the per-tuple reference loop with the same access order, so the two
// modes charge identical simulated work (the bulk-vs-reference
// differential suite pins this).
func Materialize(e *engine.Engine, outs []*engine.Region) ([]*engine.Region, error) {
	nv := e.NumVaults()
	byVault := make([][]*engine.Region, nv)
	for _, r := range outs {
		byVault[r.Vault.ID] = append(byVault[r.Vault.ID], r)
	}
	result := make([]*engine.Region, nv)
	e.BeginPhase("materialize")
	defer e.EndPhase()
	e.BeginStep(engine.StepProfile{Name: "materialize", DepIPC: 2, InstPerAccess: 4,
		StreamFed: e.Config().UseStreams})
	for v := 0; v < nv; v++ {
		total := 0
		for _, r := range byVault[v] {
			total += r.Len()
		}
		dst, err := e.AllocOut(v, maxInt(total, 1))
		if err != nil {
			return nil, err
		}
		u := unitFor(e, v)
		for _, r := range byVault[v] {
			n := r.Len()
			if n == 0 {
				continue
			}
			if u.Bulk() {
				ts := u.LoadRun(r, 0, n)
				u.ChargeRun(2, n)
				u.AppendRunLocal(dst, ts)
				continue
			}
			// Reference per-tuple path: the element-wise expansion of the
			// two runs above, in the same order.
			for i := 0; i < n; i++ {
				u.LoadTuple(r, i)
				u.Charge(2)
			}
			for i := 0; i < n; i++ {
				u.AppendLocal(dst, r.Tuples[i])
			}
		}
		result[v] = dst
	}
	e.EndStep()
	return result, nil
}

// unitFor picks the unit that compacts vault v's fragments.
func unitFor(e *engine.Engine, v int) *engine.Unit {
	if e.Config().Arch == engine.CPU {
		return e.Units()[v%len(e.Units())]
	}
	return e.UnitForVault(v)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
