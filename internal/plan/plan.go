// Package plan compiles multi-operator queries — the way the paper's
// Table 1 workloads actually use the basic operators (a Spark query is a
// chain of transformations, each lowering onto Scan, Group by, Join or
// Sort) — into fused engine phases. A plan is a tree of logical nodes;
// execution lowers each node onto the operators while tracking the
// partitioning property of every intermediate result. When an operator's
// input already carries the partitioning its shuffle would establish —
// e.g. a group-by consuming a join output that is hash-partitioned on the
// same key — the re-shuffle is elided and the probe phase runs directly
// on the vault-resident buckets. Intermediates stay in the vaults in the
// canonical one-region-per-vault layout, compacted through the bulk run
// path only when an operator's output fragments actually need it.
package plan

import (
	"fmt"
	"sort"

	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/operators"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// Node is one stage of a query plan.
type Node interface {
	// Name labels the stage in reports.
	Name() string
	exec(x *executor) (*inter, error)
}

// StageStats records one executed stage.
type StageStats struct {
	Name   string
	Ns     float64
	Tuples int
	// Fused marks a stage that consumed an input's existing partitioning
	// and skipped at least one re-shuffle.
	Fused bool
}

// Result is an executed plan's output.
type Result struct {
	// Out holds the plan output in the canonical one-region-per-vault
	// layout.
	Out []*engine.Region
	// Ordered is set when the plan's final stage is a Sort: the sorted
	// range buckets in ascending bucket order, whose concatenation is the
	// globally ordered output. (On the CPU the per-vault compaction of Out
	// interleaves buckets and keeps only the multiset; on the
	// vault-partitioned systems Ordered and Out coincide.)
	Ordered []*engine.Region
	Stages  []StageStats
	// Elisions counts the re-shuffles the compiler skipped because an
	// input's partitioning already matched the operator's.
	Elisions int
}

// Tuples flattens the plan output.
func (r *Result) Tuples() []tuple.Tuple { return operators.Gather(r.Out) }

// OrderedTuples flattens the sorted buckets (nil when the plan's final
// stage is not a Sort).
func (r *Result) OrderedTuples() []tuple.Tuple {
	if r.Ordered == nil {
		return nil
	}
	return operators.Gather(r.Ordered)
}

// Ns returns the plan's total runtime.
func (r *Result) Ns() float64 {
	var sum float64
	for _, s := range r.Stages {
		sum += s.Ns
	}
	return sum
}

// Options tunes plan execution.
type Options struct {
	// NoFusion disables re-shuffle elision: every operator re-partitions
	// its inputs from scratch, reproducing the staged one-operator-at-a-
	// time execution. The staged mode is the baseline the fused mode's
	// exchange-byte and runtime savings are measured against.
	NoFusion bool
}

type executor struct {
	e        *engine.Engine
	cfg      operators.Config
	opts     Options
	stages   []StageStats
	elisions int
	seen     map[string]int
	ordered  []*engine.Region
}

// inter is one intermediate result: its regions plus the partitioning
// property physical lowering tracks to decide re-shuffle elision.
type inter struct {
	regions []*engine.Region
	part    Partitioning
}

// Run executes a plan on the engine with fusion enabled.
func Run(e *engine.Engine, cfg operators.Config, root Node) (*Result, error) {
	return RunWith(e, cfg, root, Options{})
}

// RunWith executes a plan on the engine under explicit options.
func RunWith(e *engine.Engine, cfg operators.Config, root Node, opts Options) (*Result, error) {
	x := &executor{e: e, cfg: cfg, opts: opts}
	out, err := root.exec(x)
	if err != nil {
		return nil, err
	}
	return &Result{Out: out.regions, Ordered: x.ordered, Stages: x.stages, Elisions: x.elisions}, nil
}

// label assigns the stage its report/phase label, numbering repeats
// ("join", "join#2", ...) so every stage is addressable in manifests.
func (x *executor) label(name string) string {
	if x.seen == nil {
		x.seen = make(map[string]int)
	}
	x.seen[name]++
	if n := x.seen[name]; n > 1 {
		return fmt.Sprintf("%s#%d", name, n)
	}
	return name
}

// finish compacts an operator's output into the canonical layout (a no-op
// when the output already is one region per vault), records the stage, and
// returns the intermediate with its partitioning property.
func (x *executor) finish(label string, t0 float64, out []*engine.Region, part Partitioning, fused bool) (*inter, error) {
	out, err := x.canonicalize(out)
	if err != nil {
		return nil, err
	}
	n := 0
	for _, r := range out {
		n += r.Len()
	}
	x.stages = append(x.stages, StageStats{Name: label, Ns: x.e.TotalNs() - t0, Tuples: n, Fused: fused})
	return &inter{regions: out, part: part}, nil
}

// canonical reports whether regions already form the canonical
// one-region-per-vault layout the operators accept as input.
func (x *executor) canonical(rs []*engine.Region) bool {
	if len(rs) != x.e.NumVaults() {
		return false
	}
	for v, r := range rs {
		if r == nil || r.Vault.ID != v {
			return false
		}
	}
	return true
}

// canonicalize compacts regions into the canonical layout when needed.
func (x *executor) canonicalize(rs []*engine.Region) ([]*engine.Region, error) {
	if x.canonical(rs) {
		return rs, nil
	}
	return Materialize(x.e, rs)
}

// --- leaf -------------------------------------------------------------------

// Table is a leaf node: data already resident in the vaults, one region
// per vault.
type Table struct {
	Label   string
	Regions []*engine.Region
}

// Name implements Node.
func (t *Table) Name() string { return "table:" + t.Label }

func (t *Table) exec(x *executor) (*inter, error) {
	if len(t.Regions) != x.e.NumVaults() {
		return nil, fmt.Errorf("plan: table %q has %d regions for %d vaults",
			t.Label, len(t.Regions), x.e.NumVaults())
	}
	return &inter{regions: t.Regions}, nil
}

// --- operators --------------------------------------------------------------

// Filter keeps tuples whose key equals Needle (LookupKey/Filter → Scan).
type Filter struct {
	In     Node
	Needle tuple.Key
}

// Name implements Node.
func (f *Filter) Name() string { return "filter" }

func (f *Filter) exec(x *executor) (*inter, error) {
	in, err := f.In.exec(x)
	if err != nil {
		return nil, err
	}
	x.ordered = nil
	label := x.label("filter")
	t0 := x.e.TotalNs()
	x.e.SetPhasePrefix(label)
	defer x.e.SetPhasePrefix("")
	res, err := operators.Scan(x.e, x.cfg, in.regions, f.Needle)
	if err != nil {
		return nil, err
	}
	// Scan never moves tuples between vaults, so the input's partitioning
	// property survives filtering.
	return x.finish(label, t0, res.Out, in.part, false)
}

// Join equi-joins two inputs on key (FK relationship expected from R to S).
type Join struct {
	R, S Node
}

// Name implements Node.
func (j *Join) Name() string { return "join" }

func (j *Join) exec(x *executor) (*inter, error) {
	r, err := j.R.exec(x)
	if err != nil {
		return nil, err
	}
	s, err := j.S.exec(x)
	if err != nil {
		return nil, err
	}
	x.ordered = nil
	label := x.label("join")
	t0 := x.e.TotalNs()
	x.e.SetPhasePrefix(label)
	defer x.e.SetPhasePrefix("")

	if !x.vaultFusion() {
		res, err := operators.Join(x.e, x.cfg, r.regions, s.regions)
		if err != nil {
			return nil, err
		}
		return x.finish(label, t0, res.Out, x.outPart(PartHash, 0), false)
	}
	// Per-side lowering: a side whose partitioning already matches the
	// join's hash partitioner keeps its vault-resident buckets; the other
	// side re-shuffles.
	part := operators.Partitioner{Buckets: x.e.NumVaults()}
	rBuckets, rFused, err := x.bucketize(r, part)
	if err != nil {
		return nil, fmt.Errorf("partitioning R: %w", err)
	}
	sBuckets, sFused, err := x.bucketize(s, part)
	if err != nil {
		return nil, fmt.Errorf("partitioning S: %w", err)
	}
	res, err := operators.JoinProbe(x.e, x.cfg, rBuckets, sBuckets)
	if err != nil {
		return nil, err
	}
	return x.finish(label, t0, res.Out, x.outPart(PartHash, 0), rFused || sFused)
}

// bucketize returns hash-partitioned buckets for one join input: the
// input's own regions when its partitioning already matches the join
// partitioner (re-shuffle elided), otherwise a fresh partition phase.
func (x *executor) bucketize(in *inter, part operators.Partitioner) ([]*engine.Region, bool, error) {
	if hashCompatible(in.part, part.Buckets) {
		x.elisions++
		return in.regions, true, nil
	}
	pres, err := operators.PartitionPhase(x.e, x.cfg, in.regions, part)
	if err != nil {
		return nil, false, err
	}
	return pres.Buckets, false, nil
}

// GroupBy aggregates the input by key (six aggregate tuples per group).
type GroupBy struct {
	In Node
}

// Name implements Node.
func (g *GroupBy) Name() string { return "groupby" }

func (g *GroupBy) exec(x *executor) (*inter, error) {
	in, err := g.In.exec(x)
	if err != nil {
		return nil, err
	}
	x.ordered = nil
	label := x.label("groupby")
	t0 := x.e.TotalNs()
	x.e.SetPhasePrefix(label)
	defer x.e.SetPhasePrefix("")

	if x.vaultFusion() && groupCompatible(in.part, x.e.NumVaults()) {
		res, err := operators.GroupByProbe(x.e, x.cfg, in.regions)
		if err != nil {
			return nil, err
		}
		x.elisions++
		// Aggregation emits each group in its key's bucket, so the input's
		// partitioning (hash or range) carries through to the aggregates.
		return x.finish(label, t0, res.Out, in.part, true)
	}
	res, err := operators.GroupBy(x.e, x.cfg, in.regions)
	if err != nil {
		return nil, err
	}
	return x.finish(label, t0, res.Out, x.outPart(PartHash, 0), false)
}

// Sort orders the input globally by key.
type Sort struct {
	In Node
	// KeySpace optionally overrides the range partitioner's bound for
	// this stage; zero keeps the executor's configured key space (which
	// may itself be zero, meaning "derive from the data").
	KeySpace uint64
}

// Name implements Node.
func (s *Sort) Name() string { return "sort" }

func (s *Sort) exec(x *executor) (*inter, error) {
	in, err := s.In.exec(x)
	if err != nil {
		return nil, err
	}
	x.ordered = nil
	label := x.label("sort")
	t0 := x.e.TotalNs()
	x.e.SetPhasePrefix(label)
	defer x.e.SetPhasePrefix("")

	cfg := x.cfg
	if s.KeySpace != 0 {
		// Override only when the node sets a bound: unconditionally
		// copying the (possibly zero) field would clobber the configured
		// key space and silently fall back to deriving it from the data.
		cfg.KeySpace = s.KeySpace
	}
	ks := operators.SortKeySpace(cfg, in.regions)
	var res *operators.SortResult
	fused := false
	if x.vaultFusion() && rangeCompatible(in.part, x.e.NumVaults(), ks) {
		res, err = operators.SortProbe(x.e, cfg, in.regions)
		if err == nil {
			x.elisions++
			fused = true
		}
	} else {
		res, err = operators.Sort(x.e, cfg, in.regions)
	}
	if err != nil {
		return nil, err
	}
	out, err := x.finish(label, t0, res.Sorted, x.outPart(PartRange, ks), fused)
	if err != nil {
		return nil, err
	}
	x.ordered = res.Sorted
	return out, nil
}

// --- multi-way join ---------------------------------------------------------

// MultiJoin joins a fact input against several dimension inputs on the
// shared key (a TPC-H-style star shape). Compilation orders the joins
// greedily without statistics — smallest estimated dimension first — into
// a left-deep chain whose running intermediate stays hash-partitioned, so
// on the vault-partitioned systems every join after the first elides its
// probe-side re-shuffle.
type MultiJoin struct {
	Fact Node
	Dims []Node
}

// Name implements Node.
func (m *MultiJoin) Name() string { return "multijoin" }

// Chain returns the left-deep Join chain the greedy ordering produces.
func (m *MultiJoin) Chain() (Node, error) {
	if len(m.Dims) == 0 {
		return nil, fmt.Errorf("plan: multijoin needs at least one dimension")
	}
	dims := make([]Node, len(m.Dims))
	copy(dims, m.Dims)
	sort.SliceStable(dims, func(i, j int) bool {
		return estimateRows(dims[i]) < estimateRows(dims[j])
	})
	probe := m.Fact
	for _, d := range dims {
		probe = &Join{R: d, S: probe}
	}
	return probe, nil
}

func (m *MultiJoin) exec(x *executor) (*inter, error) {
	chain, err := m.Chain()
	if err != nil {
		return nil, err
	}
	return chain.exec(x)
}

// estimateRows is the planner's statistics-free cardinality estimate:
// leaf sizes are known exactly; operator outputs are bounded by their
// probe-side input (foreign-key joins emit at most one tuple per probe
// tuple; filters and aggregates only reshape downward, and the estimate
// only has to rank dimensions, not predict sizes).
func estimateRows(n Node) int {
	switch t := n.(type) {
	case *Table:
		total := 0
		for _, r := range t.Regions {
			if r != nil {
				total += r.Len()
			}
		}
		return total
	case *Filter:
		return estimateRows(t.In)
	case *Join:
		return estimateRows(t.S)
	case *MultiJoin:
		return estimateRows(t.Fact)
	case *GroupBy:
		return estimateRows(t.In)
	case *Sort:
		return estimateRows(t.In)
	default:
		return 0
	}
}
