package plan

import (
	"testing"

	"github.com/ecocloud-go/mondrian/internal/cache"
	"github.com/ecocloud-go/mondrian/internal/cores"
	"github.com/ecocloud-go/mondrian/internal/dram"
	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/noc"
	"github.com/ecocloud-go/mondrian/internal/operators"
	"github.com/ecocloud-go/mondrian/internal/tuple"
	"github.com/ecocloud-go/mondrian/internal/workload"
)

func engineCfg(arch engine.Arch) engine.Config {
	g := dram.HMCGeometry()
	g.CapacityBytes = 16 << 20
	cfg := engine.Config{
		Cubes: 2, VaultsPer: 4,
		Geometry: g, Timing: dram.HMCTiming(),
		ObjectSize: tuple.Size, BarrierNs: 1000,
		Topology: noc.FullyConnected,
	}
	switch arch {
	case engine.CPU:
		cfg.Arch = engine.CPU
		cfg.Core = cores.CortexA57()
		cfg.CPUCores = 4
		cfg.Topology = noc.Star
		cfg.L1 = cache.L1D32K()
		cfg.LLC = cache.LLC4M()
	case engine.NMP:
		cfg.Arch = engine.NMP
		cfg.Core = cores.Krait400()
		cfg.L1 = cache.L1D32K()
	case engine.Mondrian:
		cfg.Arch = engine.Mondrian
		cfg.Core = cores.CortexA35Mondrian()
		cfg.Permutable = true
		cfg.UseStreams = true
	}
	return cfg
}

func testEngine(t *testing.T, arch engine.Arch) *engine.Engine {
	t.Helper()
	e, err := engine.New(engineCfg(arch))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func opCfg(arch engine.Arch) operators.Config {
	cfg := operators.Config{Costs: operators.DefaultCosts(), KeySpace: 1 << 16, CPUBuckets: 256}
	if arch == engine.Mondrian {
		cfg.Costs = operators.MondrianCosts()
		cfg.SortProbe = true
	}
	return cfg
}

func table(t *testing.T, e *engine.Engine, label string, rel *tuple.Relation) *Table {
	t.Helper()
	parts := rel.SplitEven(e.NumVaults())
	regions := make([]*engine.Region, len(parts))
	for v, p := range parts {
		r, err := e.Place(v, p.Tuples)
		if err != nil {
			t.Fatal(err)
		}
		regions[v] = r
	}
	return &Table{Label: label, Regions: regions}
}

func TestJoinThenGroupBy(t *testing.T) {
	rRel, sRel, err := workload.FKPair(workload.Config{Seed: 3, Tuples: 4000}, 500)
	if err != nil {
		t.Fatal(err)
	}
	joined := operators.RefJoin(rRel.Tuples, sRel.Tuples)
	want := operators.RefGroupByTuples(joined)

	for _, arch := range []engine.Arch{engine.CPU, engine.NMP, engine.Mondrian} {
		t.Run(arch.String(), func(t *testing.T) {
			e := testEngine(t, arch)
			root := &GroupBy{In: &Join{
				R: table(t, e, "R", rRel),
				S: table(t, e, "S", sRel),
			}}
			res, err := Run(e, opCfg(arch), root)
			if err != nil {
				t.Fatal(err)
			}
			if !tuple.SameMultiset(res.Tuples(), want) {
				t.Fatal("join→groupby output mismatch")
			}
			if len(res.Stages) != 2 {
				t.Fatalf("stages = %d", len(res.Stages))
			}
			if res.Ns() <= 0 {
				t.Fatal("no plan time")
			}
			// The group-by consumes the join's hash-partitioned output
			// without re-shuffling on the vault-partitioned systems.
			wantElisions := 1
			if arch == engine.CPU {
				wantElisions = 0
			}
			if res.Elisions != wantElisions {
				t.Fatalf("elisions = %d, want %d", res.Elisions, wantElisions)
			}
			if fused := res.Stages[1].Fused; fused != (wantElisions == 1) {
				t.Fatalf("groupby stage fused = %v", fused)
			}
		})
	}
}

func TestFilterThenSort(t *testing.T) {
	rel := workload.Uniform("in", workload.Config{Seed: 5, Tuples: 5000, KeySpace: 64})
	needle, count := workload.ScanTarget(rel, 7)
	e := testEngine(t, engine.Mondrian)
	root := &Sort{In: &Filter{In: table(t, e, "in", rel), Needle: needle}}
	res, err := Run(e, opCfg(engine.Mondrian), root)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Tuples()
	if len(got) != count {
		t.Fatalf("filtered %d tuples, want %d", len(got), count)
	}
	for _, tp := range got {
		if tp.Key != needle {
			t.Fatalf("foreign key %d survived the filter", tp.Key)
		}
	}
}

func TestSortPlanPreservesMultiset(t *testing.T) {
	rel := workload.Uniform("in", workload.Config{Seed: 9, Tuples: 6000, KeySpace: 1 << 16})
	e := testEngine(t, engine.NMP)
	res, err := Run(e, opCfg(engine.NMP), &Sort{In: table(t, e, "in", rel)})
	if err != nil {
		t.Fatal(err)
	}
	if !tuple.SameMultiset(res.Tuples(), rel.Tuples) {
		t.Fatal("sort plan changed the multiset")
	}
	// On vault-partitioned systems the materialized layout is globally
	// ordered: vault v holds range bucket v.
	var last tuple.Key
	for _, r := range res.Out {
		for i, tp := range r.Tuples {
			if tp.Key < last {
				t.Fatalf("global order broken at vault %d index %d", r.Vault.ID, i)
			}
			last = tp.Key
		}
	}
	// A sort root also exposes the ordered buckets directly.
	ordered := res.OrderedTuples()
	for i := 1; i < len(ordered); i++ {
		if ordered[i].Key < ordered[i-1].Key {
			t.Fatalf("Ordered broken at %d", i)
		}
	}
	if !tuple.SameMultiset(ordered, rel.Tuples) {
		t.Fatal("Ordered changed the multiset")
	}
}

// TestSortKeySpaceNotClobbered is the regression test for the seed's Sort
// stage bug: the executor copied Sort.KeySpace into the operator config
// unconditionally, so a node leaving it zero wiped the configured key
// space and silently re-derived the bound from the data. With keys in
// [0,256) under a configured 1<<16 bound, the correct range partition puts
// every tuple in bucket 0; the clobbered config spread them over all
// vaults.
func TestSortKeySpaceNotClobbered(t *testing.T) {
	rel := workload.Uniform("in", workload.Config{Seed: 11, Tuples: 3000, KeySpace: 256})
	e := testEngine(t, engine.NMP)
	cfg := opCfg(engine.NMP) // KeySpace: 1 << 16
	// All tuples legitimately land in range bucket 0 — provision for it.
	cfg.Overprovision = 9
	res, err := Run(e, cfg, &Sort{In: table(t, e, "in", rel)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out[0].Len() != len(rel.Tuples) {
		t.Fatalf("configured key space ignored: vault 0 holds %d of %d tuples",
			res.Out[0].Len(), len(rel.Tuples))
	}
	// An explicit node override still takes effect.
	e2 := testEngine(t, engine.NMP)
	res2, err := Run(e2, cfg, &Sort{In: table(t, e2, "in", rel), KeySpace: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Out[0].Len() == len(rel.Tuples) {
		t.Fatal("node key-space override had no effect")
	}
	if !tuple.SameMultiset(res2.Tuples(), rel.Tuples) {
		t.Fatal("override run changed the multiset")
	}
}

func TestTableShapeValidation(t *testing.T) {
	e := testEngine(t, engine.NMP)
	bad := &Table{Label: "bad", Regions: nil}
	if _, err := Run(e, opCfg(engine.NMP), bad); err == nil {
		t.Fatal("mis-shaped table accepted")
	}
}

func TestMaterializeCompactsLocally(t *testing.T) {
	e := testEngine(t, engine.NMP)
	// Two fragments in vault 0, one in vault 3.
	a, _ := e.Place(0, workload.Sequential("a", 10).Tuples)
	b, _ := e.Place(0, workload.Sequential("b", 5).Tuples)
	c, _ := e.Place(3, workload.Sequential("c", 7).Tuples)
	out, err := Materialize(e, []*engine.Region{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != e.NumVaults() {
		t.Fatalf("out regions = %d", len(out))
	}
	if out[0].Len() != 15 || out[3].Len() != 7 || out[1].Len() != 0 {
		t.Fatalf("lengths: %d %d %d", out[0].Len(), out[3].Len(), out[1].Len())
	}
	// Fragments stay in their vault.
	if out[0].Vault.ID != 0 || out[3].Vault.ID != 3 {
		t.Fatal("materialize moved data between vaults")
	}
	var all []tuple.Tuple
	all = append(all, a.Tuples...)
	all = append(all, b.Tuples...)
	all = append(all, c.Tuples...)
	var got []tuple.Tuple
	for _, r := range out {
		got = append(got, r.Tuples...)
	}
	if !tuple.SameMultiset(all, got) {
		t.Fatal("materialize lost tuples")
	}
}

// TestMaterializeBulkDifferential pins the satellite fix: the compaction
// pass now rides the run-based bulk access path, and NoBulk's per-tuple
// reference loop must charge exactly the same simulated work.
func TestMaterializeBulkDifferential(t *testing.T) {
	for _, arch := range []engine.Arch{engine.CPU, engine.NMP, engine.Mondrian} {
		t.Run(arch.String(), func(t *testing.T) {
			run := func(noBulk bool) (float64, []tuple.Tuple) {
				cfg := engineCfg(arch)
				cfg.NoBulk = noBulk
				e, err := engine.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				a, _ := e.Place(0, workload.Sequential("a", 1000).Tuples)
				b, _ := e.Place(0, workload.Sequential("b", 333).Tuples)
				c, _ := e.Place(5, workload.Sequential("c", 777).Tuples)
				d, _ := e.Place(2, nil)
				out, err := Materialize(e, []*engine.Region{a, b, c, d})
				if err != nil {
					t.Fatal(err)
				}
				return e.TotalNs(), operators.Gather(out)
			}
			bulkNs, bulkOut := run(false)
			refNs, refOut := run(true)
			if bulkNs != refNs {
				t.Fatalf("bulk %v ns != reference %v ns", bulkNs, refNs)
			}
			if !tuple.SameMultiset(bulkOut, refOut) {
				t.Fatal("bulk and reference outputs differ")
			}
		})
	}
}

// TestStagedMatchesFused pins the compiler's core guarantee: eliding a
// re-shuffle changes cost, never the result. The fused run must produce
// the staged run's exact output multiset while skipping at least one
// partition phase and finishing in less simulated time.
func TestStagedMatchesFused(t *testing.T) {
	rRel, sRel, err := workload.FKPair(workload.Config{Seed: 13, Tuples: 6000}, 700)
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range []engine.Arch{engine.NMP, engine.Mondrian} {
		t.Run(arch.String(), func(t *testing.T) {
			build := func(e *engine.Engine) Node {
				// The sort's range bound matches the join key domain
				// ([0, 700)); the config's 1<<16 default would funnel
				// every aggregate into range bucket 0.
				return &Sort{KeySpace: 700, In: &GroupBy{In: &Join{
					R: table(t, e, "R", rRel),
					S: table(t, e, "S", sRel),
				}}}
			}
			eF := testEngine(t, arch)
			fused, err := RunWith(eF, opCfg(arch), build(eF), Options{})
			if err != nil {
				t.Fatal(err)
			}
			eS := testEngine(t, arch)
			staged, err := RunWith(eS, opCfg(arch), build(eS), Options{NoFusion: true})
			if err != nil {
				t.Fatal(err)
			}
			if staged.Elisions != 0 {
				t.Fatalf("staged run elided %d shuffles", staged.Elisions)
			}
			if fused.Elisions < 1 {
				t.Fatal("fused run elided nothing")
			}
			if !tuple.SameMultiset(fused.Tuples(), staged.Tuples()) {
				t.Fatal("fusion changed the output multiset")
			}
			want := operators.RefGroupByTuples(operators.RefJoin(rRel.Tuples, sRel.Tuples))
			if !tuple.SameMultiset(fused.Tuples(), want) {
				t.Fatal("fused output does not match the reference")
			}
			if eF.TotalNs() >= eS.TotalNs() {
				t.Fatalf("fused %v ns not faster than staged %v ns", eF.TotalNs(), eS.TotalNs())
			}
		})
	}
}

// TestRangeFusionChain exercises the range-partition elision rule: a
// group-by over a sort output runs vault-local (range buckets isolate
// keys just as well as hash buckets), and a second sort over the
// key-preserving aggregation reuses the same range partition.
func TestRangeFusionChain(t *testing.T) {
	rel := workload.Uniform("in", workload.Config{Seed: 17, Tuples: 5000, KeySpace: 1 << 12})
	e := testEngine(t, engine.NMP)
	cfg := opCfg(engine.NMP)
	cfg.KeySpace = 1 << 12
	root := &Sort{In: &GroupBy{In: &Sort{In: table(t, e, "in", rel)}}}
	res, err := Run(e, cfg, root)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elisions != 2 {
		t.Fatalf("elisions = %d, want 2 (groupby on range + sort reuse)", res.Elisions)
	}
	if !tuple.SameMultiset(res.Tuples(), operators.RefGroupByTuples(rel.Tuples)) {
		t.Fatal("fused chain output mismatch")
	}
	ordered := res.OrderedTuples()
	for i := 1; i < len(ordered); i++ {
		if ordered[i].Key < ordered[i-1].Key {
			t.Fatalf("order broken at %d", i)
		}
	}
}

// TestMultiJoinGreedyOrder pins the statistics-free join ordering: the
// smallest dimension joins first (innermost), regardless of the order the
// caller listed them, and the star output matches the reference
// composition.
func TestMultiJoinGreedyOrder(t *testing.T) {
	r1, sRel, err := workload.FKPair(workload.Config{Seed: 19, Tuples: 5000}, 600)
	if err != nil {
		t.Fatal(err)
	}
	// A second, smaller dimension over a subset of the key domain with
	// distinct deterministic payloads.
	r2 := tuple.NewRelation("R2", 300)
	for i := 0; i < 300; i++ {
		r2.Append1(tuple.Tuple{Key: tuple.Key(i), Val: tuple.Value(uint64(i)*2654435761 + 7)})
	}

	e := testEngine(t, engine.NMP)
	big := table(t, e, "R1", r1)
	small := table(t, e, "R2", r2)
	m := &MultiJoin{Fact: table(t, e, "S", sRel), Dims: []Node{big, small}}

	chain, err := m.Chain()
	if err != nil {
		t.Fatal(err)
	}
	outer, ok := chain.(*Join)
	if !ok || outer.R != Node(big) {
		t.Fatal("largest dimension should join last (outermost)")
	}
	inner, ok := outer.S.(*Join)
	if !ok || inner.R != Node(small) {
		t.Fatal("smallest dimension should join first (innermost)")
	}

	res, err := Run(e, opCfg(engine.NMP), &GroupBy{In: m})
	if err != nil {
		t.Fatal(err)
	}
	want := operators.RefGroupByTuples(
		operators.RefJoin(r1.Tuples, operators.RefJoin(r2.Tuples, sRel.Tuples)))
	if !tuple.SameMultiset(res.Tuples(), want) {
		t.Fatal("star join output mismatch")
	}
	// The second join's probe side and the group-by both reuse the
	// running intermediate's hash partition.
	if res.Elisions != 2 {
		t.Fatalf("elisions = %d, want 2", res.Elisions)
	}
	if (&MultiJoin{}).Name() != "multijoin" {
		t.Fatal("multijoin name wrong")
	}
	if _, err := (&MultiJoin{Fact: big}).Chain(); err == nil {
		t.Fatal("dimensionless multijoin accepted")
	}
}

func TestNodeNames(t *testing.T) {
	n := &GroupBy{In: &Join{R: &Table{Label: "r"}, S: &Table{Label: "s"}}}
	if n.Name() != "groupby" || n.In.Name() != "join" {
		t.Fatal("node names wrong")
	}
	if (&Filter{}).Name() != "filter" || (&Sort{}).Name() != "sort" {
		t.Fatal("node names wrong")
	}
	if (&Table{Label: "x"}).Name() != "table:x" {
		t.Fatal("table name wrong")
	}
}
