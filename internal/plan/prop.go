package plan

import (
	"github.com/ecocloud-go/mondrian/internal/engine"
)

// PartKind classifies an intermediate result's partitioning property.
type PartKind int

// The partitioning kinds physical lowering tracks.
const (
	// PartNone promises nothing about where keys live.
	PartNone PartKind = iota
	// PartHash: region b holds exactly the keys with key mod Buckets == b
	// — the low-order-bits hash partition Join and Group by build.
	PartHash
	// PartRange: region b holds the keys of range bucket b of the
	// high-bits split over [0, KeySpace) — the partition Sort builds.
	PartRange
)

// Partitioning is the partitioning property of an intermediate result.
// On the vault-partitioned architectures a property with Buckets equal to
// the vault count additionally means region b is resident in vault b —
// exactly the placement a fresh shuffle would establish — which is what
// makes re-shuffle elision sound.
type Partitioning struct {
	Kind    PartKind
	Buckets int
	// KeySpace is the range split's exclusive key bound (PartRange only).
	KeySpace uint64
}

// vaultFusion reports whether re-shuffle elision is available: only the
// vault-partitioned architectures co-locate partition bucket b with vault
// b's compute unit (the CPU's shared cores re-bucket at CPUBuckets
// granularity every time), and Options.NoFusion turns it off to reproduce
// the staged baseline.
func (x *executor) vaultFusion() bool {
	return !x.opts.NoFusion && x.e.Config().Arch != engine.CPU
}

// outPart is the partitioning property of an operator output whose
// partition phase (or fused equivalent) placed bucket b in vault b. On
// the CPU the buckets live wherever its shared cores put them, so the
// output carries no property.
func (x *executor) outPart(kind PartKind, ks uint64) Partitioning {
	if x.e.Config().Arch == engine.CPU {
		return Partitioning{}
	}
	return Partitioning{Kind: kind, Buckets: x.e.NumVaults(), KeySpace: ks}
}

// hashCompatible reports whether an input already carries the hash
// partition a Join side needs: same bucket count, hash placement. A range
// partition does not qualify — its buckets hold key intervals, not hash
// classes.
func hashCompatible(p Partitioning, buckets int) bool {
	return p.Kind == PartHash && p.Buckets == buckets
}

// groupCompatible reports whether an input satisfies Group by's
// requirement that every occurrence of a key lives in a single bucket —
// either a hash or a range partition over the right bucket count does.
func groupCompatible(p Partitioning, buckets int) bool {
	return (p.Kind == PartHash || p.Kind == PartRange) && p.Buckets == buckets
}

// rangeCompatible reports whether an input already carries exactly the
// range partition Sort would build: same bucket count and the same key
// bound (a different bound draws different bucket boundaries).
func rangeCompatible(p Partitioning, buckets int, ks uint64) bool {
	return p.Kind == PartRange && p.Buckets == buckets && p.KeySpace == ks
}
