package report

import (
	"encoding/json"
	"io"

	"github.com/ecocloud-go/mondrian/internal/simulate"
)

// JSON export of the full evaluation, for plotting pipelines and
// regression tracking. Enum keys are rendered as their display names.

// JSONTable5Row is one Table 5 row. The paper_* fields are pointers so a
// system the paper does not report is omitted rather than rendered as a
// published value of zero.
type JSONTable5Row struct {
	System        string   `json:"system"`
	SpeedupVsCPU  float64  `json:"speedup_vs_cpu"`
	PaperSpeedup  *float64 `json:"paper_speedup,omitempty"`
	DistBWGBs     float64  `json:"dist_bw_gbs_per_vault"`
	PaperDistBWGB *float64 `json:"paper_dist_bw_gbs,omitempty"`
}

// JSONSeries is one figure series (per-operator values for one system).
type JSONSeries struct {
	System string             `json:"system"`
	Values map[string]float64 `json:"values"`
}

// JSONFig8Entry is one energy breakdown.
type JSONFig8Entry struct {
	System    string             `json:"system"`
	Operator  string             `json:"operator"`
	Fractions map[string]float64 `json:"fractions"`
	TotalJ    float64            `json:"total_j"`
}

// JSONReport bundles every regenerated artifact.
type JSONReport struct {
	Table5 []JSONTable5Row `json:"table5"`
	Fig6   []JSONSeries    `json:"fig6_probe_speedup"`
	Fig7   []JSONSeries    `json:"fig7_overall_speedup"`
	Fig8   []JSONFig8Entry `json:"fig8_energy_breakdown"`
	Fig9   []JSONSeries    `json:"fig9_efficiency"`
}

func toSeries(in []simulate.FigSeries) []JSONSeries {
	out := make([]JSONSeries, 0, len(in))
	for _, s := range in {
		vals := make(map[string]float64, len(s.Speedups))
		for op, v := range s.Speedups {
			vals[op.String()] = v
		}
		out = append(out, JSONSeries{System: s.System.String(), Values: vals})
	}
	return out
}

// BuildJSON regenerates every artifact through the suite.
func BuildJSON(su *simulate.Suite) (*JSONReport, error) {
	rep := &JSONReport{}
	rows, err := su.Table5()
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		row := JSONTable5Row{
			System:       r.System.String(),
			SpeedupVsCPU: r.SpeedupVsCPU,
			DistBWGBs:    r.DistBWPerVaultGBs,
		}
		if v, ok := PaperTable5[r.System]; ok {
			row.PaperSpeedup = &v
		}
		if v, ok := PaperDistBW[r.System]; ok {
			row.PaperDistBWGB = &v
		}
		rep.Table5 = append(rep.Table5, row)
	}
	if s, err := su.Fig6(); err != nil {
		return nil, err
	} else {
		rep.Fig6 = toSeries(s)
	}
	if s, err := su.Fig7(); err != nil {
		return nil, err
	} else {
		rep.Fig7 = toSeries(s)
	}
	entries, err := su.Fig8()
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		f := e.Breakdown.Fractions()
		rep.Fig8 = append(rep.Fig8, JSONFig8Entry{
			System:   e.System.String(),
			Operator: e.Operator.String(),
			Fractions: map[string]float64{
				"dram_dynamic": f[0],
				"dram_static":  f[1],
				"cores":        f[2],
				"serdes_noc":   f[3],
			},
			TotalJ: e.Breakdown.Total(),
		})
	}
	if s, err := su.Fig9(); err != nil {
		return nil, err
	} else {
		rep.Fig9 = toSeries(s)
	}
	return rep, nil
}

// WriteJSON regenerates every artifact and writes it as indented JSON.
func WriteJSON(w io.Writer, su *simulate.Suite) error {
	rep, err := BuildJSON(su)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
