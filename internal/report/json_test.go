package report

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/ecocloud-go/mondrian/internal/simulate"
)

func TestBuildJSONAndWriteJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact build in -short mode")
	}
	su := simulate.NewSuite(simulate.TestParams())
	rep, err := BuildJSON(su)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table5) != 4 {
		t.Fatalf("table5 rows = %d", len(rep.Table5))
	}
	if len(rep.Fig6) != 3 || len(rep.Fig7) != 3 || len(rep.Fig9) != 3 {
		t.Fatalf("series counts: %d %d %d", len(rep.Fig6), len(rep.Fig7), len(rep.Fig9))
	}
	if len(rep.Fig8) != 16 {
		t.Fatalf("fig8 entries = %d", len(rep.Fig8))
	}
	for _, e := range rep.Fig8 {
		sum := 0.0
		for _, f := range e.Fractions {
			sum += f
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("%s/%s fractions sum %v", e.System, e.Operator, sum)
		}
	}
	var b strings.Builder
	if err := WriteJSON(&b, su); err != nil {
		t.Fatal(err)
	}
	// The emitted document must round-trip.
	var back JSONReport
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(back.Table5) != 4 || back.Table5[0].System != "NMP" {
		t.Fatalf("round-tripped table5: %+v", back.Table5)
	}
	for _, s := range back.Fig6 {
		if _, ok := s.Values["Join"]; !ok {
			t.Fatalf("series %s missing Join", s.System)
		}
	}
}
