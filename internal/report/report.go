// Package report renders the reproduction's tables and figures as text:
// aligned ASCII tables for the paper's tables and log-scale bar charts for
// its figures, each annotated with the published value where one exists.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/ecocloud-go/mondrian/internal/simulate"
)

// PaperTable5 holds the published partition speedups (Table 5).
var PaperTable5 = map[simulate.System]float64{
	simulate.NMP:            58,
	simulate.NMPPerm:        98,
	simulate.MondrianNoPerm: 142,
	simulate.Mondrian:       273,
}

// PaperDistBW holds the published per-vault distribution bandwidths (§7.1).
var PaperDistBW = map[simulate.System]float64{
	simulate.NMP:            1.0,
	simulate.NMPPerm:        1.6,
	simulate.MondrianNoPerm: 2.4,
	simulate.Mondrian:       4.5,
}

// paperCell formats a published value from one of the Paper* maps, or
// "n/a" for a system the paper does not report (custom variants,
// NMP-rand/-seq) — a zero there would read as a measured published zero.
func paperCell(m map[simulate.System]float64, s simulate.System, format string) string {
	v, ok := m[s]
	if !ok {
		return "n/a"
	}
	return fmt.Sprintf(format, v)
}

// WriteTable5 renders the partition-speedup table.
func WriteTable5(w io.Writer, rows []simulate.Table5Row) {
	fmt.Fprintln(w, "Table 5: partition-phase speedup vs CPU (Join)")
	fmt.Fprintf(w, "  %-16s %12s %12s %14s %16s\n",
		"System", "measured", "paper", "BW GB/s/vault", "paper BW GB/s")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-16s %11.1fx %12s %14.2f %16s\n",
			r.System, r.SpeedupVsCPU, paperCell(PaperTable5, r.System, "%.0fx"),
			r.DistBWPerVaultGBs, paperCell(PaperDistBW, r.System, "%.1f"))
	}
	fmt.Fprintln(w)
}

// bar renders a log-scale bar for a speedup value (1 → empty, 100 → full).
func bar(v float64, width int) string {
	if v <= 1 {
		return ""
	}
	frac := math.Log10(v) / 2 // full bar at 100×
	if frac > 1 {
		frac = 1
	}
	return strings.Repeat("█", int(frac*float64(width)+0.5))
}

// WriteFig renders a per-operator grouped bar figure (log scale).
func WriteFig(w io.Writer, title string, series []simulate.FigSeries) {
	fmt.Fprintln(w, title)
	for _, op := range simulate.Operators() {
		fmt.Fprintf(w, "  %s\n", op)
		for _, s := range series {
			v, ok := s.Speedups[op]
			if !ok {
				// A series without this operator is unmeasured, not 0.0×.
				fmt.Fprintf(w, "    %-16s %9s\n", s.System, "n/a")
				continue
			}
			fmt.Fprintf(w, "    %-16s %8.1fx %s\n", s.System, v, bar(v, 40))
		}
	}
	fmt.Fprintln(w)
}

// WriteFig8 renders the energy-breakdown figure as stacked percentages.
func WriteFig8(w io.Writer, entries []simulate.Fig8Entry) {
	fmt.Fprintln(w, "Figure 8: energy breakdown (fractions of total)")
	fmt.Fprintf(w, "  %-10s %-16s %9s %10s %8s %12s %12s\n",
		"Operator", "System", "DRAM dyn", "DRAM stat", "cores", "SerDes+NOC", "total J")
	for _, e := range entries {
		f := e.Breakdown.Fractions()
		fmt.Fprintf(w, "  %-10s %-16s %8.0f%% %9.0f%% %7.0f%% %11.0f%% %12.3g\n",
			e.Operator, e.System, f[0]*100, f[1]*100, f[2]*100, f[3]*100, e.Breakdown.Total())
	}
	fmt.Fprintln(w)
}

// WriteParams prints the simulation parameters (Tables 3 and 4).
func WriteParams(w io.Writer, p simulate.Params) {
	fmt.Fprintln(w, "Table 3: system parameters")
	fmt.Fprintf(w, "  HMC: %d cubes × %d vaults, %d MB/vault, 256 B rows, 8 GB/s/vault\n",
		p.Cubes, p.VaultsPer, p.VaultCapBytes>>20)
	fmt.Fprintf(w, "  CPU: %d× Cortex-A57 2 GHz OoO (3-wide, 128 ROB), 32 KB L1d, 4 MB LLC, star SerDes\n", p.CPUCores)
	fmt.Fprintf(w, "  NMP: %d× Krait400 1 GHz OoO (3-wide, 48 ROB), L1 as CPU, fully connected\n", p.Cubes*p.VaultsPer)
	fmt.Fprintf(w, "  Mondrian: %d× Cortex-A35 1 GHz in-order dual-issue, 1024-bit SIMD, 8×384 B stream buffers\n",
		p.Cubes*p.VaultsPer)
	fmt.Fprintf(w, "  DRAM timing (ns): tCK 1.6, tRAS 22.4, tRCD 11.2, tCAS 11.2, tWR 14.4, tRP 11.2\n")
	fmt.Fprintf(w, "  Workload: |S| = %d tuples, |R| = %d tuples, 16 B tuples, uniform keys < %d\n",
		p.STuples, p.RTuples, p.KeySpace)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Table 4: power and energy of system components")
	e := p.Energy
	fmt.Fprintf(w, "  CPU core %.1f W, NMP core %.0f mW, Mondrian core %.0f mW\n",
		e.CPUCoreW, e.NMPCoreW*1000, e.MondrianCoreW*1000)
	fmt.Fprintf(w, "  LLC access %.2f nJ, leakage %.0f mW; NoC %.2f pJ/bit/mm, leakage %.0f mW\n",
		e.LLCAccessJ*1e9, e.LLCLeakW*1000, e.NoCPerBitMMJ*1e12, e.NoCLeakW*1000)
	fmt.Fprintf(w, "  HMC background %.0f mW/cube, activation %.2f nJ, access %.0f pJ/bit\n",
		e.HMCBackgroundW*1000, e.ActivationJ*1e9, e.AccessJPerBit*1e12)
	fmt.Fprintf(w, "  SerDes idle %.0f pJ/bit, busy %.0f pJ/bit\n",
		e.SerDesIdleJPerBit*1e12, e.SerDesBusyJPerBit*1e12)
	fmt.Fprintln(w)
}
