package report

import (
	"strings"
	"testing"

	"github.com/ecocloud-go/mondrian/internal/energy"
	"github.com/ecocloud-go/mondrian/internal/simulate"
)

func TestWriteTable5(t *testing.T) {
	rows := []simulate.Table5Row{
		{System: simulate.NMP, SpeedupVsCPU: 51.7, DistBWPerVaultGBs: 1.5},
		{System: simulate.Mondrian, SpeedupVsCPU: 241.9, DistBWPerVaultGBs: 7.9},
	}
	var b strings.Builder
	WriteTable5(&b, rows)
	out := b.String()
	for _, want := range []string{"Table 5", "NMP", "Mondrian", "51.7x", "241.9x", "58x", "273x"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestWriteTable5UnpublishedSystem pins the n/a rendering: a system the
// paper does not report must not show a published speedup of 0.
func TestWriteTable5UnpublishedSystem(t *testing.T) {
	rows := []simulate.Table5Row{
		{System: simulate.NMPRand, SpeedupVsCPU: 12.3, DistBWPerVaultGBs: 0.8},
	}
	var b strings.Builder
	WriteTable5(&b, rows)
	out := b.String()
	if !strings.Contains(out, "n/a") {
		t.Errorf("unpublished system must render n/a:\n%s", out)
	}
	if strings.Contains(out, "0x") || strings.Contains(out, "0.0\n") {
		t.Errorf("unpublished system rendered as a zero paper value:\n%s", out)
	}
}

func TestWriteFigMissingOperator(t *testing.T) {
	series := []simulate.FigSeries{
		{System: simulate.NMP, Speedups: map[simulate.Operator]float64{
			simulate.OpScan: 2.4, // no Sort/GroupBy/Join measurements
		}},
	}
	var b strings.Builder
	WriteFig(&b, "Figure X: test", series)
	out := b.String()
	if !strings.Contains(out, "n/a") {
		t.Errorf("missing operator must render n/a:\n%s", out)
	}
	if strings.Contains(out, "0.0x") {
		t.Errorf("missing operator rendered as 0.0x:\n%s", out)
	}
}

func TestWriteFig(t *testing.T) {
	series := []simulate.FigSeries{
		{System: simulate.NMPRand, Speedups: map[simulate.Operator]float64{
			simulate.OpScan: 2.4, simulate.OpSort: 3, simulate.OpGroupBy: 4, simulate.OpJoin: 5,
		}},
	}
	var b strings.Builder
	WriteFig(&b, "Figure 6: test", series)
	out := b.String()
	for _, want := range []string{"Figure 6", "Scan", "Join", "NMP-rand", "2.4x"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteFig8(t *testing.T) {
	entries := []simulate.Fig8Entry{{
		System:   simulate.CPU,
		Operator: simulate.OpJoin,
		Breakdown: energy.Breakdown{
			DRAMDynamic: 1, DRAMStatic: 1, Cores: 7, Network: 1,
		},
	}}
	var b strings.Builder
	WriteFig8(&b, entries)
	out := b.String()
	if !strings.Contains(out, "70%") {
		t.Errorf("cores fraction missing:\n%s", out)
	}
	if !strings.Contains(out, "Join") || !strings.Contains(out, "CPU") {
		t.Errorf("labels missing:\n%s", out)
	}
}

func TestWriteParams(t *testing.T) {
	var b strings.Builder
	WriteParams(&b, simulate.DefaultParams())
	out := b.String()
	for _, want := range []string{
		"Table 3", "Table 4", "Cortex-A57", "Krait400", "Cortex-A35",
		"1024-bit SIMD", "0.65 nJ", "2 pJ/bit", "tRCD 11.2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("params missing %q", want)
		}
	}
}

func TestBarLogScale(t *testing.T) {
	if bar(1, 40) != "" {
		t.Error("1x should have an empty bar")
	}
	ten, hundred := len([]rune(bar(10, 40))), len([]rune(bar(100, 40)))
	if ten != 20 || hundred != 40 {
		t.Errorf("log bars: 10x=%d 100x=%d, want 20 and 40", ten, hundred)
	}
	if len([]rune(bar(1000, 40))) != 40 {
		t.Error("bars must clamp at full width")
	}
}

func TestPaperConstants(t *testing.T) {
	if PaperTable5[simulate.Mondrian] != 273 || PaperTable5[simulate.NMP] != 58 {
		t.Error("published Table 5 values wrong")
	}
	if PaperDistBW[simulate.Mondrian] != 4.5 {
		t.Error("published bandwidth values wrong")
	}
}
