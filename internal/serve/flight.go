package serve

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/obs"
	"github.com/ecocloud-go/mondrian/internal/simulate"
)

// Flight recorder and live-snapshot API (DESIGN.md §17): the scheduler
// retains the last Config.FlightRecords request records in a ring and
// exposes consistent point-in-time views of its live state — all under
// the same mutex that serializes dispatch, so a snapshot never observes
// a half-accounted run.

// Flight-record outcomes.
const (
	OutcomeOK       = "ok"
	OutcomeError    = "error"
	OutcomeRejected = "rejected"
)

// FlightPhase is one engine phase inside a flight record.
type FlightPhase struct {
	Name  string  `json:"name"`
	SimNs float64 `json:"sim_ns"`
}

// FlightRecord is one request's post-mortem record: identity, admission
// outcome, queue wait, per-phase simulated breakdown, and (with
// Config.RetainSpans) the span tree behind /trace/{ticket}.
type FlightRecord struct {
	Ticket       uint64        `json:"ticket"`
	Tenant       string        `json:"tenant"`
	System       string        `json:"system"`
	Operator     string        `json:"operator"`
	ParamsDigest string        `json:"params_digest"`
	Priority     int           `json:"priority,omitempty"`
	Outcome      string        `json:"outcome"`
	Error        string        `json:"error,omitempty"`
	QueueNs      int64         `json:"queue_ns"`
	SimNs        float64       `json:"sim_ns,omitempty"`
	WallNs       int64         `json:"wall_ns,omitempty"`
	Phases       []FlightPhase `json:"phases,omitempty"`

	spans *obs.Span // retained only with Config.RetainSpans
}

// capture folds a run's phase timings (and optionally its span tree)
// into the record before execute strips them off the response.
func (r *FlightRecord) capture(phases []engine.PhaseTiming, spans *obs.Span, retainSpans bool) {
	for _, ph := range phases {
		r.Phases = append(r.Phases, FlightPhase{Name: ph.Name, SimNs: ph.SimulatedNs()})
	}
	if retainSpans {
		r.spans = spans
	}
}

// requestOperator spells a request's work item: the operator name, or
// the plan name for plan requests.
func requestOperator(req Request) string {
	if req.IsPlan {
		return req.Plan.String()
	}
	return req.Operator.String()
}

// paramsDigest fingerprints a request's workload parameters (FNV-64a
// over the JSON form; Obs is excluded by its json:"-" tag). Two requests
// with equal digests ran the same simulated configuration.
func paramsDigest(p simulate.Params) string {
	b, err := json.Marshal(p)
	if err != nil {
		return "unmarshalable"
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// recordFlightLocked appends one record to the ring (oldest evicted).
func (s *Scheduler) recordFlightLocked(rec FlightRecord) {
	if len(s.flight) == 0 {
		return
	}
	s.flight[s.flightNext] = rec
	s.flightNext = (s.flightNext + 1) % len(s.flight)
	if s.flightLen < len(s.flight) {
		s.flightLen++
	}
}

// flightRecordsLocked returns the live records oldest-first (spans
// included by reference; callers must not mutate them).
func (s *Scheduler) flightRecordsLocked() []FlightRecord {
	if s.flightLen == 0 {
		return nil
	}
	out := make([]FlightRecord, 0, s.flightLen)
	start := s.flightNext - s.flightLen
	if start < 0 {
		start += len(s.flight)
	}
	for i := 0; i < s.flightLen; i++ {
		out = append(out, s.flight[(start+i)%len(s.flight)])
	}
	return out
}

// FlightRecords returns a copy of the flight ring, oldest record first.
func (s *Scheduler) FlightRecords() []FlightRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flightRecordsLocked()
}

// takeFlightDumpLocked arms the one-shot dump: it returns the ring
// contents the first time a dump trigger fires (first admission reject
// or internal error) and nil afterwards — or always nil when no
// FlightDump writer is configured.
func (s *Scheduler) takeFlightDumpLocked() []FlightRecord {
	if s.cfg.FlightDump == nil || s.flightDumped || s.flightLen == 0 {
		return nil
	}
	s.flightDumped = true
	return s.flightRecordsLocked()
}

// writeFlightDump renders a dump outside the scheduler mutex (the
// writer may be a file or a network sink; never block dispatch on it).
func writeFlightDump(w io.Writer, records []FlightRecord) {
	if w == nil || len(records) == 0 {
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		FlightRecords []FlightRecord `json:"flight_records"`
	}{records})
}

// TraceSpans returns the retained span tree for a ticket ID, or nil when
// the record fell out of the ring, never retained spans, or never
// existed. The tree is deterministic engine output; callers must treat
// it as read-only.
func (s *Scheduler) TraceSpans(ticket uint64) *obs.Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < s.flightLen; i++ {
		idx := s.flightNext - 1 - i
		for idx < 0 {
			idx += len(s.flight)
		}
		if s.flight[idx].Ticket == ticket {
			return s.flight[idx].spans
		}
	}
	return nil
}

// TenantLive is one tenant's live view: cumulative totals plus
// rolling-window percentiles and SLO state over the last
// WindowDur × WindowSlots of traffic.
type TenantLive struct {
	Tenant   string `json:"tenant"`
	Weight   int    `json:"weight"`
	QueueLen int    `json:"queue_len"`

	Runs    uint64 `json:"runs"`
	Errors  uint64 `json:"errors,omitempty"`
	Rejects uint64 `json:"rejects,omitempty"`

	// Window percentiles: queue wait in host ns, latency in simulated ns.
	WindowRuns     uint64  `json:"window_runs"`
	QueueWaitP50Ns float64 `json:"queue_wait_p50_ns"`
	QueueWaitP95Ns float64 `json:"queue_wait_p95_ns"`
	QueueWaitP99Ns float64 `json:"queue_wait_p99_ns"`
	LatencyP50Ns   float64 `json:"latency_p50_ns"`
	LatencyP95Ns   float64 `json:"latency_p95_ns"`
	LatencyP99Ns   float64 `json:"latency_p99_ns"`

	// ExchangeBytesWindow sums exchange traffic over the window
	// (populated only with Config.HarvestExchange).
	ExchangeBytesWindow float64 `json:"exchange_bytes_window,omitempty"`

	SLOTargetNs     float64 `json:"slo_target_ns"`
	SLOObjective    float64 `json:"slo_objective"`
	SLOGoodFraction float64 `json:"slo_good_fraction"`
	SLOBurnRate     float64 `json:"slo_burn_rate"`
}

// TenantsSnapshot returns every known tenant's live view, sorted by
// tenant name, as one consistent point-in-time snapshot.
func (s *Scheduler) TenantsSnapshot() []TenantLive {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	out := make([]TenantLive, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, TenantLive{
			Tenant:              t.name,
			Weight:              t.weight,
			QueueLen:            len(t.queue),
			Runs:                t.runs,
			Errors:              t.errors,
			Rejects:             t.rejects,
			WindowRuns:          t.qwWin.Count(),
			QueueWaitP50Ns:      t.qwWin.Quantile(0.50),
			QueueWaitP95Ns:      t.qwWin.Quantile(0.95),
			QueueWaitP99Ns:      t.qwWin.Quantile(0.99),
			LatencyP50Ns:        t.latWin.Quantile(0.50),
			LatencyP95Ns:        t.latWin.Quantile(0.95),
			LatencyP99Ns:        t.latWin.Quantile(0.99),
			ExchangeBytesWindow: t.exWin.Sum(),
			SLOTargetNs:         t.slo.SLO().TargetNs,
			SLOObjective:        t.slo.SLO().Objective,
			SLOGoodFraction:     t.slo.GoodFraction(),
			SLOBurnRate:         t.slo.BurnRate(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// PublishLive refreshes the rolling-window gauges on the configured
// registry — tenant_queue_wait_p{50,95,99}_ns, tenant_latency_p*_ns,
// tenant_slo_burn_rate, tenant_queue_len, all tenant-labeled — so a
// Prometheus scrape carries the same live view /tenants serves. Call it
// just before exporting; a no-op without a registry.
func (s *Scheduler) PublishLive() {
	if s.cfg.Obs == nil {
		return
	}
	reg := s.cfg.Obs
	for _, t := range s.TenantsSnapshot() {
		label := func(name string) string { return obs.Label(name, "tenant", t.Tenant) }
		reg.Gauge(label("tenant_queue_wait_p50_ns")).Set(t.QueueWaitP50Ns)
		reg.Gauge(label("tenant_queue_wait_p95_ns")).Set(t.QueueWaitP95Ns)
		reg.Gauge(label("tenant_queue_wait_p99_ns")).Set(t.QueueWaitP99Ns)
		reg.Gauge(label("tenant_latency_p50_ns")).Set(t.LatencyP50Ns)
		reg.Gauge(label("tenant_latency_p95_ns")).Set(t.LatencyP95Ns)
		reg.Gauge(label("tenant_latency_p99_ns")).Set(t.LatencyP99Ns)
		reg.Gauge(label("tenant_slo_burn_rate")).Set(t.SLOBurnRate)
		reg.Gauge(label("tenant_queue_len")).Set(float64(t.QueueLen))
	}
}
