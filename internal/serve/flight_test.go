package serve

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/ecocloud-go/mondrian/internal/obs"
	"github.com/ecocloud-go/mondrian/internal/simulate"
)

// fakeClock drives the rolling windows deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestScheduler(cfg Config) (*Scheduler, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	cfg.now = clk.now
	return New(cfg), clk
}

func TestTicketIDsAreUnique(t *testing.T) {
	s, _ := newTestScheduler(Config{Workers: 0})
	defer s.Close()
	seen := map[uint64]bool{}
	for i := 0; i < 5; i++ {
		tk, err := s.Submit("a", scanReq(simulate.Mondrian))
		if err != nil {
			t.Fatal(err)
		}
		if tk.ID() == 0 || seen[tk.ID()] {
			t.Fatalf("ticket ID %d zero or repeated", tk.ID())
		}
		seen[tk.ID()] = true
	}
}

func TestTenantsSnapshotLivePercentiles(t *testing.T) {
	reg := obs.NewRegistry()
	s, _ := newTestScheduler(Config{Workers: 0, Obs: reg, HarvestExchange: true})
	defer s.Close()

	var tickets []*Ticket
	for i := 0; i < 4; i++ {
		// Sort moves exchange traffic, so the exchange window fills.
		tk, err := s.Submit("acme", Request{
			System: simulate.Mondrian, Operator: simulate.OpSort, Params: serveParams(),
		})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	tk, err := s.Submit("zeta", scanReq(simulate.NMP))
	if err != nil {
		t.Fatal(err)
	}
	tickets = append(tickets, tk)
	for s.dispatchNext() {
	}
	for _, tk := range tickets {
		if r := tk.Wait(); r.Err != nil {
			t.Fatal(r.Err)
		}
	}

	live := s.TenantsSnapshot()
	if len(live) != 2 || live[0].Tenant != "acme" || live[1].Tenant != "zeta" {
		t.Fatalf("snapshot = %+v, want [acme zeta]", live)
	}
	acme := live[0]
	if acme.Runs != 4 || acme.WindowRuns != 4 {
		t.Fatalf("acme runs = %d/%d, want 4/4", acme.Runs, acme.WindowRuns)
	}
	if acme.QueueWaitP50Ns <= 0 || acme.QueueWaitP99Ns < acme.QueueWaitP50Ns {
		t.Fatalf("queue-wait percentiles not live: p50=%g p99=%g", acme.QueueWaitP50Ns, acme.QueueWaitP99Ns)
	}
	if acme.LatencyP50Ns <= 0 || acme.LatencyP99Ns < acme.LatencyP50Ns {
		t.Fatalf("latency percentiles not live: p50=%g p99=%g", acme.LatencyP50Ns, acme.LatencyP99Ns)
	}
	if acme.ExchangeBytesWindow <= 0 {
		t.Fatalf("exchange window empty with HarvestExchange on")
	}
	if acme.SLOGoodFraction != 1 || acme.SLOBurnRate != 0 {
		t.Fatalf("healthy tenant must have clean SLO: %+v", acme)
	}

	// PublishLive lands the same view as gauges for /metrics.
	s.PublishLive()
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`tenant_queue_wait_p99_ns{tenant="acme"}`,
		`tenant_latency_p50_ns{tenant="zeta"}`,
		`tenant_slo_burn_rate{tenant="acme"} 0`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("prometheus output missing %q", want)
		}
	}
}

func TestWindowsAgeOutOnFakeClock(t *testing.T) {
	s, clk := newTestScheduler(Config{Workers: 0, WindowDur: time.Second, WindowSlots: 2})
	defer s.Close()
	tk, err := s.Submit("a", scanReq(simulate.Mondrian))
	if err != nil {
		t.Fatal(err)
	}
	if !s.dispatchNext() {
		t.Fatal("no work")
	}
	tk.Wait()
	if live := s.TenantsSnapshot(); live[0].WindowRuns != 1 {
		t.Fatalf("fresh run must be in the window: %+v", live[0])
	}
	// Cumulative totals survive the window aging out.
	clk.advance(3 * time.Second)
	live := s.TenantsSnapshot()
	if live[0].WindowRuns != 0 {
		t.Fatalf("window must age out after slots×dur: %+v", live[0])
	}
	if live[0].Runs != 1 {
		t.Fatalf("cumulative runs must survive: %+v", live[0])
	}
}

func TestFlightRecorderRingAndOutcomes(t *testing.T) {
	s, _ := newTestScheduler(Config{Workers: 0, FlightRecords: 3, Obs: obs.NewRegistry()})
	defer s.Close()
	for i := 0; i < 5; i++ {
		tk, err := s.Submit("a", scanReq(simulate.Mondrian))
		if err != nil {
			t.Fatal(err)
		}
		if !s.dispatchNext() {
			t.Fatal("no work")
		}
		tk.Wait()
	}
	recs := s.FlightRecords()
	if len(recs) != 3 {
		t.Fatalf("ring must cap at 3, got %d", len(recs))
	}
	// Oldest-first, contiguous ticket IDs, only the newest 3 retained.
	for i, r := range recs {
		if r.Ticket != uint64(3+i) {
			t.Fatalf("record %d ticket = %d, want %d", i, r.Ticket, 3+i)
		}
		if r.Outcome != OutcomeOK || r.Tenant != "a" || r.System != "Mondrian" || r.Operator != "Scan" {
			t.Fatalf("record = %+v", r)
		}
		if r.ParamsDigest == "" || r.QueueNs < 0 || r.SimNs <= 0 {
			t.Fatalf("record incomplete: %+v", r)
		}
	}
}

func TestFlightRecorderRejectAndDump(t *testing.T) {
	p := serveParams()
	var dump bytes.Buffer
	s, _ := newTestScheduler(Config{
		Workers:              0,
		FootprintBudgetBytes: footprintBytes(p), // exactly one request fits
		FlightDump:           &dump,
		Obs:                  obs.NewRegistry(),
	})
	defer s.Close()
	if _, err := s.Submit("a", scanReq(simulate.Mondrian)); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit("b", scanReq(simulate.Mondrian))
	if err == nil {
		t.Fatal("expected admission reject")
	}
	recs := s.FlightRecords()
	if len(recs) != 1 || recs[0].Outcome != OutcomeRejected || recs[0].Tenant != "b" {
		t.Fatalf("reject must be flight-recorded: %+v", recs)
	}
	if recs[0].Error == "" {
		t.Fatalf("reject record must carry the admission error")
	}
	// The first reject dumped the ring, exactly once.
	if dump.Len() == 0 {
		t.Fatal("flight dump must fire on first admission reject")
	}
	var doc struct {
		FlightRecords []FlightRecord `json:"flight_records"`
	}
	if err := json.Unmarshal(dump.Bytes(), &doc); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	before := dump.Len()
	if _, err := s.Submit("c", scanReq(simulate.Mondrian)); err == nil {
		t.Fatal("expected second reject")
	}
	if dump.Len() != before {
		t.Fatal("flight dump must fire at most once")
	}
	// The reject's SLO impact is visible.
	live := s.TenantsSnapshot()
	for _, tn := range live {
		if tn.Tenant == "b" && tn.SLOBurnRate <= 0 {
			t.Fatalf("reject must burn tenant b's error budget: %+v", tn)
		}
	}
}

func TestTraceSpansServedAndResponseStripped(t *testing.T) {
	s, _ := newTestScheduler(Config{
		Workers: 0, Obs: obs.NewRegistry(), RetainSpans: true,
	})
	defer s.Close()
	tk, err := s.Submit("a", scanReq(simulate.Mondrian))
	if err != nil {
		t.Fatal(err)
	}
	if !s.dispatchNext() {
		t.Fatal("no work")
	}
	resp := tk.Wait()
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	// Response stays byte-identical to a bare run: no phases, no spans.
	if resp.Result.Phases != nil || resp.Result.Spans != nil {
		t.Fatalf("served result must stay stripped")
	}
	spans := s.TraceSpans(tk.ID())
	if spans == nil || spans.Name != "run" || spans.EndNs != resp.Result.TotalNs {
		t.Fatalf("TraceSpans = %+v, want retained run tree ending at %g", spans, resp.Result.TotalNs)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	if len(doc.TraceEvents) < 2 {
		t.Fatalf("trace too small: %d events", len(doc.TraceEvents))
	}
	// Flight record carries the per-phase breakdown.
	recs := s.FlightRecords()
	if len(recs) != 1 || len(recs[0].Phases) == 0 {
		t.Fatalf("flight record must carry phases: %+v", recs)
	}
	if s.TraceSpans(9999) != nil {
		t.Fatal("unknown ticket must have no trace")
	}
}

func TestFlightRecorderDisabled(t *testing.T) {
	s, _ := newTestScheduler(Config{Workers: 0, FlightRecords: -1})
	defer s.Close()
	tk, err := s.Submit("a", scanReq(simulate.Mondrian))
	if err != nil {
		t.Fatal(err)
	}
	s.dispatchNext()
	tk.Wait()
	if recs := s.FlightRecords(); recs != nil {
		t.Fatalf("disabled recorder must keep nothing, got %d", len(recs))
	}
	if s.TraceSpans(tk.ID()) != nil {
		t.Fatal("disabled recorder must serve no traces")
	}
}

func TestParamsDigestStable(t *testing.T) {
	a, b := serveParams(), serveParams()
	if paramsDigest(a) != paramsDigest(b) {
		t.Fatal("equal params must digest equally")
	}
	b.STuples++
	if paramsDigest(a) == paramsDigest(b) {
		t.Fatal("different params must digest differently")
	}
	// The registry handle must not leak into the digest (json:"-").
	c := serveParams()
	c.Obs = obs.NewRegistry()
	if paramsDigest(a) != paramsDigest(c) {
		t.Fatal("Obs handle must not affect the digest")
	}
}
