// Package serve runs the simulator as a shared service: many tenants
// submit (system, operator) or plan experiments, and a scheduler
// multiplexes them over a bounded worker set that draws reset engines
// from the simulate layer's pool instead of constructing one per query.
//
// Three policies shape the service (DESIGN.md §16):
//
//   - Admission control is reject-not-queue: a request whose simulated
//     memory system would push the aggregate vault-capacity footprint of
//     queued-plus-running work past the configured budget is refused
//     immediately with a typed *ErrAdmission, never parked in an
//     unbounded overflow queue. Per-tenant queue depth is bounded the
//     same way.
//   - Dispatch is weighted fair queueing by stride scheduling: each
//     tenant advances a virtual-time pass by 1/weight per dispatched
//     run, and the scheduler always serves the backlogged tenant with
//     the smallest pass (ties break on tenant name, so the order is
//     deterministic). Within one tenant, higher Priority first, then
//     submission order.
//   - Observability is per-tenant: runs, simulated nanoseconds, exchange
//     bytes, queue-wait histograms and admission rejects land on the
//     configured registry under a tenant label. Writes happen under the
//     scheduler mutex; New additionally switches the registry into its
//     Concurrent() mode so exporters may snapshot it live, while
//     writers are active (DESIGN.md §17).
//
// On top of the cumulative registry the scheduler keeps live state for
// runtime introspection (DESIGN.md §17): per-tenant rolling windows
// (p50/p95/p99 queue wait, simulated latency, exchange bytes over the
// last WindowDur×WindowSlots), per-tenant SLO burn rates, and a bounded
// flight recorder retaining the last FlightRecords requests — see
// flight.go for the snapshot/export API.
package serve

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/ecocloud-go/mondrian/internal/obs"
	"github.com/ecocloud-go/mondrian/internal/simulate"
)

// DefaultQueueDepth bounds each tenant's queue when Config.QueueDepth
// is unset.
const DefaultQueueDepth = 64

// Rolling-window and flight-recorder defaults (Config overrides).
const (
	DefaultWindowDur     = 5 * time.Second // per-slot rotation period
	DefaultWindowSlots   = 12              // 12 × 5s = one-minute window
	DefaultFlightRecords = 256             // flight-recorder ring capacity
	DefaultSLOTargetNs   = 5e7             // 50ms simulated latency
	DefaultSLOObjective  = 0.99            // 99% of runs within target
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: scheduler closed")

// ErrAdmission reports a request refused at the door. It is a typed
// error (match with errors.As) so callers can tell a capacity refusal —
// retry later, against a different deployment, or with a smaller
// configuration — from a malformed request.
type ErrAdmission struct {
	// Tenant is the submitting tenant.
	Tenant string
	// Reason says which limit refused the request.
	Reason string
	// FootprintBytes is the request's own vault-capacity footprint;
	// BudgetBytes the scheduler's aggregate budget (0 = unlimited).
	FootprintBytes int64
	BudgetBytes    int64
}

// Error implements error.
func (e *ErrAdmission) Error() string {
	return fmt.Sprintf("serve: tenant %q refused: %s (request footprint %d B, budget %d B)",
		e.Tenant, e.Reason, e.FootprintBytes, e.BudgetBytes)
}

// Request is one experiment submission. IsPlan selects the compiled-plan
// path (Plan) over the single-operator path (Operator).
type Request struct {
	System   simulate.System
	Operator simulate.Operator
	Plan     simulate.Plan
	IsPlan   bool
	Params   simulate.Params
	// Priority orders runs within one tenant: higher first, ties in
	// submission order. It never preempts fairness across tenants.
	Priority int
}

// Response is one completed submission. Exactly one of Result/PlanResult
// is set on success; Err carries validation or simulation failures.
type Response struct {
	Result     *simulate.Result
	PlanResult *simulate.PlanResult
	Err        error
	// QueueNs is host time spent queued before dispatch.
	QueueNs int64
}

// Ticket is the caller's handle on a submitted request.
type Ticket struct {
	id   uint64
	done chan struct{}
	resp Response
}

// ID returns the ticket's scheduler-unique identifier — the key for
// flight-recorder lookups and the /trace/{ticket} endpoint.
func (t *Ticket) ID() uint64 { return t.id }

// Done is closed when the response is ready.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the response is ready and returns it.
func (t *Ticket) Wait() Response {
	<-t.done
	return t.resp
}

// Config shapes a Scheduler.
type Config struct {
	// Workers is the number of goroutines executing runs. 0 means no
	// background workers: requests queue until someone drives
	// dispatchNext, the deterministic mode the policy tests use.
	Workers int
	// QueueDepth bounds each tenant's queue (0 = DefaultQueueDepth).
	QueueDepth int
	// FootprintBudgetBytes bounds the aggregate simulated vault
	// capacity (Cubes × VaultsPer × VaultCapBytes summed over queued
	// and running requests) the scheduler will hold at once. 0 means
	// unlimited.
	FootprintBudgetBytes int64
	// Obs, when non-nil, receives the per-tenant service metrics.
	Obs *obs.Registry
	// HarvestExchange additionally attaches a private engine registry to
	// every run that does not bring its own, so tenant_exchange_bytes is
	// populated. Off by default: engine-level metric collection costs
	// real host time per run, which a throughput-focused deployment
	// keeps off the hot path.
	HarvestExchange bool

	// WindowDur is the rotation period of the rolling live windows
	// (0 = DefaultWindowDur); WindowSlots is the ring length
	// (0 = DefaultWindowSlots). The live percentiles cover the last
	// WindowDur × WindowSlots of traffic.
	WindowDur   time.Duration
	WindowSlots int

	// SLOTargetNs / SLOObjective define every tenant's latency SLO:
	// "SLOObjective of runs finish within SLOTargetNs simulated ns"
	// (0 = DefaultSLOTargetNs / DefaultSLOObjective). Errors and
	// admission rejects always count against the budget.
	SLOTargetNs  float64
	SLOObjective float64

	// FlightRecords bounds the flight-recorder ring: the last N request
	// records kept for /flightrecorder and /trace/{ticket}
	// (0 = DefaultFlightRecords, negative disables recording).
	FlightRecords int
	// FlightDump, when non-nil, receives one JSON dump of the flight
	// ring on the first admission reject or internal error — the
	// "what just went wrong" artifact, written at most once.
	FlightDump io.Writer
	// RetainSpans keeps each run's span tree in its flight record (and
	// attaches a private registry like HarvestExchange so spans exist),
	// serving /trace/{ticket}. Costs engine-metric collection per run
	// plus the retained trees' memory; responses stay stripped either
	// way.
	RetainSpans bool

	// now substitutes the wall clock in tests (nil = time.Now).
	now func() time.Time
}

// windowDur/windowSlots/flightRecords resolve defaults.
func (c Config) windowDur() time.Duration {
	if c.WindowDur <= 0 {
		return DefaultWindowDur
	}
	return c.WindowDur
}

func (c Config) windowSlots() int {
	if c.WindowSlots <= 0 {
		return DefaultWindowSlots
	}
	return c.WindowSlots
}

func (c Config) flightRecords() int {
	if c.FlightRecords == 0 {
		return DefaultFlightRecords
	}
	if c.FlightRecords < 0 {
		return 0
	}
	return c.FlightRecords
}

func (c Config) slo() obs.SLO {
	slo := obs.SLO{TargetNs: c.SLOTargetNs, Objective: c.SLOObjective}
	if slo.TargetNs <= 0 {
		slo.TargetNs = DefaultSLOTargetNs
	}
	if !(slo.Objective > 0 && slo.Objective < 1) {
		slo.Objective = DefaultSLOObjective
	}
	return slo
}

// item is one queued request.
type item struct {
	tenant    string
	req       Request
	ticket    *Ticket
	footprint int64
	seq       uint64
	enqueued  time.Time
}

// tenantState is one tenant's queue, stride-scheduling state, and live
// rolling-window aggregation. The windows and the SLO tracker are
// unsynchronized obs types; the scheduler mutex owns them.
type tenantState struct {
	name   string
	weight int
	pass   float64
	queue  []*item

	runs, errors, rejects uint64

	qwWin  *obs.Window // queue wait, host ns
	latWin *obs.Window // simulated latency, ns
	exWin  *obs.Window // exchange bytes per run (HarvestExchange only)
	slo    *obs.SLOTracker
}

// Scheduler is the multi-tenant run scheduler. Create with New, submit
// with Submit, shut down with Close.
type Scheduler struct {
	cfg Config

	mu        sync.Mutex
	cond      *sync.Cond
	tenants   map[string]*tenantState
	queued    int
	footprint int64 // reserved bytes: queued + running requests
	seq       uint64
	basePass  float64 // virtual time: pass of the last dispatched tenant
	closed    bool
	wg        sync.WaitGroup

	lastAdvance time.Time // last rolling-window rotation

	flight       []FlightRecord // ring buffer, flightRecords() capacity
	flightNext   int            // next write slot
	flightLen    int            // live records (≤ cap)
	flightDumped bool           // FlightDump fired already
}

// New builds a scheduler and starts cfg.Workers workers. A configured
// obs registry is switched into Concurrent() mode so live exporters
// (Prometheus scrapes, /tenants) can read it while workers write.
func New(cfg Config) *Scheduler {
	cfg.Obs = cfg.Obs.Concurrent()
	if cfg.now == nil {
		cfg.now = time.Now
	}
	s := &Scheduler{cfg: cfg, tenants: make(map[string]*tenantState)}
	if n := cfg.flightRecords(); n > 0 {
		s.flight = make([]FlightRecord, n)
	}
	s.lastAdvance = cfg.now()
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// footprintBytes is the admission-control unit: the simulated DRAM
// capacity a request's memory system spans. It is a property of the
// system shape, not the dataset — the engine owns every vault it is
// built with for the whole run.
func footprintBytes(p simulate.Params) int64 {
	if p.Cubes <= 0 || p.VaultsPer <= 0 || p.VaultCapBytes <= 0 {
		return 0
	}
	return int64(p.Cubes) * int64(p.VaultsPer) * p.VaultCapBytes
}

// SetTenantWeight sets a tenant's fair-share weight (minimum 1; new
// tenants default to 1). A tenant with weight w receives w times the
// dispatch share of a weight-1 tenant under contention.
func (s *Scheduler) SetTenantWeight(tenant string, weight int) {
	if weight < 1 {
		weight = 1
	}
	s.mu.Lock()
	s.tenantLocked(tenant).weight = weight
	s.mu.Unlock()
}

// Footprint returns the aggregate vault-capacity footprint currently
// reserved by queued and running requests.
func (s *Scheduler) Footprint() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.footprint
}

// Submit enqueues one request for tenant. It returns a Ticket to wait
// on, or an *ErrAdmission if a capacity bound refuses the request, or
// ErrClosed after Close. Submit never blocks on queue pressure.
func (s *Scheduler) Submit(tenant string, req Request) (*Ticket, error) {
	fp := footprintBytes(req.Params)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.advanceLocked()
	t := s.tenantLocked(tenant)
	s.seq++ // every submission gets an ID, rejected ones included
	depth := s.cfg.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	var adm *ErrAdmission
	if len(t.queue) >= depth {
		adm = &ErrAdmission{
			Tenant: tenant, Reason: fmt.Sprintf("tenant queue depth %d reached", depth),
			FootprintBytes: fp, BudgetBytes: s.cfg.FootprintBudgetBytes,
		}
	} else if b := s.cfg.FootprintBudgetBytes; b > 0 && s.footprint+fp > b {
		adm = &ErrAdmission{
			Tenant: tenant, Reason: "aggregate vault-capacity footprint budget exceeded",
			FootprintBytes: fp, BudgetBytes: b,
		}
	}
	if adm != nil {
		s.rejectLocked(t)
		s.recordFlightLocked(FlightRecord{
			Ticket: s.seq, Tenant: tenant, Outcome: OutcomeRejected,
			Error: adm.Error(), System: req.System.String(),
			Operator: requestOperator(req), Priority: req.Priority,
			ParamsDigest: paramsDigest(req.Params),
		})
		dump := s.takeFlightDumpLocked()
		s.mu.Unlock()
		writeFlightDump(s.cfg.FlightDump, dump)
		return nil, adm
	}
	s.footprint += fp
	if len(t.queue) == 0 && t.pass < s.basePass {
		// Activation catch-up: a tenant returning from idle joins at the
		// current virtual time instead of replaying its idle period.
		t.pass = s.basePass
	}
	it := &item{
		tenant: tenant, req: req, footprint: fp, seq: s.seq,
		enqueued: time.Now(), ticket: &Ticket{id: s.seq, done: make(chan struct{})},
	}
	t.queue = append(t.queue, it)
	s.queued++
	s.cond.Signal()
	s.mu.Unlock()
	return it.ticket, nil
}

// Close stops admission, fails every still-queued request with
// ErrClosed, and waits for in-flight runs to finish. Callers who want
// their submitted work completed wait on their tickets before closing.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	var cancelled []*item
	for _, t := range s.tenants {
		cancelled = append(cancelled, t.queue...)
		t.queue = nil
	}
	for _, it := range cancelled {
		s.footprint -= it.footprint
	}
	s.queued = 0
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, it := range cancelled {
		it.ticket.resp = Response{Err: ErrClosed}
		close(it.ticket.done)
	}
	s.wg.Wait()
}

// Rolling-window bucket bounds. Queue wait is host time (1 µs – 10 s);
// latency is simulated nanoseconds (1 µs – 100 s); exchange bytes are
// per-run volumes (100 B – 1 GB).
var (
	latencyBounds       = []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11}
	exchangeBytesBounds = []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}
)

// tenantLocked returns (creating if needed) a tenant's state.
func (s *Scheduler) tenantLocked(name string) *tenantState {
	t := s.tenants[name]
	if t == nil {
		slots := s.cfg.windowSlots()
		t = &tenantState{
			name:   name,
			weight: 1,
			qwWin:  obs.NewWindow(slots, queueWaitBounds),
			latWin: obs.NewWindow(slots, latencyBounds),
			exWin:  obs.NewWindow(slots, exchangeBytesBounds),
			slo:    obs.NewSLOTracker(slots, s.cfg.slo()),
		}
		s.tenants[name] = t
	}
	return t
}

// advanceLocked rotates every tenant's rolling windows once per elapsed
// WindowDur period. Called on the paths that touch live state (account,
// snapshot), so windows stay current without a background timer; an idle
// gap longer than the whole window clears it in at most windowSlots
// rotations.
func (s *Scheduler) advanceLocked() {
	dur := s.cfg.windowDur()
	now := s.cfg.now()
	slots := s.cfg.windowSlots()
	for steps := 0; now.Sub(s.lastAdvance) >= dur; steps++ {
		if steps >= slots {
			// Every slot already cleared; jump to now.
			s.lastAdvance = now
			break
		}
		s.lastAdvance = s.lastAdvance.Add(dur)
		for _, t := range s.tenants {
			t.qwWin.Advance()
			t.latWin.Advance()
			t.exWin.Advance()
			t.slo.Advance()
		}
	}
}

// rejectLocked counts one admission refusal against the tenant's
// cumulative counter, live counters and SLO budget.
func (s *Scheduler) rejectLocked(t *tenantState) {
	t.rejects++
	t.slo.RecordBad()
	if s.cfg.Obs != nil {
		s.cfg.Obs.Counter(obs.Label("tenant_admission_rejects", "tenant", t.name)).Inc()
	}
}

// popLocked removes and returns the next item under the fairness policy:
// the backlogged tenant with the smallest pass (ties on name), then that
// tenant's highest-priority oldest request. Caller holds the mutex and
// has checked queued > 0.
func (s *Scheduler) popLocked() *item {
	var best *tenantState
	for _, t := range s.tenants {
		if len(t.queue) == 0 {
			continue
		}
		if best == nil || t.pass < best.pass || (t.pass == best.pass && t.name < best.name) {
			best = t
		}
	}
	bi := 0
	for i, it := range best.queue[1:] {
		cur := best.queue[bi]
		if it.req.Priority > cur.req.Priority ||
			(it.req.Priority == cur.req.Priority && it.seq < cur.seq) {
			bi = i + 1
		}
	}
	it := best.queue[bi]
	best.queue = append(best.queue[:bi], best.queue[bi+1:]...)
	s.queued--
	s.basePass = best.pass
	best.pass += 1 / float64(best.weight)
	return it
}

// worker is one background executor: pop under the fairness policy, run,
// account, repeat until closed.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.closed && s.queued == 0 {
			s.cond.Wait()
		}
		if s.queued == 0 {
			// closed, and Close already cancelled the queues
			s.mu.Unlock()
			return
		}
		it := s.popLocked()
		s.mu.Unlock()
		s.execute(it)
	}
}

// dispatchNext pops and executes one request on the calling goroutine.
// It returns false when every queue is empty. With Config.Workers == 0
// this is the only executor, which makes dispatch order — and therefore
// the fairness policy — directly observable in tests.
func (s *Scheduler) dispatchNext() bool {
	s.mu.Lock()
	if s.queued == 0 {
		s.mu.Unlock()
		return false
	}
	it := s.popLocked()
	s.mu.Unlock()
	s.execute(it)
	return true
}

// execute runs one dequeued item to completion: simulate, release the
// footprint reservation, account per-tenant metrics, land the flight
// record, resolve the ticket.
func (s *Scheduler) execute(it *item) {
	resp := Response{QueueNs: time.Since(it.enqueued).Nanoseconds()}
	p := it.req.Params
	// Harvest engine-level statistics (exchange bytes, spans) through a
	// private registry when the caller did not bring one — then strip the
	// obs-derived report fields again so a served Result stays
	// byte-identical to a direct simulate.Run of the same request. The
	// phase/span trees move into the flight record instead of vanishing.
	var priv *obs.Registry
	if s.cfg.Obs != nil && (s.cfg.HarvestExchange || s.cfg.RetainSpans) && p.Obs == nil {
		priv = obs.NewRegistry()
		p.Obs = priv
	}
	rec := FlightRecord{
		Ticket: it.ticket.id, Tenant: it.tenant, Outcome: OutcomeOK,
		System: it.req.System.String(), Operator: requestOperator(it.req),
		Priority: it.req.Priority, ParamsDigest: paramsDigest(it.req.Params),
		QueueNs: resp.QueueNs,
	}
	wallStart := time.Now()
	if it.req.IsPlan {
		r, err := simulate.RunPlan(it.req.System, it.req.Plan, p)
		if r != nil {
			rec.SimNs = r.TotalNs
			if priv != nil {
				rec.capture(r.Phases, r.Spans, s.cfg.RetainSpans)
				r.Phases, r.Spans = nil, nil
			}
		}
		resp.PlanResult, resp.Err = r, err
	} else {
		r, err := simulate.Run(it.req.System, it.req.Operator, p)
		if r != nil {
			rec.SimNs = r.TotalNs
			if priv != nil {
				rec.capture(r.Phases, r.Spans, s.cfg.RetainSpans)
				r.Phases, r.Spans = nil, nil
			}
		}
		resp.Result, resp.Err = r, err
	}
	rec.WallNs = time.Since(wallStart).Nanoseconds()
	if resp.Err != nil {
		rec.Outcome = OutcomeError
		rec.Error = resp.Err.Error()
	}

	s.mu.Lock()
	s.footprint -= it.footprint
	s.accountLocked(it, &resp, priv)
	s.recordFlightLocked(rec)
	var dump []FlightRecord
	var ierr *simulate.InternalError
	if errors.As(resp.Err, &ierr) {
		dump = s.takeFlightDumpLocked()
	}
	s.mu.Unlock()
	writeFlightDump(s.cfg.FlightDump, dump)

	it.ticket.resp = resp
	close(it.ticket.done)
}

// queueWaitBounds buckets host queue-wait times from 1 µs to 10 s.
var queueWaitBounds = []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}

// accountLocked lands one completed run on the per-tenant metrics: the
// cumulative registry (serialized by the scheduler mutex, and
// Concurrent() besides for live readers) plus the rolling windows and
// SLO tracker the /tenants snapshot serves.
func (s *Scheduler) accountLocked(it *item, resp *Response, priv *obs.Registry) {
	s.advanceLocked()
	t := s.tenantLocked(it.tenant)
	t.runs++
	t.qwWin.Record(float64(resp.QueueNs))

	reg := s.cfg.Obs
	label := func(name string) string { return obs.Label(name, "tenant", it.tenant) }
	if reg != nil {
		reg.Counter(label("tenant_runs")).Inc()
		reg.Histogram(label("tenant_queue_wait_ns"), queueWaitBounds).Observe(float64(resp.QueueNs))
	}
	if resp.Err != nil {
		t.errors++
		t.slo.RecordBad()
		if reg != nil {
			reg.Counter(label("tenant_errors")).Inc()
		}
		return
	}
	var simNs float64
	switch {
	case resp.Result != nil:
		simNs = resp.Result.TotalNs
	case resp.PlanResult != nil:
		simNs = resp.PlanResult.TotalNs
	}
	t.latWin.Record(simNs)
	t.slo.Record(simNs)
	if reg != nil {
		reg.Gauge(label("tenant_sim_ns")).Add(simNs)
	}
	if priv != nil {
		xb := priv.Counter("exchange_bytes").Value()
		t.exWin.Record(float64(xb))
		if reg != nil {
			reg.Counter(label("tenant_exchange_bytes")).Add(xb)
		}
	}
}
