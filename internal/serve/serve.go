// Package serve runs the simulator as a shared service: many tenants
// submit (system, operator) or plan experiments, and a scheduler
// multiplexes them over a bounded worker set that draws reset engines
// from the simulate layer's pool instead of constructing one per query.
//
// Three policies shape the service (DESIGN.md §16):
//
//   - Admission control is reject-not-queue: a request whose simulated
//     memory system would push the aggregate vault-capacity footprint of
//     queued-plus-running work past the configured budget is refused
//     immediately with a typed *ErrAdmission, never parked in an
//     unbounded overflow queue. Per-tenant queue depth is bounded the
//     same way.
//   - Dispatch is weighted fair queueing by stride scheduling: each
//     tenant advances a virtual-time pass by 1/weight per dispatched
//     run, and the scheduler always serves the backlogged tenant with
//     the smallest pass (ties break on tenant name, so the order is
//     deterministic). Within one tenant, higher Priority first, then
//     submission order.
//   - Observability is per-tenant: runs, simulated nanoseconds, exchange
//     bytes, queue-wait histograms and admission rejects land on the
//     configured registry under a tenant label. The registry is not
//     internally synchronized, so every update happens under the
//     scheduler mutex.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/ecocloud-go/mondrian/internal/obs"
	"github.com/ecocloud-go/mondrian/internal/simulate"
)

// DefaultQueueDepth bounds each tenant's queue when Config.QueueDepth
// is unset.
const DefaultQueueDepth = 64

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: scheduler closed")

// ErrAdmission reports a request refused at the door. It is a typed
// error (match with errors.As) so callers can tell a capacity refusal —
// retry later, against a different deployment, or with a smaller
// configuration — from a malformed request.
type ErrAdmission struct {
	// Tenant is the submitting tenant.
	Tenant string
	// Reason says which limit refused the request.
	Reason string
	// FootprintBytes is the request's own vault-capacity footprint;
	// BudgetBytes the scheduler's aggregate budget (0 = unlimited).
	FootprintBytes int64
	BudgetBytes    int64
}

// Error implements error.
func (e *ErrAdmission) Error() string {
	return fmt.Sprintf("serve: tenant %q refused: %s (request footprint %d B, budget %d B)",
		e.Tenant, e.Reason, e.FootprintBytes, e.BudgetBytes)
}

// Request is one experiment submission. IsPlan selects the compiled-plan
// path (Plan) over the single-operator path (Operator).
type Request struct {
	System   simulate.System
	Operator simulate.Operator
	Plan     simulate.Plan
	IsPlan   bool
	Params   simulate.Params
	// Priority orders runs within one tenant: higher first, ties in
	// submission order. It never preempts fairness across tenants.
	Priority int
}

// Response is one completed submission. Exactly one of Result/PlanResult
// is set on success; Err carries validation or simulation failures.
type Response struct {
	Result     *simulate.Result
	PlanResult *simulate.PlanResult
	Err        error
	// QueueNs is host time spent queued before dispatch.
	QueueNs int64
}

// Ticket is the caller's handle on a submitted request.
type Ticket struct {
	done chan struct{}
	resp Response
}

// Done is closed when the response is ready.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the response is ready and returns it.
func (t *Ticket) Wait() Response {
	<-t.done
	return t.resp
}

// Config shapes a Scheduler.
type Config struct {
	// Workers is the number of goroutines executing runs. 0 means no
	// background workers: requests queue until someone drives
	// dispatchNext, the deterministic mode the policy tests use.
	Workers int
	// QueueDepth bounds each tenant's queue (0 = DefaultQueueDepth).
	QueueDepth int
	// FootprintBudgetBytes bounds the aggregate simulated vault
	// capacity (Cubes × VaultsPer × VaultCapBytes summed over queued
	// and running requests) the scheduler will hold at once. 0 means
	// unlimited.
	FootprintBudgetBytes int64
	// Obs, when non-nil, receives the per-tenant service metrics.
	Obs *obs.Registry
	// HarvestExchange additionally attaches a private engine registry to
	// every run that does not bring its own, so tenant_exchange_bytes is
	// populated. Off by default: engine-level metric collection costs
	// real host time per run, which a throughput-focused deployment
	// keeps off the hot path.
	HarvestExchange bool
}

// item is one queued request.
type item struct {
	tenant    string
	req       Request
	ticket    *Ticket
	footprint int64
	seq       uint64
	enqueued  time.Time
}

// tenantState is one tenant's queue and stride-scheduling state.
type tenantState struct {
	name   string
	weight int
	pass   float64
	queue  []*item
}

// Scheduler is the multi-tenant run scheduler. Create with New, submit
// with Submit, shut down with Close.
type Scheduler struct {
	cfg Config

	mu        sync.Mutex
	cond      *sync.Cond
	tenants   map[string]*tenantState
	queued    int
	footprint int64 // reserved bytes: queued + running requests
	seq       uint64
	basePass  float64 // virtual time: pass of the last dispatched tenant
	closed    bool
	wg        sync.WaitGroup
}

// New builds a scheduler and starts cfg.Workers workers.
func New(cfg Config) *Scheduler {
	s := &Scheduler{cfg: cfg, tenants: make(map[string]*tenantState)}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// footprintBytes is the admission-control unit: the simulated DRAM
// capacity a request's memory system spans. It is a property of the
// system shape, not the dataset — the engine owns every vault it is
// built with for the whole run.
func footprintBytes(p simulate.Params) int64 {
	if p.Cubes <= 0 || p.VaultsPer <= 0 || p.VaultCapBytes <= 0 {
		return 0
	}
	return int64(p.Cubes) * int64(p.VaultsPer) * p.VaultCapBytes
}

// SetTenantWeight sets a tenant's fair-share weight (minimum 1; new
// tenants default to 1). A tenant with weight w receives w times the
// dispatch share of a weight-1 tenant under contention.
func (s *Scheduler) SetTenantWeight(tenant string, weight int) {
	if weight < 1 {
		weight = 1
	}
	s.mu.Lock()
	s.tenantLocked(tenant).weight = weight
	s.mu.Unlock()
}

// Footprint returns the aggregate vault-capacity footprint currently
// reserved by queued and running requests.
func (s *Scheduler) Footprint() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.footprint
}

// Submit enqueues one request for tenant. It returns a Ticket to wait
// on, or an *ErrAdmission if a capacity bound refuses the request, or
// ErrClosed after Close. Submit never blocks on queue pressure.
func (s *Scheduler) Submit(tenant string, req Request) (*Ticket, error) {
	fp := footprintBytes(req.Params)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	t := s.tenantLocked(tenant)
	depth := s.cfg.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	if len(t.queue) >= depth {
		s.rejectLocked(tenant)
		s.mu.Unlock()
		return nil, &ErrAdmission{
			Tenant: tenant, Reason: fmt.Sprintf("tenant queue depth %d reached", depth),
			FootprintBytes: fp, BudgetBytes: s.cfg.FootprintBudgetBytes,
		}
	}
	if b := s.cfg.FootprintBudgetBytes; b > 0 && s.footprint+fp > b {
		s.rejectLocked(tenant)
		s.mu.Unlock()
		return nil, &ErrAdmission{
			Tenant: tenant, Reason: "aggregate vault-capacity footprint budget exceeded",
			FootprintBytes: fp, BudgetBytes: b,
		}
	}
	s.footprint += fp
	if len(t.queue) == 0 && t.pass < s.basePass {
		// Activation catch-up: a tenant returning from idle joins at the
		// current virtual time instead of replaying its idle period.
		t.pass = s.basePass
	}
	s.seq++
	it := &item{
		tenant: tenant, req: req, footprint: fp, seq: s.seq,
		enqueued: time.Now(), ticket: &Ticket{done: make(chan struct{})},
	}
	t.queue = append(t.queue, it)
	s.queued++
	s.cond.Signal()
	s.mu.Unlock()
	return it.ticket, nil
}

// Close stops admission, fails every still-queued request with
// ErrClosed, and waits for in-flight runs to finish. Callers who want
// their submitted work completed wait on their tickets before closing.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	var cancelled []*item
	for _, t := range s.tenants {
		cancelled = append(cancelled, t.queue...)
		t.queue = nil
	}
	for _, it := range cancelled {
		s.footprint -= it.footprint
	}
	s.queued = 0
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, it := range cancelled {
		it.ticket.resp = Response{Err: ErrClosed}
		close(it.ticket.done)
	}
	s.wg.Wait()
}

// tenantLocked returns (creating if needed) a tenant's state.
func (s *Scheduler) tenantLocked(name string) *tenantState {
	t := s.tenants[name]
	if t == nil {
		t = &tenantState{name: name, weight: 1}
		s.tenants[name] = t
	}
	return t
}

// rejectLocked counts one admission refusal.
func (s *Scheduler) rejectLocked(tenant string) {
	if s.cfg.Obs != nil {
		s.cfg.Obs.Counter(obs.Label("tenant_admission_rejects", "tenant", tenant)).Inc()
	}
}

// popLocked removes and returns the next item under the fairness policy:
// the backlogged tenant with the smallest pass (ties on name), then that
// tenant's highest-priority oldest request. Caller holds the mutex and
// has checked queued > 0.
func (s *Scheduler) popLocked() *item {
	var best *tenantState
	for _, t := range s.tenants {
		if len(t.queue) == 0 {
			continue
		}
		if best == nil || t.pass < best.pass || (t.pass == best.pass && t.name < best.name) {
			best = t
		}
	}
	bi := 0
	for i, it := range best.queue[1:] {
		cur := best.queue[bi]
		if it.req.Priority > cur.req.Priority ||
			(it.req.Priority == cur.req.Priority && it.seq < cur.seq) {
			bi = i + 1
		}
	}
	it := best.queue[bi]
	best.queue = append(best.queue[:bi], best.queue[bi+1:]...)
	s.queued--
	s.basePass = best.pass
	best.pass += 1 / float64(best.weight)
	return it
}

// worker is one background executor: pop under the fairness policy, run,
// account, repeat until closed.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.closed && s.queued == 0 {
			s.cond.Wait()
		}
		if s.queued == 0 {
			// closed, and Close already cancelled the queues
			s.mu.Unlock()
			return
		}
		it := s.popLocked()
		s.mu.Unlock()
		s.execute(it)
	}
}

// dispatchNext pops and executes one request on the calling goroutine.
// It returns false when every queue is empty. With Config.Workers == 0
// this is the only executor, which makes dispatch order — and therefore
// the fairness policy — directly observable in tests.
func (s *Scheduler) dispatchNext() bool {
	s.mu.Lock()
	if s.queued == 0 {
		s.mu.Unlock()
		return false
	}
	it := s.popLocked()
	s.mu.Unlock()
	s.execute(it)
	return true
}

// execute runs one dequeued item to completion: simulate, release the
// footprint reservation, account per-tenant metrics, resolve the ticket.
func (s *Scheduler) execute(it *item) {
	resp := Response{QueueNs: time.Since(it.enqueued).Nanoseconds()}
	p := it.req.Params
	// Harvest engine-level statistics (exchange bytes) through a private
	// registry when the caller did not bring one — then strip the
	// obs-derived report fields again so a served Result stays
	// byte-identical to a direct simulate.Run of the same request.
	var priv *obs.Registry
	if s.cfg.Obs != nil && s.cfg.HarvestExchange && p.Obs == nil {
		priv = obs.NewRegistry()
		p.Obs = priv
	}
	if it.req.IsPlan {
		r, err := simulate.RunPlan(it.req.System, it.req.Plan, p)
		if r != nil && priv != nil {
			r.Phases, r.Spans = nil, nil
		}
		resp.PlanResult, resp.Err = r, err
	} else {
		r, err := simulate.Run(it.req.System, it.req.Operator, p)
		if r != nil && priv != nil {
			r.Phases, r.Spans = nil, nil
		}
		resp.Result, resp.Err = r, err
	}

	s.mu.Lock()
	s.footprint -= it.footprint
	s.accountLocked(it, &resp, priv)
	s.mu.Unlock()

	it.ticket.resp = resp
	close(it.ticket.done)
}

// queueWaitBounds buckets host queue-wait times from 1 µs to 10 s.
var queueWaitBounds = []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}

// accountLocked lands one completed run on the per-tenant metrics. The
// obs registry is single-owner by contract, so the scheduler mutex is
// what serializes these updates.
func (s *Scheduler) accountLocked(it *item, resp *Response, priv *obs.Registry) {
	reg := s.cfg.Obs
	if reg == nil {
		return
	}
	label := func(name string) string { return obs.Label(name, "tenant", it.tenant) }
	reg.Counter(label("tenant_runs")).Inc()
	reg.Histogram(label("tenant_queue_wait_ns"), queueWaitBounds).Observe(float64(resp.QueueNs))
	if resp.Err != nil {
		reg.Counter(label("tenant_errors")).Inc()
		return
	}
	var simNs float64
	switch {
	case resp.Result != nil:
		simNs = resp.Result.TotalNs
	case resp.PlanResult != nil:
		simNs = resp.PlanResult.TotalNs
	}
	reg.Gauge(label("tenant_sim_ns")).Add(simNs)
	if priv != nil {
		reg.Counter(label("tenant_exchange_bytes")).Add(priv.Counter("exchange_bytes").Value())
	}
}
