package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"github.com/ecocloud-go/mondrian/internal/obs"
	"github.com/ecocloud-go/mondrian/internal/simulate"
)

// serveParams is a small fast setup shared by the scheduler tests.
func serveParams() simulate.Params {
	p := simulate.TestParams()
	p.STuples = 1 << 12
	p.RTuples = 1 << 11
	p.KeySpace = 1 << 16
	p.CPUBuckets = 1 << 8
	return p
}

func scanReq(s simulate.System) Request {
	return Request{System: s, Operator: simulate.OpScan, Params: serveParams()}
}

func TestAdmissionFootprintReject(t *testing.T) {
	p := serveParams()
	fp := footprintBytes(p)
	if fp <= 0 {
		t.Fatalf("footprint = %d, want positive", fp)
	}
	// Budget admits exactly one queued-or-running request.
	s := New(Config{Workers: 0, FootprintBudgetBytes: fp})
	defer s.Close()

	tk, err := s.Submit("a", scanReq(simulate.Mondrian))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Footprint(); got != fp {
		t.Fatalf("reserved footprint = %d, want %d", got, fp)
	}

	_, err = s.Submit("b", scanReq(simulate.Mondrian))
	var adm *ErrAdmission
	if !errors.As(err, &adm) {
		t.Fatalf("over-budget submit returned %v, want *ErrAdmission", err)
	}
	if adm.Tenant != "b" || adm.FootprintBytes != fp || adm.BudgetBytes != fp {
		t.Fatalf("admission error fields: %+v", adm)
	}

	// Completing the queued run releases its reservation; admission
	// reopens without any retry queue in between.
	if !s.dispatchNext() {
		t.Fatal("dispatchNext found no work")
	}
	if r := tk.Wait(); r.Err != nil || !r.Result.Verified {
		t.Fatalf("queued run failed: %+v", r.Err)
	}
	if got := s.Footprint(); got != 0 {
		t.Fatalf("footprint after completion = %d, want 0", got)
	}
	if _, err := s.Submit("b", scanReq(simulate.Mondrian)); err != nil {
		t.Fatalf("post-release submit refused: %v", err)
	}
}

func TestQueueDepthReject(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Workers: 0, QueueDepth: 2, Obs: reg})
	defer s.Close()
	for i := 0; i < 2; i++ {
		if _, err := s.Submit("a", scanReq(simulate.Mondrian)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := s.Submit("a", scanReq(simulate.Mondrian))
	var adm *ErrAdmission
	if !errors.As(err, &adm) {
		t.Fatalf("over-depth submit returned %v, want *ErrAdmission", err)
	}
	// Another tenant's queue is unaffected by a's bound.
	if _, err := s.Submit("b", scanReq(simulate.Mondrian)); err != nil {
		t.Fatalf("tenant b refused by a's queue bound: %v", err)
	}
	rejects := reg.Snapshot().Counters[obs.Label("tenant_admission_rejects", "tenant", "a")]
	if rejects != 1 {
		t.Fatalf("admission rejects counter = %d, want 1", rejects)
	}
}

// popOrder drains the scheduler via the fairness policy alone (no
// simulation) and returns the dispatched tenants in order.
func popOrder(s *Scheduler, n int) []string {
	var order []string
	s.mu.Lock()
	for i := 0; i < n && s.queued > 0; i++ {
		it := s.popLocked()
		s.footprint -= it.footprint
		order = append(order, it.tenant)
	}
	s.mu.Unlock()
	return order
}

func TestWeightedFairOrder(t *testing.T) {
	s := New(Config{Workers: 0})
	defer s.Close()
	s.SetTenantWeight("a", 2)
	s.SetTenantWeight("b", 1)
	for i := 0; i < 4; i++ {
		if _, err := s.Submit("a", scanReq(simulate.Mondrian)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := s.Submit("b", scanReq(simulate.Mondrian)); err != nil {
			t.Fatal(err)
		}
	}
	got := popOrder(s, 6)
	// Stride scheduling with weights 2:1 — a advances its pass by 1/2
	// per dispatch, b by 1, ties break on name.
	want := []string{"a", "b", "a", "a", "b", "a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", got, want)
		}
	}
}

func TestActivationCatchUp(t *testing.T) {
	s := New(Config{Workers: 0})
	defer s.Close()
	// Tenant a works alone for a while, accumulating pass.
	for i := 0; i < 4; i++ {
		if _, err := s.Submit("a", scanReq(simulate.Mondrian)); err != nil {
			t.Fatal(err)
		}
	}
	popOrder(s, 4)
	// b arrives late: it must not get 4 back-to-back dispatches to
	// "repay" a's head start — it joins at the current virtual time.
	for i := 0; i < 2; i++ {
		if _, err := s.Submit("a", scanReq(simulate.Mondrian)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Submit("b", scanReq(simulate.Mondrian)); err != nil {
			t.Fatal(err)
		}
	}
	got := popOrder(s, 4)
	// b joins at the virtual time of the last dispatch and alternates
	// with a from there — never a back-to-back burst.
	want := []string{"b", "a", "b", "a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-activation order = %v, want %v", got, want)
		}
	}
}

func TestPriorityWithinTenant(t *testing.T) {
	s := New(Config{Workers: 0})
	defer s.Close()
	var tickets []*Ticket
	for _, prio := range []int{0, 5, 1} {
		req := scanReq(simulate.Mondrian)
		req.Priority = prio
		tk, err := s.Submit("a", req)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	s.mu.Lock()
	var prios []int
	for s.queued > 0 {
		it := s.popLocked()
		s.footprint -= it.footprint
		prios = append(prios, it.req.Priority)
	}
	s.mu.Unlock()
	want := []int{5, 1, 0}
	for i := range want {
		if prios[i] != want[i] {
			t.Fatalf("priority order = %v, want %v", prios, want)
		}
	}
	_ = tickets
}

func TestCloseCancelsQueued(t *testing.T) {
	s := New(Config{Workers: 0})
	tk, err := s.Submit("a", scanReq(simulate.Mondrian))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if r := tk.Wait(); !errors.Is(r.Err, ErrClosed) {
		t.Fatalf("queued ticket after Close: %+v, want ErrClosed", r.Err)
	}
	if _, err := s.Submit("a", scanReq(simulate.Mondrian)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close = %v, want ErrClosed", err)
	}
	if got := s.Footprint(); got != 0 {
		t.Fatalf("footprint after Close = %d, want 0", got)
	}
}

// TestEndToEndServing exercises the full service under real workers:
// three tenants, mixed operator and plan requests, per-tenant metrics,
// and responses byte-identical to direct simulate calls.
func TestEndToEndServing(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Workers: 4, Obs: reg, HarvestExchange: true})
	defer s.Close()

	p := serveParams()
	type sub struct {
		tenant string
		req    Request
	}
	subs := []sub{
		{"alice", Request{System: simulate.Mondrian, Operator: simulate.OpJoin, Params: p}},
		{"alice", Request{System: simulate.CPU, Operator: simulate.OpScan, Params: p}},
		{"bob", Request{System: simulate.NMP, Operator: simulate.OpGroupBy, Params: p}},
		{"bob", Request{System: simulate.Mondrian, Plan: simulate.PlanFilterSort, IsPlan: true, Params: p}},
		{"carol", Request{System: simulate.Mondrian, Operator: simulate.OpSort, Params: p}},
	}
	tickets := make([]*Ticket, len(subs))
	for i, su := range subs {
		tk, err := s.Submit(su.tenant, su.req)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets[i] = tk
	}
	for i, tk := range tickets {
		r := tk.Wait()
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		if r.QueueNs < 0 {
			t.Fatalf("request %d: negative queue wait", i)
		}
		// A served response must match a direct simulate call byte for
		// byte — the service layer adds scheduling, never simulation.
		if subs[i].req.IsPlan {
			if !r.PlanResult.Verified {
				t.Fatalf("request %d: not verified", i)
			}
			direct, err := simulate.RunPlan(subs[i].req.System, subs[i].req.Plan, subs[i].req.Params)
			if err != nil {
				t.Fatal(err)
			}
			gj, _ := json.Marshal(r.PlanResult)
			wj, _ := json.Marshal(direct)
			if !bytes.Equal(gj, wj) {
				t.Errorf("request %d: served plan result differs from direct run", i)
			}
		} else {
			if !r.Result.Verified {
				t.Fatalf("request %d: not verified", i)
			}
			direct, err := simulate.Run(subs[i].req.System, subs[i].req.Operator, subs[i].req.Params)
			if err != nil {
				t.Fatal(err)
			}
			gj, _ := json.Marshal(r.Result)
			wj, _ := json.Marshal(direct)
			if !bytes.Equal(gj, wj) {
				t.Errorf("request %d: served result differs from direct run", i)
			}
		}
	}

	snap := reg.Snapshot()
	runs := func(tenant string) uint64 {
		return snap.Counters[obs.Label("tenant_runs", "tenant", tenant)]
	}
	if runs("alice") != 2 || runs("bob") != 2 || runs("carol") != 1 {
		t.Fatalf("tenant_runs = alice:%d bob:%d carol:%d", runs("alice"), runs("bob"), runs("carol"))
	}
	for _, tenant := range []string{"alice", "bob", "carol"} {
		if ns := snap.Gauges[obs.Label("tenant_sim_ns", "tenant", tenant)]; ns <= 0 {
			t.Errorf("tenant_sim_ns for %s = %v, want positive", tenant, ns)
		}
		h := snap.Histograms[obs.Label("tenant_queue_wait_ns", "tenant", tenant)]
		if h.Count == 0 {
			t.Errorf("no queue-wait observations for %s", tenant)
		}
	}
	// Join distributes both relations across vaults, so alice's mix must
	// have moved exchange bytes.
	if xb := snap.Counters[obs.Label("tenant_exchange_bytes", "tenant", "alice")]; xb == 0 {
		t.Error("tenant_exchange_bytes for alice = 0, want positive")
	}
}

func TestFootprintBytes(t *testing.T) {
	p := serveParams()
	want := int64(p.Cubes) * int64(p.VaultsPer) * p.VaultCapBytes
	if got := footprintBytes(p); got != want {
		t.Fatalf("footprintBytes = %d, want %d", got, want)
	}
	p.Cubes = 0
	if got := footprintBytes(p); got != 0 {
		t.Fatalf("degenerate footprint = %d, want 0", got)
	}
}
