package simulate

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// TestBulkDifferential is the bulk-path acceptance test: for every
// (System, Operator) pair, the complete Result — timing, energy, DRAM
// stats, step timeline — and its JSON encoding are byte-identical
// whether the run-based bulk fast path or the per-tuple reference
// implementation executes. The bulk path may only change wall-clock
// time, never a simulated number.
func TestBulkDifferential(t *testing.T) {
	for _, s := range Systems() {
		for _, op := range Operators() {
			s, op := s, op
			t.Run(s.String()+"/"+op.String(), func(t *testing.T) {
				t.Parallel()
				var golden *Result
				var goldenJSON []byte
				for _, noBulk := range []bool{false, true} {
					p := goldenParams()
					p.NoBulk = noBulk
					r, err := Run(s, op, p)
					if err != nil {
						t.Fatalf("noBulk=%v: %v", noBulk, err)
					}
					if !r.Verified {
						t.Fatalf("noBulk=%v: output verification failed", noBulk)
					}
					j, err := json.Marshal(r)
					if err != nil {
						t.Fatalf("noBulk=%v: marshal: %v", noBulk, err)
					}
					if golden == nil {
						golden, goldenJSON = r, j
						continue
					}
					if !reflect.DeepEqual(golden, r) {
						t.Errorf("Result with reference path differs from bulk path")
					}
					if !bytes.Equal(goldenJSON, j) {
						t.Errorf("report JSON with reference path differs from bulk path:\n%s\nvs\n%s",
							goldenJSON, j)
					}
				}
			})
		}
	}
}

// TestBulkDifferentialParallel repeats the bulk/reference comparison at
// parallelism 4 for one representative sequential-algorithm system, so
// the bulk trace-buffer replay is exercised under the worker pool too.
func TestBulkDifferentialParallel(t *testing.T) {
	for _, op := range Operators() {
		op := op
		t.Run(op.String(), func(t *testing.T) {
			t.Parallel()
			var golden *Result
			for _, noBulk := range []bool{false, true} {
				p := goldenParams()
				p.NoBulk = noBulk
				p.Parallelism = 4
				r, err := Run(Mondrian, op, p)
				if err != nil {
					t.Fatalf("noBulk=%v: %v", noBulk, err)
				}
				if golden == nil {
					golden = r
					continue
				}
				if !reflect.DeepEqual(golden, r) {
					t.Errorf("Result with reference path differs from bulk path at parallelism 4")
				}
			}
		})
	}
}
