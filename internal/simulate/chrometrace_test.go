package simulate

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"github.com/ecocloud-go/mondrian/internal/obs"
)

// TestChromeTraceDeterminism mirrors TestManifestDeterminism for the
// Chrome trace exporter: the rendered trace_event JSON carries simulated
// timestamps only, so the same run at parallelism 1, 4 and GOMAXPROCS
// must produce byte-identical output. A representative subset of the
// matrix keeps the test fast — span-tree determinism across the full
// matrix is already pinned by the manifest suite; this adds the
// exporter's own byte stability.
func TestChromeTraceDeterminism(t *testing.T) {
	levels := []int{1, 4, runtime.GOMAXPROCS(0)}
	cases := []struct {
		sys System
		op  Operator
	}{
		{Mondrian, OpJoin},
		{Mondrian, OpSort},
		{NMP, OpGroupBy},
		{CPU, OpScan},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.sys.String()+"/"+tc.op.String(), func(t *testing.T) {
			t.Parallel()
			var golden []byte
			for _, par := range levels {
				p := goldenParams()
				p.Parallelism = par
				p.Obs = obs.NewRegistry()
				r, err := Run(tc.sys, tc.op, p)
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				var buf bytes.Buffer
				if err := obs.WriteChromeTrace(&buf, r.Spans); err != nil {
					t.Fatalf("parallelism %d: WriteChromeTrace: %v", par, err)
				}
				if golden == nil {
					golden = append([]byte(nil), buf.Bytes()...)
					// The first rendering must be a valid trace_event doc
					// with at least the run span and one track.
					var doc struct {
						TraceEvents []map[string]any `json:"traceEvents"`
					}
					if err := json.Unmarshal(golden, &doc); err != nil {
						t.Fatalf("invalid trace JSON: %v", err)
					}
					if len(doc.TraceEvents) < 2 {
						t.Fatalf("trace has %d events, want at least a metadata and a span event", len(doc.TraceEvents))
					}
					continue
				}
				if !bytes.Equal(golden, buf.Bytes()) {
					t.Errorf("chrome trace at parallelism %d differs from parallelism %d", par, levels[0])
				}
			}
		})
	}
}

// TestManifestWindowSummaries: the manifest digests every histogram into
// a sorted p50/p95/p99 window summary.
func TestManifestWindowSummaries(t *testing.T) {
	p := goldenParams()
	p.Obs = obs.NewRegistry()
	r, err := Run(Mondrian, OpSort, p)
	if err != nil {
		t.Fatal(err)
	}
	m := BuildManifest(r, p, false)
	if len(m.Windows) == 0 {
		t.Fatalf("manifest has no window summaries")
	}
	if len(m.Windows) != len(m.Metrics.Histograms) {
		t.Fatalf("summaries = %d, histograms = %d", len(m.Windows), len(m.Metrics.Histograms))
	}
	seen := map[string]bool{}
	for i, w := range m.Windows {
		if i > 0 && m.Windows[i-1].Name >= w.Name {
			t.Fatalf("window summaries not sorted: %q then %q", m.Windows[i-1].Name, w.Name)
		}
		h, ok := m.Metrics.Histograms[w.Name]
		if !ok {
			t.Fatalf("summary %q has no matching histogram", w.Name)
		}
		if w.Count != h.Count {
			t.Fatalf("summary %q count %d != histogram %d", w.Name, w.Count, h.Count)
		}
		if h.Count > 0 && w.P99 < w.P50 {
			t.Fatalf("summary %q p99 %g < p50 %g", w.Name, w.P99, w.P50)
		}
		seen[w.Name] = true
	}
	if !seen["step_ns"] || !seen["mesh_hops"] {
		t.Fatalf("expected step_ns and mesh_hops summaries, got %v", seen)
	}
}
