package simulate

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// TestColumnarEquivalence is the acceptance test for the columnar
// (structure-of-arrays) host kernels: for every (System, Operator) pair,
// with skew-aware execution off and on, the complete Result — timing,
// energy, DRAM stats, step timeline — and its JSON encoding are
// byte-identical with Columnar on or off. The columnar scan, partition,
// sort, group-by and join kernels may only change host wall-clock time
// and allocation behaviour — never a simulated number.
func TestColumnarEquivalence(t *testing.T) {
	for _, s := range Systems() {
		for _, op := range Operators() {
			for _, skew := range []bool{false, true} {
				s, op, skew := s, op, skew
				sub := s.String() + "/" + op.String()
				if skew {
					sub += "/skew"
				}
				t.Run(sub, func(t *testing.T) {
					t.Parallel()
					var golden *Result
					var goldenJSON []byte
					for _, columnar := range []bool{false, true} {
						p := goldenParams()
						p.SkewAware = skew
						p.Columnar = columnar
						r, err := Run(s, op, p)
						if err != nil {
							t.Fatalf("columnar=%v: %v", columnar, err)
						}
						if !r.Verified {
							t.Fatalf("columnar=%v: output verification failed", columnar)
						}
						j, err := json.Marshal(r)
						if err != nil {
							t.Fatalf("columnar=%v: marshal: %v", columnar, err)
						}
						if golden == nil {
							golden, goldenJSON = r, j
							continue
						}
						if !reflect.DeepEqual(golden, r) {
							t.Errorf("Result differs between columnar off and on")
						}
						if !bytes.Equal(goldenJSON, j) {
							t.Errorf("report JSON differs between columnar off and on:\n%s\nvs\n%s",
								goldenJSON, j)
						}
					}
				})
			}
		}
	}
}

// TestColumnarIgnoredUnderNoBulk pins the flag interaction: NoBulk
// forces the per-tuple reference loops, so Columnar must be inert — the
// engine reports the combination as non-columnar and the run result
// matches the plain NoBulk run exactly.
func TestColumnarIgnoredUnderNoBulk(t *testing.T) {
	p := goldenParams()
	p.NoBulk = true
	ref, err := Run(Mondrian, OpSort, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Columnar = true
	got, err := Run(Mondrian, OpSort, p)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := json.Marshal(ref)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(refJSON, gotJSON) {
		t.Fatal("Columnar changed a NoBulk run")
	}
}
