package simulate

import (
	"encoding/json"
	"fmt"
	"testing"
)

func TestDriftProbe(t *testing.T) {
	p := TestParams()
	p.STuples = 1 << 12
	p.RTuples = 1 << 11
	p.KeySpace = 1 << 14
	for _, s := range Systems() {
		for _, op := range Operators() {
			r, err := Run(s, op, p)
			if err != nil {
				t.Fatal(err)
			}
			j, _ := json.Marshal(r)
			fmt.Printf("%s/%s %x\n", s, op, j)
		}
	}
}
