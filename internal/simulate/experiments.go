package simulate

import (
	"fmt"

	"github.com/ecocloud-go/mondrian/internal/energy"
)

// This file assembles the paper's evaluation artifacts (§7) from raw runs:
//
//	Table 5 — partition-phase speedup vs CPU
//	Fig. 6  — probe-phase speedup vs CPU per operator
//	Fig. 7  — overall speedup vs CPU per operator
//	Fig. 8  — energy breakdown per system
//	Fig. 9  — efficiency (performance/energy) improvement vs CPU

// Suite memoizes experiment runs so the figures share the underlying
// (system, operator) results instead of re-simulating them. Cache misses
// go through Run and therefore the shared engine pool (pool.go): a full
// sweep constructs each system's engine once and reuses it across the
// four operators instead of rebuilding it per cell.
type Suite struct {
	Params Params
	cache  map[System]map[Operator]*Result
}

// NewSuite creates an empty suite for the given parameters.
func NewSuite(p Params) *Suite {
	return &Suite{Params: p, cache: make(map[System]map[Operator]*Result)}
}

// Get runs (or returns the cached) experiment for one system × operator.
func (su *Suite) Get(s System, op Operator) (*Result, error) {
	if m, ok := su.cache[s]; ok {
		if r, ok := m[op]; ok {
			return r, nil
		}
	}
	r, err := Run(s, op, su.Params)
	if err != nil {
		return nil, fmt.Errorf("%v/%v: %w", s, op, err)
	}
	if !r.Verified {
		return nil, fmt.Errorf("%v/%v: output verification failed", s, op)
	}
	if su.cache[s] == nil {
		su.cache[s] = make(map[Operator]*Result)
	}
	su.cache[s][op] = r
	return r, nil
}

// Table5Row is one row of the partition-speedup table.
type Table5Row struct {
	System            System
	SpeedupVsCPU      float64
	DistBWPerVaultGBs float64
	PartitionNs       float64
}

// Table5Systems are the configurations the paper compares for the
// partitioning phase.
func Table5Systems() []System { return []System{NMP, NMPPerm, MondrianNoPerm, Mondrian} }

// Table5 measures the Join operator's partitioning phase (the paper notes
// the partitioning phase is nearly identical across operators and reports
// Join's).
func (su *Suite) Table5() ([]Table5Row, error) {
	cpu, err := su.Get(CPU, OpJoin)
	if err != nil {
		return nil, err
	}
	rows := make([]Table5Row, 0, 4)
	for _, s := range Table5Systems() {
		r, err := su.Get(s, OpJoin)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table5Row{
			System:            s,
			SpeedupVsCPU:      cpu.PartitionNs / r.PartitionNs,
			DistBWPerVaultGBs: r.DistBWPerVaultGBs,
			PartitionNs:       r.PartitionNs,
		})
	}
	return rows, nil
}

// FigSeries is one bar group of a per-operator figure.
type FigSeries struct {
	System   System
	Speedups map[Operator]float64
}

// Fig6Systems are the probe-phase configurations.
func Fig6Systems() []System { return []System{NMPRand, NMPSeq, Mondrian} }

// Fig6 measures probe-phase speedups over the CPU.
func (su *Suite) Fig6() ([]FigSeries, error) {
	var out []FigSeries
	for _, s := range Fig6Systems() {
		series := FigSeries{System: s, Speedups: make(map[Operator]float64)}
		for _, op := range Operators() {
			cpu, err := su.Get(CPU, op)
			if err != nil {
				return nil, err
			}
			r, err := su.Get(s, op)
			if err != nil {
				return nil, err
			}
			series.Speedups[op] = cpu.ProbeNs / r.ProbeNs
		}
		out = append(out, series)
	}
	return out, nil
}

// Fig7Systems are the end-to-end configurations: the NMP baselines pair
// their partition variant with the best-performing probe (NMP-rand).
func Fig7Systems() []System { return []System{NMP, NMPPerm, Mondrian} }

// Fig7 measures overall (partition+probe) speedups over the CPU.
func (su *Suite) Fig7() ([]FigSeries, error) {
	var out []FigSeries
	for _, s := range Fig7Systems() {
		series := FigSeries{System: s, Speedups: make(map[Operator]float64)}
		for _, op := range Operators() {
			cpu, err := su.Get(CPU, op)
			if err != nil {
				return nil, err
			}
			r, err := su.Get(s, op)
			if err != nil {
				return nil, err
			}
			series.Speedups[op] = cpu.TotalNs / r.TotalNs
		}
		out = append(out, series)
	}
	return out, nil
}

// Fig8Entry is one system's energy breakdown for one operator.
type Fig8Entry struct {
	System    System
	Operator  Operator
	Breakdown energy.Breakdown
}

// Fig8Systems are the energy-comparison configurations.
func Fig8Systems() []System { return []System{CPU, NMP, NMPPerm, Mondrian} }

// Fig8 measures the energy breakdown of every system × operator.
func (su *Suite) Fig8() ([]Fig8Entry, error) {
	var out []Fig8Entry
	for _, op := range Operators() {
		for _, s := range Fig8Systems() {
			r, err := su.Get(s, op)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig8Entry{System: s, Operator: op, Breakdown: r.Energy})
		}
	}
	return out, nil
}

// Fig9 measures efficiency (performance per energy) improvement vs CPU.
func (su *Suite) Fig9() ([]FigSeries, error) {
	var out []FigSeries
	for _, s := range []System{NMP, NMPPerm, Mondrian} {
		series := FigSeries{System: s, Speedups: make(map[Operator]float64)}
		for _, op := range Operators() {
			cpu, err := su.Get(CPU, op)
			if err != nil {
				return nil, err
			}
			r, err := su.Get(s, op)
			if err != nil {
				return nil, err
			}
			series.Speedups[op] = r.Efficiency() / cpu.Efficiency()
		}
		out = append(out, series)
	}
	return out, nil
}
