package simulate

import (
	"errors"
	"testing"
)

// FuzzRunNoPanic is the boundary's no-crash guarantee: for any Params in
// the mutated space, any System and any Operator, Run either returns a
// result or a typed error — never a panic, and never an internal-invariant
// failure on an input that Validate accepted. The seed corpus covers each
// formerly-crashing reproducer from the issue (negative STuples, join with
// RTuples=0, GroupSize=0, VaultCapBytes=0), a silently-accepted non-pow2
// KeySpace, and the Zipf exponents s ≤ 1 that panicked workload generation
// before Zipf grew an error contract. The mutated space also spans the
// skew-aware execution path (SkewAware × ZipfS) and the columnar host
// kernels (Columnar, including the NoBulk interaction that disables
// them), so the detector, provisioning, splitting, stealing and
// structure-of-arrays layers all sit under the no-crash guarantee.
//
// The harness folds raw fuzz values into bounded magnitudes — preserving
// sign, zero and non-pow2 structure so every rejection path stays
// reachable — because the guarantee excludes host-resource exhaustion:
// Validate's job is typed rejection, not making a others-of-terabytes run
// affordable.
func FuzzRunNoPanic(f *testing.F) {
	// One seed per formerly-crashing probe, on the system/operator that
	// crashed, plus healthy baselines for every system so the fuzzer
	// starts from accepted inputs too.
	type seed struct {
		sys, op, cubes, vaultsPer, sTup, rTup, group int
		keySpace                                     uint64
		vaultCap                                     int64
		cpuBuckets, par                              int
		seed                                         int64
		noBulk, skewAware, columnar                  bool
		zipfS                                        float64
	}
	seeds := []seed{
		{int(Mondrian), int(OpScan), 1, 4, -5, 1 << 10, 4, 1 << 20, 16 << 20, 0, 1, 42, false, false, false, 0},         // -s-tuples -5
		{int(Mondrian), int(OpJoin), 1, 4, 1 << 11, 0, 4, 1 << 20, 16 << 20, 0, 1, 42, false, false, false, 0},          // join -r-tuples 0
		{int(Mondrian), int(OpGroupBy), 1, 4, 1 << 11, 1 << 10, 0, 1 << 20, 16 << 20, 0, 1, 42, false, false, false, 0}, // GroupSize=0
		{int(Mondrian), int(OpScan), 1, 4, 1 << 11, 1 << 10, 4, 1 << 20, 0, 0, 1, 42, false, false, false, 0},           // VaultCapBytes=0
		{int(NMP), int(OpSort), 1, 4, 1 << 11, 1 << 10, 4, 3 << 10, 16 << 20, 0, 1, 42, false, false, false, 0},         // non-pow2 KeySpace
		{int(CPU), int(OpJoin), 1, 4, 1 << 11, 1 << 10, 4, 1 << 20, 16 << 20, 1 << 8, 1, 42, false, false, true, 0},
		{int(NMPPerm), int(OpGroupBy), 1, 4, 1 << 11, 1 << 10, 4, 1 << 20, 16 << 20, 0, 2, 7, true, false, false, 0},
		{int(NMPRand), int(OpScan), 2, 4, 1 << 10, 1 << 9, 4, 1 << 18, 8 << 20, 0, 0, 3, false, false, false, 0},
		{int(NMPSeq), int(OpSort), 1, 1, 1 << 10, 1 << 9, 4, 1 << 18, 8 << 20, 0, 1, 9, false, false, true, 0},
		{int(MondrianNoPerm), int(OpJoin), 1, 4, 1 << 11, 1 << 10, 4, 1 << 20, 16 << 20, 0, 3, 11, false, false, false, 0},
		// The formerly-panicking Zipf exponents (s ≤ 1 crashed workload
		// generation before validation rejected them) and live skew shapes.
		{int(Mondrian), int(OpSort), 1, 4, 1 << 11, 1 << 10, 4, 1 << 20, 16 << 20, 0, 1, 42, false, false, false, 1.0},
		{int(Mondrian), int(OpGroupBy), 1, 4, 1 << 11, 1 << 10, 4, 1 << 20, 16 << 20, 0, 1, 42, false, true, false, 0.5},
		{int(Mondrian), int(OpGroupBy), 1, 4, 1 << 12, 1 << 10, 4, 1 << 20, 16 << 20, 0, 1, 42, false, true, true, 2.0},
		{int(CPU), int(OpJoin), 1, 4, 1 << 12, 1 << 10, 4, 1 << 20, 16 << 20, 1 << 8, 2, 42, false, true, false, 1.5},
		{int(NMPSeq), int(OpSort), 1, 4, 1 << 11, 1 << 10, 4, 1 << 20, 16 << 20, 0, 4, 9, true, true, true, 1.1},
	}
	for _, s := range seeds {
		f.Add(s.sys, s.op, s.cubes, s.vaultsPer, s.sTup, s.rTup, s.group,
			s.keySpace, s.vaultCap, s.cpuBuckets, s.par, s.seed, s.noBulk,
			s.skewAware, s.columnar, s.zipfS)
	}

	f.Fuzz(func(t *testing.T, sysRaw, opRaw, cubes, vaultsPer, sTup, rTup, group int,
		keySpace uint64, vaultCap int64, cpuBuckets, par int, seed int64, noBulk bool,
		skewAware, columnar bool, zipfS float64) {
		p := TestParams()
		// Bound magnitudes so accepted inputs stay affordable; Go's %
		// keeps the sign, so negative and zero garbage still reaches the
		// rejection paths, and keySpace keeps its non-pow2 structure.
		p.Cubes = cubes % 4
		p.VaultsPer = vaultsPer % 10
		p.CPUCores = 2
		p.STuples = sTup % (1 << 12)
		p.RTuples = rTup % (1 << 11)
		p.GroupSize = group % 64
		p.KeySpace = keySpace % (1 << 26)
		p.VaultCapBytes = vaultCap % (1 << 25)
		p.CPUBuckets = cpuBuckets % (1 << 12)
		p.Parallelism = par % 8
		p.Seed = seed
		p.NoBulk = noBulk
		p.SkewAware = skewAware
		p.Columnar = columnar
		// ZipfS passes through raw: NaN/Inf/s ≤ 1 must reach the typed
		// rejection, and any accepted s > 1 is affordable at the bounded
		// tuple counts. Huge exponents just degenerate to one hot key.
		p.ZipfS = zipfS
		// Selectors range over [-1, count]: every valid value plus one
		// invalid probe on each side.
		sys := System(mod(sysRaw, int(numSystems)+2) - 1)
		op := Operator(mod(opRaw, int(numOperators)+2) - 1)

		validated := validateSystemOperator(sys, op) == nil && p.Validate() == nil
		res, err := Run(sys, op, p)
		if err != nil {
			var ie *InternalError
			if errors.As(err, &ie) {
				t.Fatalf("internal invariant tripped (validated=%v) on %v/%v %+v: %v\n%s",
					validated, sys, op, p, ie, ie.StackTrace())
			}
			if validated && errors.As(err, new(*ParamError)) {
				t.Fatalf("Validate accepted %+v but Run rejected it: %v", p, err)
			}
			return // typed rejection or a clean runtime error (e.g. overflow)
		}
		if !validated {
			t.Fatalf("Run accepted input that Validate rejects: %v/%v %+v", sys, op, p)
		}
		if res == nil {
			t.Fatal("nil result without error")
		}
	})
}

// mod is the non-negative remainder.
func mod(v, m int) int { return (v%m + m) % m }
