package simulate

import (
	"bytes"
	"encoding/json"
	"reflect"
	"runtime"
	"testing"
)

// goldenParams shrinks the workload so the full system × operator ×
// parallelism matrix stays fast while still exercising every phase
// (multi-pass partitioning, shuffles, probes).
func goldenParams() Params {
	p := TestParams()
	p.STuples = 1 << 13
	p.RTuples = 1 << 12
	p.KeySpace = 1 << 16
	p.CPUBuckets = 1 << 8
	return p
}

// TestGoldenDeterminism is the tentpole acceptance test: for every
// (System, Operator) pair, the complete Result — timing, energy, DRAM
// stats, step timeline — and its JSON encoding are byte-identical at
// parallelism 1, 4, and GOMAXPROCS. Host concurrency must never leak
// into simulated results.
func TestGoldenDeterminism(t *testing.T) {
	levels := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, s := range Systems() {
		for _, op := range Operators() {
			s, op := s, op
			t.Run(s.String()+"/"+op.String(), func(t *testing.T) {
				t.Parallel()
				var golden *Result
				var goldenJSON []byte
				for _, par := range levels {
					p := goldenParams()
					p.Parallelism = par
					r, err := Run(s, op, p)
					if err != nil {
						t.Fatalf("parallelism %d: %v", par, err)
					}
					if !r.Verified {
						t.Fatalf("parallelism %d: output verification failed", par)
					}
					j, err := json.Marshal(r)
					if err != nil {
						t.Fatalf("parallelism %d: marshal: %v", par, err)
					}
					if golden == nil {
						golden, goldenJSON = r, j
						continue
					}
					if !reflect.DeepEqual(golden, r) {
						t.Errorf("Result at parallelism %d differs from parallelism %d", par, levels[0])
					}
					if !bytes.Equal(goldenJSON, j) {
						t.Errorf("report JSON at parallelism %d differs from parallelism %d:\n%s\nvs\n%s",
							par, levels[0], goldenJSON, j)
					}
				}
			})
		}
	}
}
