package simulate

import (
	"github.com/ecocloud-go/mondrian/internal/energy"
	"github.com/ecocloud-go/mondrian/internal/obs"
)

// ManifestParams is the workload description embedded in a run manifest.
// It deliberately EXCLUDES Parallelism and NoBulk-style host knobs that
// do not affect simulated results — those live in the manifest's Host
// section — so two runs of the same workload at different -parallelism
// settings produce byte-identical Deterministic() manifests. Struct
// fields marshal in declaration order, keeping the JSON deterministic.
type ManifestParams struct {
	Cubes         int     `json:"cubes"`
	VaultsPer     int     `json:"vaults_per"`
	CPUCores      int     `json:"cpu_cores"`
	VaultCapBytes int64   `json:"vault_cap_bytes"`
	STuples       int     `json:"s_tuples"`
	RTuples       int     `json:"r_tuples"`
	GroupSize     int     `json:"group_size"`
	KeySpace      uint64  `json:"key_space"`
	CPUBuckets    int     `json:"cpu_buckets"`
	Seed          int64   `json:"seed"`
	BarrierNs     float64 `json:"barrier_ns"`
}

// manifestParams projects the deterministic workload description out of
// a full Params.
func manifestParams(p Params) ManifestParams {
	return ManifestParams{
		Cubes:         p.Cubes,
		VaultsPer:     p.VaultsPer,
		CPUCores:      p.CPUCores,
		VaultCapBytes: p.VaultCapBytes,
		STuples:       p.STuples,
		RTuples:       p.RTuples,
		GroupSize:     p.GroupSize,
		KeySpace:      p.KeySpace,
		CPUBuckets:    p.CPUBuckets,
		Seed:          p.Seed,
		BarrierNs:     p.BarrierNs,
	}
}

// collectEnergy records the run's energy breakdown as gauges. Energy is a
// pure function of simulated activity, so these are deterministic.
func collectEnergy(reg *obs.Registry, b energy.Breakdown) {
	reg.Gauge("energy_dram_dynamic_j").Set(b.DRAMDynamic)
	reg.Gauge("energy_dram_static_j").Set(b.DRAMStatic)
	reg.Gauge("energy_cores_j").Set(b.Cores)
	reg.Gauge("energy_llc_j").Set(b.LLC)
	reg.Gauge("energy_network_j").Set(b.Network)
	reg.Gauge("energy_total_j").Set(b.Total())
}

// BuildManifest assembles the machine-readable run manifest for one
// Result produced with p.Obs set: workload params, per-phase timings,
// every collected metric, and (when includeSpans) the span tree. The
// caller owns the host-side stamps the simulation cannot know —
// Host.WallNs and Host.Timestamp. Everything outside Host and per-phase
// WallNs is byte-identical across -parallelism settings; see
// Manifest.Deterministic.
func BuildManifest(res *Result, p Params, includeSpans bool) *obs.Manifest {
	m := &obs.Manifest{
		Schema:           obs.ManifestSchema,
		System:           res.System.String(),
		Operator:         res.Operator.String(),
		Params:           manifestParams(p),
		Verified:         res.Verified,
		SimulatedTotalNs: res.TotalNs,
		Metrics:          p.Obs.Snapshot(),
		Host:             obs.NewHostInfo(p.Parallelism),
	}
	m.Windows = obs.SummarizeHistograms(m.Metrics)
	for _, ph := range res.Phases {
		m.Phases = append(m.Phases, obs.PhaseSummary{
			Name:        ph.Name,
			SimulatedNs: ph.SimulatedNs(),
			WallNs:      ph.WallNs,
		})
	}
	if includeSpans {
		m.Spans = res.Spans
	}
	return m
}
