package simulate

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"github.com/ecocloud-go/mondrian/internal/obs"
)

// runWithObs executes one experiment with a fresh registry and returns
// its manifest (spans included, so span determinism is covered too).
func runWithObs(t *testing.T, s System, op Operator, p Params) *obs.Manifest {
	t.Helper()
	p.Obs = obs.NewRegistry()
	r, err := Run(s, op, p)
	if err != nil {
		t.Fatalf("%v/%v: %v", s, op, err)
	}
	if !r.Verified {
		t.Fatalf("%v/%v: output verification failed", s, op)
	}
	return BuildManifest(r, p, true)
}

// TestManifestDeterminism is the tentpole acceptance test for the
// observability layer: for every (System, Operator) pair, the manifest's
// deterministic projection — every counter, gauge, histogram, per-phase
// simulated time, and the span tree — is byte-identical at parallelism
// 1, 4 and GOMAXPROCS. Host concurrency must never leak into metrics.
func TestManifestDeterminism(t *testing.T) {
	levels := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, s := range Systems() {
		for _, op := range Operators() {
			s, op := s, op
			t.Run(s.String()+"/"+op.String(), func(t *testing.T) {
				t.Parallel()
				var golden []byte
				for _, par := range levels {
					p := goldenParams()
					p.Parallelism = par
					m := runWithObs(t, s, op, p)
					j, err := json.Marshal(m.Deterministic())
					if err != nil {
						t.Fatalf("parallelism %d: marshal: %v", par, err)
					}
					if golden == nil {
						golden = j
						continue
					}
					if !bytes.Equal(golden, j) {
						t.Errorf("manifest at parallelism %d differs from parallelism %d:\n%s\nvs\n%s",
							par, levels[0], golden, j)
					}
				}
			})
		}
	}
}

// TestManifestContent sanity-checks that the hot layers actually reported:
// a Mondrian sort must show partition+probe phases, DRAM row activity,
// stream-buffer fills, permutable writes, SerDes traffic and spans.
func TestManifestContent(t *testing.T) {
	m := runWithObs(t, Mondrian, OpSort, goldenParams())

	if m.Schema != obs.ManifestSchema {
		t.Errorf("schema = %q", m.Schema)
	}
	if m.System != "Mondrian" || m.Operator != "Sort" {
		t.Errorf("identity = %s/%s", m.System, m.Operator)
	}
	if !m.Verified {
		t.Errorf("manifest not marked verified")
	}
	if m.SimulatedTotalNs <= 0 {
		t.Errorf("SimulatedTotalNs = %g", m.SimulatedTotalNs)
	}

	var names []string
	for _, ph := range m.Phases {
		names = append(names, ph.Name)
		if ph.SimulatedNs <= 0 {
			t.Errorf("phase %q has non-positive simulated time", ph.Name)
		}
	}
	if len(names) != 2 || names[0] != "partition" || names[1] != "probe" {
		t.Errorf("phases = %v, want [partition probe]", names)
	}

	c := m.Metrics.Counters
	for _, name := range []string{
		"dram_row_hits", "dram_activations", "accesses_total",
		"stream_fill_bytes", "permuted_writes", "serdes_bytes",
		"mesh_bytes", "exchange_tuples", "exchange_permutable_writes",
		`phase_dram_bytes{phase="partition"}`,
		`phase_dram_bytes{phase="probe"}`,
	} {
		if c[name] == 0 {
			t.Errorf("counter %q is zero or missing", name)
		}
	}
	if m.Metrics.Gauges["sim_total_ns"] != m.SimulatedTotalNs {
		t.Errorf("sim_total_ns gauge %g != total %g",
			m.Metrics.Gauges["sim_total_ns"], m.SimulatedTotalNs)
	}
	if m.Metrics.Gauges["energy_total_j"] <= 0 {
		t.Errorf("energy_total_j gauge missing")
	}
	if h, ok := m.Metrics.Histograms["mesh_hops"]; !ok || h.Count == 0 {
		t.Errorf("mesh_hops histogram empty")
	}

	if m.Spans == nil || m.Spans.Name != "run" {
		t.Fatalf("span tree missing")
	}
	if m.Spans.EndNs != m.SimulatedTotalNs {
		t.Errorf("root span end %g != total %g", m.Spans.EndNs, m.SimulatedTotalNs)
	}
	var phaseSpans int
	for _, c := range m.Spans.Children {
		if c.Name == "partition" || c.Name == "probe" {
			phaseSpans++
			if len(c.Children) == 0 {
				t.Errorf("phase span %q has no step children", c.Name)
			}
		}
	}
	if phaseSpans != 2 {
		t.Errorf("found %d phase spans, want 2", phaseSpans)
	}

	if m.Host.GoVersion == "" || m.Host.GOARCH == "" {
		t.Errorf("host info incomplete: %+v", m.Host)
	}
}

// TestManifestJoinPhases checks the Join dedup: two partition phases get
// distinct names, so per-phase counters do not collide.
func TestManifestJoinPhases(t *testing.T) {
	m := runWithObs(t, Mondrian, OpJoin, goldenParams())
	var names []string
	for _, ph := range m.Phases {
		names = append(names, ph.Name)
	}
	want := []string{"partition", "partition#2", "probe"}
	if len(names) != len(want) {
		t.Fatalf("phases = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("phases = %v, want %v", names, want)
		}
	}
}

// TestObsDisabledLeavesResultBare pins the disabled fast path: without a
// registry, Run must not attach phases or spans (and the golden fixtures
// of PR 4 stay byte-identical).
func TestObsDisabledLeavesResultBare(t *testing.T) {
	p := goldenParams()
	r, err := Run(Mondrian, OpScan, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Phases != nil || r.Spans != nil {
		t.Errorf("disabled obs must leave Phases/Spans nil")
	}
}
