package simulate

import (
	"fmt"
	"strings"

	"github.com/ecocloud-go/mondrian/internal/dram"
	"github.com/ecocloud-go/mondrian/internal/energy"
	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/obs"
	"github.com/ecocloud-go/mondrian/internal/operators"
	"github.com/ecocloud-go/mondrian/internal/plan"
	"github.com/ecocloud-go/mondrian/internal/tuple"
	"github.com/ecocloud-go/mondrian/internal/workload"
)

// Plan identifies one of the registered multi-operator query shapes — the
// way the paper's Table 1 workloads actually use the basic operators. Each
// shape is compiled by the query-plan compiler (internal/plan) and run as
// one experiment, so fused whole-query execution is measurable across the
// same system matrix as the single operators.
type Plan int

// The registered query shapes.
const (
	// PlanFilterSort: Sort(Filter(S)) — select then order.
	PlanFilterSort Plan = iota
	// PlanSortAgg: GroupBy(Sort(S)) — the aggregation consumes the sort's
	// range partition without re-shuffling.
	PlanSortAgg
	// PlanJoinAgg: GroupBy(Join(R, S)) — the aggregation consumes the
	// join's hash partition without re-shuffling.
	PlanJoinAgg
	// PlanJoinAggSort: Sort(GroupBy(Join(R, S))) — the full
	// select-join-aggregate-order chain.
	PlanJoinAggSort
	// PlanStarJoinAgg: GroupBy(S ⋈ R1 ⋈ R2) — a star shape whose greedy
	// join order keeps the running intermediate hash-partitioned, so every
	// join after the first elides its probe-side re-shuffle.
	PlanStarJoinAgg
	numPlans
)

// Plans lists every registered query shape — the RunAllPlans matrix.
func Plans() []Plan {
	out := make([]Plan, numPlans)
	for i := range out {
		out[i] = Plan(i)
	}
	return out
}

// String implements fmt.Stringer with the CLI spelling.
func (pl Plan) String() string {
	switch pl {
	case PlanFilterSort:
		return "filter-sort"
	case PlanSortAgg:
		return "sort-agg"
	case PlanJoinAgg:
		return "join-agg"
	case PlanJoinAggSort:
		return "join-agg-sort"
	case PlanStarJoinAgg:
		return "star-join-agg"
	default:
		return fmt.Sprintf("Plan(%d)", int(pl))
	}
}

// ParsePlan resolves a plan name (case-insensitive).
func ParsePlan(name string) (Plan, error) {
	for _, pl := range Plans() {
		if strings.EqualFold(name, pl.String()) {
			return pl, nil
		}
	}
	return 0, fmt.Errorf("simulate: unknown plan %q (want one of %s)",
		name, strings.Join(PlanNames(), ", "))
}

// PlanNames returns the CLI spellings of the registered plans.
func PlanNames() []string {
	out := make([]string, 0, numPlans)
	for _, pl := range Plans() {
		out = append(out, pl.String())
	}
	return out
}

// PlanResult is the outcome of one (system, plan) experiment.
type PlanResult struct {
	System System
	Plan   Plan

	TotalNs float64

	Energy energy.Breakdown
	DRAM   dram.Stats

	// Verified confirms the plan output matched the composed operator
	// references (full multiset, plus global order when the plan's final
	// stage is a Sort).
	Verified bool

	// Elisions counts the re-shuffles the compiler skipped; Stages is the
	// per-stage breakdown in execution order.
	Elisions int
	Stages   []plan.StageStats

	// Steps preserves the engine's step timeline.
	Steps []engine.StepTiming

	// Phases and Spans are populated only when Params.Obs is set (see
	// Result).
	Phases []engine.PhaseTiming `json:",omitempty"`
	Spans  *obs.Span            `json:",omitempty"`
}

// validateSystemPlan range-checks the plan experiment selectors.
func validateSystemPlan(s System, pl Plan) error {
	if n := registeredSystems(); s < 0 || int(s) >= n {
		return &ParamError{"System", int(s), fmt.Sprintf("want a registered system 0..%d", n-1)}
	}
	if pl < 0 || pl >= numPlans {
		return &ParamError{"Plan", int(pl), fmt.Sprintf("want 0..%d", int(numPlans)-1)}
	}
	return nil
}

// RunPlan compiles and executes one query plan on one system and verifies
// its output against the composed operator references. Like Run, it vets
// every caller input first and executes under the recovery boundary.
func RunPlan(s System, pl Plan, p Params) (*PlanResult, error) {
	if err := validateSystemPlan(s, pl); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var res *PlanResult
	err := Protect(fmt.Sprintf("%v/%v", s, pl), func() error {
		var err error
		res, err = runPlan(s, pl, p)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// joinInput generates the join relations: uniform foreign keys by default,
// Zipf-distributed when Params.ZipfS is set.
func joinInput(p Params) (rRel, sRel *tuple.Relation, err error) {
	c := workload.Config{Seed: p.Seed, Tuples: p.STuples}
	if p.ZipfS > 0 {
		return workload.FKPairZipf(c, p.RTuples, p.ZipfS)
	}
	return workload.FKPair(c, p.RTuples)
}

// groupInput generates the aggregation input relation (see run's OpGroupBy
// case for the Zipf rationale).
func groupInput(p Params) (*tuple.Relation, error) {
	c := workload.Config{Seed: p.Seed, Tuples: p.STuples, KeySpace: p.KeySpace}
	if p.ZipfS > 0 {
		return workload.Zipf("agg-in", c, p.ZipfS)
	}
	return workload.GroupBy(c, p.GroupSize)
}

// dimRelation builds the second star-schema dimension: keys [0, n) with a
// deterministic payload, so the expected join output is computable without
// another generator seed.
func dimRelation(n int) *tuple.Relation {
	rel := tuple.NewRelation("dim2", n)
	for i := 0; i < n; i++ {
		rel.Append1(tuple.Tuple{Key: tuple.Key(i), Val: tuple.Value(uint64(i)*2654435761 + 7)})
	}
	return rel
}

// runPlan is the unguarded experiment body; RunPlan wraps it in validation
// and the recovery boundary. Engine lifecycle matches run (run.go): pooled
// acquire, release on non-panicking returns.
func runPlan(s System, pl Plan, p Params) (*PlanResult, error) {
	e, release, err := acquireEngine(p, s)
	if err != nil {
		return nil, err
	}
	res, err := runPlanOn(e, s, pl, p)
	release()
	return res, err
}

// runPlanOn executes one compiled-plan experiment on the given pristine
// engine.
func runPlanOn(e *engine.Engine, s System, pl Plan, p Params) (*PlanResult, error) {
	opCfg := p.OperatorConfig(s)
	res := &PlanResult{System: s, Plan: pl}

	// Build the logical tree and the composed reference for each shape.
	var root plan.Node
	var want []tuple.Tuple // expected output multiset
	ordered := false       // final stage is a Sort → check global order too

	table := func(label string, rel *tuple.Relation) (*plan.Table, error) {
		regions, err := place(e, rel)
		if err != nil {
			return nil, err
		}
		return &plan.Table{Label: label, Regions: regions}, nil
	}

	switch pl {
	case PlanFilterSort:
		rel, err := streamInput("filter-in", p)
		if err != nil {
			return nil, err
		}
		needle, _ := workload.ScanTarget(rel, p.Seed+1)
		t, err := table("s", rel)
		if err != nil {
			return nil, err
		}
		root = &plan.Sort{In: &plan.Filter{In: t, Needle: needle}}
		want = operators.RefScan(rel.Tuples, needle)
		ordered = true

	case PlanSortAgg:
		rel, err := groupInput(p)
		if err != nil {
			return nil, err
		}
		t, err := table("s", rel)
		if err != nil {
			return nil, err
		}
		// The uniform generator draws keys from [0, STuples/GroupSize) —
		// far below the configured key space — so the sort stage must
		// range-split over the actual bound or every tuple funnels into
		// range bucket 0. The Zipf generator uses the full key space.
		var ks uint64
		if p.ZipfS == 0 {
			groups := p.STuples / p.GroupSize
			if groups < 1 {
				groups = 1
			}
			ks = uint64(groups)
		}
		root = &plan.GroupBy{In: &plan.Sort{In: t, KeySpace: ks}}
		want = operators.RefGroupByTuples(rel.Tuples)

	case PlanJoinAgg:
		rRel, sRel, err := joinInput(p)
		if err != nil {
			return nil, err
		}
		rT, err := table("r", rRel)
		if err != nil {
			return nil, err
		}
		sT, err := table("s", sRel)
		if err != nil {
			return nil, err
		}
		root = &plan.GroupBy{In: &plan.Join{R: rT, S: sT}}
		want = operators.RefGroupByTuples(operators.RefJoin(rRel.Tuples, sRel.Tuples))

	case PlanJoinAggSort:
		rRel, sRel, err := joinInput(p)
		if err != nil {
			return nil, err
		}
		rT, err := table("r", rRel)
		if err != nil {
			return nil, err
		}
		sT, err := table("s", sRel)
		if err != nil {
			return nil, err
		}
		// Join keys live in [0, RTuples); the sort stage must range-split
		// over that bound, not the full configured key space, or every
		// aggregate funnels into range bucket 0.
		root = &plan.Sort{
			KeySpace: uint64(p.RTuples),
			In:       &plan.GroupBy{In: &plan.Join{R: rT, S: sT}},
		}
		want = operators.RefGroupByTuples(operators.RefJoin(rRel.Tuples, sRel.Tuples))
		ordered = true

	case PlanStarJoinAgg:
		rRel, sRel, err := joinInput(p)
		if err != nil {
			return nil, err
		}
		dRel := dimRelation(p.RTuples / 2)
		rT, err := table("r1", rRel)
		if err != nil {
			return nil, err
		}
		dT, err := table("r2", dRel)
		if err != nil {
			return nil, err
		}
		sT, err := table("s", sRel)
		if err != nil {
			return nil, err
		}
		root = &plan.GroupBy{In: &plan.MultiJoin{Fact: sT, Dims: []plan.Node{rT, dT}}}
		want = operators.RefGroupByTuples(
			operators.RefJoin(rRel.Tuples, operators.RefJoin(dRel.Tuples, sRel.Tuples)))

	default:
		return nil, fmt.Errorf("simulate: unknown plan %v", pl)
	}

	r, err := plan.RunWith(e, opCfg, root, plan.Options{NoFusion: p.NoFusion})
	if err != nil {
		return nil, err
	}
	res.Elisions = r.Elisions
	res.Stages = r.Stages
	res.Verified = tuple.SameMultiset(r.Tuples(), want)
	if ordered && res.Verified {
		res.Verified = verifyOrdered(r.Ordered, want)
	}

	res.TotalNs = e.TotalNs()
	res.Energy = e.Energy(p.Energy)
	res.DRAM = e.DRAMStats()
	res.Steps = e.Steps()
	if p.Obs != nil {
		e.CollectObs(p.Obs)
		collectEnergy(p.Obs, res.Energy)
		res.Phases = e.Phases()
		res.Spans = e.BuildSpans()
	}
	return res, nil
}

// verifyOrdered checks bucket-local sortedness, global range order, and
// multiset equality with the expected output (verifySorted for a plan's
// sorted buckets).
func verifyOrdered(sorted []*engine.Region, want []tuple.Tuple) bool {
	if sorted == nil {
		return false
	}
	var got []tuple.Tuple
	var last tuple.Key
	for _, b := range sorted {
		for i := 1; i < b.Len(); i++ {
			if b.Tuples[i].Key < b.Tuples[i-1].Key {
				return false
			}
		}
		if len(got) > 0 && b.Len() > 0 && b.Tuples[0].Key < last {
			return false
		}
		if b.Len() > 0 {
			last = b.Tuples[b.Len()-1].Key
		}
		got = append(got, b.Tuples...)
	}
	return tuple.SameMultiset(got, want)
}

// planOperator is the manifest's Operator string for a plan run: the plan
// name under a "plan:" prefix, with a "+staged" suffix when fusion was
// disabled — staged-ness changes simulated cost, so the two variants must
// not collide in a manifest archive.
func planOperator(pl Plan, noFusion bool) string {
	op := "plan:" + pl.String()
	if noFusion {
		op += "+staged"
	}
	return op
}

// BuildPlanManifest assembles the machine-readable run manifest for one
// PlanResult produced with p.Obs set. Identical to BuildManifest except the
// Operator field carries the plan spelling (see planOperator).
func BuildPlanManifest(res *PlanResult, p Params, includeSpans bool) *obs.Manifest {
	m := &obs.Manifest{
		Schema:           obs.ManifestSchema,
		System:           res.System.String(),
		Operator:         planOperator(res.Plan, p.NoFusion),
		Params:           manifestParams(p),
		Verified:         res.Verified,
		SimulatedTotalNs: res.TotalNs,
		Metrics:          p.Obs.Snapshot(),
		Host:             obs.NewHostInfo(p.Parallelism),
	}
	m.Windows = obs.SummarizeHistograms(m.Metrics)
	for _, ph := range res.Phases {
		m.Phases = append(m.Phases, obs.PhaseSummary{
			Name:        ph.Name,
			SimulatedNs: ph.SimulatedNs(),
			WallNs:      ph.WallNs,
		})
	}
	if includeSpans {
		m.Spans = res.Spans
	}
	return m
}

// RunAllPlans executes the full system × plan matrix.
func RunAllPlans(p Params) (map[System]map[Plan]*PlanResult, error) {
	out := make(map[System]map[Plan]*PlanResult)
	for _, s := range Systems() {
		out[s] = make(map[Plan]*PlanResult)
		for _, pl := range Plans() {
			r, err := RunPlan(s, pl, p)
			if err != nil {
				return nil, fmt.Errorf("%v/%v: %w", s, pl, err)
			}
			if !r.Verified {
				return nil, fmt.Errorf("%v/%v: output verification failed", s, pl)
			}
			out[s][pl] = r
		}
	}
	return out, nil
}
