package simulate

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"github.com/ecocloud-go/mondrian/internal/obs"
)

// wantElisions is the compiled shape's expected re-shuffle elision count
// on the vault-partitioned systems (the CPU never fuses, and staged mode
// never elides): filter-sort carries no reusable partitioning; the -agg
// shapes each fuse their aggregation onto the upstream partition; the star
// shape additionally elides the second join's probe-side re-shuffle.
func wantElisions(s System, pl Plan, noFusion bool) int {
	if noFusion || s == CPU {
		return 0
	}
	switch pl {
	case PlanFilterSort:
		return 0
	case PlanSortAgg, PlanJoinAgg, PlanJoinAggSort:
		return 1
	case PlanStarJoinAgg:
		return 2
	}
	return 0
}

// TestPlanDifferential is the plan-level differential suite: for every
// (System, Plan) pair, in both fused and staged mode, the compiled plan's
// output multiset equals the composed RefJoin/RefGroupByTuples/RefSort
// references (RunPlan verifies internally), and the elision count matches
// the shape's expectation exactly.
func TestPlanDifferential(t *testing.T) {
	for _, s := range Systems() {
		for _, pl := range Plans() {
			s, pl := s, pl
			t.Run(s.String()+"/"+pl.String(), func(t *testing.T) {
				t.Parallel()
				for _, noFusion := range []bool{false, true} {
					p := goldenParams()
					p.NoFusion = noFusion
					r, err := RunPlan(s, pl, p)
					if err != nil {
						t.Fatalf("noFusion=%v: %v", noFusion, err)
					}
					if !r.Verified {
						t.Fatalf("noFusion=%v: output verification failed", noFusion)
					}
					if want := wantElisions(s, pl, noFusion); r.Elisions != want {
						t.Errorf("noFusion=%v: elisions = %d, want %d", noFusion, r.Elisions, want)
					}
					if len(r.Stages) == 0 {
						t.Errorf("noFusion=%v: no stage stats recorded", noFusion)
					}
				}
			})
		}
	}
}

// TestPlanSkewDifferential repeats the verification matrix on a skewed
// workload with the skew-aware path handling the provisioning, so fused
// probes run over hot keys too.
func TestPlanSkewDifferential(t *testing.T) {
	for _, s := range Systems() {
		for _, pl := range Plans() {
			s, pl := s, pl
			t.Run(s.String()+"/"+pl.String(), func(t *testing.T) {
				t.Parallel()
				p := skewParams(1.5)
				p.SkewAware = true
				r, err := RunPlan(s, pl, p)
				if err != nil {
					t.Fatal(err)
				}
				if !r.Verified {
					t.Fatal("output verification failed")
				}
				if want := wantElisions(s, pl, false); r.Elisions != want {
					t.Errorf("elisions = %d, want %d", r.Elisions, want)
				}
			})
		}
	}
}

// TestPlanBulkDifferential extends the bulk-path acceptance test to whole
// plans: the complete PlanResult and its JSON encoding are byte-identical
// whether the run-based bulk fast path or the per-tuple reference
// implementation executes — including the plan executor's own Materialize
// compactions.
func TestPlanBulkDifferential(t *testing.T) {
	for _, s := range Systems() {
		for _, pl := range Plans() {
			s, pl := s, pl
			t.Run(s.String()+"/"+pl.String(), func(t *testing.T) {
				t.Parallel()
				var golden *PlanResult
				var goldenJSON []byte
				for _, noBulk := range []bool{false, true} {
					p := goldenParams()
					p.NoBulk = noBulk
					r, err := RunPlan(s, pl, p)
					if err != nil {
						t.Fatalf("noBulk=%v: %v", noBulk, err)
					}
					if !r.Verified {
						t.Fatalf("noBulk=%v: output verification failed", noBulk)
					}
					j, err := json.Marshal(r)
					if err != nil {
						t.Fatalf("noBulk=%v: marshal: %v", noBulk, err)
					}
					if golden == nil {
						golden, goldenJSON = r, j
						continue
					}
					if !reflect.DeepEqual(golden, r) {
						t.Errorf("PlanResult with reference path differs from bulk path")
					}
					if !bytes.Equal(goldenJSON, j) {
						t.Errorf("plan JSON with reference path differs from bulk path:\n%s\nvs\n%s",
							goldenJSON, j)
					}
				}
			})
		}
	}
}

// runPlanWithObs executes one plan experiment with a fresh registry and
// returns its manifest (spans included).
func runPlanWithObs(t *testing.T, s System, pl Plan, p Params) *obs.Manifest {
	t.Helper()
	p.Obs = obs.NewRegistry()
	r, err := RunPlan(s, pl, p)
	if err != nil {
		t.Fatalf("%v/%v: %v", s, pl, err)
	}
	if !r.Verified {
		t.Fatalf("%v/%v: output verification failed", s, pl)
	}
	return BuildPlanManifest(r, p, true)
}

// TestPlanManifestDeterminism extends the manifest determinism tentpole to
// plan runs: for every (System, Plan) pair, the manifest's deterministic
// projection — metrics, per-stage phase timings under the stage-prefixed
// names, and the span tree — is byte-identical at parallelism 1, 4 and
// GOMAXPROCS.
func TestPlanManifestDeterminism(t *testing.T) {
	levels := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, s := range Systems() {
		for _, pl := range Plans() {
			s, pl := s, pl
			t.Run(s.String()+"/"+pl.String(), func(t *testing.T) {
				t.Parallel()
				var golden []byte
				for _, par := range levels {
					p := goldenParams()
					p.Parallelism = par
					m := runPlanWithObs(t, s, pl, p)
					j, err := json.Marshal(m.Deterministic())
					if err != nil {
						t.Fatalf("parallelism %d: marshal: %v", par, err)
					}
					if golden == nil {
						golden = j
						continue
					}
					if !bytes.Equal(golden, j) {
						t.Errorf("plan manifest at parallelism %d differs from parallelism %d:\n%s\nvs\n%s",
							par, levels[0], golden, j)
					}
				}
			})
		}
	}
}

// TestPlanManifestContent pins the plan manifest's identity and phase
// naming: the Operator field carries the "plan:" spelling (with "+staged"
// when fusion is off), and every phase name is prefixed by the stage label
// that produced it, so multi-stage runs stay addressable.
func TestPlanManifestContent(t *testing.T) {
	m := runPlanWithObs(t, Mondrian, PlanJoinAgg, goldenParams())
	if m.Operator != "plan:join-agg" {
		t.Errorf("Operator = %q, want plan:join-agg", m.Operator)
	}
	var join, groupby int
	for _, ph := range m.Phases {
		if len(ph.Name) >= 5 && ph.Name[:5] == "join/" {
			join++
		}
		if len(ph.Name) >= 8 && ph.Name[:8] == "groupby/" {
			groupby++
		}
	}
	if join == 0 || groupby == 0 {
		var names []string
		for _, ph := range m.Phases {
			names = append(names, ph.Name)
		}
		t.Errorf("missing stage-prefixed phases: %v", names)
	}

	p := goldenParams()
	p.NoFusion = true
	staged := runPlanWithObs(t, Mondrian, PlanJoinAgg, p)
	if staged.Operator != "plan:join-agg+staged" {
		t.Errorf("staged Operator = %q, want plan:join-agg+staged", staged.Operator)
	}
}

// TestPlanFusionSavings is the tentpole acceptance test: on the
// vault-partitioned systems, the fused join-agg plan provably elides a
// re-shuffle — its exchange_bytes counter is strictly lower than the
// staged run's — and finishes in strictly less simulated time.
func TestPlanFusionSavings(t *testing.T) {
	for _, s := range []System{NMP, Mondrian} {
		for _, pl := range []Plan{PlanJoinAgg, PlanJoinAggSort, PlanStarJoinAgg} {
			s, pl := s, pl
			t.Run(s.String()+"/"+pl.String(), func(t *testing.T) {
				t.Parallel()
				run := func(noFusion bool) (*PlanResult, uint64) {
					p := goldenParams()
					p.NoFusion = noFusion
					p.Obs = obs.NewRegistry()
					r, err := RunPlan(s, pl, p)
					if err != nil {
						t.Fatalf("noFusion=%v: %v", noFusion, err)
					}
					if !r.Verified {
						t.Fatalf("noFusion=%v: output verification failed", noFusion)
					}
					return r, p.Obs.Snapshot().Counters["exchange_bytes"]
				}
				fused, fusedBytes := run(false)
				staged, stagedBytes := run(true)
				if fused.Elisions == 0 || staged.Elisions != 0 {
					t.Fatalf("elisions fused=%d staged=%d", fused.Elisions, staged.Elisions)
				}
				if fusedBytes >= stagedBytes {
					t.Errorf("exchange_bytes fused=%d >= staged=%d: no re-shuffle elided",
						fusedBytes, stagedBytes)
				}
				if fused.TotalNs >= staged.TotalNs {
					t.Errorf("TotalNs fused=%g >= staged=%g", fused.TotalNs, staged.TotalNs)
				}
			})
		}
	}
}

// TestRunPlanValidation checks the typed rejection of out-of-range
// selectors and bad params, mirroring Run's front door.
func TestRunPlanValidation(t *testing.T) {
	var pe *ParamError
	if _, err := RunPlan(System(-1), PlanJoinAgg, goldenParams()); !errors.As(err, &pe) {
		t.Errorf("negative system: got %v, want *ParamError", err)
	}
	if _, err := RunPlan(Mondrian, Plan(99), goldenParams()); !errors.As(err, &pe) {
		t.Errorf("out-of-range plan: got %v, want *ParamError", err)
	}
	p := goldenParams()
	p.STuples = -1
	if _, err := RunPlan(Mondrian, PlanJoinAgg, p); !errors.As(err, &pe) {
		t.Errorf("bad params: got %v, want *ParamError", err)
	}
}

// TestParsePlan round-trips every registered spelling and rejects unknowns.
func TestParsePlan(t *testing.T) {
	for _, pl := range Plans() {
		got, err := ParsePlan(pl.String())
		if err != nil || got != pl {
			t.Errorf("ParsePlan(%q) = %v, %v", pl.String(), got, err)
		}
	}
	if got, err := ParsePlan("Join-Agg"); err != nil || got != PlanJoinAgg {
		t.Errorf("case-insensitive parse failed: %v, %v", got, err)
	}
	if _, err := ParsePlan("nope"); err == nil {
		t.Errorf("ParsePlan accepted an unknown plan")
	}
}

// FuzzRunPlanNoPanic extends the boundary's no-crash guarantee to plan
// runs: for any Params in the mutated space, any System and any Plan,
// RunPlan either returns a result or a typed error — never a panic. The
// mutated space spans both fusion modes, the skew-aware path and the
// columnar kernels, so fused probes on elided re-shuffles sit under the
// guarantee too.
func FuzzRunPlanNoPanic(f *testing.F) {
	type seed struct {
		sys, pl, cubes, vaultsPer, sTup, rTup, group int
		keySpace                                     uint64
		vaultCap                                     int64
		cpuBuckets, par                              int
		seed                                         int64
		noBulk, skewAware, columnar, noFusion        bool
		zipfS                                        float64
	}
	seeds := []seed{
		{int(Mondrian), int(PlanJoinAgg), 1, 4, 1 << 11, 1 << 10, 4, 1 << 20, 16 << 20, 0, 1, 42, false, false, false, false, 0},
		{int(NMP), int(PlanJoinAggSort), 1, 4, 1 << 11, 1 << 10, 4, 1 << 20, 16 << 20, 0, 2, 7, false, false, false, true, 0},
		{int(CPU), int(PlanStarJoinAgg), 1, 4, 1 << 11, 1 << 10, 4, 1 << 20, 16 << 20, 1 << 8, 1, 42, false, false, true, false, 0},
		{int(NMPSeq), int(PlanSortAgg), 1, 4, 1 << 11, 1 << 10, 4, 1 << 20, 16 << 20, 0, 4, 9, true, true, false, false, 1.5},
		{int(Mondrian), int(PlanFilterSort), 1, 4, 1 << 11, 1 << 10, 4, 1 << 20, 16 << 20, 0, 1, 42, false, true, false, true, 1.1},
		{int(Mondrian), int(PlanJoinAgg), 1, 4, -5, 0, 0, 3 << 10, 0, 0, 1, 42, false, false, false, false, 0.5},
	}
	for _, s := range seeds {
		f.Add(s.sys, s.pl, s.cubes, s.vaultsPer, s.sTup, s.rTup, s.group,
			s.keySpace, s.vaultCap, s.cpuBuckets, s.par, s.seed, s.noBulk,
			s.skewAware, s.columnar, s.noFusion, s.zipfS)
	}

	f.Fuzz(func(t *testing.T, sysRaw, plRaw, cubes, vaultsPer, sTup, rTup, group int,
		keySpace uint64, vaultCap int64, cpuBuckets, par int, seed int64, noBulk bool,
		skewAware, columnar, noFusion bool, zipfS float64) {
		p := TestParams()
		p.Cubes = cubes % 4
		p.VaultsPer = vaultsPer % 10
		p.CPUCores = 2
		p.STuples = sTup % (1 << 12)
		p.RTuples = rTup % (1 << 11)
		p.GroupSize = group % 64
		p.KeySpace = keySpace % (1 << 26)
		p.VaultCapBytes = vaultCap % (1 << 25)
		p.CPUBuckets = cpuBuckets % (1 << 12)
		p.Parallelism = par % 8
		p.Seed = seed
		p.NoBulk = noBulk
		p.SkewAware = skewAware
		p.Columnar = columnar
		p.NoFusion = noFusion
		p.ZipfS = zipfS
		sys := System(mod(sysRaw, int(numSystems)+2) - 1)
		pl := Plan(mod(plRaw, int(numPlans)+2) - 1)

		validated := validateSystemPlan(sys, pl) == nil && p.Validate() == nil
		res, err := RunPlan(sys, pl, p)
		if err != nil {
			var ie *InternalError
			if errors.As(err, &ie) {
				t.Fatalf("internal invariant tripped (validated=%v) on %v/%v %+v: %v\n%s",
					validated, sys, pl, p, ie, ie.StackTrace())
			}
			if validated && errors.As(err, new(*ParamError)) {
				t.Fatalf("Validate accepted %+v but RunPlan rejected it: %v", p, err)
			}
			return // typed rejection or a clean runtime error (e.g. overflow)
		}
		if !validated {
			t.Fatalf("RunPlan accepted input that Validate rejects: %v/%v %+v", sys, pl, p)
		}
		if res == nil {
			t.Fatal("nil result without error")
		}
	})
}
