package simulate

import "github.com/ecocloud-go/mondrian/internal/engine"

// The package-level engine pool behind Run, RunPlan and Suite
// (DESIGN.md §16): one pool for the whole process, so concurrent runs —
// the serving layer's workers, parallel tests, repeated sweeps — share
// constructed engines instead of rebuilding caches, TLBs, meshes and
// stream buffers per run. Pooling is a host-execution choice only: an
// acquired engine is reset to pristine state, so report JSON is
// byte-identical to a fresh-engine run (TestResetEquivalence).
// Params.NoPool (or MONDRIAN_NO_POOL) restores the build-per-run
// lifecycle.
var enginePool = engine.NewPool(0)

// acquireEngine returns an engine for the run plus its release hook.
// Pooled engines are returned to the pool on release; NoPool engines are
// dropped to the garbage collector. The release hook is intentionally not
// meant for defer inside the recovery boundary: callers invoke it only on
// normal (result or error) returns, so an engine abandoned mid-panic is
// discarded rather than recycled in an unknowable state.
func acquireEngine(p Params, s System) (*engine.Engine, func(), error) {
	cfg := p.EngineConfig(s)
	if p.NoPool {
		e, err := engine.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		return e, func() {}, nil
	}
	e, err := enginePool.Acquire(cfg)
	if err != nil {
		return nil, nil, err
	}
	return e, func() { enginePool.Release(e) }, nil
}

// PoolStats returns the shared engine pool's traffic counters (hits,
// misses, discards) — the amortization evidence mondrian-sim -repeat and
// the serving benchmark report.
func PoolStats() engine.PoolStats { return enginePool.Stats() }
