package simulate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/ecocloud-go/mondrian/internal/engine"
)

// TestResetEquivalence is the tentpole acceptance test for the pooled
// engine lifecycle: for every (System, Operator) pair, with skew-aware
// execution off and on, running the experiment on a reset engine produces
// a Result — timing, energy, DRAM stats, step timeline — whose JSON
// encoding is byte-identical to the same experiment on a fresh engine.
// Engine reuse must be invisible in every simulated number.
func TestResetEquivalence(t *testing.T) {
	for _, s := range Systems() {
		for _, op := range Operators() {
			for _, skew := range []bool{false, true} {
				s, op, skew := s, op, skew
				sub := s.String() + "/" + op.String()
				if skew {
					sub += "/skew"
				}
				t.Run(sub, func(t *testing.T) {
					t.Parallel()
					p := goldenParams()
					p.SkewAware = skew
					e, err := engine.New(p.EngineConfig(s))
					if err != nil {
						t.Fatal(err)
					}
					var golden *Result
					var goldenJSON []byte
					for round := 0; round < 3; round++ {
						if round > 0 {
							e.Reset()
						}
						r, err := runOn(e, s, op, p)
						if err != nil {
							t.Fatalf("round %d: %v", round, err)
						}
						if !r.Verified {
							t.Fatalf("round %d: output verification failed", round)
						}
						j, err := json.Marshal(r)
						if err != nil {
							t.Fatalf("round %d: marshal: %v", round, err)
						}
						if golden == nil {
							golden, goldenJSON = r, j
							continue
						}
						if !reflect.DeepEqual(golden, r) {
							t.Errorf("round %d: Result differs between fresh and reset engine", round)
						}
						if !bytes.Equal(goldenJSON, j) {
							t.Errorf("round %d: report JSON differs between fresh and reset engine:\n%s\nvs\n%s",
								round, goldenJSON, j)
						}
					}
				})
			}
		}
	}
}

// TestResetEquivalenceAcrossOperators proves a reset engine carries no
// cross-workload contamination: one engine cycles through all four
// operators with a Reset between runs, and each result must match a
// fresh-engine (NoPool) run of that operator byte for byte.
func TestResetEquivalenceAcrossOperators(t *testing.T) {
	for _, s := range []System{CPU, Mondrian} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel()
			p := goldenParams()
			e, err := engine.New(p.EngineConfig(s))
			if err != nil {
				t.Fatal(err)
			}
			first := true
			for _, op := range Operators() {
				if !first {
					e.Reset()
				}
				first = false
				got, err := runOn(e, s, op, p)
				if err != nil {
					t.Fatalf("%v: %v", op, err)
				}
				fp := p
				fp.NoPool = true
				want, err := Run(s, op, fp)
				if err != nil {
					t.Fatalf("%v fresh: %v", op, err)
				}
				gj, _ := json.Marshal(got)
				wj, _ := json.Marshal(want)
				if !bytes.Equal(gj, wj) {
					t.Errorf("%v: recycled-engine JSON differs from fresh run", op)
				}
			}
		})
	}
}

// TestPlanResetEquivalence extends the reset contract to compiled query
// plans: a reset engine re-running a plan reproduces the fresh PlanResult
// byte for byte.
func TestPlanResetEquivalence(t *testing.T) {
	for _, s := range []System{CPU, Mondrian} {
		for _, pl := range []Plan{PlanFilterSort, PlanJoinAggSort} {
			s, pl := s, pl
			t.Run(fmt.Sprintf("%v/%v", s, pl), func(t *testing.T) {
				t.Parallel()
				p := goldenParams()
				e, err := engine.New(p.EngineConfig(s))
				if err != nil {
					t.Fatal(err)
				}
				var goldenJSON []byte
				for round := 0; round < 2; round++ {
					if round > 0 {
						e.Reset()
					}
					r, err := runPlanOn(e, s, pl, p)
					if err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
					if !r.Verified {
						t.Fatalf("round %d: output verification failed", round)
					}
					j, _ := json.Marshal(r)
					if goldenJSON == nil {
						goldenJSON = j
						continue
					}
					if !bytes.Equal(goldenJSON, j) {
						t.Errorf("round %d: plan JSON differs between fresh and reset engine", round)
					}
				}
			})
		}
	}
}

// TestPooledRunEquivalence checks the public front door: Run with the
// default pooled lifecycle (drawing whatever reset engine the shared pool
// holds) matches Run with NoPool byte for byte.
func TestPooledRunEquivalence(t *testing.T) {
	for _, s := range Systems() {
		for _, op := range Operators() {
			s, op := s, op
			t.Run(s.String()+"/"+op.String(), func(t *testing.T) {
				t.Parallel()
				fp := goldenParams()
				fp.NoPool = true
				want, err := Run(s, op, fp)
				if err != nil {
					t.Fatal(err)
				}
				wj, _ := json.Marshal(want)
				pp := goldenParams()
				for round := 0; round < 2; round++ {
					got, err := Run(s, op, pp)
					if err != nil {
						t.Fatalf("pooled round %d: %v", round, err)
					}
					gj, _ := json.Marshal(got)
					if !bytes.Equal(wj, gj) {
						t.Errorf("pooled round %d differs from NoPool run", round)
					}
				}
			})
		}
	}
}

// concurrencyParams shrinks the golden setup so the full mixed matrix
// stays fast under the race detector.
func concurrencyParams() Params {
	p := goldenParams()
	p.STuples = 1 << 12
	p.RTuples = 1 << 11
	return p
}

// TestConcurrentRunDeterminism is the serving-layer correctness contract:
// many goroutines calling Run concurrently — mixed systems and operators,
// all drawing engines from the shared pool — must be race-clean and
// produce results byte-identical to their serial twins.
func TestConcurrentRunDeterminism(t *testing.T) {
	p := concurrencyParams()
	type cell struct {
		s  System
		op Operator
	}
	var cells []cell
	for _, s := range Systems() {
		for _, op := range Operators() {
			cells = append(cells, cell{s, op})
		}
	}

	// Serial twins, fresh engines.
	want := make([][]byte, len(cells))
	for i, c := range cells {
		sp := p
		sp.NoPool = true
		r, err := Run(c.s, c.op, sp)
		if err != nil {
			t.Fatalf("serial %v/%v: %v", c.s, c.op, err)
		}
		j, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = j
	}

	// Two concurrent rounds over the whole matrix: round two acquires the
	// engines round one released, so reuse happens under real concurrency.
	const rounds = 2
	errs := make(chan error, rounds*len(cells))
	var wg sync.WaitGroup
	for round := 0; round < rounds; round++ {
		for i, c := range cells {
			wg.Add(1)
			go func(round, i int, c cell) {
				defer wg.Done()
				r, err := Run(c.s, c.op, p)
				if err != nil {
					errs <- fmt.Errorf("round %d %v/%v: %w", round, c.s, c.op, err)
					return
				}
				j, err := json.Marshal(r)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(j, want[i]) {
					errs <- fmt.Errorf("round %d %v/%v: concurrent result differs from serial twin", round, c.s, c.op)
				}
			}(round, i, c)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestNoPoolBypassesPool pins the escape hatch: NoPool runs must not
// touch the shared pool at all.
func TestNoPoolBypassesPool(t *testing.T) {
	before := PoolStats()
	p := concurrencyParams()
	p.NoPool = true
	if _, err := Run(Mondrian, OpScan, p); err != nil {
		t.Fatal(err)
	}
	if after := PoolStats(); after != before {
		t.Fatalf("NoPool run moved pool stats: %+v -> %+v", before, after)
	}
}

// TestPooledRunAllocatesLess quantifies the lifecycle win the pool exists
// for: a pooled steady-state run allocates strictly less than a
// build-per-run one, because caches, TLBs, LLC and per-unit hardware are
// reused rather than rebuilt.
func TestPooledRunAllocatesLess(t *testing.T) {
	p := concurrencyParams()
	run := func(noPool bool) float64 {
		rp := p
		rp.NoPool = noPool
		// Warm the pool (and the allocator) once outside the measurement.
		if _, err := Run(CPU, OpScan, rp); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(2, func() {
			if _, err := Run(CPU, OpScan, rp); err != nil {
				t.Fatal(err)
			}
		})
	}
	fresh := run(true)
	pooled := run(false)
	if pooled >= fresh {
		t.Errorf("pooled run allocates %.0f, fresh run %.0f — pooling saved nothing", pooled, fresh)
	}
}
