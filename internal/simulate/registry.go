package simulate

// The system registry: every evaluated configuration is one declarative
// Spec row — a name, an engine identity template, and the operator
// algorithm selectors. The paper's seven systems are builtin rows; new
// variants (sensitivity sweeps, what-if systems) register at runtime and
// run through Run/RunSampled exactly like the builtins. See DESIGN.md
// §11 for how the registry layers over engine.SystemSpec.

import (
	"fmt"
	"strings"
	"sync"

	"github.com/ecocloud-go/mondrian/internal/cache"
	"github.com/ecocloud-go/mondrian/internal/cores"
	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/noc"
)

// System identifies one registered configuration — an index into the
// spec registry. The seven paper systems occupy the fixed low indices;
// Register appends further ones at runtime.
type System int

// The evaluated systems (§6 "Evaluated configurations").
const (
	CPU System = iota
	NMP
	NMPPerm
	NMPRand
	NMPSeq
	MondrianNoPerm
	Mondrian
	numSystems // builtin count; runtime registrations continue from here
)

// Spec is one row of the system table: the name the CLIs parse, the
// engine identity template (architecture composition, core model,
// topology, caches — everything that makes the system *itself*), and
// the operator-algorithm selectors. Quantitative experiment parameters
// (DRAM geometry, dataset sizes, parallelism) are owned by Params and
// merged in at EngineConfig time.
type Spec struct {
	Name string
	// Engine is the identity template. EngineConfig copies it and fills
	// the Params-owned fields: Cubes, VaultsPer, Geometry, Timing,
	// ObjectSize, BarrierNs, Parallelism, NoBulk — plus CPUCores when
	// HostCores is set.
	Engine engine.Config
	// HostCores marks a host-side system whose compute-unit count comes
	// from Params.CPUCores rather than the vault count.
	HostCores bool
	// SortProbe selects the sort-based probe algorithms (§6: NMP-seq
	// and the Mondrian variants); false selects the hash algorithms.
	SortProbe bool
	// MondrianCosts selects the SIMD instruction-cost table.
	MondrianCosts bool
}

var (
	regMu   sync.RWMutex
	regList []Spec
	regName = make(map[string]System) // lower-cased name → index
)

func init() {
	for _, sp := range builtinSpecs() {
		if _, err := Register(sp); err != nil {
			panic(err)
		}
	}
}

// builtinSpecs returns the seven paper rows in System-constant order.
// The four NMP variants share one constructor — they differ only in
// permutability and probe algorithm — as do the two Mondrian variants.
func builtinSpecs() []Spec {
	nmp := func(name string, permutable, sortProbe bool) Spec {
		return Spec{
			Name:      name,
			SortProbe: sortProbe,
			Engine: engine.Config{
				Arch:       engine.NMP,
				Core:       cores.Krait400(),
				Topology:   noc.FullyConnected,
				L1:         cache.L1D32K(),
				Permutable: permutable,
			},
		}
	}
	mondrian := func(name string, permutable bool) Spec {
		return Spec{
			Name:          name,
			SortProbe:     true,
			MondrianCosts: true,
			Engine: engine.Config{
				Arch:       engine.Mondrian,
				Core:       cores.CortexA35Mondrian(),
				Topology:   noc.FullyConnected,
				UseStreams: true,
				Permutable: permutable,
			},
		}
	}
	return []Spec{
		{
			Name:      "CPU",
			HostCores: true,
			Engine: engine.Config{
				Arch:     engine.CPU,
				Core:     cores.CortexA57(),
				Topology: noc.Star,
				L1:       cache.L1D32K(),
				LLC:      cache.LLC4M(),
			},
		},
		nmp("NMP", false, false),
		nmp("NMP-perm", true, false),
		nmp("NMP-rand", false, false),
		nmp("NMP-seq", false, true),
		mondrian("Mondrian-noperm", false),
		mondrian("Mondrian", true),
	}
}

// Register adds a system spec to the registry and returns its handle.
// Names are case-insensitive, unique, and non-empty. Registered systems
// run through Run/RunSampled exactly like the builtin seven; Systems()
// — and therefore RunAll — still enumerates only the paper's matrix.
func Register(sp Spec) (System, error) {
	if sp.Name == "" {
		return 0, fmt.Errorf("simulate: Register: empty system name")
	}
	key := strings.ToLower(sp.Name)
	regMu.Lock()
	defer regMu.Unlock()
	if prev, ok := regName[key]; ok {
		return 0, fmt.Errorf("simulate: Register: system %q already registered as %q",
			sp.Name, regList[prev].Name)
	}
	s := System(len(regList))
	regList = append(regList, sp)
	regName[key] = s
	return s, nil
}

// ParseSystem resolves a system name (case-insensitive) to its handle.
func ParseSystem(name string) (System, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	if s, ok := regName[strings.ToLower(name)]; ok {
		return s, nil
	}
	return 0, fmt.Errorf("simulate: unknown system %q (want one of %s)",
		name, strings.Join(systemNamesLocked(), ", "))
}

// SystemNames returns every registered name in registration order (the
// seven builtins first) — the source of truth for CLI help text.
func SystemNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return systemNamesLocked()
}

func systemNamesLocked() []string {
	out := make([]string, len(regList))
	for i, sp := range regList {
		out[i] = sp.Name
	}
	return out
}

// SpecOf returns the registered spec behind a System handle.
func SpecOf(s System) (Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	if s < 0 || int(s) >= len(regList) {
		return Spec{}, false
	}
	return regList[s], true
}

// registeredSystems returns the current registry size.
func registeredSystems() int {
	regMu.RLock()
	defer regMu.RUnlock()
	return len(regList)
}

// Systems lists the paper's seven configurations — the RunAll matrix.
// Runtime-registered systems are not included; run them individually.
func Systems() []System {
	out := make([]System, numSystems)
	for i := range out {
		out[i] = System(i)
	}
	return out
}

// String implements fmt.Stringer via the registry.
func (s System) String() string {
	if sp, ok := SpecOf(s); ok {
		return sp.Name
	}
	return fmt.Sprintf("System(%d)", int(s))
}

// ParseOperator resolves an operator name (case-insensitive; "groupby"
// and "group-by" are both accepted).
func ParseOperator(name string) (Operator, error) {
	switch strings.ToLower(name) {
	case "scan":
		return OpScan, nil
	case "sort":
		return OpSort, nil
	case "groupby", "group-by":
		return OpGroupBy, nil
	case "join":
		return OpJoin, nil
	}
	return 0, fmt.Errorf("simulate: unknown operator %q (want one of %s)",
		name, strings.Join(OperatorNames(), ", "))
}

// OperatorNames returns the CLI spellings of the four operators.
func OperatorNames() []string { return []string{"scan", "sort", "groupby", "join"} }
