package simulate

import (
	"strings"
	"testing"
)

// TestBuiltinRegistry pins the seven paper systems to their fixed
// handles, names, and spec selectors.
func TestBuiltinRegistry(t *testing.T) {
	want := []string{"CPU", "NMP", "NMP-perm", "NMP-rand", "NMP-seq", "Mondrian-noperm", "Mondrian"}
	names := SystemNames()
	if len(names) < len(want) {
		t.Fatalf("SystemNames() = %v, want at least the %d builtins", names, len(want))
	}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("SystemNames()[%d] = %q, want %q", i, names[i], w)
		}
		if got := System(i).String(); got != w {
			t.Errorf("System(%d).String() = %q, want %q", i, got, w)
		}
	}
	if got := Systems(); len(got) != int(numSystems) {
		t.Fatalf("Systems() has %d entries, want %d builtins only", len(got), numSystems)
	}
	// The probe-algorithm selectors of §6.
	for s, wantSort := range map[System]bool{
		CPU: false, NMP: false, NMPPerm: false, NMPRand: false,
		NMPSeq: true, MondrianNoPerm: true, Mondrian: true,
	} {
		sp, ok := SpecOf(s)
		if !ok {
			t.Fatalf("SpecOf(%v) not found", s)
		}
		if sp.SortProbe != wantSort {
			t.Errorf("%v SortProbe = %v, want %v", s, sp.SortProbe, wantSort)
		}
	}
}

// TestSystemStringUnknown covers the out-of-registry default branch.
func TestSystemStringUnknown(t *testing.T) {
	if got := System(9999).String(); got != "System(9999)" {
		t.Fatalf("System(9999).String() = %q", got)
	}
	if got := System(-1).String(); got != "System(-1)" {
		t.Fatalf("System(-1).String() = %q", got)
	}
	if _, ok := SpecOf(System(9999)); ok {
		t.Fatal("SpecOf(9999) found a spec")
	}
}

// TestRegisterErrors covers the registry's rejection paths: empty and
// duplicate (case-insensitive) names.
func TestRegisterErrors(t *testing.T) {
	if _, err := Register(Spec{}); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("Register(empty name) error = %v", err)
	}
	if _, err := Register(Spec{Name: "mondrian"}); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("Register(duplicate, case-folded) error = %v", err)
	}
	if _, err := Register(Spec{Name: "CPU"}); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("Register(duplicate) error = %v", err)
	}
}

// TestParseSystem covers case-insensitive resolution and the unknown-name
// diagnostic (which must enumerate the registered names).
func TestParseSystem(t *testing.T) {
	for name, want := range map[string]System{
		"cpu": CPU, "CPU": CPU, "nmp-perm": NMPPerm, "Mondrian-NoPerm": MondrianNoPerm,
		"mondrian": Mondrian, "NMP-SEQ": NMPSeq,
	} {
		got, err := ParseSystem(name)
		if err != nil || got != want {
			t.Errorf("ParseSystem(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	_, err := ParseSystem("abacus")
	if err == nil || !strings.Contains(err.Error(), "NMP-perm") {
		t.Fatalf("ParseSystem(abacus) error = %v, want one naming the registered systems", err)
	}
}

// TestParseOperator covers the four spellings plus aliases and errors.
func TestParseOperator(t *testing.T) {
	for name, want := range map[string]Operator{
		"scan": OpScan, "Sort": OpSort, "groupby": OpGroupBy,
		"group-by": OpGroupBy, "JOIN": OpJoin,
	} {
		got, err := ParseOperator(name)
		if err != nil || got != want {
			t.Errorf("ParseOperator(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseOperator("shuffleboard"); err == nil || !strings.Contains(err.Error(), "scan") {
		t.Fatalf("ParseOperator(shuffleboard) error = %v", err)
	}
}

// TestRunRejectsUnregisteredSystem keeps the Run boundary's typed error
// for out-of-registry handles.
func TestRunRejectsUnregisteredSystem(t *testing.T) {
	_, err := Run(System(10_000), OpScan, TestParams())
	pe, ok := err.(*ParamError)
	if !ok || pe.Field != "System" {
		t.Fatalf("Run(unregistered system) error = %v, want *ParamError on System", err)
	}
}

// TestRegisteredSystemRunsEndToEnd registers a derived Mondrian variant
// (four stream buffers instead of eight) and runs it through the same
// validated Run front door as the builtins. Scan opens one stream per
// unit, so it is insensitive to the shrunken set's capacity limit —
// the run must verify, and the handle must stringify to its name.
func TestRegisteredSystemRunsEndToEnd(t *testing.T) {
	sp, ok := SpecOf(Mondrian)
	if !ok {
		t.Fatal("Mondrian spec missing")
	}
	sp.Name = "Mondrian-4sb"
	sp.Engine.StreamBuffers = 4
	s, err := Register(sp)
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != "Mondrian-4sb" {
		t.Fatalf("registered handle stringifies to %q", s)
	}
	p := TestParams()
	p.STuples = 1 << 12
	res, err := Run(s, OpScan, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("registered-system scan did not verify")
	}
	if res.System != s {
		t.Fatalf("result carries system %v, want %v", res.System, s)
	}
}
