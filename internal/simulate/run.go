package simulate

import (
	"fmt"

	"github.com/ecocloud-go/mondrian/internal/dram"
	"github.com/ecocloud-go/mondrian/internal/energy"
	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/obs"
	"github.com/ecocloud-go/mondrian/internal/operators"
	"github.com/ecocloud-go/mondrian/internal/tuple"
	"github.com/ecocloud-go/mondrian/internal/workload"
)

// Operator identifies one of the four basic data operators.
type Operator int

// The four basic operators of Table 2.
const (
	OpScan Operator = iota
	OpSort
	OpGroupBy
	OpJoin
	numOperators
)

// Operators lists all four.
func Operators() []Operator {
	return []Operator{OpScan, OpSort, OpGroupBy, OpJoin}
}

// String implements fmt.Stringer.
func (o Operator) String() string {
	switch o {
	case OpScan:
		return "Scan"
	case OpSort:
		return "Sort"
	case OpGroupBy:
		return "Group by"
	case OpJoin:
		return "Join"
	default:
		return fmt.Sprintf("Operator(%d)", int(o))
	}
}

// Result is the outcome of one (system, operator) experiment.
type Result struct {
	System   System
	Operator Operator

	PartitionNs float64
	ProbeNs     float64
	TotalNs     float64

	Energy energy.Breakdown
	DRAM   dram.Stats

	// Verified confirms the operator output matched the reference.
	Verified bool

	// DistBWPerVaultGBs is the distribution step's per-vault DRAM
	// bandwidth (the §7.1 partition-phase utilization metric);
	// ProbeBWPerVaultGBs the probe phase's.
	DistBWPerVaultGBs  float64
	ProbeBWPerVaultGBs float64

	// Steps preserves the engine's step timeline.
	Steps []engine.StepTiming

	// Phases and Spans are populated only when Params.Obs is set: the
	// operator's phase timeline and the simulated-time span tree
	// (run → phase → step → per-unit task / exchange). Both are built
	// from deterministic engine state, so they are byte-identical at
	// every Parallelism.
	Phases []engine.PhaseTiming `json:",omitempty"`
	Spans  *obs.Span            `json:",omitempty"`
}

// Efficiency returns performance per watt for the fixed operator work:
// perf/watt = (1/t)/(E/t) = 1/E, so efficiency ratios (the paper's Fig. 9)
// are inverse energy ratios. This is why the paper's efficiency gains
// (28×) are smaller than its performance gains (49×): Mondrian draws more
// power while running, "reflecting Mondrian's high utilization of system
// resources" (§7.2).
func (r *Result) Efficiency() float64 {
	if r.Energy.Total() == 0 {
		return 0
	}
	return 1 / r.Energy.Total()
}

// streamInput generates the Scan/Sort input relation: uniform keys by
// default, Zipf-distributed when Params.ZipfS is set.
func streamInput(name string, p Params) (*tuple.Relation, error) {
	c := workload.Config{Seed: p.Seed, Tuples: p.STuples, KeySpace: p.KeySpace}
	if p.ZipfS > 0 {
		return workload.Zipf(name, c, p.ZipfS)
	}
	return workload.Uniform(name, c), nil
}

// place spreads a relation evenly across the vaults.
func place(e *engine.Engine, rel *tuple.Relation) ([]*engine.Region, error) {
	parts := rel.SplitEven(e.NumVaults())
	regions := make([]*engine.Region, len(parts))
	for v, p := range parts {
		r, err := e.Place(v, p.Tuples)
		if err != nil {
			return nil, err
		}
		regions[v] = r
	}
	return regions, nil
}

// Run executes one operator on one system and verifies its output.
//
// Run is the engine's validated front door (DESIGN.md §10): it vets every
// caller input first (Params.Validate plus system/operator range checks,
// rejecting with a typed *ParamError) and executes the experiment under a
// recovery boundary, so a panic in the simulation internals — an engine
// invariant violation, by the error contract — returns as a *InternalError
// carrying the original panic value and stack instead of crashing the
// caller's process.
func Run(s System, op Operator, p Params) (*Result, error) {
	if err := validateSystemOperator(s, op); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var res *Result
	err := Protect(fmt.Sprintf("%v/%v", s, op), func() error {
		var err error
		res, err = run(s, op, p)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// run is the unguarded experiment body; Run wraps it in validation and the
// recovery boundary. It draws its engine from the shared pool (pool.go)
// unless Params.NoPool opts out, and releases it on every non-panicking
// return — a panic abandons the engine to the garbage collector instead
// of recycling unknowable state.
func run(s System, op Operator, p Params) (*Result, error) {
	e, release, err := acquireEngine(p, s)
	if err != nil {
		return nil, err
	}
	res, err := runOn(e, s, op, p)
	release()
	return res, err
}

// runOn executes one operator experiment on the given pristine engine.
// The returned Result aliases no engine state that outlives the run's
// release: Reset replaces (rather than truncates) the step, phase and
// exchange slices, so the result's views stay intact after the engine is
// recycled.
func runOn(e *engine.Engine, s System, op Operator, p Params) (*Result, error) {
	opCfg := p.OperatorConfig(s)
	res := &Result{System: s, Operator: op}

	switch op {
	case OpScan:
		rel, err := streamInput("scan-in", p)
		if err != nil {
			return nil, err
		}
		needle, want := workload.ScanTarget(rel, p.Seed+1)
		inputs, err := place(e, rel)
		if err != nil {
			return nil, err
		}
		r, err := operators.Scan(e, opCfg, inputs, needle)
		if err != nil {
			return nil, err
		}
		res.ProbeNs = r.ProbeNs
		res.Verified = r.Matches == want &&
			tuple.SameMultiset(operators.Gather(r.Out), operators.RefScan(rel.Tuples, needle))
		res.ProbeBWPerVaultGBs = phaseBW(r.Steps, e.NumVaults())

	case OpSort:
		rel, err := streamInput("sort-in", p)
		if err != nil {
			return nil, err
		}
		inputs, err := place(e, rel)
		if err != nil {
			return nil, err
		}
		r, err := operators.Sort(e, opCfg, inputs)
		if err != nil {
			return nil, err
		}
		res.PartitionNs, res.ProbeNs = r.PartitionNs, r.ProbeNs
		res.Verified = verifySorted(r, rel)
		res.DistBWPerVaultGBs = distBW(r.Partition, e.NumVaults())

	case OpGroupBy:
		// Under ZipfS the group sizes themselves are Zipf-distributed —
		// the hot-group regime the splitting path targets. The uniform
		// default keeps the paper's average-group-size-4 workload.
		var rel *tuple.Relation
		var err error
		if p.ZipfS > 0 {
			rel, err = workload.Zipf("groupby-in", workload.Config{Seed: p.Seed, Tuples: p.STuples, KeySpace: p.KeySpace}, p.ZipfS)
		} else {
			rel, err = workload.GroupBy(workload.Config{Seed: p.Seed, Tuples: p.STuples, KeySpace: p.KeySpace}, p.GroupSize)
		}
		if err != nil {
			return nil, err
		}
		inputs, err := place(e, rel)
		if err != nil {
			return nil, err
		}
		r, err := operators.GroupBy(e, opCfg, inputs)
		if err != nil {
			return nil, err
		}
		res.PartitionNs, res.ProbeNs = r.PartitionNs, r.ProbeNs
		res.Verified = tuple.SameMultiset(operators.Gather(r.Out), operators.RefGroupByTuples(rel.Tuples))
		res.DistBWPerVaultGBs = distBW(r.Partition, e.NumVaults())

	case OpJoin:
		// Under ZipfS the probe relation's foreign keys are skewed: a few
		// R tuples match most of S (the hot-run regime of the sort-merge
		// probe's batching).
		var rRel, sRel *tuple.Relation
		var err error
		if p.ZipfS > 0 {
			rRel, sRel, err = workload.FKPairZipf(workload.Config{Seed: p.Seed, Tuples: p.STuples}, p.RTuples, p.ZipfS)
		} else {
			rRel, sRel, err = workload.FKPair(workload.Config{Seed: p.Seed, Tuples: p.STuples}, p.RTuples)
		}
		if err != nil {
			return nil, err
		}
		rIn, err := place(e, rRel)
		if err != nil {
			return nil, err
		}
		sIn, err := place(e, sRel)
		if err != nil {
			return nil, err
		}
		r, err := operators.Join(e, opCfg, rIn, sIn)
		if err != nil {
			return nil, err
		}
		res.PartitionNs, res.ProbeNs = r.PartitionNs, r.ProbeNs
		res.Verified = tuple.SameMultiset(operators.Gather(r.Out), operators.RefJoin(rRel.Tuples, sRel.Tuples))
		res.DistBWPerVaultGBs = distBW(r.SPartition, e.NumVaults())

	default:
		return nil, fmt.Errorf("simulate: unknown operator %v", op)
	}

	res.TotalNs = e.TotalNs()
	res.Energy = e.Energy(p.Energy)
	res.DRAM = e.DRAMStats()
	res.Steps = e.Steps()
	if p.Obs != nil {
		e.CollectObs(p.Obs)
		collectEnergy(p.Obs, res.Energy)
		res.Phases = e.Phases()
		res.Spans = e.BuildSpans()
	}
	if res.ProbeNs > 0 && res.ProbeBWPerVaultGBs == 0 {
		res.ProbeBWPerVaultGBs = probePhaseBW(res.Steps, res.PartitionNs, e.NumVaults())
	}
	return res, nil
}

// verifySorted checks bucket-local sortedness, global range order, and
// multiset equality with the input.
func verifySorted(r *operators.SortResult, rel *tuple.Relation) bool {
	var got []tuple.Tuple
	var last tuple.Key
	for _, b := range r.Sorted {
		for i := 1; i < b.Len(); i++ {
			if b.Tuples[i].Key < b.Tuples[i-1].Key {
				return false
			}
		}
		if len(got) > 0 && b.Len() > 0 && b.Tuples[0].Key < last {
			return false
		}
		if b.Len() > 0 {
			last = b.Tuples[b.Len()-1].Key
		}
		got = append(got, b.Tuples...)
	}
	return tuple.SameMultiset(got, rel.Tuples)
}

// distBW extracts the distribution step's per-vault bandwidth.
func distBW(pr *operators.PartitionResult, vaults int) float64 {
	for _, st := range pr.Steps {
		if len(st.Name) >= 10 && st.Name[:10] == "distribute" {
			return st.BandwidthPerVaultGBs(st.StepBytes(), vaults)
		}
	}
	return 0
}

// phaseBW aggregates bandwidth over a step list.
func phaseBW(steps []engine.StepTiming, vaults int) float64 {
	var ns float64
	var bytes uint64
	for _, st := range steps {
		ns += st.Ns
		bytes += st.StepBytes()
	}
	if ns == 0 {
		return 0
	}
	return float64(bytes) / ns / float64(vaults)
}

// probePhaseBW aggregates bandwidth over the probe-phase steps (every
// step after the partition phase's accumulated time).
func probePhaseBW(steps []engine.StepTiming, partitionNs float64, vaults int) float64 {
	var elapsed, ns float64
	var bytes uint64
	for _, st := range steps {
		if elapsed >= partitionNs-1e-6 {
			ns += st.Ns
			bytes += st.StepBytes()
		}
		elapsed += st.Ns
	}
	if ns == 0 {
		return 0
	}
	return float64(bytes) / ns / float64(vaults)
}

// RunAll executes the full system × operator matrix.
func RunAll(p Params) (map[System]map[Operator]*Result, error) {
	out := make(map[System]map[Operator]*Result)
	for _, s := range Systems() {
		out[s] = make(map[Operator]*Result)
		for _, op := range Operators() {
			r, err := Run(s, op, p)
			if err != nil {
				return nil, fmt.Errorf("%v/%v: %w", s, op, err)
			}
			if !r.Verified {
				return nil, fmt.Errorf("%v/%v: output verification failed", s, op)
			}
			out[s][op] = r
		}
	}
	return out, nil
}
