package simulate

import (
	"fmt"
	"math"
)

// Sampled execution — the reproduction's analogue of the SMARTS sampling
// methodology the paper used to bound cycle-accurate simulation time (§6):
// run the operator on a sampled fraction of the dataset and extrapolate
// runtime and activity to the full size. Extrapolation assumes the
// phases scale linearly in tuple count (true for partitioning and the
// probe passes; the sort probe's log-factor is corrected explicitly), so
// the estimate carries a modeling error the same way SMARTS carries a
// statistical one. Use full runs for the published numbers; sampled runs
// for quick sweeps.

// SampledResult pairs an extrapolated result with its sampling setup.
type SampledResult struct {
	// Result holds extrapolated values (runtime, DRAM counters, energy).
	Result *Result
	// Rate is the sampling fraction actually used.
	Rate float64
	// SampledSTuples is the dataset size the simulation really ran.
	SampledSTuples int
}

// RunSampled executes (s, op) on a rate-scaled dataset and extrapolates.
// Rate must be in (0, 1]; rates below 1/STuples are clamped.
func RunSampled(s System, op Operator, p Params, rate float64) (*SampledResult, error) {
	if rate <= 0 || rate > 1 {
		return nil, fmt.Errorf("simulate: sampling rate %v outside (0,1]", rate)
	}
	sp := p
	sp.STuples = int(float64(p.STuples) * rate)
	if sp.STuples < 1024 {
		sp.STuples = 1024
	}
	sp.RTuples = int(float64(p.RTuples) * rate)
	if sp.RTuples < 256 {
		sp.RTuples = 256
	}
	actualRate := float64(sp.STuples) / float64(p.STuples)

	r, err := Run(s, op, sp)
	if err != nil {
		return nil, err
	}

	scale := 1 / actualRate
	// The sort-based probes do log(n) passes; correct the probe-phase
	// extrapolation by the pass-count ratio.
	probeScale := scale
	if op == OpSort || (op != OpScan && p.OperatorConfig(s).SortProbe) {
		nFull := float64(p.STuples) / float64(p.Cubes*p.VaultsPer)
		nSampled := float64(sp.STuples) / float64(p.Cubes*p.VaultsPer)
		if nSampled > 1 && nFull > 1 {
			probeScale = scale * math.Log2(nFull) / math.Log2(nSampled)
		}
	}

	out := *r
	out.PartitionNs *= scale
	out.ProbeNs *= probeScale
	out.TotalNs = out.PartitionNs + out.ProbeNs
	out.Energy = r.Energy.Scale(scale)
	out.DRAM.Reads = uint64(float64(r.DRAM.Reads) * scale)
	out.DRAM.Writes = uint64(float64(r.DRAM.Writes) * scale)
	out.DRAM.ReadBytes = uint64(float64(r.DRAM.ReadBytes) * scale)
	out.DRAM.WriteBytes = uint64(float64(r.DRAM.WriteBytes) * scale)
	out.DRAM.Activations = uint64(float64(r.DRAM.Activations) * scale)
	out.DRAM.RowHits = uint64(float64(r.DRAM.RowHits) * scale)

	return &SampledResult{Result: &out, Rate: actualRate, SampledSTuples: sp.STuples}, nil
}

// SampledSpeedup estimates the speedup of sys over base on op using
// sampled runs — a quick design-space-sweep primitive.
func SampledSpeedup(base, sys System, op Operator, p Params, rate float64) (float64, error) {
	b, err := RunSampled(base, op, p, rate)
	if err != nil {
		return 0, err
	}
	r, err := RunSampled(sys, op, p, rate)
	if err != nil {
		return 0, err
	}
	if r.Result.TotalNs == 0 {
		return 0, fmt.Errorf("simulate: zero runtime in sampled run")
	}
	return b.Result.TotalNs / r.Result.TotalNs, nil
}
