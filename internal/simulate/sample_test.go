package simulate

import (
	"math"
	"testing"
)

func TestRunSampledValidation(t *testing.T) {
	p := TestParams()
	if _, err := RunSampled(NMP, OpScan, p, 0); err == nil {
		t.Fatal("rate 0 accepted")
	}
	if _, err := RunSampled(NMP, OpScan, p, 1.5); err == nil {
		t.Fatal("rate > 1 accepted")
	}
}

func TestRunSampledFullRateMatchesRun(t *testing.T) {
	p := TestParams()
	full, err := Run(NMP, OpScan, p)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := RunSampled(NMP, OpScan, p, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sampled.Result.TotalNs-full.TotalNs) > full.TotalNs*1e-9 {
		t.Fatalf("rate 1 run differs: %v vs %v", sampled.Result.TotalNs, full.TotalNs)
	}
	if sampled.Rate != 1 {
		t.Fatalf("rate = %v", sampled.Rate)
	}
}

func TestRunSampledExtrapolatesScan(t *testing.T) {
	// Scan is embarrassingly scale-linear: a quarter-rate sample must
	// extrapolate to within a few percent of the full run.
	p := TestParams()
	p.STuples = 1 << 16
	full, err := Run(NMP, OpScan, p)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := RunSampled(NMP, OpScan, p, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	ratio := sampled.Result.TotalNs / full.TotalNs
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("scan extrapolation off by %.2f×", ratio)
	}
	if sampled.SampledSTuples >= p.STuples {
		t.Fatal("sample did not shrink the dataset")
	}
	// Activity counters must extrapolate to the full-run magnitudes.
	actRatio := float64(sampled.Result.DRAM.ReadBytes) / float64(full.DRAM.ReadBytes)
	if actRatio < 0.8 || actRatio > 1.2 {
		t.Fatalf("read-byte extrapolation off by %.2f×", actRatio)
	}
}

func TestRunSampledJoinWithinTolerance(t *testing.T) {
	// Join mixes linear and log-factor phases; the documented contract
	// is a rough estimate — assert it lands within 2×.
	p := TestParams()
	full, err := Run(Mondrian, OpJoin, p)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := RunSampled(Mondrian, OpJoin, p, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	ratio := sampled.Result.TotalNs / full.TotalNs
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("join extrapolation off by %.2f×", ratio)
	}
}

func TestSampledSpeedupDirection(t *testing.T) {
	p := TestParams()
	s, err := SampledSpeedup(CPU, Mondrian, OpJoin, p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 1 {
		t.Fatalf("sampled speedup %v should exceed 1", s)
	}
}

func TestRunSampledClampsTinyRates(t *testing.T) {
	p := TestParams()
	sampled, err := RunSampled(NMP, OpScan, p, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if sampled.SampledSTuples < 1024 {
		t.Fatalf("sample size %d below floor", sampled.SampledSTuples)
	}
}
