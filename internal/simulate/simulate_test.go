package simulate

import (
	"testing"
)

// The simulate tests run the full system × operator matrix at TestParams
// scale: every run's output is verified against the reference oracles, and
// the qualitative results of the paper's evaluation are asserted as
// invariants (who wins, and in which direction the co-design features
// push).

func suite(t *testing.T) *Suite {
	t.Helper()
	return NewSuite(TestParams())
}

func TestStringers(t *testing.T) {
	if CPU.String() != "CPU" || Mondrian.String() != "Mondrian" || NMPPerm.String() != "NMP-perm" {
		t.Fatal("system names wrong")
	}
	if OpScan.String() != "Scan" || OpGroupBy.String() != "Group by" {
		t.Fatal("operator names wrong")
	}
	if System(99).String() == "" || Operator(99).String() == "" {
		t.Fatal("fallback names empty")
	}
	if len(Systems()) != int(numSystems) || len(Operators()) != int(numOperators) {
		t.Fatal("enumerations incomplete")
	}
}

func TestEngineConfigsPerSystem(t *testing.T) {
	p := TestParams()
	for _, s := range Systems() {
		cfg := p.EngineConfig(s)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
	}
	if !p.EngineConfig(Mondrian).Permutable || !p.EngineConfig(Mondrian).UseStreams {
		t.Fatal("Mondrian must have permutability and streams")
	}
	if p.EngineConfig(MondrianNoPerm).Permutable {
		t.Fatal("Mondrian-noperm must not be permutable")
	}
	if p.EngineConfig(NMPPerm).Permutable == false {
		t.Fatal("NMP-perm must be permutable")
	}
	if p.EngineConfig(CPU).LLC.SizeBytes == 0 {
		t.Fatal("CPU needs an LLC")
	}
}

func TestOperatorConfigsPerSystem(t *testing.T) {
	p := TestParams()
	if p.OperatorConfig(NMPSeq).SortProbe == false {
		t.Fatal("NMP-seq must sort-probe")
	}
	if p.OperatorConfig(NMPRand).SortProbe {
		t.Fatal("NMP-rand must hash-probe")
	}
	if p.OperatorConfig(Mondrian).Costs.MergeFanIn != 8 {
		t.Fatal("Mondrian must merge through 8 stream buffers")
	}
	if p.OperatorConfig(CPU).Costs.MergeFanIn != 2 {
		t.Fatal("scalar systems merge 2-way")
	}
}

func TestRunAllVerifies(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in -short mode")
	}
	results, err := RunAll(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	for s, ops := range results {
		for op, r := range ops {
			if !r.Verified {
				t.Errorf("%v/%v not verified", s, op)
			}
			if r.TotalNs <= 0 {
				t.Errorf("%v/%v has no runtime", s, op)
			}
			if r.Energy.Total() <= 0 {
				t.Errorf("%v/%v has no energy", s, op)
			}
			if op != OpScan && (r.PartitionNs <= 0 || r.ProbeNs <= 0) {
				t.Errorf("%v/%v missing phase times", s, op)
			}
			if op == OpScan && r.PartitionNs != 0 {
				t.Errorf("Scan has no partitioning phase, got %v", r.PartitionNs)
			}
		}
	}
}

func TestTable5Shape(t *testing.T) {
	rows, err := suite(t).Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper ordering: NMP < NMP-perm < Mondrian-noperm < Mondrian, all
	// faster than the CPU.
	for i, r := range rows {
		if r.SpeedupVsCPU <= 1 {
			t.Errorf("%v partition speedup %.2f <= 1", r.System, r.SpeedupVsCPU)
		}
		if i > 0 && r.SpeedupVsCPU <= rows[i-1].SpeedupVsCPU {
			t.Errorf("ordering violated: %v (%.1f) <= %v (%.1f)",
				r.System, r.SpeedupVsCPU, rows[i-1].System, rows[i-1].SpeedupVsCPU)
		}
	}
	// Permutability must raise distribution bandwidth (NMP-perm vs NMP).
	if rows[1].DistBWPerVaultGBs <= rows[0].DistBWPerVaultGBs {
		t.Errorf("permutability did not raise bandwidth: %.2f vs %.2f",
			rows[1].DistBWPerVaultGBs, rows[0].DistBWPerVaultGBs)
	}
}

func TestFig6Shape(t *testing.T) {
	su := suite(t)
	series, err := su.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	bySys := map[System]map[Operator]float64{}
	for _, s := range series {
		bySys[s.System] = s.Speedups
	}
	// NMP-rand and NMP-seq execute the same Scan code (§7.1).
	if bySys[NMPRand][OpScan] != bySys[NMPSeq][OpScan] {
		t.Errorf("Scan NMP-rand (%.2f) != NMP-seq (%.2f)",
			bySys[NMPRand][OpScan], bySys[NMPSeq][OpScan])
	}
	// NMP-rand outperforms NMP-seq on Group by and Join (§7.1: the
	// sequential pattern can't compensate the extra log n passes).
	for _, op := range []Operator{OpGroupBy, OpJoin} {
		if bySys[NMPRand][op] <= bySys[NMPSeq][op] {
			t.Errorf("%v: NMP-rand (%.2f) should beat NMP-seq (%.2f)",
				op, bySys[NMPRand][op], bySys[NMPSeq][op])
		}
	}
	// Mondrian wins every probe.
	for _, op := range Operators() {
		if bySys[Mondrian][op] <= bySys[NMPRand][op] {
			t.Errorf("%v: Mondrian (%.2f) should beat NMP-rand (%.2f)",
				op, bySys[Mondrian][op], bySys[NMPRand][op])
		}
	}
}

func TestFig7Shape(t *testing.T) {
	su := suite(t)
	series, err := su.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	bySys := map[System]map[Operator]float64{}
	for _, s := range series {
		bySys[s.System] = s.Speedups
	}
	for _, op := range Operators() {
		if bySys[Mondrian][op] <= 1 {
			t.Errorf("%v: Mondrian not faster than CPU", op)
		}
		if bySys[Mondrian][op] <= bySys[NMP][op] {
			t.Errorf("%v: Mondrian (%.1f) should beat NMP (%.1f)",
				op, bySys[Mondrian][op], bySys[NMP][op])
		}
	}
	// Permutability helps end-to-end on partition-heavy operators.
	for _, op := range []Operator{OpSort, OpGroupBy, OpJoin} {
		if bySys[NMPPerm][op] < bySys[NMP][op] {
			t.Errorf("%v: NMP-perm (%.1f) slower than NMP (%.1f)",
				op, bySys[NMPPerm][op], bySys[NMP][op])
		}
	}
}

func TestFig8Shape(t *testing.T) {
	su := suite(t)
	entries, err := su.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 16 {
		t.Fatalf("entries = %d, want 4 systems × 4 operators", len(entries))
	}
	for _, e := range entries {
		f := e.Breakdown.Fractions()
		sum := f[0] + f[1] + f[2] + f[3]
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%v/%v fractions sum to %v", e.System, e.Operator, sum)
		}
		// §7.2: in the CPU case core energy dominates.
		if e.System == CPU && f[2] < f[0] {
			t.Errorf("CPU %v: cores (%.2f) should dominate DRAM dyn (%.2f)", e.Operator, f[2], f[0])
		}
		// Mondrian's aggressive bandwidth use makes DRAM dynamic the
		// largest DRAM component relative to the CPU's.
		if e.System == Mondrian && f[0] <= 0.05 {
			t.Errorf("Mondrian %v: DRAM dynamic fraction %.2f suspiciously small", e.Operator, f[0])
		}
	}
}

func TestFig9Shape(t *testing.T) {
	su := suite(t)
	eff, err := su.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	perf, err := su.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	effBy := map[System]map[Operator]float64{}
	for _, s := range eff {
		effBy[s.System] = s.Speedups
	}
	perfBy := map[System]map[Operator]float64{}
	for _, s := range perf {
		perfBy[s.System] = s.Speedups
	}
	for _, op := range Operators() {
		if effBy[Mondrian][op] <= 1 {
			t.Errorf("%v: Mondrian efficiency not better than CPU", op)
		}
		if effBy[Mondrian][op] <= effBy[NMP][op] {
			t.Errorf("%v: Mondrian efficiency (%.1f) should beat NMP (%.1f)",
				op, effBy[Mondrian][op], effBy[NMP][op])
		}
	}
	_ = perfBy
}

// §7.2: "the gains are smaller than the performance improvements" —
// Mondrian draws higher power while running. This is a property of the
// paper's full 64-vault system shape (64 Mondrian cores vs 16 CPU cores),
// so it is asserted at that shape.
func TestEfficiencyTrailsPerformanceAtPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-shape run in -short mode")
	}
	p := DefaultParams()
	p.STuples = 1 << 17
	p.RTuples = 1 << 16
	su := NewSuite(p)
	cpu, err := su.Get(CPU, OpJoin)
	if err != nil {
		t.Fatal(err)
	}
	m, err := su.Get(Mondrian, OpJoin)
	if err != nil {
		t.Fatal(err)
	}
	perf := cpu.TotalNs / m.TotalNs
	eff := m.Efficiency() / cpu.Efficiency()
	if eff <= 1 || perf <= 1 {
		t.Fatalf("no gains: perf %.1f eff %.1f", perf, eff)
	}
	if eff >= perf {
		t.Errorf("efficiency gain (%.1f) should trail performance gain (%.1f)", eff, perf)
	}
}

func TestSuiteMemoizes(t *testing.T) {
	su := suite(t)
	a, err := su.Get(NMP, OpScan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := su.Get(NMP, OpScan)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("suite re-ran a cached experiment")
	}
}

func TestRunDeterministic(t *testing.T) {
	p := TestParams()
	a, err := Run(Mondrian, OpJoin, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Mondrian, OpJoin, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalNs != b.TotalNs || a.Energy.Total() != b.Energy.Total() {
		t.Fatalf("nondeterministic run: %v vs %v ns", a.TotalNs, b.TotalNs)
	}
}

func TestPermutabilityActivationsAcrossSystems(t *testing.T) {
	p := TestParams()
	perm, err := Run(NMPPerm, OpJoin, p)
	if err != nil {
		t.Fatal(err)
	}
	noperm, err := Run(NMP, OpJoin, p)
	if err != nil {
		t.Fatal(err)
	}
	if noperm.DRAM.Activations <= perm.DRAM.Activations {
		t.Errorf("permutability should reduce activations: perm=%d noperm=%d",
			perm.DRAM.Activations, noperm.DRAM.Activations)
	}
}
