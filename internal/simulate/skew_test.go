package simulate

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"github.com/ecocloud-go/mondrian/internal/operators"
)

// skewParams shapes the skew suite: large enough that the hot-key
// splitting thresholds trip at the tested exponents (the top Zipf key at
// s=1.5 already exceeds splitGroupMinTuples), small enough for fast runs.
func skewParams(zipfS float64) Params {
	p := TestParams()
	p.STuples = 1 << 14
	p.RTuples = 1 << 13
	p.KeySpace = 1 << 16
	p.CPUBuckets = 1 << 8
	p.ZipfS = zipfS
	return p
}

// minimalOverprovision finds, by doubling, the smallest tested
// overprovision factor at which the skew-UNAWARE run succeeds, and
// returns that factor. The equivalence comparison runs at this factor:
// skew-aware provisioning only changes simulated state on runs that
// would otherwise overflow, so equivalence is only defined where the
// unaware path completes.
func minimalOverprovision(t *testing.T, s System, op Operator, p Params) float64 {
	t.Helper()
	for _, over := range []float64{0, 4, 8, 16, 32, 64, 128, 256} {
		q := p
		q.SkewAware = false
		q.Overprovision = over
		_, err := Run(s, op, q)
		if err == nil {
			return over
		}
		if !errors.Is(err, operators.ErrPartitionOverflow) {
			t.Fatalf("overprovision %g: unexpected error: %v", over, err)
		}
	}
	t.Fatalf("%v/%v: still overflowing at overprovision 256", s, op)
	return 0
}

// TestSkewAwareEquivalence is the tentpole acceptance test for the
// skew-aware path: for every (System, Operator) pair, under uniform keys
// and Zipf exponents 1.1, 1.5 and 2.0, the complete Result and its JSON
// encoding are byte-identical with SkewAware on or off. The detector,
// exact provisioning, hot-key splitting and work stealing may only change
// host wall-clock time and obs metrics — never a simulated number.
//
// The comparison runs at the minimal overprovision factor that lets the
// skew-unaware run complete, because on overflowing inputs the unaware
// path has no result to compare against (that regime is covered by
// TestSkewAwareRescuesOverflow instead).
func TestSkewAwareEquivalence(t *testing.T) {
	for _, s := range Systems() {
		for _, op := range Operators() {
			for _, zipfS := range []float64{0, 1.1, 1.5, 2.0} {
				s, op, zipfS := s, op, zipfS
				t.Run(s.String()+"/"+op.String()+"/"+name(zipfS), func(t *testing.T) {
					t.Parallel()
					p := skewParams(zipfS)
					p.Overprovision = minimalOverprovision(t, s, op, p)
					var golden *Result
					var goldenJSON []byte
					for _, aware := range []bool{false, true} {
						q := p
						q.SkewAware = aware
						r, err := Run(s, op, q)
						if err != nil {
							t.Fatalf("skewAware=%v: %v", aware, err)
						}
						if !r.Verified {
							t.Fatalf("skewAware=%v: output verification failed", aware)
						}
						j, err := json.Marshal(r)
						if err != nil {
							t.Fatalf("skewAware=%v: marshal: %v", aware, err)
						}
						if golden == nil {
							golden, goldenJSON = r, j
							continue
						}
						if !reflect.DeepEqual(golden, r) {
							t.Errorf("Result differs between skew-aware off and on")
						}
						if !bytes.Equal(goldenJSON, j) {
							t.Errorf("report JSON differs between skew-aware off and on:\n%s\nvs\n%s",
								goldenJSON, j)
						}
					}
				})
			}
		}
	}
}

// name renders a Zipf exponent as a subtest name.
func name(zipfS float64) string {
	switch zipfS {
	case 0:
		return "uniform"
	case 1.1:
		return "zipf1.1"
	case 1.5:
		return "zipf1.5"
	case 2.0:
		return "zipf2.0"
	}
	return "zipf"
}

// TestSkewAwareRescuesOverflow pins the provisioning half of the
// tentpole: at Zipf s=2.0 with the default 2× overprovision, the
// skew-unaware run overflows its destination buffers on both partition
// implementations (the NMP histogram-exchange path and the CPU
// count-then-carve path), while the skew-aware run provisions from the
// exact histogram, completes in one attempt, and verifies.
func TestSkewAwareRescuesOverflow(t *testing.T) {
	for _, s := range []System{Mondrian, CPU} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel()
			p := skewParams(2.0)
			p.SkewAware = false
			if _, err := Run(s, OpGroupBy, p); !errors.Is(err, operators.ErrPartitionOverflow) {
				t.Fatalf("skew-unaware run at s=2.0: got %v, want partition overflow", err)
			}
			p.SkewAware = true
			r, err := Run(s, OpGroupBy, p)
			if err != nil {
				t.Fatalf("skew-aware run at s=2.0: %v", err)
			}
			if !r.Verified {
				t.Fatal("skew-aware run at s=2.0: output verification failed")
			}
		})
	}
}

// TestSkewAwareObsMetrics checks that a skewed skew-aware run publishes
// the imbalance metrics through the obs layer — and that a skew-unaware
// run publishes none of them, keeping the off-mode manifest unchanged.
func TestSkewAwareObsMetrics(t *testing.T) {
	p := skewParams(2.0)
	p.SkewAware = true
	m := runWithObs(t, Mondrian, OpGroupBy, p)
	if _, ok := m.Metrics.Counters["skew_split_keys"]; !ok {
		t.Errorf("skew_split_keys counter missing from skew-aware manifest")
	}
	if _, ok := m.Metrics.Counters["skew_tasks_stolen"]; !ok {
		t.Errorf("skew_tasks_stolen counter missing from skew-aware manifest")
	}
	if m.Metrics.Counters["skew_split_keys"] == 0 {
		t.Errorf("skew_split_keys = 0 on a Zipf s=2.0 Group-by; want hot groups split")
	}
	var gotLoad bool
	for name := range m.Metrics.Gauges {
		if len(name) >= 14 && name[:14] == "phase_load_max" {
			gotLoad = true
		}
	}
	if !gotLoad {
		t.Errorf("phase_load_max gauge missing from skew-aware manifest")
	}

	off := runWithObs(t, Mondrian, OpGroupBy, goldenParams())
	for name := range off.Metrics.Counters {
		if len(name) >= 5 && name[:5] == "skew_" {
			t.Errorf("skew-unaware manifest leaked counter %q", name)
		}
	}
	for name := range off.Metrics.Gauges {
		if len(name) >= 11 && name[:11] == "phase_load_" {
			t.Errorf("skew-unaware manifest leaked gauge %q", name)
		}
	}
}

// TestManifestDeterminismSkewAware extends the observability tentpole to
// the skew-aware path: with stealing, splitting and the detector all
// active on a skewed workload, the manifest's deterministic projection —
// including the skew_* metrics — is byte-identical at parallelism 1, 4
// and 8. The LPT steal order is a pure function of the task weights, so
// host concurrency must not leak into the stolen-task count either.
func TestManifestDeterminismSkewAware(t *testing.T) {
	for _, s := range []System{Mondrian, NMPSeq, CPU} {
		for _, op := range Operators() {
			s, op := s, op
			t.Run(s.String()+"/"+op.String(), func(t *testing.T) {
				t.Parallel()
				var golden []byte
				for _, par := range []int{1, 4, 8} {
					p := skewParams(1.5)
					p.SkewAware = true
					p.Parallelism = par
					m := runWithObs(t, s, op, p)
					j, err := json.Marshal(m.Deterministic())
					if err != nil {
						t.Fatalf("parallelism %d: marshal: %v", par, err)
					}
					if golden == nil {
						golden = j
						continue
					}
					if !bytes.Equal(golden, j) {
						t.Errorf("skew-aware manifest at parallelism %d differs from parallelism 1:\n%s\nvs\n%s",
							par, golden, j)
					}
				}
			})
		}
	}
}
