// Package simulate assembles the paper's evaluated systems and runs the
// operator experiments that regenerate every table and figure of §7.
//
// Evaluated configurations (§6 "Evaluated configurations"):
//
//	CPU             — CPU-centric baseline (radix hash algorithms)
//	NMP             — NMP baseline, conventional partitioning, hash probe
//	NMP-perm        — NMP cores + permutable partitioning, hash probe
//	NMP-rand        — NMP probe with the hash (random-access) algorithms
//	NMP-seq         — NMP probe with the sort (sequential) algorithms
//	Mondrian-noperm — Mondrian SIMD units without permutability
//	Mondrian        — the full co-design
package simulate

import (
	"fmt"
	"io"
	"os"
	"strconv"

	"github.com/ecocloud-go/mondrian/internal/dram"
	"github.com/ecocloud-go/mondrian/internal/energy"
	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/obs"
	"github.com/ecocloud-go/mondrian/internal/operators"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// Params fixes the experimental setup (Table 3 scaled to the simulation
// budget: speedups are ratios and the model is scale-invariant, so the
// dataset is a configurable fraction of the paper's 32 GB).
type Params struct {
	Cubes     int
	VaultsPer int
	CPUCores  int
	// VaultCapBytes sizes each vault's DRAM (the real HMC vault is
	// 512 MB; experiments allocate datasets plus scratch within it).
	VaultCapBytes int64
	// STuples is the large-relation cardinality (also the Scan/Sort/
	// Group-by input size); RTuples the small join relation.
	STuples, RTuples int
	// GroupSize is the Group-by average group size (4 in the paper).
	GroupSize int
	// KeySpace bounds keys; must be a power of two for range math.
	KeySpace uint64
	// CPUBuckets is the CPU's radix partition count. The paper's CPU
	// code hashes the keys' 16 low-order bits (2^16 partitions)
	// regardless of dataset size; 0 selects cache-targeted auto-sizing.
	CPUBuckets int
	Seed       int64
	// BarrierNs is the all-to-all notification cost (§5.4).
	BarrierNs float64
	// Energy holds the Table 4 constants.
	Energy energy.Params
	// Parallelism bounds the host worker pool executing per-vault work
	// (0 = GOMAXPROCS, 1 = serial). Results are bit-identical at every
	// setting; only wall-clock time changes. Overridable with the
	// MONDRIAN_PARALLELISM environment variable.
	Parallelism int
	// NoBulk disables the engine's run-based bulk access fast path,
	// forcing the per-tuple reference loops everywhere. Results are
	// byte-identical either way; only wall-clock time changes.
	// Overridable with the MONDRIAN_NO_BULK environment variable.
	NoBulk bool
	// SkewAware enables the skew-aware execution path: heavy-hitter
	// detection during the partition phase, exact-histogram destination
	// provisioning (replacing overflow-and-retry), hot-key splitting in
	// the Group-by/Join probes, and deterministic work stealing in the
	// engine's dispatch. On inputs where the default path succeeds,
	// report JSON is byte-identical with the flag on or off — only host
	// wall-clock time and the skew_* observability metrics differ.
	// Overridable with the MONDRIAN_SKEW_AWARE environment variable.
	SkewAware bool
	// Columnar selects the columnar (structure-of-arrays) host kernels:
	// scan, partition, sort, group-by and join inner loops run over
	// dense key columns with arena-backed scratch instead of the
	// tuple-at-a-time bulk loops. Report JSON is byte-identical with
	// the flag on or off — only host wall-clock time and allocation
	// behaviour change. Ignored when NoBulk forces the reference loops.
	// Overridable with the MONDRIAN_COLUMNAR environment variable.
	Columnar bool
	// NoPool disables engine pooling: every run constructs a fresh engine
	// with engine.New and discards it, the pre-PR-9 lifecycle. Pooling
	// (the default) acquires a reset engine from the shared pool and
	// releases it after the run; like Parallelism/NoBulk/Columnar it is a
	// host-execution choice only — report JSON is byte-identical either
	// way (TestResetEquivalence asserts it). Overridable with the
	// MONDRIAN_NO_POOL environment variable.
	NoPool bool
	// ZipfS selects skewed workloads: 0 (the default) keeps the uniform
	// generators; a finite exponent > 1 draws the Scan/Sort/Group-by
	// input keys (and the Join probe relation's foreign keys) from a
	// Zipf distribution with that exponent.
	ZipfS float64
	// Overprovision scales the partition phase's destination-buffer
	// estimate (0 = the operator default of 2×). Skewed workloads need
	// more; skew-aware runs provision exactly and ignore the shortfall.
	Overprovision float64
	// NoFusion disables the query-plan compiler's re-shuffle elision:
	// every plan stage re-partitions its inputs from scratch, reproducing
	// staged one-operator-at-a-time execution. Output multisets are
	// identical either way — fusion changes simulated cost, never
	// results. Ignored by single-operator runs; plan manifests record it
	// as a "+staged" operator suffix.
	NoFusion bool
	// Obs, when non-nil, enables the observability layer: Run collects
	// every deterministic run statistic into this registry and populates
	// Result.Phases/Spans. nil (the default) costs nothing. Excluded from
	// JSON because a registry is state, not configuration.
	Obs *obs.Registry `json:"-"`
}

// DefaultParams returns the paper's system shape (4 cubes × 16 vaults,
// 16 CPU cores) with a laptop-scale dataset.
func DefaultParams() Params {
	return Params{
		Parallelism:   envParallelism(),
		NoBulk:        envNoBulk(),
		SkewAware:     envSkewAware(),
		Columnar:      envColumnar(),
		NoPool:        envNoPool(),
		Cubes:         4,
		VaultsPer:     16,
		CPUCores:      16,
		VaultCapBytes: 64 << 20,
		STuples:       1 << 19, // 512Ki tuples = 8 MB
		RTuples:       1 << 18,
		GroupSize:     4,
		KeySpace:      1 << 24,
		Seed:          42,
		CPUBuckets:    1 << 16,
		BarrierNs:     2000,
		Energy:        energy.DefaultParams(),
	}
}

// TestParams returns a shrunken setup for fast tests.
func TestParams() Params {
	p := DefaultParams()
	p.Cubes = 2
	p.VaultsPer = 4
	p.CPUCores = 4
	p.VaultCapBytes = 32 << 20
	// Large enough that the per-vault hash tables exceed the L1 caches
	// (the regime every probe-phase comparison of §7 lives in), small
	// enough for sub-second runs.
	p.STuples = 1 << 16
	p.RTuples = 1 << 15
	p.KeySpace = 1 << 20
	p.CPUBuckets = 1 << 12
	return p
}

// envWarnOut receives one-line warnings about unusable environment-variable
// overrides. A variable (swapped by tests) rather than os.Stderr directly.
var envWarnOut io.Writer = os.Stderr

// envParallelism reads the MONDRIAN_PARALLELISM override (0 or unset =
// GOMAXPROCS, 1 = serial, N = N workers). A value that is not a
// non-negative integer is reported with a one-line warning naming the
// variable and value — never silently mapped to the default.
func envParallelism() int {
	v := os.Getenv("MONDRIAN_PARALLELISM")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		fmt.Fprintf(envWarnOut, "mondrian: ignoring MONDRIAN_PARALLELISM=%q: want a non-negative integer; using the default (GOMAXPROCS)\n", v)
		return 0
	}
	return n
}

// envNoBulk reads the MONDRIAN_NO_BULK override. Boolean spellings
// (0/1/true/false/...) parse as usual; anything else non-empty keeps the
// documented legacy meaning "set" (bulk path disabled) but is reported
// with a one-line warning naming the variable and value.
func envNoBulk() bool {
	v := os.Getenv("MONDRIAN_NO_BULK")
	if v == "" {
		return false
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		fmt.Fprintf(envWarnOut, "mondrian: MONDRIAN_NO_BULK=%q is not a boolean; treating as set (bulk fast path disabled)\n", v)
		return true
	}
	return b
}

// envSkewAware reads the MONDRIAN_SKEW_AWARE override. Boolean spellings
// parse as usual; anything else non-empty means "set" (skew-aware path
// enabled) but is reported with a one-line warning naming the variable
// and value.
func envSkewAware() bool {
	v := os.Getenv("MONDRIAN_SKEW_AWARE")
	if v == "" {
		return false
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		fmt.Fprintf(envWarnOut, "mondrian: MONDRIAN_SKEW_AWARE=%q is not a boolean; treating as set (skew-aware execution enabled)\n", v)
		return true
	}
	return b
}

// envColumnar reads the MONDRIAN_COLUMNAR override. Boolean spellings
// parse as usual; anything else non-empty means "set" (columnar kernels
// enabled) but is reported with a one-line warning naming the variable
// and value.
func envColumnar() bool {
	v := os.Getenv("MONDRIAN_COLUMNAR")
	if v == "" {
		return false
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		fmt.Fprintf(envWarnOut, "mondrian: MONDRIAN_COLUMNAR=%q is not a boolean; treating as set (columnar kernels enabled)\n", v)
		return true
	}
	return b
}

// envNoPool reads the MONDRIAN_NO_POOL override. Boolean spellings parse
// as usual; anything else non-empty means "set" (engine pooling disabled)
// but is reported with a one-line warning naming the variable and value.
func envNoPool() bool {
	v := os.Getenv("MONDRIAN_NO_POOL")
	if v == "" {
		return false
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		fmt.Fprintf(envWarnOut, "mondrian: MONDRIAN_NO_POOL=%q is not a boolean; treating as set (engine pooling disabled)\n", v)
		return true
	}
	return b
}

// geometry derives the per-vault DRAM geometry.
func (p Params) geometry() dram.Geometry {
	g := dram.HMCGeometry()
	g.CapacityBytes = p.VaultCapBytes
	return g
}

// EngineConfig builds the engine configuration for a system: the
// registered identity template (registry.go) plus this Params'
// experiment-owned fields. It panics on an unregistered System handle;
// Run validates first and returns a typed *ParamError instead.
func (p Params) EngineConfig(s System) engine.Config {
	sp, ok := SpecOf(s)
	if !ok {
		panic(fmt.Sprintf("simulate: unknown system %v", s))
	}
	cfg := sp.Engine
	cfg.Cubes = p.Cubes
	cfg.VaultsPer = p.VaultsPer
	cfg.Geometry = p.geometry()
	cfg.Timing = dram.HMCTiming()
	cfg.ObjectSize = tuple.Size
	cfg.BarrierNs = p.BarrierNs
	cfg.Parallelism = p.Parallelism
	cfg.NoBulk = p.NoBulk
	cfg.SkewAware = p.SkewAware
	cfg.Columnar = p.Columnar
	cfg.Obs = p.Obs
	if sp.HostCores {
		cfg.CPUCores = p.CPUCores
	}
	return cfg
}

// OperatorConfig builds the operator configuration for a system from the
// registered spec's algorithm selectors: the CPU and NMP-rand run the
// hash algorithms, NMP-seq and the Mondrian variants the sort-based ones
// (§6).
func (p Params) OperatorConfig(s System) operators.Config {
	cfg := operators.Config{Costs: operators.DefaultCosts(), KeySpace: p.KeySpace,
		CPUBuckets: p.CPUBuckets, SkewAware: p.SkewAware,
		Overprovision: p.Overprovision}
	if sp, ok := SpecOf(s); ok {
		if sp.MondrianCosts {
			cfg.Costs = operators.MondrianCosts()
		}
		cfg.SortProbe = sp.SortProbe
	}
	return cfg
}
