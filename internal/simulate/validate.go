package simulate

import (
	"fmt"
	"math"
	"runtime/debug"
	"strings"

	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// This file is the engine's error contract (DESIGN.md §10): every
// caller-supplied input is checked at the Run boundary and rejected with a
// typed *ParamError, and any panic that still fires past validation is an
// internal invariant violation, converted by the same boundary into a
// *InternalError that carries the original panic value and stack. Library
// consumers and the CLIs therefore never see a raw Go panic.

// ParamError reports one rejected Params field. It is the error type every
// caller-input problem surfaces as, so CLIs can print it as a one-line
// diagnostic and tests can assert on the offending field.
type ParamError struct {
	Field  string // the Params field (or derived quantity) that failed
	Value  any    // the rejected value
	Reason string // why it was rejected
}

// Error implements error as a single line.
func (e *ParamError) Error() string {
	return fmt.Sprintf("simulate: invalid Params.%s = %v: %s", e.Field, e.Value, e.Reason)
}

// Validation bounds. The upper bounds are far beyond every modeled
// configuration (the paper's system is 4 cubes × 16 vaults of 512 MB);
// they exist so that absurd inputs are rejected before they can exhaust
// host memory rather than after.
const (
	maxCubes         = 1024
	maxVaultsPer     = 4096
	maxVaults        = 1 << 16
	maxCPUCores      = 4096
	maxVaultCapBytes = int64(1) << 40 // 1 TB per vault
	maxCPUBuckets    = 1 << 20
)

// isPow2 reports whether v is a power of two.
func isPow2(v uint64) bool { return v != 0 && v&(v-1) == 0 }

// isSquare reports whether v is a perfect square (the HMC logic-layer
// mesh is square, so VaultsPer must be).
func isSquare(v int) bool {
	s := int(math.Sqrt(float64(v)))
	for _, c := range []int{s - 1, s, s + 1} {
		if c >= 0 && c*c == v {
			return true
		}
	}
	return false
}

// Validate checks every Params field and returns a *ParamError naming the
// first offending field, or nil if the configuration is runnable. Run
// calls it before building anything; call it directly to vet
// caller-supplied configurations without paying for a run.
func (p Params) Validate() error {
	if p.Cubes < 1 || p.Cubes > maxCubes {
		return &ParamError{"Cubes", p.Cubes, fmt.Sprintf("want 1..%d cubes", maxCubes)}
	}
	if p.VaultsPer < 1 || p.VaultsPer > maxVaultsPer {
		return &ParamError{"VaultsPer", p.VaultsPer, fmt.Sprintf("want 1..%d vaults per cube", maxVaultsPer)}
	}
	if !isSquare(p.VaultsPer) {
		return &ParamError{"VaultsPer", p.VaultsPer, "must be a perfect square (the logic-layer mesh is square)"}
	}
	if v := p.Cubes * p.VaultsPer; v > maxVaults {
		return &ParamError{"VaultsPer", p.VaultsPer, fmt.Sprintf("Cubes×VaultsPer = %d vaults exceeds %d", v, maxVaults)}
	}
	if p.CPUCores < 1 || p.CPUCores > maxCPUCores {
		return &ParamError{"CPUCores", p.CPUCores, fmt.Sprintf("want 1..%d cores", maxCPUCores)}
	}
	if p.VaultCapBytes < 1 || p.VaultCapBytes > maxVaultCapBytes {
		return &ParamError{"VaultCapBytes", p.VaultCapBytes, fmt.Sprintf("want 1..%d bytes per vault", maxVaultCapBytes)}
	}
	// Dataset cardinalities: positive, and the footprint must fit the
	// simulated memory (which also keeps host allocations proportional
	// to a capacity the caller already declared).
	capTuples := int64(p.Cubes) * int64(p.VaultsPer) * p.VaultCapBytes / tuple.Size
	if p.STuples < 1 {
		return &ParamError{"STuples", p.STuples, "want at least 1 tuple"}
	}
	if int64(p.STuples) > capTuples {
		return &ParamError{"STuples", p.STuples, fmt.Sprintf("dataset exceeds the %d tuples of simulated memory", capTuples)}
	}
	if p.RTuples < 1 {
		return &ParamError{"RTuples", p.RTuples, "want at least 1 tuple"}
	}
	if int64(p.RTuples) > capTuples {
		return &ParamError{"RTuples", p.RTuples, fmt.Sprintf("dataset exceeds the %d tuples of simulated memory", capTuples)}
	}
	if p.GroupSize < 1 {
		return &ParamError{"GroupSize", p.GroupSize, "want an average group size of at least 1"}
	}
	if !isPow2(p.KeySpace) {
		return &ParamError{"KeySpace", p.KeySpace, "must be a power of two (the range-partitioning and shift/mask fast paths assume it)"}
	}
	if p.CPUBuckets != 0 {
		if p.CPUBuckets < 0 || p.CPUBuckets > maxCPUBuckets || !isPow2(uint64(p.CPUBuckets)) {
			return &ParamError{"CPUBuckets", p.CPUBuckets, fmt.Sprintf("want 0 (auto) or a power of two up to %d", maxCPUBuckets)}
		}
	}
	if p.Parallelism < 0 {
		return &ParamError{"Parallelism", p.Parallelism, "want 0 (GOMAXPROCS) or a positive worker count"}
	}
	if math.IsNaN(p.BarrierNs) || math.IsInf(p.BarrierNs, 0) || p.BarrierNs < 0 {
		return &ParamError{"BarrierNs", p.BarrierNs, "want a finite non-negative barrier cost"}
	}
	if p.ZipfS != 0 && (math.IsNaN(p.ZipfS) || math.IsInf(p.ZipfS, 0) || p.ZipfS <= 1) {
		return &ParamError{"ZipfS", p.ZipfS, "want 0 (uniform keys) or a finite Zipf exponent > 1"}
	}
	if p.Overprovision != 0 && (math.IsNaN(p.Overprovision) || math.IsInf(p.Overprovision, 0) || p.Overprovision < 1) {
		return &ParamError{"Overprovision", p.Overprovision, "want 0 (operator default) or a finite factor of at least 1"}
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"Energy.CPUCoreW", p.Energy.CPUCoreW},
		{"Energy.NMPCoreW", p.Energy.NMPCoreW},
		{"Energy.MondrianCoreW", p.Energy.MondrianCoreW},
		{"Energy.LLCAccessJ", p.Energy.LLCAccessJ},
		{"Energy.LLCLeakW", p.Energy.LLCLeakW},
		{"Energy.NoCPerBitMMJ", p.Energy.NoCPerBitMMJ},
		{"Energy.NoCLeakW", p.Energy.NoCLeakW},
		{"Energy.HMCBackgroundW", p.Energy.HMCBackgroundW},
		{"Energy.ActivationJ", p.Energy.ActivationJ},
		{"Energy.AccessJPerBit", p.Energy.AccessJPerBit},
		{"Energy.SerDesIdleJPerBit", p.Energy.SerDesIdleJPerBit},
		{"Energy.SerDesBusyJPerBit", p.Energy.SerDesBusyJPerBit},
		{"Energy.IdleCoreFraction", p.Energy.IdleCoreFraction},
	} {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) || c.v < 0 {
			return &ParamError{c.name, c.v, "want a finite non-negative energy constant"}
		}
	}
	return nil
}

// validateSystemOperator range-checks the experiment selectors, which are
// caller inputs just like Params fields.
func validateSystemOperator(s System, op Operator) error {
	if n := registeredSystems(); s < 0 || int(s) >= n {
		return &ParamError{"System", int(s), fmt.Sprintf("want a registered system 0..%d", n-1)}
	}
	if op < 0 || op >= numOperators {
		return &ParamError{"Operator", int(op), fmt.Sprintf("want 0..%d", int(numOperators)-1)}
	}
	return nil
}

// InternalError is a panic that escaped the simulation internals on a
// validated input — by the error contract, an engine invariant violation
// rather than a caller mistake. Error() stays on one line for CLI
// diagnostics; the captured stack is available through StackTrace.
type InternalError struct {
	// Op identifies the experiment that was running ("Mondrian/Join").
	Op string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured where the panic was
	// recovered — on the worker goroutine itself when it crossed the
	// engine's worker pool.
	Stack []byte
}

// Error implements error as a single line.
func (e *InternalError) Error() string {
	msg := strings.ReplaceAll(fmt.Sprint(e.Value), "\n", "; ")
	return fmt.Sprintf("simulate: internal error in %s: %s [invariant violation — please report; stack via StackTrace]", e.Op, msg)
}

// Unwrap exposes a panic value that was itself an error.
func (e *InternalError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// StackTrace returns the stack captured at the recovery point.
func (e *InternalError) StackTrace() string { return string(e.Stack) }

// newInternalError converts a recovered panic value into an InternalError,
// unwrapping the engine's worker-pool capture so the reported value and
// stack are the worker goroutine's own.
func newInternalError(op string, r any) *InternalError {
	if wp, ok := r.(*engine.PanicError); ok {
		return &InternalError{Op: op, Value: wp.Value, Stack: wp.Stack}
	}
	return &InternalError{Op: op, Value: r, Stack: debug.Stack()}
}

// Protect runs fn under the recovery boundary: a panic inside fn returns
// as a *InternalError instead of crashing the process. Run installs it
// automatically; tools that drive the engine/operators layers directly
// (e.g. cmd/mondrian-trace) can wrap their bodies in it for the same
// no-panic guarantee.
func Protect(op string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = newInternalError(op, r)
		}
	}()
	return fn()
}
