package simulate

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

// TestValidateAcceptsShippedParams pins the contract that the stock
// configurations are valid — Validate must never reject what DefaultParams
// and TestParams produce.
func TestValidateAcceptsShippedParams(t *testing.T) {
	for _, p := range []Params{DefaultParams(), TestParams()} {
		if err := p.Validate(); err != nil {
			t.Fatalf("shipped params rejected: %v", err)
		}
	}
}

// TestValidateFieldTable drives every field through accept and reject
// cases. Each reject case must come back as a *ParamError naming the
// mutated field.
func TestValidateFieldTable(t *testing.T) {
	cases := []struct {
		name      string
		mutate    func(*Params)
		wantField string // "" = accept
	}{
		{"cubes 1 ok", func(p *Params) { p.Cubes = 1 }, ""},
		{"cubes 0", func(p *Params) { p.Cubes = 0 }, "Cubes"},
		{"cubes negative", func(p *Params) { p.Cubes = -1 }, "Cubes"},
		{"cubes absurd", func(p *Params) { p.Cubes = 1 << 20 }, "Cubes"},
		{"vaults 9 ok", func(p *Params) { p.VaultsPer = 9 }, ""},
		{"vaults 0", func(p *Params) { p.VaultsPer = 0 }, "VaultsPer"},
		{"vaults not square", func(p *Params) { p.VaultsPer = 6 }, "VaultsPer"},
		{"vaults absurd", func(p *Params) { p.VaultsPer = 1 << 20 }, "VaultsPer"},
		{"too many total vaults", func(p *Params) { p.Cubes = 1024; p.VaultsPer = 1024 }, "VaultsPer"},
		{"cpu cores 1 ok", func(p *Params) { p.CPUCores = 1 }, ""},
		{"cpu cores 0", func(p *Params) { p.CPUCores = 0 }, "CPUCores"},
		{"vault cap 0", func(p *Params) { p.VaultCapBytes = 0 }, "VaultCapBytes"},
		{"vault cap negative", func(p *Params) { p.VaultCapBytes = -4096 }, "VaultCapBytes"},
		{"vault cap absurd", func(p *Params) { p.VaultCapBytes = 1 << 50 }, "VaultCapBytes"},
		{"s-tuples 1 ok", func(p *Params) { p.STuples = 1 }, ""},
		{"s-tuples 0", func(p *Params) { p.STuples = 0 }, "STuples"},
		{"s-tuples negative", func(p *Params) { p.STuples = -5 }, "STuples"},
		{"s-tuples beyond memory", func(p *Params) { p.STuples = math.MaxInt64 / 32 }, "STuples"},
		{"r-tuples 0", func(p *Params) { p.RTuples = 0 }, "RTuples"},
		{"r-tuples negative", func(p *Params) { p.RTuples = -1 }, "RTuples"},
		{"r-tuples beyond memory", func(p *Params) { p.RTuples = math.MaxInt64 / 32 }, "RTuples"},
		{"group size 1 ok", func(p *Params) { p.GroupSize = 1 }, ""},
		{"group size 0", func(p *Params) { p.GroupSize = 0 }, "GroupSize"},
		{"group size negative", func(p *Params) { p.GroupSize = -4 }, "GroupSize"},
		{"keyspace pow2 ok", func(p *Params) { p.KeySpace = 1 << 10 }, ""},
		{"keyspace 1 ok", func(p *Params) { p.KeySpace = 1 }, ""},
		{"keyspace 0", func(p *Params) { p.KeySpace = 0 }, "KeySpace"},
		{"keyspace non-pow2", func(p *Params) { p.KeySpace = 3 << 10 }, "KeySpace"},
		{"cpu buckets auto ok", func(p *Params) { p.CPUBuckets = 0 }, ""},
		{"cpu buckets pow2 ok", func(p *Params) { p.CPUBuckets = 1 << 8 }, ""},
		{"cpu buckets non-pow2", func(p *Params) { p.CPUBuckets = 1000 }, "CPUBuckets"},
		{"cpu buckets negative", func(p *Params) { p.CPUBuckets = -16 }, "CPUBuckets"},
		{"cpu buckets absurd", func(p *Params) { p.CPUBuckets = 1 << 22 }, "CPUBuckets"},
		{"parallelism 0 ok", func(p *Params) { p.Parallelism = 0 }, ""},
		{"parallelism negative", func(p *Params) { p.Parallelism = -3 }, "Parallelism"},
		{"barrier 0 ok", func(p *Params) { p.BarrierNs = 0 }, ""},
		{"barrier negative", func(p *Params) { p.BarrierNs = -1 }, "BarrierNs"},
		{"barrier NaN", func(p *Params) { p.BarrierNs = math.NaN() }, "BarrierNs"},
		{"barrier Inf", func(p *Params) { p.BarrierNs = math.Inf(1) }, "BarrierNs"},
		{"energy NaN", func(p *Params) { p.Energy.ActivationJ = math.NaN() }, "Energy.ActivationJ"},
		{"energy negative", func(p *Params) { p.Energy.CPUCoreW = -2 }, "Energy.CPUCoreW"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := TestParams()
			tc.mutate(&p)
			err := p.Validate()
			if tc.wantField == "" {
				if err != nil {
					t.Fatalf("unexpected rejection: %v", err)
				}
				return
			}
			var pe *ParamError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v (%T), want *ParamError", err, err)
			}
			if pe.Field != tc.wantField {
				t.Fatalf("rejected field %q, want %q (err: %v)", pe.Field, tc.wantField, pe)
			}
			if strings.ContainsRune(pe.Error(), '\n') {
				t.Fatalf("ParamError is not one line: %q", pe.Error())
			}
		})
	}
}

// TestRunRejectsCrashReproducers pins the four formerly-crashing inputs of
// the issue: each must come back as a typed one-line error from Run, with
// no panic escaping.
func TestRunRejectsCrashReproducers(t *testing.T) {
	cases := []struct {
		name      string
		op        Operator
		mutate    func(*Params)
		wantField string
	}{
		{"negative s-tuples", OpScan, func(p *Params) { p.STuples = -5 }, "STuples"},
		{"join r-tuples 0", OpJoin, func(p *Params) { p.RTuples = 0 }, "RTuples"},
		{"group size 0", OpGroupBy, func(p *Params) { p.GroupSize = 0 }, "GroupSize"},
		{"vault cap 0", OpScan, func(p *Params) { p.VaultCapBytes = 0 }, "VaultCapBytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := TestParams()
			tc.mutate(&p)
			res, err := Run(Mondrian, tc.op, p)
			var pe *ParamError
			if !errors.As(err, &pe) || pe.Field != tc.wantField {
				t.Fatalf("Run = (%v, %v), want *ParamError on %s", res, err, tc.wantField)
			}
		})
	}
}

// TestRunRejectsBadSystemOperator covers the selector range checks.
func TestRunRejectsBadSystemOperator(t *testing.T) {
	p := TestParams()
	// Indices at or above the current registry size are invalid; use the
	// live boundary since tests may have registered systems of their own.
	for _, s := range []System{-1, System(registeredSystems()), 1 << 20} {
		if _, err := Run(s, OpScan, p); err == nil {
			t.Fatalf("system %d accepted", s)
		}
	}
	for _, op := range []Operator{-1, numOperators, 99} {
		if _, err := Run(Mondrian, op, p); err == nil {
			t.Fatalf("operator %d accepted", op)
		}
	}
}

// TestKeySpacePow2Contract is the regression for the documented "must be a
// power of two" requirement: a pow2 KeySpace runs verified through the
// range-partitioning sort (the path whose shift/mask math assumes it),
// while a non-pow2 one is rejected instead of silently accepted.
func TestKeySpacePow2Contract(t *testing.T) {
	p := TestParams()
	p.STuples = 1 << 13
	p.RTuples = 1 << 12
	p.KeySpace = 1 << 16

	res, err := Run(Mondrian, OpSort, p)
	if err != nil {
		t.Fatalf("pow2 KeySpace rejected: %v", err)
	}
	if !res.Verified {
		t.Fatal("pow2 KeySpace run did not verify")
	}

	p.KeySpace = 1<<16 - 1 // non-pow2, previously silently accepted
	var pe *ParamError
	if _, err := Run(Mondrian, OpSort, p); !errors.As(err, &pe) || pe.Field != "KeySpace" {
		t.Fatalf("non-pow2 KeySpace: err = %v, want *ParamError on KeySpace", err)
	}
}

// TestProtectConvertsPanics covers the recovery boundary directly.
func TestProtectConvertsPanics(t *testing.T) {
	err := Protect("test/op", func() error { panic("engine invariant broke") })
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InternalError", err, err)
	}
	if ie.Op != "test/op" || ie.Value != "engine invariant broke" {
		t.Fatalf("InternalError = %+v", ie)
	}
	if strings.ContainsRune(ie.Error(), '\n') {
		t.Fatalf("InternalError.Error is not one line: %q", ie.Error())
	}
	if !strings.Contains(ie.StackTrace(), "validate_test") {
		t.Fatalf("stack not captured:\n%s", ie.StackTrace())
	}
	if err := Protect("ok", func() error { return nil }); err != nil {
		t.Fatalf("Protect without panic returned %v", err)
	}
}

// TestEnvOverrideWarnings checks that garbage MONDRIAN_PARALLELISM /
// MONDRIAN_NO_BULK values produce a one-line warning naming the variable
// and value instead of being silently mapped.
func TestEnvOverrideWarnings(t *testing.T) {
	var buf bytes.Buffer
	old := envWarnOut
	envWarnOut = &buf
	defer func() { envWarnOut = old }()

	t.Setenv("MONDRIAN_PARALLELISM", "-3")
	if got := envParallelism(); got != 0 {
		t.Fatalf("envParallelism(-3) = %d, want default 0", got)
	}
	t.Setenv("MONDRIAN_PARALLELISM", "abc")
	if got := envParallelism(); got != 0 {
		t.Fatalf("envParallelism(abc) = %d, want default 0", got)
	}
	t.Setenv("MONDRIAN_PARALLELISM", "4")
	if got := envParallelism(); got != 4 {
		t.Fatalf("envParallelism(4) = %d", got)
	}
	warns := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(warns) != 2 {
		t.Fatalf("want 2 warnings, got %q", buf.String())
	}
	for i, v := range []string{"-3", "abc"} {
		if !strings.Contains(warns[i], "MONDRIAN_PARALLELISM") || !strings.Contains(warns[i], v) {
			t.Fatalf("warning %q does not name the variable and value %q", warns[i], v)
		}
	}

	buf.Reset()
	for _, tc := range []struct {
		val      string
		want     bool
		wantWarn bool
	}{
		{"1", true, false}, {"0", false, false}, {"true", true, false},
		{"false", false, false}, {"abc", true, true},
	} {
		buf.Reset()
		t.Setenv("MONDRIAN_NO_BULK", tc.val)
		if got := envNoBulk(); got != tc.want {
			t.Fatalf("envNoBulk(%q) = %v, want %v", tc.val, got, tc.want)
		}
		if warned := buf.Len() > 0; warned != tc.wantWarn {
			t.Fatalf("envNoBulk(%q) warned=%v, want %v (%q)", tc.val, warned, tc.wantWarn, buf.String())
		}
		if tc.wantWarn && !strings.Contains(buf.String(), "MONDRIAN_NO_BULK") {
			t.Fatalf("warning %q does not name the variable", buf.String())
		}
	}
}
