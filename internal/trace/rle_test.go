package trace

import (
	"reflect"
	"testing"

	"github.com/ecocloud-go/mondrian/internal/engine"
)

// rleScript is a mixed access script: (stride, count) pairs interleaved
// with single accesses, covering reads and writes, several units and
// kinds, and degenerate runs (count 1, count 0).
type rleOp struct {
	unit   int
	kind   engine.AccessKind
	addr   int64
	size   int
	stride int
	count  int // 0 = single Access call
	write  bool
}

func rleScript() []rleOp {
	return []rleOp{
		{unit: 0, kind: engine.TraceDemand, addr: 0, size: 16, stride: 16, count: 64},
		{unit: 1, kind: engine.TraceDemand, addr: 4096, size: 64, write: true},
		{unit: 0, kind: engine.TraceShuffle, addr: 1 << 20, size: 16, stride: 16, count: 1, write: true},
		{unit: 2, kind: engine.TracePermuted, addr: 1 << 21, size: 16, stride: 16, count: 500, write: true},
		{unit: 2, kind: engine.TraceDemand, addr: 9000, size: 8},
		{unit: 3, kind: engine.TraceDemand, addr: 1 << 22, size: 64, stride: 64, count: 0},
		{unit: 1, kind: engine.TraceDemand, addr: 1 << 23, size: 32, stride: -32, count: 7},
	}
}

// play drives a recorder through the script: RLE records via AccessRun,
// singles via Access. expand=true instead issues every access
// individually — the stream an engine without the RunTracer fast path
// would deliver.
func play(r *Recorder, expand bool) {
	for _, op := range rleScript() {
		if op.count == 0 {
			r.Access(op.unit, op.kind, op.addr, op.size, op.write)
			continue
		}
		if expand {
			for i := 0; i < op.count; i++ {
				r.Access(op.unit, op.kind, op.addr+int64(i)*int64(op.stride), op.size, op.write)
			}
			continue
		}
		r.AccessRun(op.unit, op.kind, op.addr, op.size, op.stride, op.count, op.write)
	}
}

// TestRLEExpandEquivalence is the RLE correctness contract: recording
// through AccessRun and expanding afterwards yields exactly the event
// stream (sequence numbers included) that per-access recording produces.
func TestRLEExpandEquivalence(t *testing.T) {
	var rle, flat Recorder
	play(&rle, false)
	play(&flat, true)

	got := Expand(rle.Events())
	want := flat.Events()
	if len(got) != len(want) {
		t.Fatalf("expanded %d events, per-access recorded %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: RLE-expanded %+v != per-access %+v", i, got[i], want[i])
		}
	}

	// The analysis layer must see identical statistics whether or not the
	// stream was stored run-length-encoded.
	if a, b := Analyze(rle.Events(), 256), Analyze(want, 256); a != b {
		t.Fatalf("Analyze(RLE) = %+v, Analyze(flat) = %+v", a, b)
	}
	if a, b := PerUnit(rle.Events(), 256), PerUnit(want, 256); !reflect.DeepEqual(a, b) {
		t.Fatalf("PerUnit(RLE) = %v, PerUnit(flat) = %v", a, b)
	}
}

// TestRLESeqAccounting pins the sequence-number bookkeeping: an RLE
// record occupies count consecutive sequence numbers, so accesses after
// it must continue where the expanded stream would.
func TestRLESeqAccounting(t *testing.T) {
	var r Recorder
	r.AccessRun(0, engine.TraceDemand, 0, 16, 16, 10, false)
	r.Access(1, engine.TraceDemand, 4096, 16, true)
	ev := r.Events()
	if len(ev) != 2 {
		t.Fatalf("stored %d records, want 2", len(ev))
	}
	if ev[0].Seq != 1 || ev[0].Count != 10 {
		t.Fatalf("RLE record = %+v", ev[0])
	}
	if ev[1].Seq != 11 {
		t.Fatalf("access after 10-run got seq %d, want 11", ev[1].Seq)
	}
}

// TestRLEFilterAndLimit checks the recorder options against RLE input:
// KindFilter drops whole runs (but still advances seq); Limit counts
// every dropped sub-access.
func TestRLEFilterAndLimit(t *testing.T) {
	r := Recorder{KindFilter: map[engine.AccessKind]bool{engine.TraceShuffle: true}}
	r.AccessRun(0, engine.TraceDemand, 0, 16, 16, 5, false)
	r.Access(0, engine.TraceShuffle, 100, 16, true)
	if ev := r.Events(); len(ev) != 1 || ev[0].Seq != 6 {
		t.Fatalf("filtered events = %+v", r.Events())
	}

	l := Recorder{Limit: 1}
	l.AccessRun(0, engine.TraceDemand, 0, 16, 16, 5, false)
	l.AccessRun(0, engine.TraceDemand, 80, 16, 16, 5, false)
	if len(l.Events()) != 1 {
		t.Fatalf("limit 1 stored %d records", len(l.Events()))
	}
	if l.Dropped() != 5 {
		t.Fatalf("dropped = %d, want 5 (the whole second run)", l.Dropped())
	}
}
