// Package trace captures and analyzes the simulated memory-access streams
// of the engine. The paper's whole argument is about access *patterns* —
// sequential streams amortize row activations, interleaved shuffles do
// not — and trace makes those patterns inspectable: record a run, then
// quantify row locality, sequentiality and per-unit behaviour, or export
// the stream for external tools.
package trace

import (
	"fmt"
	"io"
	"sort"

	"github.com/ecocloud-go/mondrian/internal/engine"
)

// Event is one recorded memory access — or, when Count > 1, a
// run-length-encoded record of Count accesses of Size bytes each at
// Addr, Addr+Stride, Addr+2·Stride, … occupying sequence numbers
// Seq … Seq+Count-1. RLE records come from the engine's bulk access
// paths; Expand rewrites them into the per-access stream they stand
// for.
type Event struct {
	Seq    int
	Unit   int
	Kind   engine.AccessKind
	Addr   int64
	Size   int
	Write  bool
	Stride int
	Count  int // 0 or 1: a single access
}

// Accesses returns how many memory accesses the record stands for.
func (e Event) Accesses() int {
	if e.Count > 1 {
		return e.Count
	}
	return 1
}

// Expand rewrites a stream so every record is a single access, giving
// RLE sub-accesses consecutive sequence numbers and stride-spaced
// addresses. Streams without RLE records are returned as-is.
func Expand(events []Event) []Event {
	total, rle := 0, false
	for _, e := range events {
		if e.Count > 1 {
			rle = true
		}
		total += e.Accesses()
	}
	if !rle {
		return events
	}
	out := make([]Event, 0, total)
	for _, e := range events {
		if e.Count <= 1 {
			out = append(out, e)
			continue
		}
		for i := 0; i < e.Count; i++ {
			out = append(out, Event{
				Seq: e.Seq + i, Unit: e.Unit, Kind: e.Kind,
				Addr: e.Addr + int64(i)*int64(e.Stride), Size: e.Size, Write: e.Write,
			})
		}
	}
	return out
}

// Recorder captures engine accesses. It implements engine.Tracer (and
// engine.RunTracer, storing bulk runs as single RLE records). A zero
// Recorder records everything; set Limit to bound memory.
type Recorder struct {
	// Limit caps stored records (0 = unlimited) — an RLE run counts as
	// one record. Once reached, further accesses are counted but not
	// stored.
	Limit int
	// KindFilter, when non-nil, records only the listed kinds.
	KindFilter map[engine.AccessKind]bool

	events  []Event
	dropped int
	seq     int
}

// Access implements engine.Tracer.
func (r *Recorder) Access(unit int, kind engine.AccessKind, addr int64, size int, write bool) {
	r.seq++
	if r.KindFilter != nil && !r.KindFilter[kind] {
		return
	}
	if r.Limit > 0 && len(r.events) >= r.Limit {
		r.dropped++
		return
	}
	r.events = append(r.events, Event{
		Seq: r.seq, Unit: unit, Kind: kind, Addr: addr, Size: size, Write: write,
	})
}

// AccessRun implements engine.RunTracer: one RLE record covering count
// accesses, occupying count sequence numbers. A 1-access run is stored
// as a plain access so the record stream is canonical regardless of
// which engine path delivered it.
func (r *Recorder) AccessRun(unit int, kind engine.AccessKind, addr int64, size, stride, count int, write bool) {
	if count <= 0 {
		return
	}
	if count == 1 {
		r.Access(unit, kind, addr, size, write)
		return
	}
	seq := r.seq + 1
	r.seq += count
	if r.KindFilter != nil && !r.KindFilter[kind] {
		return
	}
	if r.Limit > 0 && len(r.events) >= r.Limit {
		r.dropped += count
		return
	}
	r.events = append(r.events, Event{
		Seq: seq, Unit: unit, Kind: kind, Addr: addr, Size: size, Write: write,
		Stride: stride, Count: count,
	})
}

// Events returns the recorded stream.
func (r *Recorder) Events() []Event { return r.events }

// Dropped returns how many events exceeded Limit.
func (r *Recorder) Dropped() int { return r.dropped }

// Reset clears the recorder.
func (r *Recorder) Reset() {
	r.events = r.events[:0]
	r.dropped = 0
	r.seq = 0
}

// Stats summarizes an access stream.
type Stats struct {
	Events int
	Reads  int
	Writes int
	Bytes  int64
	Units  int
	// RowsTouched is the number of distinct DRAM rows visited.
	RowsTouched int
	// RowSwitches counts consecutive event pairs that change row — the
	// row-buffer pressure a single-bank in-order service would see.
	RowSwitches int
	// SeqRatio is the fraction of consecutive event pairs whose
	// addresses are exactly adjacent (perfectly sequential stream = 1).
	SeqRatio float64
	// MeanRunLen is the average length (in events) of maximal
	// address-adjacent runs.
	MeanRunLen float64
}

// Analyze computes summary statistics for an event stream with the given
// DRAM row size.
func Analyze(events []Event, rowBytes int) Stats {
	events = Expand(events)
	var s Stats
	s.Events = len(events)
	if len(events) == 0 {
		return s
	}
	rows := make(map[int64]bool)
	units := make(map[int]bool)
	adjacent := 0
	runs := 1
	var prevEnd int64
	var prevRow int64 = -1
	for i, e := range events {
		if e.Write {
			s.Writes++
		} else {
			s.Reads++
		}
		s.Bytes += int64(e.Size)
		units[e.Unit] = true
		row := e.Addr / int64(rowBytes)
		rows[row] = true
		if i > 0 {
			if e.Addr == prevEnd {
				adjacent++
			} else {
				runs++
			}
			if row != prevRow {
				s.RowSwitches++
			}
		}
		prevEnd = e.Addr + int64(e.Size)
		prevRow = row
	}
	s.Units = len(units)
	s.RowsTouched = len(rows)
	if len(events) > 1 {
		s.SeqRatio = float64(adjacent) / float64(len(events)-1)
	}
	s.MeanRunLen = float64(len(events)) / float64(runs)
	return s
}

// PerUnit splits a stream by unit and analyzes each; keys are unit IDs.
func PerUnit(events []Event, rowBytes int) map[int]Stats {
	byUnit := make(map[int][]Event)
	for _, e := range Expand(events) {
		byUnit[e.Unit] = append(byUnit[e.Unit], e)
	}
	out := make(map[int]Stats, len(byUnit))
	for u, evs := range byUnit {
		out[u] = Analyze(evs, rowBytes)
	}
	return out
}

// Filter returns the per-access events matching the predicate (RLE
// records are expanded first so predicates see single accesses).
func Filter(events []Event, keep func(Event) bool) []Event {
	var out []Event
	for _, e := range Expand(events) {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// RowHistogram counts accesses per DRAM row, sorted by row address.
type RowCount struct {
	Row   int64
	Count int
}

// RowHistogram computes per-row access counts.
func RowHistogram(events []Event, rowBytes int) []RowCount {
	counts := make(map[int64]int)
	for _, e := range Expand(events) {
		counts[e.Addr/int64(rowBytes)]++
	}
	out := make([]RowCount, 0, len(counts))
	for row, c := range counts {
		out = append(out, RowCount{Row: row, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Row < out[j].Row })
	return out
}

// WriteCSV streams events as "seq,unit,kind,addr,size,write" rows.
func WriteCSV(w io.Writer, events []Event) error {
	if _, err := fmt.Fprintln(w, "seq,unit,kind,addr,size,write"); err != nil {
		return err
	}
	for _, e := range Expand(events) {
		wr := 0
		if e.Write {
			wr = 1
		}
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d\n",
			e.Seq, e.Unit, int(e.Kind), e.Addr, e.Size, wr); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders stats for logs.
func (s Stats) Summary() string {
	return fmt.Sprintf("%d events (%d units, %d B), rows %d, row switches %d, seq %.0f%%, mean run %.1f",
		s.Events, s.Units, s.Bytes, s.RowsTouched, s.RowSwitches, s.SeqRatio*100, s.MeanRunLen)
}
