// Package trace captures and analyzes the simulated memory-access streams
// of the engine. The paper's whole argument is about access *patterns* —
// sequential streams amortize row activations, interleaved shuffles do
// not — and trace makes those patterns inspectable: record a run, then
// quantify row locality, sequentiality and per-unit behaviour, or export
// the stream for external tools.
package trace

import (
	"fmt"
	"io"
	"sort"

	"github.com/ecocloud-go/mondrian/internal/engine"
)

// Event is one recorded memory access.
type Event struct {
	Seq   int
	Unit  int
	Kind  engine.AccessKind
	Addr  int64
	Size  int
	Write bool
}

// Recorder captures engine accesses. It implements engine.Tracer. A zero
// Recorder records everything; set Limit to bound memory.
type Recorder struct {
	// Limit caps recorded events (0 = unlimited). Once reached, further
	// events are counted but not stored.
	Limit int
	// KindFilter, when non-nil, records only the listed kinds.
	KindFilter map[engine.AccessKind]bool

	events  []Event
	dropped int
	seq     int
}

// Access implements engine.Tracer.
func (r *Recorder) Access(unit int, kind engine.AccessKind, addr int64, size int, write bool) {
	r.seq++
	if r.KindFilter != nil && !r.KindFilter[kind] {
		return
	}
	if r.Limit > 0 && len(r.events) >= r.Limit {
		r.dropped++
		return
	}
	r.events = append(r.events, Event{
		Seq: r.seq, Unit: unit, Kind: kind, Addr: addr, Size: size, Write: write,
	})
}

// Events returns the recorded stream.
func (r *Recorder) Events() []Event { return r.events }

// Dropped returns how many events exceeded Limit.
func (r *Recorder) Dropped() int { return r.dropped }

// Reset clears the recorder.
func (r *Recorder) Reset() {
	r.events = r.events[:0]
	r.dropped = 0
	r.seq = 0
}

// Stats summarizes an access stream.
type Stats struct {
	Events int
	Reads  int
	Writes int
	Bytes  int64
	Units  int
	// RowsTouched is the number of distinct DRAM rows visited.
	RowsTouched int
	// RowSwitches counts consecutive event pairs that change row — the
	// row-buffer pressure a single-bank in-order service would see.
	RowSwitches int
	// SeqRatio is the fraction of consecutive event pairs whose
	// addresses are exactly adjacent (perfectly sequential stream = 1).
	SeqRatio float64
	// MeanRunLen is the average length (in events) of maximal
	// address-adjacent runs.
	MeanRunLen float64
}

// Analyze computes summary statistics for an event stream with the given
// DRAM row size.
func Analyze(events []Event, rowBytes int) Stats {
	var s Stats
	s.Events = len(events)
	if len(events) == 0 {
		return s
	}
	rows := make(map[int64]bool)
	units := make(map[int]bool)
	adjacent := 0
	runs := 1
	var prevEnd int64
	var prevRow int64 = -1
	for i, e := range events {
		if e.Write {
			s.Writes++
		} else {
			s.Reads++
		}
		s.Bytes += int64(e.Size)
		units[e.Unit] = true
		row := e.Addr / int64(rowBytes)
		rows[row] = true
		if i > 0 {
			if e.Addr == prevEnd {
				adjacent++
			} else {
				runs++
			}
			if row != prevRow {
				s.RowSwitches++
			}
		}
		prevEnd = e.Addr + int64(e.Size)
		prevRow = row
	}
	s.Units = len(units)
	s.RowsTouched = len(rows)
	if len(events) > 1 {
		s.SeqRatio = float64(adjacent) / float64(len(events)-1)
	}
	s.MeanRunLen = float64(len(events)) / float64(runs)
	return s
}

// PerUnit splits a stream by unit and analyzes each; keys are unit IDs.
func PerUnit(events []Event, rowBytes int) map[int]Stats {
	byUnit := make(map[int][]Event)
	for _, e := range events {
		byUnit[e.Unit] = append(byUnit[e.Unit], e)
	}
	out := make(map[int]Stats, len(byUnit))
	for u, evs := range byUnit {
		out[u] = Analyze(evs, rowBytes)
	}
	return out
}

// Filter returns the events matching the predicate.
func Filter(events []Event, keep func(Event) bool) []Event {
	var out []Event
	for _, e := range events {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// RowHistogram counts accesses per DRAM row, sorted by row address.
type RowCount struct {
	Row   int64
	Count int
}

// RowHistogram computes per-row access counts.
func RowHistogram(events []Event, rowBytes int) []RowCount {
	counts := make(map[int64]int)
	for _, e := range events {
		counts[e.Addr/int64(rowBytes)]++
	}
	out := make([]RowCount, 0, len(counts))
	for row, c := range counts {
		out = append(out, RowCount{Row: row, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Row < out[j].Row })
	return out
}

// WriteCSV streams events as "seq,unit,kind,addr,size,write" rows.
func WriteCSV(w io.Writer, events []Event) error {
	if _, err := fmt.Fprintln(w, "seq,unit,kind,addr,size,write"); err != nil {
		return err
	}
	for _, e := range events {
		wr := 0
		if e.Write {
			wr = 1
		}
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d\n",
			e.Seq, e.Unit, int(e.Kind), e.Addr, e.Size, wr); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders stats for logs.
func (s Stats) Summary() string {
	return fmt.Sprintf("%d events (%d units, %d B), rows %d, row switches %d, seq %.0f%%, mean run %.1f",
		s.Events, s.Units, s.Bytes, s.RowsTouched, s.RowSwitches, s.SeqRatio*100, s.MeanRunLen)
}
