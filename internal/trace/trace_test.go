package trace

import (
	"errors"
	"strings"
	"testing"

	"github.com/ecocloud-go/mondrian/internal/cache"
	"github.com/ecocloud-go/mondrian/internal/cores"
	"github.com/ecocloud-go/mondrian/internal/dram"
	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/noc"
	"github.com/ecocloud-go/mondrian/internal/operators"
	"github.com/ecocloud-go/mondrian/internal/tuple"
	"github.com/ecocloud-go/mondrian/internal/workload"
)

func seqEvents(n int) []Event {
	out := make([]Event, n)
	for i := range out {
		out[i] = Event{Seq: i, Unit: 0, Addr: int64(i * 16), Size: 16}
	}
	return out
}

func TestAnalyzeSequential(t *testing.T) {
	s := Analyze(seqEvents(64), 256)
	if s.Events != 64 || s.Reads != 64 {
		t.Fatalf("stats = %+v", s)
	}
	if s.SeqRatio != 1 {
		t.Fatalf("sequential stream SeqRatio = %v", s.SeqRatio)
	}
	if s.RowsTouched != 4 { // 64 × 16 B = 1 KB = 4 rows
		t.Fatalf("rows = %d", s.RowsTouched)
	}
	if s.RowSwitches != 3 {
		t.Fatalf("row switches = %d", s.RowSwitches)
	}
	if s.MeanRunLen != 64 {
		t.Fatalf("mean run = %v", s.MeanRunLen)
	}
}

func TestAnalyzeInterleaved(t *testing.T) {
	// Two interleaved sequential streams far apart: 0% adjacency.
	var evs []Event
	for i := 0; i < 32; i++ {
		evs = append(evs,
			Event{Unit: 0, Addr: int64(i * 16), Size: 16},
			Event{Unit: 1, Addr: 1 << 20, Size: 16, Write: true},
		)
	}
	s := Analyze(evs, 256)
	if s.SeqRatio != 0 {
		t.Fatalf("interleaved SeqRatio = %v", s.SeqRatio)
	}
	if s.Units != 2 || s.Writes != 32 {
		t.Fatalf("stats = %+v", s)
	}
	// Per-unit views recover the sequentiality of stream 0.
	per := PerUnit(evs, 256)
	if per[0].SeqRatio != 1 {
		t.Fatalf("unit 0 SeqRatio = %v", per[0].SeqRatio)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	if s := Analyze(nil, 256); s.Events != 0 {
		t.Fatal("empty stream should be zero stats")
	}
}

func TestRecorderLimitAndFilter(t *testing.T) {
	r := &Recorder{Limit: 3}
	for i := 0; i < 5; i++ {
		r.Access(0, engine.TraceDemand, int64(i), 16, false)
	}
	if len(r.Events()) != 3 || r.Dropped() != 2 {
		t.Fatalf("events %d dropped %d", len(r.Events()), r.Dropped())
	}
	r.Reset()
	if len(r.Events()) != 0 || r.Dropped() != 0 {
		t.Fatal("reset failed")
	}
	f := &Recorder{KindFilter: map[engine.AccessKind]bool{engine.TracePermuted: true}}
	f.Access(0, engine.TraceDemand, 0, 16, true)
	f.Access(0, engine.TracePermuted, 16, 16, true)
	if len(f.Events()) != 1 || f.Events()[0].Kind != engine.TracePermuted {
		t.Fatalf("filter failed: %+v", f.Events())
	}
}

func TestRowHistogram(t *testing.T) {
	evs := []Event{
		{Addr: 0, Size: 16}, {Addr: 16, Size: 16}, {Addr: 256, Size: 16},
	}
	h := RowHistogram(evs, 256)
	if len(h) != 2 || h[0].Count != 2 || h[1].Count != 1 {
		t.Fatalf("histogram = %+v", h)
	}
}

func TestFilterAndCSV(t *testing.T) {
	evs := seqEvents(4)
	evs[2].Write = true
	writes := Filter(evs, func(e Event) bool { return e.Write })
	if len(writes) != 1 {
		t.Fatalf("filter = %+v", writes)
	}
	var b strings.Builder
	if err := WriteCSV(&b, evs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 5 || !strings.HasPrefix(lines[0], "seq,") {
		t.Fatalf("csv = %q", b.String())
	}
}

func TestWriteCSVError(t *testing.T) {
	if err := WriteCSV(failWriter{}, seqEvents(1)); err == nil {
		t.Fatal("CSV to failing writer succeeded")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink closed") }

func TestSummary(t *testing.T) {
	s := Analyze(seqEvents(8), 256)
	if !strings.Contains(s.Summary(), "8 events") {
		t.Fatalf("summary = %q", s.Summary())
	}
}

// End-to-end: trace the partitioning phase with and without permutability
// and confirm the permuted write stream is the sequential one — the
// paper's Fig. 2 mechanism, observed in the trace.
func TestShuffleTraceSequentiality(t *testing.T) {
	run := func(perm bool) Stats {
		g := dram.HMCGeometry()
		g.CapacityBytes = 4 << 20
		cfg := engine.Config{
			Arch: engine.NMP, Core: cores.Krait400(), Permutable: perm,
			Cubes: 2, VaultsPer: 4, Topology: noc.FullyConnected,
			Geometry: g, Timing: dram.HMCTiming(),
			ObjectSize: tuple.Size, L1: cache.L1D32K(), BarrierNs: 1000,
		}
		e, err := engine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rec := &Recorder{KindFilter: map[engine.AccessKind]bool{
			engine.TraceShuffle: true, engine.TracePermuted: true,
		}}
		e.SetTracer(rec)
		rel := workload.Uniform("in", workload.Config{Seed: 5, Tuples: 8192, KeySpace: 1 << 20})
		parts := rel.SplitEven(e.NumVaults())
		inputs := make([]*engine.Region, len(parts))
		for v, p := range parts {
			r, err := e.Place(v, p.Tuples)
			if err != nil {
				t.Fatal(err)
			}
			inputs[v] = r
		}
		opCfg := operators.Config{Costs: operators.DefaultCosts(), KeySpace: 1 << 20}
		if _, err := operators.PartitionPhase(e, opCfg, inputs, operators.Partitioner{Buckets: e.NumVaults()}); err != nil {
			t.Fatal(err)
		}
		// Per destination vault, measure the arriving write stream.
		perVault := PerUnit(mapToVault(rec.Events(), e), 256)
		var agg Stats
		var n int
		for _, s := range perVault {
			agg.SeqRatio += s.SeqRatio
			n++
		}
		agg.SeqRatio /= float64(n)
		return agg
	}
	permuted := run(true)
	conventional := run(false)
	if permuted.SeqRatio < 0.99 {
		t.Fatalf("permuted arrival stream not sequential: %.3f", permuted.SeqRatio)
	}
	if conventional.SeqRatio > 0.5 {
		t.Fatalf("conventional arrival stream too sequential: %.3f", conventional.SeqRatio)
	}
}

// mapToVault rewrites event Unit to the destination vault so PerUnit
// groups by destination.
func mapToVault(events []Event, e *engine.Engine) []Event {
	out := make([]Event, len(events))
	for i, ev := range events {
		ev.Unit = ev.Addr2Vault(e)
		out[i] = ev
	}
	return out
}

// Addr2Vault resolves the event's destination vault ID.
func (e Event) Addr2Vault(eng *engine.Engine) int {
	return eng.Sys.VaultOf(e.Addr).ID
}
