package tuple

import "testing"

func BenchmarkDigestAdd(b *testing.B) {
	var d Digest
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Add(Tuple{Key: Key(i), Val: Value(i)})
	}
}

func BenchmarkSameMultiset(b *testing.B) {
	ts := make([]Tuple, 4096)
	for i := range ts {
		ts[i] = Tuple{Key: Key(i), Val: Value(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !SameMultiset(ts, ts) {
			b.Fatal("mismatch")
		}
	}
}
